package mtask

// Benchmark entry points: one testing.B benchmark per table/figure of the
// paper's evaluation, running the corresponding experiment at a reduced
// scale per iteration (the full paper-scale runs are produced by
// cmd/mtaskbench). The reported ns/op is the wall time of regenerating the
// artifact, and each benchmark asserts the paper's headline shape so a
// regression in the model surfaces here.

import (
	"context"
	"testing"

	"mtask/internal/bench"
	"mtask/internal/ode"
)

func runTables(b *testing.B, f func() ([]*bench.Table, error)) []*bench.Table {
	b.Helper()
	var tables []*bench.Table
	var err error
	for i := 0; i < b.N; i++ {
		tables, err = f()
		if err != nil {
			b.Fatal(err)
		}
	}
	return tables
}

// BenchmarkTable1 regenerates Table 1: collective operation counts per
// solver time step, measured with the instrumented runtime.
func BenchmarkTable1(b *testing.B) {
	tables := runTables(b, func() ([]*bench.Table, error) {
		t, err := bench.Table1()
		return []*bench.Table{t}, err
	})
	if len(tables[0].Rows) < 10 {
		b.Fatal("table1 incomplete")
	}
}

// BenchmarkFig13 regenerates the scheduler comparison (PABM and EPOL vs
// CPA/CPR on CHiC).
func BenchmarkFig13(b *testing.B) {
	params := bench.Fig13Params{Cores: []int{32, 64}, N: 40000, Steps: 2, Eval: 600}
	tables := runTables(b, func() ([]*bench.Table, error) {
		l, err := bench.Fig13Left(params)
		if err != nil {
			return nil, err
		}
		r, err := bench.Fig13Right(params)
		return []*bench.Table{l, r}, err
	})
	dp, _ := tables[0].Get("data-parallel", 64)
	tp, _ := tables[0].Get("task-parallel", 64)
	if !(tp > dp) {
		b.Fatalf("shape: PABM tp %g not above dp %g", tp, dp)
	}
}

// BenchmarkFig14 regenerates the collective micro-benchmarks (allgather
// mapping comparison).
func BenchmarkFig14(b *testing.B) {
	params := bench.DefaultFig14()
	tables := runTables(b, func() ([]*bench.Table, error) {
		l, err := bench.Fig14Left(params)
		if err != nil {
			return nil, err
		}
		r, err := bench.Fig14Right(params)
		return []*bench.Table{l, r}, err
	})
	c, _ := tables[0].Get("consecutive", 1<<20)
	s, _ := tables[0].Get("scattered", 1<<20)
	if !(c < s) {
		b.Fatalf("shape: consecutive %g not below scattered %g", c, s)
	}
}

// BenchmarkFig15 regenerates the IRK/DIIRK/EPOL mapping-strategy panels.
func BenchmarkFig15(b *testing.B) {
	params := bench.Fig15Params{
		Cores: []int{64, 128}, N: 250000,
		DenseN: 512, DIIRKCores: 128, EPOLCores: 128,
		SizeSweep: []int{125000, 250000},
	}
	tables := runTables(b, func() ([]*bench.Table, error) { return bench.Fig15(params) })
	c, _ := tables[0].Get("consecutive", 128)
	s, _ := tables[0].Get("scattered", 128)
	if !(c < s) {
		b.Fatalf("shape: IRK consecutive %g not below scattered %g", c, s)
	}
}

// BenchmarkFig16 regenerates the PAB/PABM mapping panels.
func BenchmarkFig16(b *testing.B) {
	params := bench.Fig16Params{Cores: []int{64, 128, 256}, N: 250000, DenseN: 8000}
	tables := runTables(b, func() ([]*bench.Table, error) { return bench.Fig16(params) })
	var pabm *bench.Table
	for _, t := range tables {
		if t.ID == "fig16-pabm-chic" {
			pabm = t
		}
	}
	dp, _ := pabm.Get("data-parallel", 256)
	tp, _ := pabm.Get("consecutive", 256)
	if !(tp > dp) {
		b.Fatalf("shape: PABM tp speedup %g not above dp %g", tp, dp)
	}
}

// BenchmarkFig17 regenerates the NAS multi-zone group-count sweeps.
func BenchmarkFig17(b *testing.B) {
	params := bench.Fig17Params{Groups: []int{4, 16, 64, 256}, CoresCHiC: 256, CoresAltix: 128, Steps: 2}
	tables := runTables(b, func() ([]*bench.Table, error) { return bench.Fig17(params) })
	for _, t := range tables {
		if len(t.Series) == 0 {
			b.Fatalf("%s empty", t.ID)
		}
	}
}

// BenchmarkFig18 regenerates the hybrid MPI+OpenMP comparison.
func BenchmarkFig18(b *testing.B) {
	params := bench.Fig18Params{Cores: []int{64, 128}, N: 100000, Eval: 600}
	tables := runTables(b, func() ([]*bench.Table, error) { return bench.Fig18(params) })
	mpi, _ := tables[0].Get("dp-MPI", 128)
	hyb, _ := tables[0].Get("dp-hybrid", 128)
	if !(hyb > mpi) {
		b.Fatalf("shape: IRK dp hybrid %g not above MPI %g", hyb, mpi)
	}
}

// BenchmarkFig19 regenerates the process/thread combination sweep.
func BenchmarkFig19(b *testing.B) {
	params := bench.Fig19Params{Cores: 64, Threads: []int{1, 2, 4, 8}, N: 4000}
	tables := runTables(b, func() ([]*bench.Table, error) {
		t, err := bench.Fig19(params)
		return []*bench.Table{t}, err
	})
	one, _ := tables[0].Get("data-parallel", 1)
	full, _ := tables[0].Get("data-parallel", 64)
	if !(full < one) {
		b.Fatalf("shape: dp 1x%d %g not below %dx1 %g", 64, full, 64, one)
	}
}

// planBenchWorkload is the fig13 PABM solver workload at paper scale:
// 24 time steps of an 8-stage PABM method on 256 CHiC cores. Each time
// step contributes one wide stage layer, so the group-count search has
// plenty of independent (layer, candidate) work items.
func planBenchWorkload() (*Graph, *Machine) {
	return ode.BuildPABGraph(40000, 600, 8, 2, 24), CHiC().SubsetCores(256)
}

// benchmarkPlanCold measures a cold Plan call (no schedule-cache reuse and
// no incremental layer reuse between iterations) at the given search
// parallelism.
func benchmarkPlanCold(b *testing.B, workers int) {
	b.Helper()
	g, m := planBenchWorkload()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mp, err := Plan(ctx, g, m, WithParallelism(workers), WithoutCache(), WithoutIncremental())
		if err != nil {
			b.Fatal(err)
		}
		if mp.Schedule.Time <= 0 {
			b.Fatal("zero makespan")
		}
	}
}

// BenchmarkPlanSequential is the single-worker reference path of the
// group-count search.
func BenchmarkPlanSequential(b *testing.B) { benchmarkPlanCold(b, 1) }

// BenchmarkPlanParallel runs the same search on the full worker pool.
func BenchmarkPlanParallel(b *testing.B) { benchmarkPlanCold(b, 0) }

// BenchmarkPlanCached measures the schedule-cache hit path: the planner
// is warmed once outside the timer, so every timed iteration is served
// from the LRU by graph/machine fingerprint.
func BenchmarkPlanCached(b *testing.B) {
	g, m := planBenchWorkload()
	ctx := context.Background()
	p := NewPlanner()
	if _, err := p.Plan(ctx, g, m); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mp, err := p.Plan(ctx, g, m)
		if err != nil {
			b.Fatal(err)
		}
		if mp.Schedule.Time <= 0 {
			b.Fatal("zero makespan")
		}
	}
	b.StopTimer()
	hits, misses := p.Cache().Stats()
	if misses != 1 || hits < uint64(b.N) {
		b.Fatalf("cache stats %d hits / %d misses for N=%d", hits, misses, b.N)
	}
}

// benchmarkPlanScaled cold-plans a generated time-step-unrolled solver
// graph of approximately `tasks` M-tasks on 256 CHiC cores, with both the
// schedule cache and incremental layer reuse off so every iteration pays
// the full pipeline: streaming chain contraction, layering, the arena-
// backed group-count search, and mapping.
func benchmarkPlanScaled(b *testing.B, tasks int) {
	b.Helper()
	g := ode.ScaledSolverGraph(tasks)
	m := CHiC().SubsetCores(256)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mp, err := Plan(ctx, g, m, WithoutCache(), WithoutIncremental())
		if err != nil {
			b.Fatal(err)
		}
		if mp.Schedule.Time <= 0 {
			b.Fatal("zero makespan")
		}
	}
}

// BenchmarkPlanScaled100k cold-plans a ~100k-task unrolled solver graph.
func BenchmarkPlanScaled100k(b *testing.B) { benchmarkPlanScaled(b, 100_000) }

// BenchmarkPlanScaled1M cold-plans a ~1M-task unrolled solver graph — the
// ROADMAP item 4 target scale.
func BenchmarkPlanScaled1M(b *testing.B) { benchmarkPlanScaled(b, 1_000_000) }

// BenchmarkPlanIncremental measures the incremental replanning path: the
// planner is warmed with the 24-step PABM workload, then every timed
// iteration replans its 25-step time-step extension with the whole-mapping
// cache bypassed, so each iteration runs the cold pipeline but adopts
// every layer schedule from the family index instead of searching.
func BenchmarkPlanIncremental(b *testing.B) {
	g, m := planBenchWorkload()
	ext := ode.BuildPABGraph(40000, 600, 8, 2, 25)
	ctx := context.Background()
	p := NewPlanner()
	if _, err := p.Plan(ctx, g, m); err != nil {
		b.Fatal(err)
	}
	var info PlanInfo
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mp, err := p.Plan(ctx, ext, m, WithoutCache(), WithPlanInfo(&info))
		if err != nil {
			b.Fatal(err)
		}
		if mp.Schedule.Time <= 0 {
			b.Fatal("zero makespan")
		}
	}
	b.StopTimer()
	if !info.Incremental || info.ReusedLayers == 0 || info.PatchedLayers != 0 {
		b.Fatalf("incremental path not taken: %+v", info)
	}
}

// BenchmarkAblationChains measures the linear-chain contraction ablation.
func BenchmarkAblationChains(b *testing.B) { benchAblation(b, "ablation-chains") }

// BenchmarkAblationAdjust measures the group-size adjustment ablation.
func BenchmarkAblationAdjust(b *testing.B) { benchAblation(b, "ablation-adjust") }

// BenchmarkAblationLPT measures the LPT-vs-round-robin ablation.
func BenchmarkAblationLPT(b *testing.B) { benchAblation(b, "ablation-lpt") }

// BenchmarkAblationMixedD measures the mixed-mapping d sweep.
func BenchmarkAblationMixedD(b *testing.B) { benchAblation(b, "ablation-mixed-d") }

func benchAblation(b *testing.B, id string) {
	b.Helper()
	params := bench.AblationParams{Cores: 64, N: 100000}
	var tables []*bench.Table
	var err error
	for i := 0; i < b.N; i++ {
		tables, err = bench.Ablations(params)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, t := range tables {
		if t.ID == id {
			return
		}
	}
	b.Fatalf("ablation %s missing", id)
}
