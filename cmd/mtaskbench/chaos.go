package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	stdruntime "runtime"

	"mtask/internal/arch"
	"mtask/internal/fault"
	"mtask/internal/ode"
	"mtask/internal/serve"
)

// hangGrace is the slack added to a request's propagated deadline before
// the harness declares it hung: scheduling jitter and response encoding
// happen outside the context's reach, injected cache stalls are
// deliberately uncancelable, and CI machines wobble.
const hangGrace = 2 * time.Second

// chaosResult is one request's observation.
type chaosResult struct {
	body     int // index into the request mix (one fingerprint each)
	status   int
	code     string
	elapsed  time.Duration
	makespan float64
	degraded bool
	hung     bool
}

// chaosDoer abstracts the target: the in-process chaotic handler or a
// live mtaskd over HTTP (-serve-addr).
type chaosDoer interface {
	post(path string, body []byte, deadline time.Duration) (status int, respBody []byte, elapsed time.Duration, hung bool)
	get(path string) (status int, body string)
}

type inprocDoer struct{ h http.Handler }

func (d inprocDoer) post(path string, body []byte, deadline time.Duration) (int, []byte, time.Duration, bool) {
	req := httptest.NewRequest("POST", path, bytes.NewReader(body))
	if deadline > 0 {
		req.Header.Set(serve.DeadlineHeader, deadline.String())
	}
	t0 := time.Now()
	w := httptest.NewRecorder()
	d.h.ServeHTTP(w, req)
	elapsed := time.Since(t0)
	return w.Code, w.Body.Bytes(), elapsed, deadline > 0 && elapsed > deadline+hangGrace
}

func (d inprocDoer) get(path string) (int, string) {
	w := httptest.NewRecorder()
	d.h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
	return w.Code, w.Body.String()
}

type httpDoer struct {
	base   string
	client *http.Client
}

func newHTTPDoer(addr string) *httpDoer {
	return &httpDoer{base: "http://" + addr, client: &http.Client{}}
}

func (d *httpDoer) post(path string, body []byte, deadline time.Duration) (int, []byte, time.Duration, bool) {
	ctx := context.Background()
	if deadline > 0 {
		// The client-side cutoff IS the hang detector: a server honoring
		// propagated deadlines answers (with 504 at worst) well inside it.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline+hangGrace)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, "POST", d.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, 0, false
	}
	if deadline > 0 {
		req.Header.Set(serve.DeadlineHeader, deadline.String())
	}
	t0 := time.Now()
	resp, err := d.client.Do(req)
	elapsed := time.Since(t0)
	if err != nil {
		return 0, nil, elapsed, ctx.Err() != nil
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data, elapsed, deadline > 0 && elapsed > deadline+hangGrace
}

func (d *httpDoer) get(path string) (int, string) {
	resp, err := d.client.Get(d.base + path)
	if err != nil {
		return 0, err.Error()
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(data)
}

// chaosBodies builds the request mix: graphs distinct fingerprints of
// the PAB solver graph on a cores-core CHiC partition.
func chaosBodies(graphs, cores, n int) ([][]byte, error) {
	machine := arch.CHiC().SubsetCores(cores)
	bodies := make([][]byte, graphs)
	for i := range bodies {
		body, err := json.Marshal(&serve.PlanRequest{
			Graph:   ode.BuildPABGraph(n, 600, 8, 2, i+1),
			Machine: machine,
		})
		if err != nil {
			return nil, err
		}
		bodies[i] = body
	}
	return bodies, nil
}

// runServeChaos is the service-level chaos harness: it drives a chaotic
// planning service — an in-process server with a seeded fault injector,
// or a live mtaskd started with -chaos-seed (via addr) — with clients
// concurrent clients propagating per-request deadlines, and asserts the
// overload invariants:
//
//  1. no request outlives its propagated deadline (plus hangGrace);
//  2. the shed rate is bounded (some requests are admitted and served);
//  3. coalescing never serves a poisoned plan: every 200 for one
//     fingerprint reports the identical makespan, and only whitelisted
//     status codes ever appear;
//  4. under stress the service degrades, it does not die: liveness stays
//     ok and readiness reports ok or degraded — never unreachable.
//
// Faults are injected deterministically from seed, so a failing run
// reproduces bit-for-bit.
func runServeChaos(addr string, seed int64, clients, requests, graphs, cores int, deadline time.Duration) error {
	if clients < 1 || requests < 1 || graphs < 1 {
		return fmt.Errorf("-serve-clients/-serve-requests/-serve-graphs must be >= 1")
	}
	if graphs > 64 {
		return fmt.Errorf("-serve-graphs %d out of range 1..64", graphs)
	}
	if deadline <= 0 {
		return fmt.Errorf("-serve-deadline must be positive in chaos mode")
	}

	var doer chaosDoer
	target := addr
	if addr == "" {
		target = "in-process"
		inj := &fault.ServeInjector{
			Seed:            seed,
			PSlowPlan:       0.20,
			SlowPlanDelay:   30 * time.Millisecond,
			PLeakLeader:     0.02,
			LeakDelay:       300 * time.Millisecond,
			PPlanError:      0.05,
			PPlanPanic:      0.02,
			PHandlerPanic:   0.01,
			PCacheStall:     0.05,
			CacheStallDelay: 2 * time.Millisecond,
		}
		s := serve.New(
			serve.WithChaos(inj),
			serve.WithAdmission(serve.AdmissionConfig{}),
			serve.WithDegraded(50*time.Millisecond, 0),
		)
		doer = inprocDoer{h: s.Handler()}
	} else {
		doer = newHTTPDoer(addr)
	}
	fmt.Printf("chaos harness: %d clients x %d requests over %d graphs on %d cores, deadline %v, seed %d, target %s\n",
		clients, requests, graphs, cores, deadline, seed, target)

	bodies, err := chaosBodies(graphs, cores, 4000)
	if err != nil {
		return err
	}

	// Readiness poller: liveness must never fail, readiness must never be
	// unreachable (it may — should — report degraded under this fire).
	pollStop := make(chan struct{})
	pollDone := make(chan [2]int)
	go func() {
		liveFails, notReady := 0, 0
		for {
			select {
			case <-pollStop:
				pollDone <- [2]int{liveFails, notReady}
				return
			case <-time.After(50 * time.Millisecond):
			}
			if code, _ := doer.get("/healthz"); code != http.StatusOK {
				liveFails++
			}
			if code, _ := doer.get("/readyz"); code != http.StatusOK {
				notReady++
			}
		}
	}()

	results := make([][]chaosResult, clients)
	var startGate, wg sync.WaitGroup
	startGate.Add(1)
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			rs := make([]chaosResult, 0, requests)
			startGate.Wait()
			for r := 0; r < requests; r++ {
				bi := (c + r) % len(bodies)
				status, respBody, elapsed, hung := doer.post("/v1/plan", bodies[bi], deadline)
				res := chaosResult{body: bi, status: status, elapsed: elapsed, hung: hung}
				if status == http.StatusOK {
					var pr serve.PlanResponse
					if err := json.Unmarshal(respBody, &pr); err == nil {
						res.makespan = pr.Makespan
						res.degraded = pr.Degraded
					} else {
						res.status = -1 // malformed 200: counts as a protocol violation
					}
				} else {
					var er serve.ErrorResponse
					_ = json.Unmarshal(respBody, &er)
					res.code = er.Code
				}
				rs = append(rs, res)
			}
			results[c] = rs
		}(c)
	}
	wallStart := time.Now()
	startGate.Done()
	wg.Wait()
	wall := time.Since(wallStart)
	close(pollStop)
	probe := <-pollDone

	// Tally and check the invariants.
	var (
		total, ok, shed, deadlineExceeded, canceled, quota, internal, degraded int
		hangs, lateOK, unexpected, malformed                                   int
		spans                                                                  = make(map[int]map[float64]int)
	)
	for _, rs := range results {
		for _, r := range rs {
			total++
			if r.hung {
				hangs++
			}
			switch r.status {
			case http.StatusOK:
				ok++
				if r.degraded {
					degraded++
				}
				if r.elapsed > deadline+hangGrace {
					lateOK++
				}
				if spans[r.body] == nil {
					spans[r.body] = make(map[float64]int)
				}
				spans[r.body][r.makespan]++
			case http.StatusServiceUnavailable:
				shed++
			case http.StatusGatewayTimeout:
				deadlineExceeded++
			case 499:
				canceled++
			case http.StatusTooManyRequests:
				quota++
			case http.StatusInternalServerError:
				internal++
			case -1:
				malformed++
			default:
				unexpected++
			}
		}
	}
	poisoned := 0
	for bi, ms := range spans {
		if len(ms) != 1 {
			poisoned++
			fmt.Printf("  POISONED fingerprint %d: makespans %v\n", bi, ms)
		}
	}

	fmt.Printf("  %d requests in %.2fs: %d ok (%d degraded), %d shed, %d deadline-exceeded, %d internal, %d quota, %d canceled\n",
		total, wall.Seconds(), ok, degraded, shed, deadlineExceeded, internal, quota, canceled)
	fmt.Printf("  probes: %d liveness failures, %d not-ready\n", probe[0], probe[1])

	var violations []string
	if hangs > 0 || lateOK > 0 {
		violations = append(violations, fmt.Sprintf("%d requests outlived their propagated deadline (+%v grace)", hangs+lateOK, hangGrace))
	}
	if ok == 0 {
		violations = append(violations, "no request was served at all — shed rate unbounded")
	}
	if frac := float64(shed) / float64(total); frac > 0.9 {
		violations = append(violations, fmt.Sprintf("shed rate %.0f%% exceeds the 90%% bound", 100*frac))
	}
	if poisoned > 0 {
		violations = append(violations, fmt.Sprintf("%d fingerprints served inconsistent plans — coalescing adopted a poisoned flight", poisoned))
	}
	if malformed > 0 {
		violations = append(violations, fmt.Sprintf("%d malformed 200 bodies", malformed))
	}
	if unexpected > 0 {
		violations = append(violations, fmt.Sprintf("%d responses outside the allowed status set", unexpected))
	}
	if probe[0] > 0 {
		violations = append(violations, fmt.Sprintf("liveness failed %d times — the server died instead of degrading", probe[0]))
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Printf("  INVARIANT VIOLATED: %s\n", v)
		}
		return fmt.Errorf("%d chaos invariants violated (seed %d reproduces)", len(violations), seed)
	}
	fmt.Printf("  all chaos invariants hold (seed %d)\n", seed)
	return nil
}

// overloadRow is one cell of the overload profile in BENCH_serve.json.
type overloadRow struct {
	Admission  bool    `json:"admission"`
	Multiplier int     `json:"multiplier"`
	Clients    int     `json:"clients"`
	Requests   int     `json:"requests"`
	OK         int     `json:"ok"`
	Shed       int     `json:"shed"`
	Deadline   int     `json:"deadline_exceeded"`
	ShedRate   float64 `json:"shed_rate"`
	P50MS      float64 `json:"p50_ms"`
	P99MS      float64 `json:"p99_ms"`
	// P99RatioVsUnloaded compares this cell's admitted-request p99 to the
	// same configuration's 1x cell (the acceptance bar is <= 2.0 at 16x
	// with admission on).
	P99RatioVsUnloaded float64 `json:"p99_ratio_vs_unloaded,omitempty"`
	ThroughputRPS      float64 `json:"throughput_rps"`
	// FinalLimit is where the AIMD limit settled by the end of the cell
	// (0 when admission is off).
	FinalLimit int `json:"final_limit,omitempty"`
}

// overloadProfile measures the overload behaviour before vs. after
// admission control. Every cell plans the identical cold-heavy workload
// (the same fixed set of distinct cache keys, the same total request
// count); only the offered concurrency varies — 1x/4x/16x of a small
// client baseline — so latency differences between cells measure
// contention and queueing, never a different request mix. The admission
// cells self-calibrate their AIMD target from the measured unloaded
// (1x, no-admission) p99. Recorded, not asserted — CI machines are too
// noisy for a hard latency gate; the chaos harness asserts the
// behavioural invariants instead.
func overloadProfile(cores int, deadline time.Duration) ([]overloadRow, error) {
	base := stdruntime.GOMAXPROCS(0)
	if base < 4 {
		base = 4
	}
	if deadline <= 0 {
		deadline = time.Second
	}

	// Cold-heavy mix: distinct (steps, force_groups) pairs give distinct
	// cache keys, so the planner keeps doing real work all run.
	machine := arch.CHiC().SubsetCores(cores)
	var bodies [][]byte
	for steps := 1; steps <= 16; steps++ {
		for fg := 1; fg <= 8; fg++ {
			body, err := json.Marshal(&serve.PlanRequest{
				Graph:   ode.BuildPABGraph(2000, 600, 8, 2, steps),
				Machine: machine,
				Options: serve.PlanOptions{ForceGroups: fg},
			})
			if err != nil {
				return nil, err
			}
			bodies = append(bodies, body)
		}
	}

	// Warm-up traffic: distinct fingerprints from the measured mix, so
	// the AIMD limit settles at the cell's concurrency before the clock
	// starts while the measured keys stay cold.
	var warmBodies [][]byte
	for steps := 17; steps <= 20; steps++ {
		for fg := 1; fg <= 4; fg++ {
			body, err := json.Marshal(&serve.PlanRequest{
				Graph:   ode.BuildPABGraph(2000, 600, 8, 2, steps),
				Machine: machine,
				Options: serve.PlanOptions{ForceGroups: fg},
			})
			if err != nil {
				return nil, err
			}
			warmBodies = append(warmBodies, body)
		}
	}

	// Every cell issues totalRequests requests over the same body mix;
	// only the client count (concurrency) differs. 96*base is divisible
	// by base*{1,4,16}, so per-client counts stay integral.
	totalRequests := 96 * base

	var rows []overloadRow
	// refP99 is the measured unloaded p99 (the 1x, no-admission cell) —
	// the intrinsic worst-case cost of one request on this machine. The
	// admission cells use it as the AIMD latency target, so the limiter
	// clamps concurrency to whatever keeps total latency (queue wait
	// included) near the unloaded cost and sheds the rest.
	var refP99 time.Duration
	for _, admission := range []bool{false, true} {
		var unloadedP99 float64
		for _, mult := range []int{1, 4, 16} {
			clients := base * mult
			perClient := totalRequests / clients
			opts := []serve.Option{}
			if admission {
				// 2x the unloaded p99: enough headroom that an unloaded
				// cell's ordinary cold plans don't read as overload, tight
				// enough that pile-ups do.
				target := 2 * refP99
				if target < 5*time.Millisecond {
					target = 5 * time.Millisecond
				}
				// MaxLimit is pinned at the client baseline (~machine
				// capacity): the planner is CPU-bound, so concurrency past
				// the core count adds queueing delay, never throughput —
				// AIMD explores below the cap, and the cap keeps a flood of
				// sub-target cache hits from voting the limit into the sky
				// while cold plans pile up behind them. The queue is one
				// baseline deep — enough to absorb an unloaded cell's
				// bursts without shedding, small enough that under real
				// overload the excess sheds at the door with a 503 instead
				// of relocating its latency into queue wait.
				opts = append(opts, serve.WithAdmission(serve.AdmissionConfig{
					InitialLimit: base,
					MaxLimit:     base,
					Queue:        base,
					Target:       target,
				}))
			}
			s := serve.New(opts...)
			doer := inprocDoer{h: s.Handler()}

			// Warm-up round at the cell's concurrency, results discarded.
			var warmWG sync.WaitGroup
			warmWG.Add(clients)
			for c := 0; c < clients; c++ {
				go func(c int) {
					defer warmWG.Done()
					for r := 0; r < 2; r++ {
						doer.post("/v1/plan", warmBodies[(c+r)%len(warmBodies)], deadline)
					}
				}(c)
			}
			warmWG.Wait()

			// Closed-loop clients: each goroutine streams its share of the
			// workload back-to-back, so latency is measured from submission
			// and includes every delay the caller would see — scheduler
			// preemption by other in-flight plans included.
			var row overloadRow
			var all []time.Duration
			var startGate, wg sync.WaitGroup
			var mu sync.Mutex
			startGate.Add(1)
			wg.Add(clients)
			for c := 0; c < clients; c++ {
				go func(c int) {
					defer wg.Done()
					startGate.Wait()
					for r := 0; r < perClient; r++ {
						body := bodies[(c*perClient+r)%len(bodies)]
						status, _, elapsed, _ := doer.post("/v1/plan", body, deadline)
						mu.Lock()
						switch status {
						case http.StatusOK:
							row.OK++
							all = append(all, elapsed)
						case http.StatusServiceUnavailable:
							row.Shed++
						case http.StatusGatewayTimeout:
							row.Deadline++
						}
						mu.Unlock()
					}
				}(c)
			}
			wallStart := time.Now()
			startGate.Done()
			wg.Wait()
			wall := time.Since(wallStart)
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			pct := func(p float64) float64 {
				if len(all) == 0 {
					return 0
				}
				return float64(all[int(p*float64(len(all)-1))]) / float64(time.Millisecond)
			}

			row.Admission = admission
			row.Multiplier = mult
			row.Clients = clients
			row.Requests = totalRequests
			row.ShedRate = float64(row.Shed) / float64(row.Requests)
			row.P50MS = pct(0.50)
			row.P99MS = pct(0.99)
			row.ThroughputRPS = float64(row.OK) / wall.Seconds()
			if mult == 1 {
				unloadedP99 = row.P99MS
				if !admission {
					refP99 = time.Duration(row.P99MS * float64(time.Millisecond))
				}
			} else if unloadedP99 > 0 {
				row.P99RatioVsUnloaded = row.P99MS / unloadedP99
			}
			row.FinalLimit = int(s.Metrics()["serve.admission.limit"])
			rows = append(rows, row)
			fmt.Printf("overload %2dx admission=%-5v: %4d ok %4d shed %4d 504  p50 %7.1fms  p99 %7.1fms  shed %4.0f%%  limit %d\n",
				mult, admission, row.OK, row.Shed, row.Deadline, row.P50MS, row.P99MS, 100*row.ShedRate, row.FinalLimit)
		}
	}
	return rows, nil
}
