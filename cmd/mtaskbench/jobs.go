package main

// The -jobs mode replays a fixed-seed imbalanced arrival trace of M-task
// jobs through the two-level machine scheduler (moldable admission sizing,
// EASY-style backfill, grow/shrink at layer barriers) and through a static
// equal-partition FCFS baseline, and compares makespan, per-job slowdown
// and machine utilization. Task bodies sleep for Work/groupCores (plus a
// serial floor), so larger partitions genuinely finish sooner and the
// wall-clock comparison is meaningful even on a single-CPU host — the
// sleeps model compute, the scheduler decisions are real. The greppable
// "two-level scheduling ok" line is the CI acceptance signal: it is
// printed only when the two-level run strictly beats the baseline on
// makespan, utilization and worst-case bounded slowdown, keeps the mean
// bounded slowdown within 10% of the baseline, saw at least one grow and
// one shrink, and stayed under the absolute slowdown bound.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	stdruntime "runtime"

	"mtask"
	"mtask/internal/graph"
	"mtask/internal/obs"
)

// jobSpec is one job of the arrival trace.
type jobSpec struct {
	name       string
	graph      *mtask.Graph
	arrival    time.Duration
	minN, maxN int
	heavy      bool
}

// jobsLadder builds a stages-deep ladder graph: two parallel tasks per
// stage with full bipartite edges between stages, so the schedule has
// exactly `stages` layers — one resize opportunity per stage boundary.
// work is in sleep-nanoseconds per task (divided by the group's cores at
// execution time).
func jobsLadder(name string, stages int, work float64) *mtask.Graph {
	g := mtask.NewGraph(name)
	var prev [2]mtask.TaskID
	for s := 0; s < stages; s++ {
		var cur [2]mtask.TaskID
		for i := 0; i < 2; i++ {
			cur[i] = g.AddTask(&mtask.Task{
				Name: fmt.Sprintf("%s.%d.%d", name, s, i), Kind: graph.KindBasic, Work: work,
			})
		}
		if s > 0 {
			for _, p := range prev {
				for _, c := range cur {
					g.MustEdge(p, c, 8)
				}
			}
		}
		prev = cur
	}
	return g
}

// jobsBody is the SPMD body of every trace job: each rank sleeps the
// task's serial floor plus its Work share, so a task on twice the cores
// finishes in roughly half the wall time (Amdahl with a small serial
// fraction).
func jobsBody() func(t *mtask.Task) mtask.TaskFunc {
	const serial = 200 * time.Microsecond
	return func(t *mtask.Task) mtask.TaskFunc {
		return func(tc *mtask.TaskCtx) error {
			if t.Kind != graph.KindBasic {
				return nil
			}
			time.Sleep(serial + time.Duration(t.Work)/time.Duration(tc.Group.Size()))
			return nil
		}
	}
}

// jobsTrace builds the imbalanced trace: two heavy scalable jobs that
// want the whole machine, plus `lights` small single-node jobs arriving
// in two bursts around them. The seed only jitters the light jobs'
// arrivals and sizes; the shape of the trace is fixed.
func jobsTrace(seed int64, lights int) []jobSpec {
	rng := rand.New(rand.NewSource(seed))
	// Heavy jobs: 20 short stages, so layer barriers — the only points
	// where a shrink can free nodes for arriving jobs — come every few
	// milliseconds.
	specs := []jobSpec{
		{name: "H1", graph: jobsLadder("H1", 20, 80e6), arrival: 0, minN: 2, maxN: 8, heavy: true},
		{name: "H2", graph: jobsLadder("H2", 20, 80e6), arrival: 60 * time.Millisecond, minN: 2, maxN: 8, heavy: true},
	}
	for i := 0; i < lights; i++ {
		burst := 10 * time.Millisecond // first burst: while H1 runs alone
		if i >= lights/2 {
			burst = 80 * time.Millisecond // second burst: while H1 and H2 share
		}
		arrival := burst + time.Duration(rng.Intn(6))*time.Millisecond
		work := (6 + 4*rng.Float64()) * 1e6
		name := fmt.Sprintf("L%d", i+1)
		specs = append(specs, jobSpec{
			name: name, graph: jobsLadder(name, 2, work), arrival: arrival, minN: 1, maxN: 2,
		})
	}
	return specs
}

// jobsSoloTimes measures each job alone on the whole machine — the
// denominator of the slowdown metric.
func jobsSoloTimes(ctx context.Context, m *mtask.Machine, pl *mtask.Planner,
	specs []jobSpec, body func(t *mtask.Task) mtask.TaskFunc) (map[string]time.Duration, error) {

	solo := make(map[string]time.Duration, len(specs))
	for _, s := range specs {
		mp, err := pl.PlanPartition(ctx, s.graph, m, m.Nodes)
		if err != nil {
			return nil, fmt.Errorf("solo plan %s: %w", s.name, err)
		}
		w, err := mtask.NewWorld(mp.Schedule.P)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := mtask.ExecuteCtx(ctx, w, mp.Schedule, body); err != nil {
			return nil, fmt.Errorf("solo run %s: %w", s.name, err)
		}
		solo[s.name] = time.Since(start)
	}
	return solo, nil
}

// jobOutcome is the scheme-independent record of one job's run.
type jobOutcome struct {
	name       string
	turnaround time.Duration
	done       time.Duration
	busy       time.Duration // core-time inside task bodies
}

// runStaticPartitions is the baseline: the machine is split into `parts`
// equal node partitions, jobs are served FCFS in arrival order, each job
// runs on one whole partition at the fixed size — no molding, no
// backfill, no resizing.
func runStaticPartitions(ctx context.Context, m *mtask.Machine, pl *mtask.Planner,
	specs []jobSpec, parts int, body func(t *mtask.Task) mtask.TaskFunc) ([]jobOutcome, error) {

	partNodes := m.Nodes / parts
	if partNodes < 1 {
		return nil, fmt.Errorf("-jobs-parts %d leaves no nodes per partition", parts)
	}
	for _, s := range specs {
		if s.minN > partNodes {
			return nil, fmt.Errorf("job %s needs %d nodes, static partitions have %d", s.name, s.minN, partNodes)
		}
	}
	ordered := append([]jobSpec(nil), specs...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].arrival < ordered[j].arrival })

	epoch := time.Now()
	queue := make(chan jobSpec)
	go func() {
		defer close(queue)
		for _, s := range ordered {
			if d := s.arrival - time.Since(epoch); d > 0 {
				time.Sleep(d)
			}
			queue <- s
		}
	}()

	var (
		mu       sync.Mutex
		outcomes []jobOutcome
		firstErr error
		wg       sync.WaitGroup
	)
	for p := 0; p < parts; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range queue {
				mp, err := pl.PlanPartition(ctx, s.graph, m, partNodes)
				if err == nil {
					var w *mtask.World
					if w, err = mtask.NewWorld(mp.Schedule.P); err == nil {
						var rep *mtask.Report
						rep, err = mtask.ExecuteCtx(ctx, w, mp.Schedule, body)
						if err == nil {
							busy, _, _ := rep.Utilization()
							mu.Lock()
							outcomes = append(outcomes, jobOutcome{
								name:       s.name,
								turnaround: time.Since(epoch) - s.arrival,
								done:       time.Since(epoch),
								busy:       busy,
							})
							mu.Unlock()
						}
					}
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("static run %s: %w", s.name, err)
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return outcomes, firstErr
}

// slowdownThreshold is the bounded-slowdown threshold (Feitelson's
// metric): slowdown = max(turnaround, τ) / max(solo, τ), so jobs whose
// solo time is far below τ cannot dominate the mean with huge ratios of
// tiny absolute waits.
const slowdownThreshold = 10 * time.Millisecond

// schemeStats aggregates one scheme's outcomes against the solo times.
type schemeStats struct {
	makespan     time.Duration
	meanSlowdown float64
	maxSlowdown  float64
	utilization  float64
}

func boundedSlowdown(turnaround, solo time.Duration) float64 {
	if turnaround < slowdownThreshold {
		turnaround = slowdownThreshold
	}
	if solo < slowdownThreshold {
		solo = slowdownThreshold
	}
	return float64(turnaround) / float64(solo)
}

func summarize(outcomes []jobOutcome, solo map[string]time.Duration, totalCores int) schemeStats {
	var st schemeStats
	var busy time.Duration
	for _, o := range outcomes {
		if o.done > st.makespan {
			st.makespan = o.done
		}
		busy += o.busy
		if base := solo[o.name]; base > 0 {
			sd := boundedSlowdown(o.turnaround, base)
			st.meanSlowdown += sd
			if sd > st.maxSlowdown {
				st.maxSlowdown = sd
			}
		}
	}
	if len(outcomes) > 0 {
		st.meanSlowdown /= float64(len(outcomes))
	}
	if st.makespan > 0 {
		st.utilization = float64(busy) / float64(time.Duration(totalCores)*st.makespan)
	}
	return st
}

// jobsRecord is the BENCH_jobs.json schema.
type jobsRecord struct {
	Bench      string  `json:"bench"`
	Date       string  `json:"date"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Machine    string  `json:"machine"`
	TotalCores int     `json:"total_cores"`
	Seed       int64   `json:"seed"`
	Jobs       int     `json:"jobs"`
	HeavyJobs  int     `json:"heavy_jobs"`
	LightJobs  int     `json:"light_jobs"`
	SlowdownMS float64 `json:"bounded_slowdown_threshold_ms"`
	Note       string  `json:"note"`

	SoloMS   map[string]float64 `json:"solo_ms"`
	TwoLevel jschema            `json:"two_level"`
	Static   jschema            `json:"static_equal_partition"`
	Speedup  float64            `json:"makespan_speedup"`
}

type jschema struct {
	MakespanMS   float64 `json:"makespan_ms"`
	MeanSlowdown float64 `json:"mean_bounded_slowdown"`
	MaxSlowdown  float64 `json:"max_bounded_slowdown"`
	Utilization  float64 `json:"utilization"`
	Grows        int     `json:"grows,omitempty"`
	Shrinks      int     `json:"shrinks,omitempty"`
	Backfills    int     `json:"backfills,omitempty"`
	Partitions   int     `json:"partitions,omitempty"`
}

// runJobs drives the multi-job comparison; see the file comment.
func runJobs(seed int64, lights, parts int, slowdownBound float64, out, traceOut string) error {
	if lights < 2 {
		return fmt.Errorf("-jobs-light %d out of range (need >= 2)", lights)
	}
	m := mtask.CHiC().Subset(8) // 8 nodes x 4 cores
	pl := mtask.NewPlanner()
	ctx := context.Background()
	body := jobsBody()
	specs := jobsTrace(seed, lights)

	fmt.Printf("multi-job trace: %d jobs (2 heavy + %d light) on %s (%d nodes, %d cores), seed %d, GOMAXPROCS=%d\n\n",
		len(specs), lights, m.Name, m.Nodes, m.TotalCores(), seed, stdruntime.GOMAXPROCS(0))

	// Solo runs: the slowdown denominators.
	solo, err := jobsSoloTimes(ctx, m, pl, specs, body)
	if err != nil {
		return err
	}

	// Two-level scheduler.
	alloc, err := mtask.NewJobAllocator(m, pl)
	if err != nil {
		return err
	}
	var (
		traceMu sync.Mutex
		recs    []*mtask.TraceRecorder
	)
	if traceOut != "" {
		machineRec := mtask.NewTraceRecorder(0, mtask.WithTraceName("allocator"))
		recs = append(recs, machineRec)
		alloc.Trace = machineRec
		alloc.JobTrace = func(name string, cores int) *mtask.TraceRecorder {
			rec := mtask.NewTraceRecorder(cores, mtask.WithTraceName("job "+name))
			traceMu.Lock()
			recs = append(recs, rec)
			traceMu.Unlock()
			return rec
		}
	}
	jobs := make([]mtask.MachineJob, len(specs))
	for i, s := range specs {
		jobs[i] = mtask.MachineJob{
			Name: s.name, Graph: s.graph, Body: body,
			Arrival: s.arrival, MinNodes: s.minN, MaxNodes: s.maxN,
		}
	}
	results, err := alloc.RunTrace(ctx, jobs)
	if err != nil {
		return err
	}
	var (
		twoOutcomes               []jobOutcome
		grows, shrinks, backfills int
	)
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("two-level job %s failed: %w", r.Name, r.Err)
		}
		busy, _, _ := r.Report.Utilization()
		twoOutcomes = append(twoOutcomes, jobOutcome{
			name: r.Name, turnaround: r.Turnaround(), done: r.Done, busy: busy,
		})
		grows += r.Grows
		shrinks += r.Shrinks
		if r.Backfilled {
			backfills++
		}
	}
	two := summarize(twoOutcomes, solo, m.TotalCores())

	fmt.Println(alloc.Gantt(92))
	fmt.Println()

	// Static equal-partition FCFS baseline.
	staticOutcomes, err := runStaticPartitions(ctx, m, pl, specs, parts, body)
	if err != nil {
		return err
	}
	static := summarize(staticOutcomes, solo, m.TotalCores())

	fmt.Printf("%-22s %12s %15s %14s %12s   (bounded slowdown, threshold %v)\n",
		"scheme", "makespan", "mean slowdown", "max slowdown", "utilization", slowdownThreshold)
	fmt.Printf("%-22s %12v %15.2f %14.2f %11.1f%%   (%d grows, %d shrinks, %d backfills)\n",
		"two-level", two.makespan.Round(time.Millisecond), two.meanSlowdown, two.maxSlowdown,
		100*two.utilization, grows, shrinks, backfills)
	fmt.Printf("%-22s %12v %15.2f %14.2f %11.1f%%   (%d fixed partitions of %d nodes)\n\n",
		"static equal-partition", static.makespan.Round(time.Millisecond), static.meanSlowdown,
		static.maxSlowdown, 100*static.utilization, parts, m.Nodes/parts)

	if out != "" {
		soloMS := make(map[string]float64, len(solo))
		for name, d := range solo {
			soloMS[name] = float64(d) / float64(time.Millisecond)
		}
		record := jobsRecord{
			Bench:      "jobs",
			Date:       time.Now().UTC().Format("2006-01-02"),
			GoMaxProcs: stdruntime.GOMAXPROCS(0),
			Machine:    m.Name,
			TotalCores: m.TotalCores(),
			Seed:       seed,
			Jobs:       len(specs),
			HeavyJobs:  2,
			LightJobs:  lights,
			SlowdownMS: float64(slowdownThreshold) / float64(time.Millisecond),
			Note: "task bodies sleep Work/groupCores, so wall times measure scheduling decisions, " +
				"not compute throughput; meaningful at any GOMAXPROCS",
			SoloMS: soloMS,
			TwoLevel: jschema{
				MakespanMS:   float64(two.makespan) / float64(time.Millisecond),
				MeanSlowdown: two.meanSlowdown, MaxSlowdown: two.maxSlowdown,
				Utilization: two.utilization, Grows: grows, Shrinks: shrinks, Backfills: backfills,
			},
			Static: jschema{
				MakespanMS:   float64(static.makespan) / float64(time.Millisecond),
				MeanSlowdown: static.meanSlowdown, MaxSlowdown: static.maxSlowdown,
				Utilization: static.utilization, Partitions: parts,
			},
			Speedup: float64(static.makespan) / float64(two.makespan),
		}
		data, err := json.MarshalIndent(record, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("record: wrote %s\n", out)
	}
	if traceOut != "" {
		if err := obs.WriteChromeFile(traceOut, recs...); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		fmt.Printf("trace: wrote %s (%d process rows)\n", traceOut, len(recs))
	}

	// Acceptance: the two-level scheduler must strictly beat the static
	// baseline on makespan, utilization and worst-case (max) bounded
	// slowdown, stay under the absolute slowdown bound, and must not
	// degrade the mean bounded slowdown by more than 10%. (The mean is
	// dominated by the many light jobs, which run near parity in both
	// schemes — a strict-win requirement on it would test timer noise, not
	// scheduling; the heavies' worst case is the deterministic separation.)
	switch {
	case grows < 1 || shrinks < 1:
		return fmt.Errorf("two-level run saw %d grows / %d shrinks, want at least one of each", grows, shrinks)
	case two.makespan >= static.makespan:
		return fmt.Errorf("two-level makespan %v did not beat the static baseline %v", two.makespan, static.makespan)
	case two.utilization <= static.utilization:
		return fmt.Errorf("two-level utilization %.1f%% did not beat the static baseline %.1f%%", 100*two.utilization, 100*static.utilization)
	case two.maxSlowdown >= static.maxSlowdown:
		return fmt.Errorf("two-level max slowdown %.2f did not beat the static baseline %.2f", two.maxSlowdown, static.maxSlowdown)
	case two.meanSlowdown > 1.10*static.meanSlowdown:
		return fmt.Errorf("two-level mean slowdown %.2f degraded more than 10%% over the static baseline %.2f", two.meanSlowdown, static.meanSlowdown)
	case two.maxSlowdown > slowdownBound:
		return fmt.Errorf("two-level max slowdown %.2f exceeds the bound %.2f", two.maxSlowdown, slowdownBound)
	}
	fmt.Printf("two-level scheduling ok: makespan %v vs %v static (%.2fx), max slowdown %.2f vs %.2f, mean %.2f vs %.2f, utilization %.0f%% vs %.0f%%, %d grows / %d shrinks / %d backfills\n",
		two.makespan.Round(time.Millisecond), static.makespan.Round(time.Millisecond),
		float64(static.makespan)/float64(two.makespan),
		two.maxSlowdown, static.maxSlowdown, two.meanSlowdown, static.meanSlowdown,
		100*two.utilization, 100*static.utilization, grows, shrinks, backfills)
	return nil
}
