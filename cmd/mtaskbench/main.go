// Command mtaskbench regenerates the tables and figures of the paper's
// evaluation.
//
// Usage:
//
//	mtaskbench -list
//	mtaskbench -exp fig14
//	mtaskbench -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mtask/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run, or 'all'")
	list := flag.Bool("list", false, "list available experiments")
	asJSON := flag.Bool("json", false, "emit tables as JSON instead of text")
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, id := range bench.ExperimentIDs() {
			fmt.Printf("  %s\n", id)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.ExperimentIDs()
	}
	failed := false
	for _, id := range ids {
		start := time.Now()
		tables, err := bench.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mtaskbench: %s: %v\n", id, err)
			failed = true
			continue
		}
		for _, t := range tables {
			if *asJSON {
				data, err := t.JSON()
				if err != nil {
					fmt.Fprintf(os.Stderr, "mtaskbench: %s: %v\n", id, err)
					failed = true
					continue
				}
				fmt.Println(string(data))
			} else {
				fmt.Println(t.Format())
			}
		}
		if !*asJSON {
			fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	if failed {
		os.Exit(1)
	}
}
