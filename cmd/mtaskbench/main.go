// Command mtaskbench regenerates the tables and figures of the paper's
// evaluation, and exercises the Planner engine on the paper's solver
// graphs.
//
// Usage:
//
//	mtaskbench -list
//	mtaskbench -exp fig14
//	mtaskbench -exp all
//	mtaskbench -plan pabm -cores 256 -steps 16 -repeat 5
//	mtaskbench -scale 1000000 -repeat 2
//	mtaskbench -faults -fault-solver pab -kill 'stage[1](0)@1' -seed 7
//	mtaskbench -exec -exec-iters 5000
//	mtaskbench -exec -scale 100000 -exec-cores 16
//	mtaskbench -jobs -seed 1
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	stdruntime "runtime"

	"mtask"
	"mtask/internal/bench"
	"mtask/internal/graph"
	"mtask/internal/obs"
	"mtask/internal/ode"
	mrt "mtask/internal/runtime"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run, or 'all'")
	list := flag.Bool("list", false, "list available experiments")
	asJSON := flag.Bool("json", false, "emit tables as JSON instead of text")
	planSolver := flag.String("plan", "", "plan a solver graph (epol|irk|diirk|pab|pabm) through the Planner engine")
	scale := flag.Int("scale", 0, "generate a deterministic time-step-unrolled solver graph of ~N tasks (alone: plan it; with -exec: plan and execute it end to end)")
	cores := flag.Int("cores", 256, "plan: cores of the CHiC partition")
	n := flag.Int("n", 40000, "plan: ODE system size")
	steps := flag.Int("steps", 8, "plan: time steps in the task graph")
	strategy := flag.String("strategy", "consecutive", "plan: mapping strategy (consecutive|scattered|mixed:<d>)")
	parallel := flag.Int("parallel", 0, "plan: search workers (0 = GOMAXPROCS, 1 = sequential)")
	repeat := flag.Int("repeat", 3, "plan: repeated requests after the cold plan (cache hits)")
	nocache := flag.Bool("nocache", false, "plan: bypass the schedule cache")
	timeout := flag.Duration("timeout", 0, "plan: abort planning after this duration (0 = none)")
	faults := flag.Bool("faults", false, "run a solver graph under injected failures and verify the results")
	faultSolver := flag.String("fault-solver", "pab", "faults: solver graph (epol|irk|diirk|pab|pabm)")
	faultCores := flag.Int("fault-cores", 8, "faults: symbolic cores of the run")
	faultN := flag.Int("fault-n", 64, "faults: ODE system size")
	faultSteps := flag.Int("fault-steps", 4, "faults: time steps in the task graph")
	seed := flag.Int64("seed", 1, "faults: injector seed")
	perr := flag.Float64("perr", 0, "faults: per-(task,rank) probability of an injected error")
	ppanic := flag.Float64("ppanic", 0, "faults: per-(task,rank) probability of an injected panic")
	pdelay := flag.Float64("pdelay", 0, "faults: per-(task,rank) probability of an injected delay")
	kill := flag.String("kill", "", "faults: scripted core loss 'task@attempt' (e.g. 'stage[1](0)@1')")
	execMode := flag.Bool("exec", false, "time the collective engine (barrier, bcast, allgather, reduce) and a PABM time step")
	execIters := flag.Int("exec-iters", 2000, "exec: iterations per collective measurement")
	execCores := flag.Int("exec-cores", 16, "exec -scale: symbolic cores of the executed schedule")
	wavefront := flag.Bool("wavefront", false, "exec: compare layered vs wavefront execution on the imbalanced workload")
	wfLayers := flag.Int("wf-layers", 8, "exec -wavefront: layers of the imbalanced schedule")
	wfSlow := flag.Duration("wf-slow", 4*time.Millisecond, "exec -wavefront: sleep of the slow task per layer")
	wfFast := flag.Duration("wf-fast", 500*time.Microsecond, "exec -wavefront: sleep of the fast task per layer")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON file (Perfetto-loadable) of the run; supported with -exec -wavefront and -plan")
	serveMode := flag.Bool("serve", false, "load-test the planning service handler in process (see cmd/mtaskd)")
	serveClients := flag.Int("serve-clients", 1024, "serve: concurrent clients")
	serveReqs := flag.Int("serve-requests", 8, "serve: requests per client")
	serveGraphs := flag.Int("serve-graphs", 4, "serve: distinct graph fingerprints in the request mix")
	serveCores := flag.Int("serve-cores", 16, "serve: cores of the CHiC partition in every request")
	serveOut := flag.String("serve-out", "BENCH_serve.json", "serve: write the JSON benchmark record here (empty = skip)")
	serveChaos := flag.Bool("chaos", false, "serve: run the chaos harness instead — drive a chaotic server (in-process, or -serve-addr) and assert the overload invariants")
	serveAddr := flag.String("serve-addr", "", "serve -chaos: drive a live mtaskd at this host:port instead of an in-process server")
	serveDeadline := flag.Duration("serve-deadline", 2*time.Second, "serve: propagated per-request deadline (X-Request-Deadline) in chaos and overload runs")
	serveOverload := flag.Bool("serve-overload", false, "serve: also record the 1x/4x/16x overload profile (before vs. after admission control) in the benchmark record")
	jobsMode := flag.Bool("jobs", false, "replay a multi-job arrival trace through the two-level machine scheduler vs a static equal-partition baseline")
	jobsLight := flag.Int("jobs-light", 10, "jobs: light (single-node) jobs in the trace, around the two heavy ones")
	jobsParts := flag.Int("jobs-parts", 4, "jobs: equal partitions of the static baseline")
	jobsBound := flag.Float64("jobs-slowdown-bound", 8, "jobs: fail if the two-level max slowdown exceeds this")
	jobsOut := flag.String("jobs-out", "BENCH_jobs.json", "jobs: write the JSON benchmark record here (empty = skip)")
	flag.Parse()

	if *jobsMode {
		if err := runJobs(*seed, *jobsLight, *jobsParts, *jobsBound, *jobsOut, *traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "mtaskbench: jobs: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *serveMode {
		var err error
		if *serveChaos {
			err = runServeChaos(*serveAddr, *seed, *serveClients, *serveReqs, *serveGraphs, *serveCores, *serveDeadline)
		} else {
			err = runServe(*serveClients, *serveReqs, *serveGraphs, *serveCores, *serveOut, *serveOverload, *serveDeadline)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mtaskbench: serve: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *execMode {
		if *scale > 0 {
			if err := runExecScale(*scale, *execCores); err != nil {
				fmt.Fprintf(os.Stderr, "mtaskbench: exec -scale: %v\n", err)
				os.Exit(1)
			}
			return
		}
		if *wavefront {
			if err := runExecWavefront(*wfLayers, *wfSlow, *wfFast, *traceOut); err != nil {
				fmt.Fprintf(os.Stderr, "mtaskbench: exec -wavefront: %v\n", err)
				os.Exit(1)
			}
			return
		}
		if err := runExec(*execIters); err != nil {
			fmt.Fprintf(os.Stderr, "mtaskbench: exec: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *faults {
		if err := runFaults(*faultSolver, *faultCores, *faultN, *faultSteps, *seed, *perr, *ppanic, *pdelay, *kill); err != nil {
			fmt.Fprintf(os.Stderr, "mtaskbench: faults: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *planSolver != "" || *scale > 0 {
		if err := runPlan(*planSolver, *scale, *cores, *n, *steps, *strategy, *parallel, *repeat, *nocache, *timeout, *traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "mtaskbench: plan: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, id := range bench.ExperimentIDs() {
			fmt.Printf("  %s\n", id)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.ExperimentIDs()
	}
	failed := false
	for _, id := range ids {
		start := time.Now()
		tables, err := bench.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mtaskbench: %s: %v\n", id, err)
			failed = true
			continue
		}
		for _, t := range tables {
			if *asJSON {
				data, err := t.JSON()
				if err != nil {
					fmt.Fprintf(os.Stderr, "mtaskbench: %s: %v\n", id, err)
					failed = true
					continue
				}
				fmt.Println(string(data))
			} else {
				fmt.Println(t.Format())
			}
		}
		if !*asJSON {
			fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runExec times the collective engine directly — the execution-side
// counterpart of the planning benchmarks: wall-clock per operation for the
// tree barrier and the allocation-free collectives at group sizes 2, 4 and
// 8, plus the marginal cost of one task-parallel PABM time step. The
// numbers correspond to BENCH_exec.json (regenerated there via `go test
// -bench`); on a single-core host they measure scheduling latency, not
// parallel contention.
func runExec(iters int) error {
	if iters < 1 {
		return fmt.Errorf("-exec-iters %d out of range", iters)
	}
	fmt.Printf("collective engine baseline: %d iterations/op, GOMAXPROCS=%d\n\n", iters, stdruntime.GOMAXPROCS(0))
	const vec = 64
	cases := []struct {
		name string
		body func(c *mrt.Comm, contrib, dst []float64) []float64
	}{
		{"barrier", func(c *mrt.Comm, _, dst []float64) []float64 {
			c.Barrier()
			return dst
		}},
		{"bcastInto", func(c *mrt.Comm, contrib, dst []float64) []float64 {
			c.BcastInto(0, contrib)
			return dst
		}},
		{"allgatherInto", func(c *mrt.Comm, contrib, dst []float64) []float64 {
			return c.AllgatherInto(contrib, dst)
		}},
		{"reduceInto", func(c *mrt.Comm, contrib, dst []float64) []float64 {
			return c.ReduceInto(mrt.ReduceSum, contrib, dst)
		}},
	}
	fmt.Printf("%-14s %12s %12s %12s\n", "collective", "p=2", "p=4", "p=8")
	for _, tc := range cases {
		fmt.Printf("%-14s", tc.name)
		for _, p := range []int{2, 4, 8} {
			w, err := mrt.NewWorld(p)
			if err != nil {
				return err
			}
			start := time.Now()
			w.Run(func(c *mrt.Comm) {
				contrib := make([]float64, vec)
				var dst []float64
				for i := 0; i < iters; i++ {
					dst = tc.body(c, contrib, dst)
				}
			})
			fmt.Printf(" %12s", fmtNsPerOp(time.Since(start), iters))
		}
		fmt.Println()
	}

	// One task-parallel PABM time step on 8 cores (the allgather-heavy ODE
	// loop of BenchmarkExecPABTimestepTP).
	steps := iters / 8
	if steps < 16 {
		steps = 16
	}
	w, err := mrt.NewWorld(8)
	if err != nil {
		return err
	}
	sys := ode.NewLinearDecay(256)
	start := time.Now()
	if _, err := ode.ParallelPAB(w, sys, 4, 2, ode.RunOpts{Groups: 4, Steps: steps, H: 1e-4}); err != nil {
		return err
	}
	fmt.Printf("\npabm timestep (tp, 8 cores, n=256): %s over %d steps\n", fmtNsPerOp(time.Since(start), steps), steps)
	return nil
}

// runExecWavefront runs the imbalanced workload (two chains of 2-rank
// group tasks, one slow and one fast task per layer with the slow side
// alternating) once under the layer-synchronous executor and once under
// the wavefront dispatcher, and reports wall time, core utilization and
// the speedup. The expected ratio is layers×slow vs layers×(slow+fast)/2,
// i.e. up to 2× for slow ≫ fast; the win is recovered barrier waiting
// time, so it holds on a single-CPU host. With traceOut set, both runs
// record into per-mode trace recorders (task spans, barrier-wait spans,
// per-rank collective counters) exported together as one Chrome trace.
// Exits non-zero if both runs do not complete all layers.
func runExecWavefront(layers int, slow, fast time.Duration, traceOut string) error {
	if layers < 1 {
		return fmt.Errorf("-wf-layers %d out of range", layers)
	}
	const p = 4
	sched := mrt.ImbalancedWorkload(p, layers)
	body := mrt.ImbalancedBody(slow, fast)
	fmt.Printf("imbalanced workload: %d layers x {slow %v, fast %v}, P=%d, GOMAXPROCS=%d\n\n",
		layers, slow, fast, p, stdruntime.GOMAXPROCS(0))

	var recs []*obs.Recorder
	var walls [2]time.Duration
	for i, mode := range []struct {
		name string
		opts []mrt.ExecOption
	}{
		{"layered", nil},
		{"wavefront", []mrt.ExecOption{mrt.WithWavefront()}},
	} {
		w, err := mrt.NewWorld(p)
		if err != nil {
			return err
		}
		opts := mode.opts
		if traceOut != "" {
			rec := obs.New(p, obs.WithName(mode.name))
			recs = append(recs, rec)
			opts = append(opts, mrt.WithRecorder(rec))
		}
		rep, err := mrt.ExecuteCtx(context.Background(), w, sched, body, opts...)
		if err != nil {
			return fmt.Errorf("%s execution failed: %w\n%s", mode.name, err, rep)
		}
		if rep.Layers != layers {
			return fmt.Errorf("%s execution completed %d of %d layers", mode.name, rep.Layers, layers)
		}
		busy, idle, frac := rep.Utilization()
		fmt.Printf("%-10s wall %10v  busy %10v  idle %10v  (%.1f%% utilized, %d spans)\n",
			mode.name, rep.Wall.Round(time.Microsecond), busy.Round(time.Microsecond),
			idle.Round(time.Microsecond), 100*frac, len(rep.Timeline()))
		walls[i] = rep.Wall
	}
	fmt.Printf("\nspeedup: %.2fx (layered %v -> wavefront %v)\n",
		float64(walls[0])/float64(walls[1]),
		walls[0].Round(time.Microsecond), walls[1].Round(time.Microsecond))
	if traceOut != "" {
		if err := obs.WriteChromeFile(traceOut, recs...); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		var events, drops int64
		for _, rec := range recs {
			m := rec.Metrics()
			events += m["obs.events"]
			drops += m["obs.drops"]
		}
		fmt.Printf("trace: wrote %s (%d events, %d dropped)\n", traceOut, events, drops)
	}
	return nil
}

// runExecScale makes execution scale like planning: it plans a
// deterministic scaled solver graph of ~tasks tasks on a CHiC subset and
// then actually executes the schedule end to end — once on the
// persistent-worker wavefront dispatcher and once on the reference
// channel dispatcher — with runnable synthetic bodies whose trajectory is
// verified bitwise against the sequential reference. For each run it
// reports wall time, per-task dispatch overhead, peak extra goroutines
// (sampled concurrently; the worker dispatcher must stay at O(P)) and
// core utilization. The greppable "persistent-worker dispatch ok" line is
// the CI acceptance signal.
func runExecScale(tasks, cores int) error {
	if cores < 1 || cores > mtask.CHiC().TotalCores() {
		return fmt.Errorf("-exec-cores %d out of range 1..%d", cores, mtask.CHiC().TotalCores())
	}
	build := time.Now()
	g := ode.ScaledSolverGraph(tasks)
	fmt.Printf("generated %s: %d tasks, %d edges in %v\n", g.Name, g.Len(), g.NumEdges(), time.Since(build))

	ctx := context.Background()
	machine := mtask.CHiC().SubsetCores(cores)
	planner := mtask.NewPlanner(mtask.WithCores(cores))
	start := time.Now()
	mp, err := planner.Plan(ctx, g, machine)
	if err != nil {
		return err
	}
	fmt.Printf("planned in %v: %s\n\n", time.Since(start).Round(time.Millisecond), mtask.Describe(mp))

	ref := time.Now()
	want := ode.ScaledReference(g)
	fmt.Printf("sequential reference: %d slots in %v\n\n", len(want), time.Since(ref).Round(time.Millisecond))

	type result struct {
		wall time.Duration
		peak int
	}
	results := map[string]result{}
	for _, mode := range []struct {
		name string
		opts []mrt.ExecOption
	}{
		{"workers", []mrt.ExecOption{mrt.WithWavefront(), mrt.WithoutTimeline()}},
		{"channel", []mrt.ExecOption{mrt.WithWavefront(), mrt.WithChannelDispatcher(), mrt.WithoutTimeline()}},
	} {
		w, err := mrt.NewWorld(cores)
		if err != nil {
			return err
		}
		st := ode.NewScaledExecState(g)

		// Sample the goroutine count while the run is in flight: the
		// persistent-worker dispatcher must hold O(P) extra goroutines
		// regardless of graph size, where goroutine-per-task dispatch
		// peaks with the widest ready frontier.
		base := stdruntime.NumGoroutine()
		var peak atomic.Int64
		stop := make(chan struct{})
		monitorDone := make(chan struct{})
		go func() {
			defer close(monitorDone)
			tick := time.NewTicker(100 * time.Microsecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					n := int64(stdruntime.NumGoroutine())
					for {
						cur := peak.Load()
						if n <= cur || peak.CompareAndSwap(cur, n) {
							break
						}
					}
				}
			}
		}()

		start := time.Now()
		rep, err := mrt.ExecuteCtx(ctx, w, mp.Schedule, st.Body, mode.opts...)
		wall := time.Since(start)
		close(stop)
		<-monitorDone
		if err != nil {
			return fmt.Errorf("%s execution failed: %w\n%s", mode.name, err, rep)
		}
		if rep.Layers != len(mp.Schedule.Layers) {
			return fmt.Errorf("%s execution completed %d of %d layers", mode.name, rep.Layers, len(mp.Schedule.Layers))
		}
		if err := ode.CompareScaledOutputs(want, st.Outputs()); err != nil {
			return fmt.Errorf("%s results diverged from the sequential reference: %w", mode.name, err)
		}
		extra := int(peak.Load()) - base
		if extra < 0 {
			extra = 0
		}
		_, _, frac := rep.Utilization()
		fmt.Printf("%-8s wall %10v  %6d ns/task  peak +%d goroutines  %.1f%% utilized  checksum %.9g (verified)\n",
			mode.name, wall.Round(time.Microsecond), wall.Nanoseconds()/int64(g.Len()), extra, 100*frac, st.Checksum())
		results[mode.name] = result{wall: wall, peak: extra}
	}

	wk, ch := results["workers"], results["channel"]
	fmt.Printf("\ndispatch overhead: workers %d ns/task vs channel %d ns/task (%.2fx)\n",
		wk.wall.Nanoseconds()/int64(g.Len()), ch.wall.Nanoseconds()/int64(g.Len()),
		float64(ch.wall)/float64(wk.wall))
	if wk.peak > 4*cores+16 {
		return fmt.Errorf("persistent-worker dispatch leaked goroutines: peak +%d for P=%d", wk.peak, cores)
	}
	fmt.Printf("persistent-worker dispatch ok: %d tasks executed and verified bitwise on P=%d (peak +%d goroutines)\n",
		g.Len(), cores, wk.peak)
	return nil
}

// fmtNsPerOp renders elapsed/n with ns resolution.
func fmtNsPerOp(d time.Duration, n int) string {
	return fmt.Sprintf("%d ns/op", d.Nanoseconds()/int64(n))
}

// solverGraph builds the named solver's M-task graph at the given scale
// (the fig13/fig15 workloads of the evaluation).
func solverGraph(solver string, n, steps int) (*graph.Graph, error) {
	const eval = 600
	switch solver {
	case "epol":
		return ode.BuildEPOLGraph(n, eval, 8, steps), nil
	case "irk":
		return ode.BuildIRKGraph(n, eval, 4, 2, steps), nil
	case "diirk":
		return ode.BuildDIIRKGraph(n, eval, 4, 2, steps), nil
	case "pab":
		return ode.BuildPABGraph(n, eval, 8, 0, steps), nil
	case "pabm":
		return ode.BuildPABGraph(n, eval, 8, 2, steps), nil
	}
	return nil, fmt.Errorf("unknown solver %q (want epol|irk|diirk|pab|pabm)", solver)
}

// runFaults executes a solver graph on the goroutine runtime under
// injected failures (probabilistic error/panic/delay faults and an
// optional scripted core loss), with retries and degrade-and-replan
// enabled, and verifies that the computed trajectory is bitwise identical
// to the failure-free sequential reference. It exits non-zero on any
// divergence — the acceptance check of the fault-tolerance layer.
func runFaults(solver string, cores, n, steps int, seed int64, perr, ppanic, pdelay float64, kill string) error {
	g, err := solverGraph(solver, n, steps)
	if err != nil {
		return err
	}
	if cores < 1 {
		return fmt.Errorf("-fault-cores %d out of range", cores)
	}
	machine := mtask.CHiC().SubsetCores(cores)
	planner := mtask.NewPlanner(mtask.WithCores(cores))
	ctx := context.Background()
	mp, err := planner.Plan(ctx, g, machine)
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", mtask.Describe(mp))

	inj := &mtask.FaultInjector{
		Seed: seed, PError: perr, PPanic: ppanic, PDelay: pdelay,
		Delay: 200 * time.Microsecond,
	}
	if kill != "" {
		task, attempt, err := parseKill(kill)
		if err != nil {
			return err
		}
		inj.Script = append(inj.Script, mtask.FaultScript{
			Task: task, Attempt: attempt, Rank: 0, Kind: mtask.FaultCoreLoss,
		})
		fmt.Printf("scripted core loss: task %q, attempt %d\n", task, attempt)
	}
	pol := mtask.DefaultFaultPolicy()
	pol.MaxRetries = 6
	pol.BaseBackoff = 100 * time.Microsecond
	pol.DegradeAndReplan = true

	w, err := mtask.NewWorld(cores)
	if err != nil {
		return err
	}
	want := ode.Reference(g, n)
	st := ode.NewExecState(g, n)
	rep, err := mtask.ExecuteCtx(ctx, w, mp.Schedule, st.Body,
		mtask.WithFaultPolicy(pol),
		mtask.WithFaultInjector(inj),
		mtask.WithReplanner(mtask.ReplannerFor(planner, g, machine)))
	fmt.Print(rep)
	if err != nil {
		return fmt.Errorf("execution failed: %w", err)
	}
	if err := ode.CompareOutputs(want, st.Outputs()); err != nil {
		return fmt.Errorf("results diverged from the failure-free reference: %w", err)
	}
	fmt.Printf("results bitwise identical to the failure-free reference (%d tasks verified)\n", len(want))
	return nil
}

// parseKill parses a 'task@attempt' scripted core-loss spec; the task name
// may itself contain parentheses and brackets, so the attempt is split off
// at the last '@'.
func parseKill(s string) (task string, attempt int, err error) {
	i := strings.LastIndex(s, "@")
	if i <= 0 || i == len(s)-1 {
		return "", 0, fmt.Errorf("malformed -kill %q (want 'task@attempt')", s)
	}
	attempt, err = strconv.Atoi(s[i+1:])
	if err != nil || attempt < 1 {
		return "", 0, fmt.Errorf("malformed -kill attempt in %q", s)
	}
	return s[:i], attempt, nil
}

// runPlan drives the Planner engine once cold and `repeat` times warm,
// generating a scaled solver graph when scale > 0,
// reporting per-request latency, the schedule shape and the simulated
// makespan. With traceOut set, planner activity (per-layer g-search
// spans, cache hit instants, cost-model memo counters) is exported as a
// Chrome trace.
func runPlan(solver string, scale, cores, n, steps int, strategy string, parallel, repeat int, nocache bool, timeout time.Duration, traceOut string) error {
	var g *graph.Graph
	var err error
	if scale > 0 {
		build := time.Now()
		g = ode.ScaledSolverGraph(scale)
		fmt.Printf("generated %s: %d tasks, %d edges in %v\n", g.Name, g.Len(), g.NumEdges(), time.Since(build))
	} else {
		g, err = solverGraph(solver, n, steps)
		if err != nil {
			return err
		}
	}
	strat, err := mtask.StrategyByName(strategy)
	if err != nil {
		return err
	}
	if cores < 1 || cores > mtask.CHiC().TotalCores() {
		return fmt.Errorf("-cores %d out of range 1..%d", cores, mtask.CHiC().TotalCores())
	}
	machine := mtask.CHiC().SubsetCores(cores)

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	planner := mtask.NewPlanner(
		mtask.WithStrategy(strat),
		mtask.WithCores(cores),
		mtask.WithParallelism(parallel),
	)
	opts := []mtask.PlanOption{}
	if nocache {
		opts = append(opts, mtask.WithoutCache())
	}
	var rec *obs.Recorder
	if traceOut != "" {
		rec = obs.New(0, obs.WithName("planner"))
		opts = append(opts, mtask.WithPlanTrace(rec))
	}

	var mp *mtask.Mapping
	var info mtask.PlanInfo
	opts = append(opts, mtask.WithPlanInfo(&info))
	for i := 0; i <= repeat; i++ {
		start := time.Now()
		mp, err = planner.Plan(ctx, g, machine, opts...)
		if err != nil {
			return err
		}
		kind := "cold"
		switch {
		case info.CacheHit:
			kind = "cache-hit"
		case info.Coalesced:
			kind = "coalesced"
		case info.Incremental:
			kind = fmt.Sprintf("incremental, %d reused / %d searched layers", info.ReusedLayers, info.PatchedLayers)
		}
		fmt.Printf("plan %d (%s): %v\n", i, kind, time.Since(start))
	}
	hits, misses := planner.Cache().Stats()
	fmt.Printf("cache: %d hits / %d misses\n", hits, misses)

	res, err := mtask.SimulateCtx(ctx, mp)
	if err != nil {
		return err
	}
	fmt.Printf("%s\npredicted makespan: %.6gs\n", mtask.Describe(mp), res.Makespan)
	if traceOut != "" {
		if err := obs.WriteChromeFile(traceOut, rec); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		fmt.Printf("trace: wrote %s (%d events)\n", traceOut, rec.Metrics()["obs.events"])
	}
	return nil
}
