// Command mtaskbench regenerates the tables and figures of the paper's
// evaluation, and exercises the Planner engine on the paper's solver
// graphs.
//
// Usage:
//
//	mtaskbench -list
//	mtaskbench -exp fig14
//	mtaskbench -exp all
//	mtaskbench -plan pabm -cores 256 -steps 16 -repeat 5
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"mtask"
	"mtask/internal/bench"
	"mtask/internal/graph"
	"mtask/internal/ode"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run, or 'all'")
	list := flag.Bool("list", false, "list available experiments")
	asJSON := flag.Bool("json", false, "emit tables as JSON instead of text")
	planSolver := flag.String("plan", "", "plan a solver graph (epol|irk|diirk|pab|pabm) through the Planner engine")
	cores := flag.Int("cores", 256, "plan: cores of the CHiC partition")
	n := flag.Int("n", 40000, "plan: ODE system size")
	steps := flag.Int("steps", 8, "plan: time steps in the task graph")
	strategy := flag.String("strategy", "consecutive", "plan: mapping strategy (consecutive|scattered|mixed:<d>)")
	parallel := flag.Int("parallel", 0, "plan: search workers (0 = GOMAXPROCS, 1 = sequential)")
	repeat := flag.Int("repeat", 3, "plan: repeated requests after the cold plan (cache hits)")
	nocache := flag.Bool("nocache", false, "plan: bypass the schedule cache")
	timeout := flag.Duration("timeout", 0, "plan: abort planning after this duration (0 = none)")
	flag.Parse()

	if *planSolver != "" {
		if err := runPlan(*planSolver, *cores, *n, *steps, *strategy, *parallel, *repeat, *nocache, *timeout); err != nil {
			fmt.Fprintf(os.Stderr, "mtaskbench: plan: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, id := range bench.ExperimentIDs() {
			fmt.Printf("  %s\n", id)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.ExperimentIDs()
	}
	failed := false
	for _, id := range ids {
		start := time.Now()
		tables, err := bench.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mtaskbench: %s: %v\n", id, err)
			failed = true
			continue
		}
		for _, t := range tables {
			if *asJSON {
				data, err := t.JSON()
				if err != nil {
					fmt.Fprintf(os.Stderr, "mtaskbench: %s: %v\n", id, err)
					failed = true
					continue
				}
				fmt.Println(string(data))
			} else {
				fmt.Println(t.Format())
			}
		}
		if !*asJSON {
			fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	if failed {
		os.Exit(1)
	}
}

// solverGraph builds the named solver's M-task graph at the given scale
// (the fig13/fig15 workloads of the evaluation).
func solverGraph(solver string, n, steps int) (*graph.Graph, error) {
	const eval = 600
	switch solver {
	case "epol":
		return ode.BuildEPOLGraph(n, eval, 8, steps), nil
	case "irk":
		return ode.BuildIRKGraph(n, eval, 4, 2, steps), nil
	case "diirk":
		return ode.BuildDIIRKGraph(n, eval, 4, 2, steps), nil
	case "pab":
		return ode.BuildPABGraph(n, eval, 8, 0, steps), nil
	case "pabm":
		return ode.BuildPABGraph(n, eval, 8, 2, steps), nil
	}
	return nil, fmt.Errorf("unknown solver %q (want epol|irk|diirk|pab|pabm)", solver)
}

// runPlan drives the Planner engine once cold and `repeat` times warm,
// reporting per-request latency, the schedule shape and the simulated
// makespan.
func runPlan(solver string, cores, n, steps int, strategy string, parallel, repeat int, nocache bool, timeout time.Duration) error {
	g, err := solverGraph(solver, n, steps)
	if err != nil {
		return err
	}
	strat, err := mtask.StrategyByName(strategy)
	if err != nil {
		return err
	}
	if cores < 1 || cores > mtask.CHiC().TotalCores() {
		return fmt.Errorf("-cores %d out of range 1..%d", cores, mtask.CHiC().TotalCores())
	}
	machine := mtask.CHiC().SubsetCores(cores)

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	planner := mtask.NewPlanner(
		mtask.WithStrategy(strat),
		mtask.WithCores(cores),
		mtask.WithParallelism(parallel),
	)
	opts := []mtask.PlanOption{}
	if nocache {
		opts = append(opts, mtask.WithoutCache())
	}

	var mp *mtask.Mapping
	for i := 0; i <= repeat; i++ {
		start := time.Now()
		mp, err = planner.Plan(ctx, g, machine, opts...)
		if err != nil {
			return err
		}
		kind := "cold"
		if i > 0 {
			kind = "warm"
		}
		fmt.Printf("plan %d (%s): %v\n", i, kind, time.Since(start))
	}
	hits, misses := planner.Cache().Stats()
	fmt.Printf("cache: %d hits / %d misses\n", hits, misses)

	res, err := mtask.SimulateCtx(ctx, mp)
	if err != nil {
		return err
	}
	fmt.Printf("%s\npredicted makespan: %.6gs\n", mtask.Describe(mp), res.Makespan)
	return nil
}
