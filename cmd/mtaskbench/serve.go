package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	stdruntime "runtime"

	"mtask/internal/arch"
	"mtask/internal/ode"
	"mtask/internal/plan"
	"mtask/internal/serve"
)

// serveRecord is the BENCH_serve.json schema: one load-generator run
// against the in-process planning service handler.
type serveRecord struct {
	Config struct {
		Clients    int `json:"clients"`
		Requests   int `json:"requests_per_client"`
		Graphs     int `json:"graphs"`
		Cores      int `json:"cores"`
		GOMAXPROCS int `json:"gomaxprocs"`
	} `json:"config"`
	Totals struct {
		Requests   int     `json:"requests"`
		OK         int     `json:"ok"`
		Failures   int     `json:"failures"`
		WallSec    float64 `json:"wall_seconds"`
		Throughput float64 `json:"throughput_rps"`
	} `json:"totals"`
	LatencyUS struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_us"`
	Serve map[string]int64 `json:"serve_metrics"`
	// Overload is the 1x/4x/16x overload profile before vs. after
	// admission control (-serve-overload).
	Overload []overloadRow `json:"overload,omitempty"`
}

// runServe load-tests the planning service handler in process: clients
// concurrent goroutines each POST requests plan bodies (round-robin over
// graphs distinct fingerprints) straight into serve.Server's handler,
// so the measurement includes JSON decode, admission, cache/singleflight
// and response encode, but no sockets. It verifies the coalescing
// invariant — exactly one cold plan per distinct fingerprint, coalesced
// followers observed — and records latency percentiles and throughput.
func runServe(clients, requests, graphs, cores int, out string, overload bool, deadline time.Duration) error {
	if clients < 1 || requests < 1 || graphs < 1 {
		return fmt.Errorf("-serve-clients/-serve-requests/-serve-graphs must be >= 1")
	}
	if graphs > 64 {
		return fmt.Errorf("-serve-graphs %d out of range 1..64", graphs)
	}

	// The planner searches with at least two workers even on one P: the
	// search's channel handoffs are scheduler yield points, so concurrent
	// clients interleave with a cold plan (and coalesce onto it) even
	// when GOMAXPROCS=1 would otherwise serialize sub-quantum requests.
	workers := stdruntime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	s := serve.New(serve.WithPlanner(plan.NewWithCache(
		plan.NewShardedCache(4*graphs, 0),
		plan.WithParallelism(workers))))
	h := s.Handler()

	machine := arch.CHiC().SubsetCores(cores)
	bodies := make([][]byte, graphs)
	for i := range bodies {
		body, err := json.Marshal(&serve.PlanRequest{
			Graph:   ode.BuildPABGraph(4000, 600, 8, 2, i+1),
			Machine: machine,
		})
		if err != nil {
			return err
		}
		bodies[i] = body
	}

	lat := make([][]time.Duration, clients)
	var (
		startGate sync.WaitGroup
		wg        sync.WaitGroup
		failures  atomic.Int64
	)
	startGate.Add(1)
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			durs := make([]time.Duration, 0, requests)
			startGate.Wait()
			for r := 0; r < requests; r++ {
				body := bodies[(c+r)%len(bodies)]
				t0 := time.Now()
				req := httptest.NewRequest("POST", "/v1/plan", bytes.NewReader(body))
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					failures.Add(1)
					continue
				}
				durs = append(durs, time.Since(t0))
			}
			lat[c] = durs
		}(c)
	}
	wallStart := time.Now()
	startGate.Done()
	wg.Wait()
	wall := time.Since(wallStart)

	var all []time.Duration
	for _, durs := range lat {
		all = append(all, durs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) == 0 {
		return fmt.Errorf("every request failed (%d failures)", failures.Load())
	}
	pct := func(p float64) float64 {
		i := int(p * float64(len(all)-1))
		return float64(all[i]) / float64(time.Microsecond)
	}

	m := s.Metrics()
	total := clients * requests

	var rec serveRecord
	rec.Config.Clients = clients
	rec.Config.Requests = requests
	rec.Config.Graphs = graphs
	rec.Config.Cores = cores
	rec.Config.GOMAXPROCS = stdruntime.GOMAXPROCS(0)
	rec.Totals.Requests = total
	rec.Totals.OK = len(all)
	rec.Totals.Failures = int(failures.Load())
	rec.Totals.WallSec = wall.Seconds()
	rec.Totals.Throughput = float64(len(all)) / wall.Seconds()
	rec.LatencyUS.P50 = pct(0.50)
	rec.LatencyUS.P90 = pct(0.90)
	rec.LatencyUS.P99 = pct(0.99)
	rec.LatencyUS.Max = float64(all[len(all)-1]) / float64(time.Microsecond)
	rec.Serve = map[string]int64{
		"plans_cold": m["serve.plans_cold"],
		"coalesced":  m["serve.coalesced"],
		"cache_hits": m["serve.cache_hits"],
		"requests":   m["serve.requests"],
	}

	fmt.Printf("serve load: %d clients x %d requests over %d graphs on %d cores\n",
		clients, requests, graphs, cores)
	fmt.Printf("  %d ok, %d failed in %.2fs  (%.0f req/s)\n",
		rec.Totals.OK, rec.Totals.Failures, rec.Totals.WallSec, rec.Totals.Throughput)
	fmt.Printf("  latency p50 %.0fus  p90 %.0fus  p99 %.0fus  max %.0fus\n",
		rec.LatencyUS.P50, rec.LatencyUS.P90, rec.LatencyUS.P99, rec.LatencyUS.Max)
	fmt.Printf("  cold plans %d  coalesced %d  cache hits %d\n",
		m["serve.plans_cold"], m["serve.coalesced"], m["serve.cache_hits"])

	if rec.Totals.Failures > 0 {
		return fmt.Errorf("%d of %d requests failed", rec.Totals.Failures, total)
	}
	// The singleflight contract at load: one cold plan per fingerprint,
	// everything else coalesced into it or served from the cache.
	if cold := m["serve.plans_cold"]; cold != int64(graphs) {
		return fmt.Errorf("%d cold plans for %d distinct fingerprints — coalescing broken", cold, graphs)
	}
	if clients > graphs && m["serve.coalesced"] == 0 {
		return fmt.Errorf("no request was coalesced under %d concurrent clients — singleflight inert", clients)
	}

	if overload {
		fmt.Println()
		rows, err := overloadProfile(cores, deadline)
		if err != nil {
			return err
		}
		rec.Overload = rows
	}

	if out != "" {
		data, err := json.MarshalIndent(&rec, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", out)
	}
	return nil
}
