// Command mtaskd serves the planning engine over HTTP: a long-running,
// multi-tenant daemon exposing the paper's combined scheduling and
// mapping as a service, with per-tenant token-bucket quotas, a
// fingerprint-sharded schedule cache and singleflight coalescing of
// concurrent identical requests.
//
// Usage:
//
//	mtaskd -addr :8080
//	mtaskd -addr :8080 -cache 1024 -shards 32 -quota-rate 50 -quota-burst 100
//	mtaskd -print-request pab | curl -s -d @- localhost:8080/v1/plan
//
// Endpoints: POST /v1/plan, POST /v1/simulate, GET /healthz,
// GET /metricz. See docs/SERVING.md for the wire format.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mtask/internal/arch"
	"mtask/internal/graph"
	"mtask/internal/obs"
	"mtask/internal/ode"
	"mtask/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cache := flag.Int("cache", 0, "schedule cache capacity in mappings (0 = default)")
	shards := flag.Int("shards", 0, "schedule cache shard count, rounded up to a power of two (0 = default)")
	quotaRate := flag.Float64("quota-rate", 0, "per-tenant admission rate in requests/second (0 = unlimited)")
	quotaBurst := flag.Int("quota-burst", 1, "per-tenant token-bucket burst")
	maxBody := flag.Int64("max-body", 0, "request body limit in bytes (0 = default 64 MiB)")
	printReq := flag.String("print-request", "", "print a sample /v1/plan JSON body for a solver graph (epol|irk|diirk|pab|pabm) and exit")
	reqCores := flag.Int("request-cores", 16, "print-request: cores of the CHiC partition in the sample body")
	reqN := flag.Int("request-n", 4000, "print-request: ODE system size of the sample graph")
	reqSteps := flag.Int("request-steps", 2, "print-request: time steps of the sample graph")
	flag.Parse()

	if *printReq != "" {
		if err := printRequest(os.Stdout, *printReq, *reqN, *reqSteps, *reqCores); err != nil {
			fmt.Fprintf(os.Stderr, "mtaskd: print-request: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if err := run(*addr, *cache, *shards, *quotaRate, *quotaBurst, *maxBody); err != nil {
		fmt.Fprintf(os.Stderr, "mtaskd: %v\n", err)
		os.Exit(1)
	}
}

// run serves until SIGINT/SIGTERM, then drains in-flight requests.
func run(addr string, cache, shards int, quotaRate float64, quotaBurst int, maxBody int64) error {
	var opts []serve.Option
	if cache > 0 || shards > 0 {
		opts = append(opts, serve.WithCache(cache, shards))
	}
	if quotaRate > 0 {
		opts = append(opts, serve.WithQuota(quotaRate, quotaBurst))
	}
	if maxBody > 0 {
		opts = append(opts, serve.WithMaxBodyBytes(maxBody))
	}
	opts = append(opts, serve.WithRecorder(obs.New(0, obs.WithName("mtaskd"))))
	s := serve.New(opts...)

	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "mtaskd: listening on %s (quota %v req/s burst %d)\n",
			addr, quotaRate, quotaBurst)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "mtaskd: shutting down")

	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintf(os.Stderr, "mtaskd: served %d requests\n", s.Metrics()["serve.requests"])
	return nil
}

// printRequest writes a ready-to-POST /v1/plan body for a solver graph —
// the CI smoke test and the SERVING.md walkthrough use it so the wire
// format never has to be hand-written.
func printRequest(w *os.File, solver string, n, steps, cores int) error {
	g, err := solverGraph(solver, n, steps)
	if err != nil {
		return err
	}
	if cores < 1 {
		return fmt.Errorf("-request-cores %d out of range", cores)
	}
	body, err := json.MarshalIndent(&serve.PlanRequest{
		Graph:   g,
		Machine: arch.CHiC().SubsetCores(cores),
	}, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", body)
	return err
}

// solverGraph builds the named solver's M-task graph at the given scale
// (the same workloads mtaskbench plans and executes).
func solverGraph(solver string, n, steps int) (*graph.Graph, error) {
	const eval = 600
	switch solver {
	case "epol":
		return ode.BuildEPOLGraph(n, eval, 8, steps), nil
	case "irk":
		return ode.BuildIRKGraph(n, eval, 4, 2, steps), nil
	case "diirk":
		return ode.BuildDIIRKGraph(n, eval, 4, 2, steps), nil
	case "pab":
		return ode.BuildPABGraph(n, eval, 8, 0, steps), nil
	case "pabm":
		return ode.BuildPABGraph(n, eval, 8, 2, steps), nil
	}
	return nil, fmt.Errorf("unknown solver %q (want epol|irk|diirk|pab|pabm)", solver)
}
