// Command mtaskd serves the planning engine over HTTP: a long-running,
// multi-tenant daemon exposing the paper's combined scheduling and
// mapping as a service, with per-tenant token-bucket quotas, an adaptive
// global admission limit, deadline propagation, graceful degradation, a
// fingerprint-sharded schedule cache and singleflight coalescing of
// concurrent identical requests.
//
// Usage:
//
//	mtaskd -addr :8080
//	mtaskd -addr :8080 -cache 1024 -shards 32 -quota-rate 50 -quota-burst 100
//	mtaskd -addr :8080 -admission -admission-limit 32 -degrade-after 250ms
//	mtaskd -addr :8080 -chaos-seed 42 -chaos-slow-plans 0.1 -chaos-panics 0.01
//	mtaskd -print-request pab | curl -s -d @- localhost:8080/v1/plan
//
// Endpoints: POST /v1/plan, POST /v1/simulate, GET /healthz (liveness),
// GET /readyz (readiness), GET /metricz. On SIGINT/SIGTERM the daemon
// flips readiness to "draining", waits -drain-grace so load balancers
// notice, then drains in-flight requests. See docs/SERVING.md for the
// wire format and the overload runbook.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mtask/internal/arch"
	"mtask/internal/fault"
	"mtask/internal/graph"
	"mtask/internal/obs"
	"mtask/internal/ode"
	"mtask/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cache := flag.Int("cache", 0, "schedule cache capacity in mappings (0 = default)")
	shards := flag.Int("shards", 0, "schedule cache shard count, rounded up to a power of two (0 = default)")
	quotaRate := flag.Float64("quota-rate", 0, "per-tenant admission rate in requests/second (0 = unlimited)")
	quotaBurst := flag.Int("quota-burst", 1, "per-tenant token-bucket burst")
	maxBody := flag.Int64("max-body", 0, "request body limit in bytes (0 = default 64 MiB)")

	admission := flag.Bool("admission", false, "enable the adaptive global concurrency limit")
	admLimit := flag.Int("admission-limit", 0, "admission: initial concurrency limit (0 = default)")
	admMax := flag.Int("admission-max", 0, "admission: upper bound of the adaptive limit (0 = default)")
	admQueue := flag.Int("admission-queue", 0, "admission: bounded wait-queue capacity (0 = default, negative disables queueing)")
	admTarget := flag.Duration("admission-target", 0, "admission: plan-latency target of the AIMD controller (0 = default)")
	degradeAfter := flag.Duration("degrade-after", 0, "serve a stale same-family mapping flagged degraded when a cold plan runs longer than this (0 = disabled)")
	maxDeadline := flag.Duration("max-deadline", 0, "cap on client X-Request-Deadline budgets (0 = default)")
	drainGrace := flag.Duration("drain-grace", 0, "how long readiness reports draining before the listener shuts down")

	chaosSeed := flag.Int64("chaos-seed", 0, "chaos: deterministic injection seed (0 = chaos disabled)")
	chaosSlow := flag.Float64("chaos-slow-plans", 0, "chaos: probability of a slowed cold plan")
	chaosSlowDelay := flag.Duration("chaos-slow-delay", 0, "chaos: injected cold-plan delay (0 = default)")
	chaosLeak := flag.Float64("chaos-leak-leaders", 0, "chaos: probability of a leaked (long-stalled) singleflight leader")
	chaosErrors := flag.Float64("chaos-plan-errors", 0, "chaos: probability of a failed cold plan")
	chaosPanics := flag.Float64("chaos-plan-panics", 0, "chaos: probability of a panicking cold plan (leader crash)")
	chaosHandlerPanics := flag.Float64("chaos-handler-panics", 0, "chaos: probability of a handler panic")
	chaosCacheStalls := flag.Float64("chaos-cache-stalls", 0, "chaos: probability of a stalled cache-shard access")

	printReq := flag.String("print-request", "", "print a sample /v1/plan JSON body for a solver graph (epol|irk|diirk|pab|pabm) and exit")
	reqCores := flag.Int("request-cores", 16, "print-request: cores of the CHiC partition in the sample body")
	reqN := flag.Int("request-n", 4000, "print-request: ODE system size of the sample graph")
	reqSteps := flag.Int("request-steps", 2, "print-request: time steps of the sample graph")
	flag.Parse()

	if *printReq != "" {
		if err := printRequest(os.Stdout, *printReq, *reqN, *reqSteps, *reqCores); err != nil {
			fmt.Fprintf(os.Stderr, "mtaskd: print-request: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var opts []serve.Option
	if *cache > 0 || *shards > 0 {
		opts = append(opts, serve.WithCache(*cache, *shards))
	}
	if *quotaRate > 0 {
		opts = append(opts, serve.WithQuota(*quotaRate, *quotaBurst))
	}
	if *maxBody > 0 {
		opts = append(opts, serve.WithMaxBodyBytes(*maxBody))
	}
	if *admission {
		opts = append(opts, serve.WithAdmission(serve.AdmissionConfig{
			InitialLimit: *admLimit,
			MaxLimit:     *admMax,
			Queue:        *admQueue,
			Target:       *admTarget,
		}))
	}
	if *degradeAfter > 0 {
		opts = append(opts, serve.WithDegraded(*degradeAfter, 0))
	}
	if *maxDeadline > 0 {
		opts = append(opts, serve.WithMaxDeadline(*maxDeadline))
	}
	if *chaosSeed != 0 {
		opts = append(opts, serve.WithChaos(&fault.ServeInjector{
			Seed:            *chaosSeed,
			PSlowPlan:       *chaosSlow,
			SlowPlanDelay:   *chaosSlowDelay,
			PLeakLeader:     *chaosLeak,
			PPlanError:      *chaosErrors,
			PPlanPanic:      *chaosPanics,
			PHandlerPanic:   *chaosHandlerPanics,
			PCacheStall:     *chaosCacheStalls,
			CacheStallDelay: 0,
		}))
		fmt.Fprintf(os.Stderr, "mtaskd: CHAOS MODE seed=%d (slow %g leak %g error %g panic %g handler-panic %g cache-stall %g)\n",
			*chaosSeed, *chaosSlow, *chaosLeak, *chaosErrors, *chaosPanics, *chaosHandlerPanics, *chaosCacheStalls)
	}

	if err := run(*addr, *quotaRate, *quotaBurst, *drainGrace, opts); err != nil {
		fmt.Fprintf(os.Stderr, "mtaskd: %v\n", err)
		os.Exit(1)
	}
}

// run serves until SIGINT/SIGTERM, then flips readiness to draining,
// waits the drain grace so load balancers stop routing here, and drains
// in-flight requests.
func run(addr string, quotaRate float64, quotaBurst int, drainGrace time.Duration, opts []serve.Option) error {
	opts = append(opts, serve.WithRecorder(obs.New(0, obs.WithName("mtaskd"))))
	s := serve.New(opts...)

	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "mtaskd: listening on %s (quota %v req/s burst %d)\n",
			addr, quotaRate, quotaBurst)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()

	// Drain: readiness flips first, so /readyz answers 503 "draining"
	// while the listener still accepts (and finishes) requests; only
	// after the grace does the listener itself shut down.
	s.SetDraining(true)
	fmt.Fprintf(os.Stderr, "mtaskd: draining (grace %v)\n", drainGrace)
	if drainGrace > 0 {
		time.Sleep(drainGrace)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	m := s.Metrics()
	fmt.Fprintf(os.Stderr, "mtaskd: served %d requests (shed %d, degraded %d, deadline-exceeded %d)\n",
		m["serve.requests"], m["serve.shed"], m["serve.degraded"], m["serve.deadline_exceeded"])
	return nil
}

// printRequest writes a ready-to-POST /v1/plan body for a solver graph —
// the CI smoke test and the SERVING.md walkthrough use it so the wire
// format never has to be hand-written.
func printRequest(w *os.File, solver string, n, steps, cores int) error {
	g, err := solverGraph(solver, n, steps)
	if err != nil {
		return err
	}
	if cores < 1 {
		return fmt.Errorf("-request-cores %d out of range", cores)
	}
	body, err := json.MarshalIndent(&serve.PlanRequest{
		Graph:   g,
		Machine: arch.CHiC().SubsetCores(cores),
	}, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", body)
	return err
}

// solverGraph builds the named solver's M-task graph at the given scale
// (the same workloads mtaskbench plans and executes).
func solverGraph(solver string, n, steps int) (*graph.Graph, error) {
	const eval = 600
	switch solver {
	case "epol":
		return ode.BuildEPOLGraph(n, eval, 8, steps), nil
	case "irk":
		return ode.BuildIRKGraph(n, eval, 4, 2, steps), nil
	case "diirk":
		return ode.BuildDIIRKGraph(n, eval, 4, 2, steps), nil
	case "pab":
		return ode.BuildPABGraph(n, eval, 8, 0, steps), nil
	case "pabm":
		return ode.BuildPABGraph(n, eval, 8, 2, steps), nil
	}
	return nil, fmt.Errorf("unknown solver %q (want epol|irk|diirk|pab|pabm)", solver)
}
