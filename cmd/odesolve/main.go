// Command odesolve integrates an ODE system with one of the paper's
// parallel solvers on the goroutine runtime, comparing the data-parallel
// and task-parallel program versions and reporting the collective
// operation counts (Table 1) and the accuracy against the sequential
// reference.
//
// Usage:
//
//	odesolve -method pabm -system bruss2d -size 8 -cores 8 -steps 10
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mtask/internal/obs"
	"mtask/internal/ode"
	"mtask/internal/runtime"
)

func main() {
	method := flag.String("method", "epol", "solver: epol, irk, diirk, pab, pabm")
	system := flag.String("system", "bruss2d", "system: bruss2d, schroed, linear")
	size := flag.Int("size", 8, "system size (grid edge for bruss2d, dimension otherwise)")
	cores := flag.Int("cores", 8, "goroutine cores")
	steps := flag.Int("steps", 10, "time steps")
	h := flag.Float64("h", 0.01, "step size")
	stages := flag.Int("k", 4, "stages / approximations (K or R)")
	iters := flag.Int("m", 2, "fixed-point / corrector iterations")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON file (Perfetto-loadable) of both solver runs")
	flag.Parse()

	var sys ode.System
	switch *system {
	case "bruss2d":
		sys = ode.NewBruss2D(*size)
	case "schroed":
		sys = ode.NewSchroed(*size)
	case "linear":
		sys = ode.NewLinearDecay(*size)
	default:
		fatal(fmt.Errorf("unknown system %q", *system))
	}
	fmt.Printf("system %s (n=%d), method %s, %d cores, %d steps of h=%g\n",
		sys.Name(), sys.Dim(), *method, *cores, *steps, *h)

	reference := sequential(*method, sys, *stages, *iters, *h, *steps)

	var recs []*obs.Recorder
	for _, version := range []struct {
		name   string
		groups int
	}{
		{"data-parallel", 1},
		{"task-parallel", tpGroups(*method, *stages, *cores)},
	} {
		w, err := runtime.NewWorld(*cores)
		if err != nil {
			fatal(err)
		}
		if *traceOut != "" {
			w.Trace = obs.New(*cores, obs.WithName(version.name))
			recs = append(recs, w.Trace)
		}
		opts := ode.RunOpts{Groups: version.groups, Steps: *steps, H: *h}
		start := time.Now()
		var y []float64
		switch *method {
		case "epol":
			y, err = ode.ParallelEPOL(w, sys, *stages, opts)
		case "irk":
			y, err = ode.ParallelIRK(w, sys, *stages, *iters, opts)
		case "diirk":
			y, err = ode.ParallelDIIRK(w, sys, *stages, opts)
		case "pab":
			y, err = ode.ParallelPAB(w, sys, *stages, 0, opts)
		case "pabm":
			y, err = ode.ParallelPAB(w, sys, *stages, *iters, opts)
		default:
			fatal(fmt.Errorf("unknown method %q", *method))
		}
		if err != nil {
			fmt.Printf("\n%s (%d groups): skipped: %v\n", version.name, version.groups, err)
			continue
		}
		elapsed := time.Since(start)
		fmt.Printf("\n%s (%d groups): %v\n", version.name, version.groups, elapsed.Round(time.Microsecond))
		fmt.Printf("  max deviation from sequential reference: %.3g\n", ode.MaxAbsDiff(y, reference))
		for _, kind := range []runtime.CommKind{runtime.Global, runtime.Group, runtime.Orthogonal} {
			for _, op := range []runtime.Op{runtime.OpAllgather, runtime.OpBcast, runtime.OpRedist} {
				if c := w.Stats.Count(kind, op); c > 0 {
					fmt.Printf("  %-12s %-14s %d\n", kind, op, c)
				}
			}
		}
	}
	if *traceOut != "" {
		if err := obs.WriteChromeFile(*traceOut, recs...); err != nil {
			fatal(fmt.Errorf("writing trace: %w", err))
		}
		fmt.Printf("\ntrace: wrote %s\n", *traceOut)
	}
}

// tpGroups returns the group count of the task-parallel version: one
// group per stage, or R/2 chain-pairing groups for the extrapolation
// method.
func tpGroups(method string, stages, cores int) int {
	if method == "epol" {
		g := stages / 2
		if g < 2 {
			g = 2
		}
		return g
	}
	return stages
}

// sequential integrates with the sequential reference implementation.
func sequential(method string, sys ode.System, stages, iters int, h float64, steps int) []float64 {
	t0, y0 := sys.Initial()
	switch method {
	case "epol":
		return ode.IntegrateFixed(ode.NewEPOL(stages), sys, t0, y0, h, steps)
	case "irk":
		return ode.IntegrateFixed(ode.NewIRK(stages, iters), sys, t0, y0, h, steps)
	case "diirk":
		return ode.IntegrateFixed(ode.NewDIIRK(stages), sys, t0, y0, h, steps)
	case "pab", "pabm":
		m := 0
		if method == "pabm" {
			m = iters
		}
		p := ode.NewPABIntegrator(stages, m, sys, t0, y0, h)
		p.Integrate(steps)
		return p.Y()
	}
	fatal(fmt.Errorf("unknown method %q", method))
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "odesolve: %v\n", err)
	os.Exit(1)
}
