// Command specc compiles a CM-task specification program (Section 2.2 of
// the paper) into its hierarchical M-task graph, optionally schedules it
// with the layer-based algorithm, and prints the result.
//
// Usage:
//
//	specc program.cm
//	specc -cores 64 -machine chic -mapping consecutive program.cm
package main

import (
	"flag"
	"fmt"
	"os"

	"mtask/internal/arch"
	"mtask/internal/core"
	"mtask/internal/cost"
	"mtask/internal/graph"
	"mtask/internal/spec"
)

func main() {
	cores := flag.Int("cores", 0, "schedule on this many cores (0 = graph only)")
	dot := flag.Bool("dot", false, "emit the hierarchical graph in Graphviz DOT format and exit")
	machine := flag.String("machine", "chic", "machine preset: chic, altix, juropa")
	mapping := flag.String("mapping", "consecutive", "mapping strategy: consecutive, scattered, mixed:<d>")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: specc [flags] program.cm")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	unit, err := spec.Compile(string(src))
	if err != nil {
		fatal(err)
	}
	if *dot {
		if err := unit.Graph.WriteDOT(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("compiled %q: upper-level graph with %d nodes\n", unit.Program.Main.Name, unit.Graph.Len())
	printGraph(unit.Graph, "  ")
	for _, t := range unit.Graph.Tasks() {
		if t.Kind == graph.KindComposed && t.Sub != nil {
			fmt.Printf("\ncomposed node %q: lower-level graph with %d nodes\n", t.Name, t.Sub.Len())
			printGraph(t.Sub, "  ")
			if *cores > 0 {
				scheduleGraph(t.Sub, *cores, *machine, *mapping)
			}
		}
	}
	if *cores > 0 {
		fmt.Println()
		scheduleGraph(unit.Graph, *cores, *machine, *mapping)
	}
}

func printGraph(g *graph.Graph, indent string) {
	for _, t := range g.Tasks() {
		fmt.Printf("%s[%d] %-40s kind=%-8s work=%-10.4g", indent, t.ID, t.Name, t.Kind, t.Work)
		if succ := g.Succ(t.ID); len(succ) > 0 {
			fmt.Printf(" -> %v", succ)
		}
		fmt.Println()
	}
}

func scheduleGraph(g *graph.Graph, cores int, machine, mapping string) {
	presets := arch.Presets()
	mach, ok := presets[machine]
	if !ok {
		fatal(fmt.Errorf("unknown machine %q", machine))
	}
	mach = mach.SubsetCores(cores)
	strat, err := core.StrategyByName(mapping)
	if err != nil {
		fatal(err)
	}
	model := &cost.Model{Machine: mach}
	sched, err := (&core.Scheduler{Model: model}).Schedule(g, cores)
	if err != nil {
		fatal(err)
	}
	fmt.Println(sched.String())
	mp, err := core.Map(sched, mach, strat)
	if err != nil {
		fatal(err)
	}
	for li := range sched.Layers {
		for gi := range sched.Layers[li].Groups {
			coresOf := mp.GroupCores(li, core.GroupID(gi))
			fmt.Printf("  layer %d group %d -> %v", li, gi, coresOf[0])
			if len(coresOf) > 1 {
				fmt.Printf(" .. %v (%d cores)", coresOf[len(coresOf)-1], len(coresOf))
			}
			fmt.Println()
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "specc: %v\n", err)
	os.Exit(1)
}
