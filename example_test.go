package mtask_test

import (
	"context"
	"fmt"
	"io"

	"mtask"
)

// forkJoin builds a small fork-join M-task graph: a splitter feeding two
// parallel workers, joined at the end.
func forkJoin() *mtask.Graph {
	g := mtask.NewGraph("forkjoin")
	src := g.AddTask(&mtask.Task{Name: "split", Work: 1e8, OutBytes: 1 << 16})
	var workers []mtask.TaskID
	for i := 0; i < 2; i++ {
		id := g.AddTask(&mtask.Task{
			Name: fmt.Sprintf("worker%d", i),
			Work: 4e8, CommBytes: 1 << 18, CommCount: 8, OutBytes: 1 << 16,
		})
		g.MustEdge(src, id, 1<<16)
		workers = append(workers, id)
	}
	join := g.AddTask(&mtask.Task{Name: "join", Work: 1e8})
	for _, id := range workers {
		g.MustEdge(id, join, 1<<16)
	}
	return g
}

// ExamplePlan runs the combined scheduling and mapping algorithm on a
// fork-join graph over 2 nodes (8 cores) of the CHiC cluster.
func ExamplePlan() {
	g := forkJoin()
	machine := mtask.CHiC().Subset(2)

	mp, err := mtask.Plan(context.Background(), g, machine)
	if err != nil {
		fmt.Println("plan failed:", err)
		return
	}
	fmt.Println(mtask.Describe(mp))
	fmt.Printf("layers: %d, cores: %d\n", len(mp.Schedule.Layers), mp.Schedule.P)
	// Output:
	// "forkjoin" on CHiC[2 nodes] (8 cores, 3 layers, consecutive mapping)
	// layers: 3, cores: 8
}

// ExampleWithWavefront executes a planned schedule under the wavefront
// dispatcher, which releases each task as soon as its predecessors
// finish instead of synchronizing whole layers.
func ExampleWithWavefront() {
	g := forkJoin()
	machine := mtask.CHiC().Subset(2)
	mp, err := mtask.Plan(context.Background(), g, machine)
	if err != nil {
		fmt.Println("plan failed:", err)
		return
	}
	w, err := mtask.NewWorld(mp.Schedule.P)
	if err != nil {
		fmt.Println("world failed:", err)
		return
	}
	body := func(t *mtask.Task) mtask.TaskFunc {
		return func(ctx *mtask.TaskCtx) error {
			ctx.Group.Barrier() // group-collective work goes here
			return nil
		}
	}
	rep, err := mtask.ExecuteCtx(context.Background(), w, mp.Schedule, body,
		mtask.WithWavefront())
	if err != nil {
		fmt.Println("execution failed:", err)
		return
	}
	fmt.Printf("completed %d layers on %d cores\n", rep.Layers, rep.P)
	// Output:
	// completed 3 layers on 8 cores
}

// ExampleWithTrace records a run into a TraceRecorder and inspects the
// captured task spans and metrics. WriteChromeTrace exports the same
// recorder as a Chrome trace_event file loadable in Perfetto.
func ExampleWithTrace() {
	g := forkJoin()
	machine := mtask.CHiC().Subset(2)
	mp, err := mtask.Plan(context.Background(), g, machine)
	if err != nil {
		fmt.Println("plan failed:", err)
		return
	}
	w, err := mtask.NewWorld(mp.Schedule.P)
	if err != nil {
		fmt.Println("world failed:", err)
		return
	}
	body := func(t *mtask.Task) mtask.TaskFunc {
		return func(ctx *mtask.TaskCtx) error { return nil }
	}

	rec := mtask.NewTraceRecorder(mp.Schedule.P, mtask.WithTraceName("example"))
	if _, err := mtask.ExecuteCtx(context.Background(), w, mp.Schedule, body,
		mtask.WithTrace(rec)); err != nil {
		fmt.Println("execution failed:", err)
		return
	}

	// Every rank runs one task per layer, so the trace holds one "task"
	// span per (rank, layer) pair.
	var spans int
	for rank := 0; rank < rec.Ranks(); rank++ {
		for _, ev := range rec.RankEvents(rank) {
			if ev.Cat == "task" {
				spans++
			}
		}
	}
	fmt.Printf("task spans: %d, drops: %d\n", spans, rec.Drops())
	if err := mtask.WriteChromeTrace(io.Discard, rec); err != nil {
		fmt.Println("export failed:", err)
	}
	// Output:
	// task spans: 24, drops: 0
}
