// Dynamictasks: the dynamic counterpart of the static layer-based
// scheduler (paper Section 2.2.2, as supported by the authors' Tlib
// library): M-tasks created recursively at runtime split their core group
// (divide-and-conquer), and a dynamic pool assigns cores to a stream of
// M-tasks as they become free.
package main

import (
	"fmt"
	"log"
	"sync/atomic"

	"mtask/internal/dynsched"
	"mtask/internal/runtime"
)

func main() {
	// --- recursive M-task creation: parallel mergesort ---
	const n = 1 << 16
	data := make([]float64, n)
	for i := range data {
		data[i] = float64((i*2654435761 + 12345) % 100003)
	}
	sorted := make([]float64, n)
	copy(sorted, data)

	var sortTask func(lo, hi int) dynsched.Task
	sortTask = func(lo, hi int) dynsched.Task {
		return func(ctx *dynsched.Ctx) error {
			if ctx.Comm.Size() == 1 || hi-lo < 1024 {
				if ctx.Comm.Rank() == 0 {
					insertionSort(sorted[lo:hi])
				}
				ctx.Comm.Barrier()
				return nil
			}
			mid := (lo + hi) / 2
			// Split the group proportionally to the halves and sort
			// them as concurrent child M-tasks.
			if err := ctx.SplitRun(
				[]float64{float64(mid - lo), float64(hi - mid)},
				[]dynsched.Task{sortTask(lo, mid), sortTask(mid, hi)},
			); err != nil {
				return err
			}
			if ctx.Comm.Rank() == 0 {
				merge(sorted[lo:hi], mid-lo)
			}
			ctx.Comm.Barrier()
			return nil
		}
	}

	w, err := runtime.NewWorld(8)
	if err != nil {
		log.Fatal(err)
	}
	if err := dynsched.Run(w, sortTask(0, n)); err != nil {
		log.Fatal(err)
	}
	ok := true
	for i := 1; i < n; i++ {
		if sorted[i-1] > sorted[i] {
			ok = false
			break
		}
	}
	fmt.Printf("recursive divide-and-conquer sort of %d elements on 8 cores: sorted=%v\n", n, ok)

	// --- dynamic pool: M-tasks with mixed core requirements ---
	pool, err := dynsched.NewPool(8)
	if err != nil {
		log.Fatal(err)
	}
	var done atomic.Int64
	tasks := make([]dynsched.PoolTask, 10)
	for i := range tasks {
		need := 1 + i%4
		tasks[i] = dynsched.PoolTask{
			Name:  fmt.Sprintf("job%d", i),
			Cores: need,
			Body: func(c *runtime.Comm) error {
				// A tiny SPMD computation per task.
				sum := c.AllreduceSum(float64(c.Rank() + 1))
				_ = sum
				if c.Rank() == 0 {
					done.Add(1)
				}
				return nil
			},
		}
	}
	if err := pool.RunAll(tasks); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic pool executed %d M-tasks (1-4 cores each) on 8 cores\n", done.Load())
}

func insertionSort(a []float64) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// merge merges the two sorted halves a[:mid] and a[mid:] in place.
func merge(a []float64, mid int) {
	out := make([]float64, len(a))
	i, j := 0, mid
	for k := range out {
		switch {
		case i >= mid:
			out[k] = a[j]
			j++
		case j >= len(a):
			out[k] = a[i]
			i++
		case a[i] <= a[j]:
			out[k] = a[i]
			i++
		default:
			out[k] = a[j]
			j++
		}
	}
	copy(a, out)
}
