// Extrapolation: solve the 2D Brusselator system with the parallel
// extrapolation method (EPOL), comparing the data-parallel and
// task-parallel program versions of the paper — same numerics, different
// communication structure (Table 1) — and verifying both against the
// sequential reference.
package main

import (
	"fmt"
	"log"

	"mtask/internal/ode"
	"mtask/internal/runtime"
)

func main() {
	const (
		grid  = 8 // BRUSS2D grid => n = 2*8*8 = 128
		r     = 4 // approximations
		cores = 8
		steps = 20
		h     = 0.005
	)
	sys := ode.NewBruss2D(grid)
	t0, y0 := sys.Initial()
	fmt.Printf("solving %s with EPOL(R=%d), %d steps of h=%g on %d cores\n\n",
		sys.Name(), r, steps, h, cores)

	reference := ode.IntegrateFixed(ode.NewEPOL(r), sys, t0, y0, h, steps)

	for _, version := range []struct {
		name   string
		groups int
	}{
		{"data-parallel", 1},
		{"task-parallel (R/2 groups)", r / 2},
	} {
		w, err := runtime.NewWorld(cores)
		if err != nil {
			log.Fatal(err)
		}
		y, err := ode.ParallelEPOL(w, sys, r, ode.RunOpts{
			Groups: version.groups, Steps: steps, H: h, Control: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", version.name)
		fmt.Printf("  deviation from sequential reference: %.3g\n",
			ode.MaxAbsDiff(y, reference))
		fmt.Printf("  global allgathers:    %d (paper: R(R+1)/2 = %d per step)\n",
			w.Stats.Count(runtime.Global, runtime.OpAllgather), r*(r+1)/2)
		fmt.Printf("  group allgathers:     %d (paper: R+1 = %d per group per step)\n",
			w.Stats.Count(runtime.Group, runtime.OpAllgather), r+1)
		fmt.Printf("  global broadcasts:    %d (paper: 1 per step, tp only)\n",
			w.Stats.Count(runtime.Global, runtime.OpBcast))
		fmt.Printf("  re-distributions:     %d (compiler-inserted, tp only)\n\n",
			w.Stats.Count(runtime.Orthogonal, runtime.OpRedist))
	}

	// Adaptive step-size control with the sequential driver.
	y, taken := ode.IntegrateAdaptive(ode.NewEPOL(r), sys, t0, y0, 0.1, h, 1e-8)
	fmt.Printf("adaptive integration to t=0.1: %d accepted steps, y[0] = %.6f\n", taken, y[0])
}
