// Multizone: the NAS-multi-zone-style workload of Section 4.6. The
// example first runs the functional ADI zone solver with real border
// exchanges (sequentially and with a goroutine worker pool, verifying both
// agree), then uses the cluster simulator to sweep the number of core
// groups for the BT-MZ benchmark and shows the paper's finding that a
// medium group count wins.
package main

import (
	"fmt"
	"log"

	"mtask/internal/arch"
	"mtask/internal/cluster"
	"mtask/internal/core"
	"mtask/internal/cost"
	"mtask/internal/nas"
)

func main() {
	// Functional solve on the miniature class W (16 zones).
	seq := nas.NewMultizone(nas.ClassW())
	par := nas.NewMultizone(nas.ClassW())
	for s := 0; s < 5; s++ {
		seq.Step(1)
		par.Step(8)
	}
	fmt.Printf("functional multizone solve (class W, 16 zones, 5 steps):\n")
	fmt.Printf("  sequential checksum: %.9f\n", seq.Checksum())
	fmt.Printf("  8-worker checksum:   %.9f (identical: %v)\n\n",
		par.Checksum(), seq.Checksum() == par.Checksum())

	// Scheduling study: BT-MZ class C (geometrically sized zones, ~20x
	// work spread) on 256 CHiC cores, sweeping the group count.
	mach := arch.CHiC().SubsetCores(256)
	model := &cost.Model{Machine: mach}
	zones := nas.MakeZones(nas.BTMZ, nas.ClassC())
	fmt.Printf("BT-MZ class C: %d zones, work imbalance %.1fx\n", len(zones), nas.Imbalance(zones))
	fmt.Printf("%8s  %12s  %12s\n", "groups", "consecutive", "scattered")
	for _, g := range []int{4, 16, 32, 64, 128, 256} {
		groups, err := nas.AssignContiguous(zones, g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d", g)
		for _, strat := range []core.Strategy{core.Consecutive{}, core.Scattered{}} {
			prog, err := nas.BuildProgram(mach, nas.BTMZ, zones, groups, strat, 256, 3)
			if err != nil {
				log.Fatal(err)
			}
			res, err := cluster.Simulate(model, prog)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %9.2f/s", 3/res.Makespan)
		}
		fmt.Println()
	}
	fmt.Println("\n(a medium group count wins: few groups pay for communication inside")
	fmt.Println(" large groups, the maximum count suffers from load imbalance)")
}
