// Quickstart: define an M-task graph, let the combined scheduling and
// mapping algorithm place it on a cluster, predict its execution time with
// the simulator, and then actually execute it with goroutines.
package main

import (
	"context"
	"fmt"
	"log"

	"mtask"
)

func main() {
	// An M-task program: a splitter feeding four communication-heavy
	// parallel workers, joined at the end. Work is in floating-point
	// operations, communication payloads in bytes.
	g := mtask.NewGraph("quickstart")
	split := g.AddTask(&mtask.Task{Name: "split", Work: 1e9, OutBytes: 1 << 20})
	var workers []mtask.TaskID
	for i := 0; i < 4; i++ {
		id := g.AddTask(&mtask.Task{
			Name: fmt.Sprintf("worker%d", i),
			Work: 8e9, CommBytes: 4 << 20, CommCount: 16,
			OutBytes: 1 << 20,
		})
		g.MustEdge(split, id, 1<<20)
		workers = append(workers, id)
	}
	join := g.AddTask(&mtask.Task{Name: "join", Work: 1e9})
	for _, id := range workers {
		g.MustEdge(id, join, 1<<20)
	}

	// Combined scheduling and mapping on 16 nodes (64 cores) of the
	// CHiC cluster with a consecutive mapping.
	ctx := context.Background()
	machine := mtask.CHiC().Subset(16)
	for _, strat := range []mtask.Strategy{mtask.Consecutive{}, mtask.Scattered{}} {
		mp, err := mtask.Plan(ctx, g, machine, mtask.WithStrategy(strat))
		if err != nil {
			log.Fatal(err)
		}
		res, err := mtask.Simulate(mp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n  predicted makespan %.4g s (comp %.4g s, comm %.4g s)\n",
			mtask.Describe(mp), res.Makespan, res.CompTime, res.CommTime)
	}

	// Execute the schedule for real with goroutines: the scheduler's
	// groups become goroutine teams with collective communication.
	mp, err := mtask.Plan(ctx, g, machine, mtask.WithStrategy(mtask.Consecutive{}))
	if err != nil {
		log.Fatal(err)
	}
	w, err := mtask.NewWorld(mp.Schedule.P)
	if err != nil {
		log.Fatal(err)
	}
	err = mtask.Execute(w, mp.Schedule, func(t *mtask.Task) mtask.TaskFunc {
		return func(ctx *mtask.TaskCtx) error {
			// Every core contributes a partial value; the group
			// reduces it collectively.
			sum := ctx.Group.AllreduceSum(float64(ctx.Group.Rank() + 1))
			if ctx.Group.Rank() == 0 {
				fmt.Printf("  executed %-10s on %2d cores (group sum %g)\n",
					t.Name, ctx.Group.Size(), sum)
			}
			return nil
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}
