// Speclang: compile the paper's Fig. 3 specification of the extrapolation
// method with the CM-task-style compiler front-end, show the hierarchical
// M-task graph it produces (Fig. 4), and schedule + map the time-step body
// with the combined algorithm (Figs. 5, 6 and 12).
package main

import (
	"fmt"
	"log"

	"mtask"
	"mtask/internal/cluster"
	"mtask/internal/core"
	"mtask/internal/cost"
	"mtask/internal/graph"
	"mtask/internal/runtime"
)

// epolSpec is the specification program of the paper's Fig. 3, extended
// with the task declarations the figure omits.
const epolSpec = `
const R = 4;        // number of approximations
const Tend = ...;   // end of integration interval

task init_step(t:scalar:out, h:scalar:out) work 100;
task step(j:int:in, i:int:in, t:scalar:in, h:scalar:in,
          eta_k:vector:in:replic, v:vector:inout:block)
     work 4000000 comm 800000;
task combine(t:scalar:inout, h:scalar:inout, V:Rvectors:in,
             eta_k:vector:inout:replic) work 2000000 out 800000;

cmmain EPOL(eta_k:vector:inout:replic) {
  var t, h : scalar;
  var V : Rvectors;
  var i, j : int;
  seq {
    init_step(t, h);
    while (t < Tend) {
      seq {
        parfor (i = 1:R) {
          for (j = 1:i) {
            step(j, i, t, h, eta_k, V[i]);
          }
        }
        combine(t, h, V, eta_k);
      }
    }
  }
}
`

func main() {
	unit, err := mtask.CompileSpec(epolSpec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("upper-level M-task graph (%d nodes):\n", unit.Graph.Len())
	for _, t := range unit.Graph.Tasks() {
		fmt.Printf("  [%d] %-24s %s\n", t.ID, t.Name, t.Kind)
	}

	// The while loop compiles to a composed node whose Sub graph is one
	// time step (Fig. 4).
	var body *graph.Graph
	for _, t := range unit.Graph.Tasks() {
		if t.Kind == graph.KindComposed {
			body = t.Sub
		}
	}
	fmt.Printf("\nlower-level graph of the time-stepping loop (%d nodes):\n", body.Len())
	contracted := graph.ContractChains(body)
	fmt.Printf("after linear-chain contraction: %d nodes (the R=4 approximation chains)\n",
		contracted.Graph.Len())
	for li, layer := range graph.Layers(contracted.Graph) {
		fmt.Printf("  layer %d: %d independent M-tasks\n", li, len(layer))
	}

	// Schedule and map the body on 8 CHiC nodes (32 cores).
	machine := mtask.CHiC().Subset(8)
	model := &cost.Model{Machine: machine}
	sched, err := (&core.Scheduler{Model: model}).Schedule(body, machine.TotalCores())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s", sched.String())
	for _, strat := range []core.Strategy{core.Consecutive{}, core.Scattered{}, core.Mixed{D: 2}} {
		mp, err := core.Map(sched, machine, strat)
		if err != nil {
			log.Fatal(err)
		}
		prog, _, err := cluster.FromMapping(model, mp)
		if err != nil {
			log.Fatal(err)
		}
		res, err := cluster.Simulate(model, prog)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("mapping %-12s -> predicted time per step %.4g s\n",
			strat.Name(), res.Makespan)
	}

	// Hierarchical scheduling + execution: the whole program (including
	// the while node) runs on the goroutine runtime; the loop body
	// executes its recursively computed schedule three times.
	hs, err := (&core.Scheduler{Model: model}).ScheduleHierarchical(unit.Graph, 8)
	if err != nil {
		log.Fatal(err)
	}
	w, err := mtask.NewWorld(8)
	if err != nil {
		log.Fatal(err)
	}
	activations := make(map[string]int)
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	err = runtime.ExecuteHierarchical(w, hs, func(t *graph.Task) runtime.TaskFunc {
		return func(ctx *runtime.TaskCtx) error {
			if ctx.Group.Rank() == 0 {
				<-mu
				activations[t.Name]++
				mu <- struct{}{}
			}
			ctx.Group.Barrier()
			return nil
		}
	}, func(t *graph.Task, done int) bool { return done < 3 })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nhierarchical execution on 8 goroutine cores (3 while iterations):")
	fmt.Printf("  init_step activations:  %d\n", activations["init_step(t,h)"])
	fmt.Printf("  combine activations:    %d\n", activations["combine(t,h,V,eta_k)"])
	micro := 0
	for name, c := range activations {
		if len(name) > 5 && name[:5] == "step(" {
			micro += c
		}
	}
	fmt.Printf("  micro-step activations: %d (R(R+1)/2 = 10 per iteration)\n", micro)
}
