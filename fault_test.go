package mtask

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestExecuteCtxFacade exercises the public fault-tolerance surface end to
// end: plan a graph, inject a scripted core loss, recover through the
// standard ReplannerFor callback, and observe the recovery in the Report.
func TestExecuteCtxFacade(t *testing.T) {
	g := buildDemoGraph()
	machine := CHiC().Subset(2) // 8 cores
	planner := NewPlanner(WithCores(8))
	ctx := context.Background()
	mp, err := planner.Plan(ctx, g, machine)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(8)
	if err != nil {
		t.Fatal(err)
	}

	inj := &FaultInjector{Script: []FaultScript{
		{Task: "work", Attempt: 1, Rank: 0, Kind: FaultCoreLoss},
	}}
	pol := DefaultFaultPolicy()
	pol.BaseBackoff = 100 * time.Microsecond
	pol.DegradeAndReplan = true

	var mu sync.Mutex
	ran := map[string]int{}
	rep, err := ExecuteCtx(ctx, w, mp.Schedule, func(task *Task) TaskFunc {
		return func(tc *TaskCtx) error {
			if tc.Group.Rank() == 0 {
				mu.Lock()
				ran[task.Name]++
				mu.Unlock()
			}
			tc.Group.Barrier()
			return nil
		}
	}, WithFaultPolicy(pol), WithFaultInjector(inj),
		WithReplanner(ReplannerFor(planner, g, machine)))
	if err != nil {
		t.Fatalf("degrade-and-replan through the facade failed: %v\n%s", err, rep)
	}
	if rep.Replans != 1 || rep.LostCores == 0 {
		t.Fatalf("recovery not recorded: %s", rep)
	}
	for _, name := range []string{"split", "work", "join"} {
		if ran[name] == 0 {
			t.Fatalf("task %q never completed: %v", name, ran)
		}
	}
}

// TestFaultSentinelsTopLevel pins the re-exported sentinels to their
// internal identities (errors.Is must work across the facade).
func TestFaultSentinelsTopLevel(t *testing.T) {
	w, _ := NewWorld(4)
	g := NewGraph("boom")
	g.AddTask(&Task{Name: "boom", Work: 1})
	mp, err := Plan(context.Background(), g, CHiC().Subset(1), WithCores(4))
	if err != nil {
		t.Fatal(err)
	}
	inj := &FaultInjector{Script: []FaultScript{
		{Task: "boom", Attempt: 1, Rank: 0, Kind: FaultCoreLoss},
	}}
	_, err = ExecuteCtx(context.Background(), w, mp.Schedule, func(task *Task) TaskFunc {
		return func(tc *TaskCtx) error { tc.Group.Barrier(); return nil }
	}, WithFaultInjector(inj))
	if !errors.Is(err, ErrCoreLost) || !errors.Is(err, ErrInjected) {
		t.Fatalf("sentinels lost across the facade: %v", err)
	}
}

// TestExecuteCtxFacadePanic verifies panic isolation through the facade.
func TestExecuteCtxFacadePanic(t *testing.T) {
	w, _ := NewWorld(4)
	g := NewGraph("p")
	g.AddTask(&Task{Name: "p", Work: 1})
	mp, err := Plan(context.Background(), g, CHiC().Subset(1), WithCores(4))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ExecuteCtx(context.Background(), w, mp.Schedule, func(task *Task) TaskFunc {
		return func(tc *TaskCtx) error {
			if tc.Group.Rank() == 2 {
				panic("isolated")
			}
			tc.Group.Barrier()
			return nil
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
	if rep.Panics != 1 {
		t.Fatalf("panics = %d, want 1", rep.Panics)
	}
}
