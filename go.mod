module mtask

go 1.22
