// Package arch models hierarchical multi-core cluster architectures as a
// tree of machine -> nodes -> processors -> cores, following Section 3.3 of
// Dümmler, Rauber, Rünger: "Combined scheduling and mapping for scalable
// computing with parallel tasks" (the journal version of the SC/MTAGS 2009
// paper "Scalable computing with parallel tasks").
//
// A physical core is identified by the label nid.pid.cid giving the node,
// processor and core indices. The tree is homogeneous in core type but
// heterogeneous in interconnect: communication between two cores is
// attributed to the level of their lowest common ancestor (same processor,
// same node, or the cluster network).
package arch

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrInvalidMachine is the sentinel wrapped by every Machine.Validate
// failure; test with errors.Is.
var ErrInvalidMachine = errors.New("arch: invalid machine")

// Level identifies the interconnect level used by a communication between
// two cores, determined by their lowest common ancestor in the architecture
// tree.
type Level int

const (
	// LevelCore means the two endpoints are the same core (no transfer).
	LevelCore Level = iota
	// LevelProcessor means cores of the same processor communicate
	// (shared cache / on-die interconnect).
	LevelProcessor
	// LevelNode means cores of different processors on the same node
	// communicate (shared memory / front-side bus).
	LevelNode
	// LevelNetwork means cores on different nodes communicate over the
	// cluster interconnect.
	LevelNetwork
)

// NumLevels is the number of distinct communication levels.
const NumLevels = 4

func (l Level) String() string {
	switch l {
	case LevelCore:
		return "core"
	case LevelProcessor:
		return "processor"
	case LevelNode:
		return "node"
	case LevelNetwork:
		return "network"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// LinkPerf holds the point-to-point performance parameters of one
// interconnect level: startup latency in seconds and transfer bandwidth in
// bytes per second.
type LinkPerf struct {
	Latency   float64 // seconds per message (startup / per-hop cost)
	Bandwidth float64 // bytes per second
}

// Transfer returns the time to move n bytes across a link of this level.
func (lp LinkPerf) Transfer(n int) float64 {
	if n <= 0 {
		return lp.Latency
	}
	return lp.Latency + float64(n)/lp.Bandwidth
}

// Machine describes a homogeneous hierarchical cluster: Nodes nodes, each
// with ProcsPerNode processors of CoresPerProc cores. Links gives the
// point-to-point performance per communication level (LevelProcessor,
// LevelNode, LevelNetwork; LevelCore is free).
type Machine struct {
	Name         string
	Nodes        int
	ProcsPerNode int
	CoresPerProc int

	// CoreGFlops is the peak floating-point rate of one core in GFlop/s,
	// used to convert operation counts of the cost model into seconds.
	CoreGFlops float64

	// Links holds per-level link performance, indexed by Level. The
	// LevelCore entry is ignored.
	Links [NumLevels]LinkPerf

	// HybridForkJoin is the overhead in seconds of a fork-join of the
	// OpenMP-style threads of one hybrid rank (used by the hybrid
	// MPI+OpenMP execution model, Section 4.7).
	HybridForkJoin float64

	// SharedMemoryThreads reports whether OpenMP-style threads may span
	// node boundaries (true only for the SGI Altix distributed shared
	// memory system in the paper's evaluation).
	SharedMemoryThreads bool
}

// TotalCores returns the number of physical cores of the machine.
func (m *Machine) TotalCores() int { return m.Nodes * m.ProcsPerNode * m.CoresPerProc }

// CoresPerNode returns the number of cores of one node.
func (m *Machine) CoresPerNode() int { return m.ProcsPerNode * m.CoresPerProc }

// Validate checks the machine description for consistency.
func (m *Machine) Validate() error {
	if m.Nodes <= 0 || m.ProcsPerNode <= 0 || m.CoresPerProc <= 0 {
		return fmt.Errorf("%w: machine %q has non-positive shape %dx%dx%d",
			ErrInvalidMachine, m.Name, m.Nodes, m.ProcsPerNode, m.CoresPerProc)
	}
	if m.CoreGFlops <= 0 {
		return fmt.Errorf("%w: machine %q has non-positive core rate", ErrInvalidMachine, m.Name)
	}
	for l := LevelProcessor; l <= LevelNetwork; l++ {
		lp := m.Links[l]
		if lp.Latency < 0 || lp.Bandwidth <= 0 {
			return fmt.Errorf("%w: machine %q has invalid link perf at level %s", ErrInvalidMachine, m.Name, l)
		}
	}
	return nil
}

// CoreID identifies a physical core by node, processor and core index, all
// zero-based. The paper writes the label as nid.pid.cid (one-based); String
// follows the paper's one-based convention.
type CoreID struct {
	Node, Proc, Core int
}

// String returns the paper-style one-based label nid.pid.cid.
func (c CoreID) String() string {
	return fmt.Sprintf("%d.%d.%d", c.Node+1, c.Proc+1, c.Core+1)
}

// ParseCoreID parses a one-based nid.pid.cid label.
func ParseCoreID(s string) (CoreID, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 3 {
		return CoreID{}, fmt.Errorf("arch: malformed core label %q", s)
	}
	var v [3]int
	for i, p := range parts {
		x, err := strconv.Atoi(p)
		if err != nil || x < 1 {
			return CoreID{}, fmt.Errorf("arch: malformed core label %q", s)
		}
		v[i] = x - 1
	}
	return CoreID{Node: v[0], Proc: v[1], Core: v[2]}, nil
}

// Rank returns the position of the core in the canonical consecutive
// enumeration of the machine's cores (node-major, then processor, then
// core).
func (m *Machine) Rank(c CoreID) int {
	return (c.Node*m.ProcsPerNode+c.Proc)*m.CoresPerProc + c.Core
}

// CoreByRank returns the CoreID at the given canonical rank.
func (m *Machine) CoreByRank(r int) CoreID {
	cpp := m.CoresPerProc
	ppn := m.ProcsPerNode
	return CoreID{
		Node: r / (ppn * cpp),
		Proc: (r / cpp) % ppn,
		Core: r % cpp,
	}
}

// Contains reports whether the core id is valid for this machine.
func (m *Machine) Contains(c CoreID) bool {
	return c.Node >= 0 && c.Node < m.Nodes &&
		c.Proc >= 0 && c.Proc < m.ProcsPerNode &&
		c.Core >= 0 && c.Core < m.CoresPerProc
}

// CommLevel returns the interconnect level used when cores a and b
// communicate: the level of their lowest common ancestor in the
// architecture tree.
func CommLevel(a, b CoreID) Level {
	switch {
	case a.Node != b.Node:
		return LevelNetwork
	case a.Proc != b.Proc:
		return LevelNode
	case a.Core != b.Core:
		return LevelProcessor
	default:
		return LevelCore
	}
}

// Link returns the link performance for communication between cores a and
// b. Communication of a core with itself is free.
func (m *Machine) Link(a, b CoreID) LinkPerf {
	lv := CommLevel(a, b)
	if lv == LevelCore {
		return LinkPerf{Latency: 0, Bandwidth: 1e18}
	}
	return m.Links[lv]
}

// Transfer returns the time for a point-to-point message of n bytes between
// cores a and b.
func (m *Machine) Transfer(a, b CoreID, n int) float64 {
	return m.Link(a, b).Transfer(n)
}

// AllCores enumerates the machine's cores in canonical consecutive order.
func (m *Machine) AllCores() []CoreID {
	cores := make([]CoreID, 0, m.TotalCores())
	for n := 0; n < m.Nodes; n++ {
		for p := 0; p < m.ProcsPerNode; p++ {
			for c := 0; c < m.CoresPerProc; c++ {
				cores = append(cores, CoreID{Node: n, Proc: p, Core: c})
			}
		}
	}
	return cores
}

// NodesSpanned returns the number of distinct nodes occupied by the given
// cores.
func NodesSpanned(cores []CoreID) int {
	seen := make(map[int]struct{}, len(cores))
	for _, c := range cores {
		seen[c.Node] = struct{}{}
	}
	return len(seen)
}

// SlowestLevel returns the slowest (highest) communication level occurring
// between any pair of the given cores. For fewer than two cores the result
// is LevelCore.
func SlowestLevel(cores []CoreID) Level {
	if len(cores) < 2 {
		return LevelCore
	}
	// The slowest pair level is determined by whether all cores share a
	// node, and within that a processor; no need for a quadratic scan.
	sameNode, sameProc := true, true
	for _, c := range cores[1:] {
		if c.Node != cores[0].Node {
			return LevelNetwork
		}
		if c.Proc != cores[0].Proc {
			sameProc = false
		}
	}
	_ = sameNode
	if !sameProc {
		return LevelNode
	}
	return LevelProcessor
}

// Subset returns a Machine restricted to the first n nodes of m. It is used
// to scale experiments ("p cores of the CHiC cluster") while keeping the
// per-node shape. Panics if n exceeds the node count.
func (m *Machine) Subset(nodes int) *Machine {
	if nodes < 1 || nodes > m.Nodes {
		panic(fmt.Sprintf("arch: subset of %d nodes out of range for %q (%d nodes)", nodes, m.Name, m.Nodes))
	}
	s := *m
	s.Nodes = nodes
	s.Name = fmt.Sprintf("%s[%d nodes]", m.Name, nodes)
	return &s
}

// SubsetCores returns a Machine restricted to the smallest number of nodes
// that provides at least p cores. Panics if p exceeds the machine size or
// is not a multiple of the node size (the paper's experiments always use
// whole nodes).
func (m *Machine) SubsetCores(p int) *Machine {
	cpn := m.CoresPerNode()
	if p < 1 || p > m.TotalCores() {
		panic(fmt.Sprintf("arch: %d cores out of range for %q", p, m.Name))
	}
	nodes := (p + cpn - 1) / cpn
	return m.Subset(nodes)
}

// Partition returns a Machine restricted to the given number of whole
// nodes — the allocation unit of the machine-level job scheduler. It is
// Subset with an error return instead of a panic: partition sizes come
// from admission decisions, not fixed experiment configurations, so an
// out-of-range size must be a recoverable error. Equal-sized partitions
// carry equal names, so schedule-cache fingerprints are shared across
// jobs and across resizes back to a previous size.
func (m *Machine) Partition(nodes int) (*Machine, error) {
	if nodes < 1 || nodes > m.Nodes {
		return nil, fmt.Errorf("%w: partition of %d nodes out of range for %q (%d nodes)",
			ErrInvalidMachine, nodes, m.Name, m.Nodes)
	}
	return m.Subset(nodes), nil
}

// WithoutCores returns a Machine shrunk by n cores, rounded up to whole
// nodes (the machine model is homogeneous per node, so degradation removes
// the smallest number of nodes covering the lost cores). It is the
// machine-side half of degrade-and-replan: after a core group is lost, the
// planner reschedules on m.WithoutCores(lost). The returned machine's name
// is annotated with the shrink. An error wrapping ErrInvalidMachine is
// returned when no whole node survives.
func (m *Machine) WithoutCores(n int) (*Machine, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: cannot remove %d cores from %q", ErrInvalidMachine, n, m.Name)
	}
	if n == 0 {
		return m, nil
	}
	cpn := m.CoresPerNode()
	lostNodes := (n + cpn - 1) / cpn
	if lostNodes >= m.Nodes {
		return nil, fmt.Errorf("%w: removing %d cores (%d nodes) leaves no node of %q (%d nodes)",
			ErrInvalidMachine, n, lostNodes, m.Name, m.Nodes)
	}
	s := *m
	s.Nodes = m.Nodes - lostNodes
	s.Name = fmt.Sprintf("%s[-%d cores]", m.Name, n)
	return &s, nil
}
