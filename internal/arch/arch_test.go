package arch

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func testMachine() *Machine {
	return &Machine{
		Name:         "test",
		Nodes:        4,
		ProcsPerNode: 2,
		CoresPerProc: 2,
		CoreGFlops:   1,
		Links: [NumLevels]LinkPerf{
			LevelProcessor: {Latency: 1e-7, Bandwidth: 4e9},
			LevelNode:      {Latency: 2e-7, Bandwidth: 2e9},
			LevelNetwork:   {Latency: 1e-6, Bandwidth: 1e9},
		},
	}
}

func TestTotalCores(t *testing.T) {
	m := testMachine()
	if got := m.TotalCores(); got != 16 {
		t.Fatalf("TotalCores = %d, want 16", got)
	}
	if got := m.CoresPerNode(); got != 4 {
		t.Fatalf("CoresPerNode = %d, want 4", got)
	}
}

func TestValidate(t *testing.T) {
	m := testMachine()
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	bad := *m
	bad.Nodes = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted zero nodes")
	}
	bad = *m
	bad.CoreGFlops = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted zero core rate")
	}
	bad = *m
	bad.Links[LevelNetwork].Bandwidth = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted zero bandwidth")
	}
}

func TestRankRoundTrip(t *testing.T) {
	m := testMachine()
	for r := 0; r < m.TotalCores(); r++ {
		c := m.CoreByRank(r)
		if !m.Contains(c) {
			t.Fatalf("CoreByRank(%d) = %v outside machine", r, c)
		}
		if got := m.Rank(c); got != r {
			t.Fatalf("Rank(CoreByRank(%d)) = %d", r, got)
		}
	}
}

func TestAllCoresOrder(t *testing.T) {
	m := testMachine()
	cores := m.AllCores()
	if len(cores) != m.TotalCores() {
		t.Fatalf("AllCores returned %d cores, want %d", len(cores), m.TotalCores())
	}
	for i, c := range cores {
		if m.Rank(c) != i {
			t.Fatalf("AllCores[%d] = %v has rank %d", i, c, m.Rank(c))
		}
	}
}

func TestCoreIDStringParse(t *testing.T) {
	c := CoreID{Node: 2, Proc: 1, Core: 0}
	s := c.String()
	if s != "3.2.1" {
		t.Fatalf("String = %q, want 3.2.1", s)
	}
	got, err := ParseCoreID(s)
	if err != nil {
		t.Fatalf("ParseCoreID: %v", err)
	}
	if got != c {
		t.Fatalf("round trip = %v, want %v", got, c)
	}
	for _, bad := range []string{"", "1.2", "1.2.3.4", "0.1.1", "a.b.c"} {
		if _, err := ParseCoreID(bad); err == nil {
			t.Errorf("ParseCoreID(%q) accepted", bad)
		}
	}
}

func TestCommLevel(t *testing.T) {
	tests := []struct {
		a, b CoreID
		want Level
	}{
		{CoreID{0, 0, 0}, CoreID{0, 0, 0}, LevelCore},
		{CoreID{0, 0, 0}, CoreID{0, 0, 1}, LevelProcessor},
		{CoreID{0, 0, 0}, CoreID{0, 1, 0}, LevelNode},
		{CoreID{0, 0, 0}, CoreID{1, 0, 0}, LevelNetwork},
		{CoreID{2, 1, 1}, CoreID{2, 1, 0}, LevelProcessor},
	}
	for _, tt := range tests {
		if got := CommLevel(tt.a, tt.b); got != tt.want {
			t.Errorf("CommLevel(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
		if got := CommLevel(tt.b, tt.a); got != tt.want {
			t.Errorf("CommLevel(%v,%v) = %v, want %v (symmetry)", tt.b, tt.a, got, tt.want)
		}
	}
}

func TestTransferMonotoneInLevel(t *testing.T) {
	m := testMachine()
	n := 1 << 16
	sameProc := m.Transfer(CoreID{0, 0, 0}, CoreID{0, 0, 1}, n)
	sameNode := m.Transfer(CoreID{0, 0, 0}, CoreID{0, 1, 0}, n)
	network := m.Transfer(CoreID{0, 0, 0}, CoreID{1, 0, 0}, n)
	if !(sameProc < sameNode && sameNode < network) {
		t.Fatalf("transfer times not ordered by level: %g %g %g", sameProc, sameNode, network)
	}
	if self := m.Transfer(CoreID{0, 0, 0}, CoreID{0, 0, 0}, n); self > 1e-9 {
		t.Fatalf("self transfer not ~free: %g", self)
	}
}

func TestSlowestLevel(t *testing.T) {
	tests := []struct {
		cores []CoreID
		want  Level
	}{
		{nil, LevelCore},
		{[]CoreID{{0, 0, 0}}, LevelCore},
		{[]CoreID{{0, 0, 0}, {0, 0, 1}}, LevelProcessor},
		{[]CoreID{{0, 0, 0}, {0, 0, 1}, {0, 1, 0}}, LevelNode},
		{[]CoreID{{0, 0, 0}, {1, 0, 0}}, LevelNetwork},
		{[]CoreID{{0, 0, 0}, {0, 1, 1}, {3, 0, 0}}, LevelNetwork},
	}
	for _, tt := range tests {
		if got := SlowestLevel(tt.cores); got != tt.want {
			t.Errorf("SlowestLevel(%v) = %v, want %v", tt.cores, got, tt.want)
		}
	}
}

func TestNodesSpanned(t *testing.T) {
	cores := []CoreID{{0, 0, 0}, {0, 1, 1}, {2, 0, 0}, {2, 0, 1}}
	if got := NodesSpanned(cores); got != 2 {
		t.Fatalf("NodesSpanned = %d, want 2", got)
	}
	if got := NodesSpanned(nil); got != 0 {
		t.Fatalf("NodesSpanned(nil) = %d, want 0", got)
	}
}

func TestSubset(t *testing.T) {
	m := CHiC()
	s := m.Subset(8)
	if s.TotalCores() != 32 {
		t.Fatalf("subset cores = %d, want 32", s.TotalCores())
	}
	if s.Links != m.Links || s.CoreGFlops != m.CoreGFlops {
		t.Fatal("subset changed performance parameters")
	}
	sc := m.SubsetCores(256)
	if sc.Nodes != 64 {
		t.Fatalf("SubsetCores(256).Nodes = %d, want 64", sc.Nodes)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Subset(0) did not panic")
		}
	}()
	m.Subset(0)
}

func TestPartition(t *testing.T) {
	m := CHiC()
	p, err := m.Partition(8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes != 8 || p.TotalCores() != 32 {
		t.Fatalf("partition shape %d nodes / %d cores, want 8/32", p.Nodes, p.TotalCores())
	}
	// Equal-sized partitions must be indistinguishable (the schedule
	// cache keys on the machine description, name included).
	if q, _ := m.Partition(8); *q != *p {
		t.Fatalf("equal-sized partitions differ: %+v vs %+v", q, p)
	}
	if s := m.Subset(8); *s != *p {
		t.Fatal("Partition and Subset disagree for the same node count")
	}
	for _, bad := range []int{0, -1, m.Nodes + 1} {
		if _, err := m.Partition(bad); !errors.Is(err, ErrInvalidMachine) {
			t.Fatalf("Partition(%d) err = %v, want ErrInvalidMachine", bad, err)
		}
	}
}

func TestPresetsValid(t *testing.T) {
	for name, m := range Presets() {
		if err := m.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
		// Latency must strictly increase with tree level.
		if !(m.Links[LevelProcessor].Latency < m.Links[LevelNode].Latency &&
			m.Links[LevelNode].Latency < m.Links[LevelNetwork].Latency) {
			t.Errorf("preset %s: latencies not ordered by level", name)
		}
	}
	if got := JuRoPA().CoresPerNode(); got != 8 {
		t.Errorf("JuRoPA cores per node = %d, want 8", got)
	}
	if got := CHiC().CoresPerNode(); got != 4 {
		t.Errorf("CHiC cores per node = %d, want 4", got)
	}
	if !SGIAltix().SharedMemoryThreads {
		t.Error("Altix must allow cross-node threads")
	}
}

// Property: rank round-trips for arbitrary machine shapes and ranks.
func TestRankRoundTripProperty(t *testing.T) {
	f := func(nodes, ppn, cpp uint8, rank uint16) bool {
		m := &Machine{
			Name:         "q",
			Nodes:        int(nodes%16) + 1,
			ProcsPerNode: int(ppn%4) + 1,
			CoresPerProc: int(cpp%8) + 1,
			CoreGFlops:   1,
		}
		r := int(rank) % m.TotalCores()
		c := m.CoreByRank(r)
		return m.Contains(c) && m.Rank(c) == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: CommLevel is symmetric and consistent with SlowestLevel of the
// pair.
func TestCommLevelProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randCore := func() CoreID {
		return CoreID{Node: rng.Intn(4), Proc: rng.Intn(3), Core: rng.Intn(3)}
	}
	for i := 0; i < 1000; i++ {
		a, b := randCore(), randCore()
		if CommLevel(a, b) != CommLevel(b, a) {
			t.Fatalf("CommLevel not symmetric for %v %v", a, b)
		}
		if a != b {
			if got, want := SlowestLevel([]CoreID{a, b}), CommLevel(a, b); got != want {
				t.Fatalf("SlowestLevel pair %v %v = %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestWithoutCores(t *testing.T) {
	m := testMachine() // 4 nodes x 4 cores = 16

	same, err := m.WithoutCores(0)
	if err != nil || same != m {
		t.Fatalf("WithoutCores(0) = %v, %v; want the machine unchanged", same, err)
	}

	// Losing 1..4 cores costs one whole node; 5 cores cost two.
	for _, tc := range []struct{ lost, nodes int }{{1, 3}, {4, 3}, {5, 2}, {8, 2}, {11, 1}} {
		s, err := m.WithoutCores(tc.lost)
		if err != nil {
			t.Fatalf("WithoutCores(%d): %v", tc.lost, err)
		}
		if s.Nodes != tc.nodes {
			t.Fatalf("WithoutCores(%d).Nodes = %d, want %d", tc.lost, s.Nodes, tc.nodes)
		}
		if s.Links != m.Links || s.CoreGFlops != m.CoreGFlops || s.CoresPerNode() != m.CoresPerNode() {
			t.Fatalf("WithoutCores(%d) changed performance parameters", tc.lost)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("WithoutCores(%d) invalid: %v", tc.lost, err)
		}
	}
	if m.Nodes != 4 {
		t.Fatal("WithoutCores mutated the receiver")
	}

	// Losing everything (or a negative count) is an error, not a panic.
	for _, lost := range []int{13, 16, 100, -1} {
		if _, err := m.WithoutCores(lost); err == nil {
			t.Fatalf("WithoutCores(%d) accepted", lost)
		} else if !errors.Is(err, ErrInvalidMachine) {
			t.Fatalf("WithoutCores(%d) = %v, want ErrInvalidMachine", lost, err)
		}
	}
}
