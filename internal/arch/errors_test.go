package arch

import (
	"errors"
	"testing"
)

// TestValidateWrapsErrInvalidMachine checks the errors.Is contract of
// every Validate failure mode.
func TestValidateWrapsErrInvalidMachine(t *testing.T) {
	bad := []*Machine{
		{Name: "no-shape"},
		{Name: "no-nodes", ProcsPerNode: 2, CoresPerProc: 2, CoreGFlops: 1},
		func() *Machine { m := CHiC(); m.CoreGFlops = 0; return m }(),
		func() *Machine { m := CHiC(); m.Links[LevelNetwork].Bandwidth = 0; return m }(),
		func() *Machine { m := CHiC(); m.Links[LevelNode].Latency = -1; return m }(),
	}
	for _, m := range bad {
		err := m.Validate()
		if err == nil {
			t.Fatalf("%s: Validate accepted invalid machine", m.Name)
		}
		if !errors.Is(err, ErrInvalidMachine) {
			t.Fatalf("%s: Validate error %v does not wrap ErrInvalidMachine", m.Name, err)
		}
	}
	if err := CHiC().Validate(); err != nil {
		t.Fatalf("valid preset rejected: %v", err)
	}
}
