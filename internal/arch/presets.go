package arch

// Machine presets for the three platforms of the paper's evaluation
// (Section 4.1). Core counts, clock rates and peak performance are taken
// directly from the paper. Interconnect latencies and bandwidths are
// calibrated from the published characteristics of the interconnect
// generation (SDR InfiniBand, NUMAlink 4, QDR InfiniBand) and of shared
// memory on the respective node types; the reproduction depends on their
// relative ordering across tree levels, not on the absolute values.

// CHiC returns the Chemnitz High Performance Linux cluster: 530 nodes of
// two AMD Opteron 2218 dual-core processors (2.6 GHz, 5.2 GFlop/s per
// core), SDR InfiniBand interconnect.
func CHiC() *Machine {
	return &Machine{
		Name:         "CHiC",
		Nodes:        530,
		ProcsPerNode: 2,
		CoresPerProc: 2,
		CoreGFlops:   5.2,
		Links: [NumLevels]LinkPerf{
			LevelProcessor: {Latency: 0.4e-6, Bandwidth: 3.0e9},
			LevelNode:      {Latency: 0.7e-6, Bandwidth: 2.0e9},
			LevelNetwork:   {Latency: 4.5e-6, Bandwidth: 0.95e9}, // SDR IB
		},
		HybridForkJoin: 12e-6,
	}
}

// SGIAltix returns one partition of the SGI Altix: 128 nodes of two Intel
// Itanium2 Montecito dual-core processors (1.6 GHz, 6.4 GFlop/s per core),
// NUMAlink 4 interconnect (6.4 GB/s bidirectional per link). The Altix is a
// distributed shared memory machine, so OpenMP threads may span nodes.
func SGIAltix() *Machine {
	return &Machine{
		Name:         "SGI-Altix",
		Nodes:        128,
		ProcsPerNode: 2,
		CoresPerProc: 2,
		CoreGFlops:   6.4,
		Links: [NumLevels]LinkPerf{
			LevelProcessor: {Latency: 0.35e-6, Bandwidth: 3.5e9},
			LevelNode:      {Latency: 0.6e-6, Bandwidth: 2.5e9},
			LevelNetwork:   {Latency: 1.8e-6, Bandwidth: 3.2e9}, // NUMAlink 4
		},
		HybridForkJoin:      1.0e-6,
		SharedMemoryThreads: true,
	}
}

// JuRoPA returns the JuRoPA cluster: 2208 nodes of two Intel Xeon X5570
// "Nehalem" quad-core processors (2.93 GHz, 11.72 GFlop/s per core), QDR
// InfiniBand interconnect.
func JuRoPA() *Machine {
	return &Machine{
		Name:         "JuRoPA",
		Nodes:        2208,
		ProcsPerNode: 2,
		CoresPerProc: 4,
		CoreGFlops:   11.72,
		Links: [NumLevels]LinkPerf{
			LevelProcessor: {Latency: 0.25e-6, Bandwidth: 5.0e9},
			LevelNode:      {Latency: 0.45e-6, Bandwidth: 3.5e9},
			LevelNetwork:   {Latency: 2.0e-6, Bandwidth: 3.2e9}, // QDR IB
		},
		HybridForkJoin: 0.8e-6,
	}
}

// Presets returns all machine presets by name.
func Presets() map[string]*Machine {
	return map[string]*Machine{
		"chic":   CHiC(),
		"altix":  SGIAltix(),
		"juropa": JuRoPA(),
	}
}
