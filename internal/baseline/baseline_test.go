package baseline

import (
	"testing"

	"mtask/internal/arch"
	"mtask/internal/cluster"
	"mtask/internal/core"
	"mtask/internal/cost"
	"mtask/internal/graph"
)

func chic(nodes int) *cost.Model {
	return &cost.Model{Machine: arch.CHiC().Subset(nodes)}
}

// stageLayer builds K independent stage tasks followed by a combine, the
// shape of the IRK/PAB/PABM solvers.
func stageLayer(k int, work float64, bytes int) *graph.Graph {
	g := graph.New("stages")
	combine := g.AddTask(&graph.Task{Name: "combine", Kind: graph.KindBasic,
		Work: work / 4, CommBytes: bytes, CommCount: 1})
	for i := 0; i < k; i++ {
		s := g.AddTask(&graph.Task{Name: "stage", Kind: graph.KindBasic,
			Work: work, CommBytes: bytes, CommCount: 4, OutBytes: bytes})
		g.MustEdge(s, combine, bytes)
	}
	g.AddStartStop()
	return g
}

// epolGraph builds the extrapolation step graph with R chains.
func epolGraph(r int, work float64, bytes int) *graph.Graph {
	g := graph.New("epol")
	combine := g.AddTask(&graph.Task{Name: "combine", Kind: graph.KindBasic,
		Work: work, CommBytes: bytes, CommCount: 1})
	for i := 1; i <= r; i++ {
		prev := graph.None
		for j := 1; j <= i; j++ {
			s := g.AddTask(&graph.Task{Name: "step", Kind: graph.KindBasic,
				Work: work, CommBytes: bytes, CommCount: 1, OutBytes: bytes})
			if prev != graph.None {
				g.MustEdge(prev, s, bytes)
			}
			prev = s
		}
		g.MustEdge(prev, combine, bytes)
	}
	g.AddStartStop()
	return g
}

func TestListScheduleValid(t *testing.T) {
	m := chic(8)
	g := stageLayer(4, 1e9, 1<<20)
	alloc := make([]int, g.Len())
	for i := range alloc {
		alloc[i] = 8
	}
	s, err := ListSchedule(m, g, alloc, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
	// 4 stages x 8 cores = 32: all run concurrently, so the makespan is
	// one stage plus redistribution plus combine.
	stage0 := s.Entries[1]
	for id := 2; id <= 4; id++ {
		if s.Entries[id].Start != stage0.Start {
			t.Fatalf("stages not concurrent: %g vs %g", s.Entries[id].Start, stage0.Start)
		}
	}
}

func TestListScheduleSerializesWhenOverAllocated(t *testing.T) {
	m := chic(8)
	g := stageLayer(4, 1e9, 1<<20)
	alloc := make([]int, g.Len())
	for i := range alloc {
		alloc[i] = 20 // 4 stages x 20 = 80 > 32 cores
	}
	s, err := ListSchedule(m, g, alloc, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Only one stage fits at a time (20 of 32 cores): the stages must
	// not all start together.
	concurrent := 0
	for id := 1; id <= 4; id++ {
		if s.Entries[id].Start == s.Entries[1].Start {
			concurrent++
		}
	}
	if concurrent > 1 {
		t.Fatalf("%d over-allocated stages run concurrently", concurrent)
	}
}

func TestListScheduleAllocationMismatch(t *testing.T) {
	m := chic(2)
	g := stageLayer(2, 1e9, 1<<18)
	if _, err := ListSchedule(m, g, []int{1}, 8); err == nil {
		t.Fatal("short allocation accepted")
	}
}

func TestCriticalPath(t *testing.T) {
	m := chic(2)
	g := epolGraph(3, 1e9, 1<<18)
	alloc := make([]int, g.Len())
	for i := range alloc {
		alloc[i] = 1
	}
	path := criticalPath(m, g, alloc)
	// The longest chain has 3 micro steps + combine = 4 tasks.
	if len(path) != 4 {
		t.Fatalf("critical path has %d tasks, want 4", len(path))
	}
	// Path must follow edges.
	for i := 1; i < len(path); i++ {
		if !g.Reachable(path[i-1], path[i]) {
			t.Fatalf("critical path not a path: %v", path)
		}
	}
	if criticalPathLength(m, g, alloc) <= 0 {
		t.Fatal("non-positive critical path length")
	}
}

func TestCPAProducesValidSchedule(t *testing.T) {
	m := chic(16)
	g := stageLayer(8, 2e9, 1<<20)
	s, err := CPA(m, g, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// CPA allocates generously: the stages should receive more than one
	// core each.
	grew := false
	for id := 1; id <= 8; id++ {
		if len(s.Entries[id].Cores) > 1 {
			grew = true
		}
	}
	if !grew {
		t.Fatal("CPA never grew an allocation")
	}
}

func TestCPRProducesValidSchedule(t *testing.T) {
	m := chic(8)
	g := epolGraph(4, 1e9, 1<<18)
	s, err := CPR(m, g, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// CPR must never be worse than the all-ones list schedule it
	// started from.
	ones := make([]int, g.Len())
	for i := range ones {
		ones[i] = 1
	}
	base, _ := ListSchedule(m, g, ones, 32)
	if s.Makespan > base.Makespan {
		t.Fatalf("CPR (%g) worse than its starting point (%g)", s.Makespan, base.Makespan)
	}
}

func TestCPROverAllocatesLongestEPOLChain(t *testing.T) {
	// The paper observes that CPR assigns a large number of cores to
	// the M-tasks of the longest linear chain of the EPOL graph
	// (Section 4.3). Verify the longest chain receives the largest
	// allocations.
	m := chic(8)
	g := epolGraph(4, 2e9, 1<<18)
	s, err := CPR(m, g, 32)
	if err != nil {
		t.Fatal(err)
	}
	// Task ids: combine=0; chain i occupies the next i ids, i=1..4.
	// Longest chain = ids 7..10.
	longest := 0
	for id := 7; id <= 10; id++ {
		longest += len(s.Entries[id].Cores)
	}
	shortest := 4 * len(s.Entries[1].Cores) // chain of length 1 scaled
	if longest < shortest {
		t.Fatalf("longest chain got %d core-slots, shortest-equivalent %d", longest, shortest)
	}
}

func TestCPAOverAllocation(t *testing.T) {
	// With K independent communication-moderate tasks, CPA's allocation
	// phase may grant the tasks more cores in total than exist; the
	// list scheduler then serializes some of them. Check that the sum
	// of allocations exceeds P for a PABM-like layer, reproducing the
	// "over-allocation" of Fig. 13 left.
	m := chic(32) // 128 cores
	g := stageLayer(8, 4e9, 1<<19)
	s, err := CPA(m, g, 128)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for id := 1; id <= 8; id++ {
		total += len(s.Entries[id].Cores)
	}
	if total <= 128 {
		t.Skipf("CPA allocated %d core-slots over 128 cores; over-allocation depends on cost ratios", total)
	}
}

func TestToProgramSimulates(t *testing.T) {
	m := chic(16)
	g := stageLayer(8, 2e9, 1<<20)
	s, err := CPA(m, g, 64)
	if err != nil {
		t.Fatal(err)
	}
	seq := core.Consecutive{}.Sequence(m.Machine)
	prog, index, err := ToProgram(m, s, seq)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Simulate(m, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("zero simulated makespan")
	}
	// Markers are dropped, computational tasks kept.
	kept := 0
	for _, i := range index {
		if i >= 0 {
			kept++
		}
	}
	if kept != 9 {
		t.Fatalf("program has %d tasks, want 9", kept)
	}
	// Too-short sequence is rejected.
	if _, _, err := ToProgram(m, s, seq[:10]); err == nil {
		t.Fatal("short sequence accepted")
	}
}
