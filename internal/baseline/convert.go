package baseline

import (
	"fmt"
	"sort"

	"mtask/internal/arch"
	"mtask/internal/cluster"
	"mtask/internal/cost"
	"mtask/internal/graph"
)

// ToProgram converts a Gantt schedule into a simulatable cluster program.
// The schedule's symbolic cores 0..P-1 are mapped onto physical cores via
// the given sequence (the paper maps baseline schedules consecutively; pass
// a different strategy's sequence to experiment). Dependencies are the
// M-task graph's edges (with re-distribution payloads) plus, per core, the
// occupancy order of the schedule, so that the simulation respects the
// scheduler's placement decisions.
func ToProgram(m *cost.Model, s *Gantt, seq []arch.CoreID) (*cluster.Program, []int, error) {
	if len(seq) < s.P {
		return nil, nil, fmt.Errorf("baseline: sequence provides %d cores, schedule needs %d", len(seq), s.P)
	}
	g := s.Graph
	prog := &cluster.Program{Name: g.Name + "/" + "gantt"}
	index := make([]int, g.Len())
	for i := range index {
		index[i] = -1
	}
	// Emit computational tasks.
	for id := 0; id < g.Len(); id++ {
		t := g.Task(graph.TaskID(id))
		if markerTask(t) {
			continue
		}
		e := s.Entries[id]
		cores := make([]arch.CoreID, len(e.Cores))
		for i, c := range e.Cores {
			cores[i] = seq[c]
		}
		spec := cluster.TaskSpec{
			Name:       t.Name,
			Work:       t.Work,
			CommBytes:  t.CommBytes,
			CommCount:  t.CommCount,
			BcastBytes: t.BcastBytes,
			BcastCount: t.BcastCount,
			MaxWidth:   t.MaxWidth,
			Cores:      cores,
			Redist:     make(map[int]int),
		}
		index[id] = prog.Add(spec)
	}
	// Graph edges (skipping markers transitively is unnecessary: marker
	// entries have zero duration and their predecessors are linked via
	// the core occupancy chains; data edges to/from markers carry no
	// bytes).
	for _, e := range g.Edges() {
		fi, ti := index[e.From], index[e.To]
		if fi < 0 || ti < 0 {
			continue
		}
		spec := &prog.Tasks[ti]
		spec.Deps = append(spec.Deps, fi)
		if bytes := g.EdgeBytes(e.From, e.To); bytes > 0 {
			spec.Redist[fi] += bytes
		}
	}
	// Concurrency context: tasks whose scheduled time windows overlap
	// contend for the interconnect; give every computational task the
	// core sets of its overlapping peers so its collectives are priced
	// under the same contention as the layered schedules.
	for a := 0; a < g.Len(); a++ {
		ia := index[a]
		if ia < 0 || prog.Tasks[ia].CommCount == 0 {
			continue
		}
		ea := s.Entries[a]
		concurrent := [][]arch.CoreID{prog.Tasks[ia].Cores}
		for bid := 0; bid < g.Len(); bid++ {
			ib := index[bid]
			if bid == a || ib < 0 {
				continue
			}
			eb := s.Entries[bid]
			if eb.Start < ea.Finish && ea.Start < eb.Finish {
				concurrent = append(concurrent, prog.Tasks[ib].Cores)
			}
		}
		if len(concurrent) > 1 {
			prog.Tasks[ia].Concurrent = concurrent
			prog.Tasks[ia].ConcurrentIdx = 0
		}
	}

	// Per-core occupancy chains in start-time order.
	type occ struct {
		start float64
		idx   int
	}
	perCore := make(map[int][]occ)
	for id := 0; id < g.Len(); id++ {
		if index[id] < 0 {
			continue
		}
		e := s.Entries[id]
		for _, c := range e.Cores {
			perCore[c] = append(perCore[c], occ{start: e.Start, idx: index[id]})
		}
	}
	for _, occs := range perCore {
		sort.Slice(occs, func(i, j int) bool {
			if occs[i].start != occs[j].start {
				return occs[i].start < occs[j].start
			}
			return occs[i].idx < occs[j].idx
		})
		for i := 1; i < len(occs); i++ {
			spec := &prog.Tasks[occs[i].idx]
			spec.Deps = append(spec.Deps, occs[i-1].idx)
		}
	}
	return prog, index, nil
}
