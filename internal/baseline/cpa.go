package baseline

import (
	"math"

	"mtask/internal/cost"
	"mtask/internal/graph"
)

// CPA implements the Critical Path Allocation algorithm (Radulescu/van
// Gemund). The allocation phase starts with one core per task and
// repeatedly grants one more core to the critical-path task that benefits
// most, until the critical path length TCP no longer exceeds the average
// processor area TA = sum(T(t, a_t) * a_t) / P. The allocation phase does
// not constrain the combined allocation of independent tasks, which is the
// "over-allocation" the paper observes for the PABM benchmark (Fig. 13
// left): independent tasks may together be granted more than P cores, so
// the scheduling phase cannot run them all concurrently.
func CPA(m *cost.Model, g *graph.Graph, P int) (*Gantt, error) {
	if _, err := g.TopoOrder(); err != nil {
		return nil, err
	}
	n := g.Len()
	alloc := make([]int, n)
	for id := 0; id < n; id++ {
		alloc[id] = 1
	}

	area := func() float64 {
		var a float64
		for id := 0; id < n; id++ {
			t := g.Task(graph.TaskID(id))
			if markerTask(t) {
				continue
			}
			a += m.SymbolicTaskTime(t, alloc[id]) * float64(alloc[id])
		}
		return a / float64(P)
	}

	// Allocation phase. Following the original algorithm, the loop
	// stops only when the critical path no longer exceeds the average
	// area — there is no positive-gain guard, so with a cost model
	// whose communication term grows with the allocation, tasks can be
	// granted cores past their sweet spot. That is precisely the
	// over-allocation the paper observes.
	for iter := 0; iter < n*P; iter++ {
		tcp := criticalPathLength(m, g, alloc)
		if tcp <= area() {
			break
		}
		// Pick the critical-path task with the largest gain from one
		// more core (possibly negative).
		path := criticalPath(m, g, alloc)
		var best graph.TaskID = graph.None
		bestGain := math.Inf(-1)
		for _, id := range path {
			t := g.Task(id)
			a := alloc[id]
			if a >= P || (t.MaxWidth > 0 && a >= t.MaxWidth) {
				continue
			}
			gain := m.SymbolicTaskTime(t, a) - m.SymbolicTaskTime(t, a+1)
			if gain > bestGain {
				bestGain = gain
				best = id
			}
		}
		if best == graph.None {
			break
		}
		alloc[best]++
	}

	return ListSchedule(m, g, alloc, P)
}
