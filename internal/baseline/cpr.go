package baseline

import (
	"mtask/internal/cost"
	"mtask/internal/graph"
)

// CPR implements the Critical Path Reduction algorithm (Radulescu et al.).
// Unlike CPA, allocation and scheduling are interleaved: starting from one
// core per task, CPR repeatedly offers one more core to a task on the
// critical path of the current schedule, keeps the enlarged allocation if
// the rescheduled makespan improves, and stops when no critical-path task
// improves the schedule. The paper observes that CPR tends to grant many
// cores to the tasks of the longest linear chain (e.g. the EPOL method's
// longest approximation), driving those M-tasks towards a data-parallel
// execution whose extra re-distributions make the schedule slower than
// pure data parallelism (Fig. 13 right).
func CPR(m *cost.Model, g *graph.Graph, P int) (*Gantt, error) {
	return CPRLimited(m, g, P, 60*g.Len())
}

// CPRLimited is CPR with a cap on the number of list-schedule evaluations,
// bounding the runtime on large graphs and core counts. CPR uses a
// generous default cap.
func CPRLimited(m *cost.Model, g *graph.Graph, P, maxEvals int) (*Gantt, error) {
	if _, err := g.TopoOrder(); err != nil {
		return nil, err
	}
	n := g.Len()
	alloc := make([]int, n)
	for id := 0; id < n; id++ {
		alloc[id] = 1
	}
	best, err := ListSchedule(m, g, alloc, P)
	if err != nil {
		return nil, err
	}

	evals := 0
	improved := true
	for improved && evals < maxEvals {
		improved = false
		// Tasks on the critical path of the *current* schedule: the
		// chain of entries whose finish equals the makespan,
		// approximated by the graph critical path under the current
		// allocation (markers excluded).
		path := criticalPath(m, g, alloc)
		for _, id := range path {
			t := g.Task(id)
			a := alloc[id]
			if a >= P || (t.MaxWidth > 0 && a >= t.MaxWidth) {
				continue
			}
			alloc[id] = a + 1
			cand, err := ListSchedule(m, g, alloc, P)
			if err != nil {
				return nil, err
			}
			evals++
			// Accept non-worsening candidates: in layers of many
			// identical tasks a single increment cannot shorten
			// the makespan until all peers have grown, so strict
			// improvement would stall immediately. Every
			// acceptance grows the total allocation (bounded by
			// n*P) and rejections advance along the path, so the
			// loop terminates.
			if cand.Makespan <= best.Makespan*(1+1e-12) {
				best = cand
				improved = true
				break // restart from the new critical path
			}
			alloc[id] = a // revert
		}
	}
	return best, nil
}
