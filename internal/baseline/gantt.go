// Package baseline implements the two-phase M-task scheduling algorithms
// CPA and CPR that the paper uses as comparison baselines in Section 4.3
// (Radulescu/van Gemund, "A low-cost approach towards mixed task and data
// parallel scheduling", and Radulescu et al., "CPR: mixed task and data
// parallel scheduling for distributed systems").
//
// Both algorithms separate an allocation phase, which fixes the number of
// cores per M-task, from a scheduling phase, which is a list scheduler
// placing each task on concrete (symbolic) cores at a concrete start time.
// Unlike the layer-based algorithm of internal/core, the resulting
// schedules have no layered structure, so they cannot be combined with the
// paper's mapping step; they are mapped with a fixed consecutive core
// sequence for simulation.
package baseline

import (
	"fmt"
	"sort"

	"mtask/internal/cost"
	"mtask/internal/graph"
)

// Entry is the placement of one task in a Gantt schedule.
type Entry struct {
	Task   graph.TaskID
	Start  float64
	Finish float64
	// Cores lists the symbolic core indices (0..P-1) executing the
	// task. Empty for start/stop markers.
	Cores []int
}

// Gantt is a complete M-task schedule with explicit start times and core
// sets.
type Gantt struct {
	Graph    *graph.Graph
	P        int
	Entries  []Entry // indexed by task id
	Makespan float64
}

// Validate checks that no core executes two tasks at overlapping times and
// that precedence constraints hold.
func (s *Gantt) Validate() error {
	type span struct {
		start, finish float64
		task          graph.TaskID
	}
	perCore := make([][]span, s.P)
	for _, e := range s.Entries {
		for _, c := range e.Cores {
			if c < 0 || c >= s.P {
				return fmt.Errorf("baseline: task %d on invalid core %d", e.Task, c)
			}
			perCore[c] = append(perCore[c], span{e.Start, e.Finish, e.Task})
		}
	}
	const eps = 1e-12
	for c, spans := range perCore {
		sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
		for i := 1; i < len(spans); i++ {
			if spans[i].start < spans[i-1].finish-eps {
				return fmt.Errorf("baseline: core %d overlaps tasks %d and %d",
					c, spans[i-1].task, spans[i].task)
			}
		}
	}
	for _, e := range s.Graph.Edges() {
		if s.Entries[e.To].Start < s.Entries[e.From].Finish-eps {
			return fmt.Errorf("baseline: precedence %d->%d violated", e.From, e.To)
		}
	}
	return nil
}

// bottomLevels returns, per task, the length of the longest path from the
// task to any exit, including the task's own execution time under the given
// allocation — the standard list-scheduling priority.
func bottomLevels(m *cost.Model, g *graph.Graph, alloc []int) []float64 {
	order, _ := g.TopoOrder()
	bl := make([]float64, g.Len())
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		var succMax float64
		for _, sid := range g.Succ(id) {
			if bl[sid] > succMax {
				succMax = bl[sid]
			}
		}
		bl[id] = m.SymbolicTaskTime(g.Task(id), alloc[id]) + succMax
	}
	return bl
}

// clampAlloc bounds an allocation by 1, P and the task's MaxWidth.
func clampAlloc(t *graph.Task, a, P int) int {
	if a < 1 {
		a = 1
	}
	if a > P {
		a = P
	}
	if t.MaxWidth > 0 && a > t.MaxWidth {
		a = t.MaxWidth
	}
	return a
}

// markerTask reports whether the task carries no computation (start/stop).
func markerTask(t *graph.Task) bool {
	return t.Kind == graph.KindStart || t.Kind == graph.KindStop
}

// ListSchedule runs the scheduling phase shared by CPA and CPR: tasks are
// processed in decreasing bottom-level priority among ready tasks; each
// task starts as early as its predecessors (plus re-distribution of their
// outputs) and the availability of alloc[t] symbolic cores permit. The
// chosen cores are those free earliest.
func ListSchedule(m *cost.Model, g *graph.Graph, alloc []int, P int) (*Gantt, error) {
	n := g.Len()
	if len(alloc) != n {
		return nil, fmt.Errorf("baseline: allocation has %d entries for %d tasks", len(alloc), n)
	}
	if _, err := g.TopoOrder(); err != nil {
		return nil, err
	}
	bl := bottomLevels(m, g, alloc)

	sched := &Gantt{Graph: g, P: P, Entries: make([]Entry, n)}
	coreFree := make([]float64, P)
	finished := make([]bool, n)
	indeg := make([]int, n)
	for id := 0; id < n; id++ {
		indeg[id] = len(g.Pred(graph.TaskID(id)))
	}
	ready := make([]graph.TaskID, 0, n)
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			ready = append(ready, graph.TaskID(id))
		}
	}
	scheduled := 0
	for len(ready) > 0 {
		// Highest priority first; ties by id for determinism.
		sort.Slice(ready, func(i, j int) bool {
			if bl[ready[i]] != bl[ready[j]] {
				return bl[ready[i]] > bl[ready[j]]
			}
			return ready[i] < ready[j]
		})
		id := ready[0]
		ready = ready[1:]
		t := g.Task(id)

		// Data-ready time: predecessors plus re-distribution.
		var dataReady float64
		for _, p := range g.Pred(id) {
			f := sched.Entries[p].Finish
			if bytes := g.EdgeBytes(p, id); bytes > 0 {
				f += m.SymbolicRedistribute(alloc[p], alloc[id], bytes)
			}
			if f > dataReady {
				dataReady = f
			}
		}

		var cores []int
		start := dataReady
		if !markerTask(t) {
			a := clampAlloc(t, alloc[id], P)
			// Pick the a cores that free up earliest.
			idx := make([]int, P)
			for i := range idx {
				idx[i] = i
			}
			sort.Slice(idx, func(i, j int) bool {
				if coreFree[idx[i]] != coreFree[idx[j]] {
					return coreFree[idx[i]] < coreFree[idx[j]]
				}
				return idx[i] < idx[j]
			})
			cores = idx[:a]
			for _, c := range cores {
				if coreFree[c] > start {
					start = coreFree[c]
				}
			}
		}
		dur := 0.0
		if !markerTask(t) {
			dur = m.SymbolicTaskTime(t, len(cores))
		}
		finish := start + dur
		sortedCores := append([]int(nil), cores...)
		sort.Ints(sortedCores)
		sched.Entries[id] = Entry{Task: id, Start: start, Finish: finish, Cores: sortedCores}
		for _, c := range cores {
			coreFree[c] = finish
		}
		if finish > sched.Makespan {
			sched.Makespan = finish
		}
		finished[id] = true
		scheduled++
		for _, s := range g.Succ(id) {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if scheduled != n {
		return nil, fmt.Errorf("baseline: scheduled %d of %d tasks", scheduled, n)
	}
	return sched, nil
}

// criticalPath returns the tasks on a longest path through the graph under
// the given allocation (by execution time, excluding markers).
func criticalPath(m *cost.Model, g *graph.Graph, alloc []int) []graph.TaskID {
	order, _ := g.TopoOrder()
	dist := make([]float64, g.Len())
	via := make([]graph.TaskID, g.Len())
	var best graph.TaskID = graph.None
	var bestDist float64 = -1
	for _, id := range order {
		via[id] = graph.None
		var predMax float64
		for _, p := range g.Pred(id) {
			if dist[p] > predMax {
				predMax = dist[p]
				via[id] = p
			}
		}
		d := 0.0
		if !markerTask(g.Task(id)) {
			d = m.SymbolicTaskTime(g.Task(id), alloc[id])
		}
		dist[id] = predMax + d
		if dist[id] > bestDist {
			bestDist = dist[id]
			best = id
		}
	}
	var path []graph.TaskID
	for id := best; id != graph.None; id = via[id] {
		if !markerTask(g.Task(id)) {
			path = append(path, id)
		}
	}
	// Reverse to source-to-sink order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// criticalPathLength is the length of the longest path (markers excluded).
func criticalPathLength(m *cost.Model, g *graph.Graph, alloc []int) float64 {
	order, _ := g.TopoOrder()
	dist := make([]float64, g.Len())
	var max float64
	for _, id := range order {
		var predMax float64
		for _, p := range g.Pred(id) {
			if dist[p] > predMax {
				predMax = dist[p]
			}
		}
		d := 0.0
		if !markerTask(g.Task(id)) {
			d = m.SymbolicTaskTime(g.Task(id), alloc[id])
		}
		dist[id] = predMax + d
		if dist[id] > max {
			max = dist[id]
		}
	}
	return max
}
