package baseline

import (
	"fmt"

	"mtask/internal/obs"
)

// Render renders the schedule as a text Gantt chart, one line per timed
// task (start/stop markers omitted), using the shared obs renderer so
// baseline schedules, simulated cluster runs and execution traces all
// read the same way.
func (s *Gantt) Render(width int) string {
	var rows []obs.Row
	for _, e := range s.Entries {
		if e.Finish <= e.Start {
			continue
		}
		name := s.Graph.Task(e.Task).Name
		if name == "" {
			name = fmt.Sprintf("task %d", e.Task)
		}
		rows = append(rows, obs.Row{
			Name:   name,
			Start:  e.Start,
			End:    e.Finish,
			Detail: fmt.Sprintf("(%d cores)", len(e.Cores)),
		})
	}
	head := fmt.Sprintf("baseline gantt: makespan %.4g s, %d timed tasks on %d cores\n",
		s.Makespan, len(rows), s.P)
	return head + obs.RenderRows(rows, width, s.Makespan)
}
