package bench

import (
	"fmt"

	"mtask/internal/arch"
	"mtask/internal/cluster"
	"mtask/internal/core"
	"mtask/internal/cost"
	"mtask/internal/graph"
	"mtask/internal/nas"
	"mtask/internal/ode"
)

// AblationParams scales the design-choice ablation studies of DESIGN.md.
type AblationParams struct {
	Cores int
	N     int
}

// DefaultAblationParams uses 256 CHiC cores.
func DefaultAblationParams() AblationParams {
	return AblationParams{Cores: 256, N: 250000}
}

// runScheduled schedules a graph with the given scheduler, maps it with
// the strategy and returns the simulated makespan.
func runScheduled(model *cost.Model, mach *arch.Machine, s *core.Scheduler, g *graph.Graph, p int, strat core.Strategy) (float64, error) {
	sched, err := s.Schedule(g, p)
	if err != nil {
		return 0, err
	}
	mp, err := core.Map(sched, mach, strat)
	if err != nil {
		return 0, err
	}
	prog, _, err := cluster.FromMapping(model, mp)
	if err != nil {
		return 0, err
	}
	res, err := cluster.Simulate(model, prog)
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}

// Ablations evaluates the scheduler design choices called out in
// DESIGN.md: linear-chain contraction, group-size adjustment, LPT
// assignment, and the mixed-mapping block size d.
func Ablations(params AblationParams) ([]*Table, error) {
	mach := arch.CHiC().SubsetCores(params.Cores)
	model := &cost.Model{Machine: mach}
	p := params.Cores

	// Chain contraction on the EPOL graph (chains are its essence).
	chains := &Table{ID: "ablation-chains",
		Title:  "Linear-chain contraction (EPOL R=8): simulated time",
		Header: []string{"variant", "time [s]", "layers"}}
	g := ode.BuildEPOLGraph(params.N, 14, 8, 2)
	for _, v := range []struct {
		name string
		s    *core.Scheduler
	}{
		{"with contraction", &core.Scheduler{Model: model}},
		{"without contraction", &core.Scheduler{Model: model, DisableChainContraction: true}},
	} {
		ms, err := runScheduled(model, mach, v.s, g, p, core.Consecutive{})
		if err != nil {
			return nil, err
		}
		sched, _ := v.s.Schedule(g, p)
		chains.Rows = append(chains.Rows, []string{v.name, fmt.Sprintf("%.6g", ms), fmt.Sprintf("%d", len(sched.Layers))})
	}

	// Group adjustment on a BT-MZ-style layer with one zone per group:
	// the geometric zone sizes make equal group sizes waste cores on
	// small zones. One row of class C zones (16 zones, 20x work spread).
	adjust := &Table{ID: "ablation-adjust",
		Title:  "Group-size adjustment (one BT-MZ zone row, 16 groups): simulated time",
		Header: []string{"variant", "time [s]"}}
	zones := nas.MakeZones(nas.BTMZ, nas.ClassC())
	zg := graph.New("btmz-row")
	for _, z := range zones[:16] {
		zg.AddTask(&graph.Task{
			Name: fmt.Sprintf("zone%d", z.ID), Kind: graph.KindBasic,
			Work: z.Work, CommBytes: 8 * z.NX * z.NY * z.NZ, CommCount: 2,
		})
	}
	for _, v := range []struct {
		name string
		s    *core.Scheduler
	}{
		{"with adjustment", &core.Scheduler{Model: model, ForceGroups: 16}},
		{"without adjustment", &core.Scheduler{Model: model, ForceGroups: 16, DisableAdjustment: true}},
	} {
		ms, err := runScheduled(model, mach, v.s, zg, p, core.Scattered{})
		if err != nil {
			return nil, err
		}
		adjust.Rows = append(adjust.Rows, []string{v.name, fmt.Sprintf("%.6g", ms)})
	}

	// LPT vs round-robin on two zone rows over 8 groups: round-robin
	// pairs large zones with large ones, LPT balances.
	lpt := &Table{ID: "ablation-lpt",
		Title:  "LPT vs round-robin task assignment (two BT-MZ zone rows, 8 groups): simulated time",
		Header: []string{"variant", "time [s]"}}
	zg2 := graph.New("btmz-rows")
	for _, z := range zones[:32] {
		zg2.AddTask(&graph.Task{
			Name: fmt.Sprintf("zone%d", z.ID), Kind: graph.KindBasic,
			Work: z.Work, CommBytes: 8 * z.NX * z.NY * z.NZ, CommCount: 2,
		})
	}
	for _, v := range []struct {
		name string
		s    *core.Scheduler
	}{
		{"LPT", &core.Scheduler{Model: model, ForceGroups: 8, DisableAdjustment: true}},
		{"round-robin", &core.Scheduler{Model: model, ForceGroups: 8, DisableAdjustment: true, RoundRobin: true}},
	} {
		ms, err := runScheduled(model, mach, v.s, zg2, p, core.Scattered{})
		if err != nil {
			return nil, err
		}
		lpt.Rows = append(lpt.Rows, []string{v.name, fmt.Sprintf("%.6g", ms)})
	}

	// Mixed-mapping d sweep for the PAB method (Fig. 16's finding that
	// an intermediate d wins when group-based and orthogonal
	// communication balance).
	dsweep := &Table{ID: "ablation-mixed-d",
		Title:  "Mixed mapping block size d (PAB K=8 on CHiC)",
		XLabel: "d", YLabel: "time per step [s]"}
	for _, d := range []int{1, 2, 4} {
		y, err := runStep(model, mach, p, core.Mixed{D: d}, pabSpec(params.N, 8, 0, 14, false, p), 2)
		if err != nil {
			return nil, err
		}
		dsweep.AddPoint("mixed", float64(d), y)
	}
	return []*Table{chains, adjust, lpt, dsweep}, nil
}
