package bench

import (
	"strconv"
	"strings"
	"testing"
)

func TestTableFormatAndAccessors(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", XLabel: "n", YLabel: "t"}
	tab.AddPoint("a", 1, 10)
	tab.AddPoint("a", 2, 20)
	tab.AddPoint("b", 1, 5)
	if y, ok := tab.Get("a", 2); !ok || y != 20 {
		t.Fatalf("Get = %v %v", y, ok)
	}
	if _, ok := tab.Get("a", 3); ok {
		t.Fatal("missing point found")
	}
	if best := tab.Best(1); best != "b" {
		t.Fatalf("Best = %q", best)
	}
	out := tab.Format()
	for _, want := range []string{"demo", "a", "b", "10", "20"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
	rows := &Table{ID: "r", Title: "rows", Header: []string{"k", "v"},
		Rows: [][]string{{"alpha", "1"}}, Notes: []string{"hello"}}
	out = rows.Format()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "note: hello") {
		t.Fatalf("row format wrong:\n%s", out)
	}
}

func smallFig13() Fig13Params {
	return Fig13Params{Cores: []int{32, 64}, N: 40000, Steps: 2, Eval: 600}
}

func TestFig13ShapesSmall(t *testing.T) {
	left, err := Fig13Left(smallFig13())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{32, 64} {
		dp, _ := left.Get("data-parallel", p)
		tp, _ := left.Get("task-parallel", p)
		cpr, _ := left.Get("CPR", p)
		if !(tp > dp) {
			t.Errorf("PABM @%g: tp speedup %g not above dp %g", p, tp, dp)
		}
		// CPR tracks the layer-based schedule (within 2x).
		if cpr < tp/2 {
			t.Errorf("PABM @%g: CPR %g far below tp %g", p, cpr, tp)
		}
	}

	right, err := Fig13Right(smallFig13())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{32, 64} {
		tp, _ := right.Get("task-parallel", p)
		cpr, _ := right.Get("CPR", p)
		cpa, _ := right.Get("CPA", p)
		if !(cpr > tp) {
			t.Errorf("EPOL @%g: CPR %g should be slower than tp %g", p, cpr, tp)
		}
		if cpa < tp*0.5 {
			t.Errorf("EPOL @%g: implausible CPA %g vs tp %g", p, cpa, tp)
		}
	}
}

func TestFig14Shapes(t *testing.T) {
	params := Fig14Params{Cores: 64, Sizes: []int{4 << 10, 64 << 10}}
	left, err := Fig14Left(params)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range params.Sizes {
		c, _ := left.Get("consecutive", float64(size))
		m, _ := left.Get("mixed(d=2)", float64(size))
		s, _ := left.Get("scattered", float64(size))
		if !(c < m && m < s) {
			t.Errorf("allgather @%d: order wrong: %g %g %g", size, c, m, s)
		}
	}
	right, err := Fig14Right(params)
	if err != nil {
		t.Fatal(err)
	}
	size := float64(params.Sizes[1])
	cg, _ := right.Get("consecutive-4x16", size)
	sg, _ := right.Get("scattered-4x16", size)
	co, _ := right.Get("consecutive-16x4", size)
	so, _ := right.Get("scattered-16x4", size)
	if !(cg < sg) {
		t.Errorf("group-based: consecutive %g should beat scattered %g", cg, sg)
	}
	if !(so < co) {
		t.Errorf("orthogonal: scattered %g should beat consecutive %g", so, co)
	}
}

func TestFig15ShapesSmall(t *testing.T) {
	params := Fig15Params{
		Cores: []int{32, 64}, N: 100000,
		DenseN: 256, DIIRKCores: 64, EPOLCores: 64,
		SizeSweep: []int{50000, 100000},
	}
	tables, err := Fig15(params)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]*Table{}
	for _, tab := range tables {
		byID[tab.ID] = tab
	}
	irk := byID["fig15-irk-chic"]
	for _, p := range []float64{32, 64} {
		c, _ := irk.Get("consecutive", p)
		s, _ := irk.Get("scattered", p)
		dp, _ := irk.Get("data-parallel", p)
		if !(c < s) {
			t.Errorf("IRK @%g: consecutive %g should beat scattered %g", p, c, s)
		}
		if !(c < dp) {
			t.Errorf("IRK @%g: tp %g should beat dp %g", p, c, dp)
		}
	}
	diirk := byID["fig15-diirk-chic"]
	for _, s := range diirk.Series {
		if s.Label == "data-parallel" {
			continue
		}
		for i, x := range s.X {
			dp, _ := diirk.Get("data-parallel", x)
			if !(s.Y[i] < dp) {
				t.Errorf("DIIRK %s @%g: tp %g should beat dp %g", s.Label, x, s.Y[i], dp)
			}
		}
	}
	epol := byID["fig15-epol-juropa"]
	for _, x := range []float64{50000, 100000} {
		c, _ := epol.Get("consecutive", x)
		m4, _ := epol.Get("mixed(d=4)", x)
		if !(c < m4) {
			t.Errorf("EPOL @%g: consecutive %g should beat mixed(4) %g", x, c, m4)
		}
	}
}

func TestFig16ShapesSmall(t *testing.T) {
	params := Fig16Params{Cores: []int{64, 128, 256}, N: 100000, DenseN: 8000}
	tables, err := Fig16(params)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]*Table{}
	for _, tab := range tables {
		byID[tab.ID] = tab
	}
	pabm := byID["fig16-pabm-chic"]
	// tp consecutive outgrows dp with the core count.
	dpGain, _ := pabm.Get("data-parallel", 256)
	dpBase, _ := pabm.Get("data-parallel", 64)
	tpGain, _ := pabm.Get("consecutive", 256)
	tpBase, _ := pabm.Get("consecutive", 64)
	if !(tpGain/tpBase > dpGain/dpBase) {
		t.Errorf("PABM: tp scaling %g/%g not above dp %g/%g", tpGain, tpBase, dpGain, dpBase)
	}
	pab := byID["fig16-pab-chic"]
	for _, p := range []float64{64, 256} {
		c, _ := pab.Get("consecutive", p)
		s, _ := pab.Get("scattered", p)
		dp, _ := pab.Get("data-parallel", p)
		if !(c < s && c < dp) {
			t.Errorf("PAB @%g: consecutive %g vs scattered %g vs dp %g", p, c, s, dp)
		}
	}
}

func TestFig17ShapesSmall(t *testing.T) {
	params := Fig17Params{Groups: []int{1, 4, 16, 64, 256}, CoresCHiC: 256, CoresAltix: 128, Steps: 2}
	tables, err := Fig17(params)
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tables {
		if len(tab.Series) == 0 {
			t.Fatalf("%s: empty", tab.ID)
		}
		// Few groups must be uncompetitive against the best.
		for _, s := range tab.Series {
			if len(s.Y) < 3 {
				continue
			}
			best := s.Y[0]
			for _, y := range s.Y {
				if y > best {
					best = y
				}
			}
			if !(best > 2*s.Y[0]) {
				t.Errorf("%s %s: best %g not well above 4-group %g", tab.ID, s.Label, best, s.Y[0])
			}
		}
	}
	// BT-MZ on CHiC: the maximum group count is not the best (load
	// imbalance dome).
	for _, tab := range tables {
		if tab.ID != "fig17-btmz-chic" {
			continue
		}
		s := tab.Series[0]
		last := s.Y[len(s.Y)-1]
		best := last
		for _, y := range s.Y {
			if y > best {
				best = y
			}
		}
		if !(best > last*1.05) {
			t.Errorf("BT-MZ: max groups %g should lose to best %g", last, best)
		}
	}
}

func TestFig18ShapesSmall(t *testing.T) {
	params := Fig18Params{Cores: []int{64, 128}, N: 100000, Eval: 600}
	tables, err := Fig18(params)
	if err != nil {
		t.Fatal(err)
	}
	irk, diirk := tables[0], tables[1]
	for _, p := range []float64{64, 128} {
		mpi, _ := irk.Get("dp-MPI", p)
		hyb, _ := irk.Get("dp-hybrid", p)
		if !(hyb > mpi) {
			t.Errorf("IRK dp @%g: hybrid speedup %g not above MPI %g", p, hyb, mpi)
		}
		dmpi, _ := diirk.Get("dp-MPI", p)
		dhyb, _ := diirk.Get("dp-hybrid", p)
		if !(dhyb > dmpi) {
			t.Errorf("DIIRK dp @%g: hybrid %g should be slower than MPI %g", p, dhyb, dmpi)
		}
		tmpi, _ := diirk.Get("tp-MPI", p)
		if !(tmpi < dmpi) {
			t.Errorf("DIIRK @%g: tp %g should beat dp %g", p, tmpi, dmpi)
		}
	}
}

func TestFig19ShapesSmall(t *testing.T) {
	params := Fig19Params{Cores: 64, Threads: []int{1, 2, 4, 8}, N: 4000}
	tab, err := Fig19(params)
	if err != nil {
		t.Fatal(err)
	}
	// dp improves monotonically towards more threads per rank and is
	// best at one rank.
	one, _ := tab.Get("data-parallel", 1)
	full, _ := tab.Get("data-parallel", 64)
	if !(full < one) {
		t.Errorf("dp: 1x64 threads %g should beat 64x1 %g", full, one)
	}
	// tp beats dp at the pure-MPI end.
	tp1, ok := tab.Get("task-parallel", 1)
	if !ok || !(tp1 < one) {
		t.Errorf("tp %g should beat dp %g at 1 thread", tp1, one)
	}
}

func TestTable1Runs(t *testing.T) {
	tab, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 10 {
		t.Fatalf("table1 has %d rows", len(tab.Rows))
	}
	// Spot checks against the formulas: EPOL dp = R(R+1)/2 = 10 for
	// R=4; PABM dp = K(1+m) = 16 for K=4, m=3.
	found := map[string]string{}
	for _, row := range tab.Rows {
		found[row[0]+"/"+row[1]] = row[3]
	}
	if got := found["EPOL(dp)/global/allgather"]; got != "10.00" {
		t.Errorf("EPOL dp global Tag = %s, want 10.00", got)
	}
	if got := found["PABM(dp)/global/allgather"]; got != "16.00" {
		t.Errorf("PABM dp global Tag = %s, want 16.00", got)
	}
	if got := found["PAB(tp)/group/allgather (per group)"]; got != "1.00" {
		t.Errorf("PAB tp per-group Tag = %s, want 1.00", got)
	}
}

func TestAblationsSmall(t *testing.T) {
	tables, err := Ablations(AblationParams{Cores: 64, N: 100000})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]*Table{}
	for _, tab := range tables {
		byID[tab.ID] = tab
	}
	parse := func(tab *Table, row int) float64 {
		v, err := strconv.ParseFloat(tab.Rows[row][1], 64)
		if err != nil {
			t.Fatalf("%s: bad number %q", tab.ID, tab.Rows[row][1])
		}
		return v
	}
	chains := byID["ablation-chains"]
	if !(parse(chains, 0) <= parse(chains, 1)) {
		t.Error("chain contraction did not help")
	}
	adjust := byID["ablation-adjust"]
	if !(parse(adjust, 0) < parse(adjust, 1)) {
		t.Error("group adjustment did not help")
	}
	lpt := byID["ablation-lpt"]
	if !(parse(lpt, 0) <= parse(lpt, 1)) {
		t.Error("LPT did not help")
	}
}

func TestTableJSON(t *testing.T) {
	tab := &Table{ID: "j", Title: "json demo", XLabel: "x", YLabel: "y"}
	tab.AddPoint("s", 1, 2)
	data, err := tab.JSON()
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{`"id": "j"`, `"label": "s"`, `"x"`, `"y"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON missing %q:\n%s", want, out)
		}
	}
}
