package bench

import (
	"fmt"
	"runtime"

	"mtask/internal/arch"
	"mtask/internal/baseline"
	"mtask/internal/cluster"
	"mtask/internal/core"
	"mtask/internal/cost"
	"mtask/internal/graph"
	"mtask/internal/ode"
)

// Fig13Params scales the scheduler-comparison experiment.
type Fig13Params struct {
	Cores []int
	N     int     // ODE system size
	Steps int     // time steps in the task graph
	Eval  float64 // flops per right-hand-side component
}

// DefaultFig13 reproduces the paper's setup: PABM with K = 8 stage vectors
// and EPOL with R = 8 approximations on the CHiC cluster. The paper's
// speedups (around 100 on 512 cores) imply a compute-heavy right-hand
// side (the BRUSS2D reaction terms with transcendental functions); the
// per-component evaluation cost is set accordingly.
func DefaultFig13() Fig13Params {
	return Fig13Params{Cores: []int{64, 128, 256, 512}, N: 180000, Steps: 2, Eval: 600}
}

// simulateSchedule maps a layered schedule consecutively and simulates it.
func simulateSchedule(model *cost.Model, mach *arch.Machine, s *core.Schedule) (float64, error) {
	mp, err := core.Map(s, mach, core.Consecutive{})
	if err != nil {
		return 0, err
	}
	prog, _, err := cluster.FromMapping(model, mp)
	if err != nil {
		return 0, err
	}
	res, err := cluster.Simulate(model, prog)
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}

// simulateGantt converts a baseline Gantt schedule to a program and
// simulates it.
func simulateGantt(model *cost.Model, mach *arch.Machine, s *baseline.Gantt) (float64, error) {
	prog, _, err := baseline.ToProgram(model, s, core.Consecutive{}.Sequence(mach))
	if err != nil {
		return 0, err
	}
	res, err := cluster.Simulate(model, prog)
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}

// schedulerComparison runs the four scheduling approaches of Fig. 13 on a
// task graph builder and records speedup (left panel style) or time per
// step (right panel style).
func schedulerComparison(id, title string, params Fig13Params, speedup bool,
	build func(p Fig13Params) *graph.Graph) (*Table, error) {

	t := &Table{ID: id, Title: title, XLabel: "cores"}
	if speedup {
		t.YLabel = "speedup over sequential"
	} else {
		t.YLabel = "time per step [s]"
	}
	g := build(params)
	for _, p := range params.Cores {
		mach := arch.CHiC().SubsetCores(p)
		model := (&cost.Model{Machine: mach}).WithMemo()
		seqStep := model.CompTime(g.TotalWork(), 1) / float64(params.Steps)

		record := func(label string, makespan float64, err error) error {
			if err != nil {
				return fmt.Errorf("%s @%d: %w", label, p, err)
			}
			perStep := makespan / float64(params.Steps)
			if speedup {
				t.AddPoint(label, float64(p), seqStep/perStep)
			} else {
				t.AddPoint(label, float64(p), perStep)
			}
			return nil
		}

		dp, err := core.DataParallel(model, g, p)
		if err != nil {
			return nil, err
		}
		ms, err := simulateSchedule(model, mach, dp)
		if err := record("data-parallel", ms, err); err != nil {
			return nil, err
		}

		tp, err := (&core.Scheduler{Model: model, Parallel: runtime.GOMAXPROCS(0)}).Schedule(g, p)
		if err != nil {
			return nil, err
		}
		ms, err = simulateSchedule(model, mach, tp)
		if err := record("task-parallel", ms, err); err != nil {
			return nil, err
		}

		cpa, err := baseline.CPA(model, g, p)
		if err != nil {
			return nil, err
		}
		ms, err = simulateGantt(model, mach, cpa)
		if err := record("CPA", ms, err); err != nil {
			return nil, err
		}

		cpr, err := baseline.CPR(model, g, p)
		if err != nil {
			return nil, err
		}
		ms, err = simulateGantt(model, mach, cpr)
		if err := record("CPR", ms, err); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Fig13Left reproduces Fig. 13 (left): speedups of the PABM method with
// K = 8 stage vectors on the CHiC cluster under the four scheduling
// approaches. Expected shape: CPA is not competitive (over-allocation
// idle time); CPR tracks the layer-based task-parallel schedule; dp falls
// behind at scale.
func Fig13Left(params Fig13Params) (*Table, error) {
	return schedulerComparison("fig13-left",
		"Scheduler comparison: PABM K=8 on CHiC (speedups)", params, true,
		func(p Fig13Params) *graph.Graph {
			return ode.BuildPABGraph(p.N, p.Eval, 8, 2, p.Steps)
		})
}

// Fig13Right reproduces Fig. 13 (right): execution time per time step of
// the EPOL method with R = 8 approximations on the CHiC cluster. Expected
// shape: CPR allocates the longest chain almost all cores and ends up
// slower than pure data parallelism; CPA's mixed schedule and the
// layer-based schedule do well.
func Fig13Right(params Fig13Params) (*Table, error) {
	return schedulerComparison("fig13-right",
		"Scheduler comparison: EPOL R=8 on CHiC (time per step)", params, false,
		func(p Fig13Params) *graph.Graph {
			return ode.BuildEPOLGraph(p.N, p.Eval, 8, p.Steps)
		})
}
