package bench

import (
	"mtask/internal/arch"
	"mtask/internal/core"
	"mtask/internal/cost"
)

// Fig14Params scales the collective micro-benchmarks.
type Fig14Params struct {
	Cores int
	Sizes []int // bytes provided by each participating core
}

// DefaultFig14 uses 256 CHiC cores and message sizes from 1 KiB to 1 MiB,
// as Fig. 14 does.
func DefaultFig14() Fig14Params {
	return Fig14Params{
		Cores: 256,
		Sizes: []int{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20},
	}
}

// Fig14Left reproduces Fig. 14 (left): the execution time of a global
// MPI_Allgather on the CHiC cluster under the three mapping strategies.
// Expected shape: consecutive < mixed(2) < scattered for large messages,
// caused by the ring algorithm's neighbour communication.
func Fig14Left(params Fig14Params) (*Table, error) {
	mach := arch.CHiC().SubsetCores(params.Cores)
	model := &cost.Model{Machine: mach}
	t := &Table{
		ID:     "fig14-left",
		Title:  "Global MPI_Allgather on CHiC: mapping strategies",
		XLabel: "bytes per core",
		YLabel: "time [s]",
	}
	for _, strat := range []core.Strategy{core.Consecutive{}, core.Mixed{D: 2}, core.Scattered{}} {
		seq := strat.Sequence(mach)[:params.Cores]
		for _, size := range params.Sizes {
			t.AddPoint(strat.Name(), float64(size), model.Allgather([][]arch.CoreID{seq}, size))
		}
	}
	return t, nil
}

// Fig14Right reproduces Fig. 14 (right): the Multi-Allgather benchmark
// with 4 groups of 64 cores (the solvers' group-based communication) and
// 64 groups of 4 cores (the orthogonal communication), each under the
// placements induced by the consecutive and scattered mappings of 4 task
// groups. Expected shape: consecutive wins the 4x64 case, scattered wins
// the 64x4 case (its orthogonal sets stay inside one node).
func Fig14Right(params Fig14Params) (*Table, error) {
	mach := arch.CHiC().SubsetCores(params.Cores)
	model := &cost.Model{Machine: mach}
	t := &Table{
		ID:     "fig14-right",
		Title:  "Multi-Allgather on CHiC: group-based vs orthogonal placements",
		XLabel: "bytes per core",
		YLabel: "time [s]",
	}
	const g = 4
	gs := params.Cores / g
	for _, strat := range []core.Strategy{core.Consecutive{}, core.Scattered{}} {
		seq := strat.Sequence(mach)[:params.Cores]
		var groups, orth [][]arch.CoreID
		for i := 0; i < g; i++ {
			groups = append(groups, seq[i*gs:(i+1)*gs])
		}
		for pos := 0; pos < gs; pos++ {
			var set []arch.CoreID
			for i := 0; i < g; i++ {
				set = append(set, seq[i*gs+pos])
			}
			orth = append(orth, set)
		}
		for _, size := range params.Sizes {
			t.AddPoint(g64Label(strat, g, gs), float64(size), model.Allgather(groups, size))
			t.AddPoint(g64Label(strat, gs, g), float64(size), model.Allgather(orth, size))
		}
	}
	return t, nil
}

func g64Label(s core.Strategy, groups, size int) string {
	return s.Name() + "-" + itoa(groups) + "x" + itoa(size)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
