package bench

import (
	"fmt"

	"mtask/internal/arch"
	"mtask/internal/core"
	"mtask/internal/cost"
)

// mappingsFor returns the mapping strategies evaluated on a machine: all
// machines get consecutive, mixed(2) and scattered; machines with eight
// cores per node (JuRoPA) additionally get mixed(4), as in the paper.
func mappingsFor(mach *arch.Machine) []core.Strategy {
	strats := []core.Strategy{core.Consecutive{}, core.Mixed{D: 2}, core.Scattered{}}
	if mach.CoresPerNode() >= 8 {
		strats = []core.Strategy{core.Consecutive{}, core.Mixed{D: 4}, core.Mixed{D: 2}, core.Scattered{}}
	}
	return strats
}

// mappingSweep runs a tp step spec under every mapping strategy (plus the
// dp version under consecutive mapping, the paper's best dp placement)
// over a range of core counts.
func mappingSweep(id, title string, mach *arch.Machine, cores []int,
	tp func(p int) stepSpec, dp func(p int) stepSpec) (*Table, error) {

	t := &Table{ID: id, Title: title, XLabel: "cores", YLabel: "time per step [s]"}
	const steps = 2
	for _, p := range cores {
		sub := mach.SubsetCores(p)
		model := &cost.Model{Machine: sub}
		if dp != nil {
			y, err := runStep(model, sub, p, core.Consecutive{}, dp(p), steps)
			if err != nil {
				return nil, fmt.Errorf("%s dp @%d: %w", id, p, err)
			}
			t.AddPoint("data-parallel", float64(p), y)
		}
		for _, strat := range mappingsFor(sub) {
			y, err := runStep(model, sub, p, strat, tp(p), steps)
			if err != nil {
				return nil, fmt.Errorf("%s %s @%d: %w", id, strat.Name(), p, err)
			}
			t.AddPoint(strat.Name(), float64(p), y)
		}
	}
	return t, nil
}

// Fig15Params scales the mapping-strategy experiments for the IRK, DIIRK
// and EPOL solvers.
type Fig15Params struct {
	Cores      []int
	N          int // sparse system size (BRUSS2D)
	DenseN     int // dense system size for DIIRK
	DIIRKCores int
	EPOLCores  int
	SizeSweep  []int // system sizes for the fixed-core panels
}

// DefaultFig15 follows the paper: IRK with K = 4 stages on the Brusselator
// system on CHiC and JuRoPA; DIIRK on 512 CHiC cores; EPOL with R = 8 on
// 512 JuRoPA cores.
func DefaultFig15() Fig15Params {
	return Fig15Params{
		Cores:      []int{64, 128, 256, 512},
		N:          500000,
		DenseN:     1536,
		DIIRKCores: 512,
		EPOLCores:  512,
		SizeSweep:  []int{125000, 250000, 500000, 1000000},
	}
}

// Fig15 reproduces the four panels of Fig. 15. Expected shapes: the
// lowest times come from mapping as many cores of a group as possible
// onto the same node (consecutive; mixed(4) close on JuRoPA); scattered
// is clearly outperformed; DIIRK's task-parallel version beats dp by far
// (its M-task-internal communication is confined to groups).
func Fig15(params Fig15Params) ([]*Table, error) {
	const k, m = 4, 3
	const evalSparse = 14.0
	var out []*Table

	irkTP := func(p int) stepSpec { return irkSpec(params.N, k, m, evalSparse, false, p) }
	irkDP := func(p int) stepSpec { return irkSpec(params.N, k, m, evalSparse, true, p) }
	t, err := mappingSweep("fig15-irk-chic", "IRK K=4 (BRUSS2D) on CHiC: mapping strategies",
		arch.CHiC(), params.Cores, irkTP, irkDP)
	if err != nil {
		return nil, err
	}
	out = append(out, t)
	t, err = mappingSweep("fig15-irk-juropa", "IRK K=4 (BRUSS2D) on JuRoPA: mapping strategies",
		arch.JuRoPA(), params.Cores, irkTP, irkDP)
	if err != nil {
		return nil, err
	}
	out = append(out, t)

	// DIIRK on a fixed CHiC partition, sweeping the (dense) system size.
	diirk := &Table{ID: "fig15-diirk-chic",
		Title:  fmt.Sprintf("DIIRK K=4 (dense) on %d CHiC cores: mapping strategies", params.DIIRKCores),
		XLabel: "system size n", YLabel: "time per step [s]"}
	mach := arch.CHiC().SubsetCores(params.DIIRKCores)
	model := &cost.Model{Machine: mach}
	evalDense := func(n int) float64 { return 4 * float64(n) }
	for _, frac := range []int{4, 2, 1} {
		n := params.DenseN / frac
		y, err := runStep(model, mach, params.DIIRKCores, core.Consecutive{}, diirkSpec(n, k, 2, evalDense(n), true, params.DIIRKCores), 2)
		if err != nil {
			return nil, err
		}
		diirk.AddPoint("data-parallel", float64(n), y)
		for _, strat := range mappingsFor(mach) {
			y, err := runStep(model, mach, params.DIIRKCores, strat, diirkSpec(n, k, 2, evalDense(n), false, params.DIIRKCores), 2)
			if err != nil {
				return nil, err
			}
			diirk.AddPoint(strat.Name(), float64(n), y)
		}
	}
	out = append(out, diirk)

	// EPOL R=8 on a fixed JuRoPA partition, sweeping the system size.
	epol := &Table{ID: "fig15-epol-juropa",
		Title:  fmt.Sprintf("EPOL R=8 (BRUSS2D) on %d JuRoPA cores: mapping strategies", params.EPOLCores),
		XLabel: "system size n", YLabel: "time per step [s]"}
	jur := arch.JuRoPA().SubsetCores(params.EPOLCores)
	jmodel := &cost.Model{Machine: jur}
	for _, n := range params.SizeSweep {
		y, err := runStep(jmodel, jur, params.EPOLCores, core.Consecutive{}, epolSpec(n, 8, evalSparse, true, params.EPOLCores), 2)
		if err != nil {
			return nil, err
		}
		epol.AddPoint("data-parallel", float64(n), y)
		for _, strat := range mappingsFor(jur) {
			y, err := runStep(jmodel, jur, params.EPOLCores, strat, epolSpec(n, 8, evalSparse, false, params.EPOLCores), 2)
			if err != nil {
				return nil, err
			}
			epol.AddPoint(strat.Name(), float64(n), y)
		}
	}
	out = append(out, epol)
	return out, nil
}

// Fig16Params scales the PAB/PABM mapping experiments.
type Fig16Params struct {
	Cores  []int
	N      int // sparse system (JuRoPA panels)
	DenseN int // dense system (CHiC PABM speedups)
}

// DefaultFig16 follows the paper: PAB and PABM with K = 8 stage vectors.
func DefaultFig16() Fig16Params {
	return Fig16Params{Cores: []int{64, 128, 256, 512, 1024}, N: 500000, DenseN: 20000}
}

// Fig16 reproduces Fig. 16: PAB (equal amounts of group-based and
// orthogonal communication — a mixed mapping wins) and PABM (more
// computation and communication within the M-tasks — consecutive wins and
// the dp version stops scaling).
func Fig16(params Fig16Params) ([]*Table, error) {
	const k, m = 8, 2
	const evalSparse = 14.0
	var out []*Table

	pabTP := func(p int) stepSpec { return pabSpec(params.N, k, 0, evalSparse, false, p) }
	pabDP := func(p int) stepSpec { return pabSpec(params.N, k, 0, evalSparse, true, p) }
	t, err := mappingSweep("fig16-pab-chic", "PAB K=8 (BRUSS2D) on CHiC: mapping strategies",
		arch.CHiC(), params.Cores, pabTP, pabDP)
	if err != nil {
		return nil, err
	}
	out = append(out, t)
	t, err = mappingSweep("fig16-pab-juropa", "PAB K=8 (BRUSS2D) on JuRoPA: mapping strategies",
		arch.JuRoPA(), params.Cores, pabTP, pabDP)
	if err != nil {
		return nil, err
	}
	out = append(out, t)

	// PABM on CHiC with the dense system, reported as speedups.
	evalDense := 4 * float64(params.DenseN)
	pabm := &Table{ID: "fig16-pabm-chic",
		Title:  "PABM K=8 (dense SCHROED) on CHiC: speedups",
		XLabel: "cores", YLabel: "speedup over sequential"}
	for _, p := range params.Cores {
		mach := arch.CHiC().SubsetCores(p)
		model := &cost.Model{Machine: mach}
		dpSpec := pabSpec(params.DenseN, k, m, evalDense, true, p)
		seq := model.CompTime(dpSpec.groupWork[0], 1)
		y, err := runStep(model, mach, p, core.Consecutive{}, dpSpec, 2)
		if err != nil {
			return nil, err
		}
		pabm.AddPoint("data-parallel", float64(p), seq/y)
		for _, strat := range mappingsFor(mach) {
			y, err := runStep(model, mach, p, strat, pabSpec(params.DenseN, k, m, evalDense, false, p), 2)
			if err != nil {
				return nil, err
			}
			pabm.AddPoint(strat.Name(), float64(p), seq/y)
		}
	}
	out = append(out, pabm)

	// PABM on JuRoPA with the sparse system, reported as runtimes.
	t, err = mappingSweep("fig16-pabm-juropa", "PABM K=8 (BRUSS2D) on JuRoPA: mapping strategies",
		arch.JuRoPA(), params.Cores,
		func(p int) stepSpec { return pabSpec(params.N, k, m, evalSparse, false, p) },
		func(p int) stepSpec { return pabSpec(params.N, k, m, evalSparse, true, p) })
	if err != nil {
		return nil, err
	}
	out = append(out, t)
	return out, nil
}
