package bench

import (
	"fmt"

	"mtask/internal/arch"
	"mtask/internal/cluster"
	"mtask/internal/core"
	"mtask/internal/cost"
	"mtask/internal/nas"
)

// Fig17Params scales the multi-zone experiments.
type Fig17Params struct {
	// Groups is the sweep over the number of disjoint core subsets.
	Groups []int
	// CoresCHiC / CoresAltix are the partition sizes.
	CoresCHiC, CoresAltix int
	// Steps simulated per configuration.
	Steps int
}

// DefaultFig17 follows the paper's panels: class C (256 zones) and class D
// (1024 zones) on CHiC and the SGI Altix, sweeping the number of groups.
func DefaultFig17() Fig17Params {
	return Fig17Params{
		Groups:     []int{4, 16, 32, 64, 128, 256, 512, 1024},
		CoresCHiC:  1024,
		CoresAltix: 512,
		Steps:      3,
	}
}

// fig17Panel runs one benchmark/class/machine panel: performance (steps
// per second, higher is better) against the number of groups for the
// consecutive and scattered mappings.
func fig17Panel(id string, b nas.Benchmark, class nas.Class, mach *arch.Machine, p int, params Fig17Params) (*Table, error) {
	t := &Table{
		ID: id,
		Title: fmt.Sprintf("%s class %s (%d zones) on %s, %d cores",
			b, class.Name, class.Zones(), mach.Name, p),
		XLabel: "number of groups",
		YLabel: "performance [steps/s]",
	}
	sub := mach.SubsetCores(p)
	model := &cost.Model{Machine: sub}
	zones := nas.MakeZones(b, class)
	for _, g := range params.Groups {
		if g > p || g > len(zones) {
			continue
		}
		groups, err := nas.AssignContiguous(zones, g)
		if err != nil {
			return nil, err
		}
		for _, strat := range []core.Strategy{core.Consecutive{}, core.Scattered{}} {
			prog, err := nas.BuildProgram(sub, b, zones, groups, strat, p, params.Steps)
			if err != nil {
				return nil, err
			}
			res, err := cluster.Simulate(model, prog)
			if err != nil {
				return nil, err
			}
			perf := float64(params.Steps) / res.Makespan
			t.AddPoint(strat.Name(), float64(g), perf)
		}
	}
	return t, nil
}

// Fig17 reproduces the four panels of Fig. 17: the NAS multi-zone
// benchmarks SP-MZ and BT-MZ under varying numbers of core groups.
// Expected shapes: a medium number of groups wins (low counts suffer from
// communication within large groups, the maximum count from cross-group
// border exchange and, for BT-MZ, load imbalance); the scattered mapping
// outperforms consecutive.
func Fig17(params Fig17Params) ([]*Table, error) {
	var out []*Table
	panels := []struct {
		id    string
		b     nas.Benchmark
		class nas.Class
		mach  *arch.Machine
		p     int
	}{
		{"fig17-spmz-chic", nas.SPMZ, nas.ClassD(), arch.CHiC(), params.CoresCHiC},
		{"fig17-spmz-altix", nas.SPMZ, nas.ClassC(), arch.SGIAltix(), params.CoresAltix},
		{"fig17-btmz-chic", nas.BTMZ, nas.ClassC(), arch.CHiC(), params.CoresCHiC},
		{"fig17-btmz-altix", nas.BTMZ, nas.ClassD(), arch.SGIAltix(), params.CoresAltix},
	}
	for _, pn := range panels {
		t, err := fig17Panel(pn.id, pn.b, pn.class, pn.mach, pn.p, params)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
