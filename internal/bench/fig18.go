package bench

import (
	"fmt"

	"mtask/internal/arch"
	"mtask/internal/core"
	"mtask/internal/cost"
)

// Fig18Params scales the hybrid MPI+OpenMP experiments.
type Fig18Params struct {
	Cores []int
	N     int
	Eval  float64 // flops per right-hand-side component (IRK workload)
}

// DefaultFig18 follows the paper: IRK and DIIRK with K = 4 stages on the
// CHiC cluster, four OpenMP threads per node in the hybrid scheme.
func DefaultFig18() Fig18Params {
	return Fig18Params{Cores: []int{64, 128, 256, 512}, N: 500000, Eval: 600}
}

// Fig18 reproduces Fig. 18: pure MPI vs hybrid MPI+OpenMP execution of the
// data-parallel and task-parallel IRK (left, speedups) and DIIRK (right,
// times) versions on CHiC. Expected shapes: the hybrid scheme helps the
// dp IRK version considerably (fewer ranks in global collectives) and the
// tp DIIRK version; consecutive mapping throughout.
func Fig18(params Fig18Params) ([]*Table, error) {
	const k, m = 4, 3
	evalSparse := params.Eval

	irk := &Table{ID: "fig18-irk", Title: "IRK K=4 on CHiC: pure MPI vs hybrid (speedups)",
		XLabel: "cores", YLabel: "speedup over sequential"}
	diirkN := 512
	evalDense := 4 * float64(diirkN)
	diirk := &Table{ID: "fig18-diirk", Title: "DIIRK K=4 on CHiC: pure MPI vs hybrid (time per step)",
		XLabel: "cores", YLabel: "time per step [s]"}

	for _, p := range params.Cores {
		mach := arch.CHiC().SubsetCores(p)
		pure := &cost.Model{Machine: mach}
		hybrid := &cost.Model{Machine: mach, Hybrid: true}

		seqIRK := pure.CompTime(irkSpec(params.N, k, m, evalSparse, true, p).groupWork[0], 1)
		for _, cfg := range []struct {
			label string
			model *cost.Model
			dp    bool
		}{
			{"dp-MPI", pure, true},
			{"dp-hybrid", hybrid, true},
			{"tp-MPI", pure, false},
			{"tp-hybrid", hybrid, false},
		} {
			y, err := runStep(cfg.model, mach, p, core.Consecutive{}, irkSpec(params.N, k, m, evalSparse, cfg.dp, p), 2)
			if err != nil {
				return nil, fmt.Errorf("fig18 irk %s @%d: %w", cfg.label, p, err)
			}
			irk.AddPoint(cfg.label, float64(p), seqIRK/y)

			yd, err := runStep(cfg.model, mach, p, core.Consecutive{}, diirkSpec(diirkN, k, 2, evalDense, cfg.dp, p), 2)
			if err != nil {
				return nil, fmt.Errorf("fig18 diirk %s @%d: %w", cfg.label, p, err)
			}
			diirk.AddPoint(cfg.label, float64(p), yd)
		}
	}
	return []*Table{irk, diirk}, nil
}

// Fig19Params scales the process/thread combination experiment.
type Fig19Params struct {
	Cores   int
	Threads []int // threads per MPI rank
	N       int
}

// DefaultFig19 follows the paper: PABM with K = 8 stages on 256 cores of
// the SGI Altix, whose distributed shared memory allows OpenMP threads to
// span nodes, so all combinations from 256 ranks x 1 thread to 1 rank x
// 256 threads are possible (the tp version needs at least K = 8 ranks).
func DefaultFig19() Fig19Params {
	return Fig19Params{Cores: 256, Threads: []int{1, 2, 4, 8, 16, 32}, N: 20000}
}

// Fig19 reproduces Fig. 19: runtimes of the PABM method for different
// combinations of MPI processes and OpenMP threads on the SGI Altix.
// Expected shapes: the dp version improves monotonically towards few
// ranks with many threads; the tp version is best overall with one rank
// per node (64 x 4 on the Altix) and degrades when ranks span nodes.
func Fig19(params Fig19Params) (*Table, error) {
	const k, m = 8, 2
	evalDense := 4 * float64(params.N)
	mach := arch.SGIAltix().SubsetCores(params.Cores)
	t := &Table{ID: "fig19", Title: "PABM K=8 on 256 SGI Altix cores: MPI processes x OpenMP threads",
		XLabel: "threads per rank", YLabel: "time per step [s]"}
	for _, threads := range params.Threads {
		var model *cost.Model
		if threads == 1 {
			model = &cost.Model{Machine: mach}
		} else {
			model = &cost.Model{Machine: mach, Hybrid: true, ThreadsPerRank: threads}
		}
		y, err := runStep(model, mach, params.Cores, core.Consecutive{}, pabSpec(params.N, k, m, evalDense, true, params.Cores), 2)
		if err != nil {
			return nil, err
		}
		t.AddPoint("data-parallel", float64(threads), y)
		if params.Cores/threads >= k {
			y, err = runStep(model, mach, params.Cores, core.Consecutive{}, pabSpec(params.N, k, m, evalDense, false, params.Cores), 2)
			if err != nil {
				return nil, err
			}
			t.AddPoint("task-parallel", float64(threads), y)
		}
	}
	// The dp panel of the paper extends to a single rank with 256
	// threads; sample that extreme too.
	full := &cost.Model{Machine: mach, Hybrid: true, ThreadsPerRank: params.Cores}
	y, err := runStep(full, mach, params.Cores, core.Consecutive{}, pabSpec(params.N, k, m, evalDense, true, params.Cores), 2)
	if err != nil {
		return nil, err
	}
	t.AddPoint("data-parallel", float64(params.Cores), y)
	return t, nil
}
