package bench

import (
	"fmt"
	"sort"
)

// Runner regenerates one paper artifact (possibly several panels).
type Runner func() ([]*Table, error)

// one wraps a single-table experiment.
func one(f func() (*Table, error)) Runner {
	return func() ([]*Table, error) {
		t, err := f()
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	}
}

// Experiments returns the registry of all experiment runners at paper
// scale, keyed by artifact id.
func Experiments() map[string]Runner {
	return map[string]Runner{
		"table1": one(Table1),
		"fig13": func() ([]*Table, error) {
			l, err := Fig13Left(DefaultFig13())
			if err != nil {
				return nil, err
			}
			r, err := Fig13Right(DefaultFig13())
			if err != nil {
				return nil, err
			}
			return []*Table{l, r}, nil
		},
		"fig14": func() ([]*Table, error) {
			l, err := Fig14Left(DefaultFig14())
			if err != nil {
				return nil, err
			}
			r, err := Fig14Right(DefaultFig14())
			if err != nil {
				return nil, err
			}
			return []*Table{l, r}, nil
		},
		"fig15": func() ([]*Table, error) { return Fig15(DefaultFig15()) },
		"fig16": func() ([]*Table, error) { return Fig16(DefaultFig16()) },
		"fig17": func() ([]*Table, error) { return Fig17(DefaultFig17()) },
		"fig18": func() ([]*Table, error) { return Fig18(DefaultFig18()) },
		"fig19": one(func() (*Table, error) { return Fig19(DefaultFig19()) }),
		"ablation": func() ([]*Table, error) {
			return Ablations(DefaultAblationParams())
		},
	}
}

// ExperimentIDs returns the registry keys in order.
func ExperimentIDs() []string {
	ids := make([]string, 0)
	for id := range Experiments() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by id.
func Run(id string) ([]*Table, error) {
	r, ok := Experiments()[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", id, ExperimentIDs())
	}
	return r()
}
