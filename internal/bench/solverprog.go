package bench

import (
	"fmt"

	"mtask/internal/arch"
	"mtask/internal/cluster"
	"mtask/internal/core"
	"mtask/internal/cost"
)

// stepSpec describes the per-time-step execution structure of a solver
// program version: the work and collectives of the concurrent core groups,
// the orthogonal exchanges between them, and the global phases. The
// structures follow Table 1 (see internal/ode/tables.go); the
// data-parallel versions use a single group spanning all cores.
type stepSpec struct {
	name string

	// groupWork[g] is the computational work of group g per step.
	groupWork []float64
	// groupTag / groupTagBytes: group-internal multi-broadcasts per
	// step (payload = total bytes gathered across the group).
	groupTag      int
	groupTagBytes int
	// groupBcast / groupBcastBytes: group-internal broadcasts.
	groupBcast      int
	groupBcastBytes int

	// orthoOps / orthoBytes: concurrent allgathers over the orthogonal
	// core sets (bytes contributed per core).
	orthoOps   int
	orthoBytes int

	// global phases: work executed by all cores plus global collectives.
	globalWork       float64
	globalTag        int
	globalTagPerCore int // bytes contributed per core
	globalBcast      int
	globalBcastBytes int
}

// buildStepProgram lays out one time step on P cores of the machine under
// the mapping strategy and returns the program together with the group
// core sets: [global init: work] -> [group phase] -> [orthogonal exchange]
// -> [global collectives]. Chaining `steps` copies makes redistribution
// effects between steps visible.
func buildStepProgram(mach *arch.Machine, p int, strat core.Strategy, sp stepSpec, steps int) (*cluster.Program, error) {
	if mach.TotalCores() < p {
		return nil, fmt.Errorf("bench: machine %q has %d cores, need %d", mach.Name, mach.TotalCores(), p)
	}
	g := len(sp.groupWork)
	if g < 1 || p < g {
		return nil, fmt.Errorf("bench: %d groups on %d cores", g, p)
	}
	seq := strat.Sequence(mach)[:p]
	sizes := core.ProportionalGroupSizes(sp.groupWork, p)
	groups := make([][]arch.CoreID, g)
	off := 0
	for gi, sz := range sizes {
		groups[gi] = seq[off : off+sz]
		off += sz
	}
	// Orthogonal sets: cores with equal position in different groups.
	var ortho [][]arch.CoreID
	maxLen := 0
	for _, grp := range groups {
		if len(grp) > maxLen {
			maxLen = len(grp)
		}
	}
	for pos := 0; pos < maxLen; pos++ {
		var set []arch.CoreID
		for _, grp := range groups {
			if pos < len(grp) {
				set = append(set, grp[pos])
			}
		}
		if len(set) > 1 {
			ortho = append(ortho, set)
		}
	}

	prog := &cluster.Program{Name: sp.name}
	prev := -1
	for s := 0; s < steps; s++ {
		var deps []int
		if prev >= 0 {
			deps = []int{prev}
		}
		// Global init work (e.g. the initial stage value / Jacobian).
		if sp.globalWork > 0 {
			idx := prog.Add(cluster.TaskSpec{
				Name:  fmt.Sprintf("%s-init-%d", sp.name, s),
				Work:  sp.globalWork,
				Cores: seq,
				Deps:  deps,
			})
			deps = []int{idx}
		}
		// Group phase: the computation and broadcasts run per group;
		// the group-internal multi-broadcasts of all groups execute
		// concurrently and contend for the node interfaces, so they
		// are modelled as one concurrent-allgather phase over all
		// group core sets.
		var groupIdx []int
		for gi, grp := range groups {
			idx := prog.Add(cluster.TaskSpec{
				Name:       fmt.Sprintf("%s-g%d-%d", sp.name, gi, s),
				Work:       sp.groupWork[gi],
				Cores:      grp,
				BcastBytes: sp.groupBcastBytes,
				BcastCount: sp.groupBcast,
				Deps:       deps,
			})
			groupIdx = append(groupIdx, idx)
		}
		last := groupIdx
		if sp.groupTag > 0 {
			minSize := len(groups[0])
			for _, grp := range groups {
				if len(grp) < minSize {
					minSize = len(grp)
				}
			}
			idx := prog.Add(cluster.TaskSpec{
				Name:         fmt.Sprintf("%s-gtags-%d", sp.name, s),
				CommSets:     groups,
				CommSetBytes: sp.groupTagBytes / minSize,
				CommSetOps:   sp.groupTag,
				Deps:         groupIdx,
			})
			last = []int{idx}
		}
		// Orthogonal exchange.
		if sp.orthoOps > 0 && len(ortho) > 0 {
			idx := prog.Add(cluster.TaskSpec{
				Name:         fmt.Sprintf("%s-ortho-%d", sp.name, s),
				CommSets:     ortho,
				CommSetBytes: sp.orthoBytes,
				CommSetOps:   sp.orthoOps,
				Deps:         last,
			})
			last = []int{idx}
		}
		// Global collectives.
		if sp.globalTag > 0 || sp.globalBcast > 0 {
			spec := cluster.TaskSpec{
				Name: fmt.Sprintf("%s-global-%d", sp.name, s),
				Deps: last,
			}
			if sp.globalTag > 0 {
				spec.CommSets = [][]arch.CoreID{seq}
				spec.CommSetBytes = sp.globalTagPerCore
				spec.CommSetOps = sp.globalTag
			}
			if sp.globalBcast > 0 {
				spec.Cores = seq
				spec.BcastCount = sp.globalBcast
				spec.BcastBytes = sp.globalBcastBytes
			}
			last = []int{prog.Add(spec)}
		}
		// Join for the next step.
		barrier := prog.Add(cluster.TaskSpec{
			Name: fmt.Sprintf("%s-join-%d", sp.name, s),
			Deps: append(append([]int{}, groupIdx...), last...),
		})
		prev = barrier
	}
	return prog, nil
}

// runStep simulates `steps` chained time steps of the spec and returns the
// time per step.
func runStep(model *cost.Model, mach *arch.Machine, p int, strat core.Strategy, sp stepSpec, steps int) (float64, error) {
	prog, err := buildStepProgram(mach, p, strat, sp, steps)
	if err != nil {
		return 0, err
	}
	res, err := cluster.Simulate(model, prog)
	if err != nil {
		return 0, err
	}
	return res.Makespan / float64(steps), nil
}

// --- solver step specs (counts from Table 1, work from Section 3.1) ---

// equalWork returns g equal work shares.
func equalWork(total float64, g int) []float64 {
	out := make([]float64, g)
	for i := range out {
		out[i] = total / float64(g)
	}
	return out
}

// epolSpec returns the EPOL step spec: dp uses a single group with
// R(R+1)/2 global multi-broadcasts; tp pairs the chains on R/2 groups
// ((R+1) group Tags each), re-distributes orthogonally and broadcasts the
// step decision.
func epolSpec(n, r int, evalFlops float64, dp bool, p int) stepSpec {
	vb := 8 * n
	micro := float64(n) * (2 + evalFlops)
	chains := float64(r*(r+1)/2) * micro
	combine := float64(n) * (3*float64(r*(r-1))/2 + float64(r))
	if dp {
		return stepSpec{
			name:          fmt.Sprintf("EPOL-dp(R=%d)", r),
			groupWork:     []float64{chains + combine},
			groupTag:      r * (r + 1) / 2,
			groupTagBytes: vb,
		}
	}
	g := r / 2
	if g < 1 {
		g = 1
	}
	q := maxInt(1, p/g)
	return stepSpec{
		name:             fmt.Sprintf("EPOL-tp(R=%d)", r),
		groupWork:        equalWork(chains, g),
		groupTag:         r + 1,
		groupTagBytes:    vb,
		orthoOps:         1,
		orthoBytes:       2 * vb / q, // the group's two chain blocks per core
		globalWork:       combine,
		globalBcast:      1,
		globalBcastBytes: 16,
	}
}

// irkSpec returns the IRK step spec (Table 1: dp (K*m+1) global Tag; tp 1
// global Tag, m group Tag, m ortho Tag).
func irkSpec(n, k, m int, evalFlops float64, dp bool, p int) stepSpec {
	vb := 8 * n
	stage := float64(n) * (2*float64(k) + evalFlops)
	init := float64(n) * evalFlops
	if dp {
		return stepSpec{
			name:          fmt.Sprintf("IRK-dp(K=%d,m=%d)", k, m),
			groupWork:     []float64{init + float64(k*m)*stage},
			groupTag:      k*m + 1,
			groupTagBytes: vb,
		}
	}
	q := maxInt(1, p/k)
	return stepSpec{
		name:             fmt.Sprintf("IRK-tp(K=%d,m=%d)", k, m),
		groupWork:        equalWork(float64(k*m)*stage, k),
		groupTag:         m,
		groupTagBytes:    vb,
		orthoOps:         m,
		orthoBytes:       vb / q, // a stage block per core position
		globalWork:       init,
		globalTag:        1,
		globalTagPerCore: vb / maxInt(1, p), // contributed blocks sum to the vector
	}
}

// diirkSpec returns the DIIRK step spec: per iteration and stage a
// distributed linear solve with n pivot-row broadcasts — far more
// communication within the M-tasks than IRK (Section 4.5).
func diirkSpec(n, k, iters int, evalFlops float64, dp bool, p int) stepSpec {
	vb := 8 * n
	stage := float64(n) * (2*float64(k) + evalFlops)
	solve := 2.0 / 3.0 * float64(n) * float64(n) * float64(n)
	jacobian := float64(n) * float64(n) * evalFlops
	pivotBytes := 8 * (n + 1)
	if dp {
		return stepSpec{
			name:            fmt.Sprintf("DIIRK-dp(K=%d)", k),
			groupWork:       []float64{jacobian + float64(k*iters)*(stage+solve)},
			groupTag:        1 + k*iters,
			groupTagBytes:   vb,
			groupBcast:      k * n * iters,
			groupBcastBytes: pivotBytes,
		}
	}
	q := maxInt(1, p/k)
	return stepSpec{
		name:             fmt.Sprintf("DIIRK-tp(K=%d)", k),
		groupWork:        equalWork(float64(k)*(jacobian+float64(iters)*(stage+solve)), k),
		groupTag:         iters,
		groupTagBytes:    vb,
		groupBcast:       n * iters,
		groupBcastBytes:  pivotBytes,
		orthoOps:         iters,
		orthoBytes:       vb / q,
		globalTag:        1,
		globalTagPerCore: vb / maxInt(1, p),
	}
}

// pabSpec returns the PAB/PABM step spec (m = 0 for PAB).
func pabSpec(n, k, m int, evalFlops float64, dp bool, p int) stepSpec {
	vb := 8 * n
	stage := float64(1+m) * float64(n) * (2*float64(k) + evalFlops)
	name := "PAB"
	if m > 0 {
		name = "PABM"
	}
	if dp {
		return stepSpec{
			name:          fmt.Sprintf("%s-dp(K=%d,m=%d)", name, k, m),
			groupWork:     []float64{float64(k) * stage},
			groupTag:      k * (1 + m),
			groupTagBytes: vb,
		}
	}
	q := maxInt(1, p/k)
	return stepSpec{
		name:          fmt.Sprintf("%s-tp(K=%d,m=%d)", name, k, m),
		groupWork:     equalWork(float64(k)*stage, k),
		groupTag:      1 + m,
		groupTagBytes: vb,
		orthoOps:      1,
		orthoBytes:    vb / q,
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
