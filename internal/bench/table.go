// Package bench regenerates every table and figure of the paper's
// evaluation (Section 4): Table 1 (collective operation counts) and
// Figures 13-19. Each experiment returns a Table that prints the same
// rows/series the paper reports; the absolute numbers come from the
// deterministic cluster simulator, so the comparison with the paper is
// about shape (who wins, by roughly what factor, where crossovers fall),
// which EXPERIMENTS.md records.
package bench

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Series is one curve of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Table is the result of one experiment: either a set of series (figures)
// or plain rows (Table 1).
type Table struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series

	Header []string
	Rows   [][]string

	Notes []string
}

// AddPoint appends a point to the named series, creating it if needed.
func (t *Table) AddPoint(label string, x, y float64) {
	for i := range t.Series {
		if t.Series[i].Label == label {
			t.Series[i].X = append(t.Series[i].X, x)
			t.Series[i].Y = append(t.Series[i].Y, y)
			return
		}
	}
	t.Series = append(t.Series, Series{Label: label, X: []float64{x}, Y: []float64{y}})
}

// Get returns the y value of the series at x, or NaN.
func (t *Table) Get(label string, x float64) (float64, bool) {
	for _, s := range t.Series {
		if s.Label != label {
			continue
		}
		for i, xv := range s.X {
			if xv == x {
				return s.Y[i], true
			}
		}
	}
	return 0, false
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if len(t.Rows) > 0 {
		widths := make([]int, len(t.Header))
		for i, h := range t.Header {
			widths[i] = len(h)
		}
		for _, row := range t.Rows {
			for i, c := range row {
				if i < len(widths) && len(c) > widths[i] {
					widths[i] = len(c)
				}
			}
		}
		writeRow := func(cells []string) {
			for i, c := range cells {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			}
			fmt.Fprintln(&b)
		}
		writeRow(t.Header)
		for _, row := range t.Rows {
			writeRow(row)
		}
	}
	if len(t.Series) > 0 {
		// Collect the union of x values.
		xset := map[float64]bool{}
		for _, s := range t.Series {
			for _, x := range s.X {
				xset[x] = true
			}
		}
		xs := make([]float64, 0, len(xset))
		for x := range xset {
			xs = append(xs, x)
		}
		sort.Float64s(xs)
		fmt.Fprintf(&b, "%-14s", t.XLabel)
		for _, s := range t.Series {
			fmt.Fprintf(&b, "  %-16s", s.Label)
		}
		fmt.Fprintln(&b)
		for _, x := range xs {
			fmt.Fprintf(&b, "%-14g", x)
			for _, s := range t.Series {
				if y, ok := t.Get(s.Label, x); ok {
					fmt.Fprintf(&b, "  %-16.6g", y)
				} else {
					fmt.Fprintf(&b, "  %-16s", "-")
				}
			}
			fmt.Fprintln(&b)
		}
		if t.YLabel != "" {
			fmt.Fprintf(&b, "(y: %s)\n", t.YLabel)
		}
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// JSON renders the table as a JSON object for downstream plotting tools.
func (t *Table) JSON() ([]byte, error) {
	type jsonSeries struct {
		Label string    `json:"label"`
		X     []float64 `json:"x"`
		Y     []float64 `json:"y"`
	}
	out := struct {
		ID     string       `json:"id"`
		Title  string       `json:"title"`
		XLabel string       `json:"xlabel,omitempty"`
		YLabel string       `json:"ylabel,omitempty"`
		Series []jsonSeries `json:"series,omitempty"`
		Header []string     `json:"header,omitempty"`
		Rows   [][]string   `json:"rows,omitempty"`
		Notes  []string     `json:"notes,omitempty"`
	}{ID: t.ID, Title: t.Title, XLabel: t.XLabel, YLabel: t.YLabel,
		Header: t.Header, Rows: t.Rows, Notes: t.Notes}
	for _, s := range t.Series {
		out.Series = append(out.Series, jsonSeries(s))
	}
	return json.MarshalIndent(out, "", "  ")
}

// Best returns the series label with the lowest y value at x.
func (t *Table) Best(x float64) string {
	best := ""
	bestY := 0.0
	for _, s := range t.Series {
		if y, ok := t.Get(s.Label, x); ok {
			if best == "" || y < bestY {
				best, bestY = s.Label, y
			}
		}
	}
	return best
}
