package bench

import (
	"fmt"

	"mtask/internal/ode"
	"mtask/internal/runtime"
)

// Table1 measures the collective-operation counts of one time step of
// every ODE solver program version with the instrumented goroutine runtime
// and reports them next to the paper's Table 1 formulas. The measurement
// runs s1 and s2 = 2*s1 steps and differences the counters, so one-off
// bootstrap and final-assembly operations cancel out.
func Table1() (*Table, error) {
	t := &Table{
		ID:     "table1",
		Title:  "Collective communication operations per ODE solver time step",
		Header: []string{"benchmark", "kind", "op", "measured/step", "paper formula", "ours"},
	}
	const p = 8
	sys := ode.NewLinearDecay(16)
	const steps1, steps2 = 2, 4

	type variant struct {
		name   string
		groups int
		run    func(w *runtime.World, groups, steps int) error
		perG   int // group count for per-group normalisation (0: report totals)
		perO   int // orthogonal set count
	}
	const r, k, m = 4, 4, 3
	kd := 2 // DIIRK stages (kept small: dense solves)
	runEPOL := func(w *runtime.World, groups, steps int) error {
		_, err := ode.ParallelEPOL(w, sys, r, ode.RunOpts{Groups: groups, Steps: steps, H: 0.01, Control: true})
		return err
	}
	runIRK := func(w *runtime.World, groups, steps int) error {
		_, err := ode.ParallelIRK(w, sys, k, m, ode.RunOpts{Groups: groups, Steps: steps, H: 0.01})
		return err
	}
	runDIIRK := func(w *runtime.World, groups, steps int) error {
		_, err := ode.ParallelDIIRK(w, sys, kd, ode.RunOpts{Groups: groups, Steps: steps, H: 0.01})
		return err
	}
	runPAB := func(w *runtime.World, groups, steps int) error {
		_, err := ode.ParallelPAB(w, sys, k, 0, ode.RunOpts{Groups: groups, Steps: steps, H: 0.01})
		return err
	}
	runPABM := func(w *runtime.World, groups, steps int) error {
		_, err := ode.ParallelPAB(w, sys, k, m, ode.RunOpts{Groups: groups, Steps: steps, H: 0.01})
		return err
	}

	variants := []variant{
		{"EPOL(dp)", 1, runEPOL, 0, 0},
		{"EPOL(tp)", r / 2, runEPOL, r / 2, p / (r / 2)},
		{"IRK(dp)", 1, runIRK, 0, 0},
		{"IRK(tp)", k, runIRK, k, p / k},
		{"DIIRK(dp)", 1, runDIIRK, 0, 0},
		{"DIIRK(tp)", kd, runDIIRK, kd, p / kd},
		{"PAB(dp)", 1, runPAB, 0, 0},
		{"PAB(tp)", k, runPAB, k, p / k},
		{"PABM(dp)", 1, runPABM, 0, 0},
		{"PABM(tp)", k, runPABM, k, p / k},
	}
	paperRows := ode.Table1()

	for vi, v := range variants {
		counts := func(steps int) map[string]int {
			w, err := runtime.NewWorld(p)
			if err != nil {
				return nil
			}
			if err := v.run(w, v.groups, steps); err != nil {
				return nil
			}
			out := map[string]int{}
			for _, kind := range []runtime.CommKind{runtime.Global, runtime.Group, runtime.Orthogonal} {
				for _, op := range []runtime.Op{runtime.OpAllgather, runtime.OpBcast, runtime.OpRedist} {
					if c := w.Stats.Count(kind, op); c > 0 {
						out[fmt.Sprintf("%s/%s", kind, op)] = c
					}
				}
			}
			return out
		}
		c1 := counts(steps1)
		c2 := counts(steps2)
		if c1 == nil || c2 == nil {
			return nil, fmt.Errorf("bench: table1 run failed for %s", v.name)
		}
		keys := map[string]bool{}
		for k := range c1 {
			keys[k] = true
		}
		for k := range c2 {
			keys[k] = true
		}
		first := true
		for _, key := range sortedStrings(keys) {
			perStep := float64(c2[key]-c1[key]) / float64(steps2-steps1)
			// Normalise group/ortho totals to per-group/per-set, as
			// Table 1 reports them.
			norm := perStep
			label := key
			if v.perG > 0 {
				switch {
				case hasPrefix(key, "group/"):
					norm = perStep / float64(v.perG)
					label += " (per group)"
				case hasPrefix(key, "orthogonal/"):
					norm = perStep / float64(v.perO)
					label += " (per set)"
				}
			}
			paper, ours := "", ""
			if first {
				paper = paperRows[vi].Paper
				ours = paperRows[vi].Ours
			}
			t.Rows = append(t.Rows, []string{v.name, label, "", fmt.Sprintf("%.2f", norm), paper, ours})
			first = false
		}
	}
	t.Notes = append(t.Notes,
		"measured with the instrumented goroutine runtime on 8 cores, n=16, R=4, K=4, m=3 (DIIRK: K=2, dynamic I)",
		"re-distributions (OpRedist) are the compiler-inserted exchanges the paper accounts separately from Table 1",
	)
	return t, nil
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

func sortedStrings(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
