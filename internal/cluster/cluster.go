// Package cluster simulates the execution of mapped M-task programs on a
// hierarchical multi-core cluster. It replaces the paper's physical
// testbeds (CHiC, SGI Altix, JuRoPA with MPI) by a deterministic
// discrete-event simulation: tasks occupy their physical cores for a
// duration given by the cost model, input-output relations impose
// precedence and re-distribution delays, and concurrent collective
// operations contend for the per-node network interfaces.
//
// The simulation input is a Program: a DAG of mapped tasks. Builders exist
// for the layered schedules of internal/core (FromMapping) and arbitrary
// Gantt-style schedules of the baseline schedulers.
package cluster

import (
	"context"
	"fmt"
	"math"

	"mtask/internal/arch"
	"mtask/internal/core"
	"mtask/internal/cost"
)

// TaskSpec is one mapped task of a simulated program.
type TaskSpec struct {
	Name string

	// Work is the sequential computation in floating-point operations,
	// divided among the Cores (linear speedup, as in the cost model).
	Work float64

	// CommBytes/CommCount describe the task-internal collectives: the
	// task executes CommCount ring multi-broadcasts in which each core
	// contributes CommBytes/len(Cores) bytes.
	CommBytes int
	CommCount int

	// BcastBytes/BcastCount describe task-internal broadcasts.
	BcastBytes int
	BcastCount int

	// MaxWidth caps the usable parallelism (0 = unlimited).
	MaxWidth int

	// Cores are the physical cores executing the task, in rank order.
	Cores []arch.CoreID

	// CommSets, CommSetBytes and CommSetOps describe an explicit
	// communication phase executed concurrently by several core sets
	// (used for the orthogonal communication between cooperating
	// M-tasks): CommSetOps ring allgathers run simultaneously over all
	// CommSets, each core contributing CommSetBytes bytes. A task with
	// CommSets needs no Cores; the union of the sets is occupied.
	CommSets     [][]arch.CoreID
	CommSetBytes int
	CommSetOps   int

	// Concurrent lists the core sets of all groups executing
	// concurrently with this task (including its own, at index
	// ConcurrentIdx). When set, the task-internal collectives are
	// priced under the mutual contention of all groups — the mapping
	// effect of Section 3.4.
	Concurrent    [][]arch.CoreID
	ConcurrentIdx int

	// Deps lists the indices of tasks that must finish first.
	Deps []int

	// Redist maps a dependency index to the number of bytes that must
	// be re-distributed from that task's cores to this task's cores
	// before this task can start.
	Redist map[int]int
}

// Program is a DAG of mapped tasks ready for simulation.
type Program struct {
	Name  string
	Tasks []TaskSpec
}

// Add appends a task and returns its index.
func (p *Program) Add(t TaskSpec) int {
	p.Tasks = append(p.Tasks, t)
	return len(p.Tasks) - 1
}

// Result holds the outcome of a simulation.
type Result struct {
	// Makespan is the simulated wall-clock time of the program.
	Makespan float64

	// Start and Finish give per-task times.
	Start, Finish []float64

	// CompTime, CommTime and RedistTime aggregate the per-task
	// computation time, communication time (collectives) and the
	// re-distribution delays over all tasks (not wall-clock: concurrent
	// contributions accumulate).
	CompTime, CommTime, RedistTime float64
}

// duration computes a task's execution time under the cost model and
// splits it into computation and communication parts.
func duration(m *cost.Model, t *TaskSpec) (comp, comm float64) {
	q := len(t.Cores)
	cores := t.Cores
	if t.MaxWidth > 0 && q > t.MaxWidth {
		cores = cores[:t.MaxWidth]
		q = t.MaxWidth
	}
	if t.Work > 0 {
		comp = m.CompTime(t.Work, q)
	}
	if t.CommCount > 0 && q > 1 {
		per := t.CommBytes / q
		if per < 1 && t.CommBytes > 0 {
			per = 1
		}
		if len(t.Concurrent) > 0 {
			comm += float64(t.CommCount) * m.AllgatherIn(t.ConcurrentIdx, t.Concurrent, per)
		} else {
			comm += float64(t.CommCount) * m.Allgather([][]arch.CoreID{cores}, per)
		}
	}
	if t.BcastCount > 0 && q > 1 {
		comm += float64(t.BcastCount) * m.Broadcast(cores, t.BcastBytes)
	}
	if t.CommSetOps > 0 && len(t.CommSets) > 0 {
		comm += float64(t.CommSetOps) * m.Allgather(t.CommSets, t.CommSetBytes)
	}
	return comp, comm
}

// Simulate executes the program under the given cost model and returns the
// timing result. The program must be acyclic; tasks sharing cores must be
// ordered by explicit dependencies (the builders in this package take care
// of both).
func Simulate(m *cost.Model, p *Program) (*Result, error) {
	return SimulateCtx(context.Background(), m, p)
}

// SimulateCtx is Simulate with cooperative cancellation: the event loop
// checks the context periodically and returns an error wrapping
// core.ErrCanceled when it fires.
func SimulateCtx(ctx context.Context, m *cost.Model, p *Program) (*Result, error) {
	n := len(p.Tasks)
	res := &Result{Start: make([]float64, n), Finish: make([]float64, n)}

	// Kahn topological order over Deps.
	indeg := make([]int, n)
	succ := make([][]int, n)
	for i, t := range p.Tasks {
		for _, d := range t.Deps {
			if d < 0 || d >= n {
				return nil, fmt.Errorf("cluster: task %d (%s) has invalid dep %d", i, t.Name, d)
			}
			if d == i {
				return nil, fmt.Errorf("cluster: task %d (%s) depends on itself", i, t.Name)
			}
			indeg[i]++
			succ[d] = append(succ[d], i)
		}
		if len(t.Cores) == 0 && len(t.CommSets) == 0 && t.Work > 0 {
			return nil, fmt.Errorf("cluster: task %d (%s) has work but no cores", i, t.Name)
		}
	}
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	done := 0
	for len(queue) > 0 {
		if done%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("simulating %q: %w (%w)", p.Name, core.ErrCanceled, err)
			}
		}
		i := queue[0]
		queue = queue[1:]
		done++
		t := &p.Tasks[i]
		start := 0.0
		for _, d := range t.Deps {
			ready := res.Finish[d]
			if bytes, ok := t.Redist[d]; ok && bytes > 0 {
				rd := m.Redistribute(p.Tasks[d].Cores, effectiveCores(t), bytes)
				ready += rd
				res.RedistTime += rd
			}
			if ready > start {
				start = ready
			}
		}
		comp, comm := duration(m, t)
		res.Start[i] = start
		res.Finish[i] = start + comp + comm
		res.CompTime += comp
		res.CommTime += comm
		if res.Finish[i] > res.Makespan {
			res.Makespan = res.Finish[i]
		}
		for _, s := range succ[i] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if done != n {
		return nil, fmt.Errorf("cluster: program %q has a dependency cycle", p.Name)
	}
	return res, nil
}

// effectiveCores returns the cores a task occupies: its Cores, or the
// union of its CommSets for pure communication phases.
func effectiveCores(t *TaskSpec) []arch.CoreID {
	if len(t.Cores) > 0 {
		return t.Cores
	}
	var u []arch.CoreID
	for _, s := range t.CommSets {
		u = append(u, s...)
	}
	return u
}

// FromMapping converts a layered schedule with its physical mapping into a
// simulatable program. Tasks of one group execute one after another
// (sequential dependencies); layers are separated by a zero-cost barrier
// (the group structure is reorganised between layers); input-output
// relations of the M-task graph add re-distribution delays when producer
// and consumer run on different core sets.
//
// The returned index map gives the program task index of every scheduled
// graph task (or -1 for start/stop markers). The schedule and mapping are
// validated first; a malformed input (overlapping groups, sizes not
// summing to P, cores outside the machine) is reported instead of being
// silently simulated.
func FromMapping(m *cost.Model, mp *core.Mapping) (*Program, []int, error) {
	sched := mp.Schedule
	if err := sched.Validate(); err != nil {
		return nil, nil, fmt.Errorf("cluster: invalid schedule: %w", err)
	}
	if err := mp.Validate(); err != nil {
		return nil, nil, fmt.Errorf("cluster: invalid mapping: %w", err)
	}
	g := sched.Graph
	prog := &Program{Name: g.Name}
	index := make([]int, g.Len())
	for i := range index {
		index[i] = -1
	}

	prevBarrier := -1
	for li, ls := range sched.Layers {
		var layerTasks []int
		for gi, tasks := range ls.Groups {
			cores := mp.Cores[li][gi]
			prev := -1
			for _, id := range tasks {
				t := g.Task(id)
				spec := TaskSpec{
					Name:       t.Name,
					Work:       t.Work,
					CommBytes:  t.CommBytes,
					CommCount:  t.CommCount,
					BcastBytes: t.BcastBytes,
					BcastCount: t.BcastCount,
					MaxWidth:   t.MaxWidth,
					Cores:      cores,
					Redist:     make(map[int]int),
				}
				if len(mp.Cores[li]) > 1 {
					spec.Concurrent = mp.Cores[li]
					spec.ConcurrentIdx = gi
				}
				if prev >= 0 {
					spec.Deps = append(spec.Deps, prev)
				}
				if prevBarrier >= 0 {
					spec.Deps = append(spec.Deps, prevBarrier)
				}
				// Data edges from producers (always in earlier
				// layers or earlier in this group's order).
				for _, p := range g.Pred(id) {
					pi := index[p]
					if pi < 0 {
						continue // start marker
					}
					bytes := g.EdgeBytes(p, id)
					spec.Deps = append(spec.Deps, pi)
					if bytes > 0 {
						spec.Redist[pi] += bytes
					}
				}
				idx := prog.Add(spec)
				index[id] = idx
				prev = idx
				layerTasks = append(layerTasks, idx)
			}
		}
		// Layer barrier: a zero-cost task depending on the whole
		// layer.
		barrier := prog.Add(TaskSpec{
			Name: fmt.Sprintf("barrier-%d", li),
			Deps: layerTasks,
		})
		prevBarrier = barrier
	}
	return prog, index, nil
}

// SpeedupOver returns the speedup of this result over a sequential time.
func (r *Result) SpeedupOver(seq float64) float64 {
	if r.Makespan <= 0 {
		return math.Inf(1)
	}
	return seq / r.Makespan
}
