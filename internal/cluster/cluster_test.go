package cluster

import (
	"math"
	"strings"
	"testing"

	"mtask/internal/arch"
	"mtask/internal/core"
	"mtask/internal/cost"
	"mtask/internal/graph"
)

func chic(nodes int) *cost.Model {
	return &cost.Model{Machine: arch.CHiC().Subset(nodes)}
}

func cores(m *cost.Model, from, to int) []arch.CoreID {
	return m.Machine.AllCores()[from:to]
}

func TestSimulateSequentialChain(t *testing.T) {
	m := chic(1)
	p := &Program{Name: "chain"}
	a := p.Add(TaskSpec{Name: "a", Work: 5.2e9, Cores: cores(m, 0, 4)})
	b := p.Add(TaskSpec{Name: "b", Work: 5.2e9, Cores: cores(m, 0, 4), Deps: []int{a}})
	res, err := Simulate(m, p)
	if err != nil {
		t.Fatal(err)
	}
	// each task: 1s of work / 4 cores = 0.25s
	if math.Abs(res.Finish[a]-0.25) > 1e-9 {
		t.Fatalf("finish a = %g, want 0.25", res.Finish[a])
	}
	if math.Abs(res.Start[b]-0.25) > 1e-9 || math.Abs(res.Makespan-0.5) > 1e-9 {
		t.Fatalf("start b = %g makespan = %g, want 0.25 / 0.5", res.Start[b], res.Makespan)
	}
	if res.CommTime != 0 || res.RedistTime != 0 {
		t.Fatalf("unexpected comm %g redist %g", res.CommTime, res.RedistTime)
	}
}

func TestSimulateConcurrentTasks(t *testing.T) {
	m := chic(2)
	p := &Program{Name: "par"}
	p.Add(TaskSpec{Name: "a", Work: 5.2e9, Cores: cores(m, 0, 4)})
	p.Add(TaskSpec{Name: "b", Work: 5.2e9, Cores: cores(m, 4, 8)})
	res, err := Simulate(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-0.25) > 1e-9 {
		t.Fatalf("concurrent makespan = %g, want 0.25", res.Makespan)
	}
}

func TestSimulateRedistributionDelay(t *testing.T) {
	m := chic(2)
	p := &Program{Name: "redist"}
	a := p.Add(TaskSpec{Name: "a", Work: 5.2e9, Cores: cores(m, 0, 4)})
	p.Add(TaskSpec{Name: "b", Work: 5.2e9, Cores: cores(m, 4, 8),
		Deps: []int{a}, Redist: map[int]int{a: 1 << 20}})
	res, err := Simulate(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.RedistTime <= 0 {
		t.Fatal("no redistribution time recorded")
	}
	if math.Abs(res.Makespan-(0.5+res.RedistTime)) > 1e-9 {
		t.Fatalf("makespan %g != 0.5 + redist %g", res.Makespan, res.RedistTime)
	}
	// Same cores: no redistribution.
	p2 := &Program{Name: "same"}
	a2 := p2.Add(TaskSpec{Name: "a", Work: 5.2e9, Cores: cores(m, 0, 4)})
	p2.Add(TaskSpec{Name: "b", Work: 5.2e9, Cores: cores(m, 0, 4),
		Deps: []int{a2}, Redist: map[int]int{a2: 1 << 20}})
	res2, err := Simulate(m, p2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.RedistTime != 0 {
		t.Fatalf("same-group redistribution charged: %g", res2.RedistTime)
	}
}

func TestSimulateErrors(t *testing.T) {
	m := chic(1)
	p := &Program{Name: "bad"}
	p.Add(TaskSpec{Name: "a", Work: 1, Cores: cores(m, 0, 1), Deps: []int{5}})
	if _, err := Simulate(m, p); err == nil {
		t.Fatal("invalid dep accepted")
	}
	p2 := &Program{Name: "cycle"}
	p2.Add(TaskSpec{Name: "a", Work: 1, Cores: cores(m, 0, 1), Deps: []int{1}})
	p2.Add(TaskSpec{Name: "b", Work: 1, Cores: cores(m, 0, 1), Deps: []int{0}})
	if _, err := Simulate(m, p2); err == nil {
		t.Fatal("cycle accepted")
	}
	p3 := &Program{Name: "nocores"}
	p3.Add(TaskSpec{Name: "a", Work: 1})
	if _, err := Simulate(m, p3); err == nil {
		t.Fatal("work without cores accepted")
	}
	p4 := &Program{Name: "self"}
	p4.Add(TaskSpec{Name: "a", Work: 1, Cores: cores(m, 0, 1), Deps: []int{0}})
	if _, err := Simulate(m, p4); err == nil {
		t.Fatal("self dependency accepted")
	}
}

func TestSimulateCommPhase(t *testing.T) {
	m := chic(4)
	all := m.Machine.AllCores()
	// Orthogonal exchange: 4 sets of 4 cores each, one per node
	// (scattered-style) vs 4 sets spread across nodes.
	var intra, inter [][]arch.CoreID
	for n := 0; n < 4; n++ {
		var set []arch.CoreID
		for k := 0; k < 4; k++ {
			set = append(set, all[n*4+k])
		}
		intra = append(intra, set)
	}
	for j := 0; j < 4; j++ {
		var set []arch.CoreID
		for n := 0; n < 4; n++ {
			set = append(set, all[n*4+j])
		}
		inter = append(inter, set)
	}
	run := func(sets [][]arch.CoreID) float64 {
		p := &Program{Name: "comm"}
		p.Add(TaskSpec{Name: "x", CommSets: sets, CommSetBytes: 1 << 16, CommSetOps: 3})
		res, err := Simulate(m, p)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	ti, te := run(intra), run(inter)
	if !(ti < te) {
		t.Fatalf("node-internal orthogonal comm %g should beat inter-node %g", ti, te)
	}
}

// buildEPOL builds an EPOL-like step graph (R chains + combine).
func buildEPOL(r int, work float64, bytes int) *graph.Graph {
	g := graph.New("epol")
	combine := g.AddTask(&graph.Task{Name: "combine", Kind: graph.KindBasic,
		Work: work, CommBytes: bytes, CommCount: 1})
	for i := 1; i <= r; i++ {
		prev := graph.None
		for j := 1; j <= i; j++ {
			s := g.AddTask(&graph.Task{Name: "step", Kind: graph.KindBasic,
				Work: work, CommBytes: bytes, CommCount: 1, OutBytes: bytes})
			if prev != graph.None {
				g.MustEdge(prev, s, bytes)
			}
			prev = s
		}
		g.MustEdge(prev, combine, bytes)
	}
	g.AddStartStop()
	return g
}

func TestFromMappingEndToEnd(t *testing.T) {
	m := chic(16)
	g := buildEPOL(4, 1e9, 1<<20)
	s := &core.Scheduler{Model: m}
	sched, err := s.Schedule(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := core.Map(sched, m.Machine, core.Consecutive{})
	if err != nil {
		t.Fatal(err)
	}
	prog, index, err := FromMapping(m, mp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(m, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
	// All non-marker tasks have a program entry.
	for _, task := range sched.Graph.Tasks() {
		if task.Kind == graph.KindBasic && index[task.ID] < 0 {
			t.Fatalf("task %s unmapped in program", task.Name)
		}
	}
	// The combine task must start after all chains finish.
	var combineIdx int
	for _, task := range sched.Graph.Tasks() {
		if task.Name == "combine" || (len(task.Members) == 1 && sched.Source.Task(task.Members[0]).Name == "combine") {
			combineIdx = index[task.ID]
		}
	}
	for i, spec := range prog.Tasks {
		if i != combineIdx && spec.Work > 0 && res.Finish[i] > res.Start[combineIdx]+1e-12 {
			t.Fatalf("task %d (%s) finishes at %g after combine starts at %g",
				i, spec.Name, res.Finish[i], res.Start[combineIdx])
		}
	}
}

func TestMappingChangesSimulatedTime(t *testing.T) {
	// A communication-bound task-parallel layer must run faster under
	// the mapping that keeps groups node-internal.
	m := chic(16) // 64 cores
	g := graph.New("layer")
	for i := 0; i < 16; i++ {
		g.AddTask(&graph.Task{Name: "t", Kind: graph.KindBasic,
			Work: 1e8, CommBytes: 1 << 22, CommCount: 16})
	}
	s := &core.Scheduler{Model: m, ForceGroups: 16}
	sched, err := s.Schedule(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	run := func(strat core.Strategy) float64 {
		mp, err := core.Map(sched, m.Machine, strat)
		if err != nil {
			t.Fatal(err)
		}
		prog, _, err := FromMapping(m, mp)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(m, prog)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	cons := run(core.Consecutive{})
	scat := run(core.Scattered{})
	// 16 groups of 4 cores: consecutive keeps each group on one node.
	if !(cons < scat) {
		t.Fatalf("consecutive %g should beat scattered %g for group-internal comm", cons, scat)
	}
}

func TestLayerBarrierOrdersLayers(t *testing.T) {
	m := chic(4)
	g := graph.New("two-layer")
	a := g.AddTask(&graph.Task{Name: "a", Kind: graph.KindBasic, Work: 1e9})
	b := g.AddTask(&graph.Task{Name: "b", Kind: graph.KindBasic, Work: 2e9})
	c := g.AddTask(&graph.Task{Name: "c", Kind: graph.KindBasic, Work: 1e9})
	g.MustEdge(a, c, 0)
	_ = b
	// Disable chain contraction so a and c stay separate tasks in
	// different layers.
	s := &core.Scheduler{Model: m, DisableChainContraction: true}
	sched, err := s.Schedule(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	mp, _ := core.Map(sched, m.Machine, core.Consecutive{})
	prog, index, err := FromMapping(m, mp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(m, prog)
	if err != nil {
		t.Fatal(err)
	}
	// c is in layer 2 and must start only after BOTH a and b finished
	// (layer barrier), even though it only depends on a.
	ci := index[sched.NodeOf[c]]
	for _, id := range []graph.TaskID{a, b} {
		i := index[sched.NodeOf[id]]
		if res.Finish[i] > res.Start[ci]+1e-12 {
			t.Fatalf("layer barrier violated: task %d finishes %g after c starts %g",
				i, res.Finish[i], res.Start[ci])
		}
	}
}

func TestSpeedupOver(t *testing.T) {
	r := &Result{Makespan: 2}
	if got := r.SpeedupOver(8); got != 4 {
		t.Fatalf("speedup = %g, want 4", got)
	}
	zero := &Result{}
	if !math.IsInf(zero.SpeedupOver(1), 1) {
		t.Fatal("zero makespan speedup should be +Inf")
	}
}

func TestRenderGantt(t *testing.T) {
	m := chic(2)
	p := &Program{Name: "gantt"}
	a := p.Add(TaskSpec{Name: "alpha", Work: 5.2e9, Cores: cores(m, 0, 4)})
	p.Add(TaskSpec{Name: "beta", Work: 5.2e9, Cores: cores(m, 4, 8)})
	p.Add(TaskSpec{Name: "gamma", Work: 5.2e9, Cores: cores(m, 0, 8), Deps: []int{a}})
	p.Add(TaskSpec{Name: "barrier"}) // zero duration, omitted
	res, err := Simulate(m, p)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderGantt(p, res, 40)
	for _, want := range []string{"alpha", "beta", "gamma", "makespan", "#"} {
		if !strings.Contains(out, want) {
			t.Fatalf("gantt missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "barrier") {
		t.Fatalf("zero-duration task rendered:\n%s", out)
	}
	// gamma starts after alpha: its bar must not begin at column 0.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "gamma") {
			bar := line[strings.Index(line, "|")+1:]
			if strings.HasPrefix(bar, "#") {
				t.Fatalf("gamma bar starts at 0:\n%s", out)
			}
		}
	}
}
