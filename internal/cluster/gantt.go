package cluster

import (
	"fmt"
	"sort"
	"strings"
)

// RenderGantt renders a simulated program as a text Gantt chart: one line
// per task (in start order, zero-duration structural tasks omitted) with a
// bar spanning its simulated execution window scaled to the given width.
func RenderGantt(p *Program, r *Result, width int) string {
	if width < 10 {
		width = 10
	}
	type row struct {
		name          string
		start, finish float64
		cores         int
	}
	var rows []row
	for i, t := range p.Tasks {
		if r.Finish[i] <= r.Start[i] {
			continue // structural barrier/no-op
		}
		rows = append(rows, row{
			name:   t.Name,
			start:  r.Start[i],
			finish: r.Finish[i],
			cores:  len(effectiveCores(&p.Tasks[i])),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].start != rows[j].start {
			return rows[i].start < rows[j].start
		}
		return rows[i].name < rows[j].name
	})
	nameW := 8
	for _, rw := range rows {
		if len(rw.name) > nameW {
			nameW = len(rw.name)
		}
	}
	if nameW > 32 {
		nameW = 32
	}
	var b strings.Builder
	fmt.Fprintf(&b, "gantt of %q: makespan %.4g s, %d timed tasks\n", p.Name, r.Makespan, len(rows))
	scale := float64(width) / r.Makespan
	for _, rw := range rows {
		name := rw.name
		if len(name) > nameW {
			name = name[:nameW]
		}
		lo := int(rw.start * scale)
		hi := int(rw.finish * scale)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		bar := strings.Repeat(" ", lo) + strings.Repeat("#", hi-lo) + strings.Repeat(" ", width-hi)
		fmt.Fprintf(&b, "%-*s |%s| %8.4g..%-8.4g (%d cores)\n", nameW, name, bar, rw.start, rw.finish, rw.cores)
	}
	return b.String()
}
