package cluster

import (
	"fmt"

	"mtask/internal/obs"
)

// RenderGantt renders a simulated program as a text Gantt chart: one line
// per task (in start order, zero-duration structural tasks omitted) with a
// bar spanning its simulated execution window scaled to the given width.
// The rendering is shared with baseline.Gantt.Render and the execution
// tracer's obs.Recorder.Gantt.
func RenderGantt(p *Program, r *Result, width int) string {
	var rows []obs.Row
	for i, t := range p.Tasks {
		if r.Finish[i] <= r.Start[i] {
			continue // structural barrier/no-op
		}
		rows = append(rows, obs.Row{
			Name:   t.Name,
			Start:  r.Start[i],
			End:    r.Finish[i],
			Detail: fmt.Sprintf("(%d cores)", len(effectiveCores(&p.Tasks[i]))),
		})
	}
	head := fmt.Sprintf("gantt of %q: makespan %.4g s, %d timed tasks\n", p.Name, r.Makespan, len(rows))
	return head + obs.RenderRows(rows, width, r.Makespan)
}
