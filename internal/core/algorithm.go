package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"mtask/internal/cost"
	"mtask/internal/graph"
	"mtask/internal/obs"
)

// Scheduler runs the layer-based scheduling algorithm (Algorithm 1). The
// zero value with a Model is a ready-to-use scheduler with the paper's
// behaviour; the Disable*/RoundRobin switches exist for the ablation
// studies called out in DESIGN.md.
type Scheduler struct {
	// Model supplies the symbolic cost functions Tsymb.
	Model *cost.Model

	// ForceGroups forces the group count of every layer (clamped to the
	// layer width and core count): 1 yields the data-parallel schedule,
	// a large value the maximally task-parallel schedule. 0 searches
	// all group counts as in Algorithm 1.
	ForceGroups int

	// MinGroups and MaxGroups bound the group-count search (0 = no
	// bound). Unlike ForceGroups the search still runs; the bounds are
	// clamped to the feasible range of each layer.
	MinGroups, MaxGroups int

	// Parallel is the number of workers evaluating group-count
	// candidates concurrently across all layers. 0 or 1 searches
	// sequentially. The result is bit-identical either way: every
	// candidate is evaluated independently and ties are broken towards
	// the smallest group count, exactly as the sequential loop does.
	Parallel int

	// DisableChainContraction skips scheduling step 1.
	DisableChainContraction bool

	// DisableAdjustment skips the group size adjustment step.
	DisableAdjustment bool

	// RoundRobin replaces the LPT task-to-group assignment by a naive
	// round-robin assignment.
	RoundRobin bool

	// Reuse, when non-nil, is consulted before a layer is searched: a
	// non-nil result is adopted verbatim as the layer's schedule — no
	// candidate evaluation, no adjustment — on both the sequential and
	// the parallel path. The graph passed to the hook is the graph being
	// scheduled (after chain contraction). The caller guarantees the
	// reused schedule is exactly what the search would produce (the
	// planner's incremental path matches layers by cost-field
	// fingerprint, which implies identical search results). The hook
	// runs sequentially in layer order on both paths.
	Reuse func(g *graph.Graph, li int, layer graph.Layer) *LayerSchedule

	// Trace, when non-nil, records the g-search on the recorder's
	// control track: one span per layer on the sequential path (the
	// span's group field carries the chosen group count), one span for
	// the whole search plus per-layer decision instants on the parallel
	// path, and a "plan.candidates" counter of evaluated (layer, g)
	// pairs. Tracing never alters scheduling decisions.
	Trace *obs.Recorder
}

// Schedule computes a layered schedule of g on P symbolic cores.
func (s *Scheduler) Schedule(g *graph.Graph, P int) (*Schedule, error) {
	return s.ScheduleCtx(context.Background(), g, P)
}

// ScheduleCtx is Schedule with cooperative cancellation: if ctx is canceled
// before the schedule is complete, the search stops and an error wrapping
// ErrCanceled is returned.
func (s *Scheduler) ScheduleCtx(ctx context.Context, g *graph.Graph, P int) (*Schedule, error) {
	if P < 1 {
		return nil, fmt.Errorf("cannot schedule %q on %d cores: %w", g.Name, P, ErrNoCores)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}

	sched := &Schedule{Source: g, P: P}
	if s.DisableChainContraction {
		sched.Graph = g
		sched.NodeOf = make([]graph.TaskID, g.Len())
		for i := range sched.NodeOf {
			sched.NodeOf[i] = graph.TaskID(i)
		}
	} else {
		res := graph.ContractChains(g)
		sched.Graph = res.Graph
		sched.NodeOf = res.NodeOf
	}

	layers := graph.Layers(sched.Graph)
	var err error
	if s.Parallel > 1 {
		sched.Layers, err = s.scheduleLayersParallel(ctx, sched.Graph, layers, P)
	} else {
		sched.Layers, err = s.scheduleLayersSequential(ctx, sched.Graph, layers, P)
	}
	if err != nil {
		return nil, err
	}
	for _, ls := range sched.Layers {
		sched.Time += ls.Time
	}
	return sched, nil
}

// scheduleLayersSequential is the paper's strictly sequential search, with
// a cancellation check between layers.
func (s *Scheduler) scheduleLayersSequential(ctx context.Context, g *graph.Graph, layers []graph.Layer, P int) ([]*LayerSchedule, error) {
	out := make([]*LayerSchedule, len(layers))
	sc := getSearchScratch()
	defer putSearchScratch(sc)
	for li, layer := range layers {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("scheduling %q: %w (%w)", g.Name, ErrCanceled, err)
		}
		if s.Reuse != nil {
			if ls := s.Reuse(g, li, layer); ls != nil {
				out[li] = ls
				continue
			}
		}
		start := s.Trace.Now()
		out[li] = s.scheduleLayer(g, layer, P, sc)
		s.Trace.Span("g-search", "plan", obs.ControlRank, li, len(out[li].Groups), start, s.Trace.Now())
		lo, hi := s.groupBounds(layer, P)
		s.Trace.Counter("plan.candidates").Add(int64(hi - lo + 1))
	}
	return out, nil
}

// searchItem is one unit of the parallel search: evaluate group count g for
// layer li.
type searchItem struct {
	li, g int
}

// scheduleLayersParallel evaluates every (layer, group count) candidate of
// Algorithm 1 on a bounded worker pool. Layers are mutually independent in
// the layer-based algorithm and candidates within a layer are independent
// by construction, so the search is embarrassingly parallel; the per-layer
// reduction afterwards replays the sequential loop's tie-breaking (strictly
// smaller time wins, ties keep the smaller group count) so the result is
// bit-identical to the sequential path. Workers evaluate candidate layer
// times only (allocation-free, on pooled scratch); the winning candidate
// of each layer is materialized once after the reduction.
func (s *Scheduler) scheduleLayersParallel(ctx context.Context, g *graph.Graph, layers []graph.Layer, P int) ([]*LayerSchedule, error) {
	searchStart := s.Trace.Now()
	out := make([]*LayerSchedule, len(layers))
	lo := make([]int, len(layers))
	times := make([][]float64, len(layers))
	var items []searchItem
	for li, layer := range layers {
		if s.Reuse != nil {
			if ls := s.Reuse(g, li, layer); ls != nil {
				out[li] = ls
				continue
			}
		}
		l, h := s.groupBounds(layer, P)
		lo[li] = l
		times[li] = make([]float64, h-l+1)
		for gc := l; gc <= h; gc++ {
			items = append(items, searchItem{li: li, g: gc})
		}
	}

	workers := s.Parallel
	if workers > len(items) {
		workers = len(items)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := getSearchScratch()
			defer putSearchScratch(sc)
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				it := items[i]
				times[it.li][it.g-lo[it.li]] = s.candidateTime(g, layers[it.li], P, it.g, sc)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("scheduling %q: %w (%w)", g.Name, ErrCanceled, err)
	}

	sc := getSearchScratch()
	defer putSearchScratch(sc)
	for li := range layers {
		if out[li] != nil {
			continue // reused
		}
		best := math.Inf(1)
		bestG := lo[li]
		for i, t := range times[li] {
			if t < best {
				best = t
				bestG = lo[li] + i
			}
		}
		out[li] = s.adjusted(g, s.assign(g, layers[li], P, bestG, sc), P)
		if s.Trace != nil {
			s.Trace.Instant(fmt.Sprintf("layer %d: %d groups", li, len(out[li].Groups)),
				"plan", obs.ControlRank, s.Trace.Now())
		}
	}
	s.Trace.Span("g-search-parallel", "plan", obs.ControlRank, -1, -1, searchStart, s.Trace.Now())
	s.Trace.Counter("plan.candidates").Add(int64(len(items)))
	return out, nil
}

// groupBounds returns the candidate group-count range [lo, hi] of a layer:
// all g in 1..P clamped to the layer width (a group count above the width
// leaves groups idle and can never win, so the clamp is equivalent to the
// paper's 1..P loop), further narrowed by ForceGroups or the
// MinGroups/MaxGroups search bounds.
func (s *Scheduler) groupBounds(layer graph.Layer, P int) (lo, hi int) {
	maxG := P
	if len(layer) < maxG {
		maxG = len(layer)
	}
	lo, hi = 1, maxG
	if s.ForceGroups > 0 {
		fg := s.ForceGroups
		if fg > maxG {
			fg = maxG
		}
		return fg, fg
	}
	if s.MaxGroups > 0 && hi > s.MaxGroups {
		hi = s.MaxGroups
	}
	if s.MinGroups > 0 && lo < s.MinGroups {
		lo = s.MinGroups
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// scheduleLayer implements Algorithm 1 for a single layer: candidates are
// evaluated allocation-free on the scratch arena and only the winning group
// count is materialized into a LayerSchedule.
func (s *Scheduler) scheduleLayer(g *graph.Graph, layer graph.Layer, P int, sc *searchScratch) *LayerSchedule {
	lo, hi := s.groupBounds(layer, P)
	best := math.Inf(1)
	bestG := lo
	for gCount := lo; gCount <= hi; gCount++ {
		if t := s.candidateTime(g, layer, P, gCount, sc); t < best {
			best = t
			bestG = gCount
		}
	}
	return s.adjusted(g, s.assign(g, layer, P, bestG, sc), P)
}

// adjusted applies the group size adjustment step to the winning candidate
// of a layer's search (shared by the sequential and parallel paths).
func (s *Scheduler) adjusted(g *graph.Graph, bestLS *LayerSchedule, P int) *LayerSchedule {
	if !s.DisableAdjustment && bestLS.NumGroups() > 1 {
		adj := s.adjust(g, bestLS, P)
		if adj.Time <= bestLS.Time {
			bestLS = adj
		}
	}
	return bestLS
}

// assign partitions the P symbolic cores into gCount equal subsets and
// assigns the layer's tasks to subsets greedily in decreasing order of
// execution time (LPT), or round-robin if the ablation switch is set. Only
// the returned LayerSchedule is allocated (sizes, one task slab, the group
// headers); all working state lives on the scratch arena. The per-group
// task order matches the former per-group appends: LPT order restricted to
// each group.
func (s *Scheduler) assign(g *graph.Graph, layer graph.Layer, P, gCount int, sc *searchScratch) *LayerSchedule {
	sc.prepare(gCount, len(layer))
	sizes := make([]int, gCount) // retained by the LayerSchedule
	equalSizesInto(sizes, P, gCount)

	// Task execution times on their prospective group sizes. Groups
	// are equal-sized up to rounding; use each group's actual size when
	// accumulating.
	tts := sc.tts[:len(layer)]
	minSize := sizes[gCount-1]
	for i, id := range layer {
		tts[i] = taskTime{id: id, t: s.Model.SymbolicTaskTime(g.Task(id), minSize)}
	}
	sortTaskTimes(tts)

	load := sc.load[:gCount]
	for i := range load {
		load[i] = 0
	}
	asg := sc.asg[:len(layer)]
	if s.RoundRobin {
		for i, tt := range tts {
			gi := i % gCount
			asg[i] = int32(gi)
			load[gi] += s.Model.SymbolicTaskTime(g.Task(tt.id), sizes[gi])
		}
	} else {
		h := sc.heap[:gCount]
		for i := range h {
			h[i] = int32(i)
		}
		for i, tt := range tts {
			gi := h[0]
			asg[i] = gi
			load[gi] += s.Model.SymbolicTaskTime(g.Task(tt.id), sizes[gi])
			siftDown(h, load, 0)
		}
	}

	// Materialize the partition from a single backing slab: count group
	// populations, carve zero-length full-capacity windows, fill in LPT
	// order.
	counts := sc.heap[:gCount] // the heap is spent; reuse as counters
	for i := range counts {
		counts[i] = 0
	}
	for _, gi := range asg {
		counts[gi]++
	}
	backing := make([]graph.TaskID, len(layer))
	groups := make([][]graph.TaskID, gCount)
	off := 0
	for gi, c := range counts {
		groups[gi] = backing[off : off : off+int(c)]
		off += int(c)
	}
	for i, gi := range asg {
		groups[gi] = append(groups[gi], tts[i].id)
	}

	ls := &LayerSchedule{Layer: layer, Groups: groups, Sizes: sizes}
	for _, l := range load {
		if l > ls.Time {
			ls.Time = l
		}
	}
	return ls
}

// adjust implements the group adjustment step: group sizes are recomputed
// proportionally to the sequential computational work Tseq(Gl) assigned to
// each group, rounded such that the total number of symbolic cores stays P
// and every non-empty group keeps at least one core.
func (s *Scheduler) adjust(g *graph.Graph, ls *LayerSchedule, P int) *LayerSchedule {
	gCount := ls.NumGroups()
	seq := make([]float64, gCount)
	var total float64
	for gi, tasks := range ls.Groups {
		for _, id := range tasks {
			seq[gi] += g.Task(id).Work
		}
		total += seq[gi]
	}
	if total <= 0 {
		return ls
	}
	sizes := proportionalSizes(seq, total, P)

	adj := &LayerSchedule{Layer: ls.Layer, Groups: ls.Groups, Sizes: sizes}
	load := make([]float64, gCount)
	for gi, tasks := range ls.Groups {
		for _, id := range tasks {
			load[gi] += s.Model.SymbolicTaskTime(g.Task(id), sizes[gi])
		}
		if load[gi] > adj.Time {
			adj.Time = load[gi]
		}
	}
	return adj
}

// equalSizes splits P cores into g groups of (almost) equal size; the first
// P%g groups receive one extra core.
func equalSizes(P, g int) []int {
	sizes := make([]int, g)
	equalSizesInto(sizes, P, g)
	return sizes
}

// equalSizesInto is equalSizes into a caller-provided buffer.
func equalSizesInto(sizes []int, P, g int) {
	base, rem := P/g, P%g
	for i := range sizes {
		sizes[i] = base
		if i < rem {
			sizes[i]++
		}
	}
}

// ProportionalGroupSizes computes group sizes proportional to the given
// work shares (the group adjustment rule of Algorithm 1): round(P * w_l /
// total) with a largest-remainder correction so the sizes sum to P and a
// floor of one core per group. It is exported for workload builders that
// partition cores outside the layer scheduler (e.g. the multi-zone
// benchmark).
func ProportionalGroupSizes(work []float64, P int) []int {
	var total float64
	for _, w := range work {
		total += w
	}
	if total <= 0 {
		return equalSizes(P, len(work))
	}
	return proportionalSizes(work, total, P)
}

// proportionalSizes computes round(g_l = P * seq_l/total) with a largest-
// remainder correction so the sizes sum to P, and a floor of one core per
// group.
func proportionalSizes(seq []float64, total float64, P int) []int {
	g := len(seq)
	sizes := make([]int, g)
	type frac struct {
		i int
		f float64
	}
	fracs := make([]frac, g)
	sum := 0
	for i, w := range seq {
		exact := float64(P) * w / total
		sizes[i] = int(exact)
		if sizes[i] < 1 {
			sizes[i] = 1
		}
		fracs[i] = frac{i: i, f: exact - math.Floor(exact)}
		sum += sizes[i]
	}
	// Distribute the remainder to the groups with the largest
	// fractional parts (or take cores back from the smallest parts).
	sort.Slice(fracs, func(a, b int) bool {
		if fracs[a].f != fracs[b].f {
			return fracs[a].f > fracs[b].f
		}
		return fracs[a].i < fracs[b].i
	})
	for k := 0; sum < P; k = (k + 1) % g {
		sizes[fracs[k].i]++
		sum++
	}
	for k := g - 1; sum > P; k = (k - 1 + g) % g {
		if sizes[fracs[k].i] > 1 {
			sizes[fracs[k].i]--
			sum--
		}
	}
	return sizes
}

// DataParallel returns the pure data-parallel schedule (one group per
// layer: all tasks execute one after another on all P cores). It is the
// baseline "dp" program version of the evaluation.
func DataParallel(model *cost.Model, g *graph.Graph, P int) (*Schedule, error) {
	s := &Scheduler{Model: model, ForceGroups: 1}
	return s.Schedule(g, P)
}

// MaxTaskParallel returns the schedule exploiting the maximum degree of
// task parallelism: every layer uses as many groups as it has tasks.
func MaxTaskParallel(model *cost.Model, g *graph.Graph, P int) (*Schedule, error) {
	s := &Scheduler{Model: model, ForceGroups: P}
	return s.Schedule(g, P)
}
