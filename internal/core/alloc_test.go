package core

import (
	"fmt"
	"testing"

	"mtask/internal/arch"
	"mtask/internal/cost"
	"mtask/internal/graph"
)

// allocBenchGraph builds a layered graph of depth layers times width
// independent tasks per layer, linked layer-to-layer so Layers recovers
// exactly the intended partition. Work varies per task so the LPT order is
// non-trivial.
func allocBenchGraph(depth, width int) *graph.Graph {
	g := graph.New("alloc-bench")
	g.Grow(depth*width+2, depth*width)
	prev := make([]graph.TaskID, 0, width)
	for l := 0; l < depth; l++ {
		cur := make([]graph.TaskID, 0, width)
		for w := 0; w < width; w++ {
			id := g.AddTask(&graph.Task{
				Name:      fmt.Sprintf("t%d.%d", l, w),
				Kind:      graph.KindBasic,
				Work:      float64(1000 + (w*37+l*11)%500),
				CommBytes: 4096,
				CommCount: 1,
				OutBytes:  4096,
			})
			if l > 0 {
				g.MustEdge(prev[w], id, 4096)
			}
			cur = append(cur, id)
		}
		prev = cur
	}
	g.AddStartStop()
	return g
}

// TestCandidateTimeAllocFree gates the arena-backed g-search at its core
// invariant: evaluating one (layer, group count) candidate on a warm
// scratch performs zero heap allocations.
func TestCandidateTimeAllocFree(t *testing.T) {
	g := allocBenchGraph(1, 64)
	layers := graph.Layers(g)
	if len(layers) != 1 || len(layers[0]) != 64 {
		t.Fatalf("unexpected layering: %d layers", len(layers))
	}
	layer := layers[0]
	s := &Scheduler{Model: &cost.Model{Machine: arch.CHiC().SubsetCores(64)}}
	sc := getSearchScratch()
	defer putSearchScratch(sc)
	for _, gc := range []int{1, 7, 32, 64} {
		gc := gc
		s.candidateTime(g, layer, 64, gc, sc) // warm the scratch classes
		n := testing.AllocsPerRun(50, func() {
			s.candidateTime(g, layer, 64, gc, sc)
		})
		if n != 0 {
			t.Errorf("candidateTime(g=%d) allocates %v objects per run, want 0", gc, n)
		}
	}
}

// TestScheduleAllocRegression gates the whole-schedule allocation budget.
// Before the arena scratch, every candidate of the group-count search
// materialized its partition (task-time slices, per-group appends, a boxed
// heap), putting allocations at O(candidates x width); with candidates
// evaluated on pooled scratch, allocations are O(layers x width) — only
// result structures. The bound below sits ~2x above the measured cost of
// the search (roughly 15 allocations per layer plus contraction, layering
// and result slabs) and ~2x below the pre-arena figure, so a regression
// to per-candidate allocation trips it immediately.
func TestScheduleAllocRegression(t *testing.T) {
	const depth, width, P = 8, 64, 64
	g := allocBenchGraph(depth, width)
	s := &Scheduler{Model: &cost.Model{Machine: arch.CHiC().SubsetCores(P)}}
	if _, err := s.Schedule(g, P); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(10, func() {
		if _, err := s.Schedule(g, P); err != nil {
			t.Fatal(err)
		}
	})
	// Measured ~1.1e3 allocs/run on the recording host; the pre-arena
	// search cost ~5.6e3 for the same workload (64 candidates/layer, each
	// materializing its partition).
	const budget = 2500
	if n > budget {
		t.Errorf("Schedule allocates %v objects per run, budget %d", n, budget)
	}
}
