package core

import (
	"math"
	"math/rand"
	"testing"

	"mtask/internal/arch"
	"mtask/internal/cost"
	"mtask/internal/graph"
)

func model(nodes int) *cost.Model {
	return &cost.Model{Machine: arch.CHiC().Subset(nodes)}
}

// epolStep builds the M-task graph of one extrapolation time step with R
// approximations (Fig. 4/5): chain i has i micro steps of the given work,
// all chains feed a combine task.
func epolStep(r int, work float64, commBytes int) *graph.Graph {
	g := graph.New("epol-step")
	combine := g.AddTask(&graph.Task{Name: "combine", Kind: graph.KindBasic, Work: work, CommBytes: commBytes, CommCount: 1})
	for i := 1; i <= r; i++ {
		prev := graph.None
		for j := 1; j <= i; j++ {
			s := g.AddTask(&graph.Task{
				Name: "step", Kind: graph.KindBasic,
				Work: work, CommBytes: commBytes, CommCount: 1,
				OutBytes: commBytes,
				Meta:     map[string]int{"i": i, "j": j},
			})
			if prev != graph.None {
				g.MustEdge(prev, s, commBytes)
			}
			prev = s
		}
		g.MustEdge(prev, combine, commBytes)
	}
	g.AddStartStop()
	return g
}

func TestEqualSizes(t *testing.T) {
	tests := []struct {
		p, g int
		want []int
	}{
		{8, 2, []int{4, 4}},
		{8, 3, []int{3, 3, 2}},
		{5, 5, []int{1, 1, 1, 1, 1}},
		{7, 2, []int{4, 3}},
	}
	for _, tt := range tests {
		got := equalSizes(tt.p, tt.g)
		sum := 0
		for i, s := range got {
			if s != tt.want[i] {
				t.Errorf("equalSizes(%d,%d) = %v, want %v", tt.p, tt.g, got, tt.want)
				break
			}
			sum += s
		}
		if sum != tt.p {
			t.Errorf("equalSizes(%d,%d) sums to %d", tt.p, tt.g, sum)
		}
	}
}

func TestProportionalSizes(t *testing.T) {
	sizes := proportionalSizes([]float64{3, 1}, 4, 8)
	if sizes[0] != 6 || sizes[1] != 2 {
		t.Fatalf("proportionalSizes(3:1, 8) = %v, want [6 2]", sizes)
	}
	// A group with (almost) no work keeps at least one core.
	sizes = proportionalSizes([]float64{100, 0.0001}, 100.0001, 4)
	if sizes[1] < 1 {
		t.Fatalf("zero-work group starved: %v", sizes)
	}
	if sizes[0]+sizes[1] != 4 {
		t.Fatalf("sizes %v do not sum to 4", sizes)
	}
}

func TestProportionalSizesSumProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		g := 1 + rng.Intn(8)
		p := g + rng.Intn(64)
		seq := make([]float64, g)
		var total float64
		for i := range seq {
			seq[i] = rng.Float64() * 10
			total += seq[i]
		}
		if total == 0 {
			continue
		}
		sizes := proportionalSizes(seq, total, p)
		sum := 0
		for _, s := range sizes {
			if s < 1 {
				t.Fatalf("size < 1 in %v (p=%d)", sizes, p)
			}
			sum += s
		}
		if sum != p {
			t.Fatalf("sizes %v sum to %d, want %d", sizes, sum, p)
		}
	}
}

func TestScheduleEPOLPairsChains(t *testing.T) {
	// For the extrapolation method, the scheduling algorithm partitions
	// the cores into R/2 subsets, pairing approximations i and R-i+1
	// (Section 4.2). Use compute-dominated tasks so splitting wins on
	// communication but loads must balance.
	const R = 4
	g := epolStep(R, 2e9, 1<<20)
	m := model(16) // 64 cores
	s := &Scheduler{Model: m}
	sched, err := s.Schedule(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sched.Layers) != 2 {
		t.Fatalf("EPOL step has %d layers, want 2", len(sched.Layers))
	}
	first := sched.Layers[0]
	if first.NumGroups() != R/2 {
		t.Fatalf("first layer uses %d groups, want R/2 = %d\n%s", first.NumGroups(), R/2, sched)
	}
	// Each group's chains must have equal accumulated work (i and
	// R-i+1 micro steps pair to R+1).
	for gi, tasks := range first.Groups {
		var w float64
		for _, id := range tasks {
			w += sched.Graph.Task(id).Work
		}
		if math.Abs(w-float64(R+1)*2e9) > 1 {
			t.Fatalf("group %d work = %g, want %g", gi, w, float64(R+1)*2e9)
		}
	}
	// Second layer: the combine task data-parallel on all cores.
	if sched.Layers[1].NumGroups() != 1 {
		t.Fatalf("combine layer uses %d groups", sched.Layers[1].NumGroups())
	}
}

func TestScheduleChainContraction(t *testing.T) {
	g := epolStep(4, 1e9, 1<<18)
	m := model(8)
	s := &Scheduler{Model: m}
	sched, err := s.Schedule(g, 32)
	if err != nil {
		t.Fatal(err)
	}
	// 4 chains + combine + start/stop = 7 contracted nodes from 12.
	if sched.Graph.Len() != 7 {
		t.Fatalf("contracted graph has %d nodes, want 7", sched.Graph.Len())
	}
	// Ablation: disabling contraction yields more layers (chains can no
	// longer run as one unit).
	s2 := &Scheduler{Model: m, DisableChainContraction: true}
	sched2, err := s2.Schedule(g, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched2.Layers) <= len(sched.Layers) {
		t.Fatalf("without contraction expected more layers: %d vs %d",
			len(sched2.Layers), len(sched.Layers))
	}
	// Expansion of a contracted node yields the original chain in order.
	for _, ls := range sched.Layers {
		for _, tasks := range ls.Groups {
			for _, id := range tasks {
				src := sched.SourceTasks(id)
				if len(src) == 0 {
					t.Fatal("empty source expansion")
				}
				for k := 1; k < len(src); k++ {
					if !sched.Source.Reachable(src[k-1], src[k]) {
						t.Fatalf("chain members %v out of order", src)
					}
				}
			}
		}
	}
}

func TestDataParallelForcesOneGroup(t *testing.T) {
	g := epolStep(4, 1e9, 1<<18)
	m := model(8)
	sched, err := DataParallel(m, g, 32)
	if err != nil {
		t.Fatal(err)
	}
	for li, ls := range sched.Layers {
		if ls.NumGroups() != 1 {
			t.Fatalf("layer %d has %d groups in dp schedule", li, ls.NumGroups())
		}
		if ls.Sizes[0] != 32 {
			t.Fatalf("dp group size = %d, want 32", ls.Sizes[0])
		}
	}
}

func TestMaxTaskParallel(t *testing.T) {
	g := epolStep(4, 1e9, 1<<18)
	m := model(8)
	sched, err := MaxTaskParallel(m, g, 32)
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.Layers[0].NumGroups(); got != 4 {
		t.Fatalf("max tp first layer groups = %d, want 4", got)
	}
}

func TestSchedulerPicksTaskParallelForCommBound(t *testing.T) {
	// K independent tasks with heavy internal communication: splitting
	// the cores into K groups shrinks each allgather, so Algorithm 1
	// must not choose g=1.
	g := graph.New("irk-layer")
	const K = 4
	for i := 0; i < K; i++ {
		g.AddTask(&graph.Task{
			Name: "stage", Kind: graph.KindBasic,
			Work: 1e8, CommBytes: 1 << 22, CommCount: 8,
		})
	}
	m := model(32) // 128 cores
	s := &Scheduler{Model: m}
	sched, err := s.Schedule(g, 128)
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.Layers[0].NumGroups(); got < 2 {
		t.Fatalf("scheduler chose g=%d for comm-bound layer", got)
	}
	// And the predicted time must beat data parallel.
	dp, _ := DataParallel(m, g, 128)
	if sched.Time >= dp.Time {
		t.Fatalf("tp time %g not better than dp %g", sched.Time, dp.Time)
	}
}

func TestSchedulerPicksDataParallelForLoneTask(t *testing.T) {
	g := graph.New("single")
	g.AddTask(&graph.Task{Name: "solo", Kind: graph.KindBasic, Work: 1e9})
	m := model(4)
	s := &Scheduler{Model: m}
	sched, err := s.Schedule(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.Layers[0].NumGroups(); got != 1 {
		t.Fatalf("single-task layer got %d groups", got)
	}
}

func TestScheduleErrors(t *testing.T) {
	g := graph.New("g")
	g.AddBasic("a", 1)
	s := &Scheduler{Model: model(1)}
	if _, err := s.Schedule(g, 0); err == nil {
		t.Fatal("P=0 accepted")
	}
	cyc := graph.New("cyc")
	a := cyc.AddBasic("a", 1)
	b := cyc.AddBasic("b", 1)
	cyc.MustEdge(a, b, 0)
	cyc.MustEdge(b, a, 0)
	if _, err := s.Schedule(cyc, 4); err == nil {
		t.Fatal("cyclic graph accepted")
	}
}

func TestAdjustmentBalancesUnevenLoad(t *testing.T) {
	// Two independent communication-heavy tasks with work 3:1 on 8
	// cores: the group search picks g=2 (splitting shrinks the
	// collectives), and the adjustment step resizes the equal groups to
	// 6:2 to balance the uneven work.
	g := graph.New("uneven")
	g.AddTask(&graph.Task{Name: "big", Kind: graph.KindBasic, Work: 3e9, CommBytes: 1 << 22, CommCount: 32})
	g.AddTask(&graph.Task{Name: "small", Kind: graph.KindBasic, Work: 1e9, CommBytes: 1 << 22, CommCount: 32})
	m := model(2)
	s := &Scheduler{Model: m}
	sched, err := s.Schedule(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	ls := sched.Layers[0]
	if ls.NumGroups() != 2 {
		t.Fatalf("groups = %d, want 2", ls.NumGroups())
	}
	bigGroup := ls.GroupOf(0)
	if got := ls.Sizes[bigGroup]; got != 6 {
		t.Fatalf("big task group size = %d, want 6\n%s", got, sched)
	}
	// Ablation: without adjustment the sizes stay equal.
	s2 := &Scheduler{Model: m, DisableAdjustment: true}
	sched2, _ := s2.Schedule(g, 8)
	ls2 := sched2.Layers[0]
	if ls2.NumGroups() == 2 && (ls2.Sizes[0] != 4 || ls2.Sizes[1] != 4) {
		t.Fatalf("without adjustment sizes = %v, want [4 4]", ls2.Sizes)
	}
	if sched.Time > sched2.Time {
		t.Fatalf("adjustment worsened time: %g vs %g", sched.Time, sched2.Time)
	}
}

func TestLPTBeatsRoundRobin(t *testing.T) {
	// Tasks with very uneven work: LPT balances, round-robin does not.
	g := graph.New("lpt")
	works := []float64{9e9, 1e9, 8e9, 2e9, 7e9, 3e9}
	for _, w := range works {
		g.AddTask(&graph.Task{Name: "t", Kind: graph.KindBasic, Work: w})
	}
	m := model(2)
	lpt := &Scheduler{Model: m, ForceGroups: 2}
	rr := &Scheduler{Model: m, ForceGroups: 2, RoundRobin: true, DisableAdjustment: true}
	lptS, err := lpt.Schedule(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	rrS, err := rr.Schedule(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if lptS.Time > rrS.Time {
		t.Fatalf("LPT (%g) worse than round-robin (%g)", lptS.Time, rrS.Time)
	}
}

// --- mapping tests ---

func TestSequencesArePermutations(t *testing.T) {
	m := arch.CHiC().Subset(4)
	for _, strat := range []Strategy{Consecutive{}, Scattered{}, Mixed{D: 2}, Mixed{D: 3}} {
		seq := strat.Sequence(m)
		if len(seq) != m.TotalCores() {
			t.Fatalf("%s: sequence length %d, want %d", strat.Name(), len(seq), m.TotalCores())
		}
		seen := make(map[arch.CoreID]bool)
		for _, c := range seq {
			if !m.Contains(c) {
				t.Fatalf("%s: core %v outside machine", strat.Name(), c)
			}
			if seen[c] {
				t.Fatalf("%s: duplicate core %v", strat.Name(), c)
			}
			seen[c] = true
		}
	}
}

func TestConsecutiveSequenceOrder(t *testing.T) {
	m := arch.CHiC().Subset(2)
	seq := Consecutive{}.Sequence(m)
	// First node's four cores come first.
	for i := 0; i < 4; i++ {
		if seq[i].Node != 0 {
			t.Fatalf("consecutive seq[%d] on node %d", i, seq[i].Node)
		}
	}
	if seq[4].Node != 1 {
		t.Fatalf("consecutive seq[4] on node %d, want 1", seq[4].Node)
	}
}

func TestScatteredSequenceOrder(t *testing.T) {
	m := arch.CHiC().Subset(3)
	seq := Scattered{}.Sequence(m)
	// First three entries: core 1.1 of nodes 1, 2, 3.
	for i := 0; i < 3; i++ {
		want := arch.CoreID{Node: i, Proc: 0, Core: 0}
		if seq[i] != want {
			t.Fatalf("scattered seq[%d] = %v, want %v", i, seq[i], want)
		}
	}
}

func TestMixedDegenerateCases(t *testing.T) {
	m := arch.JuRoPA().Subset(3)
	cons := Consecutive{}.Sequence(m)
	scat := Scattered{}.Sequence(m)
	m1 := Mixed{D: 1}.Sequence(m)
	m8 := Mixed{D: 8}.Sequence(m) // 8 = cores per JuRoPA node
	for i := range cons {
		if m8[i] != cons[i] {
			t.Fatalf("mixed(d=cpn) != consecutive at %d: %v vs %v", i, m8[i], cons[i])
		}
		if m1[i] != scat[i] {
			t.Fatalf("mixed(d=1) != scattered at %d: %v vs %v", i, m1[i], scat[i])
		}
	}
	// Out-of-range D values are clamped.
	if got := (Mixed{D: 0}).Sequence(m); got[1] != scat[1] {
		t.Fatal("D=0 not clamped to 1")
	}
	if got := (Mixed{D: 100}).Sequence(m); got[1] != cons[1] {
		t.Fatal("huge D not clamped to cores per node")
	}
}

func TestMixedD2Blocks(t *testing.T) {
	m := arch.CHiC().Subset(2)
	seq := Mixed{D: 2}.Sequence(m)
	// Expected: node0 cores 0,1; node1 cores 0,1; node0 cores 2,3; ...
	want := []arch.CoreID{
		{Node: 0, Proc: 0, Core: 0}, {Node: 0, Proc: 0, Core: 1},
		{Node: 1, Proc: 0, Core: 0}, {Node: 1, Proc: 0, Core: 1},
		{Node: 0, Proc: 1, Core: 0}, {Node: 0, Proc: 1, Core: 1},
		{Node: 1, Proc: 1, Core: 0}, {Node: 1, Proc: 1, Core: 1},
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("mixed(2) seq[%d] = %v, want %v", i, seq[i], want[i])
		}
	}
}

func TestStrategyByName(t *testing.T) {
	for _, name := range []string{"consecutive", "scattered", "mixed:2", "mixed:4"} {
		s, err := StrategyByName(name)
		if err != nil {
			t.Fatalf("StrategyByName(%q): %v", name, err)
		}
		if s == nil {
			t.Fatalf("nil strategy for %q", name)
		}
	}
	if _, err := StrategyByName("bogus"); err == nil {
		t.Fatal("bogus strategy accepted")
	}
}

func TestMapDisjointGroups(t *testing.T) {
	g := epolStep(4, 1e9, 1<<18)
	mach := arch.CHiC().Subset(8)
	m := &cost.Model{Machine: mach}
	s := &Scheduler{Model: m}
	sched, err := s.Schedule(g, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{Consecutive{}, Scattered{}, Mixed{D: 2}} {
		mp, err := Map(sched, mach, strat)
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		if err := mp.Validate(); err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		// Every scheduled task must have cores.
		for _, ls := range sched.Layers {
			for _, id := range ls.Layer {
				if len(mp.TaskCores(id)) == 0 {
					t.Fatalf("%s: task %d has no cores", strat.Name(), id)
				}
			}
		}
	}
	// Machine too small is rejected.
	if _, err := Map(sched, arch.CHiC().Subset(2), Consecutive{}); err == nil {
		t.Fatal("mapping onto too-small machine accepted")
	}
}

func TestOrthogonalSetsScatteredStayInNode(t *testing.T) {
	// With a scattered mapping of equal groups, the orthogonal sets are
	// node-internal (the basis of Fig 14 right / Section 3.4).
	g := graph.New("layer")
	const K = 4
	for i := 0; i < K; i++ {
		g.AddTask(&graph.Task{Name: "stage", Kind: graph.KindBasic, Work: 1e9, CommBytes: 1 << 20, CommCount: 4})
	}
	mach := arch.CHiC().Subset(16) // 64 cores
	m := &cost.Model{Machine: mach}
	s := &Scheduler{Model: m, ForceGroups: K, DisableAdjustment: true}
	sched, err := s.Schedule(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	scat, _ := Map(sched, mach, Scattered{})
	for _, set := range scat.OrthogonalSets(0) {
		if lv := arch.SlowestLevel(set); lv > arch.LevelNode {
			t.Fatalf("scattered orthogonal set %v crosses nodes", set)
		}
	}
	cons, _ := Map(sched, mach, Consecutive{})
	crossing := 0
	for _, set := range cons.OrthogonalSets(0) {
		if arch.SlowestLevel(set) == arch.LevelNetwork {
			crossing++
		}
	}
	if crossing == 0 {
		t.Fatal("consecutive orthogonal sets unexpectedly node-internal")
	}
}
