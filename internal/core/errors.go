package core

import "errors"

// Sentinel errors of the scheduling and mapping layer; test with errors.Is.
var (
	// ErrNoCores is wrapped when a schedule or mapping is requested on
	// fewer cores than it needs (non-positive P, or a machine smaller
	// than the schedule).
	ErrNoCores = errors.New("core: no cores available")

	// ErrCanceled is wrapped when scheduling, mapping or simulation is
	// abandoned because the caller's context was canceled or timed out.
	ErrCanceled = errors.New("core: planning canceled")
)
