package core

import (
	"fmt"

	"mtask/internal/graph"
)

// HierarchicalSchedule is a schedule of a hierarchical M-task graph
// (Section 2.2.3): the upper-level graph is scheduled as usual, and every
// composed node (e.g. a while loop whose body is a lower-level M-task
// graph) carries a recursively computed schedule of its body on the cores
// the upper level assigned to it. The advantage of this approach — as the
// paper notes — is that every scheduled graph is acyclic: the repetition
// of a loop body is encoded in the composed node.
type HierarchicalSchedule struct {
	// Top is the schedule of this level's graph.
	Top *Schedule

	// Sub maps the id of a composed task (in Top.Graph) to the
	// hierarchical schedule of its body on the task's core count.
	Sub map[graph.TaskID]*HierarchicalSchedule
}

// ScheduleHierarchical schedules a hierarchical M-task graph on P symbolic
// cores: the given graph is scheduled with the layer-based algorithm, and
// the body of every composed node is scheduled recursively on the number
// of cores its group received.
func (s *Scheduler) ScheduleHierarchical(g *graph.Graph, P int) (*HierarchicalSchedule, error) {
	top, err := s.Schedule(g, P)
	if err != nil {
		return nil, err
	}
	hs := &HierarchicalSchedule{Top: top, Sub: make(map[graph.TaskID]*HierarchicalSchedule)}
	// Composed nodes survive contraction unmerged (ContractChains only
	// merges basic tasks), so they appear as singleton nodes of the
	// scheduled graph.
	for _, t := range top.Graph.Tasks() {
		if t.Kind != graph.KindComposed {
			continue
		}
		src := t
		if len(t.Members) == 1 {
			src = top.Source.Task(t.Members[0])
		}
		if src.Sub == nil {
			return nil, fmt.Errorf("core: composed task %q has no body graph", t.Name)
		}
		li := top.LayerOf(t.ID)
		if li < 0 {
			return nil, fmt.Errorf("core: composed task %q not in any layer", t.Name)
		}
		gi := top.Layers[li].GroupOf(t.ID)
		cores := top.Layers[li].Sizes[gi]
		sub, err := s.ScheduleHierarchical(src.Sub, cores)
		if err != nil {
			return nil, fmt.Errorf("core: scheduling body of %q: %w", t.Name, err)
		}
		hs.Sub[t.ID] = sub
	}
	return hs, nil
}

// Depth returns the nesting depth of the hierarchical schedule (1 for a
// flat schedule).
func (hs *HierarchicalSchedule) Depth() int {
	max := 0
	for _, sub := range hs.Sub {
		if d := sub.Depth(); d > max {
			max = d
		}
	}
	return 1 + max
}

// TotalTime returns the predicted symbolic time of the hierarchical
// schedule assuming every composed node's body executes `iterations(id)`
// times (e.g. the trip count of a while loop, unknown statically; pass a
// constant function for an estimate). The composed node's own Work-based
// time in the top schedule is replaced by the recursive estimate.
func (hs *HierarchicalSchedule) TotalTime(iterations func(id graph.TaskID) int) float64 {
	t := hs.Top.Time
	for id, sub := range hs.Sub {
		iters := 1
		if iterations != nil {
			iters = iterations(id)
		}
		t += float64(iters-1) * sub.TotalTime(iterations)
	}
	return t
}
