package core

import (
	"testing"

	"mtask/internal/graph"
)

// buildHierarchical builds an upper-level graph: init -> while(body) where
// the body is an EPOL-like step with R chains.
func buildHierarchical(r int) *graph.Graph {
	body := graph.New("body")
	combine := body.AddTask(&graph.Task{Name: "combine", Kind: graph.KindBasic, Work: 1e8, CommBytes: 1 << 18, CommCount: 1})
	for i := 1; i <= r; i++ {
		prev := graph.None
		for j := 1; j <= i; j++ {
			s := body.AddTask(&graph.Task{Name: "step", Kind: graph.KindBasic,
				Work: 1e8, CommBytes: 1 << 18, CommCount: 1})
			if prev != graph.None {
				body.MustEdge(prev, s, 1<<18)
			}
			prev = s
		}
		body.MustEdge(prev, combine, 1<<18)
	}
	body.AddStartStop()

	top := graph.New("top")
	init := top.AddTask(&graph.Task{Name: "init", Kind: graph.KindBasic, Work: 1e7})
	while := top.AddTask(&graph.Task{Name: "while", Kind: graph.KindComposed,
		Work: body.TotalWork(), Sub: body})
	top.MustEdge(init, while, 8)
	top.AddStartStop()
	return top
}

func TestScheduleHierarchical(t *testing.T) {
	g := buildHierarchical(4)
	s := &Scheduler{Model: model(8)}
	hs, err := s.ScheduleHierarchical(g, 32)
	if err != nil {
		t.Fatal(err)
	}
	if hs.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", hs.Depth())
	}
	if err := hs.Top.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(hs.Sub) != 1 {
		t.Fatalf("expected one composed body, got %d", len(hs.Sub))
	}
	for id, sub := range hs.Sub {
		// The while node is alone in its layer and gets all cores.
		li := hs.Top.LayerOf(id)
		gi := hs.Top.Layers[li].GroupOf(id)
		if got := hs.Top.Layers[li].Sizes[gi]; got != 32 {
			t.Fatalf("while node got %d cores, want 32", got)
		}
		if sub.Top.P != 32 {
			t.Fatalf("body scheduled on %d cores", sub.Top.P)
		}
		if err := sub.Top.Validate(); err != nil {
			t.Fatal(err)
		}
		// The body's first layer exploits the chain task parallelism.
		if sub.Top.Layers[0].NumGroups() < 2 {
			t.Fatalf("body layer not task parallel: %d groups", sub.Top.Layers[0].NumGroups())
		}
	}
	// Time with 10 loop iterations exceeds time with 1.
	t1 := hs.TotalTime(func(graph.TaskID) int { return 1 })
	t10 := hs.TotalTime(func(graph.TaskID) int { return 10 })
	if !(t10 > t1) {
		t.Fatalf("iteration scaling broken: %g vs %g", t1, t10)
	}
}

func TestScheduleHierarchicalNested(t *testing.T) {
	// A composed node whose body contains another composed node.
	inner := graph.New("inner")
	inner.AddTask(&graph.Task{Name: "leaf", Kind: graph.KindBasic, Work: 1e7})
	inner.AddStartStop()

	mid := graph.New("mid")
	mid.AddTask(&graph.Task{Name: "pre", Kind: graph.KindBasic, Work: 1e7})
	mid.AddTask(&graph.Task{Name: "loop", Kind: graph.KindComposed, Work: 1e7, Sub: inner})
	mid.AddStartStop()

	top := graph.New("top")
	top.AddTask(&graph.Task{Name: "outer", Kind: graph.KindComposed, Work: 2e7, Sub: mid})
	top.AddStartStop()

	s := &Scheduler{Model: model(2)}
	hs, err := s.ScheduleHierarchical(top, 8)
	if err != nil {
		t.Fatal(err)
	}
	if hs.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", hs.Depth())
	}
}

func TestScheduleHierarchicalMissingBody(t *testing.T) {
	g := graph.New("bad")
	g.AddTask(&graph.Task{Name: "loop", Kind: graph.KindComposed, Work: 1})
	s := &Scheduler{Model: model(1)}
	if _, err := s.ScheduleHierarchical(g, 4); err == nil {
		t.Fatal("composed node without body accepted")
	}
}
