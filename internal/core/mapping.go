package core

import (
	"context"
	"fmt"

	"mtask/internal/arch"
	"mtask/internal/graph"
)

// Strategy defines a mapping strategy: an ordering of the physical cores
// of a machine (Section 3.4). Group Gi of a layer is mapped onto the
// contiguous slice of the sequence following the groups G1..Gi-1, so the
// sequence alone determines the mapping function F_W.
type Strategy interface {
	// Name returns the strategy name for reports.
	Name() string
	// Sequence returns the machine's physical cores in mapping order.
	// The sequence contains every core exactly once.
	Sequence(m *arch.Machine) []arch.CoreID
}

// Consecutive orders cores so that cores of the same node are adjacent:
// 1.1.1, 1.1.2, ..., 1.p.c, 2.1.1, ... Group-internal communication stays
// inside nodes whenever groups are at most a node wide.
type Consecutive struct{}

// Name implements Strategy.
func (Consecutive) Name() string { return "consecutive" }

// Sequence implements Strategy.
func (Consecutive) Sequence(m *arch.Machine) []arch.CoreID { return m.AllCores() }

// Scattered orders cores so that corresponding cores of different nodes are
// adjacent: 1.1.1, 2.1.1, ..., n.1.1, 1.1.2, ... Group-internal
// communication crosses nodes; orthogonal communication between
// corresponding cores of concurrent groups stays inside nodes.
type Scattered struct{}

// Name implements Strategy.
func (Scattered) Name() string { return "scattered" }

// Sequence implements Strategy.
func (Scattered) Sequence(m *arch.Machine) []arch.CoreID {
	cores := make([]arch.CoreID, 0, m.TotalCores())
	for p := 0; p < m.ProcsPerNode; p++ {
		for c := 0; c < m.CoresPerProc; c++ {
			for n := 0; n < m.Nodes; n++ {
				cores = append(cores, arch.CoreID{Node: n, Proc: p, Core: c})
			}
		}
	}
	return cores
}

// Mixed orders cores in blocks of D consecutive cores per node: the first D
// cores of node 1, the first D cores of node 2, ..., then the next D cores
// of node 1, and so on. D=1 degenerates to Scattered; D = cores per node
// degenerates to Consecutive.
type Mixed struct{ D int }

// Name implements Strategy.
func (s Mixed) Name() string { return fmt.Sprintf("mixed(d=%d)", s.D) }

// Sequence implements Strategy.
func (s Mixed) Sequence(m *arch.Machine) []arch.CoreID {
	d := s.D
	cpn := m.CoresPerNode()
	if d < 1 {
		d = 1
	}
	if d > cpn {
		d = cpn
	}
	cores := make([]arch.CoreID, 0, m.TotalCores())
	// nodeCores[n] is the canonical core order within node n.
	for off := 0; off < cpn; off += d {
		end := off + d
		if end > cpn {
			end = cpn
		}
		for n := 0; n < m.Nodes; n++ {
			for k := off; k < end; k++ {
				cores = append(cores, arch.CoreID{
					Node: n,
					Proc: k / m.CoresPerProc,
					Core: k % m.CoresPerProc,
				})
			}
		}
	}
	return cores
}

// StrategyByName returns the named strategy: "consecutive", "scattered" or
// "mixed:<d>".
func StrategyByName(name string) (Strategy, error) {
	switch name {
	case "consecutive":
		return Consecutive{}, nil
	case "scattered":
		return Scattered{}, nil
	}
	var d int
	if n, err := fmt.Sscanf(name, "mixed:%d", &d); n == 1 && err == nil {
		return Mixed{D: d}, nil
	}
	return nil, fmt.Errorf("core: unknown mapping strategy %q", name)
}

// Mapping is the physical realization of a Schedule: for every layer and
// every group, the set of physical cores executing that group, in rank
// order (the rank order determines ring neighbourhoods of collectives).
type Mapping struct {
	Schedule *Schedule
	Machine  *arch.Machine
	Strategy Strategy

	// Cores[layer][group] lists the physical cores of the group.
	Cores [][][]arch.CoreID
}

// Map applies a mapping strategy to a schedule on the given machine. The
// machine must provide exactly the schedule's P cores (use arch.Machine
// Subset/SubsetCores to carve out a partition first).
func Map(s *Schedule, m *arch.Machine, strat Strategy) (*Mapping, error) {
	return MapCtx(context.Background(), s, m, strat)
}

// MapCtx is Map with cooperative cancellation: a canceled context returns
// an error wrapping ErrCanceled without touching the schedule.
func MapCtx(ctx context.Context, s *Schedule, m *arch.Machine, strat Strategy) (*Mapping, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mapping %q: %w (%w)", s.Source.Name, ErrCanceled, err)
	}
	if m.TotalCores() < s.P {
		return nil, fmt.Errorf("schedule needs %d cores, machine %q has %d: %w",
			s.P, m.Name, m.TotalCores(), ErrNoCores)
	}
	seq := strat.Sequence(m)
	mp := &Mapping{Schedule: s, Machine: m, Strategy: strat}
	// All per-layer group headers come from one slab sized to the total
	// group count, so mapping an L-layer schedule costs two allocations
	// instead of one per layer plus append growth.
	totalGroups := 0
	for _, ls := range s.Layers {
		totalGroups += ls.NumGroups()
	}
	hdrSlab := make([][]arch.CoreID, totalGroups)
	mp.Cores = make([][][]arch.CoreID, 0, len(s.Layers))
	for _, ls := range s.Layers {
		layerCores := hdrSlab[:ls.NumGroups():ls.NumGroups()]
		hdrSlab = hdrSlab[ls.NumGroups():]
		off := 0
		for gi, sz := range ls.Sizes {
			layerCores[gi] = seq[off : off+sz]
			off += sz
		}
		mp.Cores = append(mp.Cores, layerCores)
	}
	return mp, nil
}

// GroupCores returns the physical cores of group gi in layer li.
func (mp *Mapping) GroupCores(li int, gi GroupID) []arch.CoreID {
	return mp.Cores[li][int(gi)]
}

// TaskCores returns the physical cores executing the given scheduled task.
func (mp *Mapping) TaskCores(id graph.TaskID) []arch.CoreID {
	li := mp.Schedule.LayerOf(id)
	if li < 0 {
		return nil
	}
	gi := mp.Schedule.Layers[li].GroupOf(id)
	if gi < 0 {
		return nil
	}
	return mp.Cores[li][int(gi)]
}

// OrthogonalSets returns, for layer li, the sets of cores with the same
// position within different concurrently executing groups — the endpoints
// of the orthogonal communication operations of Section 4.2. Groups of
// different sizes contribute while they have a core at the position.
func (mp *Mapping) OrthogonalSets(li int) [][]arch.CoreID {
	groups := mp.Cores[li]
	maxLen := 0
	for _, g := range groups {
		if len(g) > maxLen {
			maxLen = len(g)
		}
	}
	var sets [][]arch.CoreID
	for pos := 0; pos < maxLen; pos++ {
		var set []arch.CoreID
		for _, g := range groups {
			if pos < len(g) {
				set = append(set, g[pos])
			}
		}
		if len(set) > 1 {
			sets = append(sets, set)
		}
	}
	return sets
}

// Validate checks that every layer's groups are pairwise disjoint and stay
// within the machine.
func (mp *Mapping) Validate() error {
	for li, layer := range mp.Cores {
		seen := make(map[arch.CoreID]int)
		for gi, cores := range layer {
			for _, c := range cores {
				if !mp.Machine.Contains(c) {
					return fmt.Errorf("core: layer %d group %d uses core %v outside machine", li, gi, c)
				}
				if prev, dup := seen[c]; dup {
					return fmt.Errorf("core: layer %d core %v in groups %d and %d", li, c, prev, gi)
				}
				seen[c] = gi
			}
		}
	}
	return nil
}
