package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"mtask/internal/arch"
	"mtask/internal/cost"
)

// equalSchedules compares every observable field of two schedules: layer
// structure, group task lists, group sizes and the predicted times down to
// the last bit.
func equalSchedules(t *testing.T, trial int, seq, par *Schedule) {
	t.Helper()
	if seq.Time != par.Time {
		t.Fatalf("trial %d: makespan differs: sequential %v parallel %v", trial, seq.Time, par.Time)
	}
	if seq.P != par.P || len(seq.Layers) != len(par.Layers) {
		t.Fatalf("trial %d: shape differs: %d cores/%d layers vs %d cores/%d layers",
			trial, seq.P, len(seq.Layers), par.P, len(par.Layers))
	}
	for li := range seq.Layers {
		a, b := seq.Layers[li], par.Layers[li]
		if a.Time != b.Time {
			t.Fatalf("trial %d: layer %d time differs: %v vs %v", trial, li, a.Time, b.Time)
		}
		if !reflect.DeepEqual(a.Groups, b.Groups) {
			t.Fatalf("trial %d: layer %d groups differ:\n%v\n%v", trial, li, a.Groups, b.Groups)
		}
		if !reflect.DeepEqual(a.Sizes, b.Sizes) {
			t.Fatalf("trial %d: layer %d sizes differ: %v vs %v", trial, li, a.Sizes, b.Sizes)
		}
	}
}

// TestParallelSchedulerMatchesSequential is the determinism property test
// of the concurrent group-count search: on randomized DAGs, machines and
// worker counts — with and without cost-model memoization — the parallel
// scheduler must produce a schedule identical to the sequential reference,
// layer assignment and makespan included. Run it under -race to also
// exercise the memo table and worker pool for data races.
func TestParallelSchedulerMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	machines := []*arch.Machine{
		arch.CHiC().Subset(2), arch.CHiC().Subset(8),
		arch.JuRoPA().Subset(4), arch.SGIAltix().Subset(6),
	}
	for trial := 0; trial < 60; trial++ {
		g := randomDAG(rng)
		mach := machines[rng.Intn(len(machines))]
		p := mach.TotalCores()
		base := Scheduler{
			Model:             &cost.Model{Machine: mach},
			DisableAdjustment: rng.Float64() < 0.3,
			RoundRobin:        rng.Float64() < 0.2,
		}
		if rng.Float64() < 0.3 {
			base.MinGroups = 1 + rng.Intn(3)
			base.MaxGroups = base.MinGroups + rng.Intn(8)
		}

		seqS := base
		seq, err := seqS.Schedule(g, p)
		if err != nil {
			t.Fatalf("trial %d: sequential: %v", trial, err)
		}

		parS := base
		parS.Parallel = 2 + rng.Intn(7)
		if rng.Float64() < 0.5 {
			parS.Model = parS.Model.WithMemo()
		}
		par, err := parS.Schedule(g, p)
		if err != nil {
			t.Fatalf("trial %d: parallel: %v", trial, err)
		}
		equalSchedules(t, trial, seq, par)
	}
}

// TestScheduleCtxCancellation checks that a canceled context aborts both
// search paths with an error wrapping ErrCanceled.
func TestScheduleCtxCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := randomDAG(rng)
	m := model(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 8} {
		s := &Scheduler{Model: m, Parallel: workers}
		_, err := s.ScheduleCtx(ctx, g, m.Machine.TotalCores())
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("workers=%d: got %v, want ErrCanceled", workers, err)
		}
	}
}

// TestScheduleNoCores checks the ErrNoCores sentinel on both Schedule and
// Map.
func TestScheduleNoCores(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomDAG(rng)
	m := model(2)
	if _, err := (&Scheduler{Model: m}).Schedule(g, 0); !errors.Is(err, ErrNoCores) {
		t.Fatalf("Schedule(0 cores) = %v, want ErrNoCores", err)
	}
	sched, err := (&Scheduler{Model: m}).Schedule(g, m.Machine.TotalCores())
	if err != nil {
		t.Fatal(err)
	}
	small := arch.CHiC().Subset(1)
	if _, err := Map(sched, small, Consecutive{}); !errors.Is(err, ErrNoCores) {
		t.Fatalf("Map on too-small machine = %v, want ErrNoCores", err)
	}
}

// TestGroupBounds checks that the search bounds narrow the group counts a
// schedule may use.
func TestGroupBounds(t *testing.T) {
	g := epolStep(6, 1e9, 1<<20)
	m := model(8)
	p := 32
	sched, err := (&Scheduler{Model: m, MinGroups: 2, MaxGroups: 3}).Schedule(g, p)
	if err != nil {
		t.Fatal(err)
	}
	for li, ls := range sched.Layers {
		n := ls.NumGroups()
		width := len(ls.Layer)
		wantMin := 2
		if width < wantMin {
			wantMin = width
		}
		if n < wantMin || n > 3 {
			t.Fatalf("layer %d (width %d) has %d groups, want within [%d, 3]", li, width, n, wantMin)
		}
	}
}
