package core

import (
	"fmt"
	"slices"

	"mtask/internal/graph"
)

// TaskDeps is the precomputed execution metadata of one scheduled task:
// where the schedule placed it and which other scheduled tasks must
// complete before it may start. It is the launch condition of the
// wavefront executor — a task is ready when every entry of Deps has
// completed, with no global layer barrier involved.
type TaskDeps struct {
	// ID is the task's id in the scheduled graph.
	ID graph.TaskID

	// Layer, Group and Slot locate the task in the schedule: layer
	// index, group within the layer, position in the group's ordered
	// task list.
	Layer int
	Group GroupID
	Slot  int

	// Deps lists the distinct scheduled tasks that must complete before
	// this one may start, in ascending id order. It is the union of
	//
	//   - the task's predecessors in the scheduled graph that are
	//     themselves assigned to a layer (data dependences; start/stop
	//     markers outside the layers carry no computation and are
	//     dropped), and
	//   - the task's predecessors in the occupancy chain of every
	//     symbolic rank of its group's interval (resource dependences:
	//     the prior occupant must release the rank).
	Deps []graph.TaskID

	// Succs is the inverse of Deps: the scheduled tasks that list this
	// one as a dependence, in ascending id order. Completing this task
	// decrements their outstanding-dependence counters.
	Succs []graph.TaskID
}

// Precedence is the dependence-driven execution metadata of a layered
// schedule, precomputed once per schedule so the wavefront dispatcher's
// hot path is counter decrements only.
//
// The layer barriers of the layered executor are a scheduling artifact,
// not a data dependence: a task may start as soon as its graph
// predecessors have completed AND every symbolic rank of its group's
// interval has been released by its prior-layer occupant. Precedence
// makes both conditions explicit per task.
type Precedence struct {
	// Sched is the schedule the metadata was derived from.
	Sched *Schedule

	// Tasks is indexed by scheduled-graph task id; entries for tasks
	// outside all layers (start/stop markers) are nil.
	Tasks []*TaskDeps

	// Scheduled lists the ids of all tasks assigned to layers in
	// deterministic schedule order: layer-major, then group, then slot.
	Scheduled []graph.TaskID

	// Chains[r] is the occupancy chain of symbolic rank r: the tasks
	// that execute on rank r, in execution order (layer-major; within a
	// layer, the rank's group's task list order). Consecutive chain
	// entries are the per-rank resource dependences.
	Chains [][]graph.TaskID

	// LayerCounts[li] is the number of scheduled tasks in layer li (the
	// wavefront executor's completed-layer checkpoint bookkeeping).
	LayerCounts []int
}

// PrecedenceOf derives the wavefront execution metadata from a layered
// schedule. The result depends only on the schedule and is safe to share
// between goroutines (it is never mutated after construction).
func PrecedenceOf(s *Schedule) (*Precedence, error) {
	if s == nil {
		return nil, fmt.Errorf("core: precedence of nil schedule")
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("core: precedence: %w", err)
	}
	p := &Precedence{
		Sched:       s,
		Tasks:       make([]*TaskDeps, s.Graph.Len()),
		Chains:      make([][]graph.TaskID, s.P),
		LayerCounts: make([]int, len(s.Layers)),
	}

	// Placement pass: one TaskDeps per scheduled task, plus the per-rank
	// occupancy chains (a group's interval executes the group's task
	// list in order, so every rank of the interval appends that list).
	for li, ls := range s.Layers {
		for gi, tasks := range ls.Groups {
			lo, hi := ls.RankRange(GroupID(gi))
			for slot, id := range tasks {
				p.Tasks[id] = &TaskDeps{ID: id, Layer: li, Group: GroupID(gi), Slot: slot}
				p.Scheduled = append(p.Scheduled, id)
				p.LayerCounts[li]++
				for r := lo; r < hi; r++ {
					p.Chains[r] = append(p.Chains[r], id)
				}
			}
		}
	}

	// Dependence pass: graph predecessors restricted to scheduled tasks,
	// plus the rank predecessor of every chain link.
	depSet := make([]map[graph.TaskID]bool, s.Graph.Len())
	dep := func(id, on graph.TaskID) {
		if depSet[id] == nil {
			depSet[id] = make(map[graph.TaskID]bool)
		}
		depSet[id][on] = true
	}
	for _, id := range p.Scheduled {
		for _, pr := range s.Graph.Pred(id) {
			if p.Tasks[pr] != nil {
				dep(id, pr)
			}
		}
	}
	for _, chain := range p.Chains {
		for i := 1; i < len(chain); i++ {
			dep(chain[i], chain[i-1])
		}
	}
	for _, id := range p.Scheduled {
		td := p.Tasks[id]
		for on := range depSet[id] {
			td.Deps = append(td.Deps, on)
			p.Tasks[on].Succs = append(p.Tasks[on].Succs, id)
		}
	}
	for _, id := range p.Scheduled {
		slices.Sort(p.Tasks[id].Deps)
		slices.Sort(p.Tasks[id].Succs)
	}

	// Soundness: a dependence never points forward in the schedule
	// (same layer only within one group's list, at an earlier slot), so
	// counting down Deps can never deadlock.
	for _, id := range p.Scheduled {
		td := p.Tasks[id]
		for _, on := range td.Deps {
			od := p.Tasks[on]
			if od.Layer > td.Layer || (od.Layer == td.Layer && (od.Group != td.Group || od.Slot >= td.Slot)) {
				return nil, fmt.Errorf("core: precedence: task %d (layer %d group %d slot %d) depends on later task %d (layer %d group %d slot %d)",
					id, td.Layer, td.Group, td.Slot, on, od.Layer, od.Group, od.Slot)
			}
		}
	}
	return p, nil
}
