package core

import (
	"fmt"

	"mtask/internal/graph"
)

// TaskDeps is the precomputed execution metadata of one scheduled task:
// where the schedule placed it and which other scheduled tasks must
// complete before it may start. It is the launch condition of the
// wavefront executor — a task is ready when every entry of Deps has
// completed, with no global layer barrier involved.
type TaskDeps struct {
	// ID is the task's id in the scheduled graph.
	ID graph.TaskID

	// Layer, Group and Slot locate the task in the schedule: layer
	// index, group within the layer, position in the group's ordered
	// task list.
	Layer int
	Group GroupID
	Slot  int

	// Lo and Hi are the half-open symbolic core interval [Lo, Hi)
	// occupied by the task's group in its layer. The persistent-worker
	// dispatcher is keyed on it: the worker of rank Lo leads the task,
	// the workers of (Lo, Hi) run the remaining group ranks.
	Lo, Hi int

	// Deps lists the distinct scheduled tasks that must complete before
	// this one may start, in ascending id order. It is the union of
	//
	//   - the task's predecessors in the scheduled graph that are
	//     themselves assigned to a layer (data dependences; start/stop
	//     markers outside the layers carry no computation and are
	//     dropped), and
	//   - the task's predecessors in the occupancy chain of every
	//     symbolic rank of its group's interval (resource dependences:
	//     the prior occupant must release the rank).
	Deps []graph.TaskID

	// Succs is the inverse of Deps: the scheduled tasks that list this
	// one as a dependence, in ascending id order. Completing this task
	// decrements their outstanding-dependence counters.
	Succs []graph.TaskID
}

// Precedence is the dependence-driven execution metadata of a layered
// schedule, precomputed once per schedule so the wavefront dispatcher's
// hot path is counter decrements only.
//
// The layer barriers of the layered executor are a scheduling artifact,
// not a data dependence: a task may start as soon as its graph
// predecessors have completed AND every symbolic rank of its group's
// interval has been released by its prior-layer occupant. Precedence
// makes both conditions explicit per task.
//
// Construction is slab-backed: all TaskDeps entries, the Deps/Succs
// lists, the chains and the scheduled order are carved from a constant
// number of exactly-counted allocations, so deriving the metadata for a
// million-task schedule performs no per-task map work (the former
// per-task dedup maps dominated PrecedenceOf at -scale sizes).
type Precedence struct {
	// Sched is the schedule the metadata was derived from.
	Sched *Schedule

	// Tasks is indexed by scheduled-graph task id; entries for tasks
	// outside all layers (start/stop markers) are nil.
	Tasks []*TaskDeps

	// Scheduled lists the ids of all tasks assigned to layers in
	// deterministic schedule order: layer-major, then group, then slot.
	Scheduled []graph.TaskID

	// Chains[r] is the occupancy chain of symbolic rank r: the tasks
	// that execute on rank r, in execution order (layer-major; within a
	// layer, the rank's group's task list order). Consecutive chain
	// entries are the per-rank resource dependences.
	Chains [][]graph.TaskID

	// LayerCounts[li] is the number of scheduled tasks in layer li (the
	// wavefront executor's completed-layer checkpoint bookkeeping).
	LayerCounts []int

	// MaxGroup is the largest rank-interval size over all scheduled
	// tasks (the group-attempt scratch bound of the persistent-worker
	// dispatcher).
	MaxGroup int
}

// PrecedenceOf derives the wavefront execution metadata from a layered
// schedule. The result depends only on the schedule and is safe to share
// between goroutines (it is never mutated after construction).
func PrecedenceOf(s *Schedule) (*Precedence, error) {
	if s == nil {
		return nil, fmt.Errorf("core: precedence of nil schedule")
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("core: precedence: %w", err)
	}

	total := 0
	for _, ls := range s.Layers {
		total += len(ls.Layer)
	}
	p := &Precedence{
		Sched:       s,
		Tasks:       make([]*TaskDeps, s.Graph.Len()),
		Scheduled:   make([]graph.TaskID, 0, total),
		Chains:      make([][]graph.TaskID, s.P),
		LayerCounts: make([]int, len(s.Layers)),
	}

	// Placement pass: one TaskDeps per scheduled task (from one slab),
	// rank intervals from the running size prefix, and exact chain
	// lengths per rank (a group's interval executes the group's task
	// list in order, so every rank of the interval carries that list).
	tdSlab := make([]TaskDeps, total)
	chainLen := make([]int, s.P)
	next := 0
	for li, ls := range s.Layers {
		lo := 0
		for gi, tasks := range ls.Groups {
			hi := lo + ls.Sizes[gi]
			if sz := hi - lo; sz > p.MaxGroup {
				p.MaxGroup = sz
			}
			for slot, id := range tasks {
				td := &tdSlab[next]
				next++
				*td = TaskDeps{ID: id, Layer: li, Group: GroupID(gi), Slot: slot, Lo: lo, Hi: hi}
				p.Tasks[id] = td
				p.Scheduled = append(p.Scheduled, id)
				p.LayerCounts[li]++
			}
			for r := lo; r < hi; r++ {
				chainLen[r] += len(tasks)
			}
			lo = hi
		}
	}

	// Chain pass: carve the per-rank chains from one slab and fill them
	// layer-major. While filling, count the dependence candidates of
	// every task: its scheduled graph predecessors plus one chain
	// predecessor per rank of its interval (except the rank's first
	// occupant).
	chainTotal := 0
	for _, n := range chainLen {
		chainTotal += n
	}
	chainSlab := make([]graph.TaskID, chainTotal)
	off := 0
	for r, n := range chainLen {
		p.Chains[r] = chainSlab[off : off : off+n]
		off += n
	}
	nCand := make([]int, s.Graph.Len())
	for _, ls := range s.Layers {
		lo := 0
		for gi, tasks := range ls.Groups {
			hi := lo + ls.Sizes[gi]
			for r := lo; r < hi; r++ {
				for _, id := range tasks {
					if len(p.Chains[r]) > 0 {
						nCand[id]++ // chain predecessor on rank r
					}
					p.Chains[r] = append(p.Chains[r], id)
				}
			}
			lo = hi
		}
	}
	for _, id := range p.Scheduled {
		for _, pr := range s.Graph.Pred(id) {
			if p.Tasks[pr] != nil {
				nCand[id]++
			}
		}
	}

	// Dependence pass: gather every task's candidates into one slab,
	// then sort and dedup each range in place. The deduped prefix is the
	// task's Deps list; no per-task map is ever built.
	candTotal := 0
	for _, id := range p.Scheduled {
		candTotal += nCand[id]
	}
	candSlab := make([]graph.TaskID, candTotal)
	candOff := make([]int, s.Graph.Len())
	off = 0
	for _, id := range p.Scheduled {
		candOff[id] = off
		off += nCand[id]
	}
	fill := nCand // reuse as fill cursor: reset, then count back up
	for i := range fill {
		fill[i] = 0
	}
	put := func(id, on graph.TaskID) {
		candSlab[candOff[id]+fill[id]] = on
		fill[id]++
	}
	for _, chain := range p.Chains {
		for i := 1; i < len(chain); i++ {
			put(chain[i], chain[i-1])
		}
	}
	for _, id := range p.Scheduled {
		for _, pr := range s.Graph.Pred(id) {
			if p.Tasks[pr] != nil {
				put(id, pr)
			}
		}
	}
	succCount := make([]int, s.Graph.Len())
	for _, id := range p.Scheduled {
		td := p.Tasks[id]
		cand := candSlab[candOff[id] : candOff[id]+fill[id]]
		sortTaskIDs(cand)
		uniq := cand[:0]
		for i, on := range cand {
			if i == 0 || on != cand[i-1] {
				uniq = append(uniq, on)
			}
		}
		td.Deps = uniq
		for _, on := range uniq {
			succCount[on]++
		}
	}

	// Succs pass: the exact inverse. Scheduled ids are visited in
	// schedule order, but each successor list must be ascending by id —
	// fill by ascending id so no per-list sort is needed.
	succTotal := 0
	for _, id := range p.Scheduled {
		succTotal += succCount[id]
	}
	succSlab := make([]graph.TaskID, succTotal)
	off = 0
	for _, id := range p.Scheduled {
		td := p.Tasks[id]
		td.Succs = succSlab[off : off : off+succCount[id]]
		off += succCount[id]
	}
	for id := 0; id < len(p.Tasks); id++ {
		td := p.Tasks[id]
		if td == nil {
			continue
		}
		for _, on := range td.Deps {
			od := p.Tasks[on]
			od.Succs = append(od.Succs, graph.TaskID(id))
		}
	}

	// Soundness: a dependence never points forward in the schedule
	// (same layer only within one group's list, at an earlier slot), so
	// counting down Deps can never deadlock.
	for _, id := range p.Scheduled {
		td := p.Tasks[id]
		for _, on := range td.Deps {
			od := p.Tasks[on]
			if od.Layer > td.Layer || (od.Layer == td.Layer && (od.Group != td.Group || od.Slot >= td.Slot)) {
				return nil, fmt.Errorf("core: precedence: task %d (layer %d group %d slot %d) depends on later task %d (layer %d group %d slot %d)",
					id, td.Layer, td.Group, td.Slot, on, od.Layer, od.Group, od.Slot)
			}
		}
	}
	return p, nil
}

// sortTaskIDs sorts ids ascending in place. Insertion sort: dependence
// candidate lists are short (a task's graph predecessors plus one entry
// per rank of its interval, mostly duplicates), and unlike sort.Slice it
// allocates nothing — PrecedenceOf runs once per wavefront pass and must
// not pay per-task allocations at million-task sizes.
func sortTaskIDs(s []graph.TaskID) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}
