package core

import (
	"math/rand"
	"testing"

	"mtask/internal/graph"
)

// TestPrecedenceChain: a 3-task chain scheduled in 3 layers of one group
// each must yield a pure chain of dependences (graph preds and rank preds
// coincide and are deduplicated).
func TestPrecedenceChain(t *testing.T) {
	g := graph.New("chain")
	a := g.AddBasic("a", 1e8)
	b := g.AddBasic("b", 1e8)
	c := g.AddBasic("c", 1e8)
	g.MustEdge(a, b, 8)
	g.MustEdge(b, c, 8)
	s := &Scheduler{Model: model(2), DisableChainContraction: true}
	sched, err := s.Schedule(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PrecedenceOf(sched)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Scheduled) != 3 {
		t.Fatalf("scheduled %d tasks, want 3", len(p.Scheduled))
	}
	if d := p.Tasks[a].Deps; len(d) != 0 {
		t.Fatalf("a has deps %v, want none", d)
	}
	for _, pair := range [][2]graph.TaskID{{a, b}, {b, c}} {
		if d := p.Tasks[pair[1]].Deps; len(d) != 1 || d[0] != pair[0] {
			t.Fatalf("task %d deps = %v, want [%d]", pair[1], d, pair[0])
		}
		if su := p.Tasks[pair[0]].Succs; len(su) != 1 || su[0] != pair[1] {
			t.Fatalf("task %d succs = %v, want [%d]", pair[0], su, pair[1])
		}
	}
	// Every rank runs the whole chain, in order.
	if len(p.Chains) != 4 {
		t.Fatalf("%d chains, want 4", len(p.Chains))
	}
	for r, chain := range p.Chains {
		if len(chain) != 3 || chain[0] != a || chain[1] != b || chain[2] != c {
			t.Fatalf("rank %d chain = %v, want [a b c]", r, chain)
		}
	}
}

// TestPrecedenceInvariantsRandomDAGs checks, for random DAGs through the
// real scheduler, that the precedence metadata is sound and complete:
// every scheduled task has an entry, dependences point strictly backwards
// in the schedule, graph predecessors and rank-occupancy predecessors are
// all covered, Succs is the exact inverse of Deps, and counter-driven
// execution (the wavefront dispatcher's algorithm) completes every task.
func TestPrecedenceInvariantsRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		g := randomDAG(rng)
		s := &Scheduler{Model: model(2), DisableChainContraction: rng.Float64() < 0.5}
		sched, err := s.Schedule(g, 2+rng.Intn(15))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		p, err := PrecedenceOf(sched)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// Entries exactly for layered tasks; markers have none.
		want := 0
		for _, ls := range sched.Layers {
			want += len(ls.Layer)
		}
		if len(p.Scheduled) != want {
			t.Fatalf("trial %d: %d scheduled entries, want %d", trial, len(p.Scheduled), want)
		}
		for id := range p.Tasks {
			inLayer := sched.LayerOf(graph.TaskID(id)) >= 0
			if (p.Tasks[id] != nil) != inLayer {
				t.Fatalf("trial %d: task %d entry mismatch (in layer: %v)", trial, id, inLayer)
			}
		}

		// Graph predecessors within layers are always dependences.
		for _, id := range p.Scheduled {
			deps := make(map[graph.TaskID]bool)
			for _, d := range p.Tasks[id].Deps {
				deps[d] = true
			}
			for _, pr := range sched.Graph.Pred(id) {
				if p.Tasks[pr] != nil && !deps[pr] {
					t.Fatalf("trial %d: graph pred %d of %d missing from deps", trial, pr, id)
				}
			}
		}

		// Chains: rank r's chain is the concatenation, layer by layer, of
		// the task list of the group owning r; consecutive chain entries
		// are dependences.
		for r := 0; r < sched.P; r++ {
			var wantChain []graph.TaskID
			for _, ls := range sched.Layers {
				gi := ls.GroupOfRank(r)
				wantChain = append(wantChain, ls.Groups[gi]...)
			}
			got := p.Chains[r]
			if len(got) != len(wantChain) {
				t.Fatalf("trial %d: rank %d chain length %d, want %d", trial, r, len(got), len(wantChain))
			}
			for i := range got {
				if got[i] != wantChain[i] {
					t.Fatalf("trial %d: rank %d chain[%d] = %d, want %d", trial, r, i, got[i], wantChain[i])
				}
			}
			for i := 1; i < len(got); i++ {
				found := false
				for _, d := range p.Tasks[got[i]].Deps {
					if d == got[i-1] {
						found = true
					}
				}
				if !found {
					t.Fatalf("trial %d: rank %d chain link %d->%d not a dependence", trial, r, got[i-1], got[i])
				}
			}
		}

		// Succs is the exact inverse of Deps.
		succCount := 0
		for _, id := range p.Scheduled {
			for _, su := range p.Tasks[id].Succs {
				succCount++
				found := false
				for _, d := range p.Tasks[su].Deps {
					if d == id {
						found = true
					}
				}
				if !found {
					t.Fatalf("trial %d: succ %d of %d has no matching dep", trial, su, id)
				}
			}
		}
		depCount := 0
		for _, id := range p.Scheduled {
			depCount += len(p.Tasks[id].Deps)
		}
		if succCount != depCount {
			t.Fatalf("trial %d: %d succ edges, %d dep edges", trial, succCount, depCount)
		}

		// Counter-driven execution completes everything (no deadlock) and
		// the per-layer counts add up.
		remaining := make(map[graph.TaskID]int)
		var ready []graph.TaskID
		for _, id := range p.Scheduled {
			remaining[id] = len(p.Tasks[id].Deps)
			if remaining[id] == 0 {
				ready = append(ready, id)
			}
		}
		done := 0
		for len(ready) > 0 {
			id := ready[len(ready)-1]
			ready = ready[:len(ready)-1]
			done++
			for _, su := range p.Tasks[id].Succs {
				remaining[su]--
				if remaining[su] == 0 {
					ready = append(ready, su)
				}
			}
		}
		if done != len(p.Scheduled) {
			t.Fatalf("trial %d: counter execution completed %d of %d tasks", trial, done, len(p.Scheduled))
		}
		total := 0
		for _, c := range p.LayerCounts {
			total += c
		}
		if total != len(p.Scheduled) {
			t.Fatalf("trial %d: layer counts sum to %d, want %d", trial, total, len(p.Scheduled))
		}
	}
}

// layerOfScan is the pre-memoization reference implementation of LayerOf.
func layerOfScan(s *Schedule, id graph.TaskID) int {
	for li, ls := range s.Layers {
		for _, t := range ls.Layer {
			if t == id {
				return li
			}
		}
	}
	return -1
}

// TestLayerOfMemoMatchesScan: the memoized LayerOf must agree with the
// linear scan for every task id (including markers outside layers and
// out-of-range ids).
func TestLayerOfMemoMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		g := randomDAG(rng)
		sched, err := (&Scheduler{Model: model(2)}).Schedule(g, 8)
		if err != nil {
			t.Fatal(err)
		}
		for id := -1; id <= sched.Graph.Len(); id++ {
			want := layerOfScan(sched, graph.TaskID(id))
			if got := sched.LayerOf(graph.TaskID(id)); got != want {
				t.Fatalf("trial %d: LayerOf(%d) = %d, want %d", trial, id, got, want)
			}
		}
	}
}

// BenchmarkScheduleLayerOf measures resolving the layer of every scheduled
// task — the access pattern of the mapper and the precedence builder. The
// memoized index keeps this linear; the old per-call scan was quadratic.
func BenchmarkScheduleLayerOf(b *testing.B) {
	g := graph.New("wide")
	const n = 256
	ids := make([]graph.TaskID, n)
	for i := 0; i < n; i++ {
		ids[i] = g.AddBasic("t", 1e8)
		if i > 0 {
			g.MustEdge(ids[i-1], ids[i], 8)
		}
	}
	sched, err := (&Scheduler{Model: model(2), DisableChainContraction: true}).Schedule(g, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("memoized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, id := range ids {
				if sched.LayerOf(id) < 0 {
					b.Fatal("missing layer")
				}
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, id := range ids {
				if layerOfScan(sched, id) < 0 {
					b.Fatal("missing layer")
				}
			}
		}
	})
}
