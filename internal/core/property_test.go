package core

import (
	"math/rand"
	"testing"

	"mtask/internal/arch"
	"mtask/internal/graph"
)

// randomDAG builds a random M-task DAG with the given seed.
func randomDAG(rng *rand.Rand) *graph.Graph {
	g := graph.New("random")
	n := 3 + rng.Intn(24)
	for i := 0; i < n; i++ {
		t := &graph.Task{
			Name: "t",
			Kind: graph.KindBasic,
			Work: float64(1+rng.Intn(100)) * 1e7,
		}
		if rng.Float64() < 0.5 {
			t.CommBytes = 1 << (10 + rng.Intn(10))
			t.CommCount = 1 + rng.Intn(4)
		}
		if rng.Float64() < 0.1 {
			t.MaxWidth = 1 + rng.Intn(8)
		}
		g.AddTask(t)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.15 {
				g.MustEdge(graph.TaskID(i), graph.TaskID(j), 1<<(8+rng.Intn(8)))
			}
		}
	}
	if rng.Float64() < 0.5 {
		g.AddStartStop()
	}
	return g
}

// TestSchedulerInvariantsRandomDAGs checks the structural invariants of
// the full pipeline (schedule -> validate -> map -> validate) on random
// DAGs, machines and mapping strategies.
func TestSchedulerInvariantsRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	machines := []*arch.Machine{
		arch.CHiC().Subset(2), arch.CHiC().Subset(7),
		arch.JuRoPA().Subset(3), arch.SGIAltix().Subset(5),
	}
	strats := []Strategy{Consecutive{}, Scattered{}, Mixed{D: 2}, Mixed{D: 3}}
	for trial := 0; trial < 60; trial++ {
		g := randomDAG(rng)
		mach := machines[rng.Intn(len(machines))]
		p := mach.TotalCores()
		s := &Scheduler{
			Model:                   model(2),
			DisableChainContraction: rng.Float64() < 0.3,
			DisableAdjustment:       rng.Float64() < 0.3,
			RoundRobin:              rng.Float64() < 0.2,
		}
		s.Model.Machine = mach
		sched, err := s.Schedule(g, p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := sched.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Every basic task of the source graph appears in exactly one
		// scheduled node's expansion.
		seen := make(map[graph.TaskID]int)
		for _, ls := range sched.Layers {
			for _, grp := range ls.Groups {
				for _, id := range grp {
					for _, src := range sched.SourceTasks(id) {
						seen[src]++
					}
				}
			}
		}
		for _, task := range g.Tasks() {
			if task.Kind != graph.KindBasic {
				continue
			}
			if seen[task.ID] != 1 {
				t.Fatalf("trial %d: source task %d scheduled %d times", trial, task.ID, seen[task.ID])
			}
		}
		// Layer order respects every source edge.
		layerOfSrc := make(map[graph.TaskID]int)
		for li, ls := range sched.Layers {
			for _, grp := range ls.Groups {
				for _, id := range grp {
					for _, src := range sched.SourceTasks(id) {
						layerOfSrc[src] = li
					}
				}
			}
		}
		for _, e := range g.Edges() {
			lf, okF := layerOfSrc[e.From]
			lt, okT := layerOfSrc[e.To]
			if !okF || !okT {
				continue // markers
			}
			if lf > lt {
				t.Fatalf("trial %d: edge %d->%d spans layers %d -> %d", trial, e.From, e.To, lf, lt)
			}
		}
		// Mapping invariants for a random strategy.
		mp, err := Map(sched, mach, strats[rng.Intn(len(strats))])
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := mp.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestScheduleTimeLowerBounds checks that the predicted schedule time is
// never below the two trivial lower bounds: total work / P and the
// critical-path work, both converted by the machine's core rate.
func TestScheduleTimeLowerBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := model(4)
	p := m.Machine.TotalCores()
	rate := m.Machine.CoreGFlops * 1e9
	for trial := 0; trial < 40; trial++ {
		g := randomDAG(rng)
		sched, err := (&Scheduler{Model: m}).Schedule(g, p)
		if err != nil {
			t.Fatal(err)
		}
		areaBound := g.TotalWork() / (float64(p) * rate)
		cpBound := g.CriticalPathWork() / rate * 0 // critical path may use all P cores per task
		_ = cpBound
		// The critical path executed with full parallelism per task:
		cpAtP := g.CriticalPathWork() / (float64(p) * rate)
		if sched.Time < areaBound*(1-1e-9) {
			t.Fatalf("trial %d: schedule time %g below area bound %g", trial, sched.Time, areaBound)
		}
		if sched.Time < cpAtP*(1-1e-9) {
			t.Fatalf("trial %d: schedule time %g below critical path bound %g", trial, sched.Time, cpAtP)
		}
	}
}
