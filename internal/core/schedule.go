// Package core implements the paper's primary contribution: the combined
// scheduling and mapping of M-task programs for hierarchical multi-core
// clusters (Section 3).
//
// Scheduling (Section 3.2) proceeds in three steps on symbolic cores:
// linear chains of the M-task graph are contracted, the contracted graph is
// partitioned into layers of independent tasks, and each layer is scheduled
// by searching over the number g of equal-size core groups, assigning tasks
// to groups with a greedy LPT heuristic and finally adjusting group sizes
// to the assigned computational work (Algorithm 1).
//
// Mapping (Section 3.4) assigns the symbolic cores of the schedule to
// physical cores of an architecture via a strategy-defined sequence of the
// physical cores: consecutive, scattered, or mixed with block size d.
package core

import (
	"fmt"
	"strings"
	"sync"

	"mtask/internal/graph"
)

// GroupID identifies a core group within one layer.
type GroupID int

// LayerSchedule is the schedule of one layer: a partitioning of the P
// symbolic cores into groups and, per group, the ordered list of tasks the
// group executes one after another.
type LayerSchedule struct {
	// Layer lists the task ids (in the scheduled graph) of this layer.
	Layer graph.Layer

	// Groups[i] is the ordered task list of group i.
	Groups [][]graph.TaskID

	// Sizes[i] is the number of symbolic cores of group i. The sizes
	// sum to the total number of cores P.
	Sizes []int

	// Time is the predicted symbolic execution time of the layer
	// (the maximum accumulated group time).
	Time float64
}

// NumGroups returns the number of core groups of the layer.
func (ls *LayerSchedule) NumGroups() int { return len(ls.Groups) }

// GroupOfRank returns the group owning the given symbolic core rank via
// the size prefix sums, or -1 if the rank is out of range.
func (ls *LayerSchedule) GroupOfRank(rank int) GroupID {
	off := 0
	for g, sz := range ls.Sizes {
		if rank < off+sz {
			return GroupID(g)
		}
		off += sz
	}
	return -1
}

// RankRange returns the half-open symbolic core range [lo, hi) occupied by
// group gi (groups occupy consecutive rank blocks in group order).
func (ls *LayerSchedule) RankRange(gi GroupID) (lo, hi int) {
	for g, sz := range ls.Sizes {
		if GroupID(g) == gi {
			return lo, lo + sz
		}
		lo += sz
	}
	return lo, lo
}

// GroupOf returns the group index executing the given task, or -1.
func (ls *LayerSchedule) GroupOf(id graph.TaskID) GroupID {
	for gi, tasks := range ls.Groups {
		for _, t := range tasks {
			if t == id {
				return GroupID(gi)
			}
		}
	}
	return -1
}

// Schedule is a complete layered schedule of an M-task graph on P symbolic
// cores.
type Schedule struct {
	// Source is the original M-task graph.
	Source *graph.Graph

	// Graph is the scheduled graph: Source after linear-chain
	// contraction (identical to Source if contraction was disabled).
	Graph *graph.Graph

	// NodeOf maps original task ids to scheduled-graph ids.
	NodeOf []graph.TaskID

	// Layers holds the per-layer schedules in execution order.
	Layers []*LayerSchedule

	// P is the total number of symbolic cores.
	P int

	// Time is the predicted symbolic makespan: the sum of the layer
	// times (layers execute one after another).
	Time float64

	// layerIdx memoizes LayerOf: layerIdx[id] is the layer of scheduled
	// task id, or -1 for markers outside all layers. Built lazily on the
	// first LayerOf call — schedules are immutable once constructed.
	layerOnce sync.Once
	layerIdx  []int
}

// LayerOf returns the index of the layer containing the scheduled task, or
// -1 if the task is a start/stop marker outside all layers. The id→layer
// index is built once on first use (the former per-call linear scan over
// every layer made LayerOf O(V) — quadratic for callers resolving every
// task, such as the mapper and the precedence builder).
func (s *Schedule) LayerOf(id graph.TaskID) int {
	s.layerOnce.Do(func() {
		idx := make([]int, s.Graph.Len())
		for i := range idx {
			idx[i] = -1
		}
		for li, ls := range s.Layers {
			for _, t := range ls.Layer {
				idx[t] = li
			}
		}
		s.layerIdx = idx
	})
	if int(id) < 0 || int(id) >= len(s.layerIdx) {
		return -1
	}
	return s.layerIdx[id]
}

// MaxGroups returns the largest group count over all layers.
func (s *Schedule) MaxGroups() int {
	max := 0
	for _, ls := range s.Layers {
		if ls.NumGroups() > max {
			max = ls.NumGroups()
		}
	}
	return max
}

// String renders the schedule in a compact human-readable form.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule of %q on %d cores, %d layers, T=%.3gs\n",
		s.Source.Name, s.P, len(s.Layers), s.Time)
	for li, ls := range s.Layers {
		fmt.Fprintf(&b, "  layer %d (g=%d, T=%.3gs):\n", li, ls.NumGroups(), ls.Time)
		for gi, tasks := range ls.Groups {
			fmt.Fprintf(&b, "    group %d [%d cores]:", gi, ls.Sizes[gi])
			for _, id := range tasks {
				fmt.Fprintf(&b, " %s", s.Graph.Task(id).Name)
			}
			fmt.Fprintln(&b)
		}
	}
	return b.String()
}

// Validate checks the structural invariants of the schedule: every layer
// task is assigned to exactly one group, group sizes are positive and sum
// to P, and group task lists contain only layer tasks.
func (s *Schedule) Validate() error {
	for li, ls := range s.Layers {
		if len(ls.Groups) != len(ls.Sizes) {
			return fmt.Errorf("core: layer %d has %d groups but %d sizes", li, len(ls.Groups), len(ls.Sizes))
		}
		total := 0
		for gi, sz := range ls.Sizes {
			if sz <= 0 {
				return fmt.Errorf("core: layer %d group %d has size %d", li, gi, sz)
			}
			total += sz
		}
		if total != s.P {
			return fmt.Errorf("core: layer %d group sizes sum to %d, want %d", li, total, s.P)
		}
		inLayer := make(map[graph.TaskID]bool, len(ls.Layer))
		for _, id := range ls.Layer {
			inLayer[id] = true
		}
		seen := make(map[graph.TaskID]bool)
		for gi, tasks := range ls.Groups {
			for _, id := range tasks {
				if !inLayer[id] {
					return fmt.Errorf("core: layer %d group %d contains foreign task %d", li, gi, id)
				}
				if seen[id] {
					return fmt.Errorf("core: task %d assigned twice in layer %d", id, li)
				}
				seen[id] = true
			}
		}
		if len(seen) != len(ls.Layer) {
			return fmt.Errorf("core: layer %d assigns %d of %d tasks", li, len(seen), len(ls.Layer))
		}
	}
	return nil
}

// SourceTasks expands a scheduled-graph task back to the ordered list of
// original task ids it contains (chain members in chain order, or the task
// itself if it was not merged).
func (s *Schedule) SourceTasks(id graph.TaskID) []graph.TaskID {
	t := s.Graph.Task(id)
	if len(t.Members) == 0 {
		return []graph.TaskID{id}
	}
	return t.Members
}

// SameLayering verifies that b partitions the same source tasks into the
// same layers as a. This is the checkpoint-compatibility invariant of
// degrade-and-replan: layer barriers are the recovery checkpoints, so a
// schedule replanned on fewer cores must keep the layer partition (which
// depends only on the graph structure) while group counts and sizes may
// change freely.
func SameLayering(a, b *Schedule) error {
	if len(a.Layers) != len(b.Layers) {
		return fmt.Errorf("core: replanned schedule has %d layers, want %d", len(b.Layers), len(a.Layers))
	}
	sourceSet := func(s *Schedule, li int) map[graph.TaskID]bool {
		set := make(map[graph.TaskID]bool)
		for _, id := range s.Layers[li].Layer {
			for _, src := range s.SourceTasks(id) {
				set[src] = true
			}
		}
		return set
	}
	for li := range a.Layers {
		sa, sb := sourceSet(a, li), sourceSet(b, li)
		if len(sa) != len(sb) {
			return fmt.Errorf("core: replanned layer %d has %d source tasks, want %d", li, len(sb), len(sa))
		}
		for id := range sa {
			if !sb[id] {
				return fmt.Errorf("core: replanned layer %d is missing source task %d", li, id)
			}
		}
	}
	return nil
}
