package core

import (
	"slices"
	"sync"

	"mtask/internal/graph"
)

// taskTime pairs a task with its execution time on the smallest group size
// of a candidate partition; the g-search orders tasks by it (LPT).
type taskTime struct {
	id graph.TaskID
	t  float64
}

// searchScratch is the pooled arena backing one worker's g-search: every
// buffer a candidate evaluation needs — group sizes, the LPT-sorted task
// list, per-group loads, the load min-heap, and the winner's task-to-group
// assignment — lives here and is reused across candidates, layers, and
// plans. Capacities grow in power-of-two size classes (see growTo), so a
// scratch recycled through the pool serves any layer whose width fits its
// class without reallocating; evaluating a candidate allocates nothing.
type searchScratch struct {
	sizes []int
	tts   []taskTime
	load  []float64
	heap  []int32 // min-heap of group indices keyed by (load, index)
	asg   []int32 // task position (LPT order) -> assigned group
}

var searchScratchPool = sync.Pool{New: func() any { return new(searchScratch) }}

func getSearchScratch() *searchScratch   { return searchScratchPool.Get().(*searchScratch) }
func putSearchScratch(sc *searchScratch) { searchScratchPool.Put(sc) }

// growTo returns buf resized to n, reallocating to the next power-of-two
// capacity class only when n exceeds the current class. Rounding up means a
// pooled buffer is reused across the many slightly-different layer widths
// of a graph instead of chasing each one.
func growTo[T any](buf []T, n int) []T {
	if cap(buf) < n {
		c := 1
		for c < n {
			c <<= 1
		}
		buf = make([]T, c)
	}
	return buf[:n]
}

// prepare sizes every buffer for a candidate with gCount groups over a
// layer of the given width.
func (sc *searchScratch) prepare(gCount, width int) {
	sc.sizes = growTo(sc.sizes, gCount)
	sc.load = growTo(sc.load, gCount)
	sc.heap = growTo(sc.heap, gCount)
	sc.tts = growTo(sc.tts, width)
	sc.asg = growTo(sc.asg, width)
}

// sortTaskTimes orders tasks by decreasing execution time, ties by
// ascending id. Task ids within a layer are distinct, so the key is a
// total order and an unstable sort yields the same permutation the former
// stable sort did.
func sortTaskTimes(tts []taskTime) {
	slices.SortFunc(tts, func(a, b taskTime) int {
		if a.t != b.t {
			if a.t > b.t {
				return -1
			}
			return 1
		}
		if a.id < b.id {
			return -1
		}
		if a.id > b.id {
			return 1
		}
		return 0
	})
}

// heapLess orders group indices by accumulated load, ties by index — the
// "assign to the subset with the smallest accumulated execution time" rule.
func heapLess(h []int32, load []float64, i, j int) bool {
	a, b := h[i], h[j]
	if load[a] != load[b] {
		return load[a] < load[b]
	}
	return a < b
}

// siftDown restores the min-heap invariant after the root's load changed.
// Because (load, index) keys are totally ordered, the root before the
// update is the unique minimum, so "update root in place and sift" selects
// exactly the same group sequence as a pop/push pair — without the
// interface boxing of container/heap.
func siftDown(h []int32, load []float64, i int) {
	n := len(h)
	for {
		small := i
		if l := 2*i + 1; l < n && heapLess(h, load, l, small) {
			small = l
		}
		if r := 2*i + 2; r < n && heapLess(h, load, r, small) {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// candidateTime evaluates one (layer, gCount) candidate of Algorithm 1 and
// returns the resulting layer time without materializing the partition.
// The arithmetic — equal split, LPT order, per-group accumulation on the
// group's actual size — replays assign term by term, so minimizing over
// candidateTime and materializing only the winner with assign is
// bit-identical to materializing every candidate. Everything runs on the
// scratch arena; a call performs no heap allocation.
func (s *Scheduler) candidateTime(g *graph.Graph, layer graph.Layer, P, gCount int, sc *searchScratch) float64 {
	sc.prepare(gCount, len(layer))
	sizes := sc.sizes[:gCount]
	equalSizesInto(sizes, P, gCount)

	tts := sc.tts[:len(layer)]
	minSize := sizes[gCount-1]
	for i, id := range layer {
		tts[i] = taskTime{id: id, t: s.Model.SymbolicTaskTime(g.Task(id), minSize)}
	}
	sortTaskTimes(tts)

	load := sc.load[:gCount]
	for i := range load {
		load[i] = 0
	}
	if s.RoundRobin {
		for i, tt := range tts {
			gi := i % gCount
			load[gi] += s.Model.SymbolicTaskTime(g.Task(tt.id), sizes[gi])
		}
	} else {
		h := sc.heap[:gCount]
		// Ascending indices with all-zero loads already satisfy the
		// heap invariant; no Init needed.
		for i := range h {
			h[i] = int32(i)
		}
		for _, tt := range tts {
			gi := h[0]
			load[gi] += s.Model.SymbolicTaskTime(g.Task(tt.id), sizes[gi])
			siftDown(h, load, 0)
		}
	}
	var max float64
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	return max
}
