// Package cost implements the execution-time cost model of Section 3.1:
//
//	T(M, q, mp) = Tcomp(M)/q + Tcomm(M, q, mp)
//
// The computational part assumes linear speedup (as the paper does); the
// communication part depends on the mapping pattern mp, i.e. on which
// physical cores execute the task and therefore which levels of the
// hierarchical interconnect its collective operations traverse.
//
// Collective operations are modelled after the algorithms the paper holds
// responsible for the observed behaviour: MPI_Allgather uses a ring
// algorithm for large messages (Section 4.4), where process i sends to
// process i+1 in rank order, so the per-step time is governed by the
// slowest link of the ring and by the contention of concurrent messages on
// the per-node network interface. Broadcast uses a binomial tree.
//
// The same primitives evaluate symbolic costs Tsymb(M, p) = T(M, p, dmp)
// for the scheduling step, where the default mapping pattern dmp charges
// the slowest interconnect (the node-to-node network) for every hop.
package cost

import (
	"math"

	"mtask/internal/arch"
	"mtask/internal/graph"
)

// Model evaluates task and communication costs on a machine. The zero
// Hybrid value models one MPI rank per core; with Hybrid set, the cores of
// one node inside a group form a single rank whose threads cooperate in
// shared memory, which shrinks the participant count of collectives at the
// price of a fork-join overhead per operation (Section 4.7).
type Model struct {
	Machine *arch.Machine

	// Hybrid enables the hybrid MPI+OpenMP execution model.
	Hybrid bool

	// ThreadsPerRank is the number of cores joined into one hybrid
	// rank; 0 means all cores of a node. Ignored unless Hybrid is set.
	ThreadsPerRank int

	// memo, when non-nil, caches the model's evaluations; see WithMemo.
	memo *memoTable
}

// CompTime converts a task's sequential work (in floating-point operations)
// executed by q cores into seconds, assuming the paper's linear speedup.
func (m *Model) CompTime(work float64, q int) float64 {
	if q < 1 {
		q = 1
	}
	return work / (float64(q) * m.Machine.CoreGFlops * 1e9)
}

// ranks reduces a group's core list to one representative core per hybrid
// rank, returning the representatives, the thread count of each rank, and
// the largest number of nodes any rank spans (1 unless the machine allows
// cross-node threads). Without hybrid mode every core is its own rank.
func (m *Model) ranks(cores []arch.CoreID) (reps []arch.CoreID, threads []int, maxSpan int) {
	maxSpan = 1
	if !m.Hybrid {
		threads = make([]int, len(cores))
		for i := range threads {
			threads[i] = 1
		}
		return cores, threads, maxSpan
	}
	tpr := m.ThreadsPerRank
	if tpr <= 0 {
		tpr = m.Machine.CoresPerNode()
	}
	// Consecutive runs of cores on the same node are grouped into ranks
	// of up to tpr threads. On distributed shared memory machines
	// (SharedMemoryThreads) ranks may span nodes, so grouping is purely
	// by count.
	i := 0
	for i < len(cores) {
		j := i + 1
		for j < len(cores) && j-i < tpr &&
			(m.Machine.SharedMemoryThreads || cores[j].Node == cores[i].Node) {
			j++
		}
		reps = append(reps, cores[i])
		threads = append(threads, j-i)
		if span := arch.NodesSpanned(cores[i:j]); span > maxSpan {
			maxSpan = span
		}
		i = j
	}
	return reps, threads, maxSpan
}

// hybridOverhead is the fork-join cost added per collective operation in
// hybrid mode: the threads of every rank must be joined before and forked
// after the rank's MPI call, and joining threads spread over several nodes
// of a distributed-shared-memory machine costs proportionally more.
func (m *Model) hybridOverhead(span int) float64 {
	if !m.Hybrid {
		return 0
	}
	if span < 1 {
		span = 1
	}
	return m.Machine.HybridForkJoin * float64(span)
}

// ringLink describes one directed hop of a ring.
type ringLink struct {
	from, to arch.CoreID
}

// Allgather returns the time of a multi-broadcast (MPI_Allgather) executed
// concurrently by the given groups of cores, where every core contributes
// bytesPerCore bytes. Each group runs a ring over its cores in rank order:
// q-1 steps, each moving one block across every ring link simultaneously.
//
// The per-step time of a group is the slowest of its ring links, where a
// link crossing the node boundary shares the source and destination nodes'
// network interfaces with all other concurrently active inter-node links:
// its effective bandwidth is divided by the maximum number of inter-node
// link endpoints at either node, across all groups. This contention term is
// what separates consecutive, mixed and scattered mappings.
func (m *Model) Allgather(groups [][]arch.CoreID, bytesPerCore int) float64 {
	times := m.allgatherTimes(groups, bytesPerCore)
	var worst float64
	for _, t := range times {
		if t > worst {
			worst = t
		}
	}
	return worst
}

// AllgatherIn returns the time of the idx-th group's ring allgather while
// all groups run concurrently and contend for the node interfaces. It is
// used to price one group's collectives in the context of the other
// groups of its layer.
func (m *Model) AllgatherIn(idx int, groups [][]arch.CoreID, bytesPerCore int) float64 {
	times := m.allgatherTimes(groups, bytesPerCore)
	if idx < 0 || idx >= len(times) {
		return 0
	}
	return times[idx]
}

// allgatherTimes computes the per-group ring times under mutual
// contention; empty groups yield zero entries. Memoized results are shared
// slices and must not be modified by callers (Allgather and AllgatherIn
// only read them).
func (m *Model) allgatherTimes(groups [][]arch.CoreID, bytesPerCore int) []float64 {
	var key collKey
	if m.memo != nil {
		key = collKey{groups: hashGroups(groups), bytes: bytesPerCore}
		if v, ok := m.memo.gatherGet(key); ok {
			return v
		}
	}
	out := m.allgatherTimesUncached(groups, bytesPerCore)
	if m.memo != nil {
		m.memo.gatherPut(key, out)
	}
	return out
}

func (m *Model) allgatherTimesUncached(groups [][]arch.CoreID, bytesPerCore int) []float64 {
	out := make([]float64, len(groups))
	// Reduce to hybrid ranks and scale block sizes: each rank
	// contributes the combined data of its threads.
	type ringSpec struct {
		idx   int
		reps  []arch.CoreID
		block int
		ov    float64
	}
	specs := make([]ringSpec, 0, len(groups))
	for gi, g := range groups {
		if len(g) == 0 {
			continue
		}
		reps, threads, span := m.ranks(g)
		maxThreads := 1
		for _, th := range threads {
			if th > maxThreads {
				maxThreads = th
			}
		}
		specs = append(specs, ringSpec{
			idx:   gi,
			reps:  reps,
			block: bytesPerCore * maxThreads,
			ov:    m.hybridOverhead(span),
		})
	}
	// Ranks per node across all concurrent groups, for the contention
	// of the small-message algorithm (every rank exchanges in every
	// round).
	nodeRanks := make(map[int]int)
	for _, sp := range specs {
		for _, r := range sp.reps {
			nodeRanks[r.Node]++
		}
	}
	// Gather all inter-node ring links to compute per-node contention.
	// Links are full duplex, so outgoing and incoming traffic of a node
	// do not contend with each other; only links in the same direction
	// share the interface.
	nodeOut := make(map[int]int)
	nodeIn := make(map[int]int)
	var allLinks [][]ringLink
	for _, sp := range specs {
		q := len(sp.reps)
		links := make([]ringLink, 0, q)
		if q > 1 {
			for i := 0; i < q; i++ {
				l := ringLink{from: sp.reps[i], to: sp.reps[(i+1)%q]}
				links = append(links, l)
				if l.from.Node != l.to.Node {
					nodeOut[l.from.Node]++
					nodeIn[l.to.Node]++
				}
			}
		}
		allLinks = append(allLinks, links)
	}
	for si, sp := range specs {
		q := len(sp.reps)
		if q <= 1 {
			out[sp.idx] = sp.ov
			continue
		}
		if sp.block <= smallAllgather {
			out[sp.idx] = m.recursiveDoubling(sp.reps, sp.block, nodeRanks) + sp.ov
			continue
		}
		var step float64
		for _, l := range allLinks[si] {
			lp := m.Machine.Link(l.from, l.to)
			t := lp.Latency
			if sp.block > 0 {
				bw := lp.Bandwidth
				if l.from.Node != l.to.Node {
					c := nodeOut[l.from.Node]
					if nodeIn[l.to.Node] > c {
						c = nodeIn[l.to.Node]
					}
					if c > 1 {
						bw /= float64(c)
					}
				}
				t += float64(sp.block) / bw
			}
			if t > step {
				step = t
			}
		}
		out[sp.idx] = float64(q-1)*step + sp.ov
	}
	return out
}

// smallAllgather is the per-rank block size (bytes) below which the
// allgather switches from the ring algorithm to recursive doubling, as
// MPI libraries do (the paper attributes its Fig. 14 results to the ring
// algorithm "for large messages"). The crossover sits where the rounds'
// latency dominates the accumulated payload.
const smallAllgather = 256

// recursiveDoubling models the small-message allgather: ceil(log2 q)
// rounds in which every rank exchanges its accumulated blocks with a
// partner at doubling rank distance, so with a consecutive mapping the
// early rounds stay inside nodes. Inter-node rounds contend for the node
// interfaces with every rank of the node (nodeRanks counts the ranks per
// node across all concurrent groups).
func (m *Model) recursiveDoubling(reps []arch.CoreID, block int, nodeRanks map[int]int) float64 {
	q := len(reps)
	maxRanksPerNode := 1
	for _, r := range reps {
		if c := nodeRanks[r.Node]; c > maxRanksPerNode {
			maxRanksPerNode = c
		}
	}
	var t float64
	for dist := 1; dist < q; dist *= 2 {
		// Partner distance in rank order determines the link level of
		// this round.
		a, b := reps[0], reps[dist%q]
		lv := arch.CommLevel(a, b)
		if lv == arch.LevelCore {
			lv = arch.LevelProcessor
		}
		lp := m.Machine.Links[lv]
		bytes := float64(dist * block) // accumulated blocks exchanged
		bw := lp.Bandwidth
		if lv == arch.LevelNetwork && maxRanksPerNode > 1 {
			bw /= float64(maxRanksPerNode)
		}
		t += lp.Latency + bytes/bw
	}
	return t
}

// Broadcast returns the time for a broadcast of bytes from one core of the
// group to all others using a hierarchical binomial tree: the message
// first spreads across the nodes the group spans (network-level rounds),
// then within the nodes (node/processor-level rounds). A mapping that
// packs the group onto few nodes therefore needs fewer expensive rounds.
func (m *Model) Broadcast(cores []arch.CoreID, bytes int) float64 {
	var key collKey
	if m.memo != nil {
		key = collKey{groups: hashCores(fnvOffset, cores), bytes: bytes}
		if v, ok := m.memo.bcastGet(key); ok {
			return v
		}
	}
	v := m.broadcastUncached(cores, bytes)
	if m.memo != nil {
		m.memo.bcastPut(key, v)
	}
	return v
}

func (m *Model) broadcastUncached(cores []arch.CoreID, bytes int) float64 {
	reps, _, span := m.ranks(cores)
	q := len(reps)
	if q <= 1 {
		return m.hybridOverhead(span)
	}
	nodes := arch.NodesSpanned(reps)
	netRounds := 0.0
	if nodes > 1 {
		netRounds = math.Ceil(math.Log2(float64(nodes)))
	}
	totalRounds := math.Ceil(math.Log2(float64(q)))
	localRounds := totalRounds - netRounds
	if localRounds < 0 {
		localRounds = 0
	}
	t := netRounds * m.Machine.Links[arch.LevelNetwork].Transfer(bytes)
	if localRounds > 0 {
		localLevel := arch.LevelNode
		if arch.SlowestLevel(reps) == arch.LevelProcessor {
			localLevel = arch.LevelProcessor
		}
		t += localRounds * m.Machine.Links[localLevel].Transfer(bytes)
	}
	return t + m.hybridOverhead(span)
}

// Barrier returns the time of a barrier over the group, modelled as a
// zero-byte broadcast up and down the binomial tree.
func (m *Model) Barrier(cores []arch.CoreID) float64 {
	return 2 * m.Broadcast(cores, 0)
}

// Redistribute returns the cost TRe of moving a block-distributed data
// structure of the given total size from the cores of src to the cores of
// dst (Section 3.1). If the two groups are identical no transfer occurs.
// Otherwise every destination core receives its share of the data from the
// source cores; the transfer is charged at the slowest level between the
// two groups, with network contention equal to the largest number of
// communicating cores sharing one node.
func (m *Model) Redistribute(src, dst []arch.CoreID, totalBytes int) float64 {
	if totalBytes <= 0 || len(src) == 0 || len(dst) == 0 {
		return 0
	}
	var key redistKey
	if m.memo != nil {
		key = redistKey{
			src:   hashCores(fnvOffset, src),
			dst:   hashCores(fnvOffset, dst),
			bytes: totalBytes,
		}
		if v, ok := m.memo.redistGet(key); ok {
			return v
		}
	}
	v := m.redistributeUncached(src, dst, totalBytes)
	if m.memo != nil {
		m.memo.redistPut(key, v)
	}
	return v
}

func (m *Model) redistributeUncached(src, dst []arch.CoreID, totalBytes int) float64 {
	if sameCores(src, dst) {
		return 0
	}
	srcReps, _, srcSpan := m.ranks(src)
	dstReps, _, dstSpan := m.ranks(dst)
	span := srcSpan
	if dstSpan > span {
		span = dstSpan
	}
	// Slowest pairwise level between the two groups.
	lv := arch.SlowestLevel(append(append([]arch.CoreID{}, srcReps...), dstReps...))
	lp := m.Machine.Links[lv]
	par := len(srcReps)
	if len(dstReps) < par {
		par = len(dstReps)
	}
	per := float64(totalBytes) / float64(par)
	bw := lp.Bandwidth
	if lv == arch.LevelNetwork {
		// Cores of one node share its network interface.
		c := maxCoresPerNode(srcReps)
		if d := maxCoresPerNode(dstReps); d > c {
			c = d
		}
		if c > 1 {
			bw /= float64(c)
		}
	}
	return lp.Latency + per/bw + m.hybridOverhead(span)
}

func sameCores(a, b []arch.CoreID) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[arch.CoreID]struct{}, len(a))
	for _, c := range a {
		set[c] = struct{}{}
	}
	for _, c := range b {
		if _, ok := set[c]; !ok {
			return false
		}
	}
	return true
}

func maxCoresPerNode(cores []arch.CoreID) int {
	cnt := make(map[int]int)
	max := 0
	for _, c := range cores {
		cnt[c.Node]++
		if cnt[c.Node] > max {
			max = cnt[c.Node]
		}
	}
	return max
}

// TaskTime returns T(M, q, mp) for a task executed by the given physical
// cores: the linear-speedup computation time plus the task's internal
// collectives (CommCount ring multi-broadcasts of CommBytes total payload,
// i.e. CommBytes/q contributed per core).
func (m *Model) TaskTime(t *graph.Task, cores []arch.CoreID) float64 {
	var key taskKey
	if m.memo != nil {
		key = taskKey{symb: taskSymbKey(t, 0), cores: hashCores(fnvOffset, cores)}
		if v, ok := m.memo.taskGet(key); ok {
			return v
		}
	}
	v := m.taskTimeUncached(t, cores)
	if m.memo != nil {
		m.memo.taskPut(key, v)
	}
	return v
}

func (m *Model) taskTimeUncached(t *graph.Task, cores []arch.CoreID) float64 {
	q := len(cores)
	if q == 0 {
		return math.Inf(1)
	}
	if t.MaxWidth > 0 && q > t.MaxWidth {
		cores = cores[:t.MaxWidth]
		q = t.MaxWidth
	}
	tt := m.CompTime(t.Work, q)
	if t.CommCount > 0 && q > 1 {
		per := t.CommBytes / q
		if per < 1 && t.CommBytes > 0 {
			per = 1
		}
		tt += float64(t.CommCount) * m.Allgather([][]arch.CoreID{cores}, per)
	}
	if t.BcastCount > 0 && q > 1 {
		tt += float64(t.BcastCount) * m.Broadcast(cores, t.BcastBytes)
	}
	return tt
}

// --- Symbolic costs (Section 3.2) ---

// SymbolicTaskTime returns Tsymb(M, p) = T(M, p, dmp): the execution time
// of the task on p symbolic cores under the default mapping pattern dmp,
// which charges the slowest interconnect of the architecture for every
// communication hop. It is an upper bound of the physical execution time
// and is what the scheduling algorithm optimises before mapping.
func (m *Model) SymbolicTaskTime(t *graph.Task, p int) float64 {
	if m.memo == nil {
		return m.symbolicTaskTimeUncached(t, p)
	}
	key := taskSymbKey(t, p)
	if v, ok := m.memo.symbGet(key); ok {
		return v
	}
	v := m.symbolicTaskTimeUncached(t, p)
	m.memo.symbPut(key, v)
	return v
}

func (m *Model) symbolicTaskTimeUncached(t *graph.Task, p int) float64 {
	if p < 1 {
		return math.Inf(1)
	}
	if t.MaxWidth > 0 && p > t.MaxWidth {
		p = t.MaxWidth
	}
	tt := m.CompTime(t.Work, p)
	if t.CommCount > 0 && p > 1 {
		per := t.CommBytes / p
		if per < 1 && t.CommBytes > 0 {
			per = 1
		}
		tt += float64(t.CommCount) * m.SymbolicAllgather(p, per)
	}
	if t.BcastCount > 0 && p > 1 {
		tt += float64(t.BcastCount) * m.SymbolicBroadcast(p, t.BcastBytes)
	}
	return tt
}

// SymbolicBroadcast is the binomial-tree broadcast of p participants with
// every round charged at the network level (the default mapping pattern).
func (m *Model) SymbolicBroadcast(p, bytes int) float64 {
	if p <= 1 {
		return 0
	}
	lp := m.Machine.Links[arch.LevelNetwork]
	return math.Ceil(math.Log2(float64(p))) * lp.Transfer(bytes)
}

// SymbolicAllgather is the ring allgather of p participants each
// contributing bytesPerCore, with every hop charged at the network level
// and no contention (the default mapping pattern).
func (m *Model) SymbolicAllgather(p, bytesPerCore int) float64 {
	if p <= 1 {
		return 0
	}
	lp := m.Machine.Links[arch.LevelNetwork]
	return float64(p-1) * lp.Transfer(bytesPerCore)
}

// SymbolicRedistribute is the redistribution cost between two symbolic
// groups of sizes p1 and p2 under the default mapping pattern.
func (m *Model) SymbolicRedistribute(p1, p2, totalBytes int) float64 {
	if totalBytes <= 0 || p1 <= 0 || p2 <= 0 {
		return 0
	}
	lp := m.Machine.Links[arch.LevelNetwork]
	par := p1
	if p2 < par {
		par = p2
	}
	return lp.Transfer(totalBytes / par)
}
