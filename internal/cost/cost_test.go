package cost

import (
	"math"
	"testing"

	"mtask/internal/arch"
	"mtask/internal/graph"
)

func chicModel(nodes int) *Model {
	return &Model{Machine: arch.CHiC().Subset(nodes)}
}

// consecutiveCores returns the first q cores in canonical order.
func consecutiveCores(m *arch.Machine, q int) []arch.CoreID {
	return m.AllCores()[:q]
}

// scatteredCores returns q cores taking corresponding cores of successive
// nodes first (1.1.1, 2.1.1, ..., n.1.1, 1.1.2, ...).
func scatteredCores(m *arch.Machine, q int) []arch.CoreID {
	var cores []arch.CoreID
	for p := 0; p < m.ProcsPerNode && len(cores) < q; p++ {
		for c := 0; c < m.CoresPerProc && len(cores) < q; c++ {
			for n := 0; n < m.Nodes && len(cores) < q; n++ {
				cores = append(cores, arch.CoreID{Node: n, Proc: p, Core: c})
			}
		}
	}
	return cores
}

func TestCompTimeLinearSpeedup(t *testing.T) {
	m := chicModel(1)
	w := 5.2e9 // one second of work on one 5.2 GFlop/s core
	if got := m.CompTime(w, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("CompTime(w,1) = %g, want 1", got)
	}
	if got := m.CompTime(w, 4); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("CompTime(w,4) = %g, want 0.25", got)
	}
	if got := m.CompTime(w, 0); got != m.CompTime(w, 1) {
		t.Fatalf("CompTime clamps q to 1: %g", got)
	}
}

func TestAllgatherTrivial(t *testing.T) {
	m := chicModel(2)
	if got := m.Allgather(nil, 100); got != 0 {
		t.Fatalf("empty allgather = %g", got)
	}
	one := [][]arch.CoreID{{{Node: 0, Proc: 0, Core: 0}}}
	if got := m.Allgather(one, 100); got != 0 {
		t.Fatalf("single-core allgather = %g", got)
	}
}

func TestAllgatherMappingOrderFig14Left(t *testing.T) {
	// Fig 14 left: a global allgather on 256 CHiC cores is fastest with
	// a consecutive mapping and slowest with a scattered mapping, for
	// large messages; mixed(2) lies in between.
	mach := arch.CHiC().Subset(64) // 256 cores
	m := &Model{Machine: mach}
	q := 256
	perCore := 64 * 1024

	cons := consecutiveCores(mach, q)
	scat := scatteredCores(mach, q)
	// mixed d=2: two consecutive cores per node, then next node.
	var mixed []arch.CoreID
	for half := 0; half < 2; half++ {
		for n := 0; n < mach.Nodes; n++ {
			mixed = append(mixed, arch.CoreID{Node: n, Proc: half, Core: 0},
				arch.CoreID{Node: n, Proc: half, Core: 1})
		}
	}
	tc := m.Allgather([][]arch.CoreID{cons}, perCore)
	tm := m.Allgather([][]arch.CoreID{mixed}, perCore)
	ts := m.Allgather([][]arch.CoreID{scat}, perCore)
	if !(tc < tm && tm < ts) {
		t.Fatalf("allgather order wrong: consecutive=%g mixed=%g scattered=%g", tc, tm, ts)
	}
}

func TestMultiAllgatherFig14Right(t *testing.T) {
	// Fig 14 right: with 4 groups of 64 cores (group-based
	// communication) consecutive wins; for the orthogonal sets induced
	// by the two mappings (64 groups of 4), scattered wins because its
	// orthogonal sets stay inside one node.
	mach := arch.CHiC().Subset(64)
	m := &Model{Machine: mach}
	perCore := 16 * 1024
	g, gs := 4, 64

	// Group-based: 4 groups of 64.
	var consGroups, scatGroups [][]arch.CoreID
	cons := consecutiveCores(mach, 256)
	scat := scatteredCores(mach, 256)
	for i := 0; i < g; i++ {
		consGroups = append(consGroups, cons[i*gs:(i+1)*gs])
		scatGroups = append(scatGroups, scat[i*gs:(i+1)*gs])
	}
	tcg := m.Allgather(consGroups, perCore)
	tsg := m.Allgather(scatGroups, perCore)
	if !(tcg < tsg) {
		t.Fatalf("group-based: consecutive=%g should beat scattered=%g", tcg, tsg)
	}

	// Orthogonal: 64 sets of 4 cores, one from each group, at the same
	// within-group position.
	var consOrth, scatOrth [][]arch.CoreID
	for j := 0; j < gs; j++ {
		var co, so []arch.CoreID
		for i := 0; i < g; i++ {
			co = append(co, cons[i*gs+j])
			so = append(so, scat[i*gs+j])
		}
		consOrth = append(consOrth, co)
		scatOrth = append(scatOrth, so)
	}
	tco := m.Allgather(consOrth, perCore)
	tso := m.Allgather(scatOrth, perCore)
	if !(tso < tco) {
		t.Fatalf("orthogonal: scattered=%g should beat consecutive=%g", tso, tco)
	}
	// Scattered orthogonal sets are node-internal: much cheaper.
	if tso > tco/2 {
		t.Fatalf("scattered orthogonal should be far cheaper: %g vs %g", tso, tco)
	}
}

func TestAllgatherContentionMonotone(t *testing.T) {
	// More concurrent groups crossing the same nodes => no faster.
	mach := arch.CHiC().Subset(8)
	m := &Model{Machine: mach}
	scat := scatteredCores(mach, 32)
	one := m.Allgather([][]arch.CoreID{scat[:8]}, 4096)
	four := m.Allgather([][]arch.CoreID{scat[:8], scat[8:16], scat[16:24], scat[24:32]}, 4096)
	if four < one {
		t.Fatalf("adding concurrent groups made allgather faster: %g < %g", four, one)
	}
}

func TestBroadcast(t *testing.T) {
	m := chicModel(4)
	mach := m.Machine
	intra := m.Broadcast(consecutiveCores(mach, 4), 4096)  // one node
	inter := m.Broadcast(consecutiveCores(mach, 16), 4096) // four nodes
	single := m.Broadcast(consecutiveCores(mach, 1), 4096) // no comm
	if single != 0 {
		t.Fatalf("single-core broadcast = %g", single)
	}
	if !(intra < inter) {
		t.Fatalf("node-internal broadcast %g should beat inter-node %g", intra, inter)
	}
	// log2 growth: 16 cores need 4 rounds, 4 cores 2 rounds.
	if inter < intra {
		t.Fatal("rounds should grow with group size")
	}
	if b := m.Barrier(consecutiveCores(mach, 4)); b != 2*m.Broadcast(consecutiveCores(mach, 4), 0) {
		t.Fatalf("barrier = %g", b)
	}
}

func TestRedistribute(t *testing.T) {
	m := chicModel(8)
	mach := m.Machine
	a := consecutiveCores(mach, 8)
	b := mach.AllCores()[8:16]
	if got := m.Redistribute(a, a, 1<<20); got != 0 {
		t.Fatalf("same-group redistribution = %g, want 0", got)
	}
	if got := m.Redistribute(a, b, 0); got != 0 {
		t.Fatalf("zero-byte redistribution = %g", got)
	}
	small := m.Redistribute(a, b, 1<<10)
	large := m.Redistribute(a, b, 1<<20)
	if !(small < large) {
		t.Fatalf("redistribution not monotone in size: %g vs %g", small, large)
	}
	// Cross-node redistribution costs more than an intra-node one.
	intra := m.Redistribute(a[:2], a[2:4], 1<<20)
	if !(intra < large) {
		t.Fatalf("intra-node redistribution %g should beat inter-node %g", intra, large)
	}
}

func TestTaskTime(t *testing.T) {
	m := chicModel(8)
	mach := m.Machine
	task := &graph.Task{Name: "t", Work: 5.2e9, CommBytes: 1 << 20, CommCount: 2}
	t4 := m.TaskTime(task, consecutiveCores(mach, 4))
	t16 := m.TaskTime(task, consecutiveCores(mach, 16))
	if t4 <= 0 || t16 <= 0 {
		t.Fatal("non-positive task time")
	}
	// Pure compute part shrinks 4x; comm grows. For this size compute
	// dominates, so t16 < t4.
	if !(t16 < t4) {
		t.Fatalf("16 cores (%g) should beat 4 cores (%g) for compute-heavy task", t16, t4)
	}
	if got := m.TaskTime(task, nil); !math.IsInf(got, 1) {
		t.Fatalf("empty group time = %g, want +Inf", got)
	}
	// MaxWidth caps the effective parallelism.
	capped := &graph.Task{Name: "c", Work: 5.2e9, MaxWidth: 2}
	if got, want := m.TaskTime(capped, consecutiveCores(mach, 16)), m.CompTime(5.2e9, 2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MaxWidth ignored: got %g want %g", got, want)
	}
}

func TestSymbolicUpperBound(t *testing.T) {
	// Tsymb must be an upper bound of the physical time under any
	// mapping (the default pattern charges the slowest network).
	m := chicModel(16)
	mach := m.Machine
	task := &graph.Task{Name: "t", Work: 1e9, CommBytes: 1 << 18, CommCount: 3}
	for _, q := range []int{2, 4, 8, 16, 32} {
		symb := m.SymbolicTaskTime(task, q)
		cons := m.TaskTime(task, consecutiveCores(mach, q))
		if cons > symb*1.0001 {
			t.Fatalf("q=%d: consecutive %g exceeds symbolic bound %g", q, cons, symb)
		}
	}
}

func TestSymbolicCommGrowsWithGroupSize(t *testing.T) {
	m := chicModel(16)
	prev := 0.0
	for _, p := range []int{2, 4, 8, 16} {
		v := m.SymbolicAllgather(p, 4096)
		if v <= prev {
			t.Fatalf("symbolic allgather not increasing: p=%d v=%g prev=%g", p, v, prev)
		}
		prev = v
	}
	if got := m.SymbolicAllgather(1, 4096); got != 0 {
		t.Fatalf("p=1 symbolic allgather = %g", got)
	}
}

func TestHybridReducesGlobalCollectives(t *testing.T) {
	// Fig 18: the hybrid scheme wins for global communication because
	// fewer ranks participate.
	mach := arch.CHiC().Subset(32) // 128 cores
	pure := &Model{Machine: mach}
	hyb := &Model{Machine: mach, Hybrid: true}
	cores := consecutiveCores(mach, 128)
	perCore := 64 * 1024
	tp := pure.Allgather([][]arch.CoreID{cores}, perCore)
	th := hyb.Allgather([][]arch.CoreID{cores}, perCore)
	if !(th < tp) {
		t.Fatalf("hybrid allgather %g should beat pure MPI %g", th, tp)
	}
}

func TestHybridRanks(t *testing.T) {
	mach := arch.CHiC().Subset(4)
	m := &Model{Machine: mach, Hybrid: true}
	cores := consecutiveCores(mach, 16) // 4 nodes
	reps, threads, _ := m.ranks(cores)
	if len(reps) != 4 {
		t.Fatalf("expected 4 hybrid ranks, got %d", len(reps))
	}
	for i, th := range threads {
		if th != 4 {
			t.Fatalf("rank %d has %d threads, want 4", i, th)
		}
	}
	// ThreadsPerRank=2 splits each node into two ranks.
	m2 := &Model{Machine: mach, Hybrid: true, ThreadsPerRank: 2}
	reps2, _, _ := m2.ranks(cores)
	if len(reps2) != 8 {
		t.Fatalf("expected 8 ranks with 2 threads each, got %d", len(reps2))
	}
	// Altix-style shared memory threads may span nodes.
	alt := arch.SGIAltix().Subset(4)
	ma := &Model{Machine: alt, Hybrid: true, ThreadsPerRank: 16}
	repsA, thA, spanA := ma.ranks(alt.AllCores())
	if spanA != 4 {
		t.Fatalf("Altix 16-thread rank spans %d nodes, want 4", spanA)
	}
	if len(repsA) != 1 || thA[0] != 16 {
		t.Fatalf("Altix 16-thread rank: got %d ranks, threads %v", len(repsA), thA)
	}
}

func TestHybridForkJoinChargesSmallOps(t *testing.T) {
	// For tiny messages inside one node, hybrid pays fork-join overhead
	// and must not be faster than pure MPI shared-memory collectives.
	mach := arch.CHiC().Subset(1)
	pure := &Model{Machine: mach}
	hyb := &Model{Machine: mach, Hybrid: true}
	cores := consecutiveCores(mach, 4)
	tp := pure.Allgather([][]arch.CoreID{cores}, 8)
	th := hyb.Allgather([][]arch.CoreID{cores}, 8)
	if th < tp {
		// One rank: no ring steps, only the fork-join term.
		if th < mach.HybridForkJoin {
			t.Fatalf("hybrid intra-node op %g below fork-join floor %g", th, tp)
		}
	}
}

func TestSmallAllgatherUsesRecursiveDoubling(t *testing.T) {
	// Tiny payloads are latency-dominated: the recursive-doubling cost
	// must be close to rounds*latency and far below the ring's
	// (q-1)*latency.
	mach := arch.CHiC().Subset(16) // 64 cores
	m := &Model{Machine: mach}
	cores := consecutiveCores(mach, 64)
	small := m.Allgather([][]arch.CoreID{cores}, 64) // 64 B <= threshold
	ringLatency := 63 * mach.Links[arch.LevelNetwork].Latency
	if !(small < ringLatency/2) {
		t.Fatalf("small allgather %g not latency-optimised (ring lower bound %g)", small, ringLatency)
	}
	// Just above the threshold the ring model applies and costs more.
	large := m.Allgather([][]arch.CoreID{cores}, smallAllgather+1)
	if !(small < large) {
		t.Fatalf("algorithm crossover broken: %g vs %g", small, large)
	}
	// Consecutive mapping keeps the early doubling rounds on-node.
	scat := scatteredCores(mach, 64)
	cons := m.Allgather([][]arch.CoreID{cores}, 8)
	scatT := m.Allgather([][]arch.CoreID{scat}, 8)
	if cons > scatT*1.5 {
		t.Fatalf("consecutive RD %g implausibly above scattered %g", cons, scatT)
	}
}
