package cost

import (
	"sync"
	"sync/atomic"

	"mtask/internal/arch"
	"mtask/internal/graph"
)

// This file implements the optional thread-safe memoization of the model's
// hot evaluations: the symbolic task times Tsymb(M, p) driving the
// group-count search, the physical task times T(M, q, mp), the concurrent
// collective timings (Tcomm) and the re-distribution costs (TRe).
//
// Keys are derived from the *values* a result depends on, never from task
// identity: two tasks with equal cost-relevant fields share one entry, so
// the solver graphs of the evaluation — whose layers repeat identical
// stage tasks across time steps — collapse to a handful of evaluations.
// All memoized functions are pure given a fixed Model configuration, so a
// hit is bit-identical to a recomputation. Configure the model (Hybrid,
// ThreadsPerRank, Machine) before enabling the memo; reconfiguring a
// memoized model is not supported.

// symbKey identifies a SymbolicTaskTime evaluation by the task fields the
// result depends on plus the symbolic core count p.
type symbKey struct {
	work                   float64
	commBytes, commCount   int
	bcastBytes, bcastCount int
	maxWidth               int
	p                      int
}

// taskKey identifies a physical TaskTime evaluation: the symbolic fields
// (p unused, zero) plus an order-sensitive hash of the core list.
type taskKey struct {
	symb  symbKey
	cores uint64
}

// collKey identifies a collective evaluation over one or more core groups.
type collKey struct {
	groups uint64
	bytes  int
}

// redistKey identifies a Redistribute evaluation.
type redistKey struct {
	src, dst uint64
	bytes    int
}

// memoTable is the shared, mutex-guarded store behind a memoized Model.
type memoTable struct {
	mu     sync.RWMutex
	symb   map[symbKey]float64
	task   map[taskKey]float64
	gather map[collKey][]float64
	bcast  map[collKey]float64
	redist map[redistKey]float64

	hits, misses atomic.Uint64
}

func newMemoTable() *memoTable {
	return &memoTable{
		symb:   make(map[symbKey]float64),
		task:   make(map[taskKey]float64),
		gather: make(map[collKey][]float64),
		bcast:  make(map[collKey]float64),
		redist: make(map[redistKey]float64),
	}
}

// WithMemo returns a model identical to m with memoization enabled. If m is
// already memoized m itself is returned; otherwise the returned model is a
// shallow copy sharing m's machine, so m itself is untouched and remains
// memo-free. The memoized model is safe for concurrent use.
func (m *Model) WithMemo() *Model {
	if m.memo != nil {
		return m
	}
	c := *m
	c.memo = newMemoTable()
	return &c
}

// Memoized reports whether the model caches its evaluations.
func (m *Model) Memoized() bool { return m.memo != nil }

// MemoStats returns the accumulated hit and miss counts of the memo table
// (both zero for a memo-free model).
func (m *Model) MemoStats() (hits, misses uint64) {
	if m.memo == nil {
		return 0, 0
	}
	return m.memo.hits.Load(), m.memo.misses.Load()
}

func taskSymbKey(t *graph.Task, p int) symbKey {
	return symbKey{
		work:       t.Work,
		commBytes:  t.CommBytes,
		commCount:  t.CommCount,
		bcastBytes: t.BcastBytes,
		bcastCount: t.BcastCount,
		maxWidth:   t.MaxWidth,
		p:          p,
	}
}

// --- FNV-1a hashing of core lists (order-sensitive: rank order matters
// for ring neighbourhoods) ---

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvMix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime
		x >>= 8
	}
	return h
}

func hashCores(h uint64, cores []arch.CoreID) uint64 {
	h = fnvMix(h, uint64(len(cores)))
	for _, c := range cores {
		h = fnvMix(h, uint64(c.Node))
		h = fnvMix(h, uint64(c.Proc)<<1|uint64(c.Core)<<24)
	}
	return h
}

func hashGroups(groups [][]arch.CoreID) uint64 {
	h := uint64(fnvOffset)
	h = fnvMix(h, uint64(len(groups)))
	for _, g := range groups {
		h = hashCores(h, g)
	}
	return h
}

// --- typed lookups; each returns (value, true) on a hit ---

func (mt *memoTable) symbGet(k symbKey) (float64, bool) {
	mt.mu.RLock()
	v, ok := mt.symb[k]
	mt.mu.RUnlock()
	mt.count(ok)
	return v, ok
}

func (mt *memoTable) symbPut(k symbKey, v float64) {
	mt.mu.Lock()
	mt.symb[k] = v
	mt.mu.Unlock()
}

func (mt *memoTable) taskGet(k taskKey) (float64, bool) {
	mt.mu.RLock()
	v, ok := mt.task[k]
	mt.mu.RUnlock()
	mt.count(ok)
	return v, ok
}

func (mt *memoTable) taskPut(k taskKey, v float64) {
	mt.mu.Lock()
	mt.task[k] = v
	mt.mu.Unlock()
}

func (mt *memoTable) gatherGet(k collKey) ([]float64, bool) {
	mt.mu.RLock()
	v, ok := mt.gather[k]
	mt.mu.RUnlock()
	mt.count(ok)
	return v, ok
}

func (mt *memoTable) gatherPut(k collKey, v []float64) {
	mt.mu.Lock()
	mt.gather[k] = v
	mt.mu.Unlock()
}

func (mt *memoTable) bcastGet(k collKey) (float64, bool) {
	mt.mu.RLock()
	v, ok := mt.bcast[k]
	mt.mu.RUnlock()
	mt.count(ok)
	return v, ok
}

func (mt *memoTable) bcastPut(k collKey, v float64) {
	mt.mu.Lock()
	mt.bcast[k] = v
	mt.mu.Unlock()
}

func (mt *memoTable) redistGet(k redistKey) (float64, bool) {
	mt.mu.RLock()
	v, ok := mt.redist[k]
	mt.mu.RUnlock()
	mt.count(ok)
	return v, ok
}

func (mt *memoTable) redistPut(k redistKey, v float64) {
	mt.mu.Lock()
	mt.redist[k] = v
	mt.mu.Unlock()
}

func (mt *memoTable) count(hit bool) {
	if hit {
		mt.hits.Add(1)
	} else {
		mt.misses.Add(1)
	}
}
