package cost

import (
	"sync"
	"testing"

	"mtask/internal/arch"
	"mtask/internal/graph"
)

// TestMemoBitIdentical checks that every memoized evaluation returns
// exactly the value of the memo-free model, on hits as well as misses.
func TestMemoBitIdentical(t *testing.T) {
	mach := arch.CHiC().Subset(4)
	plain := &Model{Machine: mach}
	memo := (&Model{Machine: mach}).WithMemo()
	if plain.Memoized() || !memo.Memoized() {
		t.Fatal("Memoized() flags wrong")
	}

	tasks := []*graph.Task{
		{Work: 1e9},
		{Work: 2e9, CommBytes: 1 << 20, CommCount: 4},
		{Work: 5e8, CommBytes: 1 << 12, CommCount: 2, BcastBytes: 4096, BcastCount: 3},
		{Work: 3e9, MaxWidth: 5},
	}
	cores := mach.AllCores()
	groups := [][]arch.CoreID{cores[:8], cores[8:16], cores[16:]}

	for round := 0; round < 2; round++ { // second round hits the memo
		for _, task := range tasks {
			for _, p := range []int{1, 3, 8, 16} {
				if got, want := memo.SymbolicTaskTime(task, p), plain.SymbolicTaskTime(task, p); got != want {
					t.Fatalf("SymbolicTaskTime(%+v, %d) = %v, want %v", task, p, got, want)
				}
			}
			if got, want := memo.TaskTime(task, cores[:12]), plain.TaskTime(task, cores[:12]); got != want {
				t.Fatalf("TaskTime = %v, want %v", got, want)
			}
		}
		if got, want := memo.Allgather(groups, 4096), plain.Allgather(groups, 4096); got != want {
			t.Fatalf("Allgather = %v, want %v", got, want)
		}
		for i := range groups {
			if got, want := memo.AllgatherIn(i, groups, 4096), plain.AllgatherIn(i, groups, 4096); got != want {
				t.Fatalf("AllgatherIn(%d) = %v, want %v", i, got, want)
			}
		}
		if got, want := memo.Broadcast(cores[:10], 1<<16), plain.Broadcast(cores[:10], 1<<16); got != want {
			t.Fatalf("Broadcast = %v, want %v", got, want)
		}
		if got, want := memo.Redistribute(cores[:8], cores[8:16], 1<<20), plain.Redistribute(cores[:8], cores[8:16], 1<<20); got != want {
			t.Fatalf("Redistribute = %v, want %v", got, want)
		}
	}
	hits, misses := memo.MemoStats()
	if hits == 0 || misses == 0 {
		t.Fatalf("memo stats %d hits / %d misses: expected both", hits, misses)
	}
	if h, m := plain.MemoStats(); h != 0 || m != 0 {
		t.Fatalf("memo-free model reports stats %d/%d", h, m)
	}
}

// TestMemoValueKeyed checks that two distinct task objects with equal
// cost-relevant fields share one memo entry — the solver-graph case where
// every time step repeats identical stage tasks.
func TestMemoValueKeyed(t *testing.T) {
	m := (&Model{Machine: arch.CHiC().Subset(2)}).WithMemo()
	a := &graph.Task{Work: 1e9, CommBytes: 1 << 16, CommCount: 2}
	b := &graph.Task{Name: "other-object", Work: 1e9, CommBytes: 1 << 16, CommCount: 2}
	va := m.SymbolicTaskTime(a, 8)
	hits0, _ := m.MemoStats()
	vb := m.SymbolicTaskTime(b, 8)
	hits1, _ := m.MemoStats()
	if va != vb {
		t.Fatalf("equal tasks valued differently: %v vs %v", va, vb)
	}
	if hits1 != hits0+1 {
		t.Fatalf("second task did not hit the shared entry (hits %d -> %d)", hits0, hits1)
	}
}

// TestMemoConcurrent exercises the memo table from many goroutines; run
// under -race.
func TestMemoConcurrent(t *testing.T) {
	mach := arch.CHiC().Subset(4)
	m := (&Model{Machine: mach}).WithMemo()
	task := &graph.Task{Work: 1e9, CommBytes: 1 << 18, CommCount: 3}
	want := (&Model{Machine: mach}).SymbolicTaskTime(task, 7)

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 1; j <= 64; j++ {
				m.SymbolicTaskTime(task, 1+j%16)
			}
			if got := m.SymbolicTaskTime(task, 7); got != want {
				t.Errorf("concurrent SymbolicTaskTime = %v, want %v", got, want)
			}
		}()
	}
	wg.Wait()
}

// TestWithMemoDoesNotMutate checks that WithMemo leaves the receiver
// memo-free and that a memoized model returns itself.
func TestWithMemoDoesNotMutate(t *testing.T) {
	plain := &Model{Machine: arch.CHiC().Subset(2)}
	memo := plain.WithMemo()
	if plain.Memoized() {
		t.Fatal("WithMemo mutated the receiver")
	}
	if memo.WithMemo() != memo {
		t.Fatal("WithMemo on a memoized model should return itself")
	}
}
