package dynsched

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"mtask/internal/runtime"
)

// TestBackfillAdmitsSmallerTask: with backfill enabled, a small task
// queued behind a large one that does not fit must be admitted onto the
// idle cores. The wide task A (2 of 3 cores) blocks until the 1-core task
// C has started — which only backfill can arrange, since the strict
// largest-first order would hold C behind the 2-core task B forever.
func TestBackfillAdmitsSmallerTask(t *testing.T) {
	pool, err := NewPool(3)
	if err != nil {
		t.Fatal(err)
	}
	pool.Backfill = true

	cStarted := make(chan struct{})
	tasks := []PoolTask{
		{Name: "A", Cores: 2, Body: func(c *runtime.Comm) error {
			select {
			case <-cStarted:
				return nil
			case <-time.After(10 * time.Second):
				t.Error("task C was never backfilled onto the free core")
				return nil
			}
		}},
		{Name: "B", Cores: 2, Body: func(c *runtime.Comm) error { return nil }},
		{Name: "C", Cores: 1, Body: func(c *runtime.Comm) error {
			close(cStarted)
			return nil
		}},
	}
	if err := pool.RunAll(tasks); err != nil {
		t.Fatal(err)
	}
}

// TestDefaultKeepsLargestFirstOrder: without backfill the pool must not
// admit the small task past the blocked queue head — head-of-line order
// is the documented default.
func TestDefaultKeepsLargestFirstOrder(t *testing.T) {
	pool, err := NewPool(3)
	if err != nil {
		t.Fatal(err)
	}

	var cStarted atomic.Bool
	release := make(chan struct{})
	tasks := []PoolTask{
		{Name: "A", Cores: 2, Body: func(c *runtime.Comm) error {
			<-release
			return nil
		}},
		{Name: "B", Cores: 2, Body: func(c *runtime.Comm) error { return nil }},
		{Name: "C", Cores: 1, Body: func(c *runtime.Comm) error {
			cStarted.Store(true)
			return nil
		}},
	}
	done := make(chan error, 1)
	go func() { done <- pool.RunAll(tasks) }()

	// While A holds 2 of 3 cores, the head B (2 cores) does not fit, and
	// C must stay queued behind it even though one core is free.
	time.Sleep(50 * time.Millisecond)
	if cStarted.Load() {
		t.Fatal("default pool admitted C past the blocked queue head")
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !cStarted.Load() {
		t.Fatal("task C never ran")
	}
}

// TestBackfillCancellation: a canceled context must still stop admission
// in backfill mode (the pick loop waits like the default loop).
func TestBackfillCancellation(t *testing.T) {
	pool, err := NewPool(2)
	if err != nil {
		t.Fatal(err)
	}
	pool.Backfill = true
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tasks := []PoolTask{
		{Name: "hold", Cores: 2, Body: func(c *runtime.Comm) error {
			cancel()
			time.Sleep(20 * time.Millisecond) // admission must observe the cancel, not free cores
			return nil
		}},
		{Name: "never", Cores: 2, Body: func(c *runtime.Comm) error {
			t.Error("task admitted after cancellation")
			return nil
		}},
	}
	if err := pool.RunAllCtx(ctx, tasks); err == nil {
		t.Fatal("canceled pool reported success")
	}
}
