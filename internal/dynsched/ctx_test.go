package dynsched

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"mtask/internal/runtime"
)

func TestRunCtxCancellationUnblocksCollectives(t *testing.T) {
	// Canceling the context must release ranks blocked in a barrier and
	// surface context.Canceled.
	w, _ := runtime.NewWorld(4)
	ctx, cancel := context.WithCancel(context.Background())
	var entered atomic.Int64
	go func() {
		for entered.Load() < 4 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		done <- RunCtx(ctx, w, func(c *Ctx) error {
			entered.Add(1)
			for i := 0; i < 1_000_000; i++ {
				c.Comm.Barrier()
			}
			return nil
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not unblock the barrier")
	}
}

func TestRunCtxPropagatesContext(t *testing.T) {
	// The context handed to RunCtx must reach the task (and recursive
	// SplitRun children) via Ctx.Context.
	w, _ := runtime.NewWorld(4)
	type key struct{}
	ctx := context.WithValue(context.Background(), key{}, "payload")
	err := RunCtx(ctx, w, func(c *Ctx) error {
		if c.Context.Value(key{}) != "payload" {
			t.Error("root context lost")
		}
		return c.SplitRun([]float64{1, 1}, []Task{
			func(c *Ctx) error {
				if c.Context.Value(key{}) != "payload" {
					t.Error("child context lost")
				}
				return nil
			},
			func(c *Ctx) error { return nil },
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunCtxRecoversPanic(t *testing.T) {
	// A panicking dynamic task becomes a *runtime.PanicError instead of
	// crashing the process; peers blocked in a barrier are released.
	w, _ := runtime.NewWorld(4)
	done := make(chan error, 1)
	go func() {
		done <- RunCtx(context.Background(), w, func(c *Ctx) error {
			if c.Comm.Rank() == 1 {
				panic("dynamic boom")
			}
			c.Comm.Barrier()
			return nil
		})
	}()
	select {
	case err := <-done:
		var pe *runtime.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("got %v, want *runtime.PanicError", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("panic deadlocked the world")
	}
}

func TestPoolRunAllCtxCancellation(t *testing.T) {
	// Canceling mid-stream stops launching queued tasks: with a 2-core
	// pool and blocking 2-core tasks, cancellation during the first task
	// must prevent the remaining ones from starting.
	pool, _ := NewPool(2)
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	tasks := make([]PoolTask, 4)
	for i := range tasks {
		tasks[i] = PoolTask{
			Name:  "blocker",
			Cores: 2,
			Body: func(c *runtime.Comm) error {
				started.Add(1)
				<-release
				return nil
			},
		}
	}
	done := make(chan error, 1)
	go func() { done <- pool.RunAllCtx(ctx, tasks) }()
	for started.Load() < 2 { // first task occupies both cores
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pool did not stop")
	}
	if got := started.Load(); got != 2 {
		t.Fatalf("%d ranks started, want only the first task's 2", got)
	}
}

func TestPoolRunAllCtxRecoversPanic(t *testing.T) {
	// A panicking pool task is reported as that task's failure, and the
	// remaining tasks still run.
	pool, _ := NewPool(4)
	var ok atomic.Int64
	err := pool.RunAllCtx(context.Background(), []PoolTask{
		{Name: "bad", Cores: 2, Body: func(c *runtime.Comm) error { panic("pool boom") }},
		{Name: "good", Cores: 2, Body: func(c *runtime.Comm) error { ok.Add(1); return nil }},
	})
	var pe *runtime.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *runtime.PanicError", err)
	}
	if ok.Load() != 2 {
		t.Fatalf("good task ran on %d ranks, want 2", ok.Load())
	}
}
