// Package dynsched provides dynamic scheduling of M-tasks, the runtime
// counterpart of the static layer-based algorithm: Section 2.2.2 of the
// paper notes that "for a dynamic scheduling, subsets of cores are
// assigned to M-tasks at runtime, depending on the availability of free
// cores. This approach can also handle the dynamic or recursive creation
// of M-tasks, which is suitable for adaptive computations or
// divide-and-conquer algorithms. The Tlib library supports such
// applications."
//
// Two facilities mirror Tlib:
//
//   - Ctx.SplitRun recursively splits the current core group into weighted
//     subgroups, each executing a child M-task concurrently
//     (divide-and-conquer task creation);
//   - Pool schedules a dynamic stream of M-tasks with given core
//     requirements onto free cores greedily.
package dynsched

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"mtask/internal/obs"
	"mtask/internal/runtime"
)

// Task is a dynamically created M-task: an SPMD body executed by every
// core of its group.
type Task func(ctx *Ctx) error

// Ctx is the execution context of a dynamic M-task.
type Ctx struct {
	// Comm is the communicator of the cores executing this task.
	Comm *runtime.Comm
	// Depth is the recursive split depth (0 for the root task).
	Depth int
	// Context carries the cancellation of RunCtx / RunAllCtx
	// (context.Background() under the plain entry points).
	Context context.Context
}

// Run executes the root task on all cores of the world. It is equivalent
// to RunCtx with a background context.
func Run(w *runtime.World, root Task) error {
	return RunCtx(context.Background(), w, root)
}

// RunCtx executes the root task on all cores of the world with
// cancellation and panic isolation: canceling ctx aborts the world
// communicator (collectives unblock and fail), a panicking body becomes a
// *runtime.PanicError instead of crashing the process, and per-rank errors
// are aggregated with errors.Join.
func RunCtx(ctx context.Context, w *runtime.World, root Task) error {
	return w.RunCtx(ctx, func(c *runtime.Comm) error {
		return root(&Ctx{Comm: c, Context: ctx})
	})
}

// SplitSizes computes the subgroup sizes for q cores and the given
// weights: proportional with a floor of one core each and largest-
// remainder rounding (the same rule as the static scheduler's group
// adjustment). It returns an error if there are more subgroups than
// cores.
func SplitSizes(q int, weights []float64) ([]int, error) {
	g := len(weights)
	if g == 0 {
		return nil, fmt.Errorf("dynsched: empty split")
	}
	if g > q {
		return nil, fmt.Errorf("dynsched: cannot split %d cores into %d subgroups", q, g)
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("dynsched: negative weight %g", w)
		}
		total += w
	}
	sizes := make([]int, g)
	if total == 0 {
		for i := range sizes {
			sizes[i] = q / g
			if i < q%g {
				sizes[i]++
			}
		}
		return sizes, nil
	}
	type frac struct {
		i int
		f float64
	}
	fracs := make([]frac, g)
	sum := 0
	for i, w := range weights {
		exact := float64(q) * w / total
		sizes[i] = int(exact)
		if sizes[i] < 1 {
			sizes[i] = 1
		}
		fracs[i] = frac{i: i, f: exact - float64(int(exact))}
		sum += sizes[i]
	}
	sort.Slice(fracs, func(a, b int) bool {
		if fracs[a].f != fracs[b].f {
			return fracs[a].f > fracs[b].f
		}
		return fracs[a].i < fracs[b].i
	})
	for k := 0; sum < q; k = (k + 1) % g {
		sizes[fracs[k].i]++
		sum++
	}
	for k := g - 1; sum > q; k = (k - 1 + g) % g {
		if sizes[fracs[k].i] > 1 {
			sizes[fracs[k].i]--
			sum--
		}
	}
	return sizes, nil
}

// SplitRun splits the current group into len(tasks) subgroups sized
// proportionally to weights and runs tasks[i] on subgroup i, concurrently.
// It is collective: every core of the group must call it with identical
// arguments. It returns after all subtasks completed, propagating the
// first error to every member.
func (c *Ctx) SplitRun(weights []float64, tasks []Task) error {
	if len(weights) != len(tasks) {
		return fmt.Errorf("dynsched: %d weights for %d tasks", len(weights), len(tasks))
	}
	sizes, err := SplitSizes(c.Comm.Size(), weights)
	if err != nil {
		return err
	}
	// Subgroup of this rank from the size prefix sums.
	rank := c.Comm.Rank()
	color, off := 0, 0
	for i, sz := range sizes {
		if rank < off+sz {
			color = i
			break
		}
		off += sz
	}
	sub := c.Comm.Split(color, rank, runtime.Group)
	taskErr := tasks[color](&Ctx{Comm: sub, Depth: c.Depth + 1, Context: c.Context})
	// Propagate errors: exchange error strings over the parent group.
	var mine any
	if taskErr != nil {
		mine = taskErr.Error()
	}
	for _, v := range c.Comm.ExchangeAny(mine) {
		if v != nil {
			return fmt.Errorf("dynsched: subtask failed: %s", v.(string))
		}
	}
	return nil
}

// --- dynamic pool scheduling ---

// PoolTask is an M-task submitted to a dynamic pool: it requires Cores
// cores and runs Body on a fresh group of that size.
type PoolTask struct {
	Name  string
	Cores int
	Body  func(c *runtime.Comm) error
}

// Pool schedules a set of M-tasks onto P cores dynamically: whenever
// enough cores are idle, the next task (largest requirement first, the
// greedy rule of the static scheduler) grabs them. It returns the first
// task error, if any.
type Pool struct {
	P int

	// Backfill opts into out-of-order admission: when the largest pending
	// task does not fit the free cores, the largest pending task that does
	// fit is admitted instead of blocking the queue head-of-line. The
	// default (false) keeps strict largest-first admission order, which
	// never starves a wide task but can idle cores behind it. Set before
	// the first RunAll / RunAllCtx call; the field is not synchronised.
	Backfill bool

	// Trace, when non-nil, records pool activity on the recorder's
	// control track: an admission instant per task ("admit:<name>", or
	// "backfill:<name>" for out-of-order picks), per-task execution
	// spans, and counter samples of the pending-queue depth and free
	// cores at every admission. Set before the first RunAll / RunAllCtx
	// call; the field is not synchronised.
	Trace *obs.Recorder

	mu    sync.Mutex
	cond  *sync.Cond
	free  int
	first error
}

// NewPool returns a dynamic pool over P cores.
func NewPool(p int) (*Pool, error) {
	if p < 1 {
		return nil, fmt.Errorf("dynsched: pool needs at least one core")
	}
	pool := &Pool{P: p, free: p}
	pool.cond = sync.NewCond(&pool.mu)
	return pool, nil
}

// clamp bounds a task's core requirement to [1, P], like the paper's
// schedulers do via MaxWidth.
func (p *Pool) clamp(cores int) int {
	if cores < 1 {
		return 1
	}
	if cores > p.P {
		return p.P
	}
	return cores
}

// RunAll executes the tasks, each on its own goroutine group, never using
// more than P cores at once. Tasks requiring more than P cores are
// clamped to P (the paper's schedulers do the same via MaxWidth). It is
// equivalent to RunAllCtx with a background context.
func (p *Pool) RunAll(tasks []PoolTask) error {
	return p.RunAllCtx(context.Background(), tasks)
}

// RunAllCtx executes the tasks like RunAll with cancellation and panic
// isolation: canceling ctx stops launching queued tasks (the cancellation
// is also delivered to running task worlds, unblocking their collectives)
// and RunAllCtx returns ctx's error after the already-running tasks
// settle. A panicking task body is recovered into a *runtime.PanicError
// and reported as that task's failure instead of crashing the process.
func (p *Pool) RunAllCtx(ctx context.Context, tasks []PoolTask) error {
	ordered := append([]PoolTask(nil), tasks...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Cores > ordered[j].Cores })

	// Wake the admission loop when ctx is canceled.
	stop := make(chan struct{})
	defer close(stop)
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				p.mu.Lock()
				p.cond.Broadcast()
				p.mu.Unlock()
			case <-stop:
			}
		}()
	}

	var wg sync.WaitGroup
	canceled := false
	for len(ordered) > 0 {
		// Pick the next admissible task: the queue head (largest pending
		// requirement), or — in backfill mode — the largest pending task
		// that fits the free cores when the head does not.
		p.mu.Lock()
		pick := -1
		for pick < 0 && ctx.Err() == nil {
			if p.clamp(ordered[0].Cores) <= p.free {
				pick = 0
			} else if p.Backfill {
				for i := 1; i < len(ordered); i++ {
					if p.clamp(ordered[i].Cores) <= p.free {
						pick = i
						break
					}
				}
			}
			if pick < 0 {
				p.cond.Wait()
			}
		}
		if ctx.Err() != nil {
			p.mu.Unlock()
			canceled = true
			break
		}
		t := ordered[pick]
		need := p.clamp(t.Cores)
		p.free -= need
		freeNow := p.free
		p.mu.Unlock()
		ordered = append(ordered[:pick], ordered[pick+1:]...)
		if p.Trace != nil {
			now := p.Trace.Now()
			kind := "admit:"
			if pick > 0 {
				kind = "backfill:"
				p.Trace.Counter("dynsched.backfills").Add(1)
			}
			p.Trace.Instant(kind+t.Name, "dynsched", obs.ControlRank, now)
			p.Trace.Counter("dynsched.admitted").Add(1)
			p.Trace.CounterSample("dynsched.queue_depth", "dynsched", obs.ControlRank, now, float64(len(ordered)))
			p.Trace.CounterSample("dynsched.free_cores", "dynsched", obs.ControlRank, now, float64(freeNow))
		}

		wg.Add(1)
		go func(t PoolTask, need int) {
			defer wg.Done()
			tstart := p.Trace.Now()
			w, err := runtime.NewWorld(need)
			if err == nil {
				err = w.RunCtx(ctx, t.Body)
			}
			p.Trace.Span(t.Name, "dynsched", obs.ControlRank, -1, -1, tstart, p.Trace.Now())
			p.mu.Lock()
			if err != nil && p.first == nil {
				p.first = fmt.Errorf("dynsched: task %q: %w", t.Name, err)
			}
			p.free += need
			p.cond.Broadcast()
			p.mu.Unlock()
		}(t, need)
	}
	wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	if canceled && p.first == nil {
		return fmt.Errorf("dynsched: pool canceled: %w", ctx.Err())
	}
	return p.first
}
