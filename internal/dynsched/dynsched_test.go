package dynsched

import (
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"

	"mtask/internal/runtime"
)

func TestSplitSizes(t *testing.T) {
	sizes, err := SplitSizes(8, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sizes[0] != 6 || sizes[1] != 2 {
		t.Fatalf("sizes = %v, want [6 2]", sizes)
	}
	// Zero weights split evenly.
	sizes, _ = SplitSizes(7, []float64{0, 0, 0})
	if sizes[0]+sizes[1]+sizes[2] != 7 {
		t.Fatalf("even split %v", sizes)
	}
	if _, err := SplitSizes(2, []float64{1, 1, 1}); err == nil {
		t.Fatal("oversplit accepted")
	}
	if _, err := SplitSizes(4, nil); err == nil {
		t.Fatal("empty split accepted")
	}
	if _, err := SplitSizes(4, []float64{-1, 2}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestRunRoot(t *testing.T) {
	w, _ := runtime.NewWorld(6)
	var ran atomic.Int64
	err := Run(w, func(ctx *Ctx) error {
		ran.Add(1)
		if ctx.Depth != 0 {
			t.Errorf("root depth %d", ctx.Depth)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 6 {
		t.Fatalf("root ran on %d cores", ran.Load())
	}
}

func TestSplitRunRecursive(t *testing.T) {
	// Divide and conquer: sum an array by recursively halving both the
	// data and the core group, like a Tlib program.
	const n = 1 << 12
	data := make([]float64, n)
	var want float64
	for i := range data {
		data[i] = float64(i % 23)
		want += data[i]
	}
	results := make(chan float64, 16)

	var sumTask func(lo, hi int) Task
	sumTask = func(lo, hi int) Task {
		return func(ctx *Ctx) error {
			if ctx.Comm.Size() == 1 || hi-lo < 64 {
				var s float64
				for _, v := range data[lo:hi] {
					s += v
				}
				// Only rank 0 of the leaf group reports.
				if ctx.Comm.Rank() == 0 {
					results <- s
				}
				return nil
			}
			mid := (lo + hi) / 2
			return ctx.SplitRun([]float64{1, 1}, []Task{sumTask(lo, mid), sumTask(mid, hi)})
		}
	}

	w, _ := runtime.NewWorld(8)
	if err := Run(w, sumTask(0, n)); err != nil {
		t.Fatal(err)
	}
	close(results)
	var got float64
	for s := range results {
		got += s
	}
	if got != want {
		t.Fatalf("recursive sum = %g, want %g", got, want)
	}
}

func TestSplitRunWeighted(t *testing.T) {
	w, _ := runtime.NewWorld(8)
	var bigSize, smallSize atomic.Int64
	err := Run(w, func(ctx *Ctx) error {
		return ctx.SplitRun([]float64{3, 1}, []Task{
			func(c *Ctx) error { bigSize.Store(int64(c.Comm.Size())); return nil },
			func(c *Ctx) error { smallSize.Store(int64(c.Comm.Size())); return nil },
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if bigSize.Load() != 6 || smallSize.Load() != 2 {
		t.Fatalf("weighted split sizes = %d, %d, want 6, 2", bigSize.Load(), smallSize.Load())
	}
}

func TestSplitRunErrorPropagation(t *testing.T) {
	w, _ := runtime.NewWorld(4)
	err := Run(w, func(ctx *Ctx) error {
		return ctx.SplitRun([]float64{1, 1}, []Task{
			func(c *Ctx) error { return nil },
			func(c *Ctx) error {
				if c.Comm.Rank() == 0 {
					return fmt.Errorf("boom")
				}
				return nil
			},
		})
	})
	if err == nil {
		t.Fatal("subtask error not propagated")
	}
}

func TestSplitRunArgMismatch(t *testing.T) {
	w, _ := runtime.NewWorld(2)
	err := Run(w, func(ctx *Ctx) error {
		return ctx.SplitRun([]float64{1}, []Task{
			func(c *Ctx) error { return nil },
			func(c *Ctx) error { return nil },
		})
	})
	if err == nil {
		t.Fatal("weight/task mismatch accepted")
	}
}

func TestPoolRunsAllTasks(t *testing.T) {
	pool, err := NewPool(8)
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	var peak atomic.Int64
	var active atomic.Int64
	tasks := make([]PoolTask, 12)
	for i := range tasks {
		need := 1 + i%4
		tasks[i] = PoolTask{
			Name:  fmt.Sprintf("t%d", i),
			Cores: need,
			Body: func(c *runtime.Comm) error {
				if c.Rank() == 0 {
					cur := active.Add(int64(c.Size()))
					for {
						p := peak.Load()
						if cur <= p || peak.CompareAndSwap(p, cur) {
							break
						}
					}
					ran.Add(1)
				}
				c.Barrier()
				if c.Rank() == 0 {
					active.Add(-int64(c.Size()))
				}
				return nil
			},
		}
	}
	if err := pool.RunAll(tasks); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 12 {
		t.Fatalf("ran %d tasks, want 12", ran.Load())
	}
	if peak.Load() > 8 {
		t.Fatalf("pool oversubscribed: peak %d cores", peak.Load())
	}
}

func TestPoolClampsAndErrors(t *testing.T) {
	pool, _ := NewPool(4)
	var size atomic.Int64
	err := pool.RunAll([]PoolTask{
		{Name: "big", Cores: 99, Body: func(c *runtime.Comm) error {
			if c.Rank() == 0 {
				size.Store(int64(c.Size()))
			}
			return nil
		}},
		{Name: "bad", Cores: 2, Body: func(c *runtime.Comm) error {
			return fmt.Errorf("nope")
		}},
	})
	if err == nil {
		t.Fatal("task error swallowed")
	}
	if size.Load() != 4 {
		t.Fatalf("oversized task got %d cores, want clamp to 4", size.Load())
	}
	if _, err := NewPool(0); err == nil {
		t.Fatal("empty pool accepted")
	}
}

// Property (testing/quick): split sizes always sum to q with a floor of
// one core per subgroup.
func TestQuickSplitSizes(t *testing.T) {
	f := func(qRaw, gRaw uint8, w1, w2, w3 uint16) bool {
		g := int(gRaw%3) + 1
		q := g + int(qRaw%32)
		weights := []float64{float64(w1), float64(w2), float64(w3)}[:g]
		sizes, err := SplitSizes(q, weights)
		if err != nil {
			return false
		}
		sum := 0
		for _, s := range sizes {
			if s < 1 {
				return false
			}
			sum += s
		}
		return sum == q
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
