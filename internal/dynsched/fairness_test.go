package dynsched

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"mtask/internal/arch"
	"mtask/internal/graph"
	"mtask/internal/plan"
	"mtask/internal/runtime"
)

// gatedGraph returns a one-task graph whose body blocks until release is
// closed (or the job's context is canceled).
func gatedGraph(name string) *graph.Graph {
	g := graph.New(name)
	g.AddTask(&graph.Task{Name: name, Kind: graph.KindBasic, Work: 1e6})
	return g
}

func gatedBody(release <-chan struct{}) func(t *graph.Task) runtime.TaskFunc {
	return func(t *graph.Task) runtime.TaskFunc {
		return func(tc *runtime.TaskCtx) error {
			select {
			case <-release:
				return nil
			case <-tc.Ctx.Done():
				return tc.Ctx.Err()
			}
		}
	}
}

func sleepBody(d time.Duration) func(t *graph.Task) runtime.TaskFunc {
	return func(t *graph.Task) runtime.TaskFunc {
		return func(tc *runtime.TaskCtx) error {
			time.Sleep(d)
			return nil
		}
	}
}

// TestBackfillStarvationGuard is the fairness regression test: a large
// job at the queue head must not be bypassed indefinitely by a stream of
// backfilled small jobs. With MaxBypass = 2, exactly two of the five
// small jobs may jump the head; the rest run after it.
func TestBackfillStarvationGuard(t *testing.T) {
	m := arch.CHiC().Subset(4)
	pl := plan.New()
	a := &Allocator{Machine: m, Planner: pl, Backfill: true, MaxBypass: 2}
	ctx := context.Background()

	release := make(chan struct{})
	chR, err := a.Submit(ctx, Job{
		Name: "R", Graph: gatedGraph("R"), Body: gatedBody(release),
		MinNodes: 2, MaxNodes: 2, Rigid: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The head: needs the whole machine, cannot start while R runs.
	chH, err := a.Submit(ctx, Job{
		Name: "H", Graph: gatedGraph("H"), Body: sleepBody(time.Millisecond),
		MinNodes: 4, MaxNodes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A stream of small jobs that would starve H under unbounded backfill.
	smallCh := make([]<-chan *JobResult, 5)
	for i := range smallCh {
		smallCh[i], err = a.Submit(ctx, Job{
			Name: fmt.Sprintf("S%d", i), Graph: gatedGraph(fmt.Sprintf("S%d", i)),
			Body: sleepBody(5 * time.Millisecond), MinNodes: 1, MaxNodes: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Let the backfilled smalls finish, then release R so H can start.
	time.Sleep(50 * time.Millisecond)
	close(release)

	resR := <-chR
	resH := <-chH
	smalls := make([]*JobResult, len(smallCh))
	for i, ch := range smallCh {
		smalls[i] = <-ch
	}
	if resR.Err != nil || resH.Err != nil {
		t.Fatalf("job errors: R=%v H=%v", resR.Err, resH.Err)
	}
	if resH.Bypassed != 2 {
		t.Fatalf("H was bypassed %d times, want exactly MaxBypass=2", resH.Bypassed)
	}
	backfilled, afterH := 0, 0
	for _, s := range smalls {
		if s.Err != nil {
			t.Fatalf("small job %s failed: %v", s.Name, s.Err)
		}
		if s.Backfilled {
			backfilled++
			if s.Started >= resH.Started {
				t.Fatalf("backfilled job %s started after H: %+v", s.Name, s)
			}
			continue
		}
		if s.Started < resH.Started {
			t.Fatalf("non-backfilled small %s jumped the head: started %v, H started %v",
				s.Name, s.Started, resH.Started)
		}
		afterH++
	}
	if backfilled != 2 || afterH != 3 {
		t.Fatalf("backfilled=%d afterH=%d, want 2 and 3", backfilled, afterH)
	}
}

// TestCancellationDuringResize cancels a job while it has a pending
// shrink (requested but not yet applied at a barrier): the job's nodes —
// including the not-yet-released shrink delta — must return to the
// machine, and waiting jobs must proceed.
func TestCancellationDuringResize(t *testing.T) {
	m := arch.CHiC().Subset(4)
	pl := plan.New()
	a := &Allocator{Machine: m, Planner: pl, Backfill: true}
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()

	// Job A: two layers; layer 1 blocks, so a shrink requested during
	// layer 1 stays pending forever.
	gA := jobLadder("cancelA", 2)
	entered := make(chan struct{})
	var enterOnce sync.Once
	bodyA := func(t *graph.Task) runtime.TaskFunc {
		return func(tc *runtime.TaskCtx) error {
			if tc.Layer == 0 {
				return nil
			}
			enterOnce.Do(func() { close(entered) })
			<-tc.Ctx.Done()
			return tc.Ctx.Err()
		}
	}
	chA, err := a.Submit(ctxA, Job{Name: "A", Graph: gA, Body: bodyA, MinNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-entered // layer 1 running: A holds the whole machine (grown at barrier 1)

	// Job B forces a shrink request on A; it cannot start while A blocks.
	gB := jobLadder("cancelB", 2)
	chB, err := a.Submit(context.Background(), Job{
		Name: "B", Graph: gB, Body: sleepBody(time.Millisecond), MinNodes: 2, MaxNodes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The shrink request was made synchronously inside Submit; cancel A
	// while it is pending.
	cancelA()
	resA := <-chA
	resB := <-chB
	if resA.Err == nil {
		t.Fatal("canceled job A reported no error")
	}
	if resA.Shrinks != 0 {
		t.Fatalf("the pending shrink must never apply, got %+v", resA.Resizes)
	}
	if resB.Err != nil {
		t.Fatalf("job B failed after A's cancellation: %v", resB.Err)
	}
	// No node leak: a whole-machine job still fits.
	chC, err := a.Submit(context.Background(), Job{
		Name: "C", Graph: gatedGraph("C"), Body: sleepBody(time.Millisecond), MinNodes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	resC := <-chC
	if resC.Err != nil {
		t.Fatalf("whole-machine job failed after cancellation cleanup: %v", resC.Err)
	}
	if resC.InitialNodes != 4 {
		t.Fatalf("job C got %d nodes, want all 4 (leak?)", resC.InitialNodes)
	}
}

// TestEquipartitionRebalance: a job admitted under-sized (free nodes
// were scarce at admission) must be grown toward the equal share while
// its neighbour still runs — not only after the neighbour finishes.
func TestEquipartitionRebalance(t *testing.T) {
	m := arch.CHiC().Subset(4)
	pl := plan.New()
	a := &Allocator{Machine: m, Planner: pl, Backfill: true}

	// A is long (12 paced stages) and takes the whole machine.
	gA := jobLadder("eqA", 12)
	started := make(chan struct{})
	var once sync.Once
	bodyA := func(task *graph.Task) runtime.TaskFunc {
		return func(tc *runtime.TaskCtx) error {
			if tc.Layer >= 1 {
				once.Do(func() { close(started) })
			}
			time.Sleep(8 * time.Millisecond)
			return nil
		}
	}
	chA, err := a.Submit(context.Background(), Job{Name: "eqA", Graph: gA, Body: bodyA, MinNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// B arrives while nothing is free: it is admitted at whatever one
	// shrink of A frees — below the 2-node equal share — and is shorter
	// than A, so any growth it sees must have happened while A ran.
	gB := jobLadder("eqB", 6)
	chB, err := a.Submit(context.Background(), Job{
		Name: "eqB", Graph: gB, Body: sleepBody(8 * time.Millisecond), MinNodes: 1, MaxNodes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	resB := <-chB
	resA := <-chA
	if resA.Err != nil || resB.Err != nil {
		t.Fatalf("job errors: A=%v B=%v", resA.Err, resB.Err)
	}
	if resB.Done >= resA.Done {
		t.Fatalf("test premise broken: B (done %v) must finish before A (done %v)", resB.Done, resA.Done)
	}
	if resB.Grows < 1 || resB.FinalNodes < 2 {
		t.Fatalf("under-sized B was never rebalanced toward the equal share while A ran: %+v", resB)
	}
	if resA.Shrinks < 1 {
		t.Fatalf("A never shrank for B: %+v", resA)
	}
}

// TestCancellationWhileQueued cancels a job that never left the queue.
func TestCancellationWhileQueued(t *testing.T) {
	m := arch.CHiC().Subset(2)
	pl := plan.New()
	a := &Allocator{Machine: m, Planner: pl, Backfill: true}
	release := make(chan struct{})
	chR, err := a.Submit(context.Background(), Job{
		Name: "R", Graph: gatedGraph("R"), Body: gatedBody(release), MinNodes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctxQ, cancelQ := context.WithCancel(context.Background())
	chQ, err := a.Submit(ctxQ, Job{
		Name: "Q", Graph: gatedGraph("Q"), Body: sleepBody(time.Millisecond), MinNodes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cancelQ()
	resQ := <-chQ
	if resQ.Err == nil || resQ.Report != nil {
		t.Fatalf("queued-canceled job: err=%v report=%v, want error and no report", resQ.Err, resQ.Report)
	}
	close(release)
	if resR := <-chR; resR.Err != nil {
		t.Fatalf("running job failed: %v", resR.Err)
	}
}
