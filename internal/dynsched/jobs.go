package dynsched

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"mtask/internal/arch"
	"mtask/internal/core"
	"mtask/internal/graph"
	"mtask/internal/obs"
	"mtask/internal/plan"
	"mtask/internal/runtime"
)

// This file is the second scheduling level of the paper's model: where
// Pool schedules tasks-within-a-job, Allocator schedules
// jobs-within-a-machine. A stream of M-task jobs is admitted onto
// whole-node partitions of one machine; each job's partition size is
// picked by a moldable speedup model (planner-predicted makespans at
// candidate sizes, kept while the marginal efficiency of growing stays
// above a floor), its planned layer schedule runs inside the partition via
// the ordinary executor, and running jobs are grown and shrunk at layer
// barriers — through plan.Planner.PlanPartition and the executor's
// runtime.WithResizer hook — as other jobs arrive and finish. This is the
// two-level scheme of "Scalable Hierarchical Scheduling for Malleable
// Parallel Jobs" built from the repo's existing planning and
// degrade-and-replan machinery.

// DefaultMaxBypass is the backfill fairness bound: a queued job at the
// head may be bypassed by backfilled later jobs at most this many times
// before backfilling pauses until the head is admitted.
const DefaultMaxBypass = 4

// DefaultEfficiencyFloor is the moldable sizing threshold: the partition
// keeps doubling only while each doubling retains at least this fraction
// of ideal speedup.
const DefaultEfficiencyFloor = 0.5

// Job is one M-task program submitted to a machine-level Allocator.
type Job struct {
	Name string

	// Graph and Body are the program: the M-task DAG and its SPMD task
	// bodies, exactly as passed to the planner and executor for a solo run.
	Graph *graph.Graph
	Body  func(t *graph.Task) runtime.TaskFunc

	// Arrival is the job's submission offset in a RunTrace replay
	// (ignored by Submit).
	Arrival time.Duration

	// MinNodes and MaxNodes bound the moldable sizing in whole nodes.
	// Zero means 1 and the whole machine respectively.
	MinNodes int
	MaxNodes int

	// Rigid pins the job to its admission partition: the allocator never
	// grows or shrinks it. Rigid jobs may also run under execution modes
	// without layer barriers (wavefront).
	Rigid bool
}

// ResizeEvent records one applied grow or shrink of a running job.
type ResizeEvent struct {
	// Barrier is the completed-layer checkpoint the resize applied at.
	Barrier int
	// FromNodes and ToNodes are the partition sizes around the resize.
	FromNodes, ToNodes int
	// At is the offset from the allocator epoch.
	At time.Duration
}

// JobResult is the outcome of one job: when it waited, started and
// finished (offsets from the allocator epoch), how its partition evolved,
// and the execution report of its run.
type JobResult struct {
	Name string

	Submitted time.Duration
	Started   time.Duration
	Done      time.Duration

	// InitialNodes is the moldable admission size; FinalNodes the size at
	// completion; Cores the final size in cores.
	InitialNodes int
	FinalNodes   int
	Cores        int

	// Backfilled reports admission ahead of an earlier-queued job;
	// Bypassed counts how often this job, while at the queue head, was
	// bypassed by a backfill (bounded by Allocator.MaxBypass).
	Backfilled bool
	Bypassed   int

	// Resizes lists the applied grows and shrinks in order; Grows and
	// Shrinks count them.
	Resizes []ResizeEvent
	Grows   int
	Shrinks int

	Report *runtime.Report
	Err    error
}

// Wait returns the time the job spent queued before admission.
func (r *JobResult) Wait() time.Duration { return r.Started - r.Submitted }

// Turnaround returns the time from submission to completion.
func (r *JobResult) Turnaround() time.Duration { return r.Done - r.Submitted }

// jobState is the allocator-side record of one submitted job. The
// partition fields are guarded by Allocator.mu and obey the invariant
// owned == max(nodes, desired): a pending grow reserves its nodes at
// decision time (so they cannot be double-allocated), a pending shrink
// releases them only when applied at a layer barrier.
type jobState struct {
	job Job
	res *JobResult
	ctx context.Context

	nodes    int // partition size the current schedule runs on
	desired  int // target size; != nodes means a resize is pending
	owned    int // nodes charged to this job (== max(nodes, desired))
	minN     int
	maxN     int
	bypassed int // backfill bypasses suffered at the queue head

	traceStart int64 // allocator-recorder timestamp of admission

	done     chan *JobResult // buffered(1); receives the result once
	finished chan struct{}   // closed when the result is delivered
}

// Allocator is the machine-level job scheduler: it admits a stream of
// M-task jobs onto whole-node partitions of one machine, sizes each
// partition with the moldable speedup model, backfills around a waiting
// head job within a bounded-bypass fairness budget, and grows/shrinks
// running (non-rigid) jobs at layer barriers as jobs arrive and finish.
// Configure the exported fields before Start/Submit/RunTrace; they must
// not change afterwards.
type Allocator struct {
	// Machine is the machine being scheduled; partitions are whole nodes.
	Machine *arch.Machine

	// Planner plans admissions and resizes. Sharing one planner across
	// the allocator's lifetime is what makes sizing probes and repeated
	// resizes cheap (schedule cache, cost-model memoization).
	Planner *plan.Planner

	// Backfill admits a later queued job when the head does not fit
	// (first fit in queue order), bounded by MaxBypass.
	Backfill bool

	// MaxBypass bounds how often the queue head may be bypassed by
	// backfills before backfilling pauses (starvation guard). Zero means
	// DefaultMaxBypass; negative means unlimited.
	MaxBypass int

	// EfficiencyFloor tunes moldable sizing (see DefaultEfficiencyFloor);
	// zero means the default.
	EfficiencyFloor float64

	// PlanOpts are applied to every admission and resize plan.
	PlanOpts []plan.Option

	// ExecOpts are applied to every job execution (e.g. a fault policy or
	// runtime.WithoutTimeline). The allocator appends its own resize hook
	// for non-rigid jobs.
	ExecOpts []runtime.ExecOption

	// Trace records machine-level scheduling events on its control track:
	// job spans ("job:<name>", category "jobs"), admit/backfill/grow/
	// shrink instants, the jobs.* counters and the queue-depth and
	// free-node samples. Nil records nothing.
	Trace *obs.Recorder

	// JobTrace, when non-nil, supplies a per-job recorder (sized for the
	// given core count) that is attached to the job's execution — each job
	// becomes its own process row in a Chrome trace export.
	JobTrace func(name string, cores int) *obs.Recorder

	mu        sync.Mutex
	epoch     time.Time
	freeNodes int
	queue     []*jobState
	running   map[*jobState]struct{}
	results   []*JobResult
	wg        sync.WaitGroup
	started   bool
}

// NewAllocator returns an Allocator over the machine with backfill
// enabled and default fairness and sizing parameters. The planner may be
// shared with other users.
func NewAllocator(m *arch.Machine, p *plan.Planner) (*Allocator, error) {
	if m == nil || p == nil {
		return nil, fmt.Errorf("dynsched: allocator needs a machine and a planner")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &Allocator{Machine: m, Planner: p, Backfill: true}, nil
}

// Start anchors the allocator epoch and makes the machine's nodes
// available. It is idempotent; Submit and RunTrace call it implicitly.
func (a *Allocator) Start() error {
	if a.Machine == nil || a.Planner == nil {
		return fmt.Errorf("dynsched: allocator needs a machine and a planner")
	}
	if err := a.Machine.Validate(); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.started {
		a.started = true
		a.epoch = time.Now()
		a.freeNodes = a.Machine.Nodes
		a.running = make(map[*jobState]struct{})
	}
	return nil
}

// sinceLocked returns the offset from the allocator epoch; callers hold mu.
func (a *Allocator) sinceLocked() time.Duration { return time.Since(a.epoch) }

func (a *Allocator) maxBypass() int {
	switch {
	case a.MaxBypass == 0:
		return DefaultMaxBypass
	case a.MaxBypass < 0:
		return int(^uint(0) >> 1) // unlimited
	}
	return a.MaxBypass
}

// Submit validates and enqueues a job; the returned channel receives its
// JobResult once (and is then closed). Canceling ctx cancels the job
// whether it is still queued or already running; a running job is
// interrupted at the executor's next cancellation point and its nodes are
// released, including any reserved by a pending grow.
func (a *Allocator) Submit(ctx context.Context, job Job) (<-chan *JobResult, error) {
	if err := a.Start(); err != nil {
		return nil, err
	}
	if job.Graph == nil || job.Body == nil {
		return nil, fmt.Errorf("dynsched: job %q needs a graph and a body", job.Name)
	}
	if job.Name == "" {
		job.Name = job.Graph.Name
	}
	minN, maxN := job.MinNodes, job.MaxNodes
	if minN < 1 {
		minN = 1
	}
	if maxN < 1 || maxN > a.Machine.Nodes {
		maxN = a.Machine.Nodes
	}
	if minN > a.Machine.Nodes {
		return nil, fmt.Errorf("dynsched: job %q wants at least %d nodes, machine %q has %d",
			job.Name, minN, a.Machine.Name, a.Machine.Nodes)
	}
	if minN > maxN {
		return nil, fmt.Errorf("dynsched: job %q has MinNodes %d > MaxNodes %d", job.Name, minN, maxN)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	js := &jobState{
		job:      job,
		ctx:      ctx,
		minN:     minN,
		maxN:     maxN,
		res:      &JobResult{Name: job.Name},
		done:     make(chan *JobResult, 1),
		finished: make(chan struct{}),
	}
	a.wg.Add(1)
	a.mu.Lock()
	js.res.Submitted = a.sinceLocked()
	a.queue = append(a.queue, js)
	a.Trace.Counter("jobs.submitted").Add(1)
	a.Trace.Instant("submit:"+job.Name, "jobs", obs.ControlRank, a.Trace.Now())
	a.sampleLocked()
	a.rebalanceLocked()
	a.mu.Unlock()
	if ctx.Done() != nil {
		// Sweep the queue when the job is canceled while waiting, so a
		// canceled queued job does not linger until the next event.
		go func() {
			select {
			case <-ctx.Done():
				a.rebalance()
			case <-js.finished:
			}
		}()
	}
	return js.done, nil
}

// Wait blocks until every submitted job has finished and returns the
// results in completion order.
func (a *Allocator) Wait() []*JobResult {
	a.wg.Wait()
	return a.Results()
}

// Results returns the finished jobs' results in completion order.
func (a *Allocator) Results() []*JobResult {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]*JobResult(nil), a.results...)
}

// RunTrace replays an arrival trace: jobs are submitted at their Arrival
// offsets from the allocator epoch (in arrival order) and the call blocks
// until all of them finished. Results are returned in the input order of
// jobs. Canceling ctx cancels queued and running jobs; the replay still
// returns a result per job (with the cancellation recorded as its error).
func (a *Allocator) RunTrace(ctx context.Context, jobs []Job) ([]*JobResult, error) {
	if err := a.Start(); err != nil {
		return nil, err
	}
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool { return jobs[order[x]].Arrival < jobs[order[y]].Arrival })

	a.mu.Lock()
	epoch := a.epoch
	a.mu.Unlock()

	chans := make([]<-chan *JobResult, len(jobs))
	for _, i := range order {
		if wait := time.Until(epoch.Add(jobs[i].Arrival)); wait > 0 && ctx.Err() == nil {
			timer := time.NewTimer(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
			}
		}
		ch, err := a.Submit(ctx, jobs[i])
		if err != nil {
			return nil, fmt.Errorf("dynsched: trace replay: %w", err)
		}
		chans[i] = ch
	}
	results := make([]*JobResult, len(jobs))
	for i, ch := range chans {
		results[i] = <-ch
	}
	return results, nil
}

// Gantt renders the multi-job machine timeline through the shared text
// renderer: one row per finished job spanning admission to completion,
// annotated with its partition evolution. Call after the jobs of interest
// finished.
func (a *Allocator) Gantt(width int) string {
	results := a.Results()
	rows := make([]obs.Row, 0, len(results))
	span := 0.0
	for _, r := range results {
		detail := fmt.Sprintf("(%d→%d nodes", r.InitialNodes, r.FinalNodes)
		if r.Grows+r.Shrinks > 0 {
			detail += fmt.Sprintf(", %d grows/%d shrinks", r.Grows, r.Shrinks)
		}
		if r.Backfilled {
			detail += ", backfilled"
		}
		detail += ")"
		if r.Err != nil {
			detail += " FAILED"
		}
		rows = append(rows, obs.Row{Name: r.Name, Start: r.Started.Seconds(), End: r.Done.Seconds(), Detail: detail})
		if e := r.Done.Seconds(); e > span {
			span = e
		}
	}
	head := fmt.Sprintf("job gantt on %q (%d nodes): %d jobs over %.4g s\n",
		a.Machine.Name, a.Machine.Nodes, len(rows), span)
	return head + obs.RenderRows(rows, width, span)
}

// rebalance runs the scheduling pass under the allocator lock.
func (a *Allocator) rebalance() {
	a.mu.Lock()
	a.rebalanceLocked()
	a.mu.Unlock()
}

// rebalanceLocked is the event handler behind every allocator decision
// (submission, job completion, applied shrink, cancellation): admit from
// the queue head while it fits, otherwise request shrinks toward the
// equal share and backfill within the fairness budget, and hand free
// nodes to running jobs when the queue is empty.
func (a *Allocator) rebalanceLocked() {
	// Sweep canceled queued jobs first so they cannot absorb admissions.
	kept := a.queue[:0]
	for _, js := range a.queue {
		if js.ctx.Err() != nil {
			a.finishQueuedLocked(js, fmt.Errorf("dynsched: job %q canceled while queued: %w", js.job.Name, js.ctx.Err()))
			continue
		}
		kept = append(kept, js)
	}
	a.queue = kept

	for len(a.queue) > 0 {
		head := a.queue[0]
		if a.freeNodes < head.minN {
			break
		}
		a.queue = a.queue[1:]
		a.admitLocked(head, false)
	}
	if len(a.queue) > 0 {
		a.requestShrinksLocked()
		if a.Backfill {
			a.backfillLocked(a.queue[0])
		}
		return
	}
	a.requestGrowsLocked()
	a.rebalanceRunningLocked()
}

// admitLocked sizes the job's partition with the moldable model, charges
// the nodes and starts the execution goroutine.
func (a *Allocator) admitLocked(js *jobState, backfilled bool) {
	mp, n, err := a.moldLocked(js)
	if err != nil {
		a.finishQueuedLocked(js, fmt.Errorf("dynsched: admitting job %q: %w", js.job.Name, err))
		return
	}
	js.nodes, js.desired, js.owned = n, n, n
	a.freeNodes -= n
	a.running[js] = struct{}{}
	js.res.Started = a.sinceLocked()
	js.res.InitialNodes = n
	js.res.Backfilled = backfilled
	js.traceStart = a.Trace.Now()
	verb := "admit"
	if backfilled {
		verb = "backfill"
		a.Trace.Counter("jobs.backfills").Add(1)
	}
	a.Trace.Counter("jobs.admitted").Add(1)
	a.Trace.Instant(fmt.Sprintf("%s:%s(%d nodes)", verb, js.job.Name, n), "jobs", obs.ControlRank, a.Trace.Now())
	a.sampleLocked()
	go a.runJob(js, mp)
}

// runJob executes one admitted job inside its partition. The world is
// sized to the whole machine so resized schedules of any partition size
// fit; a schedule only ever occupies its own P symbolic cores.
func (a *Allocator) runJob(js *jobState, mp *core.Mapping) {
	w, err := runtime.NewWorld(a.Machine.TotalCores())
	if err != nil {
		a.finish(js, nil, err)
		return
	}
	opts := append([]runtime.ExecOption(nil), a.ExecOpts...)
	if !js.job.Rigid {
		opts = append(opts, runtime.WithResizer(a.resizerFor(js)))
	}
	if a.JobTrace != nil {
		if rec := a.JobTrace(js.job.Name, a.Machine.TotalCores()); rec != nil {
			opts = append(opts, runtime.WithRecorder(rec))
		}
	}
	rep, err := runtime.ExecuteCtx(js.ctx, w, mp.Schedule, js.job.Body, opts...)
	a.finish(js, rep, err)
}

// resizerFor returns the runtime.Resizer closure of one job: at each
// layer barrier it observes the allocator's desired partition size, plans
// the graph on the new partition, and applies the resize — releasing the
// shrunk-away nodes back to the allocator, or occupying the nodes the
// allocator reserved for the grow.
func (a *Allocator) resizerFor(js *jobState) runtime.Resizer {
	return func(ctx context.Context, completed int) (*core.Schedule, error) {
		a.mu.Lock()
		d, cur := js.desired, js.nodes
		a.mu.Unlock()
		if d == cur {
			return nil, nil
		}
		mp, err := a.Planner.PlanPartition(ctx, js.job.Graph, a.Machine, d, a.PlanOpts...)
		if err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			// A failed resize plan must not kill a healthy job: revoke the
			// pending resize (releasing any reserved grow nodes) and keep
			// running at the current size.
			a.mu.Lock()
			a.setDesiredLocked(js, js.nodes)
			a.rebalanceLocked()
			a.mu.Unlock()
			return nil, nil
		}
		a.mu.Lock()
		if js.desired != d {
			// The target moved while planning; the next barrier reconsiders.
			a.mu.Unlock()
			return nil, nil
		}
		grow := d > js.nodes
		if grow {
			js.res.Grows++
			a.Trace.Counter("jobs.grows").Add(1)
			a.Trace.Instant(fmt.Sprintf("grow:%s(%d→%d nodes)", js.job.Name, js.nodes, d), "jobs", obs.ControlRank, a.Trace.Now())
		} else {
			a.freeNodes += js.nodes - d
			js.res.Shrinks++
			a.Trace.Counter("jobs.shrinks").Add(1)
			a.Trace.Instant(fmt.Sprintf("shrink:%s(%d→%d nodes)", js.job.Name, js.nodes, d), "jobs", obs.ControlRank, a.Trace.Now())
		}
		js.res.Resizes = append(js.res.Resizes, ResizeEvent{
			Barrier: completed, FromNodes: js.nodes, ToNodes: d, At: a.sinceLocked(),
		})
		js.nodes, js.owned = d, d
		a.sampleLocked()
		if !grow {
			a.rebalanceLocked() // released nodes may admit the queue head
		}
		a.mu.Unlock()
		return mp.Schedule, nil
	}
}

// setDesiredLocked retargets a job's partition, keeping the ownership
// invariant owned == max(nodes, desired): growing the target reserves the
// extra nodes immediately (freeNodes may only be debited when available —
// callers check), shrinking a pending grow releases its unused reserve.
func (a *Allocator) setDesiredLocked(js *jobState, d int) {
	if d == js.desired {
		return
	}
	newOwned := js.nodes
	if d > newOwned {
		newOwned = d
	}
	a.freeNodes += js.owned - newOwned
	js.owned = newOwned
	js.desired = d
}

// requestShrinksLocked asks running non-rigid jobs to shrink toward the
// equal share until the projected free nodes cover the whole queue's
// minimum demand (dynamic equipartitioning: the fair share counts queued
// jobs too, and one layer barrier frees enough nodes for every waiting
// job at once instead of trickling the head's minimum per barrier).
// Shrinks apply at the jobs' next layer barriers; until then the nodes
// stay charged to their jobs.
func (a *Allocator) requestShrinksLocked() {
	projected := a.freeNodes
	for js := range a.running {
		if js.nodes > js.desired {
			projected += js.nodes - js.desired
		}
	}
	need := -projected
	for _, q := range a.queue {
		need += q.minN
	}
	if need <= 0 {
		return
	}
	share := a.Machine.Nodes / (len(a.running) + len(a.queue))
	if share < 1 {
		share = 1
	}
	for _, js := range a.runningSorted(false) {
		if need <= 0 {
			break
		}
		if js.job.Rigid {
			continue
		}
		floor := js.minN
		if share > floor {
			floor = share
		}
		give := js.desired - floor
		if give <= 0 {
			continue
		}
		if give > need {
			give = need
		}
		a.setDesiredLocked(js, js.desired-give)
		need -= give
	}
}

// requestGrowsLocked hands free nodes to running non-rigid jobs, one node
// at a time round-robin from the smallest allocation, up to each job's
// maximum. Only called with an empty queue: while a job waits, freed
// nodes are kept for it instead.
func (a *Allocator) requestGrowsLocked() {
	if a.freeNodes <= 0 || len(a.running) == 0 {
		return
	}
	jobs := a.runningSorted(true)
	for a.freeNodes > 0 {
		progress := false
		for _, js := range jobs {
			if a.freeNodes == 0 {
				break
			}
			if js.job.Rigid || js.desired >= js.maxN {
				continue
			}
			a.setDesiredLocked(js, js.desired+1)
			progress = true
		}
		if !progress {
			break
		}
	}
}

// rebalanceRunningLocked shifts nodes between running jobs toward the
// equal share when the queue is empty: a job admitted under-sized
// because free nodes were scarce at that moment would otherwise stay
// small for its whole run while a neighbour keeps more than its share.
// Donors shrink only as far as the measured unmet demand of recipients
// below their share (capped by their maxima), so nodes are never freed
// that nobody can absorb — which would oscillate.
func (a *Allocator) rebalanceRunningLocked() {
	if len(a.running) < 2 {
		return
	}
	share := a.Machine.Nodes / len(a.running)
	if share < 1 {
		share = 1
	}
	demand := -a.freeNodes // free nodes already cover part of the demand
	for js := range a.running {
		if js.job.Rigid {
			continue
		}
		want := share
		if js.maxN < want {
			want = js.maxN
		}
		if js.desired < want {
			demand += want - js.desired
		}
	}
	if demand <= 0 {
		return
	}
	for _, js := range a.runningSorted(false) {
		if demand <= 0 {
			break
		}
		if js.job.Rigid {
			continue
		}
		floor := js.minN
		if share > floor {
			floor = share
		}
		give := js.desired - floor
		if give <= 0 {
			continue
		}
		if give > demand {
			give = demand
		}
		a.setDesiredLocked(js, js.desired-give)
		demand -= give
	}
}

// backfillLocked admits later queued jobs that fit the free nodes (first
// fit in queue order) while the head's bypass budget lasts. Each
// backfilled admission charges the head one bypass; at MaxBypass the
// backfilling pauses until the head is admitted — the starvation guard.
func (a *Allocator) backfillLocked(head *jobState) {
	limit := a.maxBypass()
	for i := 1; i < len(a.queue) && head.bypassed < limit; {
		js := a.queue[i]
		if js.minN > a.freeNodes {
			i++
			continue
		}
		a.queue = append(a.queue[:i], a.queue[i+1:]...)
		head.bypassed++
		head.res.Bypassed = head.bypassed
		a.admitLocked(js, true)
	}
}

// runningSorted returns the running jobs in a deterministic order: by
// desired size (ascending when asc, else descending), ties by name.
func (a *Allocator) runningSorted(asc bool) []*jobState {
	jobs := make([]*jobState, 0, len(a.running))
	for js := range a.running {
		jobs = append(jobs, js)
	}
	sort.Slice(jobs, func(x, y int) bool {
		if jobs[x].desired != jobs[y].desired {
			if asc {
				return jobs[x].desired < jobs[y].desired
			}
			return jobs[x].desired > jobs[y].desired
		}
		return jobs[x].job.Name < jobs[y].job.Name
	})
	return jobs
}

// sampleLocked records the queue-depth and free-node gauges.
func (a *Allocator) sampleLocked() {
	if a.Trace == nil {
		return
	}
	now := a.Trace.Now()
	a.Trace.CounterSample("jobs.queue_depth", "jobs", obs.ControlRank, now, float64(len(a.queue)))
	a.Trace.CounterSample("jobs.free_nodes", "jobs", obs.ControlRank, now, float64(a.freeNodes))
}

// finishQueuedLocked completes a job that never ran (validation failure
// or cancellation while queued).
func (a *Allocator) finishQueuedLocked(js *jobState, err error) {
	js.res.Started = a.sinceLocked()
	js.res.Done = js.res.Started
	js.res.Err = err
	a.Trace.Counter("jobs.failed").Add(1)
	a.results = append(a.results, js.res)
	a.deliver(js)
}

// finish completes a running job: its nodes (including any reserved by a
// pending grow) return to the machine and the freed capacity is
// rebalanced.
func (a *Allocator) finish(js *jobState, rep *runtime.Report, err error) {
	a.mu.Lock()
	delete(a.running, js)
	a.freeNodes += js.owned
	js.res.FinalNodes = js.nodes
	js.res.Cores = js.nodes * a.Machine.CoresPerNode()
	js.owned, js.nodes, js.desired = 0, 0, 0
	js.res.Done = a.sinceLocked()
	js.res.Report = rep
	js.res.Err = err
	if err != nil {
		a.Trace.Counter("jobs.failed").Add(1)
	} else {
		a.Trace.Counter("jobs.completed").Add(1)
	}
	a.Trace.Span("job:"+js.job.Name, "jobs", obs.ControlRank, -1, -1, js.traceStart, a.Trace.Now())
	a.results = append(a.results, js.res)
	a.sampleLocked()
	a.rebalanceLocked()
	a.mu.Unlock()
	a.deliver(js)
}

// deliver hands the result to the submitter exactly once.
func (a *Allocator) deliver(js *jobState) {
	js.done <- js.res
	close(js.done)
	close(js.finished)
	a.wg.Done()
}
