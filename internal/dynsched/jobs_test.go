package dynsched

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"mtask/internal/arch"
	"mtask/internal/graph"
	"mtask/internal/obs"
	"mtask/internal/ode"
	"mtask/internal/plan"
	"mtask/internal/runtime"
)

// jobLadder builds a stages-deep ladder graph: two parallel tasks per
// stage with full bipartite edges between stages, so nothing contracts
// into a chain and the schedule has exactly `stages` layers — one resize
// opportunity per stage boundary.
func jobLadder(name string, stages int) *graph.Graph {
	g := graph.New(name)
	var prev [2]graph.TaskID
	for s := 0; s < stages; s++ {
		var cur [2]graph.TaskID
		for i := 0; i < 2; i++ {
			cur[i] = g.AddTask(&graph.Task{
				Name: fmt.Sprintf("%s.%d.%d", name, s, i), Kind: graph.KindBasic, Work: 1e6,
			})
		}
		if s > 0 {
			for _, p := range prev {
				for _, c := range cur {
					g.MustEdge(p, c, 8)
				}
			}
		}
		prev = cur
	}
	return g
}

// paced wraps an ExecState body with a per-task sleep, so job runtimes are
// controlled by the test instead of raw compute speed. Sleeping changes
// nothing about the computed trajectory.
func paced(st *ode.ExecState, d time.Duration, hook func(tc *runtime.TaskCtx)) func(t *graph.Task) runtime.TaskFunc {
	return func(t *graph.Task) runtime.TaskFunc {
		inner := st.Body(t)
		return func(tc *runtime.TaskCtx) error {
			if hook != nil {
				hook(tc)
			}
			if t.Kind == graph.KindBasic && d > 0 {
				time.Sleep(d)
			}
			return inner(tc)
		}
	}
}

// TestJobsBitwiseIdenticalUnderResizes is the malleability property test:
// a long job A is shrunk when job B arrives mid-run and grown back when B
// finishes, and both jobs' outputs stay bitwise identical to their solo
// runs (the ode.ExecState trajectory is a pure function of the graph, so
// any scheduling artifact of the resize machinery would surface as a
// numeric difference).
func TestJobsBitwiseIdenticalUnderResizes(t *testing.T) {
	const n = 32
	m := arch.CHiC().Subset(4)
	pl := plan.New()

	gA := jobLadder("jobA", 12)
	gB := jobLadder("jobB", 3)
	stA := ode.NewExecState(gA, n)
	stB := ode.NewExecState(gB, n)

	// Solo runs on a full-machine partition are the identity oracle.
	soloA := ode.NewExecState(gA, n)
	mpA, err := pl.PlanPartition(context.Background(), gA, m, m.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	wSolo, _ := runtime.NewWorld(m.TotalCores())
	if _, err := runtime.ExecuteCtx(context.Background(), wSolo, mpA.Schedule, soloA.Body); err != nil {
		t.Fatal(err)
	}

	rec := obs.New(1)
	a := &Allocator{Machine: m, Planner: pl, Backfill: true, Trace: rec}

	// A's body submits B once A is two layers in, so the shrink decision
	// lands while A still has many barriers ahead.
	arrived := make(chan struct{})
	var once sync.Once
	bodyA := paced(stA, 15*time.Millisecond, func(tc *runtime.TaskCtx) {
		if tc.Layer >= 2 {
			once.Do(func() { close(arrived) })
		}
	})
	chA, err := a.Submit(context.Background(), Job{Name: "A", Graph: gA, Body: bodyA, MinNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-arrived
	chB, err := a.Submit(context.Background(), Job{
		Name: "B", Graph: gB, Body: paced(stB, time.Millisecond, nil), MinNodes: 1, MaxNodes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	resA, resB := <-chA, <-chB
	if resA.Err != nil || resB.Err != nil {
		t.Fatalf("job errors: A=%v B=%v", resA.Err, resB.Err)
	}
	if resA.Shrinks < 1 || resA.Grows < 1 {
		t.Fatalf("job A saw %d grows / %d shrinks (%+v), want at least one of each",
			resA.Grows, resA.Shrinks, resA.Resizes)
	}
	// Bitwise identity: multi-job (resized) vs solo vs sequential oracle.
	if err := ode.CompareOutputs(soloA.Outputs(), stA.Outputs()); err != nil {
		t.Fatalf("job A diverged from its solo run: %v", err)
	}
	if err := ode.CompareOutputs(ode.Reference(gA, n), stA.Outputs()); err != nil {
		t.Fatalf("job A diverged from the reference: %v", err)
	}
	if err := ode.CompareOutputs(ode.Reference(gB, n), stB.Outputs()); err != nil {
		t.Fatalf("job B diverged from the reference: %v", err)
	}
	if resA.Report == nil || resA.Report.Resizes != resA.Grows+resA.Shrinks {
		t.Fatalf("allocator resize count disagrees with the execution report: %+v vs %v", resA, resA.Report)
	}

	// The machine-level trace saw the whole story.
	metrics := rec.Metrics()
	for _, c := range []string{"jobs.submitted", "jobs.admitted", "jobs.completed", "jobs.grows", "jobs.shrinks"} {
		if metrics[c] < 1 {
			t.Fatalf("counter %s = %d, want >= 1 (metrics: %v)", c, metrics[c], metrics)
		}
	}
	gantt := a.Gantt(60)
	if !strings.Contains(gantt, "A") || !strings.Contains(gantt, "B") || !strings.Contains(gantt, "grows") {
		t.Fatalf("gantt misses the jobs:\n%s", gantt)
	}
}

// TestJobsRunTraceReplaysArrivals checks the arrival-trace entry point:
// results come back in input order, arrival offsets are respected, and a
// lone job is molded onto the machine and completes.
func TestJobsRunTraceReplaysArrivals(t *testing.T) {
	const n = 16
	m := arch.CHiC().Subset(2)
	pl := plan.New()
	a := &Allocator{Machine: m, Planner: pl, Backfill: true}

	g1 := jobLadder("t1", 2)
	g2 := jobLadder("t2", 2)
	st1 := ode.NewExecState(g1, n)
	st2 := ode.NewExecState(g2, n)
	jobs := []Job{
		{Name: "late", Graph: g2, Body: paced(st2, 0, nil), Arrival: 30 * time.Millisecond},
		{Name: "early", Graph: g1, Body: paced(st1, 0, nil)},
	}
	results, err := a.RunTrace(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Name != "late" || results[1].Name != "early" {
		t.Fatalf("results out of input order: %+v", results)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("job %s failed: %v", r.Name, r.Err)
		}
	}
	if results[0].Submitted < 25*time.Millisecond {
		t.Fatalf("late job submitted at %v, want >= ~30ms", results[0].Submitted)
	}
	if results[1].Submitted > results[0].Submitted {
		t.Fatalf("early job submitted after the late one: %+v", results)
	}
}

// TestJobsSubmitValidation checks the admission-time error paths.
func TestJobsSubmitValidation(t *testing.T) {
	m := arch.CHiC().Subset(2)
	pl := plan.New()
	a := &Allocator{Machine: m, Planner: pl}
	if _, err := a.Submit(context.Background(), Job{Name: "nograph"}); err == nil {
		t.Fatal("job without graph accepted")
	}
	g := jobLadder("v", 1)
	st := ode.NewExecState(g, 8)
	if _, err := a.Submit(context.Background(), Job{Graph: g, Body: paced(st, 0, nil), MinNodes: 99}); err == nil {
		t.Fatal("job larger than the machine accepted")
	}
	if _, err := a.Submit(context.Background(), Job{Graph: g, Body: paced(st, 0, nil), MinNodes: 2, MaxNodes: 1}); err == nil {
		t.Fatal("job with min > max accepted")
	}
}
