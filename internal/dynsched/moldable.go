package dynsched

import (
	"fmt"

	"mtask/internal/core"
)

// Moldable partition sizing, AMTHA/Cao-style: a job's core count is
// chosen once, at admission, from its predicted speedup curve. The
// planner supplies the curve — core.Schedule.Time is the predicted
// symbolic makespan T(p) of the job's layered schedule on a p-core
// partition, produced by the same memoized cost model that prices the
// layer-based group-count search — so sizing needs no profiling runs, and
// repeated probes of the same (graph, partition) pair are served from the
// planner's schedule cache.

// effFloor resolves the configured efficiency floor.
func (a *Allocator) effFloor() float64 {
	if a.EfficiencyFloor == 0 {
		return DefaultEfficiencyFloor
	}
	if a.EfficiencyFloor < 0 {
		return 0
	}
	return a.EfficiencyFloor
}

// moldLocked picks the admission partition for a queued job: candidate
// sizes double from the job's minimum up to min(MaxNodes, free nodes),
// and each doubling is kept only while it still pays — the predicted
// makespan must improve, and the marginal efficiency of the doubling
// (achieved speedup over the ideal node ratio) must stay at or above the
// efficiency floor. The mapping of the chosen size is returned so
// admission does not plan twice. Callers hold a.mu and guarantee
// freeNodes >= js.minN.
func (a *Allocator) moldLocked(js *jobState) (*core.Mapping, int, error) {
	limit := js.maxN
	if a.freeNodes < limit {
		limit = a.freeNodes
	}
	if limit < js.minN {
		return nil, 0, fmt.Errorf("moldable sizing: %d free nodes under the %d-node minimum", a.freeNodes, js.minN)
	}
	candidates := make([]int, 0, 8)
	for c := js.minN; c < limit; c *= 2 {
		candidates = append(candidates, c)
	}
	candidates = append(candidates, limit)

	floor := a.effFloor()
	var best *core.Mapping
	bestN := 0
	prevT := 0.0
	for i, c := range candidates {
		mp, err := a.Planner.PlanPartition(js.ctx, js.job.Graph, a.Machine, c, a.PlanOpts...)
		if err != nil {
			if best == nil {
				return nil, 0, err
			}
			break // keep the last size that planned
		}
		T := mp.Schedule.Time
		if i > 0 {
			if T >= prevT {
				break // no improvement: stay at the smaller partition
			}
			// Marginal efficiency of growing bestN -> c: achieved speedup
			// over the ideal node ratio.
			if (prevT/T)*(float64(bestN)/float64(c)) < floor {
				break
			}
		}
		best, bestN, prevT = mp, c, T
	}
	return best, bestN, nil
}
