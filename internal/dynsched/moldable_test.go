package dynsched

import (
	"context"
	"fmt"
	"testing"

	"mtask/internal/arch"
	"mtask/internal/graph"
	"mtask/internal/plan"
)

// moldFor runs the moldable sizing for a graph under the allocator lock.
func moldFor(t *testing.T, a *Allocator, g *graph.Graph, minN, maxN, free int) int {
	t.Helper()
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	js := &jobState{job: Job{Name: g.Name, Graph: g}, ctx: context.Background(), minN: minN, maxN: maxN}
	a.mu.Lock()
	saved := a.freeNodes
	a.freeNodes = free
	_, n, err := a.moldLocked(js)
	a.freeNodes = saved
	a.mu.Unlock()
	if err != nil {
		t.Fatalf("molding %s: %v", g.Name, err)
	}
	return n
}

// wideGraph has w independent heavy tasks: near-ideal speedup, so the
// moldable model should grab many nodes.
func wideGraph(w int) *graph.Graph {
	g := graph.New(fmt.Sprintf("wide%d", w))
	for i := 0; i < w; i++ {
		g.AddTask(&graph.Task{Name: fmt.Sprintf("w%d", i), Kind: graph.KindBasic, Work: 5e9})
	}
	return g
}

// commBoundGraph is one communication-dominated task: growing the group
// buys little, so the moldable model should stay small.
func commBoundGraph() *graph.Graph {
	g := graph.New("commbound")
	g.AddTask(&graph.Task{
		Name: "c", Kind: graph.KindBasic, Work: 1e6,
		CommBytes: 1 << 24, CommCount: 256, BcastBytes: 1 << 22, BcastCount: 64,
	})
	return g
}

func TestMoldableSizingPrefersScalableJobs(t *testing.T) {
	m := arch.CHiC().Subset(8)
	a := &Allocator{Machine: m, Planner: plan.New()}
	wide := moldFor(t, a, wideGraph(32), 1, 8, 8)
	narrow := moldFor(t, a, commBoundGraph(), 1, 8, 8)
	if wide <= narrow {
		t.Fatalf("wide job got %d nodes, comm-bound job %d — the speedup model is not differentiating", wide, narrow)
	}
	if wide < 4 {
		t.Fatalf("wide job with near-ideal speedup got only %d of 8 nodes", wide)
	}
}

func TestMoldableSizingRespectsBounds(t *testing.T) {
	m := arch.CHiC().Subset(8)
	a := &Allocator{Machine: m, Planner: plan.New()}
	if n := moldFor(t, a, wideGraph(32), 2, 3, 8); n < 2 || n > 3 {
		t.Fatalf("bounded job got %d nodes, want within [2,3]", n)
	}
	if n := moldFor(t, a, wideGraph(32), 1, 8, 2); n > 2 {
		t.Fatalf("job got %d nodes with only 2 free", n)
	}
	if n := moldFor(t, a, commBoundGraph(), 3, 8, 8); n != 3 {
		t.Fatalf("comm-bound job got %d nodes, want its 3-node minimum", n)
	}
}

func TestMoldableSizingEfficiencyFloor(t *testing.T) {
	// A floor near zero keeps doubling while the makespan improves at
	// all; a floor of 1 (perfect efficiency required) stops at the first
	// sub-ideal doubling — so the near-zero floor can never pick fewer
	// nodes than the strict one.
	m := arch.CHiC().Subset(8)
	loose := &Allocator{Machine: m, Planner: plan.New(), EfficiencyFloor: -1}
	strict := &Allocator{Machine: m, Planner: plan.New(), EfficiencyFloor: 1.0}
	g := wideGraph(16)
	nl := moldFor(t, loose, g, 1, 8, 8)
	ns := moldFor(t, strict, g, 1, 8, 8)
	if nl < ns {
		t.Fatalf("loose floor picked %d nodes, strict floor %d", nl, ns)
	}
}
