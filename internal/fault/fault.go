// Package fault provides the failure model of the fault-tolerant M-task
// executor (runtime.ExecuteCtx): a deterministic, seedable failure
// Injector for tests and chaos benchmarks, and a retry Policy describing
// how the executor reacts to task failures.
//
// The injector is purely functional: every decision is a hash of
// (seed, task, attempt, rank), so a given seed reproduces exactly the same
// fault pattern regardless of goroutine scheduling, worker count, or the
// order in which tasks happen to run. Besides the probabilistic mode it
// supports a script mode ("fail task X on attempt N") used by the
// degrade-and-replan acceptance tests, which must kill one specific core
// group mid-run and nothing else.
//
// The policy implements per-task retry budgets with exponential backoff
// and deterministic jitter, per-attempt and per-layer timeouts, and the
// degrade-and-replan escalation switch: when a task exhausts its retries
// the executor can shrink the machine by the failed group's cores and
// reschedule the remaining layers on the survivors (see
// runtime.ExecuteCtx and plan.Planner.Replan).
package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"time"
)

// Sentinel errors of the failure model; test with errors.Is.
var (
	// ErrInjected is wrapped by every fault the Injector produces.
	ErrInjected = errors.New("fault: injected failure")

	// ErrCoreLost marks the permanent loss of a task's core group.
	// Core-loss failures are not retryable (the cores are gone); the
	// executor escalates them to degrade-and-replan when enabled.
	ErrCoreLost = errors.New("fault: core group lost")
)

// Kind enumerates the failure modes the injector can produce.
type Kind int

const (
	// None produces no fault.
	None Kind = iota
	// Error makes the task body return an error on the chosen rank.
	Error
	// Panic makes the task body panic on the chosen rank.
	Panic
	// Delay stalls the task body on the chosen rank (exercises
	// timeouts; the stall is cancelable by the attempt context).
	Delay
	// CoreLoss simulates losing the task's core group permanently:
	// the attempt fails with ErrCoreLost, which the policy treats as
	// non-retryable and the executor escalates to degrade-and-replan.
	CoreLoss
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Error:
		return "error"
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	case CoreLoss:
		return "core-loss"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault is one injection decision for a (task, attempt, rank) triple.
type Fault struct {
	Kind  Kind
	Delay time.Duration // stall duration for Delay faults
	Err   error         // error to return for Error/CoreLoss faults
}

// Script is one scripted fault: kind strikes the named task on the given
// attempt (1-based, counted per task across retries and replans). Rank
// selects one SPMD rank of the task's group, or every rank when negative.
type Script struct {
	Task    string
	Attempt int
	Rank    int
	Kind    Kind
	Delay   time.Duration // for Kind == Delay (0 = Injector.Delay)
}

// Injector decides, deterministically, which task attempts fail and how.
// A nil *Injector injects nothing. The zero value injects nothing until
// probabilities or script entries are set.
//
// Probabilities are evaluated per (task, attempt, rank) by hashing the
// triple with the seed, so decisions are reproducible and independent of
// execution order. Kinds are checked in severity order: core loss, panic,
// error, delay.
type Injector struct {
	// Seed selects the reproducible fault pattern.
	Seed int64

	// PError, PPanic, PDelay, PCoreLoss are per-rank fault
	// probabilities in [0, 1].
	PError, PPanic, PDelay, PCoreLoss float64

	// Delay is the stall duration of Delay faults (default 10ms).
	Delay time.Duration

	// Script lists scripted faults checked before the probabilistic
	// model; the first match wins.
	Script []Script
}

// DefaultDelay is the stall duration of Delay faults when unset.
const DefaultDelay = 10 * time.Millisecond

// Decide returns the fault to inject into the given rank of the task's
// attempt (attempts are 1-based), or nil for a clean execution.
func (in *Injector) Decide(task string, attempt, rank int) *Fault {
	if in == nil {
		return nil
	}
	for i := range in.Script {
		s := &in.Script[i]
		if s.Task != task || s.Attempt != attempt || (s.Rank >= 0 && s.Rank != rank) {
			continue
		}
		return in.fault(s.Kind, s.Delay, task, attempt, rank)
	}
	type probe struct {
		kind Kind
		p    float64
		salt string
	}
	for _, pr := range []probe{
		{CoreLoss, in.PCoreLoss, "coreloss"},
		{Panic, in.PPanic, "panic"},
		{Error, in.PError, "error"},
		{Delay, in.PDelay, "delay"},
	} {
		if pr.p > 0 && unit(in.Seed, pr.salt, task, attempt, rank) < pr.p {
			return in.fault(pr.kind, 0, task, attempt, rank)
		}
	}
	return nil
}

// fault materialises a decision into a Fault value.
func (in *Injector) fault(kind Kind, delay time.Duration, task string, attempt, rank int) *Fault {
	f := &Fault{Kind: kind}
	switch kind {
	case None:
		return nil
	case Delay:
		f.Delay = delay
		if f.Delay <= 0 {
			f.Delay = in.Delay
		}
		if f.Delay <= 0 {
			f.Delay = DefaultDelay
		}
	case Error:
		f.Err = fmt.Errorf("%w: task %q attempt %d rank %d", ErrInjected, task, attempt, rank)
	case CoreLoss:
		f.Err = fmt.Errorf("%w: task %q attempt %d rank %d: %w", ErrInjected, task, attempt, rank, ErrCoreLost)
	}
	return f
}

// unit hashes (seed, salt, task, attempt, rank) to a uniform float64 in
// [0, 1). FNV-1a is ample for fault injection and keeps the package
// dependency-free.
func unit(seed int64, salt, task string, attempt, rank int) float64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(seed))
	h.Write([]byte(salt))
	h.Write([]byte{0})
	h.Write([]byte(task))
	h.Write([]byte{0})
	put(uint64(attempt))
	put(uint64(rank))
	const mantissa = 1 << 53
	return float64(h.Sum64()>>11) / mantissa
}
