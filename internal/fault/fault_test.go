package fault

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestInjectorNilAndZero(t *testing.T) {
	var nilIn *Injector
	if f := nilIn.Decide("t", 1, 0); f != nil {
		t.Fatalf("nil injector produced %v", f)
	}
	var zero Injector
	for a := 1; a <= 5; a++ {
		for r := 0; r < 4; r++ {
			if f := zero.Decide("t", a, r); f != nil {
				t.Fatalf("zero injector produced %v", f)
			}
		}
	}
}

func TestInjectorDeterminism(t *testing.T) {
	in1 := &Injector{Seed: 42, PError: 0.2, PPanic: 0.1, PDelay: 0.15, PCoreLoss: 0.05}
	in2 := &Injector{Seed: 42, PError: 0.2, PPanic: 0.1, PDelay: 0.15, PCoreLoss: 0.05}
	diff := 0
	other := &Injector{Seed: 43, PError: 0.2, PPanic: 0.1, PDelay: 0.15, PCoreLoss: 0.05}
	for a := 1; a <= 20; a++ {
		for r := 0; r < 8; r++ {
			task := fmt.Sprintf("task%d", a%3)
			f1, f2 := in1.Decide(task, a, r), in2.Decide(task, a, r)
			switch {
			case f1 == nil && f2 == nil:
			case f1 == nil || f2 == nil || f1.Kind != f2.Kind:
				t.Fatalf("same seed diverged at (%s,%d,%d): %v vs %v", task, a, r, f1, f2)
			}
			if f3 := other.Decide(task, a, r); (f1 == nil) != (f3 == nil) {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical fault patterns")
	}
}

func TestInjectorRates(t *testing.T) {
	in := &Injector{Seed: 7, PError: 0.3}
	hits := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if f := in.Decide(fmt.Sprintf("t%d", i), 1, 0); f != nil {
			if f.Kind != Error {
				t.Fatalf("unexpected kind %v", f.Kind)
			}
			if !errors.Is(f.Err, ErrInjected) {
				t.Fatalf("injected error does not wrap ErrInjected: %v", f.Err)
			}
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.25 || rate > 0.35 {
		t.Fatalf("error rate %.3f, want ~0.30", rate)
	}
}

func TestInjectorScript(t *testing.T) {
	in := &Injector{
		Seed: 1,
		Script: []Script{
			{Task: "stage[2](1)", Attempt: 1, Rank: -1, Kind: CoreLoss},
			{Task: "combine[0]", Attempt: 2, Rank: 1, Kind: Panic},
			{Task: "slow", Attempt: 1, Rank: 0, Kind: Delay, Delay: 3 * time.Millisecond},
		},
	}
	f := in.Decide("stage[2](1)", 1, 3)
	if f == nil || f.Kind != CoreLoss {
		t.Fatalf("scripted core loss missed: %v", f)
	}
	if !errors.Is(f.Err, ErrCoreLost) || !errors.Is(f.Err, ErrInjected) {
		t.Fatalf("core loss error chain wrong: %v", f.Err)
	}
	if f := in.Decide("stage[2](1)", 2, 3); f != nil {
		t.Fatalf("script fired on wrong attempt: %v", f)
	}
	if f := in.Decide("combine[0]", 2, 0); f != nil {
		t.Fatalf("script fired on wrong rank: %v", f)
	}
	if f := in.Decide("combine[0]", 2, 1); f == nil || f.Kind != Panic {
		t.Fatalf("scripted panic missed: %v", f)
	}
	if f := in.Decide("slow", 1, 0); f == nil || f.Kind != Delay || f.Delay != 3*time.Millisecond {
		t.Fatalf("scripted delay wrong: %v", f)
	}
	// Default delay duration applies when the script leaves it zero.
	in2 := &Injector{Script: []Script{{Task: "d", Attempt: 1, Rank: -1, Kind: Delay}}}
	if f := in2.Decide("d", 1, 0); f == nil || f.Delay != DefaultDelay {
		t.Fatalf("default delay wrong: %v", f)
	}
}

func TestPolicyBackoff(t *testing.T) {
	p := Policy{MaxRetries: 5, BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond}
	wants := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		8 * time.Millisecond, 8 * time.Millisecond}
	for i, want := range wants {
		if got := p.Backoff("t", i+1); got != want {
			t.Fatalf("backoff(%d) = %v, want %v", i+1, got, want)
		}
	}
	if got := p.Backoff("t", 0); got != 0 {
		t.Fatalf("backoff(0) = %v", got)
	}
	var zero Policy
	if got := zero.Backoff("t", 3); got != 0 {
		t.Fatalf("zero policy backoff = %v", got)
	}
}

func TestPolicyBackoffJitterDeterministic(t *testing.T) {
	p := Policy{BaseBackoff: 10 * time.Millisecond, Jitter: 0.5, Seed: 9}
	a, b := p.Backoff("task", 1), p.Backoff("task", 1)
	if a != b {
		t.Fatalf("jitter not deterministic: %v vs %v", a, b)
	}
	if a < 5*time.Millisecond || a > 10*time.Millisecond {
		t.Fatalf("jittered backoff %v outside [5ms, 10ms]", a)
	}
	if p.Backoff("other", 1) == a && p.Backoff("task", 2) == a {
		t.Fatal("jitter ignores task and retry inputs")
	}
}

func TestPolicyRetryable(t *testing.T) {
	var p Policy
	if p.Retryable(nil) {
		t.Fatal("nil error retryable")
	}
	if !p.Retryable(errors.New("transient")) {
		t.Fatal("plain error not retryable")
	}
	if !p.Retryable(fmt.Errorf("wrap: %w", context.DeadlineExceeded)) {
		t.Fatal("attempt timeout should be retryable")
	}
	if p.Retryable(fmt.Errorf("wrap: %w", context.Canceled)) {
		t.Fatal("cancellation should not be retryable")
	}
	if p.Retryable(fmt.Errorf("wrap: %w", ErrCoreLost)) {
		t.Fatal("core loss should not be retryable")
	}
}

func TestDefaultPolicy(t *testing.T) {
	p := DefaultPolicy()
	if p.MaxRetries < 1 || p.TaskTimeout <= 0 {
		t.Fatalf("unexpected defaults: %+v", p)
	}
	for r := 1; r <= p.MaxRetries; r++ {
		if d := p.Backoff("t", r); d < 0 || (p.MaxBackoff > 0 && d > p.MaxBackoff) {
			t.Fatalf("default backoff(%d) = %v out of range", r, d)
		}
	}
}
