package fault

import (
	"context"
	"errors"
	"time"
)

// Policy tells the fault-tolerant executor how to react to task failures.
// The zero value retries nothing and times nothing out; DefaultPolicy
// returns sensible production-ish defaults.
type Policy struct {
	// MaxRetries is the per-task retry budget: a task body may run up
	// to MaxRetries+1 times before the failure is escalated.
	MaxRetries int

	// BaseBackoff is the delay before the first retry; each further
	// retry doubles it, capped at MaxBackoff (0 = no cap). A zero
	// BaseBackoff retries immediately.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// Jitter randomises each backoff into [(1-Jitter)*d, d]
	// deterministically from Seed, task name and retry number, so two
	// groups that failed simultaneously do not retry in lockstep while
	// runs remain reproducible. Must be in [0, 1].
	Jitter float64

	// Seed selects the deterministic jitter pattern.
	Seed int64

	// TaskTimeout bounds one attempt of one task (0 = unbounded). A
	// timed-out attempt has its group communicator aborted so blocked
	// peers cannot deadlock at a collective, and counts as a retryable
	// failure.
	TaskTimeout time.Duration

	// LayerTimeout bounds the execution of one whole layer
	// (0 = unbounded). A layer timeout fails the run; it is not
	// retried and not escalated to degrade-and-replan.
	LayerTimeout time.Duration

	// DegradeAndReplan escalates exhausted failures by marking the
	// failing group's cores as lost and rescheduling the remaining
	// layers on the surviving cores (requires a Replanner; see
	// runtime.WithReplanner). Execution resumes from the last
	// completed layer barrier.
	DegradeAndReplan bool

	// MaxReplans bounds the number of degrade-and-replan escalations
	// (0 = unbounded; the shrinking core count bounds it naturally).
	MaxReplans int

	// OnExhausted, if set, is called once per task whose retry budget
	// is exhausted (or whose failure is not retryable), before the
	// failure is escalated or returned.
	OnExhausted func(task string, attempts int, err error)
}

// DefaultPolicy returns a policy with a modest retry budget and exponential
// backoff: 3 retries starting at 1ms (capped at 100ms, 50% jitter) and a
// 30s per-attempt timeout.
func DefaultPolicy() Policy {
	return Policy{
		MaxRetries:  3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  100 * time.Millisecond,
		Jitter:      0.5,
		TaskTimeout: 30 * time.Second,
	}
}

// Backoff returns the delay before the given retry (1-based) of the named
// task: exponential growth from BaseBackoff with the policy's
// deterministic jitter.
func (p *Policy) Backoff(task string, retry int) time.Duration {
	if p.BaseBackoff <= 0 || retry < 1 {
		return 0
	}
	d := p.BaseBackoff
	for i := 1; i < retry; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			d = p.MaxBackoff
			break
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if p.Jitter > 0 {
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		u := unit(p.Seed, "jitter", task, retry, 0)
		d = time.Duration(float64(d) * (1 - j*u))
	}
	return d
}

// Retryable reports whether a failed attempt should be retried: core-loss
// failures and caller cancellations are final, everything else (errors,
// recovered panics, attempt timeouts) is retryable within the budget.
func (p *Policy) Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrCoreLost) || errors.Is(err, context.Canceled) {
		return false
	}
	return true
}
