package fault

import (
	"context"
	"sync/atomic"
	"time"
)

// Serve-path injection points. The serving layer (internal/serve) asks
// the ServeInjector for a decision at each point it passes; the task
// executor's Injector knows nothing about them, so the same fault
// package covers both halves of the system with the same deterministic
// seeding discipline.
const (
	// PointHandler fires before routing: Panic crashes the handler
	// goroutine (the server's recovery middleware must turn it into a
	// 500, not a dead process).
	PointHandler = "handler"
	// PointColdPlan fires inside the singleflight leader at the start
	// of a cold plan: Delay models a slow or leaked leader, Error a
	// planning failure, Panic a leader crash mid-flight.
	PointColdPlan = "coldplan"
	// PointCacheGet / PointCacheAdd fire on schedule-cache lookups and
	// publishes: Delay models a stalled cache shard.
	PointCacheGet = "cache.get"
	PointCacheAdd = "cache.add"
)

// ServeScript is one scripted serve-path fault: kind strikes the given
// injection point on the request with the given sequence number
// (sequence numbers are assigned per admitted request by NextSeq,
// starting at 1). Scripted entries are checked before the probabilistic
// model; the first match wins.
type ServeScript struct {
	Point string
	Seq   uint64
	Kind  Kind
	Delay time.Duration // for Kind == Delay (0 = the point's default)
}

// ServeInjector decides, deterministically, which requests suffer which
// serve-path faults. A nil *ServeInjector injects nothing. Decisions are
// pure hashes of (seed, point, sequence number), so a fixed seed
// reproduces the same fault set for a fixed request count regardless of
// goroutine interleaving — the chaos bench's invariants can therefore be
// asserted on every CI run with one seed.
//
// A ServeInjector contains an atomic sequence counter and must not be
// copied after first use.
type ServeInjector struct {
	// Seed selects the reproducible fault pattern.
	Seed int64

	// PHandlerPanic is the per-request probability of a handler panic.
	PHandlerPanic float64

	// PSlowPlan / SlowPlanDelay: probability and stall of a slow cold
	// plan (default DefaultSlowPlanDelay). The stall happens inside the
	// singleflight leader, so coalesced followers feel it too.
	PSlowPlan     float64
	SlowPlanDelay time.Duration

	// PLeakLeader / LeakDelay: probability and stall of a leaked
	// singleflight leader — a cold plan stuck far beyond any sane
	// deadline (default DefaultLeakDelay). Followers must re-elect.
	PLeakLeader float64
	LeakDelay   time.Duration

	// PPlanError / PPlanPanic: probabilities of the cold plan failing
	// with an injected error, or panicking mid-flight.
	PPlanError float64
	PPlanPanic float64

	// PCacheStall / CacheStallDelay: probability and stall of a
	// schedule-cache shard access (default DefaultCacheStallDelay).
	PCacheStall     float64
	CacheStallDelay time.Duration

	// Script lists scripted faults checked before the probabilistic
	// model; the first match wins.
	Script []ServeScript

	seq atomic.Uint64
}

// Default stall durations of the serve-path delay faults.
const (
	DefaultSlowPlanDelay   = 50 * time.Millisecond
	DefaultLeakDelay       = 2 * time.Second
	DefaultCacheStallDelay = 5 * time.Millisecond
)

// Active reports whether the injector can produce any fault at all.
func (in *ServeInjector) Active() bool {
	if in == nil {
		return false
	}
	return len(in.Script) > 0 || in.PHandlerPanic > 0 || in.PSlowPlan > 0 ||
		in.PLeakLeader > 0 || in.PPlanError > 0 || in.PPlanPanic > 0 || in.PCacheStall > 0
}

// NextSeq returns the next request sequence number (1-based). The serving
// layer assigns one per request and passes it to every Decide call that
// request makes, so all of one request's fault decisions key off the same
// sequence number.
func (in *ServeInjector) NextSeq() uint64 {
	if in == nil {
		return 0
	}
	return in.seq.Add(1)
}

// Decide returns the fault to inject at the given point for the request
// with the given sequence number, or nil for clean passage.
func (in *ServeInjector) Decide(point string, seq uint64) *Fault {
	if in == nil {
		return nil
	}
	for i := range in.Script {
		s := &in.Script[i]
		if s.Point != point || s.Seq != seq {
			continue
		}
		return in.serveFault(point, s.Kind, s.Delay)
	}
	type probe struct {
		kind  Kind
		p     float64
		salt  string
		delay time.Duration
	}
	var probes []probe
	switch point {
	case PointHandler:
		probes = []probe{{Panic, in.PHandlerPanic, "handlerpanic", 0}}
	case PointColdPlan:
		probes = []probe{
			{Panic, in.PPlanPanic, "planpanic", 0},
			{Error, in.PPlanError, "planerror", 0},
			{Delay, in.PLeakLeader, "leakleader", in.leakDelay()},
			{Delay, in.PSlowPlan, "slowplan", in.slowPlanDelay()},
		}
	case PointCacheGet, PointCacheAdd:
		probes = []probe{{Delay, in.PCacheStall, "cachestall", in.cacheStallDelay()}}
	}
	for _, pr := range probes {
		if pr.p > 0 && unit(in.Seed, point+":"+pr.salt, "", int(seq), 0) < pr.p {
			return in.serveFault(point, pr.kind, pr.delay)
		}
	}
	return nil
}

// serveFault materialises a serve-path decision into a Fault value.
func (in *ServeInjector) serveFault(point string, kind Kind, delay time.Duration) *Fault {
	f := &Fault{Kind: kind}
	switch kind {
	case None:
		return nil
	case Delay:
		f.Delay = delay
		if f.Delay <= 0 {
			f.Delay = in.defaultDelay(point)
		}
	case Error, CoreLoss:
		f.Err = serveErr(point)
	}
	return f
}

func (in *ServeInjector) defaultDelay(point string) time.Duration {
	switch point {
	case PointColdPlan:
		return in.slowPlanDelay()
	case PointCacheGet, PointCacheAdd:
		return in.cacheStallDelay()
	}
	return DefaultDelay
}

func (in *ServeInjector) slowPlanDelay() time.Duration {
	if in.SlowPlanDelay > 0 {
		return in.SlowPlanDelay
	}
	return DefaultSlowPlanDelay
}

func (in *ServeInjector) leakDelay() time.Duration {
	if in.LeakDelay > 0 {
		return in.LeakDelay
	}
	return DefaultLeakDelay
}

func (in *ServeInjector) cacheStallDelay() time.Duration {
	if in.CacheStallDelay > 0 {
		return in.CacheStallDelay
	}
	return DefaultCacheStallDelay
}

func serveErr(point string) error {
	return &servePointError{point: point}
}

// servePointError wraps ErrInjected with the injection point.
type servePointError struct{ point string }

func (e *servePointError) Error() string { return "fault: injected failure at " + e.point }
func (e *servePointError) Unwrap() error { return ErrInjected }

// Sleep stalls for d or until ctx is done, whichever comes first — the
// cancelable sleep every delay-kind serve fault must use, so an injected
// stall never outlives the request deadline it is supposed to exercise.
func Sleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
