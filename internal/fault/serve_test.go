package fault

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestServeInjectorNilAndInactive(t *testing.T) {
	var nilInj *ServeInjector
	if nilInj.Active() {
		t.Fatal("nil injector reports active")
	}
	if f := nilInj.Decide(PointColdPlan, 1); f != nil {
		t.Fatalf("nil injector injected %+v", f)
	}
	if s := nilInj.NextSeq(); s != 0 {
		t.Fatalf("nil injector seq %d", s)
	}
	zero := &ServeInjector{Seed: 42}
	if zero.Active() {
		t.Fatal("zero injector reports active")
	}
	for seq := uint64(1); seq <= 100; seq++ {
		for _, pt := range []string{PointHandler, PointColdPlan, PointCacheGet, PointCacheAdd} {
			if f := zero.Decide(pt, seq); f != nil {
				t.Fatalf("zero injector injected %+v at %s seq %d", f, pt, seq)
			}
		}
	}
}

// TestServeInjectorDeterministic is the seeding contract: two injectors
// with the same seed and probabilities make identical decisions at every
// (point, seq), and a different seed makes different ones somewhere.
func TestServeInjectorDeterministic(t *testing.T) {
	mk := func(seed int64) *ServeInjector {
		return &ServeInjector{
			Seed:          seed,
			PHandlerPanic: 0.05,
			PSlowPlan:     0.2,
			PLeakLeader:   0.05,
			PPlanError:    0.1,
			PPlanPanic:    0.05,
			PCacheStall:   0.2,
		}
	}
	a, b, c := mk(7), mk(7), mk(8)
	points := []string{PointHandler, PointColdPlan, PointCacheGet, PointCacheAdd}
	differs := false
	for seq := uint64(1); seq <= 500; seq++ {
		for _, pt := range points {
			fa, fb, fc := a.Decide(pt, seq), b.Decide(pt, seq), c.Decide(pt, seq)
			if (fa == nil) != (fb == nil) {
				t.Fatalf("same seed disagrees at %s seq %d", pt, seq)
			}
			if fa != nil && (fa.Kind != fb.Kind || fa.Delay != fb.Delay) {
				t.Fatalf("same seed, different fault at %s seq %d: %+v vs %+v", pt, seq, fa, fb)
			}
			if (fa == nil) != (fc == nil) {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("seeds 7 and 8 produced identical decisions over 2000 probes")
	}
}

// TestServeInjectorRates sanity-checks the probabilistic model: observed
// injection rates land near the configured probabilities.
func TestServeInjectorRates(t *testing.T) {
	in := &ServeInjector{Seed: 3, PSlowPlan: 0.3}
	hits := 0
	const n = 4000
	for seq := uint64(1); seq <= n; seq++ {
		if f := in.Decide(PointColdPlan, seq); f != nil {
			if f.Kind != Delay || f.Delay != DefaultSlowPlanDelay {
				t.Fatalf("unexpected fault %+v", f)
			}
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.25 || rate > 0.35 {
		t.Fatalf("slow-plan rate %.3f, want ~0.3", rate)
	}
}

func TestServeInjectorScriptWins(t *testing.T) {
	in := &ServeInjector{
		Seed: 1,
		Script: []ServeScript{
			{Point: PointColdPlan, Seq: 3, Kind: Panic},
			{Point: PointColdPlan, Seq: 4, Kind: Delay, Delay: 123 * time.Millisecond},
			{Point: PointHandler, Seq: 5, Kind: Panic},
			{Point: PointCacheGet, Seq: 6, Kind: Delay},
		},
	}
	if !in.Active() {
		t.Fatal("scripted injector reports inactive")
	}
	if f := in.Decide(PointColdPlan, 2); f != nil {
		t.Fatalf("unscripted seq hit: %+v", f)
	}
	if f := in.Decide(PointColdPlan, 3); f == nil || f.Kind != Panic {
		t.Fatalf("scripted panic missing: %+v", f)
	}
	if f := in.Decide(PointColdPlan, 4); f == nil || f.Kind != Delay || f.Delay != 123*time.Millisecond {
		t.Fatalf("scripted delay wrong: %+v", f)
	}
	if f := in.Decide(PointHandler, 3); f != nil {
		t.Fatalf("point mismatch hit: %+v", f)
	}
	if f := in.Decide(PointCacheGet, 6); f == nil || f.Delay != DefaultCacheStallDelay {
		t.Fatalf("scripted cache stall default delay wrong: %+v", f)
	}
}

func TestServeInjectorSeqMonotonic(t *testing.T) {
	in := &ServeInjector{Seed: 1}
	for want := uint64(1); want <= 5; want++ {
		if got := in.NextSeq(); got != want {
			t.Fatalf("NextSeq = %d, want %d", got, want)
		}
	}
}

func TestServeInjectorErrorWrapsInjected(t *testing.T) {
	in := &ServeInjector{Seed: 1, Script: []ServeScript{{Point: PointColdPlan, Seq: 1, Kind: Error}}}
	f := in.Decide(PointColdPlan, 1)
	if f == nil || f.Err == nil {
		t.Fatalf("no error fault: %+v", f)
	}
	if !errors.Is(f.Err, ErrInjected) {
		t.Fatalf("injected serve error does not wrap ErrInjected: %v", f.Err)
	}
}

func TestSleepCancelable(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	Sleep(ctx, time.Minute)
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("Sleep ignored canceled context (%v)", d)
	}
	Sleep(context.Background(), 0) // no-op, must not block
}
