package graph

import "fmt"

// ContractionResult is the output of ContractChains: the contracted graph
// and the mapping from original task ids to the id of the contracted node
// containing them.
type ContractionResult struct {
	Graph *Graph
	// NodeOf maps each original task id to its node in the contracted
	// graph.
	NodeOf []TaskID
}

// ContractChains implements step 1 of the layer-based scheduling algorithm
// (Section 3.2): it identifies maximal linear chains of the M-task graph
// and replaces each chain by a single node whose costs are the accumulated
// computation and communication costs of the merged tasks. Merged nodes
// record the original member ids in execution order, so that a schedule of
// the contracted graph can be expanded back to the original tasks.
//
// A linear chain is a path M1 -> M2 -> ... -> Mn (n >= 2) where every node
// except the entry has exactly one predecessor (its chain predecessor) and
// every node except the exit has exactly one successor (its chain
// successor). Start and stop markers and composed nodes are never merged.
func ContractChains(g *Graph) *ContractionResult {
	n := g.Len()
	mergeable := func(id TaskID) bool {
		k := g.Task(id).Kind
		return k == KindBasic
	}
	// next[u] = v if u -> v is a chain link: u has exactly one
	// successor v, v has exactly one predecessor u, both mergeable.
	next := make([]TaskID, n)
	prev := make([]TaskID, n)
	for i := range next {
		next[i] = None
		prev[i] = None
	}
	for u := 0; u < n; u++ {
		uid := TaskID(u)
		if !mergeable(uid) || len(g.Succ(uid)) != 1 {
			continue
		}
		v := g.Succ(uid)[0]
		if !mergeable(v) || len(g.Pred(v)) != 1 {
			continue
		}
		next[uid] = v
		prev[v] = uid
	}

	res := &ContractionResult{Graph: New(g.Name + "/contracted"), NodeOf: make([]TaskID, n)}
	for i := range res.NodeOf {
		res.NodeOf[i] = None
	}

	// Walk each maximal chain from its head (a node with no chain
	// predecessor) and emit one node per chain; non-chain tasks are
	// copied as-is. Iterate in id order for determinism.
	for u := 0; u < n; u++ {
		uid := TaskID(u)
		if res.NodeOf[uid] != None || prev[uid] != None {
			continue // already emitted, or interior of some chain
		}
		if next[uid] == None {
			// Singleton: copy the task.
			t := *g.Task(uid)
			t.Members = []TaskID{uid}
			nid := res.Graph.AddTask(&t)
			res.NodeOf[uid] = nid
			continue
		}
		// Head of a chain of length >= 2: accumulate members.
		var members []TaskID
		var work float64
		var commCount, bcastCount int
		commBytes, bcastBytes := 0, 0
		maxWidth := 0
		for id := uid; id != None; id = next[id] {
			t := g.Task(id)
			members = append(members, id)
			work += t.Work
			commCount += t.CommCount
			bcastCount += t.BcastCount
			if t.CommBytes > commBytes {
				commBytes = t.CommBytes
			}
			if t.BcastBytes > bcastBytes {
				bcastBytes = t.BcastBytes
			}
			if t.MaxWidth > 0 && (maxWidth == 0 || t.MaxWidth < maxWidth) {
				maxWidth = t.MaxWidth
			}
		}
		exit := members[len(members)-1]
		node := &Task{
			Name:       fmt.Sprintf("chain[%s..%s]", g.Task(uid).Name, g.Task(exit).Name),
			Kind:       KindBasic,
			Work:       work,
			CommBytes:  commBytes,
			CommCount:  commCount,
			BcastBytes: bcastBytes,
			BcastCount: bcastCount,
			OutBytes:   g.Task(exit).OutBytes,
			MaxWidth:   maxWidth,
			Members:    members,
		}
		nid := res.Graph.AddTask(node)
		for _, m := range members {
			res.NodeOf[m] = nid
		}
	}

	// Re-create edges between contracted nodes. Chain-internal edges
	// vanish; parallel edges merge (AddEdge accumulates bytes).
	for _, e := range g.Edges() {
		cf, ct := res.NodeOf[e.From], res.NodeOf[e.To]
		if cf == ct {
			continue
		}
		bytes := e.Bytes
		if bytes == 0 {
			bytes = g.Task(e.From).OutBytes
		}
		res.Graph.MustEdge(cf, ct, bytes)
	}
	return res
}

// Layer is a set of pairwise independent tasks scheduled together.
type Layer []TaskID

// Layers partitions the graph into layers of independent M-tasks (step 2 of
// the layer-based algorithm): a greedy algorithm runs over the graph in a
// breadth-first manner and puts as many independent nodes as possible into
// the current layer — i.e. every task enters the earliest layer in which
// all of its predecessors have already been placed. Start and stop markers
// carry no computation and are not assigned to any layer.
func Layers(g *Graph) []Layer {
	n := g.Len()
	indeg := make([]int, n)
	skip := func(id TaskID) bool {
		k := g.Task(id).Kind
		return k == KindStart || k == KindStop
	}
	for id := 0; id < n; id++ {
		indeg[id] = len(g.Pred(TaskID(id)))
	}
	placed := make([]bool, n)
	// Start/stop markers are released immediately: treat them as placed
	// once their predecessors are, but never emit them.
	var layers []Layer
	remaining := n
	for remaining > 0 {
		var ready []TaskID
		for id := 0; id < n; id++ {
			if !placed[id] && indeg[id] == 0 {
				ready = append(ready, TaskID(id))
			}
		}
		if len(ready) == 0 {
			// Cycle: give up (Validate reports this properly).
			break
		}
		var layer Layer
		for _, id := range ready {
			placed[id] = true
			remaining--
			for _, s := range g.Succ(id) {
				indeg[s]--
			}
			if !skip(id) {
				layer = append(layer, id)
			}
		}
		if len(layer) > 0 {
			layers = append(layers, layer)
		}
	}
	return layers
}
