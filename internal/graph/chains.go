package graph

import (
	"slices"
)

// ContractionResult is the output of ContractChains: the contracted graph
// and the mapping from original task ids to the id of the contracted node
// containing them.
type ContractionResult struct {
	Graph *Graph
	// NodeOf maps each original task id to its node in the contracted
	// graph.
	NodeOf []TaskID
}

// ContractChains implements step 1 of the layer-based scheduling algorithm
// (Section 3.2): it identifies maximal linear chains of the M-task graph
// and replaces each chain by a single node whose costs are the accumulated
// computation and communication costs of the merged tasks. Merged nodes
// record the original member ids in execution order, so that a schedule of
// the contracted graph can be expanded back to the original tasks.
//
// A linear chain is a path M1 -> M2 -> ... -> Mn (n >= 2) where every node
// except the entry has exactly one predecessor (its chain predecessor) and
// every node except the exit has exactly one successor (its chain
// successor). Start and stop markers and composed nodes are never merged.
//
// The contraction is a streaming single pass over the input: output nodes
// and the members slab are sized exactly up front, edges are emitted by
// walking the per-source adjacency lists directly (no intermediate edge
// slice, no sort) and appended to the output without any map lookups —
// external out-edges leave only chain exits and external in-edges enter
// only chain heads, so a contracted (from, to) pair can never repeat and
// no merge map is needed. Contracting an E-edge graph is O(V+E).
func ContractChains(g *Graph) *ContractionResult {
	n := g.Len()
	mergeable := func(id TaskID) bool {
		k := g.Task(id).Kind
		return k == KindBasic
	}
	// next[u] = v if u -> v is a chain link: u has exactly one
	// successor v, v has exactly one predecessor u, both mergeable.
	// Both arrays come from one allocation.
	linkBuf := make([]TaskID, 2*n)
	next, prev := linkBuf[:n:n], linkBuf[n:]
	for i := range linkBuf {
		linkBuf[i] = None
	}
	links := 0
	for u := 0; u < n; u++ {
		uid := TaskID(u)
		if !mergeable(uid) || len(g.Succ(uid)) != 1 {
			continue
		}
		v := g.Succ(uid)[0]
		if !mergeable(v) || len(g.Pred(v)) != 1 {
			continue
		}
		next[uid] = v
		prev[v] = uid
		links++
	}

	// Chain-free graphs (common for solver methods whose micro steps are
	// already fused) contract to themselves: share the input instead of
	// copying it, exactly as the scheduler's DisableChainContraction path
	// does. The input is treated as immutable after planning either way
	// (cached mappings reference it through Schedule.Source).
	if links == 0 {
		res := &ContractionResult{Graph: g, NodeOf: make([]TaskID, n)}
		for i := range res.NodeOf {
			res.NodeOf[i] = TaskID(i)
		}
		return res
	}

	// Every node with no chain predecessor heads exactly one output node
	// (a chain of length >= 2, or itself); size the output exactly.
	outNodes := 0
	for u := 0; u < n; u++ {
		if prev[u] == None {
			outNodes++
		}
	}

	res := &ContractionResult{Graph: New(g.Name + "/contracted"), NodeOf: make([]TaskID, n)}
	res.Graph.Grow(outNodes, g.NumEdges())
	for i := range res.NodeOf {
		res.NodeOf[i] = None
	}

	// Node and member storage come from two exactly-sized slabs: every
	// original task appears in exactly one Members list, and every output
	// node is one Task. Appending within fixed capacity never reallocates,
	// so &taskSlab[i] stays valid.
	taskSlab := make([]Task, outNodes)
	memberSlab := make([]TaskID, 0, n)
	emitted := 0

	// Walk each maximal chain from its head (a node with no chain
	// predecessor) and emit one node per chain; non-chain tasks are
	// copied as-is. Iterate in id order for determinism.
	for u := 0; u < n; u++ {
		uid := TaskID(u)
		if prev[uid] != None {
			continue // interior of some chain
		}
		node := &taskSlab[emitted]
		emitted++
		if next[uid] == None {
			// Singleton: copy the task.
			*node = *g.Task(uid)
			memberSlab = append(memberSlab, uid)
			node.Members = memberSlab[len(memberSlab)-1 : len(memberSlab) : len(memberSlab)]
			nid := res.Graph.AddTask(node)
			res.NodeOf[uid] = nid
			continue
		}
		// Head of a chain of length >= 2: accumulate members.
		start := len(memberSlab)
		var work float64
		var commCount, bcastCount int
		commBytes, bcastBytes := 0, 0
		maxWidth := 0
		for id := uid; id != None; id = next[id] {
			t := g.Task(id)
			memberSlab = append(memberSlab, id)
			work += t.Work
			commCount += t.CommCount
			bcastCount += t.BcastCount
			if t.CommBytes > commBytes {
				commBytes = t.CommBytes
			}
			if t.BcastBytes > bcastBytes {
				bcastBytes = t.BcastBytes
			}
			if t.MaxWidth > 0 && (maxWidth == 0 || t.MaxWidth < maxWidth) {
				maxWidth = t.MaxWidth
			}
		}
		members := memberSlab[start:len(memberSlab):len(memberSlab)]
		exit := members[len(members)-1]
		*node = Task{
			Name:       "chain[" + g.Task(uid).Name + ".." + g.Task(exit).Name + "]",
			Kind:       KindBasic,
			Work:       work,
			CommBytes:  commBytes,
			CommCount:  commCount,
			BcastBytes: bcastBytes,
			BcastCount: bcastCount,
			OutBytes:   g.Task(exit).OutBytes,
			MaxWidth:   maxWidth,
			Members:    members,
		}
		nid := res.Graph.AddTask(node)
		for _, m := range members {
			res.NodeOf[m] = nid
		}
	}

	// Exact-degree prepass so edge emission appends into slabs carved by
	// PresizeAdjacency instead of growing per-node adjacency lists one
	// edge at a time.
	degBuf := make([]int, 2*outNodes)
	outDeg, inDeg := degBuf[:outNodes:outNodes], degBuf[outNodes:]
	for u := 0; u < n; u++ {
		for _, e := range g.out[u] {
			cf, ct := res.NodeOf[e.From], res.NodeOf[e.To]
			if cf == ct {
				continue
			}
			outDeg[cf]++
			inDeg[ct]++
		}
	}
	res.Graph.PresizeAdjacency(outDeg, inDeg)

	// Re-create edges between contracted nodes by streaming over the
	// per-source adjacency lists in id order. Chain-internal edges vanish;
	// the remaining pairs are unique (see above), so they are appended
	// without duplicate-merging.
	for u := 0; u < n; u++ {
		for _, e := range g.out[u] {
			cf, ct := res.NodeOf[e.From], res.NodeOf[e.To]
			if cf == ct {
				continue
			}
			bytes := e.Bytes
			if bytes == 0 {
				bytes = g.Task(e.From).OutBytes
			}
			res.Graph.AddUniqueEdge(cf, ct, bytes)
		}
	}
	return res
}

// Layer is a set of pairwise independent tasks scheduled together.
type Layer []TaskID

// Layers partitions the graph into layers of independent M-tasks (step 2 of
// the layer-based algorithm): a greedy algorithm runs over the graph in a
// breadth-first manner and puts as many independent nodes as possible into
// the current layer — i.e. every task enters the earliest layer in which
// all of its predecessors have already been placed. Start and stop markers
// carry no computation and are not assigned to any layer.
//
// The partition runs in O(V + E + V log w) for maximum layer width w: each
// level's ready set is carried forward and sorted, instead of rescanning
// every task per level (which made layering time-step-unrolled graphs
// quadratic in the step count).
func Layers(g *Graph) []Layer {
	n := g.Len()
	indeg := make([]int, n)
	skip := func(id TaskID) bool {
		k := g.Task(id).Kind
		return k == KindStart || k == KindStop
	}
	// ready and next are the two halves of one buffer, swapped per level.
	readyBuf := make([]TaskID, 0, 2*n)
	ready, next := readyBuf[0:0:n], readyBuf[n:n:2*n]
	for id := 0; id < n; id++ {
		indeg[id] = len(g.Pred(TaskID(id)))
		if indeg[id] == 0 {
			ready = append(ready, TaskID(id))
		}
	}
	// Every task lands in at most one layer, so all layers are carved
	// from one exactly-sized slab (capacity never grows, so the windows
	// stay valid).
	layerSlab := make([]TaskID, 0, n)
	var layers []Layer
	for len(ready) > 0 {
		// Emit in ascending id order, matching the former full scan.
		slices.Sort(ready)
		start := len(layerSlab)
		next = next[:0]
		for _, id := range ready {
			for _, s := range g.succ[id] {
				indeg[s]--
				if indeg[s] == 0 {
					next = append(next, s)
				}
			}
			if !skip(id) {
				layerSlab = append(layerSlab, id)
			}
		}
		if len(layerSlab) > start {
			layers = append(layers, Layer(layerSlab[start:len(layerSlab):len(layerSlab)]))
		}
		ready, next = next, ready
		// A cycle leaves tasks with positive in-degree unplaced; the
		// loop simply ends (Validate reports cycles properly).
	}
	return layers
}
