package graph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT writes the graph in Graphviz DOT format: basic tasks as boxes
// annotated with their work, composed nodes as double octagons, start/stop
// markers as circles, and edges labelled with their re-distribution
// payload. Composed nodes' body graphs are rendered as clusters.
func (g *Graph) WriteDOT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [fontsize=10];\n", g.Name)
	g.writeDOTBody(&b, "")
	fmt.Fprintln(&b, "}")
	_, err := io.WriteString(w, b.String())
	return err
}

// writeDOTBody emits nodes and edges with the given id prefix (used for
// cluster nesting).
func (g *Graph) writeDOTBody(b *strings.Builder, prefix string) {
	for _, t := range g.tasks {
		id := fmt.Sprintf("%sn%d", prefix, t.ID)
		switch t.Kind {
		case KindStart, KindStop:
			fmt.Fprintf(b, "  %s [label=%q shape=circle];\n", id, t.Name)
		case KindComposed:
			fmt.Fprintf(b, "  %s [label=%q shape=doubleoctagon];\n", id, t.Name)
			if t.Sub != nil {
				sub := fmt.Sprintf("%ss%d_", prefix, t.ID)
				fmt.Fprintf(b, "  subgraph cluster_%s {\n    label=%q;\n", strings.TrimSuffix(sub, "_"), t.Sub.Name)
				t.Sub.writeDOTBody(b, sub)
				fmt.Fprintln(b, "  }")
				// Tie the composed node to its body entry.
				fmt.Fprintf(b, "  %s -> %sn0 [style=dashed arrowhead=none];\n", id, sub)
			}
		default:
			fmt.Fprintf(b, "  %s [label=\"%s\\nwork=%.3g\" shape=box];\n", id, escapeDOT(t.Name), t.Work)
		}
	}
	for _, e := range g.Edges() {
		label := ""
		if bytes := g.EdgeBytes(e.From, e.To); bytes > 0 {
			label = fmt.Sprintf(" [label=\"%dB\" fontsize=8]", bytes)
		}
		fmt.Fprintf(b, "  %sn%d -> %sn%d%s;\n", prefix, e.From, prefix, e.To, label)
	}
}

func escapeDOT(s string) string {
	return strings.ReplaceAll(s, `"`, `\"`)
}
