package graph

import (
	"errors"
	"testing"
)

// TestCycleWrapsErrCyclicGraph checks that TopoOrder and Validate report
// cycles through the sentinel.
func TestCycleWrapsErrCyclicGraph(t *testing.T) {
	g := New("cycle")
	a := g.AddBasic("a", 1)
	b := g.AddBasic("b", 1)
	c := g.AddBasic("c", 1)
	g.MustEdge(a, b, 0)
	g.MustEdge(b, c, 0)
	g.MustEdge(c, a, 0)

	if _, err := g.TopoOrder(); !errors.Is(err, ErrCyclicGraph) {
		t.Fatalf("TopoOrder = %v, want ErrCyclicGraph", err)
	}
	if err := g.Validate(); !errors.Is(err, ErrCyclicGraph) {
		t.Fatalf("Validate = %v, want ErrCyclicGraph", err)
	}

	acyclic := New("ok")
	x := acyclic.AddBasic("x", 1)
	y := acyclic.AddBasic("y", 1)
	acyclic.MustEdge(x, y, 0)
	if err := acyclic.Validate(); err != nil {
		t.Fatalf("acyclic graph rejected: %v", err)
	}
}
