// Package graph implements M-task graphs: directed acyclic graphs whose
// nodes are multiprocessor tasks (M-tasks) and whose edges are input-output
// relations between tasks (Section 2.1 of the paper). The package provides
// validation, topological ordering, independence tests, the linear-chain
// contraction of the layer-based scheduling algorithm (Section 3.2, step 1)
// and the greedy partitioning into layers of independent tasks (step 2).
package graph

import (
	"container/heap"
	"errors"
	"fmt"
	"slices"
	"sync"
)

// ErrCyclicGraph is the sentinel wrapped by TopoOrder and Validate when the
// graph contains a dependency cycle; test with errors.Is.
var ErrCyclicGraph = errors.New("graph: cycle detected")

// TaskID identifies a task within one Graph.
type TaskID int

// None is the invalid task id.
const None TaskID = -1

// Kind distinguishes plain computational tasks from the structural start
// and stop markers that the CM-task compiler inserts, and from composed
// tasks that contain a whole subgraph (e.g. a while loop whose body is a
// lower-level M-task graph).
type Kind int

const (
	// KindBasic is an ordinary M-task carrying computation.
	KindBasic Kind = iota
	// KindStart is the unique entry marker (no computation).
	KindStart
	// KindStop is the unique exit marker (no computation).
	KindStop
	// KindComposed is a node representing an entire subgraph, e.g. a
	// loop whose body is scheduled hierarchically.
	KindComposed
)

func (k Kind) String() string {
	switch k {
	case KindBasic:
		return "basic"
	case KindStart:
		return "start"
	case KindStop:
		return "stop"
	case KindComposed:
		return "composed"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Task is one node of an M-task graph.
type Task struct {
	ID   TaskID
	Name string
	Kind Kind

	// Work is the sequential computation time Tcomp(M) of the task in
	// abstract work units (converted to seconds by the cost model).
	Work float64

	// CommBytes is the payload size in bytes of the task-internal
	// collective communication (e.g. the multi-broadcast of a micro
	// step); CommCount is how many such collectives one activation
	// executes. Zero means a communication-free task.
	CommBytes int
	CommCount int

	// BcastBytes/BcastCount describe task-internal broadcast operations
	// (e.g. the pivot-row broadcasts of the DIIRK method's distributed
	// linear solver).
	BcastBytes int
	BcastCount int

	// OutBytes is the size of the task's output data, used for
	// re-distribution costs on outgoing edges when no explicit edge
	// size is given.
	OutBytes int

	// MaxWidth bounds the number of cores the task can use (0 = no
	// bound). Used e.g. for tasks with limited inner parallelism.
	MaxWidth int

	// Members lists the original task ids merged into this node by
	// linear-chain contraction (nil for original tasks).
	Members []TaskID

	// Sub is the lower-level graph of a composed node, if any.
	Sub *Graph

	// Meta carries application-specific data (e.g. the (i,j) micro-step
	// indices of the extrapolation method, or a zone index).
	Meta map[string]int
}

// Edge is a directed input-output relation between two tasks. Bytes is the
// amount of data re-distributed along the edge if producer and consumer run
// on different core groups (0 means: use the producer's OutBytes).
type Edge struct {
	From, To TaskID
	Bytes    int
}

// Graph is an M-task graph. The zero value is an empty graph ready to use.
type Graph struct {
	Name  string
	tasks []*Task
	succ  [][]TaskID
	pred  [][]TaskID
	// out mirrors succ with the *Edge values, so edge enumeration does
	// not have to go through the edges map.
	out    [][]*Edge
	nedges int

	// edges is the (from, to) -> *Edge lookup index. It is built lazily
	// from out on the first point lookup (Edge, AddEdge), so graphs
	// assembled through the streaming path (AddUniqueEdge, chain
	// contraction) never pay for a per-edge map insert they may never
	// need. idxMu makes the lazy build safe when an immutable graph is
	// shared between goroutines (cached mappings are).
	edges map[[2]TaskID]*Edge
	idxMu sync.Mutex

	// edgeSlab, when carved by PresizeAdjacency, backs Edge values so
	// streaming builders allocate edges in one block instead of one
	// object each. Its capacity is fixed at carve time, so *Edge
	// pointers into it stay valid.
	edgeSlab []Edge
}

// New returns an empty named graph.
func New(name string) *Graph {
	return &Graph{Name: name}
}

// Grow preallocates capacity for n additional tasks and hints at e
// additional edges, so bulk builders (generated benchmark graphs, chain
// contraction, JSON decoding) append without intermediate reallocations.
func (g *Graph) Grow(n, e int) {
	if n > 0 {
		g.tasks = slices.Grow(g.tasks, n)
		g.succ = slices.Grow(g.succ, n)
		g.pred = slices.Grow(g.pred, n)
		g.out = slices.Grow(g.out, n)
	}
	_ = e // succ/pred/out grow per task; the edge index is lazy
}

// AddTask adds a task and returns its id. The task's ID field is set by the
// graph; any preset value is ignored.
func (g *Graph) AddTask(t *Task) TaskID {
	id := TaskID(len(g.tasks))
	t.ID = id
	g.tasks = append(g.tasks, t)
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	g.out = append(g.out, nil)
	return id
}

// AddBasic is a convenience for adding a basic computational task.
func (g *Graph) AddBasic(name string, work float64) TaskID {
	return g.AddTask(&Task{Name: name, Kind: KindBasic, Work: work})
}

// AddEdge adds the input-output relation from -> to carrying the given
// number of bytes. Duplicate edges are merged (bytes accumulate). Self
// edges are rejected.
func (g *Graph) AddEdge(from, to TaskID, bytes int) error {
	if !g.valid(from) || !g.valid(to) {
		return fmt.Errorf("graph %s: edge %d->%d references unknown task", g.Name, from, to)
	}
	if from == to {
		return fmt.Errorf("graph %s: self edge on task %d", g.Name, from)
	}
	idx := g.edgeIndex()
	key := [2]TaskID{from, to}
	if e, ok := idx[key]; ok {
		e.Bytes += bytes
		return nil
	}
	e := &Edge{From: from, To: to, Bytes: bytes}
	idx[key] = e
	g.appendEdge(e)
	return nil
}

// AddUniqueEdge is the streaming counterpart of AddEdge for bulk builders:
// it appends the edge from -> to without consulting (or building) the edge
// lookup index, so ingesting an E-edge graph is O(E) with no intermediate
// maps. The caller guarantees that both ids are valid, from != to, and
// that the edge does not duplicate an existing one — duplicates are NOT
// merged on this path (Validate and the lazy index would then see the
// first occurrence only). Chain contraction and the generated benchmark
// graphs satisfy this by construction.
func (g *Graph) AddUniqueEdge(from, to TaskID, bytes int) {
	e := g.newEdge(from, to, bytes)
	if g.edges != nil {
		g.edges[[2]TaskID{from, to}] = e
	}
	g.appendEdge(e)
}

// newEdge allocates an Edge, carving from the presized slab while it has
// room (the slab's capacity never changes, so pointers into it are
// stable).
func (g *Graph) newEdge(from, to TaskID, bytes int) *Edge {
	if len(g.edgeSlab) < cap(g.edgeSlab) {
		g.edgeSlab = g.edgeSlab[:len(g.edgeSlab)+1]
		e := &g.edgeSlab[len(g.edgeSlab)-1]
		e.From, e.To, e.Bytes = from, to, bytes
		return e
	}
	return &Edge{From: from, To: to, Bytes: bytes}
}

// PresizeAdjacency carves exact-capacity adjacency lists for tasks
// 0..len(outDeg)-1 out of two shared slabs (one TaskID slab holding the
// succ windows followed by the pred windows, one *Edge slab) plus an Edge
// value slab, given every task's final out- and in-degree. Streaming
// builders that know the degrees up front (chain contraction counts them
// in a prepass, generated graphs know them by construction) call it once
// after adding their tasks; the AddUniqueEdge appends that follow stay
// inside the carved capacities, so ingesting E edges costs three block
// allocations instead of O(E) incremental slice growths and E edge-object
// allocations. Appending
// beyond a carved capacity stays correct — the slice simply grows off the
// slab. Existing adjacency entries are preserved.
func (g *Graph) PresizeAdjacency(outDeg, inDeg []int) {
	totOut, totIn := 0, 0
	for _, d := range outDeg {
		totOut += d
	}
	for _, d := range inDeg {
		totIn += d
	}
	// succ and pred share one TaskID slab (succ windows first, pred
	// windows after), halving the allocation count of the prepass.
	idSlab := make([]TaskID, 0, totOut+totIn)
	outSlab := make([]*Edge, 0, totOut)
	// A fresh edge slab: edges already handed out keep their old backing
	// array alive through their own pointers.
	g.edgeSlab = make([]Edge, 0, totOut)
	oOff, iOff := 0, totOut
	for u, d := range outDeg {
		g.succ[u] = append(idSlab[oOff:oOff:oOff+d], g.succ[u]...)
		g.out[u] = append(outSlab[oOff:oOff:oOff+d], g.out[u]...)
		oOff += d
	}
	for u, d := range inDeg {
		g.pred[u] = append(idSlab[iOff:iOff:iOff+d], g.pred[u]...)
		iOff += d
	}
}

// appendEdge links an edge into the adjacency slices.
func (g *Graph) appendEdge(e *Edge) {
	g.succ[e.From] = append(g.succ[e.From], e.To)
	g.pred[e.To] = append(g.pred[e.To], e.From)
	g.out[e.From] = append(g.out[e.From], e)
	g.nedges++
}

// edgeIndex returns the (from, to) -> *Edge map, building it from the
// adjacency slices on first use. The build is guarded so concurrent point
// lookups on a shared immutable graph are safe; mutation (AddEdge) is
// construction-time and single-threaded as before.
func (g *Graph) edgeIndex() map[[2]TaskID]*Edge {
	g.idxMu.Lock()
	defer g.idxMu.Unlock()
	if g.edges == nil {
		idx := make(map[[2]TaskID]*Edge, g.nedges)
		for _, es := range g.out {
			for _, e := range es {
				idx[[2]TaskID{e.From, e.To}] = e
			}
		}
		g.edges = idx
	}
	return g.edges
}

// MustEdge is AddEdge that panics on error, for graph construction code
// whose task ids are known-correct by construction.
func (g *Graph) MustEdge(from, to TaskID, bytes int) {
	if err := g.AddEdge(from, to, bytes); err != nil {
		panic(err)
	}
}

func (g *Graph) valid(id TaskID) bool { return id >= 0 && int(id) < len(g.tasks) }

// Task returns the task with the given id.
func (g *Graph) Task(id TaskID) *Task { return g.tasks[id] }

// Len returns the number of tasks.
func (g *Graph) Len() int { return len(g.tasks) }

// Tasks returns all tasks in id order. The slice is shared; do not modify.
func (g *Graph) Tasks() []*Task { return g.tasks }

// Succ returns the successor ids of a task. Shared slice; do not modify.
func (g *Graph) Succ(id TaskID) []TaskID { return g.succ[id] }

// Pred returns the predecessor ids of a task. Shared slice; do not modify.
func (g *Graph) Pred(id TaskID) []TaskID { return g.pred[id] }

// Edge returns the edge from->to, or nil.
func (g *Graph) Edge(from, to TaskID) *Edge { return g.edgeIndex()[[2]TaskID{from, to}] }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return g.nedges }

// Edges returns all edges in deterministic (from, to) order. The
// per-source edge lists are concatenated in source order and each small
// tail is sorted by destination — no map iteration and no global sort,
// which matters on the planning hot path (ContractChains enumerates the
// edges of every solver graph it contracts).
func (g *Graph) Edges() []*Edge {
	es := make([]*Edge, 0, g.nedges)
	for u := range g.out {
		es = append(es, g.out[u]...)
		tail := es[len(es)-len(g.out[u]):]
		slices.SortFunc(tail, func(a, b *Edge) int { return int(a.To) - int(b.To) })
	}
	return es
}

// EdgeBytes returns the re-distribution payload of the edge from->to,
// falling back to the producer's OutBytes when the edge carries no explicit
// size.
func (g *Graph) EdgeBytes(from, to TaskID) int {
	e := g.Edge(from, to)
	if e == nil {
		return 0
	}
	if e.Bytes > 0 {
		return e.Bytes
	}
	return g.tasks[from].OutBytes
}

// TotalWork returns the sum of the Work of all tasks.
func (g *Graph) TotalWork() float64 {
	var w float64
	for _, t := range g.tasks {
		w += t.Work
	}
	return w
}

// TopoOrder returns a topological order of the task ids, or an error if the
// graph contains a cycle. The order is deterministic (Kahn's algorithm with
// a sorted ready set, smallest id first).
// idHeap is a min-heap of task ids backing TopoOrder's ready queue.
type idHeap struct{ ids []TaskID }

func (h *idHeap) Len() int           { return len(h.ids) }
func (h *idHeap) Less(i, j int) bool { return h.ids[i] < h.ids[j] }
func (h *idHeap) Swap(i, j int)      { h.ids[i], h.ids[j] = h.ids[j], h.ids[i] }
func (h *idHeap) Push(x interface{}) { h.ids = append(h.ids, x.(TaskID)) }
func (h *idHeap) Pop() interface{} {
	old := h.ids
	n := len(old)
	x := old[n-1]
	h.ids = old[:n-1]
	return x
}

func (g *Graph) TopoOrder() ([]TaskID, error) {
	indeg := make([]int, len(g.tasks))
	for id := range g.tasks {
		indeg[id] = len(g.pred[id])
	}
	// Min-heap of ready ids: the smallest ready id is emitted first, the
	// same order the previous sort-per-iteration implementation produced,
	// at O((V+E) log V) instead of a full sort per emitted task.
	ready := &idHeap{}
	for id := range g.tasks {
		if indeg[id] == 0 {
			ready.ids = append(ready.ids, TaskID(id))
		}
	}
	heap.Init(ready)
	order := make([]TaskID, 0, len(g.tasks))
	for ready.Len() > 0 {
		id := heap.Pop(ready).(TaskID)
		order = append(order, id)
		for _, s := range g.succ[id] {
			indeg[s]--
			if indeg[s] == 0 {
				heap.Push(ready, s)
			}
		}
	}
	if len(order) != len(g.tasks) {
		return nil, fmt.Errorf("graph %s: %w (%d of %d tasks ordered)", g.Name, ErrCyclicGraph, len(order), len(g.tasks))
	}
	return order, nil
}

// Validate checks that the graph is a DAG and that start/stop markers, if
// present, are unique and are a source / sink respectively.
// cycleFree is the order-agnostic cycle check behind Validate: a plain
// Kahn pass with a FIFO work list. It allocates one integer array (the
// in-degree counts and the work list share a buffer; TaskID's underlying
// type is int, so counts fit) and nothing else — unlike TopoOrder it
// maintains no heap and emits no order, which matters because Validate
// runs on every cold plan.
func (g *Graph) cycleFree() error {
	n := len(g.tasks)
	buf := make([]TaskID, n, 2*n)
	indeg := buf
	queue := buf[n : n : 2*n]
	for id := range g.tasks {
		indeg[id] = TaskID(len(g.pred[id]))
		if indeg[id] == 0 {
			queue = append(queue, TaskID(id))
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		for _, s := range g.succ[queue[qi]] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(queue) != len(g.tasks) {
		return fmt.Errorf("graph %s: %w (%d of %d tasks ordered)", g.Name, ErrCyclicGraph, len(queue), len(g.tasks))
	}
	return nil
}

func (g *Graph) Validate() error {
	if err := g.cycleFree(); err != nil {
		return err
	}
	starts, stops := 0, 0
	for _, t := range g.tasks {
		switch t.Kind {
		case KindStart:
			starts++
			if len(g.pred[t.ID]) != 0 {
				return fmt.Errorf("graph %s: start node %d has predecessors", g.Name, t.ID)
			}
		case KindStop:
			stops++
			if len(g.succ[t.ID]) != 0 {
				return fmt.Errorf("graph %s: stop node %d has successors", g.Name, t.ID)
			}
		}
		if t.Work < 0 {
			return fmt.Errorf("graph %s: task %d has negative work", g.Name, t.ID)
		}
	}
	if starts > 1 || stops > 1 {
		return fmt.Errorf("graph %s: %d start and %d stop nodes (at most one each)", g.Name, starts, stops)
	}
	return nil
}

// AddStartStop inserts a unique start node preceding all sources and a
// unique stop node succeeding all sinks, as the CM-task compiler does
// (Section 2.2.3). It returns the two new ids. Tasks added later are not
// connected automatically.
func (g *Graph) AddStartStop() (start, stop TaskID) {
	var sources, sinks []TaskID
	for id := range g.tasks {
		if len(g.pred[id]) == 0 {
			sources = append(sources, TaskID(id))
		}
		if len(g.succ[id]) == 0 {
			sinks = append(sinks, TaskID(id))
		}
	}
	start = g.AddTask(&Task{Name: "start", Kind: KindStart})
	stop = g.AddTask(&Task{Name: "stop", Kind: KindStop})
	for _, s := range sources {
		g.MustEdge(start, s, 0)
	}
	for _, s := range sinks {
		g.MustEdge(s, stop, 0)
	}
	return start, stop
}

// Reachable reports whether there is a directed path from a to b (a == b
// counts as reachable).
func (g *Graph) Reachable(a, b TaskID) bool {
	if a == b {
		return true
	}
	seen := make([]bool, len(g.tasks))
	stack := []TaskID{a}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.succ[id] {
			if s == b {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// Independent reports whether tasks a and b are independent, i.e. not
// connected by a path in either direction. Independent tasks may be
// executed concurrently on disjoint core groups.
func (g *Graph) Independent(a, b TaskID) bool {
	return a != b && !g.Reachable(a, b) && !g.Reachable(b, a)
}

// CriticalPathWork returns the maximum total Work along any directed path.
func (g *Graph) CriticalPathWork() float64 {
	order, err := g.TopoOrder()
	if err != nil {
		return 0
	}
	finish := make([]float64, len(g.tasks))
	var maxf float64
	for _, id := range order {
		f := g.tasks[id].Work
		var best float64
		for _, p := range g.pred[id] {
			if finish[p] > best {
				best = finish[p]
			}
		}
		finish[id] = best + f
		if finish[id] > maxf {
			maxf = finish[id]
		}
	}
	return maxf
}

// Clone returns a deep copy of the graph structure. Task Meta maps and
// Members slices are copied; Sub graphs are shared (they are scheduled
// hierarchically and never mutated by scheduling).
func (g *Graph) Clone() *Graph {
	c := New(g.Name)
	for _, t := range g.tasks {
		nt := *t
		if t.Meta != nil {
			nt.Meta = make(map[string]int, len(t.Meta))
			for k, v := range t.Meta {
				nt.Meta[k] = v
			}
		}
		if t.Members != nil {
			nt.Members = append([]TaskID(nil), t.Members...)
		}
		c.AddTask(&nt)
	}
	for _, e := range g.Edges() {
		c.MustEdge(e.From, e.To, e.Bytes)
	}
	return c
}
