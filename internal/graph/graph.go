// Package graph implements M-task graphs: directed acyclic graphs whose
// nodes are multiprocessor tasks (M-tasks) and whose edges are input-output
// relations between tasks (Section 2.1 of the paper). The package provides
// validation, topological ordering, independence tests, the linear-chain
// contraction of the layer-based scheduling algorithm (Section 3.2, step 1)
// and the greedy partitioning into layers of independent tasks (step 2).
package graph

import (
	"container/heap"
	"errors"
	"fmt"
	"slices"
)

// ErrCyclicGraph is the sentinel wrapped by TopoOrder and Validate when the
// graph contains a dependency cycle; test with errors.Is.
var ErrCyclicGraph = errors.New("graph: cycle detected")

// TaskID identifies a task within one Graph.
type TaskID int

// None is the invalid task id.
const None TaskID = -1

// Kind distinguishes plain computational tasks from the structural start
// and stop markers that the CM-task compiler inserts, and from composed
// tasks that contain a whole subgraph (e.g. a while loop whose body is a
// lower-level M-task graph).
type Kind int

const (
	// KindBasic is an ordinary M-task carrying computation.
	KindBasic Kind = iota
	// KindStart is the unique entry marker (no computation).
	KindStart
	// KindStop is the unique exit marker (no computation).
	KindStop
	// KindComposed is a node representing an entire subgraph, e.g. a
	// loop whose body is scheduled hierarchically.
	KindComposed
)

func (k Kind) String() string {
	switch k {
	case KindBasic:
		return "basic"
	case KindStart:
		return "start"
	case KindStop:
		return "stop"
	case KindComposed:
		return "composed"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Task is one node of an M-task graph.
type Task struct {
	ID   TaskID
	Name string
	Kind Kind

	// Work is the sequential computation time Tcomp(M) of the task in
	// abstract work units (converted to seconds by the cost model).
	Work float64

	// CommBytes is the payload size in bytes of the task-internal
	// collective communication (e.g. the multi-broadcast of a micro
	// step); CommCount is how many such collectives one activation
	// executes. Zero means a communication-free task.
	CommBytes int
	CommCount int

	// BcastBytes/BcastCount describe task-internal broadcast operations
	// (e.g. the pivot-row broadcasts of the DIIRK method's distributed
	// linear solver).
	BcastBytes int
	BcastCount int

	// OutBytes is the size of the task's output data, used for
	// re-distribution costs on outgoing edges when no explicit edge
	// size is given.
	OutBytes int

	// MaxWidth bounds the number of cores the task can use (0 = no
	// bound). Used e.g. for tasks with limited inner parallelism.
	MaxWidth int

	// Members lists the original task ids merged into this node by
	// linear-chain contraction (nil for original tasks).
	Members []TaskID

	// Sub is the lower-level graph of a composed node, if any.
	Sub *Graph

	// Meta carries application-specific data (e.g. the (i,j) micro-step
	// indices of the extrapolation method, or a zone index).
	Meta map[string]int
}

// Edge is a directed input-output relation between two tasks. Bytes is the
// amount of data re-distributed along the edge if producer and consumer run
// on different core groups (0 means: use the producer's OutBytes).
type Edge struct {
	From, To TaskID
	Bytes    int
}

// Graph is an M-task graph. The zero value is an empty graph ready to use.
type Graph struct {
	Name  string
	tasks []*Task
	succ  [][]TaskID
	pred  [][]TaskID
	// out mirrors succ with the *Edge values, so edge enumeration does
	// not have to go through the edges map.
	out   [][]*Edge
	edges map[[2]TaskID]*Edge
}

// New returns an empty named graph.
func New(name string) *Graph {
	return &Graph{Name: name, edges: make(map[[2]TaskID]*Edge)}
}

// AddTask adds a task and returns its id. The task's ID field is set by the
// graph; any preset value is ignored.
func (g *Graph) AddTask(t *Task) TaskID {
	if g.edges == nil {
		g.edges = make(map[[2]TaskID]*Edge)
	}
	id := TaskID(len(g.tasks))
	t.ID = id
	g.tasks = append(g.tasks, t)
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	g.out = append(g.out, nil)
	return id
}

// AddBasic is a convenience for adding a basic computational task.
func (g *Graph) AddBasic(name string, work float64) TaskID {
	return g.AddTask(&Task{Name: name, Kind: KindBasic, Work: work})
}

// AddEdge adds the input-output relation from -> to carrying the given
// number of bytes. Duplicate edges are merged (bytes accumulate). Self
// edges are rejected.
func (g *Graph) AddEdge(from, to TaskID, bytes int) error {
	if !g.valid(from) || !g.valid(to) {
		return fmt.Errorf("graph %s: edge %d->%d references unknown task", g.Name, from, to)
	}
	if from == to {
		return fmt.Errorf("graph %s: self edge on task %d", g.Name, from)
	}
	key := [2]TaskID{from, to}
	if e, ok := g.edges[key]; ok {
		e.Bytes += bytes
		return nil
	}
	e := &Edge{From: from, To: to, Bytes: bytes}
	g.edges[key] = e
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
	g.out[from] = append(g.out[from], e)
	return nil
}

// MustEdge is AddEdge that panics on error, for graph construction code
// whose task ids are known-correct by construction.
func (g *Graph) MustEdge(from, to TaskID, bytes int) {
	if err := g.AddEdge(from, to, bytes); err != nil {
		panic(err)
	}
}

func (g *Graph) valid(id TaskID) bool { return id >= 0 && int(id) < len(g.tasks) }

// Task returns the task with the given id.
func (g *Graph) Task(id TaskID) *Task { return g.tasks[id] }

// Len returns the number of tasks.
func (g *Graph) Len() int { return len(g.tasks) }

// Tasks returns all tasks in id order. The slice is shared; do not modify.
func (g *Graph) Tasks() []*Task { return g.tasks }

// Succ returns the successor ids of a task. Shared slice; do not modify.
func (g *Graph) Succ(id TaskID) []TaskID { return g.succ[id] }

// Pred returns the predecessor ids of a task. Shared slice; do not modify.
func (g *Graph) Pred(id TaskID) []TaskID { return g.pred[id] }

// Edge returns the edge from->to, or nil.
func (g *Graph) Edge(from, to TaskID) *Edge { return g.edges[[2]TaskID{from, to}] }

// Edges returns all edges in deterministic (from, to) order. The
// per-source edge lists are concatenated in source order and each small
// tail is sorted by destination — no map iteration and no global sort,
// which matters on the planning hot path (ContractChains enumerates the
// edges of every solver graph it contracts).
func (g *Graph) Edges() []*Edge {
	es := make([]*Edge, 0, len(g.edges))
	for u := range g.out {
		es = append(es, g.out[u]...)
		tail := es[len(es)-len(g.out[u]):]
		slices.SortFunc(tail, func(a, b *Edge) int { return int(a.To) - int(b.To) })
	}
	return es
}

// EdgeBytes returns the re-distribution payload of the edge from->to,
// falling back to the producer's OutBytes when the edge carries no explicit
// size.
func (g *Graph) EdgeBytes(from, to TaskID) int {
	e := g.Edge(from, to)
	if e == nil {
		return 0
	}
	if e.Bytes > 0 {
		return e.Bytes
	}
	return g.tasks[from].OutBytes
}

// TotalWork returns the sum of the Work of all tasks.
func (g *Graph) TotalWork() float64 {
	var w float64
	for _, t := range g.tasks {
		w += t.Work
	}
	return w
}

// TopoOrder returns a topological order of the task ids, or an error if the
// graph contains a cycle. The order is deterministic (Kahn's algorithm with
// a sorted ready set, smallest id first).
// idHeap is a min-heap of task ids backing TopoOrder's ready queue.
type idHeap struct{ ids []TaskID }

func (h *idHeap) Len() int           { return len(h.ids) }
func (h *idHeap) Less(i, j int) bool { return h.ids[i] < h.ids[j] }
func (h *idHeap) Swap(i, j int)      { h.ids[i], h.ids[j] = h.ids[j], h.ids[i] }
func (h *idHeap) Push(x interface{}) { h.ids = append(h.ids, x.(TaskID)) }
func (h *idHeap) Pop() interface{} {
	old := h.ids
	n := len(old)
	x := old[n-1]
	h.ids = old[:n-1]
	return x
}

func (g *Graph) TopoOrder() ([]TaskID, error) {
	indeg := make([]int, len(g.tasks))
	for id := range g.tasks {
		indeg[id] = len(g.pred[id])
	}
	// Min-heap of ready ids: the smallest ready id is emitted first, the
	// same order the previous sort-per-iteration implementation produced,
	// at O((V+E) log V) instead of a full sort per emitted task.
	ready := &idHeap{}
	for id := range g.tasks {
		if indeg[id] == 0 {
			ready.ids = append(ready.ids, TaskID(id))
		}
	}
	heap.Init(ready)
	order := make([]TaskID, 0, len(g.tasks))
	for ready.Len() > 0 {
		id := heap.Pop(ready).(TaskID)
		order = append(order, id)
		for _, s := range g.succ[id] {
			indeg[s]--
			if indeg[s] == 0 {
				heap.Push(ready, s)
			}
		}
	}
	if len(order) != len(g.tasks) {
		return nil, fmt.Errorf("graph %s: %w (%d of %d tasks ordered)", g.Name, ErrCyclicGraph, len(order), len(g.tasks))
	}
	return order, nil
}

// Validate checks that the graph is a DAG and that start/stop markers, if
// present, are unique and are a source / sink respectively.
func (g *Graph) Validate() error {
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	starts, stops := 0, 0
	for _, t := range g.tasks {
		switch t.Kind {
		case KindStart:
			starts++
			if len(g.pred[t.ID]) != 0 {
				return fmt.Errorf("graph %s: start node %d has predecessors", g.Name, t.ID)
			}
		case KindStop:
			stops++
			if len(g.succ[t.ID]) != 0 {
				return fmt.Errorf("graph %s: stop node %d has successors", g.Name, t.ID)
			}
		}
		if t.Work < 0 {
			return fmt.Errorf("graph %s: task %d has negative work", g.Name, t.ID)
		}
	}
	if starts > 1 || stops > 1 {
		return fmt.Errorf("graph %s: %d start and %d stop nodes (at most one each)", g.Name, starts, stops)
	}
	return nil
}

// AddStartStop inserts a unique start node preceding all sources and a
// unique stop node succeeding all sinks, as the CM-task compiler does
// (Section 2.2.3). It returns the two new ids. Tasks added later are not
// connected automatically.
func (g *Graph) AddStartStop() (start, stop TaskID) {
	var sources, sinks []TaskID
	for id := range g.tasks {
		if len(g.pred[id]) == 0 {
			sources = append(sources, TaskID(id))
		}
		if len(g.succ[id]) == 0 {
			sinks = append(sinks, TaskID(id))
		}
	}
	start = g.AddTask(&Task{Name: "start", Kind: KindStart})
	stop = g.AddTask(&Task{Name: "stop", Kind: KindStop})
	for _, s := range sources {
		g.MustEdge(start, s, 0)
	}
	for _, s := range sinks {
		g.MustEdge(s, stop, 0)
	}
	return start, stop
}

// Reachable reports whether there is a directed path from a to b (a == b
// counts as reachable).
func (g *Graph) Reachable(a, b TaskID) bool {
	if a == b {
		return true
	}
	seen := make([]bool, len(g.tasks))
	stack := []TaskID{a}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.succ[id] {
			if s == b {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// Independent reports whether tasks a and b are independent, i.e. not
// connected by a path in either direction. Independent tasks may be
// executed concurrently on disjoint core groups.
func (g *Graph) Independent(a, b TaskID) bool {
	return a != b && !g.Reachable(a, b) && !g.Reachable(b, a)
}

// CriticalPathWork returns the maximum total Work along any directed path.
func (g *Graph) CriticalPathWork() float64 {
	order, err := g.TopoOrder()
	if err != nil {
		return 0
	}
	finish := make([]float64, len(g.tasks))
	var maxf float64
	for _, id := range order {
		f := g.tasks[id].Work
		var best float64
		for _, p := range g.pred[id] {
			if finish[p] > best {
				best = finish[p]
			}
		}
		finish[id] = best + f
		if finish[id] > maxf {
			maxf = finish[id]
		}
	}
	return maxf
}

// Clone returns a deep copy of the graph structure. Task Meta maps and
// Members slices are copied; Sub graphs are shared (they are scheduled
// hierarchically and never mutated by scheduling).
func (g *Graph) Clone() *Graph {
	c := New(g.Name)
	for _, t := range g.tasks {
		nt := *t
		if t.Meta != nil {
			nt.Meta = make(map[string]int, len(t.Meta))
			for k, v := range t.Meta {
				nt.Meta[k] = v
			}
		}
		if t.Members != nil {
			nt.Members = append([]TaskID(nil), t.Members...)
		}
		c.AddTask(&nt)
	}
	for _, e := range g.Edges() {
		c.MustEdge(e.From, e.To, e.Bytes)
	}
	return c
}
