package graph

import (
	"math/rand"
	"strings"
	"testing"
)

// diamond builds the graph a -> {b, c} -> d.
func diamond(t *testing.T) (*Graph, [4]TaskID) {
	t.Helper()
	g := New("diamond")
	a := g.AddBasic("a", 1)
	b := g.AddBasic("b", 2)
	c := g.AddBasic("c", 3)
	d := g.AddBasic("d", 4)
	g.MustEdge(a, b, 10)
	g.MustEdge(a, c, 10)
	g.MustEdge(b, d, 10)
	g.MustEdge(c, d, 10)
	return g, [4]TaskID{a, b, c, d}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New("g")
	a := g.AddBasic("a", 1)
	if err := g.AddEdge(a, a, 0); err == nil {
		t.Error("self edge accepted")
	}
	if err := g.AddEdge(a, TaskID(99), 0); err == nil {
		t.Error("edge to unknown task accepted")
	}
	if err := g.AddEdge(TaskID(-1), a, 0); err == nil {
		t.Error("edge from invalid task accepted")
	}
}

func TestDuplicateEdgeMerges(t *testing.T) {
	g := New("g")
	a := g.AddBasic("a", 1)
	b := g.AddBasic("b", 1)
	g.MustEdge(a, b, 5)
	g.MustEdge(a, b, 7)
	if got := g.Edge(a, b).Bytes; got != 12 {
		t.Fatalf("merged edge bytes = %d, want 12", got)
	}
	if len(g.Succ(a)) != 1 || len(g.Pred(b)) != 1 {
		t.Fatal("duplicate edge created duplicate adjacency")
	}
}

func TestTopoOrder(t *testing.T) {
	g, ids := diamond(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[TaskID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("edge %d->%d violates topo order", e.From, e.To)
		}
	}
	if order[0] != ids[0] || order[3] != ids[3] {
		t.Fatalf("unexpected order %v", order)
	}
}

func TestCycleDetected(t *testing.T) {
	g := New("cyc")
	a := g.AddBasic("a", 1)
	b := g.AddBasic("b", 1)
	g.MustEdge(a, b, 0)
	g.MustEdge(b, a, 0)
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("cycle not detected")
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate missed cycle")
	}
}

func TestValidateStartStop(t *testing.T) {
	g, _ := diamond(t)
	start, stop := g.AddStartStop()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(g.Pred(start)) != 0 || len(g.Succ(stop)) != 0 {
		t.Fatal("start/stop not source/sink")
	}
	if len(g.Succ(start)) != 1 || len(g.Pred(stop)) != 1 {
		t.Fatalf("diamond has one source and one sink; start succ=%d stop pred=%d",
			len(g.Succ(start)), len(g.Pred(stop)))
	}
	// A second start node must be rejected.
	g.AddTask(&Task{Name: "start2", Kind: KindStart})
	if err := g.Validate(); err == nil {
		t.Fatal("duplicate start accepted")
	}
}

func TestReachableIndependent(t *testing.T) {
	g, ids := diamond(t)
	a, b, c, d := ids[0], ids[1], ids[2], ids[3]
	if !g.Reachable(a, d) {
		t.Error("a should reach d")
	}
	if g.Reachable(d, a) {
		t.Error("d should not reach a")
	}
	if !g.Independent(b, c) {
		t.Error("b and c are independent")
	}
	if g.Independent(a, d) {
		t.Error("a and d are dependent")
	}
	if g.Independent(b, b) {
		t.Error("a task is not independent of itself")
	}
}

func TestCriticalPathWork(t *testing.T) {
	g, _ := diamond(t)
	// longest path a(1) -> c(3) -> d(4) = 8
	if got := g.CriticalPathWork(); got != 8 {
		t.Fatalf("CriticalPathWork = %g, want 8", got)
	}
	if got := g.TotalWork(); got != 10 {
		t.Fatalf("TotalWork = %g, want 10", got)
	}
}

func TestEdgeBytesFallback(t *testing.T) {
	g := New("g")
	a := g.AddTask(&Task{Name: "a", Work: 1, OutBytes: 42})
	b := g.AddBasic("b", 1)
	c := g.AddBasic("c", 1)
	g.MustEdge(a, b, 0)   // falls back to OutBytes
	g.MustEdge(a, c, 100) // explicit
	if got := g.EdgeBytes(a, b); got != 42 {
		t.Fatalf("EdgeBytes fallback = %d, want 42", got)
	}
	if got := g.EdgeBytes(a, c); got != 100 {
		t.Fatalf("EdgeBytes explicit = %d, want 100", got)
	}
	if got := g.EdgeBytes(b, c); got != 0 {
		t.Fatalf("EdgeBytes missing edge = %d, want 0", got)
	}
}

func TestClone(t *testing.T) {
	g, ids := diamond(t)
	g.Task(ids[0]).Meta = map[string]int{"i": 1}
	c := g.Clone()
	if c.Len() != g.Len() || len(c.Edges()) != len(g.Edges()) {
		t.Fatal("clone shape differs")
	}
	c.Task(ids[0]).Meta["i"] = 2
	if g.Task(ids[0]).Meta["i"] != 1 {
		t.Fatal("clone shares Meta map")
	}
	c.AddBasic("extra", 1)
	if g.Len() == c.Len() {
		t.Fatal("clone shares task slice")
	}
}

// chainGraph builds a->b->c->d plus a side branch a->e->d, so b->c is the
// only interior chain link and {b,c} merge while a, d, e stay.
func chainGraph() *Graph {
	g := New("chains")
	a := g.AddBasic("a", 1)
	b := g.AddBasic("b", 2)
	c := g.AddBasic("c", 3)
	d := g.AddBasic("d", 4)
	e := g.AddBasic("e", 5)
	g.MustEdge(a, b, 1)
	g.MustEdge(b, c, 1)
	g.MustEdge(c, d, 1)
	g.MustEdge(a, e, 1)
	g.MustEdge(e, d, 1)
	return g
}

func TestContractChains(t *testing.T) {
	g := chainGraph()
	res := ContractChains(g)
	cg := res.Graph
	// a has two successors so a is not merged; b->c is a chain (b has
	// one succ c, c has one pred b). c->d: d has two preds, so not
	// merged. Expect nodes: a, chain{b,c}, d, e = 4 nodes.
	if cg.Len() != 4 {
		t.Fatalf("contracted to %d nodes, want 4", cg.Len())
	}
	if err := cg.Validate(); err != nil {
		t.Fatalf("contracted graph invalid: %v", err)
	}
	// Find the merged node.
	var merged *Task
	for _, task := range cg.Tasks() {
		if len(task.Members) == 2 {
			merged = task
		}
	}
	if merged == nil {
		t.Fatal("no merged chain node found")
	}
	if merged.Work != 5 {
		t.Fatalf("merged work = %g, want 2+3=5", merged.Work)
	}
	if merged.Members[0] != 1 || merged.Members[1] != 2 {
		t.Fatalf("merged members = %v, want [1 2]", merged.Members)
	}
	// Total work is preserved.
	if cg.TotalWork() != g.TotalWork() {
		t.Fatalf("contraction changed total work: %g vs %g", cg.TotalWork(), g.TotalWork())
	}
	// NodeOf is consistent.
	for id := 0; id < g.Len(); id++ {
		nid := res.NodeOf[id]
		if nid == None {
			t.Fatalf("task %d unmapped", id)
		}
		found := false
		for _, m := range cg.Task(nid).Members {
			if m == TaskID(id) {
				found = true
			}
		}
		if !found {
			t.Fatalf("task %d not in members of its node", id)
		}
	}
}

func TestContractLongChain(t *testing.T) {
	// A pure path of 5 tasks contracts to a single node.
	g := New("path")
	prev := g.AddBasic("t0", 1)
	for i := 1; i < 5; i++ {
		cur := g.AddBasic("t", 1)
		g.MustEdge(prev, cur, 1)
		prev = cur
	}
	res := ContractChains(g)
	if res.Graph.Len() != 1 {
		t.Fatalf("path contracted to %d nodes, want 1", res.Graph.Len())
	}
	if got := res.Graph.Task(0).Work; got != 5 {
		t.Fatalf("merged work = %g, want 5", got)
	}
	if len(res.Graph.Task(0).Members) != 5 {
		t.Fatalf("members = %v", res.Graph.Task(0).Members)
	}
}

func TestContractSkipsMarkers(t *testing.T) {
	// start -> a -> stop must not merge through the markers.
	g := New("m")
	a := g.AddBasic("a", 1)
	_ = a
	g.AddStartStop()
	res := ContractChains(g)
	if res.Graph.Len() != 3 {
		t.Fatalf("contracted to %d nodes, want 3 (start, a, stop)", res.Graph.Len())
	}
}

func TestContractIndependentTasks(t *testing.T) {
	// Independent tasks never merge.
	g := New("ind")
	g.AddBasic("a", 1)
	g.AddBasic("b", 1)
	res := ContractChains(g)
	if res.Graph.Len() != 2 {
		t.Fatalf("contracted to %d nodes, want 2", res.Graph.Len())
	}
}

func TestLayers(t *testing.T) {
	g, ids := diamond(t)
	g.AddStartStop()
	layers := Layers(g)
	if len(layers) != 3 {
		t.Fatalf("got %d layers, want 3: %v", len(layers), layers)
	}
	if len(layers[0]) != 1 || layers[0][0] != ids[0] {
		t.Fatalf("layer 0 = %v, want [a]", layers[0])
	}
	if len(layers[1]) != 2 {
		t.Fatalf("layer 1 = %v, want [b c]", layers[1])
	}
	if len(layers[2]) != 1 || layers[2][0] != ids[3] {
		t.Fatalf("layer 2 = %v, want [d]", layers[2])
	}
}

func TestLayersIndependenceInvariant(t *testing.T) {
	// Property: within any layer all tasks are pairwise independent, and
	// every task appears in exactly one layer, for random DAGs.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		g := New("rand")
		n := 3 + rng.Intn(20)
		for i := 0; i < n; i++ {
			g.AddBasic("t", float64(1+rng.Intn(5)))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.2 {
					g.MustEdge(TaskID(i), TaskID(j), 1)
				}
			}
		}
		layers := Layers(g)
		seen := make(map[TaskID]int)
		for li, layer := range layers {
			for _, id := range layer {
				if prev, ok := seen[id]; ok {
					t.Fatalf("task %d in layers %d and %d", id, prev, li)
				}
				seen[id] = li
			}
			for i := 0; i < len(layer); i++ {
				for j := i + 1; j < len(layer); j++ {
					if !g.Independent(layer[i], layer[j]) {
						t.Fatalf("layer %d contains dependent tasks %d, %d", li, layer[i], layer[j])
					}
				}
			}
		}
		if len(seen) != n {
			t.Fatalf("layers cover %d of %d tasks", len(seen), n)
		}
		// Dependencies respect layer order.
		for _, e := range g.Edges() {
			if seen[e.From] >= seen[e.To] {
				t.Fatalf("edge %d->%d violates layer order", e.From, e.To)
			}
		}
	}
}

func TestContractThenLayersEPOLShape(t *testing.T) {
	// Mimic one EPOL time step with R=4 (Fig. 5): R chains of micro
	// steps (lengths 1..R) followed by a combine task. After chain
	// contraction the step graph must have R+1 nodes in 2 layers.
	const R = 4
	g := New("epol-step")
	combine := g.AddBasic("combine", 1)
	for i := 1; i <= R; i++ {
		var prev TaskID = None
		for j := 1; j <= i; j++ {
			s := g.AddBasic("step", 1)
			if prev != None {
				g.MustEdge(prev, s, 8)
			}
			prev = s
		}
		g.MustEdge(prev, combine, 8)
	}
	g.AddStartStop()
	res := ContractChains(g)
	// R approximation chains + combine + start + stop
	if got := res.Graph.Len(); got != R+3 {
		t.Fatalf("contracted nodes = %d, want %d", got, R+3)
	}
	layers := Layers(res.Graph)
	if len(layers) != 2 {
		t.Fatalf("layers = %d, want 2", len(layers))
	}
	if len(layers[0]) != R {
		t.Fatalf("first layer has %d tasks, want %d", len(layers[0]), R)
	}
	if len(layers[1]) != 1 {
		t.Fatalf("second layer has %d tasks, want 1", len(layers[1]))
	}
	// Chain i carries i units of work.
	works := map[float64]bool{}
	for _, id := range layers[0] {
		works[res.Graph.Task(id).Work] = true
	}
	for i := 1; i <= R; i++ {
		if !works[float64(i)] {
			t.Fatalf("missing chain with work %d; layer works: %v", i, works)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := New("dotted")
	a := g.AddBasic("alpha", 10)
	b := g.AddBasic("beta", 20)
	g.MustEdge(a, b, 128)
	sub := New("body")
	sub.AddBasic("inner", 5)
	g.AddTask(&Task{Name: "loop", Kind: KindComposed, Work: 5, Sub: sub})
	g.AddStartStop()
	var buf strings.Builder
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "alpha", "beta", "128B", "doubleoctagon", "cluster_", "inner", "shape=circle"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}
