package graph

import (
	"encoding/json"
	"fmt"
)

// JSON codec of M-task graphs — the wire format of the planning service
// (POST /v1/plan) and of tooling that ships graphs between processes.
//
// A graph serializes as its name, the task array (array index = TaskID,
// so edges reference tasks by position) and the edge list. Composed tasks
// carry their subgraph recursively. Zero-valued task fields are omitted,
// so a plain computational task is just {"name": ..., "work": ...}.
//
// Unmarshaling rebuilds the graph through AddTask/AddEdge, which means a
// decoded graph enforces the same invariants as a programmatically built
// one (valid edge endpoints, no self edges); DAG-ness is checked by
// Validate/TopoOrder at planning time, exactly as for built graphs.

// taskJSON is the wire form of one Task. ID is implicit (array position).
type taskJSON struct {
	Name       string         `json:"name"`
	Kind       string         `json:"kind,omitempty"` // "" = basic
	Work       float64        `json:"work,omitempty"`
	CommBytes  int            `json:"comm_bytes,omitempty"`
	CommCount  int            `json:"comm_count,omitempty"`
	BcastBytes int            `json:"bcast_bytes,omitempty"`
	BcastCount int            `json:"bcast_count,omitempty"`
	OutBytes   int            `json:"out_bytes,omitempty"`
	MaxWidth   int            `json:"max_width,omitempty"`
	Members    []TaskID       `json:"members,omitempty"`
	Sub        *Graph         `json:"sub,omitempty"`
	Meta       map[string]int `json:"meta,omitempty"`
}

// edgeJSON is the wire form of one Edge.
type edgeJSON struct {
	From  TaskID `json:"from"`
	To    TaskID `json:"to"`
	Bytes int    `json:"bytes,omitempty"`
}

// graphJSON is the wire form of a Graph.
type graphJSON struct {
	Name  string     `json:"name"`
	Tasks []taskJSON `json:"tasks"`
	Edges []edgeJSON `json:"edges,omitempty"`
}

func kindName(k Kind) (string, error) {
	switch k {
	case KindBasic:
		return "", nil // omitted on the wire
	case KindStart, KindStop, KindComposed:
		return k.String(), nil
	}
	return "", fmt.Errorf("graph: cannot encode task kind %d", int(k))
}

func kindByName(s string) (Kind, error) {
	switch s {
	case "", "basic":
		return KindBasic, nil
	case "start":
		return KindStart, nil
	case "stop":
		return KindStop, nil
	case "composed":
		return KindComposed, nil
	}
	return 0, fmt.Errorf("graph: unknown task kind %q", s)
}

// MarshalJSON encodes the graph in the wire format above. Graph implements
// json.Marshaler, so graphs embed directly into request/response structs.
func (g *Graph) MarshalJSON() ([]byte, error) {
	w := graphJSON{Name: g.Name, Tasks: make([]taskJSON, 0, len(g.tasks))}
	for _, t := range g.tasks {
		kind, err := kindName(t.Kind)
		if err != nil {
			return nil, err
		}
		w.Tasks = append(w.Tasks, taskJSON{
			Name:       t.Name,
			Kind:       kind,
			Work:       t.Work,
			CommBytes:  t.CommBytes,
			CommCount:  t.CommCount,
			BcastBytes: t.BcastBytes,
			BcastCount: t.BcastCount,
			OutBytes:   t.OutBytes,
			MaxWidth:   t.MaxWidth,
			Members:    t.Members,
			Sub:        t.Sub,
			Meta:       t.Meta,
		})
	}
	for _, e := range g.Edges() {
		w.Edges = append(w.Edges, edgeJSON{From: e.From, To: e.To, Bytes: e.Bytes})
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes a graph from the wire format, replacing the
// receiver's contents. Edges referencing out-of-range tasks and self
// edges are rejected.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var w graphJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("graph: decoding: %w", err)
	}
	ng := New(w.Name)
	for i, tw := range w.Tasks {
		kind, err := kindByName(tw.Kind)
		if err != nil {
			return fmt.Errorf("graph %s: task %d: %w", w.Name, i, err)
		}
		ng.AddTask(&Task{
			Name:       tw.Name,
			Kind:       kind,
			Work:       tw.Work,
			CommBytes:  tw.CommBytes,
			CommCount:  tw.CommCount,
			BcastBytes: tw.BcastBytes,
			BcastCount: tw.BcastCount,
			OutBytes:   tw.OutBytes,
			MaxWidth:   tw.MaxWidth,
			Members:    tw.Members,
			Sub:        tw.Sub,
			Meta:       tw.Meta,
		})
	}
	for _, ew := range w.Edges {
		if err := ng.AddEdge(ew.From, ew.To, ew.Bytes); err != nil {
			return err
		}
	}
	// Field-wise copy (not *g = *ng): Graph carries the edge-index mutex,
	// which must not be copied. The decode target is not shared while
	// unmarshalling, so keeping g's own (unlocked) mutex is fine.
	g.Name = ng.Name
	g.tasks = ng.tasks
	g.succ = ng.succ
	g.pred = ng.pred
	g.out = ng.out
	g.nedges = ng.nedges
	g.edges = ng.edges
	g.edgeSlab = ng.edgeSlab
	return nil
}
