package graph

import (
	"encoding/json"
	"strings"
	"testing"
)

// buildCodecGraph builds a graph exercising every wire field: kinds,
// cost fields, meta, members and a composed subgraph.
func buildCodecGraph() *Graph {
	sub := New("inner")
	a := sub.AddBasic("sa", 5)
	b := sub.AddBasic("sb", 7)
	sub.MustEdge(a, b, 16)

	g := New("outer")
	src := g.AddTask(&Task{Name: "src", Kind: KindStart})
	work := g.AddTask(&Task{
		Name: "work", Kind: KindBasic, Work: 3.5,
		CommBytes: 1 << 20, CommCount: 4, BcastBytes: 512, BcastCount: 2,
		OutBytes: 4096, MaxWidth: 8,
		Meta: map[string]int{"i": 1, "j": 2},
	})
	loop := g.AddTask(&Task{Name: "loop", Kind: KindComposed, Work: 1, Sub: sub})
	sink := g.AddTask(&Task{Name: "sink", Kind: KindStop})
	g.MustEdge(src, work, 0)
	g.MustEdge(work, loop, 2048)
	g.MustEdge(loop, sink, 0)
	return g
}

func TestGraphJSONRoundTrip(t *testing.T) {
	g := buildCodecGraph()
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != g.Name || back.Len() != g.Len() {
		t.Fatalf("shape lost: %q/%d vs %q/%d", back.Name, back.Len(), g.Name, g.Len())
	}
	for id, want := range g.Tasks() {
		got := back.Task(TaskID(id))
		if got.Name != want.Name || got.Kind != want.Kind || got.Work != want.Work ||
			got.CommBytes != want.CommBytes || got.CommCount != want.CommCount ||
			got.BcastBytes != want.BcastBytes || got.BcastCount != want.BcastCount ||
			got.OutBytes != want.OutBytes || got.MaxWidth != want.MaxWidth {
			t.Fatalf("task %d fields lost: %+v vs %+v", id, got, want)
		}
		if want.Meta != nil && got.Meta["j"] != want.Meta["j"] {
			t.Fatalf("task %d meta lost", id)
		}
		if (want.Sub == nil) != (got.Sub == nil) {
			t.Fatalf("task %d subgraph lost", id)
		}
		if want.Sub != nil && got.Sub.Len() != want.Sub.Len() {
			t.Fatalf("task %d subgraph shape lost", id)
		}
	}
	wantEdges, gotEdges := g.Edges(), back.Edges()
	if len(wantEdges) != len(gotEdges) {
		t.Fatalf("%d edges, want %d", len(gotEdges), len(wantEdges))
	}
	for i := range wantEdges {
		if *gotEdges[i] != *wantEdges[i] {
			t.Fatalf("edge %d: %+v vs %+v", i, gotEdges[i], wantEdges[i])
		}
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGraphJSONRejectsBadEdges(t *testing.T) {
	for _, tc := range []struct{ name, src, want string }{
		{"out of range", `{"name":"g","tasks":[{"name":"a"}],"edges":[{"from":0,"to":7}]}`, "unknown task"},
		{"self edge", `{"name":"g","tasks":[{"name":"a"}],"edges":[{"from":0,"to":0}]}`, "self edge"},
		{"bad kind", `{"name":"g","tasks":[{"name":"a","kind":"spaghetti"}]}`, "unknown task kind"},
		{"not json", `{"name":`, "unexpected end"},
	} {
		var g Graph
		err := json.Unmarshal([]byte(tc.src), &g)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

func TestGraphJSONOmitsZeroFields(t *testing.T) {
	g := New("tiny")
	g.AddBasic("t", 2)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, noise := range []string{"comm_bytes", "bcast", "max_width", "sub", "meta", "members", "kind"} {
		if strings.Contains(string(data), noise) {
			t.Fatalf("zero field %q not omitted: %s", noise, data)
		}
	}
}
