package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// quickDAG deterministically builds a DAG from compact random parameters.
func quickDAG(seed int64, n int, density float64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New("quick")
	for i := 0; i < n; i++ {
		g.AddTask(&Task{
			Name:      "t",
			Kind:      KindBasic,
			Work:      float64(1 + rng.Intn(50)),
			CommBytes: rng.Intn(1 << 12),
			CommCount: rng.Intn(3),
		})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				g.MustEdge(TaskID(i), TaskID(j), 1+rng.Intn(256))
			}
		}
	}
	return g
}

// Property: chain contraction preserves total work, task coverage and
// acyclicity for arbitrary DAGs.
func TestQuickContractionInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint8, dRaw uint8) bool {
		n := int(nRaw%30) + 2
		density := float64(dRaw%40) / 100
		g := quickDAG(seed, n, density)
		res := ContractChains(g)
		if err := res.Graph.Validate(); err != nil {
			return false
		}
		if res.Graph.TotalWork() != g.TotalWork() {
			return false
		}
		// Every original task appears in exactly one node's members. A
		// node without members stands for itself (chain-free graphs
		// contract to the shared input, whose tasks have no Members).
		count := make([]int, g.Len())
		for _, node := range res.Graph.Tasks() {
			if len(node.Members) == 0 {
				if res.NodeOf[node.ID] != node.ID {
					return false
				}
				count[node.ID]++
				continue
			}
			for _, m := range node.Members {
				count[m]++
			}
		}
		for _, c := range count {
			if c != 1 {
				return false
			}
		}
		// Contracted reachability preserves original edges.
		for _, e := range g.Edges() {
			cf, ct := res.NodeOf[e.From], res.NodeOf[e.To]
			if cf != ct && !res.Graph.Reachable(cf, ct) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: layering covers every task exactly once and respects edges for
// arbitrary DAGs.
func TestQuickLayerInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint8, dRaw uint8) bool {
		n := int(nRaw%30) + 2
		density := float64(dRaw%40) / 100
		g := quickDAG(seed, n, density)
		layers := Layers(g)
		layerOf := make(map[TaskID]int)
		total := 0
		for li, layer := range layers {
			for _, id := range layer {
				if _, dup := layerOf[id]; dup {
					return false
				}
				layerOf[id] = li
				total++
			}
		}
		if total != n {
			return false
		}
		for _, e := range g.Edges() {
			if layerOf[e.From] >= layerOf[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: TopoOrder is a permutation consistent with all edges.
func TestQuickTopoOrder(t *testing.T) {
	f := func(seed int64, nRaw uint8, dRaw uint8) bool {
		n := int(nRaw%30) + 2
		g := quickDAG(seed, n, float64(dRaw%40)/100)
		order, err := g.TopoOrder()
		if err != nil || len(order) != n {
			return false
		}
		pos := make(map[TaskID]int, n)
		for i, id := range order {
			pos[id] = i
		}
		if len(pos) != n {
			return false
		}
		for _, e := range g.Edges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
