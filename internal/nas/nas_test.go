package nas

import (
	"math"
	"testing"

	"mtask/internal/arch"
	"mtask/internal/cluster"
	"mtask/internal/core"
	"mtask/internal/cost"
)

func TestClasses(t *testing.T) {
	if ClassC().Zones() != 256 {
		t.Fatalf("class C zones = %d, want 256", ClassC().Zones())
	}
	if ClassD().Zones() != 1024 {
		t.Fatalf("class D zones = %d, want 1024", ClassD().Zones())
	}
}

func TestMakeZonesSPMZEqual(t *testing.T) {
	zones := MakeZones(SPMZ, ClassC())
	if len(zones) != 256 {
		t.Fatalf("%d zones", len(zones))
	}
	w0 := zones[0].Work
	for _, z := range zones {
		if z.Work != w0 {
			t.Fatalf("SP-MZ zones unequal: %g vs %g", z.Work, w0)
		}
		if len(z.Neighbors) != 4 {
			t.Fatalf("zone %d has %d neighbors", z.ID, len(z.Neighbors))
		}
		for _, nid := range z.Neighbors {
			if z.BorderBytes[nid] <= 0 {
				t.Fatalf("zone %d missing border bytes to %d", z.ID, nid)
			}
		}
	}
	if got := Imbalance(zones); got != 1 {
		t.Fatalf("SP-MZ imbalance = %g, want 1", got)
	}
}

func TestMakeZonesBTMZImbalance(t *testing.T) {
	zones := MakeZones(BTMZ, ClassD())
	imb := Imbalance(zones)
	// The NPB-MZ geometric sizing targets a ~20x spread; integer
	// rounding makes it approximate.
	if imb < 10 || imb > 40 {
		t.Fatalf("BT-MZ imbalance = %g, want roughly 20", imb)
	}
	// Total mesh is preserved in x per row.
	sum := 0
	for xi := 0; xi < ClassD().XZones; xi++ {
		sum += zones[xi].NX
	}
	if sum != ClassD().GX {
		t.Fatalf("BT-MZ row width sums to %d, want %d", sum, ClassD().GX)
	}
}

func TestAssignContiguous(t *testing.T) {
	zones := MakeZones(SPMZ, ClassC())
	for _, g := range []int{1, 4, 16, 64, 256} {
		groups, err := AssignContiguous(zones, g)
		if err != nil {
			t.Fatalf("g=%d: %v", g, err)
		}
		if len(groups) != g {
			t.Fatalf("g=%d: built %d groups", g, len(groups))
		}
		seen := make(map[int]bool)
		prevEnd := -1
		for _, grp := range groups {
			if len(grp) == 0 {
				t.Fatalf("g=%d: empty group", g)
			}
			for _, id := range grp {
				if seen[id] {
					t.Fatalf("zone %d in two groups", id)
				}
				seen[id] = true
				if id != prevEnd+1 {
					t.Fatalf("g=%d: group not contiguous at zone %d", g, id)
				}
				prevEnd = id
			}
		}
		if len(seen) != len(zones) {
			t.Fatalf("g=%d: covered %d zones", g, len(seen))
		}
	}
	if _, err := AssignContiguous(zones, 0); err == nil {
		t.Fatal("g=0 accepted")
	}
	if _, err := AssignContiguous(zones, len(zones)+1); err == nil {
		t.Fatal("too many groups accepted")
	}
}

func TestAssignContiguousBalancesBTMZ(t *testing.T) {
	zones := MakeZones(BTMZ, ClassC())
	groups, err := AssignContiguous(zones, 16)
	if err != nil {
		t.Fatal(err)
	}
	total := TotalWork(zones)
	avg := total / 16
	for gi, grp := range groups {
		w := GroupWork(zones, grp)
		if w > 2.2*avg {
			t.Fatalf("group %d work %g exceeds 2.2x average %g", gi, w, avg)
		}
	}
}

func TestBuildProgramSimulates(t *testing.T) {
	mach := arch.CHiC().Subset(16) // 64 cores
	model := &cost.Model{Machine: mach}
	zones := MakeZones(SPMZ, ClassW())
	groups, _ := AssignContiguous(zones, 4)
	prog, err := BuildProgram(mach, SPMZ, zones, groups, core.Scattered{}, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Simulate(model, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
	// Border crossings between groups produce re-distribution time.
	if res.RedistTime <= 0 {
		t.Fatal("no redistribution time despite cross-group borders")
	}
	// Errors: too few cores, bad steps.
	if _, err := BuildProgram(mach, SPMZ, zones, groups, core.Scattered{}, 2, 1); err == nil {
		t.Fatal("2 cores for 4 groups accepted")
	}
	if _, err := BuildProgram(mach, SPMZ, zones, groups, core.Scattered{}, 64, 0); err == nil {
		t.Fatal("0 steps accepted")
	}
}

func TestProgramGroupCountTradeoff(t *testing.T) {
	// One group (all zones data-parallel-ish) must lose against a
	// medium group count: the within-zone collectives over the full
	// machine dominate (Fig. 17's "low number of groups not
	// competitive").
	mach := arch.CHiC().Subset(16)
	model := &cost.Model{Machine: mach}
	zones := MakeZones(SPMZ, ClassW()) // 16 zones
	run := func(g int) float64 {
		groups, err := AssignContiguous(zones, g)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := BuildProgram(mach, SPMZ, zones, groups, core.Scattered{}, 64, 3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cluster.Simulate(model, prog)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	one := run(1)
	four := run(4)
	if !(four < one) {
		t.Fatalf("4 groups (%g) should beat 1 group (%g)", four, one)
	}
}

func TestThomasSolver(t *testing.T) {
	// Solve (1+2a) x_i - a x_{i-1} - a x_{i+1} = d_i against a direct
	// reference.
	a, b := 0.3, 1.6
	d := []float64{1, 2, 3, 4, 5}
	orig := append([]float64(nil), d...)
	scratch := make([]float64, len(d))
	thomas(a, b, d, scratch)
	// Verify residual.
	for i := range d {
		r := b * d[i]
		if i > 0 {
			r -= a * d[i-1]
		}
		if i < len(d)-1 {
			r -= a * d[i+1]
		}
		if math.Abs(r-orig[i]) > 1e-12 {
			t.Fatalf("residual %d: %g vs %g", i, r, orig[i])
		}
	}
}

func TestMultizoneParallelMatchesSequential(t *testing.T) {
	seq := NewMultizone(ClassW())
	par := NewMultizone(ClassW())
	for s := 0; s < 3; s++ {
		seq.Step(1)
		par.Step(8)
	}
	if seq.Checksum() != par.Checksum() {
		t.Fatalf("checksums differ: %g vs %g", seq.Checksum(), par.Checksum())
	}
	for zid := range seq.Fields {
		for i, v := range seq.Fields[zid].u {
			if v != par.Fields[zid].u[i] {
				t.Fatalf("zone %d differs at %d: %g vs %g", zid, i, v, par.Fields[zid].u[i])
			}
		}
	}
}

func TestMultizoneDiffusionStable(t *testing.T) {
	m := NewMultizone(ClassW())
	initial := m.MaxAbs()
	for s := 0; s < 5; s++ {
		m.Step(4)
	}
	final := m.MaxAbs()
	if math.IsNaN(final) || final > initial*1.01 {
		t.Fatalf("diffusion not stable: %g -> %g", initial, final)
	}
	if final == 0 {
		t.Fatal("field collapsed to zero")
	}
}

func TestBorderExchangePeriodic(t *testing.T) {
	m := NewMultizone(ClassW())
	// After the initial exchange, the left ghost of zone (0, yi) must
	// equal the right edge of the last zone in the row.
	c := m.Class
	for yi := 0; yi < c.YZones; yi++ {
		z0 := m.Zones[yi*c.XZones]
		zl := m.Zones[yi*c.XZones+c.XZones-1]
		f0 := m.Fields[z0.ID]
		fl := m.Fields[zl.ID]
		for j := 0; j < z0.NY; j++ {
			if f0.Get(-1, j, 0) != fl.Get(zl.NX-1, j, 0) {
				t.Fatalf("periodic ghost mismatch in row %d", yi)
			}
		}
	}
}
