package nas

import (
	"fmt"

	"mtask/internal/arch"
	"mtask/internal/cluster"
	"mtask/internal/core"
)

// BuildProgram converts a multi-zone configuration into a simulatable
// cluster program: the zones of every group execute one after another on
// the group's cores within a time step; time steps are separated by a
// barrier; the border exchanges between a zone and its neighbours of the
// previous step appear as re-distribution edges, which are free when both
// zones run on the same core set and charge the interconnect otherwise.
// Group core sizes follow the paper's adjustment rule (proportional to the
// group's zone work); the physical cores come from the mapping strategy's
// sequence over the machine.
func BuildProgram(mach *arch.Machine, b Benchmark, zones []Zone, groups [][]int, strat core.Strategy, p, steps int) (*cluster.Program, error) {
	if p < len(groups) {
		return nil, fmt.Errorf("nas: %d cores cannot host %d groups", p, len(groups))
	}
	if mach.TotalCores() < p {
		return nil, fmt.Errorf("nas: machine %q has %d cores, need %d", mach.Name, mach.TotalCores(), p)
	}
	if steps < 1 {
		return nil, fmt.Errorf("nas: need at least one step")
	}
	work := make([]float64, len(groups))
	for gi, group := range groups {
		work[gi] = GroupWork(zones, group)
	}
	sizes := core.ProportionalGroupSizes(work, p)
	seq := strat.Sequence(mach)
	groupCores := make([][]arch.CoreID, len(groups))
	off := 0
	for gi, sz := range sizes {
		groupCores[gi] = seq[off : off+sz]
		off += sz
	}

	groupOf := make([]int, len(zones))
	for gi, group := range groups {
		for _, id := range group {
			groupOf[id] = gi
		}
	}

	prog := &cluster.Program{Name: fmt.Sprintf("%s-%dz-%dg", b, len(zones), len(groups))}
	// taskIdx[s][zone] = program index.
	prev := make([]int, len(zones))
	for i := range prev {
		prev[i] = -1
	}
	prevBarrier := -1
	for s := 0; s < steps; s++ {
		cur := make([]int, len(zones))
		var layer []int
		for gi, group := range groups {
			last := -1
			for _, zid := range group {
				z := &zones[zid]
				spec := cluster.TaskSpec{
					Name:  fmt.Sprintf("%s-z%d-s%d", b, zid, s),
					Work:  z.Work,
					Cores: groupCores[gi],
					// The within-zone ADI sweeps of the
					// solver require data transposition
					// across the zone's cores: modelled as
					// two multi-broadcasts of one solution
					// variable per step.
					CommBytes: 8 * z.NX * z.NY * z.NZ,
					CommCount: 2,
					Redist:    make(map[int]int),
				}
				if len(groupCores) > 1 {
					spec.Concurrent = groupCores
					spec.ConcurrentIdx = gi
				}
				if last >= 0 {
					spec.Deps = append(spec.Deps, last)
				}
				if prevBarrier >= 0 {
					spec.Deps = append(spec.Deps, prevBarrier)
				}
				if s > 0 {
					for _, nid := range z.Neighbors {
						pi := prev[nid]
						spec.Deps = append(spec.Deps, pi)
						if groupOf[nid] != gi {
							spec.Redist[pi] += z.BorderBytes[nid]
						}
					}
				}
				idx := prog.Add(spec)
				cur[zid] = idx
				last = idx
				layer = append(layer, idx)
			}
		}
		prevBarrier = prog.Add(cluster.TaskSpec{
			Name: fmt.Sprintf("step-barrier-%d", s),
			Deps: layer,
		})
		prev = cur
	}
	return prog, nil
}
