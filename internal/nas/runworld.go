package nas

import (
	"context"

	"mtask/internal/runtime"
)

// RunWorld advances the multizone solver by the given number of time steps
// on the M-task runtime: every world rank owns a contiguous block of
// zones, solves them with a private ADI scratch, and two barrier rounds
// per step order the cross-zone data flow — the first separates the zone
// solves from the border exchange (a rank reads its neighbours' freshly
// written interiors), the second separates the exchange from the next
// step's solves (a neighbour reads this rank's interior while filling its
// ghosts). The barriers ride on the runtime's dissemination barrier, so
// the per-step synchronisation cost is logarithmic in the core count.
//
// The result is bitwise identical to steps sequential Step(1) calls: zone
// solves within a step are independent, and the exchange reads only
// interiors, which no rank writes between the two barriers.
//
// It returns the global interior checksum, agreed via an allreduce of the
// per-rank partial sums (folded in rank order, hence deterministic — but
// associated differently than Checksum's flat zone loop).
func (m *Multizone) RunWorld(w *runtime.World, steps int) (float64, error) {
	var checksum float64
	err := w.RunCtx(context.Background(), func(c *runtime.Comm) error {
		zlo, zhi := runtime.BlockRange(len(m.Zones), c.Size(), c.Rank())
		sc := m.newADIScratch()
		for s := 0; s < steps; s++ {
			for zi := zlo; zi < zhi; zi++ {
				m.adiStep(m.Fields[m.Zones[zi].ID], sc)
			}
			c.Barrier()
			for zi := zlo; zi < zhi; zi++ {
				m.exchangeZone(m.Zones[zi])
			}
			c.Barrier()
		}
		var local float64
		for zi := zlo; zi < zhi; zi++ {
			local += m.zoneSum(m.Zones[zi])
		}
		sum := c.AllreduceSum(local)
		if c.Rank() == 0 {
			checksum = sum
		}
		return nil
	})
	return checksum, err
}
