package nas

import (
	"math"
	"testing"

	"mtask/internal/runtime"
)

// TestRunWorldMatchesSequential runs the multizone solver on the M-task
// runtime (4 ranks owning zone blocks, barrier-separated solve/exchange
// phases) and on the sequential path, and demands bitwise-identical
// fields: the barriers must reproduce exactly the write-interior /
// fill-ghosts ordering of Step.
func TestRunWorldMatchesSequential(t *testing.T) {
	const steps = 4
	seq := NewMultizone(ClassW())
	for s := 0; s < steps; s++ {
		seq.Step(1)
	}

	par := NewMultizone(ClassW())
	w, err := runtime.NewWorld(4)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := par.RunWorld(w, steps)
	if err != nil {
		t.Fatalf("RunWorld: %v", err)
	}

	for zi := range seq.Fields {
		a, b := seq.Fields[zi].u, par.Fields[zi].u
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("zone %d cell %d: sequential %v vs world %v", zi, i, a[i], b[i])
			}
		}
	}
	// The allreduced checksum folds per-rank partials, so it may differ
	// from the flat zone loop only by rounding.
	if ref := seq.Checksum(); math.Abs(sum-ref) > 1e-9*(1+math.Abs(ref)) {
		t.Errorf("checksum %v, want ~%v", sum, ref)
	}
}

// TestRunWorldSingleRank degenerates to one rank owning all zones — the
// collectives take their singleton fast paths and the result must still
// be bitwise identical.
func TestRunWorldSingleRank(t *testing.T) {
	seq := NewMultizone(ClassW())
	seq.Step(1)
	seq.Step(1)

	par := NewMultizone(ClassW())
	w, err := runtime.NewWorld(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := par.RunWorld(w, 2); err != nil {
		t.Fatalf("RunWorld: %v", err)
	}
	for zi := range seq.Fields {
		a, b := seq.Fields[zi].u, par.Fields[zi].u
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("zone %d cell %d: sequential %v vs world %v", zi, i, a[i], b[i])
			}
		}
	}
}
