package nas

import (
	"math"
	"sync"
)

// The functional multi-zone solver: a scalar ADI (alternating direction
// implicit) diffusion solver per zone with ghost-cell border exchanges
// between zones, structurally mirroring the NPB multi-zone benchmarks
// (independent zone solves within a time step, border exchange at the end
// of the step). It exists to exercise the multi-zone execution pattern
// with real computation; the timing experiments use the cost model in
// program.go.

// ZoneField is a zone's scalar field with one ghost layer in x and y.
type ZoneField struct {
	NX, NY, NZ int
	u          []float64 // (NX+2) * (NY+2) * NZ, ghost layers at i=-1, NX and j=-1, NY
}

// NewZoneField allocates a field.
func NewZoneField(nx, ny, nz int) *ZoneField {
	return &ZoneField{NX: nx, NY: ny, NZ: nz, u: make([]float64, (nx+2)*(ny+2)*nz)}
}

// at returns the index of (i, j, k) with i in [-1, NX], j in [-1, NY].
func (f *ZoneField) at(i, j, k int) int {
	return ((i+1)*(f.NY+2)+(j+1))*f.NZ + k
}

// Get returns u(i,j,k) (ghosts included).
func (f *ZoneField) Get(i, j, k int) float64 { return f.u[f.at(i, j, k)] }

// Set assigns u(i,j,k).
func (f *ZoneField) Set(i, j, k int, v float64) { f.u[f.at(i, j, k)] = v }

// thomas solves the tridiagonal system with constant coefficients
// (-a, b, -a) and right-hand side d in place, returning the solution in d.
// scratch must have len(d) capacity.
func thomas(a, b float64, d, scratch []float64) {
	n := len(d)
	c := scratch[:n]
	// Forward sweep.
	c[0] = -a / b
	d[0] = d[0] / b
	for i := 1; i < n; i++ {
		m := b + a*c[i-1]
		c[i] = -a / m
		d[i] = (d[i] + a*d[i-1]) / m
	}
	// Back substitution: x_i = d'_i - c'_i * x_{i+1}.
	for i := n - 2; i >= 0; i-- {
		d[i] -= c[i] * d[i+1]
	}
}

// Multizone couples the zones of a class into one solver instance.
type Multizone struct {
	Class  Class
	Zones  []Zone
	Fields []*ZoneField
	Alpha  float64 // diffusion number alpha*dt/h^2 per sweep
}

// NewMultizone builds the zones (SP-MZ geometry: equal zones) and
// initialises the fields with a smooth global profile so border exchanges
// are observable.
func NewMultizone(c Class) *Multizone {
	zones := MakeZones(SPMZ, c)
	m := &Multizone{Class: c, Zones: zones, Alpha: 0.2}
	for _, z := range zones {
		f := NewZoneField(z.NX, z.NY, z.NZ)
		// Global coordinates of the zone origin.
		x0 := z.XI * z.NX
		y0 := z.YI * z.NY
		for i := 0; i < z.NX; i++ {
			for j := 0; j < z.NY; j++ {
				for k := 0; k < z.NZ; k++ {
					gx := float64(x0+i) / float64(c.GX)
					gy := float64(y0+j) / float64(c.GY)
					gz := float64(k) / float64(c.GZ)
					f.Set(i, j, k, math.Sin(2*math.Pi*gx)*math.Cos(2*math.Pi*gy)+0.5*gz)
				}
			}
		}
		m.Fields = append(m.Fields, f)
	}
	m.ExchangeBorders()
	return m
}

// adiScratch holds the reusable sweep buffers of adiStep, one instance per
// worker goroutine, so zone solves allocate nothing in steady state.
type adiScratch struct {
	d       []float64
	scratch []float64
}

// newADIScratch sizes a sweep scratch for the solver's largest zone
// dimension.
func (m *Multizone) newADIScratch() *adiScratch {
	maxd := 1
	for _, f := range m.Fields {
		for _, v := range [3]int{f.NX, f.NY, f.NZ} {
			if v > maxd {
				maxd = v
			}
		}
	}
	return &adiScratch{d: make([]float64, maxd), scratch: make([]float64, maxd)}
}

// adiStep advances one zone by one ADI time step: implicit sweeps along x,
// y and z. Ghost values (from the last border exchange) enter the x and y
// sweeps as Dirichlet boundary contributions; the z direction uses
// zero-flux boundaries.
func (m *Multizone) adiStep(f *ZoneField, sc *adiScratch) {
	a := m.Alpha
	b := 1 + 2*a
	d := sc.d
	scratch := sc.scratch

	// x sweep.
	for j := 0; j < f.NY; j++ {
		for k := 0; k < f.NZ; k++ {
			for i := 0; i < f.NX; i++ {
				d[i] = f.Get(i, j, k)
			}
			d[0] += a * f.Get(-1, j, k)
			d[f.NX-1] += a * f.Get(f.NX, j, k)
			thomas(a, b, d[:f.NX], scratch)
			for i := 0; i < f.NX; i++ {
				f.Set(i, j, k, d[i])
			}
		}
	}
	// y sweep.
	for i := 0; i < f.NX; i++ {
		for k := 0; k < f.NZ; k++ {
			for j := 0; j < f.NY; j++ {
				d[j] = f.Get(i, j, k)
			}
			d[0] += a * f.Get(i, -1, k)
			d[f.NY-1] += a * f.Get(i, f.NY, k)
			thomas(a, b, d[:f.NY], scratch)
			for j := 0; j < f.NY; j++ {
				f.Set(i, j, k, d[j])
			}
		}
	}
	// z sweep with zero-flux boundaries: system (b - a at ends).
	for i := 0; i < f.NX; i++ {
		for j := 0; j < f.NY; j++ {
			for k := 0; k < f.NZ; k++ {
				d[k] = f.Get(i, j, k)
			}
			// Reflecting boundary: fold the boundary coefficient
			// back (equivalent to u(-1) = u(0)).
			d[0] += 0 // handled via modified diagonal below
			solveZ(a, b, d[:f.NZ], scratch)
			for k := 0; k < f.NZ; k++ {
				f.Set(i, j, k, d[k])
			}
		}
	}
}

// solveZ solves the zero-flux variant of the tridiagonal sweep: the first
// and last diagonal entries are b - a.
func solveZ(a, b float64, d, scratch []float64) {
	n := len(d)
	if n == 1 {
		d[0] = d[0] / (b - 2*a)
		return
	}
	c := scratch[:n]
	c[0] = -a / (b - a)
	d[0] = d[0] / (b - a)
	for i := 1; i < n; i++ {
		diag := b
		if i == n-1 {
			diag = b - a
		}
		m := diag + a*c[i-1]
		c[i] = -a / m
		d[i] = (d[i] + a*d[i-1]) / m
	}
	for i := n - 2; i >= 0; i-- {
		d[i] -= c[i] * d[i+1]
	}
}

// ExchangeBorders copies the edge values of every zone into the ghost
// layers of its neighbours (periodic in x and y, like the zone meshes of
// NPB-MZ).
func (m *Multizone) ExchangeBorders() {
	for _, z := range m.Zones {
		m.exchangeZone(z)
	}
}

// exchangeZone fills one zone's ghost layers from its neighbours' edges.
// It only writes this zone's ghost cells and only reads the neighbours'
// interior cells, so disjoint zone sets may be exchanged concurrently as
// long as no interior is written at the same time.
func (m *Multizone) exchangeZone(z Zone) {
	c := m.Class
	id := func(xi, yi int) int { return yi*c.XZones + xi }
	f := m.Fields[z.ID]
	left := m.Fields[id((z.XI-1+c.XZones)%c.XZones, z.YI)]
	right := m.Fields[id((z.XI+1)%c.XZones, z.YI)]
	down := m.Fields[id(z.XI, (z.YI-1+c.YZones)%c.YZones)]
	up := m.Fields[id(z.XI, (z.YI+1)%c.YZones)]
	for j := 0; j < z.NY; j++ {
		for k := 0; k < z.NZ; k++ {
			f.Set(-1, j, k, left.Get(left.NX-1, j, k))
			f.Set(z.NX, j, k, right.Get(0, j, k))
		}
	}
	for i := 0; i < z.NX; i++ {
		for k := 0; k < z.NZ; k++ {
			f.Set(i, -1, k, down.Get(i, down.NY-1, k))
			f.Set(i, z.NY, k, up.Get(i, 0, k))
		}
	}
}

// Step advances all zones by one time step. With workers > 1 the zone
// solves of the step run concurrently on the given number of goroutines
// (the zones are independent within a step); the border exchange follows
// after all zones completed, so the result is identical to the sequential
// execution.
func (m *Multizone) Step(workers int) {
	if workers <= 1 {
		sc := m.newADIScratch()
		for _, z := range m.Zones {
			m.adiStep(m.Fields[z.ID], sc)
		}
	} else {
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := m.newADIScratch()
				for zid := range work {
					m.adiStep(m.Fields[zid], sc)
				}
			}()
		}
		for _, z := range m.Zones {
			work <- z.ID
		}
		close(work)
		wg.Wait()
	}
	m.ExchangeBorders()
}

// zoneSum returns the sum of one zone's interior values.
func (m *Multizone) zoneSum(z Zone) float64 {
	var s float64
	f := m.Fields[z.ID]
	for i := 0; i < z.NX; i++ {
		for j := 0; j < z.NY; j++ {
			for k := 0; k < z.NZ; k++ {
				s += f.Get(i, j, k)
			}
		}
	}
	return s
}

// Checksum returns the sum of all interior field values (a cheap
// regression check, analogous to the NPB verification sums).
func (m *Multizone) Checksum() float64 {
	var s float64
	for _, z := range m.Zones {
		s += m.zoneSum(z)
	}
	return s
}

// MaxAbs returns the largest interior field magnitude.
func (m *Multizone) MaxAbs() float64 {
	var mx float64
	for _, z := range m.Zones {
		f := m.Fields[z.ID]
		for i := 0; i < z.NX; i++ {
			for j := 0; j < z.NY; j++ {
				for k := 0; k < z.NZ; k++ {
					if v := math.Abs(f.Get(i, j, k)); v > mx {
						mx = v
					}
				}
			}
		}
	}
	return mx
}
