// Package nas implements a multi-zone benchmark workload modelled on the
// NAS parallel benchmarks multi-zone versions SP-MZ and BT-MZ used in
// Section 4.6 of the paper: the overall discretization mesh is divided
// into zones; within a time step all zones are computed independently
// (each zone is one M-task), and at the end of a time step overlapping
// zones exchange border values.
//
// SP-MZ divides the mesh into equally sized zones; BT-MZ sizes the zones
// following a geometric progression in the x direction so that the largest
// zone is roughly 20 times the smallest, creating the load imbalance that
// makes the assignment of zones to core groups an issue (Fig. 17).
//
// The package provides the zone geometry and cost model for the
// cluster-simulator experiments, and a small functional ADI-style zone
// solver with real border exchanges for the goroutine runtime.
package nas

import (
	"fmt"
	"math"
)

// Benchmark selects the zone solver variant.
type Benchmark int

const (
	// SPMZ is the Scalar Pentadiagonal multi-zone benchmark (equal
	// zones).
	SPMZ Benchmark = iota
	// BTMZ is the Block Tridiagonal multi-zone benchmark (geometric
	// zone sizes).
	BTMZ
)

func (b Benchmark) String() string {
	if b == BTMZ {
		return "BT-MZ"
	}
	return "SP-MZ"
}

// Class describes a benchmark class: the aggregate mesh and the zone grid,
// following the NPB-MZ specification (class C: 480x320x28 points in
// 16x16 = 256 zones; class D: 1632x1216x34 points in 32x32 = 1024 zones).
type Class struct {
	Name           string
	GX, GY, GZ     int // aggregate mesh
	XZones, YZones int // zone grid
}

// ClassC returns benchmark class C (256 zones).
func ClassC() Class { return Class{Name: "C", GX: 480, GY: 320, GZ: 28, XZones: 16, YZones: 16} }

// ClassD returns benchmark class D (1024 zones).
func ClassD() Class { return Class{Name: "D", GX: 1632, GY: 1216, GZ: 34, XZones: 32, YZones: 32} }

// ClassW returns a miniature class for functional tests.
func ClassW() Class { return Class{Name: "W", GX: 64, GY: 48, GZ: 8, XZones: 4, YZones: 4} }

// Zones returns the zone count of the class.
func (c Class) Zones() int { return c.XZones * c.YZones }

// Zone is one zone of the multi-zone mesh: its grid extent, its work per
// time step, and its border-exchange partners.
type Zone struct {
	ID         int
	XI, YI     int // position in the zone grid
	NX, NY, NZ int

	// Work is the floating-point work of one time step of the zone's
	// solver.
	Work float64

	// Neighbors lists the ids of adjacent zones (exchange partners);
	// BorderBytes the per-step exchange volume to each.
	Neighbors   []int
	BorderBytes map[int]int
}

// flopsPerCell is the per-grid-point per-step work of the two solvers.
// The BT solver performs roughly 2.5x the work of the SP solver per point,
// matching the NPB ratio of the two.
func flopsPerCell(b Benchmark) float64 {
	if b == BTMZ {
		return 5000
	}
	return 2000
}

// btWidths returns the x widths of the zones of one row for BT-MZ: a
// geometric progression normalised to total gx, with a largest/smallest
// ratio of about 20, as in the NPB-MZ reference.
func btWidths(gx, xzones int) []int {
	if xzones == 1 {
		return []int{gx}
	}
	const ratio = 20.0
	r := math.Pow(ratio, 1/float64(xzones-1))
	weights := make([]float64, xzones)
	sum := 0.0
	for i := range weights {
		weights[i] = math.Pow(r, float64(i))
		sum += weights[i]
	}
	widths := make([]int, xzones)
	used := 0
	for i := range widths {
		widths[i] = int(float64(gx) * weights[i] / sum)
		if widths[i] < 2 {
			widths[i] = 2
		}
		used += widths[i]
	}
	// Adjust the largest zone to consume rounding remainders.
	widths[xzones-1] += gx - used
	if widths[xzones-1] < 2 {
		widths[xzones-1] = 2
	}
	return widths
}

// MakeZones constructs the zones of the benchmark with geometry, work and
// border-exchange volumes. Borders connect zones adjacent in the zone
// grid (with wrap-around, as the NPB-MZ meshes are periodic in x and y).
func MakeZones(b Benchmark, c Class) []Zone {
	xw := make([]int, c.XZones)
	if b == BTMZ {
		copy(xw, btWidths(c.GX, c.XZones))
	} else {
		for i := range xw {
			xw[i] = c.GX / c.XZones
		}
	}
	yw := c.GY / c.YZones
	nz := c.GZ
	fpc := flopsPerCell(b)

	zones := make([]Zone, 0, c.Zones())
	id := func(xi, yi int) int { return yi*c.XZones + xi }
	for yi := 0; yi < c.YZones; yi++ {
		for xi := 0; xi < c.XZones; xi++ {
			nx := xw[xi]
			z := Zone{
				ID: id(xi, yi), XI: xi, YI: yi,
				NX: nx, NY: yw, NZ: nz,
				Work:        fpc * float64(nx*yw*nz),
				BorderBytes: make(map[int]int),
			}
			// 5 solution variables, 8 bytes, full face per
			// neighbour.
			addN := func(nid, cells int) {
				if nid == z.ID {
					return
				}
				z.Neighbors = append(z.Neighbors, nid)
				z.BorderBytes[nid] = 5 * 8 * cells
			}
			left := id((xi-1+c.XZones)%c.XZones, yi)
			right := id((xi+1)%c.XZones, yi)
			down := id(xi, (yi-1+c.YZones)%c.YZones)
			up := id(xi, (yi+1)%c.YZones)
			addN(left, yw*nz)
			addN(right, yw*nz)
			addN(down, nx*nz)
			addN(up, nx*nz)
			zones = append(zones, z)
		}
	}
	return zones
}

// TotalWork returns the summed per-step work of the zones.
func TotalWork(zones []Zone) float64 {
	var w float64
	for _, z := range zones {
		w += z.Work
	}
	return w
}

// Imbalance returns the ratio of the largest to the smallest zone work.
func Imbalance(zones []Zone) float64 {
	min, max := math.Inf(1), 0.0
	for _, z := range zones {
		if z.Work < min {
			min = z.Work
		}
		if z.Work > max {
			max = z.Work
		}
	}
	if min == 0 {
		return math.Inf(1)
	}
	return max / min
}

// AssignContiguous partitions the zones (in row-major zone-grid order)
// into g contiguous groups with balanced work: it walks the zone sequence
// and cuts a group whenever the accumulated work reaches the remaining
// average. Contiguity keeps neighbouring zones in the same group, which is
// what the paper's best configurations do ("assigning 16 neighboring zones
// to each group"). It returns the zone ids per group.
func AssignContiguous(zones []Zone, g int) ([][]int, error) {
	if g < 1 || g > len(zones) {
		return nil, fmt.Errorf("nas: cannot build %d groups from %d zones", g, len(zones))
	}
	total := TotalWork(zones)
	groups := make([][]int, 0, g)
	var cur []int
	var acc float64
	remaining := total
	for i, z := range zones {
		cur = append(cur, z.ID)
		acc += z.Work
		zonesLeft := len(zones) - i - 1
		groupsLeft := g - len(groups) - 1
		// Cut when this group reached the average of the remaining
		// work, but never leave fewer zones than groups.
		if groupsLeft > 0 && (acc >= remaining/float64(groupsLeft+1) || zonesLeft == groupsLeft) {
			groups = append(groups, cur)
			remaining -= acc
			cur = nil
			acc = 0
		}
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}
	if len(groups) != g {
		return nil, fmt.Errorf("nas: built %d groups, want %d", len(groups), g)
	}
	return groups, nil
}

// GroupWork returns the summed work of a zone id group.
func GroupWork(zones []Zone, group []int) float64 {
	var w float64
	for _, id := range group {
		w += zones[id].Work
	}
	return w
}
