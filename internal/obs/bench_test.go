package obs

import "testing"

// The emit-path microbenchmarks: Span is two clock reads plus one ring
// reservation; the nil variants must compile to a handful of branches.

func BenchmarkNow(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Now()
	}
}

func BenchmarkSpan(b *testing.B) {
	r := New(1, WithCapacity(1<<20))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Span("task", "task", 0, 1, 0, int64(i), int64(i+1))
	}
}

func BenchmarkCounterSample(b *testing.B) {
	r := New(1, WithCapacity(1<<20))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.CounterSample("group.barrier", "collective", 0, int64(i), float64(i))
	}
}

func BenchmarkSpanNil(b *testing.B) {
	var r *Recorder
	for i := 0; i < b.N; i++ {
		r.Span("task", "task", 0, 1, 0, int64(i), int64(i+1))
	}
}

func BenchmarkCounterRegistry(b *testing.B) {
	r := New(1)
	c := r.Counter("hits")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
