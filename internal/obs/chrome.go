package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// chromeEvent is one entry of the Chrome trace_event format's
// JSON-array flavour, loadable in chrome://tracing and Perfetto.
// Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const usPerNs = 1e-3

// ctlTid is the thread id used for the control track. Real ranks map to
// tid = rank + 1 so the control track sorts first.
const ctlTid = 0

// WriteChrome writes the recorders' events as Chrome trace_event JSON
// ({"traceEvents": [...]}). Each recorder becomes one process (pid),
// named by metadata events; each rank becomes one thread within it.
// Spans export as complete events (ph "X"), instants as ph "i", counter
// samples as ph "C". Call only after the recorders have quiesced.
func WriteChrome(w io.Writer, recs ...*Recorder) error {
	var evs []chromeEvent
	for pi, r := range recs {
		if r == nil {
			continue
		}
		pid := pi + 1
		evs = append(evs, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: ctlTid,
			Args: map[string]any{"name": r.Name()},
		})
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: ctlTid,
			Args: map[string]any{"name": "control"},
		})
		for rank := 0; rank < r.Ranks(); rank++ {
			evs = append(evs, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: rank + 1,
				Args: map[string]any{"name": fmt.Sprintf("rank %d", rank)},
			})
		}
		for _, ev := range r.Events() {
			evs = append(evs, toChrome(ev, pid))
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": evs})
}

// WriteChromeFile is WriteChrome to a freshly created file.
func WriteChromeFile(path string, recs ...*Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChrome(f, recs...); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func toChrome(ev Event, pid int) chromeEvent {
	tid := ctlTid
	if ev.Rank >= 0 {
		tid = int(ev.Rank) + 1
	}
	ce := chromeEvent{
		Name: ev.Name,
		Cat:  ev.Cat,
		Ts:   float64(ev.Start) * usPerNs,
		Pid:  pid,
		Tid:  tid,
	}
	switch ev.Kind {
	case KindSpan:
		ce.Ph = "X"
		ce.Dur = float64(ev.End-ev.Start) * usPerNs
		if ev.Layer >= 0 || ev.Group >= 0 {
			ce.Args = map[string]any{}
			if ev.Layer >= 0 {
				ce.Args["layer"] = ev.Layer
			}
			if ev.Group >= 0 {
				ce.Args["group"] = ev.Group
			}
		}
	case KindInstant:
		ce.Ph = "i"
		ce.S = "t" // thread-scoped instant
	case KindCounter:
		ce.Ph = "C"
		ce.Args = map[string]any{"value": ev.Value}
	}
	return ce
}
