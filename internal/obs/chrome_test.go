package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestWriteChromeGolden pins the Chrome trace_event encoding against a
// golden file: metadata events name the process and threads, spans are
// ph "X" complete events with microsecond ts/dur and layer/group args,
// instants are thread-scoped ph "i", counters ph "C". Timestamps are
// explicit, so the output is fully deterministic.
func TestWriteChromeGolden(t *testing.T) {
	r := New(2, WithName("golden"), WithCapacity(16))
	r.Span("solve", "task", 0, 1, 0, 1000, 4000)
	r.Span("barrier-wait", "barrier", 1, -1, -1, 2000, 3500)
	r.Instant("retry:solve", "fault", ControlRank, 2500)
	r.CounterSample("group.bcast", "collective", 1, 3000, 7)

	var buf bytes.Buffer
	if err := WriteChrome(&buf, r); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	// Whatever the exact bytes, the envelope must parse as JSON.
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(got, &parsed); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}

	golden := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("chrome export drifted from golden file\n got: %s\nwant: %s", got, want)
	}
}

// TestWriteChromeNilAndMulti checks nil recorders are skipped and
// multiple recorders export as distinct pids.
func TestWriteChromeNilAndMulti(t *testing.T) {
	a := New(1, WithName("a"))
	b := New(1, WithName("b"))
	a.Instant("x", "t", 0, 1)
	b.Instant("y", "t", 0, 2)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, a, nil, b); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	pids := map[int]bool{}
	for _, ev := range parsed.TraceEvents {
		pids[ev.Pid] = true
	}
	if len(pids) != 2 {
		t.Fatalf("pids = %v, want 2 distinct", pids)
	}
}
