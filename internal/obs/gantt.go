package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Row is one line of a text Gantt chart: a named bar from Start to End
// (caller-defined units, typically seconds) with an optional trailing
// detail such as "(4 cores)".
type Row struct {
	Name   string
	Start  float64
	End    float64
	Detail string
}

// RenderRows renders rows as a text Gantt chart, one bar per row scaled
// so that span (the makespan; the maximum row End when span <= 0) fills
// width columns. Rows are sorted by start time, then name. This is the
// shared renderer behind cluster.RenderGantt, baseline.Gantt.Render and
// Recorder.Gantt.
func RenderRows(rows []Row, width int, span float64) string {
	if width < 10 {
		width = 10
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Start != rows[j].Start {
			return rows[i].Start < rows[j].Start
		}
		return rows[i].Name < rows[j].Name
	})
	if span <= 0 {
		for _, rw := range rows {
			if rw.End > span {
				span = rw.End
			}
		}
	}
	nameW := 8
	for _, rw := range rows {
		if len(rw.Name) > nameW {
			nameW = len(rw.Name)
		}
	}
	if nameW > 32 {
		nameW = 32
	}
	var b strings.Builder
	scale := 0.0
	if span > 0 {
		scale = float64(width) / span
	}
	for _, rw := range rows {
		name := rw.Name
		if len(name) > nameW {
			name = name[:nameW]
		}
		lo := int(rw.Start * scale)
		hi := int(rw.End * scale)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		if lo > width-1 {
			lo = width - 1
		}
		bar := strings.Repeat(" ", lo) + strings.Repeat("#", hi-lo) + strings.Repeat(" ", width-hi)
		fmt.Fprintf(&b, "%-*s |%s| %8.4g..%-8.4g", nameW, name, bar, rw.Start, rw.End)
		if rw.Detail != "" {
			fmt.Fprintf(&b, " %s", rw.Detail)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Gantt renders the recorder's task spans (category "task") as a text
// Gantt chart, one row per recorded attempt labelled "name@rank", with
// times in seconds since the recorder epoch. Call after quiescence.
func (r *Recorder) Gantt(width int) string {
	if r == nil {
		return ""
	}
	var rows []Row
	var span float64
	for _, ev := range r.Events() {
		if ev.Kind != KindSpan || ev.Cat != "task" {
			continue
		}
		rw := Row{
			Name:  fmt.Sprintf("%s@%d", ev.Name, ev.Rank),
			Start: float64(ev.Start) * 1e-9,
			End:   float64(ev.End) * 1e-9,
		}
		if ev.Layer >= 0 {
			rw.Detail = fmt.Sprintf("(layer %d)", ev.Layer)
		}
		rows = append(rows, rw)
		if rw.End > span {
			span = rw.End
		}
	}
	head := fmt.Sprintf("gantt of %q: %d task spans over %.4g s\n", r.Name(), len(rows), span)
	return head + RenderRows(rows, width, span)
}
