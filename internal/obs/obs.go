// Package obs is the unified observability layer: an allocation-conscious
// event recorder with per-rank ring buffers, a named-counter metrics
// registry, and exporters (Chrome trace_event JSON, text Gantt).
//
// The design follows the paper's evaluation methodology (Sections 4-5):
// schedules are reasoned about via per-task timelines, group utilization,
// and redistribution overhead. A Recorder captures exactly those signals
// while the runtime executes:
//
//   - span events for task attempts (category "task") and barrier waits
//     (category "barrier"), one timeline per symbolic core (rank);
//   - instant events for faults, retries, replans, and scheduler
//     decisions;
//   - counter events for per-rank collective-operation counts and
//     planner/cache statistics.
//
// # Hot-path discipline
//
// Recording must not perturb what it measures. Every emit path is
// lock-free: a slot index is reserved with a single atomic add on the
// rank's ring; events past the ring capacity are dropped (never
// overwritten) and counted exactly in an atomic drop counter. A nil
// *Recorder is a valid no-op recorder: every method has a nil-receiver
// fast path, so call sites thread a possibly-nil pointer without
// branching.
//
// Like runtime.Report, a Recorder is written concurrently during a run
// and read afterwards: Events, Metrics, Gantt, and the exporters must
// only be called once the recording goroutines have quiesced (after
// Execute/Plan returns).
//
// # Clock
//
// Timestamps are nanoseconds since the recorder's epoch (construction
// time), taken from Go's monotonic clock via time.Since. Now on a nil
// recorder returns 0, so "start := rec.Now()" is safe unconditionally.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Event kinds.
const (
	KindSpan    uint8 = iota // duration event: [Start, End)
	KindInstant              // point event at Start
	KindCounter              // counter sample: Value at Start
)

// ControlRank is the pseudo-rank used for events that belong to the run
// as a whole rather than to one symbolic core: planner spans, scheduler
// decisions, admission events. They render as a separate "control"
// track.
const ControlRank = -1

// Event is one recorded observation. Rank identifies the timeline
// (ControlRank for run-level events); Layer and Group are -1 when not
// applicable. Start and End are nanoseconds since the recorder epoch.
type Event struct {
	Name  string
	Cat   string
	Kind  uint8
	Rank  int32
	Layer int32
	Group int32
	Start int64
	End   int64
	Value float64
}

// Dur returns the span duration (zero for instants and counters).
func (e Event) Dur() time.Duration { return time.Duration(e.End - e.Start) }

// ring is a fixed-capacity, lock-free, drop-when-full event buffer.
// Writers reserve a slot with one atomic add; the slot write itself is
// unsynchronized and is published by the read-after-quiescence rule.
// Rings of different ranks sit adjacent in the Recorder's slice, so the
// struct is padded to its own cache lines — otherwise every rank's
// atomic reservation would bounce one shared line between all cores.
type ring struct {
	next  atomic.Uint64
	drops atomic.Uint64
	buf   []Event
	_     [88]byte
}

func (r *ring) emit(ev Event) {
	i := r.next.Add(1) - 1
	if i >= uint64(len(r.buf)) {
		r.drops.Add(1)
		return
	}
	r.buf[i] = ev
}

// len reports the number of events stored (capped at capacity).
func (r *ring) len() int {
	n := r.next.Load()
	if n > uint64(len(r.buf)) {
		return len(r.buf)
	}
	return int(n)
}

// Counter is a monotonically updated named metric. The zero value is
// unusable; obtain counters from Recorder.Counter. All methods are safe
// for concurrent use; Add on a nil counter is a no-op so counters from a
// nil recorder compose with the no-op fast path.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// DefaultCapacity is the per-rank ring capacity used when WithCapacity
// is not given: 16384 events ≈ 1 MiB per rank.
const DefaultCapacity = 1 << 14

// Recorder collects events for one run. Construct with New; a nil
// *Recorder is a valid recorder that records nothing.
type Recorder struct {
	name  string
	epoch time.Time
	ranks []ring // per-rank timelines
	ctl   ring   // ControlRank / out-of-range timeline

	mu       sync.Mutex
	counters map[string]*Counter
}

// Option configures a Recorder.
type Option func(*recOpts)

type recOpts struct {
	capacity int
	name     string
}

// WithCapacity sets the per-rank ring capacity in events. Events beyond
// the capacity are dropped and counted; see Drops.
func WithCapacity(n int) Option {
	return func(o *recOpts) {
		if n > 0 {
			o.capacity = n
		}
	}
}

// WithName labels the recorder; exporters use it as the process name.
func WithName(s string) Option {
	return func(o *recOpts) { o.name = s }
}

// New returns a Recorder with one event ring per rank in [0, ranks),
// plus a control ring for run-level events.
func New(ranks int, opts ...Option) *Recorder {
	o := recOpts{capacity: DefaultCapacity, name: "mtask"}
	for _, f := range opts {
		f(&o)
	}
	if ranks < 0 {
		ranks = 0
	}
	r := &Recorder{
		name:     o.name,
		epoch:    time.Now(),
		ranks:    make([]ring, ranks),
		counters: make(map[string]*Counter),
	}
	for i := range r.ranks {
		r.ranks[i].buf = make([]Event, o.capacity)
	}
	r.ctl.buf = make([]Event, o.capacity)
	return r
}

// Name returns the recorder's label ("" for nil).
func (r *Recorder) Name() string {
	if r == nil {
		return ""
	}
	return r.name
}

// Ranks returns the number of per-rank timelines (0 for nil).
func (r *Recorder) Ranks() int {
	if r == nil {
		return 0
	}
	return len(r.ranks)
}

// Now returns nanoseconds since the recorder epoch (0 for nil).
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return int64(time.Since(r.epoch))
}

func (r *Recorder) ringFor(rank int) *ring {
	if rank < 0 || rank >= len(r.ranks) {
		return &r.ctl
	}
	return &r.ranks[rank]
}

// Span records a duration event [start, end) on rank's timeline. Pass
// -1 for layer or group when not applicable.
func (r *Recorder) Span(name, cat string, rank, layer, group int, start, end int64) {
	if r == nil {
		return
	}
	r.ringFor(rank).emit(Event{
		Name: name, Cat: cat, Kind: KindSpan,
		Rank: int32(rank), Layer: int32(layer), Group: int32(group),
		Start: start, End: end,
	})
}

// Instant records a point event at ts on rank's timeline.
func (r *Recorder) Instant(name, cat string, rank int, ts int64) {
	if r == nil {
		return
	}
	r.ringFor(rank).emit(Event{
		Name: name, Cat: cat, Kind: KindInstant,
		Rank: int32(rank), Layer: -1, Group: -1,
		Start: ts, End: ts,
	})
}

// CounterSample records the value of a named counter at ts on rank's
// timeline. Exporters render successive samples as a counter track.
func (r *Recorder) CounterSample(name, cat string, rank int, ts int64, v float64) {
	if r == nil {
		return
	}
	r.ringFor(rank).emit(Event{
		Name: name, Cat: cat, Kind: KindCounter,
		Rank: int32(rank), Layer: -1, Group: -1,
		Start: ts, End: ts, Value: v,
	})
}

// Counter returns the named registry counter, creating it on first use.
// Returns nil (a valid no-op counter) on a nil recorder.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// SetMetric sets the named registry counter to v (overwriting), a
// convenience for publishing gauge-style snapshots such as cache sizes.
func (r *Recorder) SetMetric(name string, v int64) {
	if r == nil {
		return
	}
	c := r.Counter(name)
	c.v.Store(v)
}

// Metrics returns a snapshot of the counter registry plus recorder
// bookkeeping ("obs.events", "obs.drops"). Safe to call concurrently,
// but values are only mutually consistent after quiescence.
func (r *Recorder) Metrics() map[string]int64 {
	if r == nil {
		return nil
	}
	m := make(map[string]int64)
	r.mu.Lock()
	for name, c := range r.counters {
		m[name] = c.v.Load()
	}
	r.mu.Unlock()
	var events, drops int64
	for i := range r.ranks {
		events += int64(r.ranks[i].len())
		drops += int64(r.ranks[i].drops.Load())
	}
	events += int64(r.ctl.len())
	drops += int64(r.ctl.drops.Load())
	m["obs.events"] = events
	m["obs.drops"] = drops
	return m
}

// Reset discards all recorded events and drop counts, keeping the ring
// allocations and the counter registry. Like the readers, it must only
// be called after recording goroutines have quiesced.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	for i := range r.ranks {
		r.ranks[i].next.Store(0)
		r.ranks[i].drops.Store(0)
	}
	r.ctl.next.Store(0)
	r.ctl.drops.Store(0)
}

// Drops returns the total number of events discarded because a ring was
// full (0 for nil).
func (r *Recorder) Drops() uint64 {
	if r == nil {
		return 0
	}
	var d uint64
	for i := range r.ranks {
		d += r.ranks[i].drops.Load()
	}
	return d + r.ctl.drops.Load()
}

// RankEvents returns rank's recorded events in emission order (the
// control track for out-of-range ranks). The returned slice aliases the
// ring; callers must not retain it across further recording.
func (r *Recorder) RankEvents(rank int) []Event {
	if r == nil {
		return nil
	}
	rg := r.ringFor(rank)
	return rg.buf[:rg.len()]
}

// Events returns all recorded events: control track first, then ranks
// in order, each in emission order. Call only after quiescence.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, r.ctl.len())
	out = append(out, r.ctl.buf[:r.ctl.len()]...)
	for i := range r.ranks {
		rg := &r.ranks[i]
		out = append(out, rg.buf[:rg.len()]...)
	}
	return out
}

// MetricsString renders the Metrics snapshot sorted by key, one
// "name value" per line — a deterministic form for logs and tests.
func (r *Recorder) MetricsString() string {
	m := r.Metrics()
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += fmt.Sprintf("%s %d\n", k, m[k])
	}
	return s
}
