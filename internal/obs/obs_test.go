package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestConcurrentPerRankOrdering is the recorder's concurrency property
// test (run under -race): N goroutines, one per rank, each emit a
// below-capacity stream of events concurrently; afterwards every rank's
// timeline must hold exactly its own events, in emission order, with
// zero drops.
func TestConcurrentPerRankOrdering(t *testing.T) {
	const ranks, perRank = 8, 1000
	r := New(ranks, WithCapacity(perRank))
	var wg sync.WaitGroup
	for rank := 0; rank < ranks; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < perRank; i++ {
				// Value encodes (rank, i) so cross-rank mixups are caught.
				r.CounterSample("seq", "test", rank, int64(i), float64(rank*perRank+i))
			}
		}(rank)
	}
	wg.Wait()

	if d := r.Drops(); d != 0 {
		t.Fatalf("drops = %d, want 0 (below capacity)", d)
	}
	for rank := 0; rank < ranks; rank++ {
		evs := r.RankEvents(rank)
		if len(evs) != perRank {
			t.Fatalf("rank %d: %d events, want %d", rank, len(evs), perRank)
		}
		for i, ev := range evs {
			if int(ev.Rank) != rank {
				t.Fatalf("rank %d slot %d: event of rank %d leaked in", rank, i, ev.Rank)
			}
			if want := float64(rank*perRank + i); ev.Value != want {
				t.Fatalf("rank %d slot %d: value %v, want %v (ordering violated)", rank, i, ev.Value, want)
			}
		}
	}
	if got := r.Metrics()["obs.events"]; got != ranks*perRank {
		t.Fatalf("obs.events = %d, want %d", got, ranks*perRank)
	}
}

// TestDropCounterExact overflows a small ring from many goroutines and
// checks stored + dropped == emitted exactly — no event is lost
// unaccounted and none is overwritten.
func TestDropCounterExact(t *testing.T) {
	const cap, writers, perWriter = 64, 8, 100
	r := New(1, WithCapacity(cap))
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Instant("x", "test", 0, int64(i))
			}
		}()
	}
	wg.Wait()
	stored := len(r.RankEvents(0))
	if stored != cap {
		t.Fatalf("stored %d events in a ring of %d", stored, cap)
	}
	if want := uint64(writers*perWriter - cap); r.Drops() != want {
		t.Fatalf("drops = %d, want exactly %d", r.Drops(), want)
	}
}

// TestNilRecorderNoops pins the nil fast path: every method on a nil
// *Recorder (and a nil *Counter) is a safe no-op.
func TestNilRecorderNoops(t *testing.T) {
	var r *Recorder
	if r.Now() != 0 {
		t.Error("nil Now != 0")
	}
	r.Span("a", "b", 0, 0, 0, 0, 1)
	r.Instant("a", "b", 0, 0)
	r.CounterSample("a", "b", 0, 0, 1)
	r.SetMetric("a", 1)
	c := r.Counter("a")
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter accumulated")
	}
	if r.Events() != nil || r.RankEvents(0) != nil || r.Metrics() != nil {
		t.Error("nil recorder returned data")
	}
	if r.Drops() != 0 || r.Ranks() != 0 || r.Name() != "" {
		t.Error("nil recorder reported state")
	}
	if r.Gantt(40) != "" {
		t.Error("nil recorder rendered a gantt")
	}
}

// TestCountersAndMetrics exercises the registry: named counters
// accumulate atomically across goroutines and Metrics snapshots them
// with the bookkeeping keys.
func TestCountersAndMetrics(t *testing.T) {
	r := New(2)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 250; j++ {
				r.Counter("hits").Add(1)
			}
		}()
	}
	wg.Wait()
	r.SetMetric("gauge", 42)
	m := r.Metrics()
	if m["hits"] != 1000 {
		t.Errorf("hits = %d, want 1000", m["hits"])
	}
	if m["gauge"] != 42 {
		t.Errorf("gauge = %d, want 42", m["gauge"])
	}
	if _, ok := m["obs.events"]; !ok {
		t.Error("obs.events bookkeeping key missing")
	}
	out := r.MetricsString()
	if !strings.Contains(out, "hits 1000") || !strings.Contains(out, "gauge 42") {
		t.Errorf("MetricsString:\n%s", out)
	}
}

// TestControlTrack routes out-of-range ranks to the control ring.
func TestControlTrack(t *testing.T) {
	r := New(2)
	r.Instant("ctl", "test", ControlRank, 1)
	r.Instant("oob", "test", 99, 2)
	r.Span("rank0", "test", 0, -1, -1, 0, 1)
	ctl := r.RankEvents(ControlRank)
	if len(ctl) != 2 || ctl[0].Name != "ctl" || ctl[1].Name != "oob" {
		t.Fatalf("control track: %+v", ctl)
	}
	if evs := r.RankEvents(0); len(evs) != 1 || evs[0].Name != "rank0" {
		t.Fatalf("rank 0 track: %+v", evs)
	}
	// Events() lists control first, then ranks.
	all := r.Events()
	if len(all) != 3 || all[0].Name != "ctl" || all[2].Name != "rank0" {
		t.Fatalf("Events order: %+v", all)
	}
}

// TestGanttRendersTaskSpans checks the text Gantt output: bars scale to
// the span window, rows carry the layer detail, non-task events are
// skipped.
func TestGanttRendersTaskSpans(t *testing.T) {
	r := New(2, WithName("test"))
	r.Span("slow", "task", 0, 0, 0, 0, 1_000_000_000)
	r.Span("fast", "task", 1, 0, 1, 0, 250_000_000)
	r.Span("barrier-wait", "barrier", 1, -1, -1, 250_000_000, 1_000_000_000)
	out := r.Gantt(40)
	for _, want := range []string{"slow@0", "fast@1", "(layer 0)", "2 task spans", "#"} {
		if !strings.Contains(out, want) {
			t.Fatalf("gantt missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "barrier-wait") {
		t.Fatalf("non-task span rendered:\n%s", out)
	}
	// The full-window span renders a longer bar than the quarter-window one.
	if strings.Count(lineOf(out, "slow@0"), "#") <= strings.Count(lineOf(out, "fast@1"), "#") {
		t.Fatalf("bar scaling wrong:\n%s", out)
	}
}

func lineOf(s, sub string) string {
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, sub) {
			return l
		}
	}
	return ""
}
