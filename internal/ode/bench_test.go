package ode

import (
	"testing"

	"mtask/internal/runtime"
)

// Execution benchmarks of the solver hot loops: one iteration is one full
// time step of the method on a world of goroutines, so allocs/op is the
// per-timestep allocation bill of the collective-heavy inner loop (the
// BENCH_exec.json acceptance metric). Regenerate with
//
//	go test -run '^$' -bench 'BenchmarkExec' -benchtime 200x -count 3 ./internal/ode

// benchPABTimestep runs b.N PABM time steps in a single solver invocation,
// so per-op numbers converge to the marginal cost of one step.
func benchPABTimestep(b *testing.B, groups int) {
	b.Helper()
	sys := NewLinearDecay(256)
	w, err := runtime.NewWorld(8)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := ParallelPAB(w, sys, 4, 2, RunOpts{Groups: groups, Steps: b.N, H: 1e-4}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkExecPABTimestepDP: data-parallel PABM, K*(1+m) global
// allgathers per step on all 8 cores.
func BenchmarkExecPABTimestepDP(b *testing.B) { benchPABTimestep(b, 1) }

// BenchmarkExecPABTimestepTP: task-parallel PABM, (1+m) group allgathers
// plus one orthogonal exchange per step (one group per stage).
func BenchmarkExecPABTimestepTP(b *testing.B) { benchPABTimestep(b, 4) }

// BenchmarkExecIRKTimestepTP: task-parallel IRK, m group + m orthogonal
// allgathers and one global gather per step.
func BenchmarkExecIRKTimestepTP(b *testing.B) {
	sys := NewLinearDecay(256)
	w, err := runtime.NewWorld(8)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := ParallelIRK(w, sys, 4, 3, RunOpts{Groups: 4, Steps: b.N, H: 1e-4}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkExecEPOLTimestepTP: task-parallel extrapolation, R+1 group
// allgathers per group and one orthogonal re-distribution per step.
func BenchmarkExecEPOLTimestepTP(b *testing.B) {
	sys := NewLinearDecay(256)
	w, err := runtime.NewWorld(8)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := ParallelEPOL(w, sys, 4, RunOpts{Groups: 2, Steps: b.N, H: 1e-4, Control: true}); err != nil {
		b.Fatal(err)
	}
}
