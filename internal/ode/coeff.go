package ode

import (
	"fmt"
	"math"
)

// Numerical helpers shared by the solvers: Lagrange polynomial integrals
// for collocation/Adams coefficients and Gauss-Legendre nodes for the
// (DI)IRK stage abscissas.

// polyMul multiplies two polynomials in coefficient form (index = power).
func polyMul(a, b []float64) []float64 {
	out := make([]float64, len(a)+len(b)-1)
	for i, ai := range a {
		for j, bj := range b {
			out[i+j] += ai * bj
		}
	}
	return out
}

// lagrangeCoeffs returns the coefficient form of the Lagrange basis
// polynomial L_j over the given nodes.
func lagrangeCoeffs(nodes []float64, j int) []float64 {
	coeffs := []float64{1}
	for k, ck := range nodes {
		if k == j {
			continue
		}
		den := nodes[j] - ck
		coeffs = polyMul(coeffs, []float64{-ck / den, 1 / den})
	}
	return coeffs
}

// polyIntegral integrates a polynomial in coefficient form from a to b.
func polyIntegral(coeffs []float64, a, b float64) float64 {
	var s float64
	for i, c := range coeffs {
		p := float64(i + 1)
		s += c / p * (math.Pow(b, p) - math.Pow(a, p))
	}
	return s
}

// LagrangeIntegral returns the integral of the Lagrange basis polynomial
// L_j over [a, b] for the given interpolation nodes. These integrals are
// the collocation weights of the IRK methods and the Adams coefficients of
// the PAB/PABM methods.
func LagrangeIntegral(nodes []float64, j int, a, b float64) float64 {
	if j < 0 || j >= len(nodes) {
		panic(fmt.Sprintf("ode: Lagrange index %d out of range", j))
	}
	return polyIntegral(lagrangeCoeffs(nodes, j), a, b)
}

// GaussNodes returns the K Gauss-Legendre collocation nodes shifted to
// (0, 1): the roots of the shifted Legendre polynomial P_K(2x - 1),
// computed by Newton iteration.
func GaussNodes(k int) []float64 {
	if k < 1 {
		panic("ode: GaussNodes needs k >= 1")
	}
	nodes := make([]float64, k)
	for i := 0; i < k; i++ {
		// Chebyshev-like initial guess on [-1, 1].
		x := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(k) + 0.5))
		for iter := 0; iter < 100; iter++ {
			p, dp := legendre(k, x)
			dx := p / dp
			x -= dx
			if math.Abs(dx) < 1e-15 {
				break
			}
		}
		nodes[k-1-i] = (x + 1) / 2 // shift to (0,1), ascending order
	}
	return nodes
}

// legendre evaluates the Legendre polynomial P_k and its derivative at x
// via the three-term recurrence.
func legendre(k int, x float64) (p, dp float64) {
	p0, p1 := 1.0, x
	if k == 0 {
		return 1, 0
	}
	for j := 2; j <= k; j++ {
		p0, p1 = p1, ((2*float64(j)-1)*x*p1-(float64(j)-1)*p0)/float64(j)
	}
	dp = float64(k) * (x*p1 - p0) / (x*x - 1)
	return p1, dp
}

// CollocationRK holds the Butcher tableau of a K-stage collocation
// Runge-Kutta method: A[i][j] = integral of L_j over [0, c_i], B[j] =
// integral of L_j over [0, 1].
type CollocationRK struct {
	K int
	C []float64
	A [][]float64
	B []float64
}

// NewGaussRK constructs the K-stage Gauss collocation method (order 2K),
// the corrector of the paper's IRK and DIIRK solvers.
func NewGaussRK(k int) *CollocationRK {
	c := GaussNodes(k)
	rk := &CollocationRK{K: k, C: c, B: make([]float64, k), A: make([][]float64, k)}
	for i := 0; i < k; i++ {
		rk.A[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			rk.A[i][j] = LagrangeIntegral(c, j, 0, c[i])
		}
	}
	for j := 0; j < k; j++ {
		rk.B[j] = LagrangeIntegral(c, j, 0, 1)
	}
	return rk
}

// AdamsCoeffs holds the coefficients of the K-stage parallel
// Adams-Bashforth(-Moulton) block methods: the stages of step n+1 sit at
// abscissas 1 + c_i relative to step n, and are predicted (PAB) by
// integrating the interpolation polynomial through the previous stage
// derivatives, or corrected (PABM) by additionally interpolating the new
// stage's own derivative.
type AdamsCoeffs struct {
	K int
	C []float64
	// Beta[i][j]: PAB predictor weight of F_j^n for stage i of step n+1.
	Beta [][]float64
	// Mu[i][j]: PABM corrector weight of F_j^n; Nu[i]: corrector weight
	// of F(Y_i^{n+1}).
	Mu [][]float64
	Nu []float64
}

// NewAdams constructs the coefficients for K stages at the equidistant
// abscissas c_i = (i+1)/K (so stage K-1 sits at the step end and carries
// the solution).
func NewAdams(k int) *AdamsCoeffs {
	if k < 1 {
		panic("ode: NewAdams needs k >= 1")
	}
	a := &AdamsCoeffs{K: k, C: make([]float64, k)}
	for i := 0; i < k; i++ {
		a.C[i] = float64(i+1) / float64(k)
	}
	// Predictor: interpolate through (c_j, F_j^n), integrate from 1
	// (the step end, where y_n lives) to 1 + c_i.
	a.Beta = make([][]float64, k)
	for i := 0; i < k; i++ {
		a.Beta[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			a.Beta[i][j] = LagrangeIntegral(a.C, j, 1, 1+a.C[i])
		}
	}
	// Corrector: interpolate through (c_j, F_j^n) plus the new point
	// (1 + c_i, F(Y_i^{n+1})).
	a.Mu = make([][]float64, k)
	a.Nu = make([]float64, k)
	for i := 0; i < k; i++ {
		nodes := make([]float64, k+1)
		copy(nodes, a.C)
		nodes[k] = 1 + a.C[i]
		a.Mu[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			a.Mu[i][j] = LagrangeIntegral(nodes, j, 1, 1+a.C[i])
		}
		a.Nu[i] = LagrangeIntegral(nodes, k, 1, 1+a.C[i])
	}
	return a
}
