package ode

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"mtask/internal/graph"
	"mtask/internal/runtime"
)

// ExecState executes a solver M-task graph with deterministic synthetic
// SPMD bodies, for validating the fault-tolerant executor: every task
// reads the stored output vectors of its graph predecessors, computes a
// vector that depends only on those inputs and the task's identity, and
// stores it. The computed trajectory is therefore a pure function of the
// graph — independent of group sizes, schedules, retries and replans —
// so a run under injected failures must reproduce the failure-free
// Reference exactly (bitwise), which is the acceptance check of
// degrade-and-replan.
//
// Bodies are idempotent by construction: re-running a task (a retry, or
// the re-execution of a partially completed layer after a replan)
// recomputes the identical vector from the completed predecessor layers
// and overwrites the stored copy with the same values.
type ExecState struct {
	G *graph.Graph
	N int // vector length

	mu  sync.Mutex
	out map[graph.TaskID][]float64
}

// NewExecState returns an execution state for the graph with vectors of
// length n.
func NewExecState(g *graph.Graph, n int) *ExecState {
	return &ExecState{G: g, N: n, out: make(map[graph.TaskID][]float64)}
}

// input assembles the task's input vector: the elementwise sum of the
// stored predecessor outputs, or the initial vector for source tasks.
// Start/stop markers and predecessors without stored output (never the
// case in a layer-ordered execution) contribute nothing.
func (st *ExecState) input(t *graph.Task) []float64 {
	in := make([]float64, st.N)
	any := false
	st.mu.Lock()
	preds := append([]graph.TaskID(nil), st.G.Pred(t.ID)...)
	sort.Slice(preds, func(i, j int) bool { return preds[i] < preds[j] })
	for _, p := range preds {
		if v, ok := st.out[p]; ok {
			any = true
			for i := range in {
				in[i] += v[i]
			}
		}
	}
	st.mu.Unlock()
	if !any {
		for i := range in {
			in[i] = 1 + 0.001*float64(i%13)
		}
	}
	return in
}

// taskValue is the synthetic per-element computation: bounded (tanh keeps
// the trajectory finite over many steps), dependent on the input value,
// the task identity and the element index, and bitwise deterministic.
func taskValue(base float64, id graph.TaskID, i int) float64 {
	return math.Tanh(0.3*base+0.05*float64(id+1)) + 0.001*float64(i%7)
}

// Body returns the SPMD body of the task: each rank computes its block of
// the output vector, the group assembles the full vector with Allgather,
// an AllreduceMax models the solver's step-control reduction, and rank 0
// stores the result. Start/stop markers get a no-op body.
func (st *ExecState) Body(t *graph.Task) runtime.TaskFunc {
	if t.Kind != graph.KindBasic {
		return func(tc *runtime.TaskCtx) error { return nil }
	}
	return func(tc *runtime.TaskCtx) error {
		in := st.input(t)
		size, rank := tc.Group.Size(), tc.Group.Rank()
		lo, hi := runtime.BlockRange(st.N, size, rank)
		block := make([]float64, hi-lo)
		for i := lo; i < hi; i++ {
			block[i-lo] = taskValue(in[i], t.ID, i)
		}
		full := tc.Group.Allgather(block)
		if len(full) != st.N {
			return fmt.Errorf("ode: task %q assembled %d of %d elements", t.Name, len(full), st.N)
		}
		norm := 0.0
		for _, v := range block {
			if a := math.Abs(v); a > norm {
				norm = a
			}
		}
		tc.Group.AllreduceMax(norm) // step-control reduction (value unused)
		if rank == 0 {
			st.mu.Lock()
			st.out[t.ID] = full
			st.mu.Unlock()
		}
		tc.Group.Barrier()
		return nil
	}
}

// Reference computes the trajectory sequentially (topological order,
// single core) and returns the outputs. It is the failure-free oracle for
// comparing fault-tolerant runs.
func Reference(g *graph.Graph, n int) map[graph.TaskID][]float64 {
	st := NewExecState(g, n)
	order, err := g.TopoOrder()
	if err != nil {
		panic(fmt.Sprintf("ode: reference on invalid graph: %v", err))
	}
	for _, id := range order {
		t := g.Task(id)
		if t.Kind != graph.KindBasic {
			continue
		}
		in := st.input(t)
		full := make([]float64, n)
		for i := 0; i < n; i++ {
			full[i] = taskValue(in[i], t.ID, i)
		}
		st.out[t.ID] = full
	}
	return st.out
}

// Outputs returns the stored output vectors (the live map; callers must
// not mutate it and must not call it while an execution is running).
func (st *ExecState) Outputs() map[graph.TaskID][]float64 { return st.out }

// CompareOutputs verifies that got reproduces want bitwise on every task
// present in want; it returns the first difference found (sorted by task
// id for determinism), or nil.
func CompareOutputs(want, got map[graph.TaskID][]float64) error {
	ids := make([]graph.TaskID, 0, len(want))
	for id := range want {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		w, g := want[id], got[id]
		if g == nil {
			return fmt.Errorf("ode: task %d has no output", id)
		}
		if len(w) != len(g) {
			return fmt.Errorf("ode: task %d output length %d, want %d", id, len(g), len(w))
		}
		for i := range w {
			if w[i] != g[i] {
				return fmt.Errorf("ode: task %d element %d = %v, want %v", id, i, g[i], w[i])
			}
		}
	}
	return nil
}
