package ode

import (
	"context"
	"testing"
	"time"

	"mtask/internal/arch"
	"mtask/internal/core"
	"mtask/internal/cost"
	"mtask/internal/fault"
	"mtask/internal/graph"
	"mtask/internal/runtime"
)

func pabSchedule(t *testing.T, g *graph.Graph, P int) *core.Schedule {
	t.Helper()
	model := &cost.Model{Machine: arch.CHiC().SubsetCores(P)}
	sched, err := (&core.Scheduler{Model: model}).Schedule(g, P)
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

func TestExecStateMatchesReference(t *testing.T) {
	// The parallel execution of the synthetic bodies must reproduce the
	// sequential reference bitwise, for several solver graphs and core
	// counts (group sizes vary, the trajectory must not).
	const n = 64
	graphs := map[string]*graph.Graph{
		"pab":  BuildPABGraph(n, 10, 4, 0, 3),
		"irk":  BuildIRKGraph(n, 10, 4, 2, 2),
		"epol": BuildEPOLGraph(n, 10, 4, 2),
	}
	for name, g := range graphs {
		want := Reference(g, n)
		for _, P := range []int{4, 8} {
			sched := pabSchedule(t, g, P)
			w, _ := runtime.NewWorld(P)
			st := NewExecState(g, n)
			if err := runtime.Execute(w, sched, st.Body); err != nil {
				t.Fatalf("%s on %d cores: %v", name, P, err)
			}
			if err := CompareOutputs(want, st.Outputs()); err != nil {
				t.Fatalf("%s on %d cores: %v", name, P, err)
			}
		}
	}
}

func TestExecStateIdenticalUnderInjectedFaults(t *testing.T) {
	// The acceptance property of the fault-tolerance layer: probabilistic
	// error/panic/delay injection with retries must leave the trajectory
	// byte-identical to the failure-free reference.
	const n = 64
	g := BuildPABGraph(n, 10, 4, 0, 4)
	want := Reference(g, n)
	sched := pabSchedule(t, g, 8)
	w, _ := runtime.NewWorld(8)

	pol := fault.DefaultPolicy()
	pol.MaxRetries = 6
	pol.BaseBackoff = 50 * time.Microsecond
	for seed := int64(1); seed <= 3; seed++ {
		inj := &fault.Injector{Seed: seed, PError: 0.10, PPanic: 0.05, PDelay: 0.05, Delay: 100 * time.Microsecond}
		st := NewExecState(g, n)
		rep, err := runtime.ExecuteCtx(context.Background(), w, sched, st.Body,
			runtime.WithPolicy(pol), runtime.WithInjector(inj))
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, rep)
		}
		if err := CompareOutputs(want, st.Outputs()); err != nil {
			t.Fatalf("seed %d: results diverged: %v\n%s", seed, err, rep)
		}
	}
}

func TestExecStateIdenticalAfterCoreLossReplan(t *testing.T) {
	// Killing one core group mid-run must complete via degrade-and-replan
	// with results identical to the failure-free run — the headline
	// acceptance check of the issue.
	const n = 64
	g := BuildPABGraph(n, 10, 4, 0, 4)
	want := Reference(g, n)
	machine := arch.CHiC().SubsetCores(8)
	model := &cost.Model{Machine: machine}
	sched, err := (&core.Scheduler{Model: model}).Schedule(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := runtime.NewWorld(8)

	// Kill stage[1](0) on its first attempt: a mid-run core loss.
	inj := &fault.Injector{Script: []fault.Script{
		{Task: "stage[1](0)", Attempt: 1, Rank: 0, Kind: fault.CoreLoss},
	}}
	pol := fault.DefaultPolicy()
	pol.BaseBackoff = 50 * time.Microsecond
	pol.DegradeAndReplan = true
	replan := func(ctx context.Context, survivors int) (*core.Schedule, error) {
		return (&core.Scheduler{Model: model}).Schedule(g, survivors)
	}
	st := NewExecState(g, n)
	rep, err := runtime.ExecuteCtx(context.Background(), w, sched, st.Body,
		runtime.WithPolicy(pol), runtime.WithInjector(inj), runtime.WithReplanner(replan))
	if err != nil {
		t.Fatalf("degrade-and-replan failed: %v\n%s", err, rep)
	}
	if rep.Replans != 1 {
		t.Fatalf("replans = %d, want 1\n%s", rep.Replans, rep)
	}
	if err := CompareOutputs(want, st.Outputs()); err != nil {
		t.Fatalf("results diverged after replan: %v\n%s", err, rep)
	}
}

func TestExecStateWavefrontMatchesReference(t *testing.T) {
	// The wavefront dispatcher must reproduce the sequential reference
	// bitwise for the real solver graphs — same oracle as the layered
	// mode, dependence-driven launch order.
	const n = 64
	graphs := map[string]*graph.Graph{
		"pab":  BuildPABGraph(n, 10, 4, 0, 3),
		"irk":  BuildIRKGraph(n, 10, 4, 2, 2),
		"epol": BuildEPOLGraph(n, 10, 4, 2),
	}
	for name, g := range graphs {
		want := Reference(g, n)
		for _, P := range []int{4, 8} {
			sched := pabSchedule(t, g, P)
			w, _ := runtime.NewWorld(P)
			st := NewExecState(g, n)
			rep, err := runtime.ExecuteCtx(context.Background(), w, sched, st.Body, runtime.WithWavefront())
			if err != nil {
				t.Fatalf("%s on %d cores: %v\n%s", name, P, err, rep)
			}
			if rep.Layers != len(sched.Layers) {
				t.Fatalf("%s on %d cores: %d of %d layers done", name, P, rep.Layers, len(sched.Layers))
			}
			if err := CompareOutputs(want, st.Outputs()); err != nil {
				t.Fatalf("%s on %d cores: %v", name, P, err)
			}
		}
	}
}

func TestExecStateWavefrontIdenticalUnderInjectedFaults(t *testing.T) {
	// Injected errors, panics and delays with retries must leave the
	// wavefront trajectory byte-identical to the failure-free reference,
	// as in the layered mode.
	const n = 64
	g := BuildPABGraph(n, 10, 4, 0, 4)
	want := Reference(g, n)
	sched := pabSchedule(t, g, 8)
	w, _ := runtime.NewWorld(8)

	pol := fault.DefaultPolicy()
	pol.MaxRetries = 6
	pol.BaseBackoff = 50 * time.Microsecond
	for seed := int64(1); seed <= 3; seed++ {
		inj := &fault.Injector{Seed: seed, PError: 0.10, PPanic: 0.05, PDelay: 0.05, Delay: 100 * time.Microsecond}
		st := NewExecState(g, n)
		rep, err := runtime.ExecuteCtx(context.Background(), w, sched, st.Body,
			runtime.WithPolicy(pol), runtime.WithInjector(inj), runtime.WithWavefront())
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, rep)
		}
		if err := CompareOutputs(want, st.Outputs()); err != nil {
			t.Fatalf("seed %d: results diverged: %v\n%s", seed, err, rep)
		}
	}
}

func TestExecStateWavefrontIdenticalAfterCoreLossReplan(t *testing.T) {
	// A mid-run core loss under the wavefront dispatcher must drain the
	// in-flight frontier to the completed-layer checkpoint, replan on the
	// survivors and still reproduce the failure-free reference bitwise.
	const n = 64
	g := BuildPABGraph(n, 10, 4, 0, 4)
	want := Reference(g, n)
	machine := arch.CHiC().SubsetCores(8)
	model := &cost.Model{Machine: machine}
	sched, err := (&core.Scheduler{Model: model}).Schedule(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := runtime.NewWorld(8)

	inj := &fault.Injector{Script: []fault.Script{
		{Task: "stage[1](0)", Attempt: 1, Rank: 0, Kind: fault.CoreLoss},
	}}
	pol := fault.DefaultPolicy()
	pol.BaseBackoff = 50 * time.Microsecond
	pol.DegradeAndReplan = true
	replan := func(ctx context.Context, survivors int) (*core.Schedule, error) {
		return (&core.Scheduler{Model: model}).Schedule(g, survivors)
	}
	st := NewExecState(g, n)
	rep, err := runtime.ExecuteCtx(context.Background(), w, sched, st.Body,
		runtime.WithPolicy(pol), runtime.WithInjector(inj), runtime.WithReplanner(replan),
		runtime.WithWavefront())
	if err != nil {
		t.Fatalf("wavefront degrade-and-replan failed: %v\n%s", err, rep)
	}
	if rep.Replans != 1 {
		t.Fatalf("replans = %d, want 1\n%s", rep.Replans, rep)
	}
	if err := CompareOutputs(want, st.Outputs()); err != nil {
		t.Fatalf("results diverged after replan: %v\n%s", err, rep)
	}
}
