package ode

import (
	"fmt"

	"mtask/internal/graph"
)

// M-task graph builders: each builder produces the M-task graph of `steps`
// consecutive time steps of a solver with cost annotations (floating-point
// operations, collective payloads) derived from the system size and the
// right-hand side's evaluation cost, for use with the scheduling/mapping
// algorithms and the cluster simulator. The structures mirror the
// specification programs of Section 2.2.3 after loop unrolling.

// vecBytes is the size of a solution vector in bytes.
func vecBytes(n int) int { return 8 * n }

// microStepWork is the paper's cost of one extrapolation micro step,
// n*(2*top + teval(f)), in operation counts.
func microStepWork(n int, evalFlops float64) float64 {
	return float64(n) * (2 + evalFlops)
}

// stageWork is the work of evaluating one stage argument and derivative
// for a K-stage method: the argument accumulation (2K ops per component)
// plus the function evaluation.
func stageWork(n, k int, evalFlops float64) float64 {
	return float64(n) * (2*float64(k) + evalFlops)
}

// BuildEPOLGraph returns the M-task graph of `steps` time steps of the
// extrapolation method with R approximations on a system of size n (Fig. 4
// of the paper): per step, R independent chains of micro steps feeding a
// combine task; consecutive steps are linked through the combine task.
func BuildEPOLGraph(n int, evalFlops float64, r, steps int) *graph.Graph {
	g := graph.New(fmt.Sprintf("EPOL(R=%d,n=%d)", r, n))
	vb := vecBytes(n)
	var prevCombine graph.TaskID = graph.None
	for s := 0; s < steps; s++ {
		combine := g.AddTask(&graph.Task{
			Name: fmt.Sprintf("combine[%d]", s),
			Kind: graph.KindBasic,
			// Neville extrapolation: R(R-1)/2 component updates
			// with ~3 ops each, plus the error estimate.
			Work:     float64(n) * (3*float64(r*(r-1))/2 + float64(r)),
			OutBytes: vb,
			Meta:     map[string]int{"step": s},
		})
		for i := 1; i <= r; i++ {
			prev := prevCombine
			for j := 1; j <= i; j++ {
				st := g.AddTask(&graph.Task{
					Name:      fmt.Sprintf("step[%d](%d,%d)", s, i, j),
					Kind:      graph.KindBasic,
					Work:      microStepWork(n, evalFlops),
					CommBytes: vb,
					CommCount: 1,
					OutBytes:  vb,
					Meta:      map[string]int{"step": s, "i": i, "j": j},
				})
				if prev != graph.None {
					g.MustEdge(prev, st, vb)
				}
				prev = st
			}
			g.MustEdge(prev, combine, vb)
		}
		prevCombine = combine
	}
	g.AddStartStop()
	return g
}

// BuildIRKGraph returns the M-task graph of `steps` time steps of the
// Iterated Runge-Kutta method with K stages and m fixed-point iterations
// on a system of size n: per step an init task (the initial stage value),
// m layers of K independent stage tasks with all-to-all dependencies
// between consecutive iterations (the orthogonal exchange), and a combine
// task.
func BuildIRKGraph(n int, evalFlops float64, k, m, steps int) *graph.Graph {
	g := graph.New(fmt.Sprintf("IRK(K=%d,m=%d,n=%d)", k, m, n))
	vb := vecBytes(n)
	var prevCombine graph.TaskID = graph.None
	for s := 0; s < steps; s++ {
		init := g.AddTask(&graph.Task{
			Name:      fmt.Sprintf("init[%d]", s),
			Kind:      graph.KindBasic,
			Work:      float64(n) * evalFlops,
			CommBytes: vb,
			CommCount: 1,
			OutBytes:  vb,
		})
		if prevCombine != graph.None {
			g.MustEdge(prevCombine, init, vb)
		}
		prev := make([]graph.TaskID, k)
		for st := 0; st < k; st++ {
			prev[st] = init
		}
		for j := 0; j < m; j++ {
			cur := make([]graph.TaskID, k)
			for st := 0; st < k; st++ {
				cur[st] = g.AddTask(&graph.Task{
					Name:      fmt.Sprintf("stage[%d](%d,%d)", s, j, st),
					Kind:      graph.KindBasic,
					Work:      stageWork(n, k, evalFlops),
					CommBytes: vb,
					CommCount: 1,
					OutBytes:  vb / k,
					Meta:      map[string]int{"step": s, "iter": j, "stage": st},
				})
				for l := 0; l < k; l++ {
					g.MustEdge(prev[l], cur[st], vb/k)
				}
			}
			prev = cur
		}
		combine := g.AddTask(&graph.Task{
			Name:     fmt.Sprintf("combine[%d]", s),
			Kind:     graph.KindBasic,
			Work:     float64(n) * 2 * float64(k),
			OutBytes: vb,
		})
		for l := 0; l < k; l++ {
			g.MustEdge(prev[l], combine, vb/k)
		}
		prevCombine = combine
	}
	g.AddStartStop()
	return g
}

// BuildDIIRKGraph returns the M-task graph of `steps` time steps of the
// DIIRK method with K stages and a fixed iteration count iters on a system
// of size n. Every stage task carries the distributed Newton solve of its
// iteration: n pivot-row broadcasts of n+1 values each and the elimination
// work of a dense n x n system, which makes DIIRK far more
// communication-intensive within M-tasks than IRK (Section 4.5). The
// Jacobian computation (n * n evaluations-worth of work) is a separate
// per-step task.
func BuildDIIRKGraph(n int, evalFlops float64, k, iters, steps int) *graph.Graph {
	g := graph.New(fmt.Sprintf("DIIRK(K=%d,I=%d,n=%d)", k, iters, n))
	vb := vecBytes(n)
	solveWork := 2.0 / 3.0 * float64(n) * float64(n) * float64(n)
	var prevCombine graph.TaskID = graph.None
	for s := 0; s < steps; s++ {
		init := g.AddTask(&graph.Task{
			Name:      fmt.Sprintf("init[%d]", s),
			Kind:      graph.KindBasic,
			Work:      float64(n)*evalFlops + float64(n)*float64(n)*evalFlops, // f0 + Jacobian
			CommBytes: vb,
			CommCount: 1,
			OutBytes:  vb,
		})
		if prevCombine != graph.None {
			g.MustEdge(prevCombine, init, vb)
		}
		prev := make([]graph.TaskID, k)
		for st := 0; st < k; st++ {
			prev[st] = init
		}
		for j := 0; j < iters; j++ {
			cur := make([]graph.TaskID, k)
			for st := 0; st < k; st++ {
				cur[st] = g.AddTask(&graph.Task{
					Name:       fmt.Sprintf("newton[%d](%d,%d)", s, j, st),
					Kind:       graph.KindBasic,
					Work:       stageWork(n, k, evalFlops) + solveWork,
					CommBytes:  vb,
					CommCount:  1,
					BcastBytes: 8 * (n + 1),
					BcastCount: n,
					OutBytes:   vb / k,
					Meta:       map[string]int{"step": s, "iter": j, "stage": st},
				})
				for l := 0; l < k; l++ {
					g.MustEdge(prev[l], cur[st], vb/k)
				}
			}
			prev = cur
		}
		combine := g.AddTask(&graph.Task{
			Name:     fmt.Sprintf("combine[%d]", s),
			Kind:     graph.KindBasic,
			Work:     float64(n) * 2 * float64(k),
			OutBytes: vb,
		})
		for l := 0; l < k; l++ {
			g.MustEdge(prev[l], combine, vb/k)
		}
		prevCombine = combine
	}
	g.AddStartStop()
	return g
}

// BuildPABGraph returns the M-task graph of `steps` time steps of the PAB
// (m = 0) or PABM (m > 0) method with K stages on a system of size n: per
// step K independent stage tasks; each stage of step s+1 depends on all
// stages of step s (the orthogonal exchange of stage derivatives).
func BuildPABGraph(n int, evalFlops float64, k, m, steps int) *graph.Graph {
	name := "PAB"
	if m > 0 {
		name = "PABM"
	}
	g := graph.New(fmt.Sprintf("%s(K=%d,m=%d,n=%d)", name, k, m, n))
	vb := vecBytes(n)
	var prev []graph.TaskID
	for s := 0; s < steps; s++ {
		cur := make([]graph.TaskID, k)
		for st := 0; st < k; st++ {
			cur[st] = g.AddTask(&graph.Task{
				Name:      fmt.Sprintf("stage[%d](%d)", s, st),
				Kind:      graph.KindBasic,
				Work:      float64(1+m) * stageWork(n, k, evalFlops),
				CommBytes: vb,
				CommCount: 1 + m,
				OutBytes:  vb / k,
				Meta:      map[string]int{"step": s, "stage": st},
			})
			for _, p := range prev {
				g.MustEdge(p, cur[st], vb/k)
			}
		}
		prev = cur
	}
	g.AddStartStop()
	return g
}
