package ode

import (
	"testing"

	"mtask/internal/arch"
	"mtask/internal/core"
	"mtask/internal/cost"
	"mtask/internal/graph"
)

func TestBuildEPOLGraphShape(t *testing.T) {
	const r, steps = 4, 2
	g := BuildEPOLGraph(1000, 14, r, steps)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Per step: R(R+1)/2 micro steps + 1 combine; plus start/stop.
	want := steps*(r*(r+1)/2+1) + 2
	if g.Len() != want {
		t.Fatalf("EPOL graph has %d tasks, want %d", g.Len(), want)
	}
	// Chain contraction reduces each step to R chains + combine.
	res := graph.ContractChains(g)
	wantC := steps*(r+1) + 2
	if res.Graph.Len() != wantC {
		t.Fatalf("contracted EPOL graph has %d tasks, want %d", res.Graph.Len(), wantC)
	}
	layers := graph.Layers(res.Graph)
	if len(layers) != 2*steps {
		t.Fatalf("EPOL graph has %d layers, want %d", len(layers), 2*steps)
	}
}

func TestBuildIRKGraphShape(t *testing.T) {
	const k, m, steps = 4, 3, 2
	g := BuildIRKGraph(1000, 14, k, m, steps)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	want := steps*(1+k*m+1) + 2
	if g.Len() != want {
		t.Fatalf("IRK graph has %d tasks, want %d", g.Len(), want)
	}
	layers := graph.Layers(g)
	// Per step: init, m stage layers, combine.
	if len(layers) != steps*(m+2) {
		t.Fatalf("IRK graph has %d layers, want %d", len(layers), steps*(m+2))
	}
	// Stage layers have width K.
	if len(layers[1]) != k {
		t.Fatalf("stage layer width %d, want %d", len(layers[1]), k)
	}
}

func TestBuildDIIRKGraphCommHeavierThanIRK(t *testing.T) {
	const k, steps = 4, 1
	n := 256
	irk := BuildIRKGraph(n, 4*float64(n), k, 3, steps)
	diirk := BuildDIIRKGraph(n, 4*float64(n), k, 3, steps)
	if err := diirk.Validate(); err != nil {
		t.Fatal(err)
	}
	// DIIRK stage tasks carry the pivot broadcasts.
	var irkB, diirkB int
	for _, task := range irk.Tasks() {
		irkB += task.BcastCount
	}
	for _, task := range diirk.Tasks() {
		diirkB += task.BcastCount
	}
	if irkB != 0 || diirkB != k*3*n {
		t.Fatalf("broadcast counts: IRK %d, DIIRK %d (want 0 and %d)", irkB, diirkB, k*3*n)
	}
}

func TestBuildPABGraphShape(t *testing.T) {
	const k, m, steps = 8, 2, 3
	g := BuildPABGraph(1000, 14, k, m, steps)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Len() != steps*k+2 {
		t.Fatalf("PAB graph has %d tasks, want %d", g.Len(), steps*k+2)
	}
	layers := graph.Layers(g)
	if len(layers) != steps {
		t.Fatalf("PAB graph has %d layers, want %d", len(layers), steps)
	}
	for li, layer := range layers {
		if len(layer) != k {
			t.Fatalf("layer %d width %d, want %d", li, len(layer), k)
		}
	}
}

func TestSolverGraphsScheduleMap(t *testing.T) {
	// End-to-end smoke: schedule + map + shape checks for all builders.
	mach := arch.CHiC().Subset(16)
	model := &cost.Model{Machine: mach}
	sched := &core.Scheduler{Model: model}
	for _, g := range []*graph.Graph{
		BuildEPOLGraph(4096, 14, 8, 1),
		BuildIRKGraph(4096, 14, 4, 3, 1),
		BuildDIIRKGraph(256, 14, 4, 2, 1),
		BuildPABGraph(4096, 14, 8, 2, 2),
	} {
		s, err := sched.Schedule(g, 64)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		mp, err := core.Map(s, mach, core.Consecutive{})
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if err := mp.Validate(); err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
	}
}

func TestPABMGraphSchedulesTaskParallel(t *testing.T) {
	// With K=8 communication-heavy stages on 256 cores, the layer-based
	// algorithm must pick a task-parallel schedule (the paper's tp
	// version beats dp, Fig. 13 left).
	mach := arch.CHiC().Subset(64)
	model := &cost.Model{Machine: mach}
	g := BuildPABGraph(20000, 14, 8, 2, 1)
	s, err := (&core.Scheduler{Model: model}).Schedule(g, 256)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Layers[0].NumGroups(); got < 2 {
		t.Fatalf("PABM layer scheduled with %d groups; expected task parallelism", got)
	}
}
