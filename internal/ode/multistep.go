package ode

import "fmt"

// PABIntegrator integrates an ODE system with the Parallel
// Adams-Bashforth method (PAB, Corrector == 0) or the Parallel
// Adams-Bashforth-Moulton method (PABM, Corrector == m > 0). One time step
// computes K stage values at the abscissas t_n + c_i h; the K stages are
// independent of each other within a step (they only read the previous
// step's stage derivatives), which is the coarse-grained task parallelism
// the paper exploits. PABM additionally applies m corrector iterations per
// stage, each using only the stage's own new derivative, so the stages
// remain independent.
type PABIntegrator struct {
	Coeffs    *AdamsCoeffs
	Corrector int // m: corrector iterations (0 = PAB)

	sys System
	t   float64
	h   float64
	yn  []float64   // solution at current time t (stage K-1 of last step)
	f   [][]float64 // stage derivatives F_i of the last step
}

// NewPABIntegrator bootstraps the multistep method at (t0, y0): the K
// initial stage values at t0 + c_i*h are produced by fine RK4 integration,
// after which the integrator sits at time t0 + h.
func NewPABIntegrator(k, corrector int, sys System, t0 float64, y0 []float64, h float64) *PABIntegrator {
	p := &PABIntegrator{
		Coeffs:    NewAdams(k),
		Corrector: corrector,
		sys:       sys,
		h:         h,
	}
	n := sys.Dim()
	const boot = 16 // RK4 substeps per stage interval
	p.f = make([][]float64, k)
	cur := append([]float64(nil), y0...)
	prevC := 0.0
	for i := 0; i < k; i++ {
		ci := p.Coeffs.C[i]
		dt := (ci - prevC) * h
		cur = RK4(sys, t0+prevC*h, cur, dt/boot, boot)
		prevC = ci
		fi := make([]float64, n)
		sys.Eval(t0+ci*h, cur, 0, n, fi)
		p.f[i] = fi
		if i == k-1 {
			p.yn = append([]float64(nil), cur...)
		}
	}
	p.t = t0 + h
	return p
}

// T returns the current time.
func (p *PABIntegrator) T() float64 { return p.t }

// Y returns the current solution (do not modify).
func (p *PABIntegrator) Y() []float64 { return p.yn }

// Step advances the integrator by one step of size h and returns an error
// estimate (the corrector-predictor difference for PABM, the difference of
// the last two stages' predictions for PAB).
func (p *PABIntegrator) Step() float64 {
	k := p.Coeffs.K
	n := p.sys.Dim()
	newY := make([][]float64, k)
	newF := make([][]float64, k)
	var errEst float64

	for i := 0; i < k; i++ {
		// Predictor (Adams-Bashforth over the old stage derivatives).
		yi := make([]float64, n)
		for c := 0; c < n; c++ {
			sum := 0.0
			for j := 0; j < k; j++ {
				sum += p.Coeffs.Beta[i][j] * p.f[j][c]
			}
			yi[c] = p.yn[c] + p.h*sum
		}
		ti := p.t + p.Coeffs.C[i]*p.h
		fi := make([]float64, n)
		p.sys.Eval(ti, yi, 0, n, fi)

		// Corrector iterations (Adams-Moulton including the stage's
		// own derivative).
		var pred []float64
		if p.Corrector > 0 {
			pred = append([]float64(nil), yi...)
			for it := 0; it < p.Corrector; it++ {
				for c := 0; c < n; c++ {
					sum := p.Coeffs.Nu[i] * fi[c]
					for j := 0; j < k; j++ {
						sum += p.Coeffs.Mu[i][j] * p.f[j][c]
					}
					yi[c] = p.yn[c] + p.h*sum
				}
				p.sys.Eval(ti, yi, 0, n, fi)
			}
			if d := MaxAbsDiff(yi, pred); d > errEst {
				errEst = d
			}
		}
		newY[i] = yi
		newF[i] = fi
	}
	p.yn = newY[k-1] // c_{K-1} = 1: the last stage carries the solution
	p.f = newF
	p.t += p.h
	return errEst
}

// Integrate advances the integrator by the given number of steps.
func (p *PABIntegrator) Integrate(steps int) {
	for s := 0; s < steps; s++ {
		p.Step()
	}
}

// MethodName returns "PAB(K=..)" or "PABM(K=..,m=..)".
func (p *PABIntegrator) MethodName() string {
	if p.Corrector > 0 {
		return fmt.Sprintf("PABM(K=%d,m=%d)", p.Coeffs.K, p.Corrector)
	}
	return fmt.Sprintf("PAB(K=%d)", p.Coeffs.K)
}
