package ode

import (
	"fmt"
	"sort"

	"mtask/internal/runtime"
)

// RunOpts configures a parallel solver run.
type RunOpts struct {
	// Groups is the number of disjoint core groups of the task-parallel
	// program version; 0 or 1 selects the data-parallel version.
	Groups int
	// Steps is the number of time steps.
	Steps int
	// H is the (fixed) step size.
	H float64
	// Control enables the step-control collectives (error reduction and,
	// in the task-parallel versions, the broadcast of the step decision)
	// without changing the actual step size, so that trajectories remain
	// comparable to the fixed-step sequential reference while the
	// communication pattern matches the adaptive solver of the paper.
	Control bool
}

func (o RunOpts) validate(p int) error {
	if o.Steps < 1 {
		return fmt.Errorf("ode: need at least one step")
	}
	if o.H <= 0 {
		return fmt.Errorf("ode: non-positive step size")
	}
	if o.Groups > 1 && p%o.Groups != 0 {
		return fmt.Errorf("ode: %d cores not divisible into %d groups", p, o.Groups)
	}
	return nil
}

// runErr collects the first per-rank error of a world run.
type runErr struct {
	errs []error
}

func newRunErr(p int) *runErr { return &runErr{errs: make([]error, p)} }

func (r *runErr) first() error {
	for _, e := range r.errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// AssignChains distributes the R approximation chains of the extrapolation
// method over g groups with the greedy LPT rule used by the scheduling
// algorithm (chains in decreasing length order, each to the least loaded
// group). For g = R/2 this pairs chains i and R-i+1, giving every group
// R+1 micro steps (Section 4.2). The result lists, per group, the chain
// lengths in ascending order.
func AssignChains(r, g int) [][]int {
	loads := make([]int, g)
	out := make([][]int, g)
	for i := r; i >= 1; i-- {
		best := 0
		for j := 1; j < g; j++ {
			if loads[j] < loads[best] {
				best = j
			}
		}
		loads[best] += i
		out[best] = append(out[best], i)
	}
	for _, chains := range out {
		sort.Ints(chains)
	}
	return out
}

// stepControl performs the step-control communication: the error estimate
// is reduced over all cores; in the task-parallel version the root
// additionally broadcasts the step decision (the paper's 1*Tbc of the
// EPOL(tp) row of Table 1). decision is a caller-owned length-2 scratch
// buffer so the per-step broadcast allocates nothing.
func stepControl(global *runtime.Comm, taskParallel bool, errEst float64, decision []float64) {
	_ = global.AllreduceMax(errEst)
	if taskParallel {
		if global.Rank() == 0 {
			decision[0] = errEst
			decision[1] = 1
		}
		global.BcastInto(0, decision)
	}
}

// gatherFullFromGroupZero assembles a full vector that is block-distributed
// within every group (all groups hold identical copies of the blocks) by a
// single global allgather to which only the cores of group zero contribute
// their blocks; all cores receive the full vector. This realises the
// single global multi-broadcast per time step of the task-parallel IRK and
// DIIRK versions (Table 1).
func gatherFullFromGroupZero(global *runtime.Comm, groupIdx int, block []float64) []float64 {
	return gatherFullFromGroupZeroInto(global, groupIdx, block, nil)
}

// gatherFullFromGroupZeroInto is gatherFullFromGroupZero writing into dst
// (grown only when its capacity is insufficient). dst may alias block:
// contributions are staged before the barrier.
func gatherFullFromGroupZeroInto(global *runtime.Comm, groupIdx int, block, dst []float64) []float64 {
	var contrib []float64
	if groupIdx == 0 {
		contrib = block
	}
	return global.AllgatherInto(contrib, dst)
}

// --- EPOL ---

// ParallelEPOL runs the extrapolation method with R approximations on the
// world: the data-parallel version (opts.Groups <= 1) computes the chains
// one after another on all cores with one global multi-broadcast per micro
// step; the task-parallel version distributes the chains over the groups
// (LPT pairing), uses group-internal multi-broadcasts, re-distributes the
// approximations between the groups (counted separately, as the paper's
// compiler-inserted re-distributions are), and broadcasts the step
// decision. It returns the final solution vector.
func ParallelEPOL(w *runtime.World, sys System, r int, opts RunOpts) ([]float64, error) {
	if err := opts.validate(w.P); err != nil {
		return nil, err
	}
	if r < 1 {
		return nil, fmt.Errorf("ode: EPOL needs R >= 1")
	}
	n := sys.Dim()
	if opts.Groups > 1 && n%(w.P/opts.Groups) != 0 {
		// Keep block layouts aligned across groups.
		return nil, fmt.Errorf("ode: system size %d not divisible by group size %d", n, w.P/opts.Groups)
	}
	taskParallel := opts.Groups > 1
	var result []float64
	re := newRunErr(w.P)
	w.Run(func(global *runtime.Comm) {
		var out []float64
		if taskParallel {
			out = epolTP(global, sys, r, opts, re)
		} else {
			out = epolDP(global, sys, r, opts)
		}
		if global.Rank() == 0 {
			result = out
		}
	})
	if err := re.first(); err != nil {
		return nil, err
	}
	return result, nil
}

// chainScratch holds the reusable gather/evaluation buffers of the
// extrapolation chains, so the per-micro-step allgather and derivative
// evaluation allocate nothing in steady state.
type chainScratch struct {
	full []float64 // assembled full iterate
	out  []float64 // local derivative block
}

// epolChainInto runs one approximation chain (i micro steps of size h/i)
// with the block distribution of comm: every micro step assembles the full
// iterate with one allgather over comm and evaluates f on the local block.
// The chain starts from the caller's block of y (copied into dst, which
// must have length hi-lo) and leaves the final block in dst.
func epolChainInto(comm *runtime.Comm, sys System, t, h float64, yBlock []float64, lo, hi, i int, dst []float64, sc *chainScratch) {
	copy(dst, yBlock)
	micro := h / float64(i)
	if len(sc.out) != hi-lo {
		sc.out = make([]float64, hi-lo)
	}
	for j := 0; j < i; j++ {
		sc.full = comm.AllgatherInto(dst, sc.full)
		sys.Eval(t+float64(j)*micro, sc.full, lo, hi, sc.out)
		for c := range dst {
			dst[c] += micro * sc.out[c]
		}
	}
}

// neville extrapolates the R chain results (blocks) in place and returns
// the final block and the error estimate block difference.
func neville(tab [][]float64, r int) (final []float64, errEst float64) {
	for k := 1; k < r; k++ {
		for i := r - 1; i >= k; i-- {
			den := float64(i+1)/float64(i+1-k) - 1
			for c := range tab[i] {
				tab[i][c] += (tab[i][c] - tab[i-1][c]) / den
			}
		}
	}
	if r > 1 {
		errEst = MaxAbsDiff(tab[r-1], tab[r-2])
	}
	return tab[r-1], errEst
}

func epolDP(global *runtime.Comm, sys System, r int, opts RunOpts) []float64 {
	n := sys.Dim()
	rank, size := global.Rank(), global.Size()
	lo, hi := runtime.BlockRange(n, size, rank)
	bsz := hi - lo
	t0, y0 := sys.Initial()
	blk := append([]float64(nil), y0[lo:hi]...)
	t := t0
	// Persistent chain-result rows and gather scratch: the per-step loop
	// allocates nothing. blk is its own buffer (never an alias of a tab
	// row), so reusing the rows next step cannot corrupt the iterate.
	tab := make([][]float64, r)
	for i := range tab {
		tab[i] = make([]float64, bsz)
	}
	var sc chainScratch
	for s := 0; s < opts.Steps; s++ {
		for i := 1; i <= r; i++ {
			epolChainInto(global, sys, t, opts.H, blk, lo, hi, i, tab[i-1], &sc)
		}
		res, errEst := neville(tab, r)
		copy(blk, res)
		if opts.Control {
			_ = global.AllreduceMax(errEst)
		}
		t += opts.H
	}
	return global.Allgather(blk)
}

func epolTP(global *runtime.Comm, sys System, r int, opts RunOpts, re *runErr) []float64 {
	n := sys.Dim()
	g := opts.Groups
	q := global.Size() / g
	rank := global.Rank()
	gi := rank / q
	group := global.Split(gi, rank, runtime.Group)
	pos := group.Rank()
	ortho := global.Split(pos, rank, runtime.Orthogonal)
	lo, hi := runtime.BlockRange(n, q, pos)
	bsz := hi - lo

	assign := AssignChains(r, g)
	myChains := assign[gi]

	t0, y0 := sys.Initial()
	blk := append([]float64(nil), y0[lo:hi]...)
	t := t0
	// Persistent buffers: chains write straight into contrib's segments,
	// the orthogonal exchange reuses all, and the extrapolation table
	// aliases all's segments (neville mutates them in place, as before).
	// blk is its own buffer, copied from the step result.
	contrib := make([]float64, len(myChains)*bsz)
	var all []float64
	tab := make([][]float64, r)
	var sc chainScratch
	decision := make([]float64, 2)
	for s := 0; s < opts.Steps; s++ {
		// Compute the group's chains with group-internal collectives.
		for ci, i := range myChains {
			epolChainInto(group, sys, t, opts.H, blk, lo, hi, i, contrib[ci*bsz:(ci+1)*bsz], &sc)
		}
		// Re-distribute: the orthogonal set at this block position
		// exchanges all chains' blocks (compiler-inserted
		// re-distribution, counted as such and not as a collective of
		// Table 1).
		all = ortho.AllgatherAsInto(contrib, all, runtime.OpRedist)
		off := 0
		for og := 0; og < g; og++ {
			for _, i := range assign[og] {
				tab[i-1] = all[off : off+bsz]
				off += bsz
			}
		}
		res, errEst := neville(tab, r)
		copy(blk, res)
		if opts.Control {
			stepControl(global, true, errEst, decision)
		}
		t += opts.H
	}
	if q*g != global.Size() {
		re.errs[rank] = fmt.Errorf("ode: internal group sizing error")
	}
	return gatherFullFromGroupZero(global, gi, blk)
}

// makeRows allocates k rows of n float64s.
func makeRows(k, n int) [][]float64 {
	rows := make([][]float64, k)
	for i := range rows {
		rows[i] = make([]float64, n)
	}
	return rows
}

// --- IRK ---

// ParallelIRK runs the Iterated Runge-Kutta method with K stages and m
// fixed-point iterations. The data-parallel version keeps all stage
// vectors replicated with K global multi-broadcasts per iteration plus one
// for the initial stage value ((K*m+1) global Tag, Table 1). The
// task-parallel version computes each stage on its own group: per
// iteration one group-internal multi-broadcast assembles the stage's
// argument vector and one orthogonal multi-broadcast exchanges the new
// stage blocks between the groups (m group Tag + m orthogonal Tag), and a
// single global multi-broadcast per step replicates the new approximation
// (1 global Tag).
func ParallelIRK(w *runtime.World, sys System, k, m int, opts RunOpts) ([]float64, error) {
	if err := opts.validate(w.P); err != nil {
		return nil, err
	}
	if opts.Groups > 1 && opts.Groups != k {
		return nil, fmt.Errorf("ode: IRK task-parallel version needs one group per stage (K=%d, groups=%d)", k, opts.Groups)
	}
	rk := NewGaussRK(k)
	var result []float64
	w.Run(func(global *runtime.Comm) {
		var out []float64
		if opts.Groups > 1 {
			out = irkTP(global, sys, rk, m, opts)
		} else {
			out = irkDP(global, sys, rk, m, opts)
		}
		if global.Rank() == 0 {
			result = out
		}
	})
	return result, nil
}

func irkDP(global *runtime.Comm, sys System, rk *CollocationRK, m int, opts RunOpts) []float64 {
	n := sys.Dim()
	k := rk.K
	rank, size := global.Rank(), global.Size()
	lo, hi := runtime.BlockRange(n, size, rank)
	t0, y := sys.Initial()
	y = append([]float64(nil), y...)
	t := t0
	blkOut := make([]float64, hi-lo)
	arg := make([]float64, n)
	// Persistent stage banks: v and next alternate between the two banks,
	// prev snapshots the last-but-one iterate, f0 holds the gathered
	// initial stage value. The step loop allocates nothing.
	var f0 []float64
	bankA := makeRows(k, n)
	bankB := makeRows(k, n)
	prevBank := makeRows(k, n)
	for s := 0; s < opts.Steps; s++ {
		// Initial stage value: one global multi-broadcast.
		sys.Eval(t, y, lo, hi, blkOut)
		f0 = global.AllgatherInto(blkOut, f0)
		v := bankA
		for st := 0; st < k; st++ {
			copy(v[st], f0)
		}
		next := bankB
		var prev [][]float64
		for j := 0; j < m; j++ {
			if j == m-1 {
				for st := 0; st < k; st++ {
					copy(prevBank[st], v[st])
				}
				prev = prevBank
			}
			for st := 0; st < k; st++ {
				for c := 0; c < n; c++ {
					sum := 0.0
					for l := 0; l < k; l++ {
						sum += rk.A[st][l] * v[l][c]
					}
					arg[c] = y[c] + opts.H*sum
				}
				sys.Eval(t+rk.C[st]*opts.H, arg, lo, hi, blkOut)
				next[st] = global.AllgatherInto(blkOut, next[st])
			}
			v, next = next, v
		}
		var errEst float64
		for c := 0; c < n; c++ {
			sum := 0.0
			for l := 0; l < k; l++ {
				sum += rk.B[l] * v[l][c]
			}
			y[c] += opts.H * sum
			if opts.Control && prev != nil {
				d := 0.0
				for l := 0; l < k; l++ {
					d += rk.B[l] * (v[l][c] - prev[l][c])
				}
				if d < 0 {
					d = -d
				}
				if opts.H*d > errEst {
					errEst = opts.H * d
				}
			}
		}
		if opts.Control {
			_ = global.AllreduceMax(errEst)
		}
		t += opts.H
	}
	return y
}

func irkTP(global *runtime.Comm, sys System, rk *CollocationRK, m int, opts RunOpts) []float64 {
	n := sys.Dim()
	k := rk.K
	q := global.Size() / k
	rank := global.Rank()
	gi := rank / q
	group := global.Split(gi, rank, runtime.Group)
	pos := group.Rank()
	ortho := global.Split(pos, rank, runtime.Orthogonal)
	lo, hi := runtime.BlockRange(n, q, pos)
	bsz := hi - lo

	t0, y := sys.Initial()
	y = append([]float64(nil), y...)
	t := t0
	blkOut := make([]float64, bsz)
	argBlk := make([]float64, bsz)
	// Persistent stage rows and collective buffers: the step loop
	// allocates nothing. vAll rows are copies (not aliases of the
	// exchange buffer), so reusing exch next iteration is safe.
	vAll := makeRows(k, bsz) // stage l's derivative at [lo,hi)
	prevBank := makeRows(k, bsz)
	var argFull, exch []float64
	newBlk := make([]float64, bsz)
	for s := 0; s < opts.Steps; s++ {
		// v0 blocks, identical for all stages, computed locally from
		// the replicated y.
		sys.Eval(t, y, lo, hi, blkOut)
		for l := 0; l < k; l++ {
			copy(vAll[l], blkOut)
		}
		var prevAll [][]float64
		for j := 0; j < m; j++ {
			if j == m-1 {
				for l := 0; l < k; l++ {
					copy(prevBank[l], vAll[l])
				}
				prevAll = prevBank
			}
			// Assemble this group's stage argument with one
			// group-internal multi-broadcast.
			for c := 0; c < bsz; c++ {
				sum := 0.0
				for l := 0; l < k; l++ {
					sum += rk.A[gi][l] * vAll[l][c]
				}
				argBlk[c] = y[lo+c] + opts.H*sum
			}
			argFull = group.AllgatherInto(argBlk, argFull)
			sys.Eval(t+rk.C[gi]*opts.H, argFull, lo, hi, blkOut)
			// Exchange the new stage blocks orthogonally.
			exch = ortho.AllgatherInto(blkOut, exch)
			for l := 0; l < k; l++ {
				copy(vAll[l], exch[l*bsz:(l+1)*bsz])
			}
		}
		// New approximation block and error estimate.
		var errEst float64
		for c := 0; c < bsz; c++ {
			sum := 0.0
			for l := 0; l < k; l++ {
				sum += rk.B[l] * vAll[l][c]
			}
			newBlk[c] = y[lo+c] + opts.H*sum
			if opts.Control && prevAll != nil {
				d := 0.0
				for l := 0; l < k; l++ {
					d += rk.B[l] * (vAll[l][c] - prevAll[l][c])
				}
				if d < 0 {
					d = -d
				}
				if opts.H*d > errEst {
					errEst = opts.H * d
				}
			}
		}
		if opts.Control {
			_ = global.AllreduceMax(errEst)
		}
		// Replicate the new approximation with the single global
		// multi-broadcast of the step. Gathering in place into y is
		// safe: contributions are staged before the barrier.
		y = gatherFullFromGroupZeroInto(global, gi, newBlk, y)
		t += opts.H
	}
	return y
}
