package ode

import (
	"fmt"
	"sort"

	"mtask/internal/runtime"
)

// RunOpts configures a parallel solver run.
type RunOpts struct {
	// Groups is the number of disjoint core groups of the task-parallel
	// program version; 0 or 1 selects the data-parallel version.
	Groups int
	// Steps is the number of time steps.
	Steps int
	// H is the (fixed) step size.
	H float64
	// Control enables the step-control collectives (error reduction and,
	// in the task-parallel versions, the broadcast of the step decision)
	// without changing the actual step size, so that trajectories remain
	// comparable to the fixed-step sequential reference while the
	// communication pattern matches the adaptive solver of the paper.
	Control bool
}

func (o RunOpts) validate(p int) error {
	if o.Steps < 1 {
		return fmt.Errorf("ode: need at least one step")
	}
	if o.H <= 0 {
		return fmt.Errorf("ode: non-positive step size")
	}
	if o.Groups > 1 && p%o.Groups != 0 {
		return fmt.Errorf("ode: %d cores not divisible into %d groups", p, o.Groups)
	}
	return nil
}

// runErr collects the first per-rank error of a world run.
type runErr struct {
	errs []error
}

func newRunErr(p int) *runErr { return &runErr{errs: make([]error, p)} }

func (r *runErr) first() error {
	for _, e := range r.errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// AssignChains distributes the R approximation chains of the extrapolation
// method over g groups with the greedy LPT rule used by the scheduling
// algorithm (chains in decreasing length order, each to the least loaded
// group). For g = R/2 this pairs chains i and R-i+1, giving every group
// R+1 micro steps (Section 4.2). The result lists, per group, the chain
// lengths in ascending order.
func AssignChains(r, g int) [][]int {
	loads := make([]int, g)
	out := make([][]int, g)
	for i := r; i >= 1; i-- {
		best := 0
		for j := 1; j < g; j++ {
			if loads[j] < loads[best] {
				best = j
			}
		}
		loads[best] += i
		out[best] = append(out[best], i)
	}
	for _, chains := range out {
		sort.Ints(chains)
	}
	return out
}

// stepControl performs the step-control communication: the error estimate
// is reduced over all cores; in the task-parallel version the root
// additionally broadcasts the step decision (the paper's 1*Tbc of the
// EPOL(tp) row of Table 1).
func stepControl(global *runtime.Comm, taskParallel bool, errEst float64) {
	_ = global.AllreduceMax(errEst)
	if taskParallel {
		var decision []float64
		if global.Rank() == 0 {
			decision = []float64{errEst, 1}
		}
		global.Bcast(0, decision)
	}
}

// gatherFullFromGroupZero assembles a full vector that is block-distributed
// within every group (all groups hold identical copies of the blocks) by a
// single global allgather to which only the cores of group zero contribute
// their blocks; all cores receive the full vector. This realises the
// single global multi-broadcast per time step of the task-parallel IRK and
// DIIRK versions (Table 1).
func gatherFullFromGroupZero(global *runtime.Comm, groupIdx int, block []float64) []float64 {
	var contrib []float64
	if groupIdx == 0 {
		contrib = block
	}
	return global.Allgather(contrib)
}

// --- EPOL ---

// ParallelEPOL runs the extrapolation method with R approximations on the
// world: the data-parallel version (opts.Groups <= 1) computes the chains
// one after another on all cores with one global multi-broadcast per micro
// step; the task-parallel version distributes the chains over the groups
// (LPT pairing), uses group-internal multi-broadcasts, re-distributes the
// approximations between the groups (counted separately, as the paper's
// compiler-inserted re-distributions are), and broadcasts the step
// decision. It returns the final solution vector.
func ParallelEPOL(w *runtime.World, sys System, r int, opts RunOpts) ([]float64, error) {
	if err := opts.validate(w.P); err != nil {
		return nil, err
	}
	if r < 1 {
		return nil, fmt.Errorf("ode: EPOL needs R >= 1")
	}
	n := sys.Dim()
	if opts.Groups > 1 && n%(w.P/opts.Groups) != 0 {
		// Keep block layouts aligned across groups.
		return nil, fmt.Errorf("ode: system size %d not divisible by group size %d", n, w.P/opts.Groups)
	}
	taskParallel := opts.Groups > 1
	var result []float64
	re := newRunErr(w.P)
	w.Run(func(global *runtime.Comm) {
		var out []float64
		if taskParallel {
			out = epolTP(global, sys, r, opts, re)
		} else {
			out = epolDP(global, sys, r, opts)
		}
		if global.Rank() == 0 {
			result = out
		}
	})
	if err := re.first(); err != nil {
		return nil, err
	}
	return result, nil
}

// epolChainDistributed runs one approximation chain (i micro steps of size
// h/i) with the block distribution of comm: every micro step assembles the
// full iterate with one allgather over comm and evaluates f on the local
// block. The chain starts from the caller's block of y and returns the
// final block.
func epolChainDistributed(comm *runtime.Comm, sys System, t, h float64, yBlock []float64, lo, hi, i int) []float64 {
	blk := append([]float64(nil), yBlock...)
	micro := h / float64(i)
	out := make([]float64, hi-lo)
	for j := 0; j < i; j++ {
		full := comm.Allgather(blk)
		sys.Eval(t+float64(j)*micro, full, lo, hi, out)
		for c := range blk {
			blk[c] += micro * out[c]
		}
	}
	return blk
}

// neville extrapolates the R chain results (blocks) in place and returns
// the final block and the error estimate block difference.
func neville(tab [][]float64, r int) (final []float64, errEst float64) {
	for k := 1; k < r; k++ {
		for i := r - 1; i >= k; i-- {
			den := float64(i+1)/float64(i+1-k) - 1
			for c := range tab[i] {
				tab[i][c] += (tab[i][c] - tab[i-1][c]) / den
			}
		}
	}
	if r > 1 {
		errEst = MaxAbsDiff(tab[r-1], tab[r-2])
	}
	return tab[r-1], errEst
}

func epolDP(global *runtime.Comm, sys System, r int, opts RunOpts) []float64 {
	n := sys.Dim()
	rank, size := global.Rank(), global.Size()
	lo, hi := runtime.BlockRange(n, size, rank)
	t0, y0 := sys.Initial()
	blk := append([]float64(nil), y0[lo:hi]...)
	t := t0
	for s := 0; s < opts.Steps; s++ {
		tab := make([][]float64, r)
		for i := 1; i <= r; i++ {
			tab[i-1] = epolChainDistributed(global, sys, t, opts.H, blk, lo, hi, i)
		}
		var errEst float64
		blk, errEst = neville(tab, r)
		if opts.Control {
			_ = global.AllreduceMax(errEst)
		}
		t += opts.H
	}
	return global.Allgather(blk)
}

func epolTP(global *runtime.Comm, sys System, r int, opts RunOpts, re *runErr) []float64 {
	n := sys.Dim()
	g := opts.Groups
	q := global.Size() / g
	rank := global.Rank()
	gi := rank / q
	group := global.Split(gi, rank, runtime.Group)
	pos := group.Rank()
	ortho := global.Split(pos, rank, runtime.Orthogonal)
	lo, hi := runtime.BlockRange(n, q, pos)
	bsz := hi - lo

	assign := AssignChains(r, g)
	myChains := assign[gi]

	t0, y0 := sys.Initial()
	blk := append([]float64(nil), y0[lo:hi]...)
	t := t0
	for s := 0; s < opts.Steps; s++ {
		// Compute the group's chains with group-internal collectives.
		results := make(map[int][]float64, len(myChains))
		for _, i := range myChains {
			results[i] = epolChainDistributed(group, sys, t, opts.H, blk, lo, hi, i)
		}
		// Re-distribute: the orthogonal set at this block position
		// exchanges all chains' blocks (compiler-inserted
		// re-distribution, counted as such and not as a collective of
		// Table 1).
		contrib := make([]float64, 0, len(myChains)*bsz)
		for _, i := range myChains {
			contrib = append(contrib, results[i]...)
		}
		all := ortho.AllgatherAs(contrib, runtime.OpRedist)
		tab := make([][]float64, r)
		off := 0
		for og := 0; og < g; og++ {
			for _, i := range assign[og] {
				tab[i-1] = all[off : off+bsz]
				off += bsz
			}
		}
		var errEst float64
		blk, errEst = neville(tab, r)
		if opts.Control {
			stepControl(global, true, errEst)
		}
		t += opts.H
	}
	if q*g != global.Size() {
		re.errs[rank] = fmt.Errorf("ode: internal group sizing error")
	}
	return gatherFullFromGroupZero(global, gi, blk)
}

// --- IRK ---

// ParallelIRK runs the Iterated Runge-Kutta method with K stages and m
// fixed-point iterations. The data-parallel version keeps all stage
// vectors replicated with K global multi-broadcasts per iteration plus one
// for the initial stage value ((K*m+1) global Tag, Table 1). The
// task-parallel version computes each stage on its own group: per
// iteration one group-internal multi-broadcast assembles the stage's
// argument vector and one orthogonal multi-broadcast exchanges the new
// stage blocks between the groups (m group Tag + m orthogonal Tag), and a
// single global multi-broadcast per step replicates the new approximation
// (1 global Tag).
func ParallelIRK(w *runtime.World, sys System, k, m int, opts RunOpts) ([]float64, error) {
	if err := opts.validate(w.P); err != nil {
		return nil, err
	}
	if opts.Groups > 1 && opts.Groups != k {
		return nil, fmt.Errorf("ode: IRK task-parallel version needs one group per stage (K=%d, groups=%d)", k, opts.Groups)
	}
	rk := NewGaussRK(k)
	var result []float64
	w.Run(func(global *runtime.Comm) {
		var out []float64
		if opts.Groups > 1 {
			out = irkTP(global, sys, rk, m, opts)
		} else {
			out = irkDP(global, sys, rk, m, opts)
		}
		if global.Rank() == 0 {
			result = out
		}
	})
	return result, nil
}

func irkDP(global *runtime.Comm, sys System, rk *CollocationRK, m int, opts RunOpts) []float64 {
	n := sys.Dim()
	k := rk.K
	rank, size := global.Rank(), global.Size()
	lo, hi := runtime.BlockRange(n, size, rank)
	t0, y := sys.Initial()
	y = append([]float64(nil), y...)
	t := t0
	blkOut := make([]float64, hi-lo)
	arg := make([]float64, n)
	for s := 0; s < opts.Steps; s++ {
		// Initial stage value: one global multi-broadcast.
		sys.Eval(t, y, lo, hi, blkOut)
		f0 := global.Allgather(blkOut)
		v := make([][]float64, k)
		for st := 0; st < k; st++ {
			v[st] = f0
		}
		var prev [][]float64
		for j := 0; j < m; j++ {
			if j == m-1 {
				prev = v
			}
			next := make([][]float64, k)
			for st := 0; st < k; st++ {
				for c := 0; c < n; c++ {
					sum := 0.0
					for l := 0; l < k; l++ {
						sum += rk.A[st][l] * v[l][c]
					}
					arg[c] = y[c] + opts.H*sum
				}
				sys.Eval(t+rk.C[st]*opts.H, arg, lo, hi, blkOut)
				next[st] = global.Allgather(blkOut)
			}
			v = next
		}
		var errEst float64
		for c := 0; c < n; c++ {
			sum := 0.0
			for l := 0; l < k; l++ {
				sum += rk.B[l] * v[l][c]
			}
			y[c] += opts.H * sum
			if opts.Control && prev != nil {
				d := 0.0
				for l := 0; l < k; l++ {
					d += rk.B[l] * (v[l][c] - prev[l][c])
				}
				if d < 0 {
					d = -d
				}
				if opts.H*d > errEst {
					errEst = opts.H * d
				}
			}
		}
		if opts.Control {
			_ = global.AllreduceMax(errEst)
		}
		t += opts.H
	}
	return y
}

func irkTP(global *runtime.Comm, sys System, rk *CollocationRK, m int, opts RunOpts) []float64 {
	n := sys.Dim()
	k := rk.K
	q := global.Size() / k
	rank := global.Rank()
	gi := rank / q
	group := global.Split(gi, rank, runtime.Group)
	pos := group.Rank()
	ortho := global.Split(pos, rank, runtime.Orthogonal)
	lo, hi := runtime.BlockRange(n, q, pos)
	bsz := hi - lo

	t0, y := sys.Initial()
	y = append([]float64(nil), y...)
	t := t0
	blkOut := make([]float64, bsz)
	argBlk := make([]float64, bsz)
	for s := 0; s < opts.Steps; s++ {
		// v0 blocks, identical for all stages, computed locally from
		// the replicated y.
		sys.Eval(t, y, lo, hi, blkOut)
		vAll := make([][]float64, k) // stage l's derivative at [lo,hi)
		for l := 0; l < k; l++ {
			vAll[l] = append([]float64(nil), blkOut...)
		}
		var prevAll [][]float64
		for j := 0; j < m; j++ {
			if j == m-1 {
				prevAll = vAll
			}
			// Assemble this group's stage argument with one
			// group-internal multi-broadcast.
			for c := 0; c < bsz; c++ {
				sum := 0.0
				for l := 0; l < k; l++ {
					sum += rk.A[gi][l] * vAll[l][c]
				}
				argBlk[c] = y[lo+c] + opts.H*sum
			}
			argFull := group.Allgather(argBlk)
			sys.Eval(t+rk.C[gi]*opts.H, argFull, lo, hi, blkOut)
			// Exchange the new stage blocks orthogonally.
			exch := ortho.Allgather(blkOut)
			next := make([][]float64, k)
			for l := 0; l < k; l++ {
				next[l] = exch[l*bsz : (l+1)*bsz]
			}
			vAll = next
		}
		// New approximation block and error estimate.
		newBlk := make([]float64, bsz)
		var errEst float64
		for c := 0; c < bsz; c++ {
			sum := 0.0
			for l := 0; l < k; l++ {
				sum += rk.B[l] * vAll[l][c]
			}
			newBlk[c] = y[lo+c] + opts.H*sum
			if opts.Control && prevAll != nil {
				d := 0.0
				for l := 0; l < k; l++ {
					d += rk.B[l] * (vAll[l][c] - prevAll[l][c])
				}
				if d < 0 {
					d = -d
				}
				if opts.H*d > errEst {
					errEst = opts.H * d
				}
			}
		}
		if opts.Control {
			_ = global.AllreduceMax(errEst)
		}
		// Replicate the new approximation with the single global
		// multi-broadcast of the step.
		y = gatherFullFromGroupZero(global, gi, newBlk)
		t += opts.H
	}
	return y
}
