package ode

import (
	"fmt"
	"math"

	"mtask/internal/runtime"
)

// ParallelEPOLAdaptive integrates from t0 to te with real step-size
// control, mirroring IntegrateAdaptive exactly: a step is accepted when
// its extrapolation error estimate is at most tol, and the step size
// follows the standard controller. In the data-parallel version the error
// is agreed by a global reduction; in the task-parallel version the root
// core makes the step decision and broadcasts it (the 1*Tbc of Table 1's
// EPOL(tp) row — here carrying a real payload: acceptance flag and the
// next step size). It returns the final approximation and the number of
// accepted steps.
func ParallelEPOLAdaptive(w *runtime.World, sys System, r, groups int, te, h0, tol float64) ([]float64, int, error) {
	if r < 1 {
		return nil, 0, fmt.Errorf("ode: EPOL needs R >= 1")
	}
	if groups < 1 {
		groups = 1
	}
	if groups > 1 && w.P%groups != 0 {
		return nil, 0, fmt.Errorf("ode: %d cores not divisible into %d groups", w.P, groups)
	}
	n := sys.Dim()
	if groups > 1 && n%(w.P/groups) != 0 {
		return nil, 0, fmt.Errorf("ode: system size %d not divisible by group size %d", n, w.P/groups)
	}
	taskParallel := groups > 1
	var result []float64
	var steps int
	w.Run(func(global *runtime.Comm) {
		y, s := epolAdaptive(global, sys, r, groups, taskParallel, te, h0, tol)
		if global.Rank() == 0 {
			result = y
			steps = s
		}
	})
	return result, steps, nil
}

// stepOrder is the controller exponent 1/(order+1) of the extrapolation
// method with R approximations (order R).
func epolController(order int, errEst, tol float64) float64 {
	fac := 2.0
	if errEst > 0 {
		fac = 0.9 * math.Pow(tol/errEst, 1/float64(order+1))
	}
	if fac > 4 {
		fac = 4
	}
	if fac < 0.25 {
		fac = 0.25
	}
	return fac
}

func epolAdaptive(global *runtime.Comm, sys System, r, groups int, taskParallel bool, te, h0, tol float64) ([]float64, int) {
	n := sys.Dim()
	var comm *runtime.Comm
	var ortho *runtime.Comm
	var myChains []int
	var assign [][]int
	var lo, hi, gi int
	if taskParallel {
		q := global.Size() / groups
		gi = global.Rank() / q
		comm = global.Split(gi, global.Rank(), runtime.Group)
		ortho = global.Split(comm.Rank(), global.Rank(), runtime.Orthogonal)
		assign = AssignChains(r, groups)
		myChains = assign[gi]
		lo, hi = runtime.BlockRange(n, q, comm.Rank())
	} else {
		comm = global
		lo, hi = runtime.BlockRange(n, global.Size(), global.Rank())
	}
	bsz := hi - lo

	t0, y0 := sys.Initial()
	blk := append([]float64(nil), y0[lo:hi]...)
	t, h := t0, h0
	steps := 0
	// Persistent step buffers. blk is a dedicated vector: the step result
	// (which aliases a chain row or the exchange buffer) is copied into
	// it only on acceptance, so a rejected step — whose chain rows are
	// overwritten by the retry — can never corrupt the current iterate.
	tab := make([][]float64, r)
	var contrib, all []float64
	var sc chainScratch
	decision := make([]float64, 2)
	if taskParallel {
		contrib = make([]float64, len(myChains)*bsz)
	} else {
		for i := range tab {
			tab[i] = make([]float64, bsz)
		}
	}
	for t < te-1e-14 {
		if t+h > te {
			h = te - t
		}
		// Compute the chains of this step from the current block.
		if taskParallel {
			for ci, i := range myChains {
				epolChainInto(comm, sys, t, h, blk, lo, hi, i, contrib[ci*bsz:(ci+1)*bsz], &sc)
			}
			all = ortho.AllgatherAsInto(contrib, all, runtime.OpRedist)
			off := 0
			for og := 0; og < groups; og++ {
				for _, i := range assign[og] {
					tab[i-1] = all[off : off+bsz]
					off += bsz
				}
			}
		} else {
			for i := 1; i <= r; i++ {
				epolChainInto(comm, sys, t, h, blk, lo, hi, i, tab[i-1], &sc)
			}
		}
		newBlk, errLocal := neville(tab, r)

		// Agree on the step decision.
		errEst := global.AllreduceMax(errLocal)
		var accepted bool
		var hNew float64
		if taskParallel {
			// The root decides and broadcasts (Table 1's 1*Tbc).
			if global.Rank() == 0 {
				acc := 0.0
				if errEst <= tol || h <= 1e-12 {
					acc = 1
				}
				decision[0] = acc
				decision[1] = h * epolController(r, errEst, tol)
			}
			global.BcastInto(0, decision)
			accepted = decision[0] > 0
			hNew = decision[1]
		} else {
			// Deterministic local decision (all cores hold errEst).
			accepted = errEst <= tol || h <= 1e-12
			hNew = h * epolController(r, errEst, tol)
		}
		if accepted {
			copy(blk, newBlk)
			t += h
			steps++
		}
		h = hNew
	}
	if taskParallel {
		return gatherFullFromGroupZero(global, gi, blk), steps
	}
	return global.Allgather(blk), steps
}
