package ode

import (
	"fmt"
	"math"

	"mtask/internal/runtime"
)

// ParallelDIIRK runs the Diagonal-Implicitly Iterated Runge-Kutta method
// with K stages. Each fixed-point iteration performs one Newton step per
// stage whose linear system (I - h*a_kk*J) delta = g is solved by a
// row-distributed Gauss-Jordan elimination: one pivot-row broadcast per
// column, which is the source of the method's (n-1)*I broadcast operations
// per stage in Table 1 (our Gauss-Jordan variant uses n broadcasts; the
// accounting difference is recorded in EXPERIMENTS.md). The data-parallel
// version distributes the rows globally (K*n*I global Tbc); the
// task-parallel version computes each stage on its own group (n*I group
// Tbc) and exchanges the stage updates orthogonally (I orthogonal Tag).
// The iteration count I is determined dynamically by a convergence
// criterion, 1 <= I <= MaxIter.
func ParallelDIIRK(w *runtime.World, sys System, k int, opts RunOpts) ([]float64, error) {
	if err := opts.validate(w.P); err != nil {
		return nil, err
	}
	if opts.Groups > 1 && opts.Groups != k {
		return nil, fmt.Errorf("ode: DIIRK task-parallel version needs one group per stage (K=%d, groups=%d)", k, opts.Groups)
	}
	d := NewDIIRK(k)
	var result []float64
	w.Run(func(global *runtime.Comm) {
		var out []float64
		if opts.Groups > 1 {
			out = diirkTP(global, sys, d, opts)
		} else {
			out = diirkDP(global, sys, d, opts)
		}
		if global.Rank() == 0 {
			result = out
		}
	})
	return result, nil
}

// diirkScratch bundles the persistent per-goroutine buffers of one DIIRK
// solver instance, so the per-step and per-iteration loops allocate
// nothing: the Jacobian rows and their finite-difference scratch, the
// Newton matrix rows (destroyed by every solve and refilled), the
// right-hand side, the pivot-row broadcast buffer and the solution block.
type diirkScratch struct {
	jrows [][]float64 // Jacobian rows [lo,hi)
	jf0   []float64   // f(t, y) block
	jyp   []float64   // perturbed y
	jcol  []float64   // perturbed derivative block
	mrows [][]float64 // Newton matrix rows, refilled per solve
	g     []float64   // right-hand side, destroyed per solve
	pivot []float64   // broadcast pivot row + rhs entry (n+1)
	x     []float64   // solution block
}

func newDIIRKScratch(n, lo, hi int) *diirkScratch {
	return &diirkScratch{
		jrows: makeRows(hi-lo, n),
		jf0:   make([]float64, hi-lo),
		jyp:   make([]float64, n),
		jcol:  make([]float64, hi-lo),
		mrows: makeRows(hi-lo, n),
		g:     make([]float64, hi-lo),
		pivot: make([]float64, n+1),
		x:     make([]float64, hi-lo),
	}
}

// jacobianRowsInto computes rows [lo,hi) of the Jacobian of f at (t, y) by
// forward differences into sc.jrows; y must be the full (replicated)
// vector.
func jacobianRowsInto(sys System, t float64, y []float64, lo, hi int, sc *diirkScratch) {
	n := len(y)
	sys.Eval(t, y, lo, hi, sc.jf0)
	copy(sc.jyp, y)
	for j := 0; j < n; j++ {
		eps := 1e-7 * (math.Abs(y[j]) + 1)
		sc.jyp[j] = y[j] + eps
		sys.Eval(t, sc.jyp, lo, hi, sc.jcol)
		sc.jyp[j] = y[j]
		for i := 0; i < hi-lo; i++ {
			sc.jrows[i][j] = (sc.jcol[i] - sc.jf0[i]) / eps
		}
	}
}

// newtonMatrixRowsInto rebuilds rows [lo,hi) of I - h*akk*J from the
// Jacobian rows into sc.mrows (the previous solve destroyed them).
func newtonMatrixRowsInto(sc *diirkScratch, h, akk float64, lo int) {
	for i, jr := range sc.jrows {
		row := sc.mrows[i]
		for j, v := range jr {
			row[j] = -h * akk * v
		}
		row[lo+i] += 1
	}
}

// distSolveInto solves the row-distributed linear system by Gauss-Jordan
// elimination over the communicator: the rows [lo,hi) (sc.mrows) and the
// matching right-hand-side entries (sc.g) belong to this member; for every
// column the owning member broadcasts its pivot row (BcastInto over
// sc.pivot — allocation-free), all members eliminate the column from their
// other rows, and the solution entries of the local rows land in sc.x.
// Matrix rows and rhs are destroyed. rowOwner maps a global row index to
// the owning communicator rank.
func distSolveInto(comm *runtime.Comm, sc *diirkScratch, lo int, rowOwner []int) []float64 {
	a, rhs := sc.mrows, sc.g
	n := len(rowOwner)
	for col := 0; col < n; col++ {
		owner := rowOwner[col]
		pivot := sc.pivot
		if comm.Rank() == owner {
			copy(pivot[:n], a[col-lo])
			pivot[n] = rhs[col-lo]
		}
		comm.BcastInto(owner, pivot)
		pd := pivot[col]
		for i := range a {
			if lo+i == col {
				continue
			}
			m := a[i][col] / pd
			if m == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a[i][j] -= m * pivot[j]
			}
			rhs[i] -= m * pivot[n]
		}
	}
	for i := range sc.x {
		sc.x[i] = rhs[i] / a[i][lo+i]
	}
	return sc.x
}

// makeRowOwner maps global row indices to the rank owning them under the
// block distribution of size over n rows.
func makeRowOwner(n, size int) []int {
	owner := make([]int, n)
	for r := 0; r < size; r++ {
		lo, hi := runtime.BlockRange(n, size, r)
		for i := lo; i < hi; i++ {
			owner[i] = r
		}
	}
	return owner
}

func diirkDP(global *runtime.Comm, sys System, d *DIIRK, opts RunOpts) []float64 {
	rk := d.RK
	n := sys.Dim()
	k := rk.K
	rank, size := global.Rank(), global.Size()
	lo, hi := runtime.BlockRange(n, size, rank)
	rowOwner := makeRowOwner(n, size)
	t0, y := sys.Initial()
	y = append([]float64(nil), y...)
	t := t0
	blkOut := make([]float64, hi-lo)
	arg := make([]float64, n)
	// Persistent solver state: stage rows, gathered buffers and the
	// Newton scratch. The step loop allocates nothing.
	var f0, xf []float64
	v := makeRows(k, n)
	sc := newDIIRKScratch(n, lo, hi)
	for s := 0; s < opts.Steps; s++ {
		sys.Eval(t, y, lo, hi, blkOut)
		f0 = global.AllgatherInto(blkOut, f0) // the 1 global Tag of Table 1
		for st := 0; st < k; st++ {
			copy(v[st], f0)
		}
		jacobianRowsInto(sys, t, y, lo, hi, sc)
		for iter := 0; iter < d.MaxIter; iter++ {
			var delta float64
			for st := 0; st < k; st++ {
				for c := 0; c < n; c++ {
					sum := 0.0
					for l := 0; l < k; l++ {
						sum += rk.A[st][l] * v[l][c]
					}
					arg[c] = y[c] + opts.H*sum
				}
				sys.Eval(t+rk.C[st]*opts.H, arg, lo, hi, blkOut)
				for c := range sc.g {
					sc.g[c] = blkOut[c] - v[st][lo+c]
				}
				newtonMatrixRowsInto(sc, opts.H, rk.A[st][st], lo)
				x := distSolveInto(global, sc, lo, rowOwner)
				// Replicate the stage update (accounted in
				// EXPERIMENTS.md as an implementation extra).
				xf = global.AllgatherInto(x, xf)
				for c := 0; c < n; c++ {
					v[st][c] += xf[c]
					if ad := math.Abs(xf[c]); ad > delta {
						delta = ad
					}
				}
			}
			delta = global.AllreduceMax(delta)
			if delta < d.Tol {
				break
			}
		}
		for c := 0; c < n; c++ {
			sum := 0.0
			for l := 0; l < k; l++ {
				sum += rk.B[l] * v[l][c]
			}
			y[c] += opts.H * sum
		}
		t += opts.H
	}
	return y
}

func diirkTP(global *runtime.Comm, sys System, d *DIIRK, opts RunOpts) []float64 {
	rk := d.RK
	n := sys.Dim()
	k := rk.K
	q := global.Size() / k
	rank := global.Rank()
	gi := rank / q
	group := global.Split(gi, rank, runtime.Group)
	pos := group.Rank()
	ortho := global.Split(pos, rank, runtime.Orthogonal)
	lo, hi := runtime.BlockRange(n, q, pos)
	bsz := hi - lo
	rowOwner := makeRowOwner(n, q)

	t0, y := sys.Initial()
	y = append([]float64(nil), y...)
	t := t0
	blkOut := make([]float64, bsz)
	argBlk := make([]float64, bsz)
	// Persistent solver state: stage rows are copies (never aliases of
	// the exchange buffer), so reusing exch next iteration is safe. The
	// step loop allocates nothing.
	vAll := makeRows(k, bsz)
	var argFull, exch []float64
	newBlk := make([]float64, bsz)
	sc := newDIIRKScratch(n, lo, hi)
	for s := 0; s < opts.Steps; s++ {
		sys.Eval(t, y, lo, hi, blkOut)
		for l := 0; l < k; l++ {
			copy(vAll[l], blkOut)
		}
		jacobianRowsInto(sys, t, y, lo, hi, sc)
		for iter := 0; iter < d.MaxIter; iter++ {
			// Assemble this group's stage argument (group Tag).
			for c := 0; c < bsz; c++ {
				sum := 0.0
				for l := 0; l < k; l++ {
					sum += rk.A[gi][l] * vAll[l][c]
				}
				argBlk[c] = y[lo+c] + opts.H*sum
			}
			argFull = group.AllgatherInto(argBlk, argFull)
			sys.Eval(t+rk.C[gi]*opts.H, argFull, lo, hi, blkOut)
			for c := range sc.g {
				sc.g[c] = blkOut[c] - vAll[gi][c]
			}
			newtonMatrixRowsInto(sc, opts.H, rk.A[gi][gi], lo)
			x := distSolveInto(group, sc, lo, rowOwner)
			var delta float64
			for c := 0; c < bsz; c++ {
				newBlk[c] = vAll[gi][c] + x[c]
				if ad := math.Abs(x[c]); ad > delta {
					delta = ad
				}
			}
			// Exchange stage blocks orthogonally (ortho Tag).
			exch = ortho.AllgatherInto(newBlk, exch)
			for l := 0; l < k; l++ {
				copy(vAll[l], exch[l*bsz:(l+1)*bsz])
			}
			delta = global.AllreduceMax(delta)
			if delta < d.Tol {
				break
			}
		}
		for c := 0; c < bsz; c++ {
			sum := 0.0
			for l := 0; l < k; l++ {
				sum += rk.B[l] * vAll[l][c]
			}
			newBlk[c] = y[lo+c] + opts.H*sum
		}
		// Single global Tag: replicate the new approximation (in place
		// into y — contributions are staged before the barrier).
		y = gatherFullFromGroupZeroInto(global, gi, newBlk, y)
		t += opts.H
	}
	return y
}
