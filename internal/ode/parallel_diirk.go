package ode

import (
	"fmt"
	"math"

	"mtask/internal/runtime"
)

// ParallelDIIRK runs the Diagonal-Implicitly Iterated Runge-Kutta method
// with K stages. Each fixed-point iteration performs one Newton step per
// stage whose linear system (I - h*a_kk*J) delta = g is solved by a
// row-distributed Gauss-Jordan elimination: one pivot-row broadcast per
// column, which is the source of the method's (n-1)*I broadcast operations
// per stage in Table 1 (our Gauss-Jordan variant uses n broadcasts; the
// accounting difference is recorded in EXPERIMENTS.md). The data-parallel
// version distributes the rows globally (K*n*I global Tbc); the
// task-parallel version computes each stage on its own group (n*I group
// Tbc) and exchanges the stage updates orthogonally (I orthogonal Tag).
// The iteration count I is determined dynamically by a convergence
// criterion, 1 <= I <= MaxIter.
func ParallelDIIRK(w *runtime.World, sys System, k int, opts RunOpts) ([]float64, error) {
	if err := opts.validate(w.P); err != nil {
		return nil, err
	}
	if opts.Groups > 1 && opts.Groups != k {
		return nil, fmt.Errorf("ode: DIIRK task-parallel version needs one group per stage (K=%d, groups=%d)", k, opts.Groups)
	}
	d := NewDIIRK(k)
	var result []float64
	w.Run(func(global *runtime.Comm) {
		var out []float64
		if opts.Groups > 1 {
			out = diirkTP(global, sys, d, opts)
		} else {
			out = diirkDP(global, sys, d, opts)
		}
		if global.Rank() == 0 {
			result = out
		}
	})
	return result, nil
}

// jacobianRows computes rows [lo,hi) of the Jacobian of f at (t, y) by
// forward differences; y must be the full (replicated) vector.
func jacobianRows(sys System, t float64, y []float64, lo, hi int) [][]float64 {
	n := len(y)
	rows := make([][]float64, hi-lo)
	for i := range rows {
		rows[i] = make([]float64, n)
	}
	f0 := make([]float64, hi-lo)
	sys.Eval(t, y, lo, hi, f0)
	yp := append([]float64(nil), y...)
	col := make([]float64, hi-lo)
	for j := 0; j < n; j++ {
		eps := 1e-7 * (math.Abs(y[j]) + 1)
		yp[j] = y[j] + eps
		sys.Eval(t, yp, lo, hi, col)
		yp[j] = y[j]
		for i := 0; i < hi-lo; i++ {
			rows[i][j] = (col[i] - f0[i]) / eps
		}
	}
	return rows
}

// newtonMatrixRows builds rows [lo,hi) of I - h*akk*J from the Jacobian
// rows.
func newtonMatrixRows(jrows [][]float64, h, akk float64, lo int) [][]float64 {
	out := make([][]float64, len(jrows))
	for i, jr := range jrows {
		row := make([]float64, len(jr))
		for j, v := range jr {
			row[j] = -h * akk * v
		}
		row[lo+i] += 1
		out[i] = row
	}
	return out
}

// distSolve solves the row-distributed linear system by Gauss-Jordan
// elimination over the communicator: the rows [lo,hi) and the matching
// right-hand-side entries belong to this member; for every column the
// owning member broadcasts its pivot row, all members eliminate the column
// from their other rows, and the solution entries of the local rows remain
// local. Matrix rows and rhs are destroyed. rowOwner maps a global row
// index to the owning communicator rank.
func distSolve(comm *runtime.Comm, a [][]float64, rhs []float64, lo int, rowOwner []int) []float64 {
	n := len(rowOwner)
	for col := 0; col < n; col++ {
		owner := rowOwner[col]
		var pivot []float64
		if comm.Rank() == owner {
			pr := a[col-lo]
			pivot = make([]float64, 0, n+1)
			pivot = append(pivot, pr...)
			pivot = append(pivot, rhs[col-lo])
		}
		pivot = comm.Bcast(owner, pivot)
		pd := pivot[col]
		for i := range a {
			if lo+i == col {
				continue
			}
			m := a[i][col] / pd
			if m == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a[i][j] -= m * pivot[j]
			}
			rhs[i] -= m * pivot[n]
		}
	}
	x := make([]float64, len(rhs))
	for i := range x {
		x[i] = rhs[i] / a[i][lo+i]
	}
	return x
}

// makeRowOwner maps global row indices to the rank owning them under the
// block distribution of size over n rows.
func makeRowOwner(n, size int) []int {
	owner := make([]int, n)
	for r := 0; r < size; r++ {
		lo, hi := runtime.BlockRange(n, size, r)
		for i := lo; i < hi; i++ {
			owner[i] = r
		}
	}
	return owner
}

func diirkDP(global *runtime.Comm, sys System, d *DIIRK, opts RunOpts) []float64 {
	rk := d.RK
	n := sys.Dim()
	k := rk.K
	rank, size := global.Rank(), global.Size()
	lo, hi := runtime.BlockRange(n, size, rank)
	rowOwner := makeRowOwner(n, size)
	t0, y := sys.Initial()
	y = append([]float64(nil), y...)
	t := t0
	blkOut := make([]float64, hi-lo)
	arg := make([]float64, n)
	for s := 0; s < opts.Steps; s++ {
		sys.Eval(t, y, lo, hi, blkOut)
		f0 := global.Allgather(blkOut) // the 1 global Tag of Table 1
		v := make([][]float64, k)
		for st := 0; st < k; st++ {
			v[st] = append([]float64(nil), f0...)
		}
		jrows := jacobianRows(sys, t, y, lo, hi)
		for iter := 0; iter < d.MaxIter; iter++ {
			var delta float64
			for st := 0; st < k; st++ {
				for c := 0; c < n; c++ {
					sum := 0.0
					for l := 0; l < k; l++ {
						sum += rk.A[st][l] * v[l][c]
					}
					arg[c] = y[c] + opts.H*sum
				}
				sys.Eval(t+rk.C[st]*opts.H, arg, lo, hi, blkOut)
				g := make([]float64, hi-lo)
				for c := range g {
					g[c] = blkOut[c] - v[st][lo+c]
				}
				m := newtonMatrixRows(jrows, opts.H, rk.A[st][st], lo)
				x := distSolve(global, m, g, lo, rowOwner)
				// Replicate the stage update (accounted in
				// EXPERIMENTS.md as an implementation extra).
				xf := global.Allgather(x)
				for c := 0; c < n; c++ {
					v[st][c] += xf[c]
					if ad := math.Abs(xf[c]); ad > delta {
						delta = ad
					}
				}
			}
			delta = global.AllreduceMax(delta)
			if delta < d.Tol {
				break
			}
		}
		for c := 0; c < n; c++ {
			sum := 0.0
			for l := 0; l < k; l++ {
				sum += rk.B[l] * v[l][c]
			}
			y[c] += opts.H * sum
		}
		t += opts.H
	}
	return y
}

func diirkTP(global *runtime.Comm, sys System, d *DIIRK, opts RunOpts) []float64 {
	rk := d.RK
	n := sys.Dim()
	k := rk.K
	q := global.Size() / k
	rank := global.Rank()
	gi := rank / q
	group := global.Split(gi, rank, runtime.Group)
	pos := group.Rank()
	ortho := global.Split(pos, rank, runtime.Orthogonal)
	lo, hi := runtime.BlockRange(n, q, pos)
	bsz := hi - lo
	rowOwner := makeRowOwner(n, q)

	t0, y := sys.Initial()
	y = append([]float64(nil), y...)
	t := t0
	blkOut := make([]float64, bsz)
	argBlk := make([]float64, bsz)
	for s := 0; s < opts.Steps; s++ {
		sys.Eval(t, y, lo, hi, blkOut)
		vAll := make([][]float64, k)
		for l := 0; l < k; l++ {
			vAll[l] = append([]float64(nil), blkOut...)
		}
		jrows := jacobianRows(sys, t, y, lo, hi)
		for iter := 0; iter < d.MaxIter; iter++ {
			// Assemble this group's stage argument (group Tag).
			for c := 0; c < bsz; c++ {
				sum := 0.0
				for l := 0; l < k; l++ {
					sum += rk.A[gi][l] * vAll[l][c]
				}
				argBlk[c] = y[lo+c] + opts.H*sum
			}
			argFull := group.Allgather(argBlk)
			sys.Eval(t+rk.C[gi]*opts.H, argFull, lo, hi, blkOut)
			g := make([]float64, bsz)
			for c := range g {
				g[c] = blkOut[c] - vAll[gi][c]
			}
			m := newtonMatrixRows(jrows, opts.H, rk.A[gi][gi], lo)
			x := distSolve(group, m, g, lo, rowOwner)
			var delta float64
			newBlk := make([]float64, bsz)
			for c := 0; c < bsz; c++ {
				newBlk[c] = vAll[gi][c] + x[c]
				if ad := math.Abs(x[c]); ad > delta {
					delta = ad
				}
			}
			// Exchange stage blocks orthogonally (ortho Tag).
			exch := ortho.Allgather(newBlk)
			for l := 0; l < k; l++ {
				vAll[l] = exch[l*bsz : (l+1)*bsz]
			}
			delta = global.AllreduceMax(delta)
			if delta < d.Tol {
				break
			}
		}
		newBlk := make([]float64, bsz)
		for c := 0; c < bsz; c++ {
			sum := 0.0
			for l := 0; l < k; l++ {
				sum += rk.B[l] * vAll[l][c]
			}
			newBlk[c] = y[lo+c] + opts.H*sum
		}
		// Single global Tag: replicate the new approximation.
		y = gatherFullFromGroupZero(global, gi, newBlk)
		t += opts.H
	}
	return y
}
