package ode

import (
	"fmt"

	"mtask/internal/runtime"
)

// ParallelPAB runs the Parallel Adams-Bashforth method (corrector == 0) or
// the Parallel Adams-Bashforth-Moulton method (corrector == m > 0) with K
// stages. The data-parallel version keeps the stage derivatives replicated
// with one global multi-broadcast per stage evaluation (K global Tag for
// PAB, K*(1+m) for PABM, Table 1). The task-parallel version computes each
// stage on its own group: per evaluation one group-internal
// multi-broadcast assembles the stage value, and one orthogonal
// multi-broadcast per step exchanges the new stage derivatives (and the
// step-closing stage value) between the groups (1 group Tag + 1 orthogonal
// Tag for PAB, (1+m) group Tag + 1 orthogonal Tag for PABM).
func ParallelPAB(w *runtime.World, sys System, k, corrector int, opts RunOpts) ([]float64, error) {
	if err := opts.validate(w.P); err != nil {
		return nil, err
	}
	if opts.Groups > 1 && opts.Groups != k {
		return nil, fmt.Errorf("ode: PAB/PABM task-parallel version needs one group per stage (K=%d, groups=%d)", k, opts.Groups)
	}
	a := NewAdams(k)
	var result []float64
	w.Run(func(global *runtime.Comm) {
		var out []float64
		if opts.Groups > 1 {
			out = pabTP(global, sys, a, corrector, opts)
		} else {
			out = pabDP(global, sys, a, corrector, opts)
		}
		if global.Rank() == 0 {
			result = out
		}
	})
	return result, nil
}

// pabBootstrap produces the initial stage values and derivatives at
// t0 + c_i*h by fine RK4 integration, executed redundantly on every core
// (the bootstrap phase is not part of the per-step communication counts).
func pabBootstrap(sys System, a *AdamsCoeffs, t0 float64, y0 []float64, h float64) (yn []float64, f [][]float64) {
	n := sys.Dim()
	const boot = 16
	f = make([][]float64, a.K)
	cur := append([]float64(nil), y0...)
	prevC := 0.0
	for i := 0; i < a.K; i++ {
		ci := a.C[i]
		dt := (ci - prevC) * h
		cur = RK4(sys, t0+prevC*h, cur, dt/boot, boot)
		prevC = ci
		fi := make([]float64, n)
		sys.Eval(t0+ci*h, cur, 0, n, fi)
		f[i] = fi
		if i == a.K-1 {
			yn = append([]float64(nil), cur...)
		}
	}
	return yn, f
}

func pabDP(global *runtime.Comm, sys System, a *AdamsCoeffs, corrector int, opts RunOpts) []float64 {
	n := sys.Dim()
	k := a.K
	rank, size := global.Rank(), global.Size()
	lo, hi := runtime.BlockRange(n, size, rank)
	t0, y0 := sys.Initial()
	yn, f := pabBootstrap(sys, a, t0, y0, opts.H)
	t := t0 + opts.H
	blkOut := make([]float64, hi-lo)
	// Persistent stage buffers: yi and yNext are dedicated vectors, newF
	// is a second derivative bank that swaps with f after each step, so
	// the per-step loop allocates nothing.
	yi := make([]float64, n)
	yNext := make([]float64, n)
	newF := makeRows(k, n)
	for s := 0; s < opts.Steps; s++ {
		for i := 0; i < k; i++ {
			// Predictor: stage value from the replicated history,
			// computed fully locally; the evaluation is
			// distributed and replicated by one global Tag.
			for c := 0; c < n; c++ {
				sum := 0.0
				for j := 0; j < k; j++ {
					sum += a.Beta[i][j] * f[j][c]
				}
				yi[c] = yn[c] + opts.H*sum
			}
			ti := t + a.C[i]*opts.H
			sys.Eval(ti, yi, lo, hi, blkOut)
			newF[i] = global.AllgatherInto(blkOut, newF[i])
			fi := newF[i]
			// Corrector iterations (PABM).
			for it := 0; it < corrector; it++ {
				for c := 0; c < n; c++ {
					sum := a.Nu[i] * fi[c]
					for j := 0; j < k; j++ {
						sum += a.Mu[i][j] * f[j][c]
					}
					yi[c] = yn[c] + opts.H*sum
				}
				sys.Eval(ti, yi, lo, hi, blkOut)
				fi = global.AllgatherInto(blkOut, fi)
			}
			newF[i] = fi
			if i == k-1 {
				copy(yNext, yi)
			}
		}
		yn, yNext = yNext, yn
		f, newF = newF, f
		t += opts.H
	}
	return yn
}

func pabTP(global *runtime.Comm, sys System, a *AdamsCoeffs, corrector int, opts RunOpts) []float64 {
	n := sys.Dim()
	k := a.K
	q := global.Size() / k
	rank := global.Rank()
	gi := rank / q
	group := global.Split(gi, rank, runtime.Group)
	pos := group.Rank()
	ortho := global.Split(pos, rank, runtime.Orthogonal)
	lo, hi := runtime.BlockRange(n, q, pos)
	bsz := hi - lo

	t0, y0 := sys.Initial()
	ynFull, fFull := pabBootstrap(sys, a, t0, y0, opts.H)
	// Keep only this core's group block of the history.
	ynB := append([]float64(nil), ynFull[lo:hi]...)
	fB := make([][]float64, k)
	for l := 0; l < k; l++ {
		fB[l] = append([]float64(nil), fFull[l][lo:hi]...)
	}
	t := t0 + opts.H
	blkOut := make([]float64, bsz)
	// Persistent per-step buffers so the step loop allocates nothing.
	yiB := make([]float64, bsz)
	fiB := make([]float64, bsz)
	lastContrib := make([]float64, 2*bsz)
	var yiFull, exch []float64
	for s := 0; s < opts.Steps; s++ {
		// This group's stage (stage index == group index).
		for c := 0; c < bsz; c++ {
			sum := 0.0
			for j := 0; j < k; j++ {
				sum += a.Beta[gi][j] * fB[j][c]
			}
			yiB[c] = ynB[c] + opts.H*sum
		}
		ti := t + a.C[gi]*opts.H
		// Assemble the stage value (group Tag), evaluate the block.
		yiFull = group.AllgatherInto(yiB, yiFull)
		sys.Eval(ti, yiFull, lo, hi, blkOut)
		copy(fiB, blkOut)
		// Corrector iterations: one group Tag each.
		for it := 0; it < corrector; it++ {
			for c := 0; c < bsz; c++ {
				sum := a.Nu[gi] * fiB[c]
				for j := 0; j < k; j++ {
					sum += a.Mu[gi][j] * fB[j][c]
				}
				yiB[c] = ynB[c] + opts.H*sum
			}
			yiFull = group.AllgatherInto(yiB, yiFull)
			sys.Eval(ti, yiFull, lo, hi, blkOut)
			copy(fiB, blkOut)
		}
		// Orthogonal exchange: every group contributes its stage
		// derivative block; the last group additionally contributes
		// the new step-closing stage value block.
		contrib := fiB
		if gi == k-1 {
			copy(lastContrib[:bsz], fiB)
			copy(lastContrib[bsz:], yiB)
			contrib = lastContrib
		}
		exch = ortho.AllgatherInto(contrib, exch)
		for l := 0; l < k; l++ {
			copy(fB[l], exch[l*bsz:(l+1)*bsz])
		}
		copy(ynB, exch[k*bsz:(k+1)*bsz])
		t += opts.H
	}
	// Final assembly of the solution vector (outside the per-step
	// counts).
	return gatherFullFromGroupZero(global, gi, ynB)
}
