package ode

import (
	"testing"

	"mtask/internal/runtime"
)

// world returns a fresh world of p cores.
func world(t *testing.T, p int) *runtime.World {
	t.Helper()
	w, err := runtime.NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestAssignChains(t *testing.T) {
	// g = R/2 pairs chains i and R-i+1 (Section 4.2).
	assign := AssignChains(4, 2)
	if len(assign[0]) != 2 || len(assign[1]) != 2 {
		t.Fatalf("assignment %v", assign)
	}
	sum := func(xs []int) int {
		s := 0
		for _, x := range xs {
			s += x
		}
		return s
	}
	if sum(assign[0]) != 5 || sum(assign[1]) != 5 {
		t.Fatalf("unbalanced pairing %v", assign)
	}
	// All chains assigned exactly once.
	seen := map[int]bool{}
	for _, chains := range AssignChains(8, 3) {
		for _, c := range chains {
			if seen[c] {
				t.Fatalf("chain %d assigned twice", c)
			}
			seen[c] = true
		}
	}
	if len(seen) != 8 {
		t.Fatalf("only %d chains assigned", len(seen))
	}
}

func TestParallelEPOLMatchesSequential(t *testing.T) {
	sys := NewLinearDecay(16)
	t0, y0 := sys.Initial()
	const r, steps = 4, 5
	h := 0.05
	want := IntegrateFixed(NewEPOL(r), sys, t0, y0, h, steps)

	for _, tc := range []struct {
		name   string
		groups int
	}{{"dp", 1}, {"tp", 2}} {
		w := world(t, 8)
		got, err := ParallelEPOL(w, sys, r, RunOpts{Groups: tc.groups, Steps: steps, H: h, Control: true})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if d := MaxAbsDiff(got, want); d > 1e-12 {
			t.Errorf("EPOL %s deviates from sequential by %g", tc.name, d)
		}
	}
}

func TestParallelEPOLOnBruss2D(t *testing.T) {
	sys := NewBruss2D(4) // n = 32
	t0, y0 := sys.Initial()
	const r, steps = 4, 3
	h := 0.01
	want := IntegrateFixed(NewEPOL(r), sys, t0, y0, h, steps)
	w := world(t, 8)
	got, err := ParallelEPOL(w, sys, r, RunOpts{Groups: 2, Steps: steps, H: h})
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(got, want); d > 1e-12 {
		t.Errorf("EPOL tp on BRUSS2D deviates by %g", d)
	}
}

func TestParallelEPOLValidation(t *testing.T) {
	sys := NewLinearDecay(16)
	w := world(t, 8)
	if _, err := ParallelEPOL(w, sys, 4, RunOpts{Groups: 3, Steps: 1, H: 0.1}); err == nil {
		t.Error("non-divisible group count accepted")
	}
	if _, err := ParallelEPOL(w, sys, 4, RunOpts{Groups: 1, Steps: 0, H: 0.1}); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := ParallelEPOL(w, sys, 4, RunOpts{Groups: 1, Steps: 1, H: -1}); err == nil {
		t.Error("negative step size accepted")
	}
}

func TestEPOLTable1Counts(t *testing.T) {
	sys := NewLinearDecay(16)
	const r, steps, g = 4, 3, 2
	// dp: R(R+1)/2 global Tag per step (+1 final gather).
	w := world(t, 8)
	if _, err := ParallelEPOL(w, sys, r, RunOpts{Groups: 1, Steps: steps, H: 0.05, Control: true}); err != nil {
		t.Fatal(err)
	}
	want := EPOLCountsDP(r)
	if got := w.Stats.Count(runtime.Global, runtime.OpAllgather); got != steps*want.GlobalTag+1 {
		t.Errorf("EPOL dp global Tag = %d, want %d", got, steps*want.GlobalTag+1)
	}
	if got := w.Stats.Count(runtime.Group, runtime.OpAllgather); got != 0 {
		t.Errorf("EPOL dp has %d group Tags", got)
	}

	// tp: R(R+1)/2 group Tags total (= (R+1) per group with g = R/2),
	// 1 global Tbc, q re-distributions (+1 final gather).
	w = world(t, 8)
	if _, err := ParallelEPOL(w, sys, r, RunOpts{Groups: g, Steps: steps, H: 0.05, Control: true}); err != nil {
		t.Fatal(err)
	}
	wantTP := EPOLCountsTP(r, g, 8/g)
	if got := w.Stats.Count(runtime.Group, runtime.OpAllgather); got != steps*wantTP.GroupTag {
		t.Errorf("EPOL tp group Tag = %d, want %d", got, steps*wantTP.GroupTag)
	}
	perGroup := w.Stats.Count(runtime.Group, runtime.OpAllgather) / g / steps
	if perGroup != r+1 {
		t.Errorf("EPOL tp per-group Tag per step = %d, want R+1 = %d (Table 1)", perGroup, r+1)
	}
	if got := w.Stats.Count(runtime.Global, runtime.OpBcast); got != steps*wantTP.GlobalTbc {
		t.Errorf("EPOL tp global Tbc = %d, want %d", got, steps*wantTP.GlobalTbc)
	}
	if got := w.Stats.Count(runtime.Orthogonal, runtime.OpRedist); got != steps*wantTP.Redist {
		t.Errorf("EPOL tp redistributions = %d, want %d", got, steps*wantTP.Redist)
	}
	if got := w.Stats.Count(runtime.Global, runtime.OpAllgather); got != 1 {
		t.Errorf("EPOL tp global Tag = %d, want 1 (final gather only)", got)
	}
}

func TestParallelIRKMatchesSequential(t *testing.T) {
	sys := NewLinearDecay(16)
	t0, y0 := sys.Initial()
	const k, m, steps = 4, 3, 4
	h := 0.05
	want := IntegrateFixed(NewIRK(k, m), sys, t0, y0, h, steps)
	for _, groups := range []int{1, k} {
		w := world(t, 8)
		got, err := ParallelIRK(w, sys, k, m, RunOpts{Groups: groups, Steps: steps, H: h, Control: true})
		if err != nil {
			t.Fatal(err)
		}
		if d := MaxAbsDiff(got, want); d > 1e-12 {
			t.Errorf("IRK groups=%d deviates by %g", groups, d)
		}
	}
	// Wrong group count for tp is rejected.
	w := world(t, 8)
	if _, err := ParallelIRK(w, sys, k, m, RunOpts{Groups: 2, Steps: 1, H: h}); err == nil {
		t.Error("IRK accepted groups != K")
	}
}

func TestIRKTable1Counts(t *testing.T) {
	sys := NewLinearDecay(16)
	const k, m, steps = 4, 3, 3
	w := world(t, 8)
	if _, err := ParallelIRK(w, sys, k, m, RunOpts{Groups: 1, Steps: steps, H: 0.05}); err != nil {
		t.Fatal(err)
	}
	want := IRKCountsDP(k, m)
	if got := w.Stats.Count(runtime.Global, runtime.OpAllgather); got != steps*want.GlobalTag {
		t.Errorf("IRK dp global Tag = %d, want %d", got, steps*want.GlobalTag)
	}

	w = world(t, 8)
	q := 8 / k
	if _, err := ParallelIRK(w, sys, k, m, RunOpts{Groups: k, Steps: steps, H: 0.05}); err != nil {
		t.Fatal(err)
	}
	wantTP := IRKCountsTP(k, m, q)
	if got := w.Stats.Count(runtime.Global, runtime.OpAllgather); got != steps*wantTP.GlobalTag {
		t.Errorf("IRK tp global Tag = %d, want %d", got, steps*wantTP.GlobalTag)
	}
	if got := w.Stats.Count(runtime.Group, runtime.OpAllgather); got != steps*wantTP.GroupTag {
		t.Errorf("IRK tp group Tag = %d, want %d", got, steps*wantTP.GroupTag)
	}
	if got := w.Stats.Count(runtime.Orthogonal, runtime.OpAllgather); got != steps*wantTP.OrthoTag {
		t.Errorf("IRK tp ortho Tag = %d, want %d", got, steps*wantTP.OrthoTag)
	}
	// Per-group and per-set numbers match the Table 1 row: m each.
	if perGroup := w.Stats.Count(runtime.Group, runtime.OpAllgather) / k / steps; perGroup != m {
		t.Errorf("IRK tp per-group Tag = %d, want m = %d", perGroup, m)
	}
	if perSet := w.Stats.Count(runtime.Orthogonal, runtime.OpAllgather) / q / steps; perSet != m {
		t.Errorf("IRK tp per-set ortho Tag = %d, want m = %d", perSet, m)
	}
}

func TestParallelDIIRKMatchesSequential(t *testing.T) {
	sys := NewLinearDecay(16)
	t0, y0 := sys.Initial()
	const k, steps = 2, 3
	h := 0.05
	want := IntegrateFixed(NewDIIRK(k), sys, t0, y0, h, steps)
	for _, groups := range []int{1, k} {
		w := world(t, 8)
		got, err := ParallelDIIRK(w, sys, k, RunOpts{Groups: groups, Steps: steps, H: h})
		if err != nil {
			t.Fatal(err)
		}
		// The distributed solver uses a different elimination order
		// than the sequential partial-pivoting solver; allow roundoff.
		if d := MaxAbsDiff(got, want); d > 1e-6 {
			t.Errorf("DIIRK groups=%d deviates by %g", groups, d)
		}
	}
}

func TestDIIRKCountRelations(t *testing.T) {
	// The iteration count I is dynamic; verify the structural relation
	// Tbc == n * (Tag - steps) / ... per version instead of fixed
	// numbers.
	sys := NewLinearDecay(16)
	n := sys.Dim()
	const k, steps = 2, 3
	w := world(t, 8)
	if _, err := ParallelDIIRK(w, sys, k, RunOpts{Groups: 1, Steps: steps, H: 0.05}); err != nil {
		t.Fatal(err)
	}
	tag := w.Stats.Count(runtime.Global, runtime.OpAllgather)
	tbc := w.Stats.Count(runtime.Global, runtime.OpBcast)
	// tag = steps*(1 + K*I_total/steps) => K*I_total = tag - steps.
	ki := tag - steps
	if ki <= 0 || ki%k != 0 {
		t.Fatalf("implausible iteration total: tag=%d steps=%d", tag, steps)
	}
	if tbc != n*ki {
		t.Errorf("DIIRK dp Tbc = %d, want n*(Tag-steps) = %d", tbc, n*ki)
	}

	w = world(t, 8)
	if _, err := ParallelDIIRK(w, sys, k, RunOpts{Groups: k, Steps: steps, H: 0.05}); err != nil {
		t.Fatal(err)
	}
	q := 8 / k
	gtag := w.Stats.Count(runtime.Group, runtime.OpAllgather)
	gtbc := w.Stats.Count(runtime.Group, runtime.OpBcast)
	otag := w.Stats.Count(runtime.Orthogonal, runtime.OpAllgather)
	// gtag = K*I_total, gtbc = K*n*I_total, otag = q*I_total.
	if gtag <= 0 || gtbc != n*gtag {
		t.Errorf("DIIRK tp group Tbc = %d, want n*groupTag = %d", gtbc, n*gtag)
	}
	if otag*k != gtag*q {
		t.Errorf("DIIRK tp ortho Tag %d inconsistent with group Tag %d", otag, gtag)
	}
	if got := w.Stats.Count(runtime.Global, runtime.OpAllgather); got != steps {
		t.Errorf("DIIRK tp global Tag = %d, want %d", got, steps)
	}
}

func TestParallelPABMatchesSequential(t *testing.T) {
	sys := NewLinearDecay(16)
	t0, y0 := sys.Initial()
	const k, steps = 4, 5
	h := 0.05
	for _, m := range []int{0, 2} {
		p := NewPABIntegrator(k, m, sys, t0, y0, h)
		p.Integrate(steps)
		want := p.Y()
		for _, groups := range []int{1, k} {
			w := world(t, 8)
			got, err := ParallelPAB(w, sys, k, m, RunOpts{Groups: groups, Steps: steps, H: h})
			if err != nil {
				t.Fatal(err)
			}
			if d := MaxAbsDiff(got, want); d > 1e-12 {
				t.Errorf("PAB(m=%d) groups=%d deviates by %g", m, groups, d)
			}
		}
	}
}

func TestPABTable1Counts(t *testing.T) {
	sys := NewLinearDecay(16)
	const k, steps = 4, 3
	q := 8 / k
	for _, m := range []int{0, 2} {
		w := world(t, 8)
		if _, err := ParallelPAB(w, sys, k, m, RunOpts{Groups: 1, Steps: steps, H: 0.05}); err != nil {
			t.Fatal(err)
		}
		want := PABCountsDP(k, m)
		if got := w.Stats.Count(runtime.Global, runtime.OpAllgather); got != steps*want.GlobalTag {
			t.Errorf("PAB(m=%d) dp global Tag = %d, want %d", m, got, steps*want.GlobalTag)
		}

		w = world(t, 8)
		if _, err := ParallelPAB(w, sys, k, m, RunOpts{Groups: k, Steps: steps, H: 0.05}); err != nil {
			t.Fatal(err)
		}
		wantTP := PABCountsTP(k, m, q)
		if got := w.Stats.Count(runtime.Group, runtime.OpAllgather); got != steps*wantTP.GroupTag {
			t.Errorf("PAB(m=%d) tp group Tag = %d, want %d", m, got, steps*wantTP.GroupTag)
		}
		if got := w.Stats.Count(runtime.Orthogonal, runtime.OpAllgather); got != steps*wantTP.OrthoTag {
			t.Errorf("PAB(m=%d) tp ortho Tag = %d, want %d", m, got, steps*wantTP.OrthoTag)
		}
		// Per-group / per-set Table 1 numbers.
		if per := w.Stats.Count(runtime.Group, runtime.OpAllgather) / k / steps; per != 1+m {
			t.Errorf("PAB(m=%d) tp per-group Tag = %d, want %d", m, per, 1+m)
		}
		if per := w.Stats.Count(runtime.Orthogonal, runtime.OpAllgather) / q / steps; per != 1 {
			t.Errorf("PAB(m=%d) tp per-set ortho = %d, want 1", m, per)
		}
		// tp uses exactly one global Tag in total (final assembly).
		if got := w.Stats.Count(runtime.Global, runtime.OpAllgather); got != 1 {
			t.Errorf("PAB(m=%d) tp global Tag = %d, want 1", m, got)
		}
	}
}

func TestTable1Rows(t *testing.T) {
	rows := Table1()
	if len(rows) != 10 {
		t.Fatalf("Table1 has %d rows, want 10", len(rows))
	}
	for _, r := range rows {
		if r.Benchmark == "" || r.Paper == "" || r.Ours == "" {
			t.Fatalf("incomplete row %+v", r)
		}
	}
}

func TestParallelEPOLAdaptiveMatchesSequential(t *testing.T) {
	sys := NewLinearDecay(16)
	t0, y0 := sys.Initial()
	const r = 4
	te, h0, tol := 0.5, 0.02, 1e-9
	want, wantSteps := IntegrateAdaptive(NewEPOL(r), sys, t0, y0, te, h0, tol)
	for _, groups := range []int{1, 2} {
		w := world(t, 8)
		got, steps, err := ParallelEPOLAdaptive(w, sys, r, groups, te, h0, tol)
		if err != nil {
			t.Fatal(err)
		}
		if steps != wantSteps {
			t.Errorf("groups=%d: %d accepted steps, sequential took %d", groups, steps, wantSteps)
		}
		if d := MaxAbsDiff(got, want); d > 1e-12 {
			t.Errorf("groups=%d: adaptive trajectory deviates by %g", groups, d)
		}
		// tp variant broadcasts one real decision per attempted step.
		if groups > 1 {
			if got := w.Stats.Count(runtime.Global, runtime.OpBcast); got < steps {
				t.Errorf("only %d decision broadcasts for %d steps", got, steps)
			}
		}
	}
	// Invalid configurations are rejected.
	w := world(t, 8)
	if _, _, err := ParallelEPOLAdaptive(w, sys, r, 3, te, h0, tol); err == nil {
		t.Error("non-divisible group count accepted")
	}
}
