package ode

import (
	"fmt"

	"mtask/internal/graph"
)

// unrolledFanOut is the number of next-step stages each stage feeds in
// BuildUnrolledGraph. A fixed small fan-out keeps the edge count linear in
// the task count (a full all-to-all would be quadratic in the stage count
// and dominate memory at million-task scale) while still coupling the
// steps so no layer can float.
const unrolledFanOut = 4

// BuildUnrolledGraph returns a deterministic time-step-unrolled
// solver-style M-task graph for the planner's scaling benchmarks: `steps`
// consecutive time steps, each with `stages` independent stage tasks
// followed by a contractible chain of chainLen-1 successor tasks (the
// per-stage micro steps), and a sparse stage-to-stage coupling between
// consecutive steps. After chain contraction every step collapses to
// `stages` nodes forming one layer, so the contracted graph has `steps`
// layers of width `stages` — the shape solver unrolling produces, at any
// requested scale.
//
// Task count is stages*chainLen*steps + 2 (start/stop); edge count is
// linear in it. Work varies deterministically per (step, stage) so the LPT
// order within a layer is non-trivial, and repeats with period workPeriod
// steps so extending the step count reuses earlier layer fingerprints
// (exactly what solver time-step unrolling does to real request streams).
//
// The builder is allocation-lean by construction: tasks come from one
// slab, adjacency is pre-sized with Grow, and every edge is appended with
// AddUniqueEdge (edges are unique by construction), so building a
// million-task graph performs no map work and no quadratic pass.
func BuildUnrolledGraph(stages, chainLen, steps, n int, evalFlops float64) *graph.Graph {
	if stages < 1 || chainLen < 1 || steps < 1 {
		panic("ode: BuildUnrolledGraph needs stages, chainLen, steps >= 1")
	}
	const workPeriod = 16
	vb := vecBytes(n)
	total := stages * chainLen * steps
	chainEdges := stages * (chainLen - 1) * steps
	coupleEdges := 0
	if steps > 1 {
		fan := unrolledFanOut
		if fan > stages {
			fan = stages
		}
		coupleEdges = stages * fan * (steps - 1)
	}
	fan := unrolledFanOut
	if fan > stages {
		fan = stages
	}
	g := graph.New(fmt.Sprintf("UNROLL(stages=%d,chain=%d,n=%d)", stages, chainLen, n))
	g.Grow(total+2, chainEdges+coupleEdges+2*stages)

	// Pass 1: tasks, from one slab.
	slab := make([]graph.Task, total)
	next := 0
	// head id of stage i in step s: ids are assigned depth-first per
	// stage, so head(s, i) = (s*stages+i)*chainLen.
	head := func(s, i int) graph.TaskID { return graph.TaskID((s*stages + i) * chainLen) }
	for s := 0; s < steps; s++ {
		for i := 0; i < stages; i++ {
			// Deterministic per-(step, stage) work variation with
			// period workPeriod in s.
			scale := 1 + float64(((s%workPeriod)*31+i*17)%97)/97
			for c := 0; c < chainLen; c++ {
				t := &slab[next]
				next++
				*t = graph.Task{
					Kind:      graph.KindBasic,
					Work:      stageWork(n, stages, evalFlops) * scale,
					CommBytes: vb,
					CommCount: 1,
					OutBytes:  vb / stages,
				}
				g.AddTask(t)
			}
		}
	}
	// Start/stop markers wired directly (the generic AddStartStop scans
	// all tasks and routes through the edge index; sources and sinks are
	// known by construction here).
	start := g.AddTask(&graph.Task{Name: "start", Kind: graph.KindStart})
	stop := g.AddTask(&graph.Task{Name: "stop", Kind: graph.KindStop})

	// Exact degrees by construction, so edge ingestion runs on carved
	// slabs.
	outDeg := make([]int, total+2)
	inDeg := make([]int, total+2)
	for s := 0; s < steps; s++ {
		for i := 0; i < stages; i++ {
			h := int(head(s, i))
			for c := 0; c < chainLen-1; c++ {
				outDeg[h+c] = 1
				inDeg[h+c+1] = 1
			}
			if s < steps-1 {
				outDeg[h+chainLen-1] = fan
			} else {
				outDeg[h+chainLen-1] = 1 // to stop
			}
			if s > 0 {
				inDeg[h] = fan
			} else {
				inDeg[h] = 1 // from start
			}
		}
	}
	outDeg[start] = stages
	inDeg[stop] = stages
	g.PresizeAdjacency(outDeg, inDeg)

	// Pass 2: edges.
	for s := 0; s < steps; s++ {
		for i := 0; i < stages; i++ {
			h := head(s, i)
			for c := 1; c < chainLen; c++ {
				g.AddUniqueEdge(h+graph.TaskID(c-1), h+graph.TaskID(c), vb/stages)
			}
			if s > 0 {
				exit := head(s-1, i) + graph.TaskID(chainLen-1)
				for j := 0; j < fan; j++ {
					g.AddUniqueEdge(exit, head(s, (i+j)%stages), vb/stages)
				}
			}
		}
	}
	for i := 0; i < stages; i++ {
		g.AddUniqueEdge(start, head(0, i), 0)
		g.AddUniqueEdge(head(steps-1, i)+graph.TaskID(chainLen-1), stop, 0)
	}
	return g
}

// ScaledSolverGraph returns a BuildUnrolledGraph sized to approximately
// `tasks` M-tasks, with a deterministic shape per scale: wide 100-stage
// steps with 10-task chains at large scale, narrower 20x5 steps below 100k
// tasks so small graphs still have several steps. Used by `mtaskbench
// -plan -scale N` and the scaling benchmarks.
func ScaledSolverGraph(tasks int) *graph.Graph {
	stages, chainLen := 100, 10
	if tasks < 100_000 {
		stages, chainLen = 20, 5
	}
	steps := tasks / (stages * chainLen)
	if steps < 1 {
		steps = 1
	}
	return BuildUnrolledGraph(stages, chainLen, steps, 40000, 600)
}
