package ode

import (
	"fmt"
	"math"

	"mtask/internal/graph"
	"mtask/internal/runtime"
)

// ScaledExecState gives the scaled planning graphs (BuildUnrolledGraph /
// ScaledSolverGraph) runnable synthetic bodies, so `mtaskbench -exec
// -scale N` can execute 100k+-task schedules end to end instead of only
// planning them.
//
// Unlike ExecState (whose per-task input assembly allocates maps and
// sorted slices — fine at solver-graph sizes, fatal at 100k tasks on the
// dispatch hot path), the scaled body is allocation-free in steady state:
// one shared TaskFunc for every task (the body reads its task id from the
// TaskCtx), one output slot per task in a presized slab, and only
// allocation-free collectives. The value of a task is a deterministic
// function of its id and its predecessors' values — independent of group
// size, launch order and retry count — so any execution (layered,
// wavefront with either dispatcher, degraded after replan) must reproduce
// ScaledReference bitwise.
//
// Slot discipline makes the slab race-free without locks: rank 0 of a
// task's group is the only writer of out[id], predecessors' slots are
// written strictly before the task launches (the dependence edge), and
// retried attempts rewrite the same value (idempotent).
type ScaledExecState struct {
	g    *graph.Graph
	out  []float64
	fn   runtime.TaskFunc
	noop runtime.TaskFunc
}

// NewScaledExecState returns fresh execution state for one run over g
// (the source graph of the schedule being executed).
func NewScaledExecState(g *graph.Graph) *ScaledExecState {
	st := &ScaledExecState{g: g, out: make([]float64, g.Len())}
	st.fn = func(tc *runtime.TaskCtx) error {
		id := tc.Task.ID
		in := 0.0
		for _, p := range st.g.Pred(id) {
			in += st.out[p]
		}
		val := scaledValue(id, in)
		// Every rank contributes the same value, so the reduction must
		// return it exactly — a live cross-rank consistency check that
		// costs one allocation-free collective.
		if m := tc.Group.AllreduceMax(val); m != val {
			return fmt.Errorf("ode: scaled task %d: allreduce returned %v, want %v", id, m, val)
		}
		if tc.Group.Rank() == 0 {
			st.out[id] = val
		}
		return nil
	}
	st.noop = func(tc *runtime.TaskCtx) error { return nil }
	return st
}

// Body is the body function for runtime.ExecuteCtx. It hands every basic
// task the same shared TaskFunc (no per-task closure), so dispatch stays
// allocation-free.
func (st *ScaledExecState) Body(t *graph.Task) runtime.TaskFunc {
	if t.Kind != graph.KindBasic {
		return st.noop
	}
	return st.fn
}

// Outputs returns the live per-task output slab (indexed by task id; do
// not read while an execution is running).
func (st *ScaledExecState) Outputs() []float64 { return st.out }

// Checksum folds the output slab into one comparable value (bitwise
// deterministic: plain left-to-right summation in id order).
func (st *ScaledExecState) Checksum() float64 {
	sum := 0.0
	for _, v := range st.out {
		sum += v
	}
	return sum
}

// scaledValue is the deterministic task value: bounded (tanh keeps the
// predecessor recursion from diverging over thousands of steps) and
// discriminating (the id term makes neighbouring tasks differ).
func scaledValue(id graph.TaskID, in float64) float64 {
	return math.Tanh(0.3*in) + 0.001*float64(int(id)%997)
}

// ScaledReference computes the scaled outputs sequentially in id order —
// the failure-free oracle for ScaledExecState runs. Valid for graphs
// whose basic-task ids ascend topologically (BuildUnrolledGraph assigns
// ids that way; the start marker carries no value, so its back-edges are
// harmless).
func ScaledReference(g *graph.Graph) []float64 {
	out := make([]float64, g.Len())
	for id := 0; id < g.Len(); id++ {
		t := g.Task(graph.TaskID(id))
		if t.Kind != graph.KindBasic {
			continue
		}
		in := 0.0
		for _, p := range g.Pred(graph.TaskID(id)) {
			in += out[p]
		}
		out[id] = scaledValue(graph.TaskID(id), in)
	}
	return out
}

// CompareScaledOutputs verifies that got reproduces want bitwise on every
// slot; it returns the first difference (by task id), or nil.
func CompareScaledOutputs(want, got []float64) error {
	if len(want) != len(got) {
		return fmt.Errorf("ode: scaled outputs hold %d slots, want %d", len(got), len(want))
	}
	for id := range want {
		if math.Float64bits(want[id]) != math.Float64bits(got[id]) {
			return fmt.Errorf("ode: scaled task %d = %v, want %v", id, got[id], want[id])
		}
	}
	return nil
}
