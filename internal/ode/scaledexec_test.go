package ode

import (
	"context"
	"testing"
	"time"

	"mtask/internal/fault"
	"mtask/internal/runtime"
)

func TestScaledExecMatchesReference(t *testing.T) {
	// The scaled synthetic bodies must reproduce the sequential reference
	// bitwise under every executor mode — the same oracle discipline as
	// the real solver graphs, at the shapes `mtaskbench -exec -scale`
	// runs.
	g := BuildUnrolledGraph(20, 5, 4, 64, 600) // 400 tasks
	want := ScaledReference(g)
	modes := map[string][]runtime.ExecOption{
		"layered": nil,
		"workers": {runtime.WithWavefront()},
		"channel": {runtime.WithWavefront(), runtime.WithChannelDispatcher()},
		"lean":    {runtime.WithWavefront(), runtime.WithoutTimeline()},
	}
	for _, P := range []int{4, 8} {
		sched := pabSchedule(t, g, P)
		for mode, opts := range modes {
			w, _ := runtime.NewWorld(P)
			st := NewScaledExecState(g)
			rep, err := runtime.ExecuteCtx(context.Background(), w, sched, st.Body, opts...)
			if err != nil {
				t.Fatalf("%s on %d cores: %v\n%s", mode, P, err, rep)
			}
			if rep.Layers != len(sched.Layers) {
				t.Fatalf("%s on %d cores: %d of %d layers done", mode, P, rep.Layers, len(sched.Layers))
			}
			if err := CompareScaledOutputs(want, st.Outputs()); err != nil {
				t.Fatalf("%s on %d cores: %v", mode, P, err)
			}
		}
	}
}

func TestScaledExecIdenticalUnderInjectedFaults(t *testing.T) {
	// Injected errors and panics with retries must leave the scaled
	// trajectory byte-identical to the reference under both wavefront
	// dispatchers (the bodies are idempotent by construction).
	g := BuildUnrolledGraph(10, 3, 4, 64, 600)
	want := ScaledReference(g)
	sched := pabSchedule(t, g, 8)
	pol := fault.DefaultPolicy()
	pol.MaxRetries = 8
	pol.BaseBackoff = 50 * time.Microsecond
	for _, dispatch := range [][]runtime.ExecOption{
		{runtime.WithWavefront()},
		{runtime.WithWavefront(), runtime.WithChannelDispatcher()},
	} {
		for seed := int64(1); seed <= 2; seed++ {
			inj := &fault.Injector{Seed: seed, PError: 0.05, PPanic: 0.03}
			w, _ := runtime.NewWorld(8)
			st := NewScaledExecState(g)
			rep, err := runtime.ExecuteCtx(context.Background(), w, sched, st.Body,
				append([]runtime.ExecOption{runtime.WithPolicy(pol), runtime.WithInjector(inj)}, dispatch...)...)
			if err != nil {
				t.Fatalf("seed %d: %v\n%s", seed, err, rep)
			}
			if err := CompareScaledOutputs(want, st.Outputs()); err != nil {
				t.Fatalf("seed %d: results diverged: %v\n%s", seed, err, rep)
			}
		}
	}
}
