package ode

import (
	"fmt"
	"math"
)

// OneStep is a sequential one-step ODE method: Step advances the solution
// from t to t+h and returns the new approximation together with a local
// error estimate for step-size control.
type OneStep interface {
	Name() string
	Order() int
	Step(sys System, t, h float64, y []float64) (ynext []float64, errEst float64)
}

// --- EPOL: explicit extrapolation ---

// EPOL is the explicit extrapolation method of Section 2.2.3: one time
// step computes R approximations with the explicit Euler method using i
// micro steps of size h/i (i = 1..R) and combines them by Aitken-Neville
// extrapolation into an approximation of order R. The micro steps of one
// approximation form a linear chain; different approximations are
// independent — the source of the method's task parallelism.
type EPOL struct {
	R int
}

// NewEPOL returns the extrapolation method with R approximations.
func NewEPOL(r int) *EPOL {
	if r < 1 {
		panic("ode: EPOL needs R >= 1")
	}
	return &EPOL{R: r}
}

// Name implements OneStep.
func (e *EPOL) Name() string { return fmt.Sprintf("EPOL(R=%d)", e.R) }

// Order implements OneStep.
func (e *EPOL) Order() int { return e.R }

// eulerChain performs i explicit Euler micro steps of size h/i.
func eulerChain(sys System, t, h float64, y []float64, i int) []float64 {
	cur := append([]float64(nil), y...)
	micro := h / float64(i)
	f := make([]float64, sys.Dim())
	for j := 0; j < i; j++ {
		sys.Eval(t+float64(j)*micro, cur, 0, sys.Dim(), f)
		for k := range cur {
			cur[k] += micro * f[k]
		}
	}
	return cur
}

// Step implements OneStep.
func (e *EPOL) Step(sys System, t, h float64, y []float64) ([]float64, float64) {
	r := e.R
	// T[i] starts as the Euler approximation with i+1 micro steps.
	tab := make([][]float64, r)
	for i := 0; i < r; i++ {
		tab[i] = eulerChain(sys, t, h, y, i+1)
	}
	// Aitken-Neville extrapolation towards micro step 0 for the
	// harmonic sequence n_i = i+1: column k eliminates the k-th error
	// term. After the loop, tab[i] holds the diagonal value T_{i+1,i+1}.
	for k := 1; k < r; k++ {
		for i := r - 1; i >= k; i-- {
			den := float64(i+1)/float64(i+1-k) - 1
			for c := range tab[i] {
				tab[i][c] += (tab[i][c] - tab[i-1][c]) / den
			}
		}
	}
	errEst := 0.0
	if r > 1 {
		errEst = MaxAbsDiff(tab[r-1], tab[r-2])
	}
	return tab[r-1], errEst
}

// --- IRK: iterated Runge-Kutta ---

// IRK is the Iterated Runge-Kutta method: the K stage vectors of an
// implicit collocation method (Gauss, order 2K) are approximated by M
// fixed-point iterations
//
//	v_k^{(j)} = f(t + c_k h, y + h * sum_l a_kl v_l^{(j-1)}),
//
// starting from v^{(0)} = f(t, y). The K stage vectors of one iteration
// are independent of each other — the method's task parallelism.
type IRK struct {
	RK *CollocationRK
	M  int
}

// NewIRK returns the iterated K-stage Gauss method with m fixed-point
// iterations.
func NewIRK(k, m int) *IRK {
	if m < 1 {
		panic("ode: IRK needs m >= 1")
	}
	return &IRK{RK: NewGaussRK(k), M: m}
}

// Name implements OneStep.
func (irk *IRK) Name() string { return fmt.Sprintf("IRK(K=%d,m=%d)", irk.RK.K, irk.M) }

// Order implements OneStep. Each iteration gains one order, capped by the
// corrector's order 2K.
func (irk *IRK) Order() int {
	o := irk.M + 1
	if max := 2 * irk.RK.K; o > max {
		o = max
	}
	return o
}

// Step implements OneStep.
func (irk *IRK) Step(sys System, t, h float64, y []float64) ([]float64, float64) {
	k := irk.RK.K
	n := sys.Dim()
	f0 := EvalAll(sys, t, y)
	v := make([][]float64, k)
	for s := 0; s < k; s++ {
		v[s] = append([]float64(nil), f0...)
	}
	next := make([][]float64, k)
	for s := 0; s < k; s++ {
		next[s] = make([]float64, n)
	}
	arg := make([]float64, n)
	var prev [][]float64
	for j := 0; j < irk.M; j++ {
		if j == irk.M-1 {
			prev = make([][]float64, k)
			for s := 0; s < k; s++ {
				prev[s] = append([]float64(nil), v[s]...)
			}
		}
		for s := 0; s < k; s++ {
			for c := 0; c < n; c++ {
				sum := 0.0
				for l := 0; l < k; l++ {
					sum += irk.RK.A[s][l] * v[l][c]
				}
				arg[c] = y[c] + h*sum
			}
			sys.Eval(t+irk.RK.C[s]*h, arg, 0, n, next[s])
		}
		v, next = next, v
	}
	out := append([]float64(nil), y...)
	for c := 0; c < n; c++ {
		sum := 0.0
		for l := 0; l < k; l++ {
			sum += irk.RK.B[l] * v[l][c]
		}
		out[c] += h * sum
	}
	// Error estimate: difference between the updates of the last two
	// iterates.
	errEst := 0.0
	for c := 0; c < n; c++ {
		sum := 0.0
		for l := 0; l < k; l++ {
			sum += irk.RK.B[l] * (v[l][c] - prev[l][c])
		}
		if d := math.Abs(h * sum); d > errEst {
			errEst = d
		}
	}
	return out, errEst
}

// --- DIIRK: diagonal-implicitly iterated Runge-Kutta ---

// DIIRK is the Diagonal-Implicitly Iterated Runge-Kutta method: like IRK,
// but each fixed-point iteration treats the diagonal stage coefficient
// implicitly and performs one Newton step
//
//	(I - h a_kk J) (v_k^{(j)} - v_k^{(j-1)}) = f(arg) - v_k^{(j-1)},
//
// where J is the Jacobian of f at (t, y), making the method suitable for
// stiff systems. The number of iterations I is chosen dynamically by a
// convergence criterion (1 <= I <= MaxIter, typically small), as in the
// paper. The linear solve is what produces the method's (n-1) broadcast
// operations per iteration in the parallel version (Table 1).
type DIIRK struct {
	RK      *CollocationRK
	MaxIter int
	Tol     float64

	lastIterations int
}

// NewDIIRK returns the diagonal-implicitly iterated K-stage Gauss method.
func NewDIIRK(k int) *DIIRK {
	return &DIIRK{RK: NewGaussRK(k), MaxIter: 3, Tol: 1e-8}
}

// Name implements OneStep.
func (d *DIIRK) Name() string { return fmt.Sprintf("DIIRK(K=%d)", d.RK.K) }

// Order implements OneStep.
func (d *DIIRK) Order() int { return d.MaxIter + 1 }

// Jacobian approximates the dense Jacobian of f at (t, y) by forward
// differences (n+1 evaluations of f).
func Jacobian(sys System, t float64, y []float64) [][]float64 {
	n := sys.Dim()
	f0 := EvalAll(sys, t, y)
	jac := make([][]float64, n)
	for i := range jac {
		jac[i] = make([]float64, n)
	}
	yp := append([]float64(nil), y...)
	col := make([]float64, n)
	for j := 0; j < n; j++ {
		eps := 1e-7 * (math.Abs(y[j]) + 1)
		yp[j] = y[j] + eps
		sys.Eval(t, yp, 0, n, col)
		yp[j] = y[j]
		for i := 0; i < n; i++ {
			jac[i][j] = (col[i] - f0[i]) / eps
		}
	}
	return jac
}

// solveDense solves A x = b in place by Gaussian elimination with partial
// pivoting; A and b are destroyed.
func solveDense(a [][]float64, b []float64) []float64 {
	n := len(b)
	for k := 0; k < n; k++ {
		// Partial pivot.
		p := k
		for i := k + 1; i < n; i++ {
			if math.Abs(a[i][k]) > math.Abs(a[p][k]) {
				p = i
			}
		}
		a[k], a[p] = a[p], a[k]
		b[k], b[p] = b[p], b[k]
		piv := a[k][k]
		for i := k + 1; i < n; i++ {
			m := a[i][k] / piv
			if m == 0 {
				continue
			}
			for j := k; j < n; j++ {
				a[i][j] -= m * a[k][j]
			}
			b[i] -= m * b[k]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a[i][j] * x[j]
		}
		x[i] = s / a[i][i]
	}
	return x
}

// Step implements OneStep. It also reports the number of iterations used
// through the LastIterations field.
func (d *DIIRK) Step(sys System, t, h float64, y []float64) ([]float64, float64) {
	k := d.RK.K
	n := sys.Dim()
	jac := Jacobian(sys, t, y)
	f0 := EvalAll(sys, t, y)
	v := make([][]float64, k)
	for s := 0; s < k; s++ {
		v[s] = append([]float64(nil), f0...)
	}
	arg := make([]float64, n)
	g := make([]float64, n)
	iters := 0
	var lastDelta float64
	for j := 0; j < d.MaxIter; j++ {
		iters++
		lastDelta = 0
		for s := 0; s < k; s++ {
			akk := d.RK.A[s][s]
			for c := 0; c < n; c++ {
				sum := 0.0
				for l := 0; l < k; l++ {
					sum += d.RK.A[s][l] * v[l][c]
				}
				arg[c] = y[c] + h*sum
			}
			fv := make([]float64, n)
			sys.Eval(t+d.RK.C[s]*h, arg, 0, n, fv)
			for c := 0; c < n; c++ {
				g[c] = fv[c] - v[s][c]
			}
			// Newton matrix I - h a_kk J (rebuilt per solve; the
			// parallel version distributes this elimination).
			m := make([][]float64, n)
			for i := 0; i < n; i++ {
				m[i] = make([]float64, n)
				for jj := 0; jj < n; jj++ {
					m[i][jj] = -h * akk * jac[i][jj]
				}
				m[i][i] += 1
			}
			rhs := append([]float64(nil), g...)
			delta := solveDense(m, rhs)
			for c := 0; c < n; c++ {
				v[s][c] += delta[c]
				if ad := math.Abs(delta[c]); ad > lastDelta {
					lastDelta = ad
				}
			}
		}
		if lastDelta < d.Tol {
			break
		}
	}
	d.lastIterations = iters
	out := append([]float64(nil), y...)
	for c := 0; c < n; c++ {
		sum := 0.0
		for l := 0; l < k; l++ {
			sum += d.RK.B[l] * v[l][c]
		}
		out[c] += h * sum
	}
	return out, lastDelta * h
}

// LastIterations returns the dynamically determined iteration count I of
// the most recent Step call.
func (d *DIIRK) LastIterations() int { return d.lastIterations }

// --- fixed and adaptive integration drivers ---

// IntegrateFixed advances y0 over the given number of equal steps and
// returns the final approximation.
func IntegrateFixed(m OneStep, sys System, t0 float64, y0 []float64, h float64, steps int) []float64 {
	y := append([]float64(nil), y0...)
	t := t0
	for s := 0; s < steps; s++ {
		y, _ = m.Step(sys, t, h, y)
		t += h
	}
	return y
}

// IntegrateAdaptive integrates from t0 to te with local error control: a
// step is accepted if its error estimate is at most tol, and the step size
// is adapted by the standard controller h' = 0.9 h (tol/err)^(1/(p+1)),
// clamped to [h/4, 4h]. It returns the final approximation and the number
// of accepted steps.
func IntegrateAdaptive(m OneStep, sys System, t0 float64, y0 []float64, te, h0, tol float64) ([]float64, int) {
	y := append([]float64(nil), y0...)
	t := t0
	h := h0
	steps := 0
	for t < te-1e-14 {
		if t+h > te {
			h = te - t
		}
		ynew, errEst := m.Step(sys, t, h, y)
		if errEst <= tol || h <= 1e-12 {
			y = ynew
			t += h
			steps++
		}
		// Step-size update (also applied after rejections).
		fac := 2.0
		if errEst > 0 {
			fac = 0.9 * math.Pow(tol/errEst, 1/float64(m.Order()+1))
		}
		if fac > 4 {
			fac = 4
		}
		if fac < 0.25 {
			fac = 0.25
		}
		h *= fac
	}
	return y, steps
}

// RK4 performs classical 4th-order Runge-Kutta steps; used to bootstrap
// the multistep PAB/PABM methods.
func RK4(sys System, t float64, y []float64, h float64, steps int) []float64 {
	n := sys.Dim()
	cur := append([]float64(nil), y...)
	k1 := make([]float64, n)
	k2 := make([]float64, n)
	k3 := make([]float64, n)
	k4 := make([]float64, n)
	tmp := make([]float64, n)
	for s := 0; s < steps; s++ {
		sys.Eval(t, cur, 0, n, k1)
		for i := range tmp {
			tmp[i] = cur[i] + h/2*k1[i]
		}
		sys.Eval(t+h/2, tmp, 0, n, k2)
		for i := range tmp {
			tmp[i] = cur[i] + h/2*k2[i]
		}
		sys.Eval(t+h/2, tmp, 0, n, k3)
		for i := range tmp {
			tmp[i] = cur[i] + h*k3[i]
		}
		sys.Eval(t+h, tmp, 0, n, k4)
		for i := range cur {
			cur[i] += h / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
		}
		t += h
	}
	return cur
}
