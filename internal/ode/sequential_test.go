package ode

import (
	"math"
	"testing"
)

func TestGaussNodes(t *testing.T) {
	// K=1: midpoint. K=2: 1/2 +- sqrt(3)/6.
	n1 := GaussNodes(1)
	if math.Abs(n1[0]-0.5) > 1e-12 {
		t.Fatalf("Gauss K=1 node = %v", n1)
	}
	n2 := GaussNodes(2)
	want := []float64{0.5 - math.Sqrt(3)/6, 0.5 + math.Sqrt(3)/6}
	for i := range want {
		if math.Abs(n2[i]-want[i]) > 1e-12 {
			t.Fatalf("Gauss K=2 nodes = %v, want %v", n2, want)
		}
	}
	// Nodes are ascending and inside (0,1) for larger K.
	for _, k := range []int{3, 4, 6, 8} {
		nodes := GaussNodes(k)
		for i, c := range nodes {
			if c <= 0 || c >= 1 {
				t.Fatalf("K=%d node %g outside (0,1)", k, c)
			}
			if i > 0 && nodes[i] <= nodes[i-1] {
				t.Fatalf("K=%d nodes not ascending: %v", k, nodes)
			}
		}
	}
}

func TestLagrangeIntegralPartitionOfUnity(t *testing.T) {
	// The Lagrange basis sums to 1, so the integrals over [a,b] sum to
	// b-a.
	nodes := []float64{0.1, 0.4, 0.75, 0.9}
	sum := 0.0
	for j := range nodes {
		sum += LagrangeIntegral(nodes, j, 0, 1)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("integrals sum to %g, want 1", sum)
	}
}

func TestGaussRKWeights(t *testing.T) {
	// Gauss collocation B weights sum to 1; row sums of A equal C.
	for _, k := range []int{1, 2, 4} {
		rk := NewGaussRK(k)
		var bs float64
		for _, b := range rk.B {
			bs += b
		}
		if math.Abs(bs-1) > 1e-12 {
			t.Fatalf("K=%d: sum B = %g", k, bs)
		}
		for i := 0; i < k; i++ {
			var rs float64
			for j := 0; j < k; j++ {
				rs += rk.A[i][j]
			}
			if math.Abs(rs-rk.C[i]) > 1e-12 {
				t.Fatalf("K=%d: row %d sum %g != c %g", k, i, rs, rk.C[i])
			}
		}
	}
}

func TestAdamsCoeffs(t *testing.T) {
	a := NewAdams(4)
	// The last stage sits at the step end.
	if a.C[3] != 1 {
		t.Fatalf("c_K = %g, want 1", a.C[3])
	}
	// Predictor weights for stage i integrate a polynomial that is
	// exactly 1 over an interval of length c_i: sum_j Beta[i][j] = c_i.
	for i := 0; i < 4; i++ {
		var s float64
		for j := 0; j < 4; j++ {
			s += a.Beta[i][j]
		}
		if math.Abs(s-a.C[i]) > 1e-12 {
			t.Fatalf("stage %d: sum Beta = %g, want %g", i, s, a.C[i])
		}
		s = a.Nu[i]
		for j := 0; j < 4; j++ {
			s += a.Mu[i][j]
		}
		if math.Abs(s-a.C[i]) > 1e-12 {
			t.Fatalf("stage %d: sum Mu+Nu = %g, want %g", i, s, a.C[i])
		}
	}
}

// orderEstimate integrates the linear test problem at two step sizes and
// returns the observed convergence order.
func orderEstimate(t *testing.T, m OneStep, steps int) float64 {
	t.Helper()
	sys := NewLinearDecay(6)
	t0, y0 := sys.Initial()
	te := 1.0
	h1 := (te - t0) / float64(steps)
	y1 := IntegrateFixed(m, sys, t0, y0, h1, steps)
	y2 := IntegrateFixed(m, sys, t0, y0, h1/2, 2*steps)
	exact := sys.Exact(te)
	e1 := MaxAbsDiff(y1, exact)
	e2 := MaxAbsDiff(y2, exact)
	if e1 == 0 || e2 == 0 {
		return math.Inf(1)
	}
	return math.Log2(e1 / e2)
}

func TestEPOLConvergenceOrder(t *testing.T) {
	for _, r := range []int{2, 3, 4} {
		got := orderEstimate(t, NewEPOL(r), 8)
		if got < float64(r)-0.5 {
			t.Errorf("EPOL R=%d observed order %.2f, want >= %d", r, got, r)
		}
	}
}

func TestIRKConvergenceOrder(t *testing.T) {
	// m iterations give order m+1 (up to the corrector's order 2K).
	m := NewIRK(4, 3)
	got := orderEstimate(t, m, 8)
	if got < 3.5 {
		t.Errorf("IRK K=4 m=3 observed order %.2f, want >= 4", got)
	}
	if m.Order() != 4 {
		t.Errorf("IRK order = %d, want 4", m.Order())
	}
	if NewIRK(2, 10).Order() != 4 {
		t.Error("IRK order not capped at 2K")
	}
}

func TestDIIRKAccuracyAndStiffStability(t *testing.T) {
	d := NewDIIRK(2)
	got := orderEstimate(t, d, 8)
	if got < 1.8 {
		t.Errorf("DIIRK observed order %.2f, want ~>= 2", got)
	}
	if d.LastIterations() < 1 || d.LastIterations() > d.MaxIter {
		t.Errorf("DIIRK iterations = %d", d.LastIterations())
	}
	// A moderately stiff component must not explode at a step size where
	// explicit Euler would (h*lambda = 5).
	stiff := &LinearDecay{Lambdas: []float64{50}, Y0: []float64{1}}
	y := IntegrateFixed(NewDIIRK(2), stiff, 0, []float64{1}, 0.1, 10)
	if math.Abs(y[0]) > 1 {
		t.Errorf("DIIRK unstable on stiff problem: %g", y[0])
	}
}

func TestPABConvergence(t *testing.T) {
	sys := NewLinearDecay(6)
	t0, y0 := sys.Initial()
	run := func(k, m, steps int) float64 {
		h := 1.0 / float64(steps)
		p := NewPABIntegrator(k, m, sys, t0, y0, h)
		p.Integrate(steps - 1) // bootstrap consumed one step
		return MaxAbsDiff(p.Y(), sys.Exact(p.T()))
	}
	// Halving h must shrink the PAB error by at least 2^K-ish.
	e1 := run(4, 0, 16)
	e2 := run(4, 0, 32)
	if !(e2 < e1/8) {
		t.Errorf("PAB K=4: errors %g -> %g, want ~16x reduction", e1, e2)
	}
	// PABM must be at least as accurate as PAB.
	em := run(4, 2, 16)
	if em > e1 {
		t.Errorf("PABM error %g worse than PAB %g", em, e1)
	}
}

func TestAdaptiveIntegration(t *testing.T) {
	sys := NewLinearDecay(4)
	t0, y0 := sys.Initial()
	y, steps := IntegrateAdaptive(NewEPOL(4), sys, t0, y0, 1.0, 0.1, 1e-8)
	if steps < 1 {
		t.Fatal("no steps taken")
	}
	if err := MaxAbsDiff(y, sys.Exact(1.0)); err > 1e-6 {
		t.Fatalf("adaptive EPOL error %g too large", err)
	}
}

func TestBruss2DEvalConsistency(t *testing.T) {
	sys := NewBruss2D(6)
	t0, y0 := sys.Initial()
	full := EvalAll(sys, t0, y0)
	// Blockwise evaluation must agree with the full evaluation.
	n := sys.Dim()
	for _, blocks := range []int{2, 3, 7} {
		for b := 0; b < blocks; b++ {
			lo := b * n / blocks
			hi := (b + 1) * n / blocks
			out := make([]float64, hi-lo)
			sys.Eval(t0, y0, lo, hi, out)
			for i, v := range out {
				if v != full[lo+i] {
					t.Fatalf("block eval differs at %d: %g vs %g", lo+i, v, full[lo+i])
				}
			}
		}
	}
}

func TestSchroedEvalConsistency(t *testing.T) {
	sys := NewSchroed(40)
	t0, y0 := sys.Initial()
	full := EvalAll(sys, t0, y0)
	out := make([]float64, 13)
	sys.Eval(t0, y0, 11, 24, out)
	for i, v := range out {
		if v != full[11+i] {
			t.Fatalf("block eval differs at %d", 11+i)
		}
	}
}

func TestBruss2DIntegratesStably(t *testing.T) {
	sys := NewBruss2D(8)
	t0, y0 := sys.Initial()
	y := IntegrateFixed(NewEPOL(4), sys, t0, y0, 0.01, 20)
	for i, v := range y {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 100 {
			t.Fatalf("BRUSS2D diverged at component %d: %g", i, v)
		}
	}
}

func TestJacobianLinearSystem(t *testing.T) {
	sys := NewLinearDecay(5)
	t0, y0 := sys.Initial()
	jac := Jacobian(sys, t0, y0)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := 0.0
			if i == j {
				want = -sys.Lambdas[i]
			}
			if math.Abs(jac[i][j]-want) > 1e-5 {
				t.Fatalf("J[%d][%d] = %g, want %g", i, j, jac[i][j], want)
			}
		}
	}
}

func TestSolveDense(t *testing.T) {
	a := [][]float64{{2, 1, 0}, {1, 3, 1}, {0, 1, 4}}
	// x = (1, 2, 3) => b = (4, 10, 14)
	b := []float64{4, 10, 14}
	x := solveDense(a, b)
	for i, want := range []float64{1, 2, 3} {
		if math.Abs(x[i]-want) > 1e-12 {
			t.Fatalf("x = %v", x)
		}
	}
}
