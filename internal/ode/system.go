// Package ode implements the ordinary differential equation solvers of the
// paper's evaluation (Section 4.2): the explicit extrapolation method
// (EPOL), the Iterated Runge-Kutta method (IRK), the Diagonal-Implicitly
// Iterated Runge-Kutta method (DIIRK), and the Parallel Adams-Bashforth
// (PAB) and Parallel Adams-Bashforth-Moulton (PABM) methods, together with
// the two ODE systems used as workloads: the sparse BRUSS2D system (spatial
// discretization of the 2D Brusselator equation) and the dense SCHROED
// system (Galerkin approximation of a Schrödinger-Poisson system).
//
// Every method exists in three forms: a sequential reference
// implementation, parallel SPMD implementations (data-parallel and
// task-parallel program versions, executed by the goroutine runtime and
// instrumented to measure the collective-operation counts of Table 1), and
// an M-task graph builder with cost annotations for the scheduling and
// mapping experiments.
package ode

import (
	"fmt"
	"math"
)

// System is a right-hand-side function f of an ODE IVP y' = f(t, y),
// y(t0) = y0, evaluable per component block so that the evaluation can be
// distributed over cores.
type System interface {
	// Name identifies the system.
	Name() string
	// Dim returns the system size n.
	Dim() int
	// Eval writes f(t, y)[lo:hi] into out (len(out) == hi-lo). y is the
	// full solution vector.
	Eval(t float64, y []float64, lo, hi int, out []float64)
	// Initial returns t0 and a fresh copy of y0.
	Initial() (float64, []float64)
	// EvalFlops returns the approximate floating-point operations to
	// evaluate one component of f (the paper's teval(f) in work units);
	// used by the cost-model graph builders.
	EvalFlops() float64
}

// EvalAll evaluates the full right-hand side into a fresh vector.
func EvalAll(s System, t float64, y []float64) []float64 {
	out := make([]float64, s.Dim())
	s.Eval(t, y, 0, s.Dim(), out)
	return out
}

// --- BRUSS2D: sparse system ---

// Bruss2D is the spatial discretization of the 2D Brusselator
// reaction-diffusion equation on an NxN grid with Neumann-like boundary
// handling: a sparse system of dimension 2*N*N whose evaluation time grows
// linearly with the system size.
//
//	du/dt = B + u^2 v - (A+1) u + alpha (u_xx + u_yy)
//	dv/dt = A u - u^2 v     + alpha (v_xx + v_yy)
//
// with the standard parameters A = 3.4, B = 1 of the paper's BRUSS2D
// reference and diffusion alpha/h^2 from grid spacing h = 1/(N-1).
type Bruss2D struct {
	N     int
	Alpha float64
}

// NewBruss2D returns the Brusselator system on an NxN grid.
func NewBruss2D(n int) *Bruss2D {
	if n < 2 {
		panic(fmt.Sprintf("ode: BRUSS2D grid %d too small", n))
	}
	return &Bruss2D{N: n, Alpha: 2e-3}
}

// Name implements System.
func (b *Bruss2D) Name() string { return fmt.Sprintf("BRUSS2D(N=%d)", b.N) }

// Dim implements System.
func (b *Bruss2D) Dim() int { return 2 * b.N * b.N }

// EvalFlops implements System: a 5-point stencil plus reaction terms.
func (b *Bruss2D) EvalFlops() float64 { return 14 }

// Initial implements System: the standard smooth initial profile.
func (b *Bruss2D) Initial() (float64, []float64) {
	n := b.N
	y := make([]float64, 2*n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x := float64(i) / float64(n-1)
			z := float64(j) / float64(n-1)
			y[i*n+j] = 0.5 + z     // u
			y[n*n+i*n+j] = 1 + 5*x // v
		}
	}
	return 0, y
}

// Eval implements System. Component layout: u occupies [0, N*N), v
// occupies [N*N, 2*N*N), both row-major.
func (b *Bruss2D) Eval(t float64, y []float64, lo, hi int, out []float64) {
	const A, B = 3.4, 1.0
	n := b.N
	nn := n * n
	h := 1.0 / float64(n-1)
	d := b.Alpha / (h * h)
	lap := func(base, i, j int) float64 {
		c := y[base+i*n+j]
		up, down, left, right := c, c, c, c
		if i > 0 {
			up = y[base+(i-1)*n+j]
		}
		if i < n-1 {
			down = y[base+(i+1)*n+j]
		}
		if j > 0 {
			left = y[base+i*n+j-1]
		}
		if j < n-1 {
			right = y[base+i*n+j+1]
		}
		return up + down + left + right - 4*c
	}
	for k := lo; k < hi; k++ {
		if k < nn {
			i, j := k/n, k%n
			u := y[k]
			v := y[nn+k]
			out[k-lo] = B + u*u*v - (A+1)*u + d*lap(0, i, j)
		} else {
			kk := k - nn
			i, j := kk/n, kk%n
			u := y[kk]
			v := y[k]
			out[k-lo] = A*u - u*u*v + d*lap(nn, i, j)
		}
	}
}

// --- SCHROED: dense system ---

// Schroed is a dense synthetic stand-in for the Galerkin approximation of
// a Schrödinger-Poisson system: every component of f couples to every
// solution component through a smooth kernel, so the evaluation time of
// the full system grows quadratically with the system size, as the paper
// states for its dense SCHROED workload.
//
//	f_i(t, y) = -lambda_i y_i + (1/n) sum_j K(i,j) y_j,
//	K(i,j) = 1 / (1 + |i-j|)
type Schroed struct {
	N int
}

// NewSchroed returns the dense system of dimension n.
func NewSchroed(n int) *Schroed {
	if n < 1 {
		panic(fmt.Sprintf("ode: SCHROED size %d too small", n))
	}
	return &Schroed{N: n}
}

// Name implements System.
func (s *Schroed) Name() string { return fmt.Sprintf("SCHROED(n=%d)", s.N) }

// Dim implements System.
func (s *Schroed) Dim() int { return s.N }

// EvalFlops implements System: each component touches all n components.
func (s *Schroed) EvalFlops() float64 { return 4 * float64(s.N) }

// Initial implements System.
func (s *Schroed) Initial() (float64, []float64) {
	y := make([]float64, s.N)
	for i := range y {
		y[i] = 1 + 0.1*math.Sin(float64(i))
	}
	return 0, y
}

// Eval implements System.
func (s *Schroed) Eval(t float64, y []float64, lo, hi int, out []float64) {
	n := s.N
	inv := 1.0 / float64(n)
	for i := lo; i < hi; i++ {
		lambda := 0.5 + 0.5*float64(i%7)/7.0
		sum := 0.0
		for j := 0; j < n; j++ {
			diff := i - j
			if diff < 0 {
				diff = -diff
			}
			sum += y[j] / float64(1+diff)
		}
		out[i-lo] = -lambda*y[i] + inv*sum
	}
}

// --- linear test system with exact solution ---

// LinearDecay is the decoupled linear system y_i' = -lambda_i * y_i with
// the exact solution y_i(t) = y_i(0) * exp(-lambda_i t). It is used by the
// convergence-order tests of the solvers.
type LinearDecay struct {
	Lambdas []float64
	Y0      []float64
}

// NewLinearDecay returns a linear system with n components and spread-out
// decay rates.
func NewLinearDecay(n int) *LinearDecay {
	l := &LinearDecay{Lambdas: make([]float64, n), Y0: make([]float64, n)}
	for i := 0; i < n; i++ {
		l.Lambdas[i] = 0.2 + float64(i%5)*0.3
		l.Y0[i] = 1 + float64(i%3)
	}
	return l
}

// Name implements System.
func (l *LinearDecay) Name() string { return fmt.Sprintf("LINEAR(n=%d)", len(l.Y0)) }

// Dim implements System.
func (l *LinearDecay) Dim() int { return len(l.Y0) }

// EvalFlops implements System.
func (l *LinearDecay) EvalFlops() float64 { return 2 }

// Initial implements System.
func (l *LinearDecay) Initial() (float64, []float64) {
	y := make([]float64, len(l.Y0))
	copy(y, l.Y0)
	return 0, y
}

// Eval implements System.
func (l *LinearDecay) Eval(t float64, y []float64, lo, hi int, out []float64) {
	for i := lo; i < hi; i++ {
		out[i-lo] = -l.Lambdas[i] * y[i]
	}
}

// Exact returns the exact solution at time t.
func (l *LinearDecay) Exact(t float64) []float64 {
	y := make([]float64, len(l.Y0))
	for i := range y {
		y[i] = l.Y0[i] * math.Exp(-l.Lambdas[i]*t)
	}
	return y
}

// MaxAbsDiff returns the maximum componentwise absolute difference of two
// equally sized vectors.
func MaxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}
