package ode

// Table 1 of the paper lists the collective communication operations
// executed for one time step of the ODE solvers in the data-parallel (dp)
// and task-parallel (tp) program versions. The functions below return the
// corresponding counts of this reproduction's implementations so the
// instrumented runtime can be checked against them; TableRow records both
// the paper's formula and ours, with any accounting difference, for
// EXPERIMENTS.md.

// OpCounts are per-time-step collective counts. Group and orthogonal
// counts are totals over all groups/sets; PerGroup* are the per-group
// numbers Table 1 reports ("the communication operations for one of the
// disjoint groups of cores are listed").
type OpCounts struct {
	GlobalTag, GlobalTbc int
	GroupTag, GroupTbc   int
	OrthoTag             int
	Redist               int
}

// EPOLCountsDP returns the per-step counts of the data-parallel EPOL
// version: R(R+1)/2 global multi-broadcasts (paper: identical).
func EPOLCountsDP(r int) OpCounts {
	return OpCounts{GlobalTag: r * (r + 1) / 2}
}

// EPOLCountsTP returns the per-step counts of the task-parallel EPOL
// version with g groups: R(R+1)/2 group multi-broadcasts in total (for the
// paper's g = R/2 pairing that is (R+1) per group, matching Table 1), one
// global broadcast for the step decision, and one re-distribution per
// orthogonal position (q sets), which the paper accounts separately.
func EPOLCountsTP(r, g, q int) OpCounts {
	return OpCounts{
		GroupTag:  r * (r + 1) / 2,
		GlobalTbc: 1,
		Redist:    q,
	}
}

// IRKCountsDP returns the per-step counts of the data-parallel IRK
// version: (K*m + 1) global multi-broadcasts (paper: identical).
func IRKCountsDP(k, m int) OpCounts {
	return OpCounts{GlobalTag: k*m + 1}
}

// IRKCountsTP returns the per-step counts of the task-parallel IRK
// version with K groups of q cores: 1 global multi-broadcast, m group
// multi-broadcasts per group (paper: identical) and m orthogonal
// multi-broadcasts per orthogonal set (paper: identical per set).
func IRKCountsTP(k, m, q int) OpCounts {
	return OpCounts{
		GlobalTag: 1,
		GroupTag:  m * k,
		OrthoTag:  m * q,
	}
}

// DIIRKCountsDP returns the per-step counts of the data-parallel DIIRK
// version given the iteration count i of the step: 1 global
// multi-broadcast plus, per iteration and stage, n pivot broadcasts of the
// row-distributed Gauss-Jordan solve and one multi-broadcast replicating
// the stage update. The paper's row is 1*Tag + K*(n-1)*I*Tbc: the
// difference (n vs n-1 broadcasts, and the extra K*I*Tag for the update
// replication) is an accounting difference of the linear solver variant,
// recorded in EXPERIMENTS.md.
func DIIRKCountsDP(k, n, i int) OpCounts {
	return OpCounts{
		GlobalTag: 1 + k*i,
		GlobalTbc: k * n * i,
	}
}

// DIIRKCountsTP returns the per-step counts of the task-parallel DIIRK
// version with K groups of q cores and iteration count i: 1 global
// multi-broadcast, per group n*i pivot broadcasts (paper: (n-1)*I) plus i
// argument-assembly multi-broadcasts, and i orthogonal multi-broadcasts
// per set (the paper's ortho column for DIIRK, with I iterations).
func DIIRKCountsTP(k, n, q, i int) OpCounts {
	return OpCounts{
		GlobalTag: 1,
		GroupTbc:  k * n * i,
		GroupTag:  k * i,
		OrthoTag:  q * i,
	}
}

// PABCountsDP returns the per-step counts of the data-parallel PAB (m=0)
// or PABM (m>0) version: K*(1+m) global multi-broadcasts (paper:
// identical; K*Tag for PAB, K(1+m)*Tag for PABM).
func PABCountsDP(k, m int) OpCounts {
	return OpCounts{GlobalTag: k * (1 + m)}
}

// PABCountsTP returns the per-step counts of the task-parallel PAB/PABM
// version with K groups of q cores: (1+m) group multi-broadcasts per group
// and one orthogonal multi-broadcast per set (paper: identical).
func PABCountsTP(k, m, q int) OpCounts {
	return OpCounts{
		GroupTag: k * (1 + m),
		OrthoTag: q,
	}
}

// TableRow describes one row of Table 1: the paper's formula and this
// implementation's counts, for the EXPERIMENTS.md record.
type TableRow struct {
	Benchmark string
	Paper     string // the paper's formula
	Ours      string // this implementation's formula
	Deviation string // accounting difference, if any
}

// Table1 returns the full table of rows for the report.
func Table1() []TableRow {
	return []TableRow{
		{"EPOL(dp)", "global: R(R+1)/2 Tag", "global: R(R+1)/2 Tag", ""},
		{"EPOL(tp)", "global: 1 Tbc; group: (R+1) Tag", "global: 1 Tbc; group: (R+1) Tag per group (g=R/2)", "re-distributions counted separately (OpRedist)"},
		{"IRK(dp)", "global: (K m+1) Tag", "global: (K m+1) Tag", ""},
		{"IRK(tp)", "global: 1 Tag; group: m Tag; ortho: m Tag", "global: 1 Tag; group: m Tag per group; ortho: m Tag per set", ""},
		{"DIIRK(dp)", "global: 1 Tag + K(n-1)I Tbc", "global: (1+K I) Tag + K n I Tbc", "Gauss-Jordan uses n pivot broadcasts (paper's GE: n-1); stage update replicated with one Tag per solve"},
		{"DIIRK(tp)", "global: 1 Tag; group: (n-1)I Tbc; ortho: I Tag", "global: 1 Tag; group: n I Tbc + I Tag per group; ortho: I Tag per set", "same solver accounting difference"},
		{"PAB(dp)", "global: K Tag", "global: K Tag", ""},
		{"PAB(tp)", "group: 1 Tag; ortho: 1 Tag", "group: 1 Tag per group; ortho: 1 Tag per set", ""},
		{"PABM(dp)", "global: K(1+m) Tag", "global: K(1+m) Tag", ""},
		{"PABM(tp)", "group: (1+m) Tag; ortho: 1 Tag", "group: (1+m) Tag per group; ortho: 1 Tag per set", ""},
	}
}
