package plan

import (
	"container/list"
	"sync"

	"mtask/internal/core"
)

// Key identifies a planning request in the schedule cache: the graph and
// machine fingerprints plus every knob that changes the resulting mapping.
type Key struct {
	Graph    uint64
	Machine  uint64
	Strategy string
	P        int

	// Cost model configuration (the model's machine may differ from the
	// mapping machine when a caller overrides it).
	ModelMachine   uint64
	Hybrid         bool
	ThreadsPerRank int

	// Scheduler knobs.
	ForceGroups          int
	MinGroups, MaxGroups int
	NoChainContraction   bool
	NoAdjustment         bool
	RoundRobin           bool
}

// hash folds every key field into one 64-bit FNV-1a value; the sharded
// cache and the singleflight table both use it to pick a shard, so equal
// keys always land on the same shard regardless of which side looks first.
func (k Key) hash() uint64 {
	h := uint64(fnvOffset)
	h = mix(h, k.Graph)
	h = mix(h, k.Machine)
	h = mixString(h, k.Strategy)
	h = mix(h, uint64(k.P))
	h = mix(h, k.ModelMachine)
	var flags uint64
	if k.Hybrid {
		flags |= 1
	}
	if k.NoChainContraction {
		flags |= 2
	}
	if k.NoAdjustment {
		flags |= 4
	}
	if k.RoundRobin {
		flags |= 8
	}
	h = mix(h, flags)
	h = mix(h, uint64(k.ThreadsPerRank))
	h = mix(h, uint64(k.ForceGroups))
	h = mix(h, uint64(k.MinGroups)<<32|uint64(uint32(k.MaxGroups)))
	return h
}

// Cache is the schedule cache seam of the Planner: a thread-safe map from
// planning request keys to finished mappings. Implementations must be safe
// for concurrent use; cached mappings are shared between callers and must
// be treated as immutable (every consumer in this repository only reads
// them).
type Cache interface {
	// Get returns the cached mapping for the key, marking it most
	// recently used.
	Get(k Key) (*core.Mapping, bool)
	// Peek is Get without updating recency or the hit/miss counters;
	// the planner's singleflight leader uses it to close the race
	// between a miss and a concurrent leader's publish without skewing
	// the traffic statistics.
	Peek(k Key) (*core.Mapping, bool)
	// Add inserts a mapping, evicting older entries as needed.
	Add(k Key, mp *core.Mapping)
	// Len returns the number of cached mappings.
	Len() int
	// Stats returns the accumulated hit and miss counts.
	Stats() (hits, misses uint64)
	// Purge empties the cache (counters are kept).
	Purge()
}

// lruShard is one single-mutex LRU shard. It is the pre-sharding Cache
// implementation verbatim; ShardedCache composes N of them so concurrent
// requests for different fingerprints do not serialize on one lock.
type lruShard struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	entries  map[Key]*list.Element

	hits, misses uint64
}

type cacheEntry struct {
	key Key
	mp  *core.Mapping
}

func (c *lruShard) get(k Key) (*core.Mapping, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).mp, true
}

func (c *lruShard) peek(k Key) (*core.Mapping, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		return nil, false
	}
	return el.Value.(*cacheEntry).mp, true
}

func (c *lruShard) add(k Key, mp *core.Mapping) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*cacheEntry).mp = mp
		c.order.MoveToFront(el)
		return
	}
	c.entries[k] = c.order.PushFront(&cacheEntry{key: k, mp: mp})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

func (c *lruShard) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

func (c *lruShard) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

func (c *lruShard) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.entries = make(map[Key]*list.Element)
}

// DefaultCacheSize is the schedule cache capacity used when none is given.
const DefaultCacheSize = 256

// DefaultShards is the shard count of NewCache. Sixteen shards keep the
// probability of two concurrent hot fingerprints contending on one mutex
// low while the per-shard LRUs stay large enough to be useful.
const DefaultShards = 16

// ShardedCache is the standard Cache: capacity is split over N
// fingerprint-sharded single-mutex LRUs, so concurrent requests only
// contend when their keys hash to the same shard. The zero value is
// unusable; construct with NewCache or NewShardedCache.
type ShardedCache struct {
	shards []lruShard
	mask   uint64
}

// NewCache returns the standard sharded LRU schedule cache holding up to
// capacity mappings across DefaultShards shards (capacity < 1 falls back
// to DefaultCacheSize).
func NewCache(capacity int) *ShardedCache {
	return NewShardedCache(capacity, DefaultShards)
}

// NewShardedCache returns a sharded LRU cache with the given total
// capacity and shard count. The shard count is rounded up to a power of
// two and capped so every shard holds at least one mapping; shards < 1
// falls back to DefaultShards, capacity < 1 to DefaultCacheSize. The total
// capacity is split evenly (rounded up), so the cache holds at least
// capacity mappings before any shard evicts.
func NewShardedCache(capacity, shards int) *ShardedCache {
	if capacity < 1 {
		capacity = DefaultCacheSize
	}
	if shards < 1 {
		shards = DefaultShards
	}
	if shards > capacity {
		shards = capacity
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	per := (capacity + n - 1) / n
	c := &ShardedCache{shards: make([]lruShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i].capacity = per
		c.shards[i].order = list.New()
		c.shards[i].entries = make(map[Key]*list.Element)
	}
	return c
}

// Shards returns the shard count.
func (c *ShardedCache) Shards() int { return len(c.shards) }

func (c *ShardedCache) shardFor(k Key) *lruShard {
	return &c.shards[k.hash()&c.mask]
}

// ShardIndex returns the shard the key lives on (for tests and metrics).
func (c *ShardedCache) ShardIndex(k Key) int { return int(k.hash() & c.mask) }

// Get returns the cached mapping for the key, marking it most recently
// used within its shard.
func (c *ShardedCache) Get(k Key) (*core.Mapping, bool) {
	return c.shardFor(k).get(k)
}

// Peek returns the cached mapping without updating recency or counters.
func (c *ShardedCache) Peek(k Key) (*core.Mapping, bool) {
	return c.shardFor(k).peek(k)
}

// Add inserts a mapping, evicting the least recently used entry of the
// key's shard when that shard is full.
func (c *ShardedCache) Add(k Key, mp *core.Mapping) {
	c.shardFor(k).add(k, mp)
}

// Len returns the number of cached mappings over all shards.
func (c *ShardedCache) Len() int {
	n := 0
	for i := range c.shards {
		n += c.shards[i].len()
	}
	return n
}

// Stats returns the hit and miss counts accumulated over all shards.
func (c *ShardedCache) Stats() (hits, misses uint64) {
	for i := range c.shards {
		h, m := c.shards[i].stats()
		hits += h
		misses += m
	}
	return hits, misses
}

// ShardStats returns the per-shard (entries, hits, misses) triples, index
// aligned with ShardIndex — the raw material of the serve-layer cache
// metrics.
func (c *ShardedCache) ShardStats() []ShardStat {
	out := make([]ShardStat, len(c.shards))
	for i := range c.shards {
		out[i].Len = c.shards[i].len()
		out[i].Hits, out[i].Misses = c.shards[i].stats()
	}
	return out
}

// ShardStat is one shard's size and traffic counters.
type ShardStat struct {
	Len          int
	Hits, Misses uint64
}

// Purge empties every shard (counters are kept).
func (c *ShardedCache) Purge() {
	for i := range c.shards {
		c.shards[i].purge()
	}
}
