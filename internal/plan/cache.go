package plan

import (
	"container/list"
	"sync"

	"mtask/internal/core"
)

// Key identifies a planning request in the schedule cache: the graph and
// machine fingerprints plus every knob that changes the resulting mapping.
type Key struct {
	Graph    uint64
	Machine  uint64
	Strategy string
	P        int

	// Cost model configuration (the model's machine may differ from the
	// mapping machine when a caller overrides it).
	ModelMachine   uint64
	Hybrid         bool
	ThreadsPerRank int

	// Scheduler knobs.
	ForceGroups          int
	MinGroups, MaxGroups int
	NoChainContraction   bool
	NoAdjustment         bool
	RoundRobin           bool
}

// Cache is a thread-safe LRU cache of finished mappings, keyed by the full
// planning request. Heavy traffic repeatedly planning the same program on
// the same partition — the production case — is served from here without
// re-running the group-count search.
//
// Cached mappings are shared between callers and must be treated as
// immutable (every consumer in this repository only reads them).
type Cache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	entries  map[Key]*list.Element

	hits, misses uint64
}

type cacheEntry struct {
	key Key
	mp  *core.Mapping
}

// DefaultCacheSize is the schedule cache capacity used when none is given.
const DefaultCacheSize = 256

// NewCache returns an LRU schedule cache holding up to capacity mappings
// (capacity < 1 falls back to DefaultCacheSize).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = DefaultCacheSize
	}
	return &Cache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[Key]*list.Element),
	}
}

// Get returns the cached mapping for the key, marking it most recently
// used.
func (c *Cache) Get(k Key) (*core.Mapping, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).mp, true
}

// Add inserts a mapping, evicting the least recently used entry when the
// cache is full.
func (c *Cache) Add(k Key, mp *core.Mapping) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*cacheEntry).mp = mp
		c.order.MoveToFront(el)
		return
	}
	c.entries[k] = c.order.PushFront(&cacheEntry{key: k, mp: mp})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached mappings.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns the accumulated hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Purge empties the cache (counters are kept).
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.entries = make(map[Key]*list.Element)
}
