package plan

import (
	"math"

	"mtask/internal/arch"
	"mtask/internal/graph"
)

// Fingerprints identify a planning request for the schedule cache. They
// hash every input the combined scheduling and mapping result depends on:
// the complete graph structure (tasks with all cost-relevant fields,
// edges with payloads, recursively including composed bodies) and the
// complete machine description (shape, core rate, link performance,
// hybrid parameters). FNV-1a over 64 bits keeps the collision probability
// negligible for realistic cache sizes, and a collision can only ever
// serve a structurally valid schedule of a different request — never
// corrupt one.

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func mix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime
		x >>= 8
	}
	return h
}

func mixString(h uint64, s string) uint64 {
	h = mix(h, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func mixFloat(h uint64, f float64) uint64 {
	return mix(h, math.Float64bits(f))
}

// GraphFingerprint returns a 64-bit fingerprint of an M-task graph
// covering its name, every task's cost-relevant fields (including the
// bodies of composed nodes, recursively) and every edge.
func GraphFingerprint(g *graph.Graph) uint64 {
	return graphFP(fnvOffset, g)
}

func graphFP(h uint64, g *graph.Graph) uint64 {
	h = mixString(h, g.Name)
	h = mix(h, uint64(g.Len()))
	for _, t := range g.Tasks() {
		h = mix(h, uint64(t.Kind))
		h = mixFloat(h, t.Work)
		h = mix(h, uint64(t.CommBytes)<<16|uint64(t.CommCount))
		h = mix(h, uint64(t.BcastBytes)<<16|uint64(t.BcastCount))
		h = mix(h, uint64(t.OutBytes))
		h = mix(h, uint64(t.MaxWidth))
		if t.Sub != nil {
			h = graphFP(h, t.Sub)
		}
	}
	for _, e := range g.Edges() {
		h = mix(h, uint64(e.From)<<32|uint64(e.To))
		h = mix(h, uint64(e.Bytes))
	}
	return h
}

// LayerFingerprint returns a 64-bit fingerprint of one layer of a
// (contracted) graph covering exactly the inputs the layer's group-count
// search depends on: the layer width and, per task in layer order, every
// task field the symbolic cost functions read (plus composed bodies).
// OutBytes is deliberately excluded — it prices edges, which the layer
// search never sees — so a chain exit whose payload changed still
// fingerprints equal and its layer schedule can be reused. Together with
// an equal family key (machine, strategy, P, model, scheduler knobs) an
// equal layer fingerprint implies Algorithm 1 produces positionally
// identical layer schedules.
func LayerFingerprint(g *graph.Graph, layer graph.Layer) uint64 {
	h := uint64(fnvOffset)
	h = mix(h, uint64(len(layer)))
	for _, id := range layer {
		t := g.Task(id)
		h = mix(h, uint64(t.Kind))
		h = mixFloat(h, t.Work)
		h = mix(h, uint64(t.CommBytes)<<16|uint64(t.CommCount))
		h = mix(h, uint64(t.BcastBytes)<<16|uint64(t.BcastCount))
		h = mix(h, uint64(t.MaxWidth))
		if t.Sub != nil {
			h = graphFP(h, t.Sub)
		}
	}
	return h
}

// MachineFingerprint returns a 64-bit fingerprint of a machine
// description covering its name, shape, core rate, per-level link
// performance and hybrid execution parameters.
func MachineFingerprint(m *arch.Machine) uint64 {
	h := uint64(fnvOffset)
	h = mixString(h, m.Name)
	h = mix(h, uint64(m.Nodes))
	h = mix(h, uint64(m.ProcsPerNode)<<32|uint64(m.CoresPerProc))
	h = mixFloat(h, m.CoreGFlops)
	for l := arch.LevelProcessor; l <= arch.LevelNetwork; l++ {
		h = mixFloat(h, m.Links[l].Latency)
		h = mixFloat(h, m.Links[l].Bandwidth)
	}
	h = mixFloat(h, m.HybridForkJoin)
	if m.SharedMemoryThreads {
		h = mix(h, 1)
	}
	return h
}
