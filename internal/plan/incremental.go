package plan

import (
	"sync"

	"mtask/internal/core"
	"mtask/internal/graph"
)

// Incremental replanning: solver time-step unrolling produces request
// graphs that extend or perturb an earlier graph by a handful of nodes,
// which misses the whole-graph schedule cache even though almost every
// layer of the contracted graph is unchanged. The planner therefore keeps
// a second, layer-granular index: for every *family* of requests (same
// machine, strategy, core count, cost model and scheduler knobs — a cache
// Key minus its graph fingerprint) it remembers the searched schedule of
// every layer it has planned, keyed by LayerFingerprint. A later cold plan
// in the same family installs a core.Scheduler.Reuse hook that adopts the
// remembered schedule for every layer whose fingerprint matches and
// searches only the genuinely new or perturbed layers.
//
// Reuse is sound because a layer's search result is a pure function of the
// family key and the fingerprinted per-task cost fields: tasks within a
// layer are listed in ascending id order, so task *position* determines
// the LPT order and all tie-breaking, and the remembered schedule — stored
// positionally — remaps onto the new layer's task ids bit-identically to
// what a fresh search would produce. Mapping always runs fresh on the
// patched schedule, so the resulting core.Mapping is byte-for-byte the
// cold one (the equivalence is enforced by TestIncrementalEquivalence).

// maxFamilies bounds the number of distinct request families remembered;
// maxFamilyLayers bounds the remembered layer schedules per family. Both
// evict in insertion order — the index is a performance hint, never a
// correctness dependency.
const (
	maxFamilies     = 64
	maxFamilyLayers = 16384
)

// familyIndex is the planner's layer-granular schedule memory.
type familyIndex struct {
	mu    sync.Mutex
	m     map[uint64]*family
	order []uint64
}

// family holds the remembered layer schedules of one request family.
type family struct {
	mu     sync.Mutex
	layers map[uint64]*layerTemplate
	order  []uint64
}

// layerTemplate is one remembered layer schedule in positional form:
// groups hold indices into the (ascending-id) layer task list rather than
// task ids, so the template transfers between graphs whose layers match by
// fingerprint but differ in task numbering. sizes and time are the final
// (post-adjustment) values of the remembered search.
type layerTemplate struct {
	width  int
	groups [][]int32
	sizes  []int
	time   float64
}

// get returns the family for the key, creating it if needed.
func (fi *familyIndex) get(key uint64) *family {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if fi.m == nil {
		fi.m = make(map[uint64]*family)
	}
	f, ok := fi.m[key]
	if !ok {
		f = &family{layers: make(map[uint64]*layerTemplate)}
		fi.m[key] = f
		fi.order = append(fi.order, key)
		for len(fi.order) > maxFamilies {
			delete(fi.m, fi.order[0])
			fi.order = fi.order[1:]
		}
	}
	return f
}

// purge drops every remembered family.
func (fi *familyIndex) purge() {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.m = nil
	fi.order = nil
}

// lookup returns the remembered template for a layer fingerprint, or nil.
func (f *family) lookup(fp uint64) *layerTemplate {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.layers[fp]
}

// remember stores a template for a layer fingerprint if none is present.
func (f *family) remember(fp uint64, tpl *layerTemplate) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.layers[fp]; ok {
		return
	}
	f.layers[fp] = tpl
	f.order = append(f.order, fp)
	for len(f.order) > maxFamilyLayers {
		delete(f.layers, f.order[0])
		f.order = f.order[1:]
	}
}

// incrementalState threads one cold plan's incremental bookkeeping: the
// Reuse hook it installs on the scheduler, the per-layer fingerprints it
// computed (in layer order, aligned with the schedule's layers), and the
// reuse counts that become plan.Info and the obs counters.
type incrementalState struct {
	family  *family
	fps     []uint64
	reused  int
	patched int

	// idSlab and grpSlab back the task lists and group headers of every
	// adopted layer schedule of this plan, allocated once on the first hit
	// (each contracted task sits in at most one layer, and a layer has at
	// most one group per task, so g.Len() bounds both). Windows hold their
	// own references, so an off-slab growth would merely cost an extra
	// allocation, never correctness.
	idSlab  []graph.TaskID
	grpSlab [][]graph.TaskID
}

// reuse is the core.Scheduler.Reuse hook: fingerprint the layer, adopt the
// remembered schedule on a hit, fall through to the search on a miss. The
// scheduler calls it sequentially in layer order on both search paths, so
// appending to fps needs no locking.
func (st *incrementalState) reuse(g *graph.Graph, _ int, layer graph.Layer) *core.LayerSchedule {
	fp := LayerFingerprint(g, layer)
	st.fps = append(st.fps, fp)
	tpl := st.family.lookup(fp)
	if tpl == nil || tpl.width != len(layer) {
		st.patched++
		return nil
	}
	st.reused++
	if st.idSlab == nil {
		st.idSlab = make([]graph.TaskID, 0, g.Len())
		st.grpSlab = make([][]graph.TaskID, 0, g.Len())
	}
	idStart := len(st.idSlab)
	st.idSlab = append(st.idSlab, layer...)
	backing := st.idSlab[idStart:len(st.idSlab):len(st.idSlab)]
	grpStart := len(st.grpSlab)
	for range tpl.groups {
		st.grpSlab = append(st.grpSlab, nil)
	}
	groups := st.grpSlab[grpStart:len(st.grpSlab):len(st.grpSlab)]
	off := 0
	for gi, ps := range tpl.groups {
		grp := backing[off : off+len(ps) : off+len(ps)]
		for j, p := range ps {
			grp[j] = layer[p]
		}
		groups[gi] = grp
		off += len(ps)
	}
	return &core.LayerSchedule{Layer: layer, Groups: groups, Sizes: tpl.sizes, Time: tpl.time}
}

// record remembers the (post-adjustment) schedule of every freshly
// searched layer, converting task ids to layer positions. Layer task lists
// are in ascending id order, so the position of an id is its binary-search
// index.
func (st *incrementalState) record(layers []*core.LayerSchedule) {
	for li, ls := range layers {
		if li >= len(st.fps) {
			return // defensive: hook not consulted for this layer
		}
		fp := st.fps[li]
		if st.family.lookup(fp) != nil {
			continue
		}
		tpl := &layerTemplate{
			width:  len(ls.Layer),
			groups: make([][]int32, len(ls.Groups)),
			sizes:  ls.Sizes,
			time:   ls.Time,
		}
		slab := make([]int32, 0, len(ls.Layer))
		for gi, tasks := range ls.Groups {
			start := len(slab)
			for _, id := range tasks {
				slab = append(slab, int32(positionOf(ls.Layer, id)))
			}
			tpl.groups[gi] = slab[start:len(slab):len(slab)]
		}
		st.family.remember(fp, tpl)
	}
}

// positionOf binary-searches the ascending layer task list for id.
func positionOf(layer graph.Layer, id graph.TaskID) int {
	lo, hi := 0, len(layer)
	for lo < hi {
		mid := (lo + hi) / 2
		if layer[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// familyKey folds every Key field except the graph fingerprint into the
// 64-bit family identifier: requests in one family differ only in their
// graphs, which is exactly the precondition for layer-granular reuse.
func (k Key) familyKey() uint64 {
	g := k
	g.Graph = 0
	return g.hash()
}
