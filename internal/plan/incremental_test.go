package plan

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"mtask/internal/arch"
	"mtask/internal/core"
	"mtask/internal/graph"
	"mtask/internal/ode"
)

// requireMappingsBitwise fails unless the two mappings are bit-for-bit
// identical: same layering, same group partitions and sizes, same float
// bits of every symbolic time, same contraction and the same physical core
// assignment.
func requireMappingsBitwise(t *testing.T, label string, a, b *core.Mapping) {
	t.Helper()
	if math.Float64bits(a.Schedule.Time) != math.Float64bits(b.Schedule.Time) {
		t.Fatalf("%s: symbolic makespan differs: %v vs %v", label, a.Schedule.Time, b.Schedule.Time)
	}
	if !reflect.DeepEqual(a.Schedule.NodeOf, b.Schedule.NodeOf) {
		t.Fatalf("%s: contraction NodeOf differs", label)
	}
	if len(a.Schedule.Layers) != len(b.Schedule.Layers) {
		t.Fatalf("%s: layer count differs: %d vs %d", label, len(a.Schedule.Layers), len(b.Schedule.Layers))
	}
	for li := range a.Schedule.Layers {
		la, lb := a.Schedule.Layers[li], b.Schedule.Layers[li]
		if math.Float64bits(la.Time) != math.Float64bits(lb.Time) {
			t.Fatalf("%s: layer %d time differs: %v vs %v", label, li, la.Time, lb.Time)
		}
		if !reflect.DeepEqual(la.Layer, lb.Layer) {
			t.Fatalf("%s: layer %d task list differs", label, li)
		}
		if !reflect.DeepEqual(la.Sizes, lb.Sizes) {
			t.Fatalf("%s: layer %d sizes differ: %v vs %v", label, li, la.Sizes, lb.Sizes)
		}
		if len(la.Groups) != len(lb.Groups) {
			t.Fatalf("%s: layer %d group count differs: %d vs %d", label, li, len(la.Groups), len(lb.Groups))
		}
		for gi := range la.Groups {
			if !reflect.DeepEqual(la.Groups[gi], lb.Groups[gi]) {
				t.Fatalf("%s: layer %d group %d differs: %v vs %v",
					label, li, gi, la.Groups[gi], lb.Groups[gi])
			}
		}
	}
	if !reflect.DeepEqual(a.Cores, b.Cores) {
		t.Fatalf("%s: physical core assignment differs", label)
	}
}

// TestIncrementalEquivalence is the acceptance property of incremental
// replanning: over random solver-graph perturbations (time-step extension
// plus random work changes), a plan that reuses layer schedules from the
// family index must be bit-identical — mapping and simulated makespan — to
// a from-scratch cold plan of the same graph.
func TestIncrementalEquivalence(t *testing.T) {
	machine := arch.CHiC().SubsetCores(64)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(42))

	for iter := 0; iter < 8; iter++ {
		p := New()
		// Warm the family index with the base graph.
		base := ode.BuildPABGraph(40000, 600, 8, 2, 6)
		if _, err := p.Plan(ctx, base, machine); err != nil {
			t.Fatal(err)
		}

		// Perturb: extend by 1-2 time steps, then scale the work of a few
		// random tasks (perturbing their layers' fingerprints).
		pg := ode.BuildPABGraph(40000, 600, 8, 2, 7+rng.Intn(2))
		for j, n := 0, rng.Intn(4); j < n; j++ {
			tk := pg.Task(graph.TaskID(rng.Intn(pg.Len())))
			if tk.Kind == graph.KindBasic {
				tk.Work *= 1 + 0.25*rng.Float64()
			}
		}

		var info Info
		par := 1 + 7*(iter%2) // alternate sequential / parallel search
		inc, err := p.Plan(ctx, pg, machine,
			WithoutCache(), WithInfo(&info), WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		if !info.Incremental || info.ReusedLayers == 0 {
			t.Fatalf("iter %d: expected incremental reuse, got %+v", iter, info)
		}

		var coldInfo Info
		cold, err := New().Plan(ctx, pg, machine,
			WithoutCache(), WithoutIncremental(), WithParallelism(1), WithInfo(&coldInfo))
		if err != nil {
			t.Fatal(err)
		}
		if coldInfo.Incremental || coldInfo.ReusedLayers != 0 {
			t.Fatalf("iter %d: WithoutIncremental still reused: %+v", iter, coldInfo)
		}

		requireMappingsBitwise(t, "incremental vs cold", inc, cold)
		if mi, mc := simulatedMakespan(t, inc), simulatedMakespan(t, cold); math.Float64bits(mi) != math.Float64bits(mc) {
			t.Fatalf("iter %d: simulated makespan differs: %v vs %v", iter, mi, mc)
		}
	}
}

// TestIncrementalExtendedStepFastPath checks the headline scenario: a
// solver graph extended by one time step reuses every per-step layer
// already planned and patches only what is genuinely new.
func TestIncrementalExtendedStepFastPath(t *testing.T) {
	machine := arch.CHiC().SubsetCores(64)
	ctx := context.Background()
	p := New()

	if _, err := p.Plan(ctx, ode.BuildPABGraph(40000, 600, 8, 2, 6), machine); err != nil {
		t.Fatal(err)
	}
	var info Info
	if _, err := p.Plan(ctx, ode.BuildPABGraph(40000, 600, 8, 2, 7), machine, WithInfo(&info)); err != nil {
		t.Fatal(err)
	}
	if !info.Cold || !info.Incremental {
		t.Fatalf("extended graph should cold-plan incrementally, got %+v", info)
	}
	if info.ReusedLayers == 0 {
		t.Fatalf("extended graph reused no layers: %+v", info)
	}
	// Every layer of the extended PABM graph repeats a fingerprint the
	// base plan recorded (the extra step's layers match earlier steps),
	// so nothing should need searching.
	if info.PatchedLayers != 0 {
		t.Fatalf("extended graph patched %d layers, want 0 (reused %d)",
			info.PatchedLayers, info.ReusedLayers)
	}
}

// TestFamilyKeySeparation checks that layer reuse never crosses request
// families: the same graph planned on a different core count must not
// adopt the other family's layer schedules.
func TestFamilyKeySeparation(t *testing.T) {
	machine := arch.CHiC().SubsetCores(64)
	ctx := context.Background()
	p := New()
	g := ode.BuildPABGraph(40000, 600, 8, 2, 4)

	if _, err := p.Plan(ctx, g, machine); err != nil {
		t.Fatal(err)
	}
	var info Info
	if _, err := p.Plan(ctx, g, machine, WithCores(32), WithInfo(&info)); err != nil {
		t.Fatal(err)
	}
	if info.Incremental || info.ReusedLayers != 0 {
		t.Fatalf("layer reuse crossed core-count families: %+v", info)
	}
}
