// Package plan implements the concurrent, cache-backed planning engine on
// top of the paper's combined scheduling and mapping (internal/core): a
// Planner turns an M-task graph and a machine description into a physical
// mapping, searching the per-layer group counts of Algorithm 1 on a
// bounded worker pool, memoizing the cost model evaluations, and serving
// repeated requests from a fingerprint-sharded LRU schedule cache keyed by
// graph and machine fingerprints. Concurrent cold plans of the same key
// are coalesced: one request leads the search, the others adopt its
// result (singleflight), so a burst of identical requests costs one
// planner invocation.
//
// The engine is deliberately deterministic: the parallel search breaks
// ties exactly like the sequential loop (smallest group count wins), so a
// Planner produces bit-identical schedules regardless of its parallelism,
// and a cache hit or a coalesced request returns the same mapping a cold
// plan would compute.
package plan

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"mtask/internal/arch"
	"mtask/internal/core"
	"mtask/internal/cost"
	"mtask/internal/graph"
	"mtask/internal/obs"
)

// Options collects the resolved knobs of one planning request. The zero
// value is completed by Defaults; callers normally use Option functions.
type Options struct {
	// Strategy is the mapping strategy (default core.Consecutive).
	Strategy core.Strategy

	// Cores is the number of symbolic cores to schedule on; 0 means all
	// cores of the machine.
	Cores int

	// Model overrides the cost model (default: a plain model of the
	// target machine). The model is not mutated; when memoization is on
	// the planner works on a memoized copy.
	Model *cost.Model

	// Parallelism is the worker count of the group-count search; 0
	// means GOMAXPROCS, 1 forces the sequential search.
	Parallelism int

	// MinGroups/MaxGroups bound the per-layer group-count search
	// (0 = unbounded); ForceGroups pins it (see core.Scheduler).
	MinGroups, MaxGroups, ForceGroups int

	// DisableCache bypasses the planner's schedule cache and the
	// singleflight coalescing (both are keyed by the same fingerprint).
	DisableCache bool

	// DisableMemo turns off cost-model memoization.
	DisableMemo bool

	// DisableIncremental turns off layer-granular schedule reuse for
	// this request: the cold plan searches every layer from scratch and
	// records nothing in the planner's family index. Cold-path
	// benchmarks use it to keep iterations independent.
	DisableIncremental bool

	// Trace, when non-nil, records the planning request on the
	// recorder's control track: a span for the whole request, cache
	// hit/miss counters, the g-search timings of the scheduler, and
	// gauges for cost-model memoization hits/misses. Tracing never
	// alters planning decisions.
	Trace *obs.Recorder

	// Info, when non-nil, is filled with how the request was served;
	// see Info.
	Info *Info

	// ColdPlanHook, when non-nil, runs at the start of every cold plan
	// (inside the singleflight leader, after cache miss and flight
	// acquisition). A non-nil return fails the cold plan with that
	// error; a panic is recovered and converted into an error wrapping
	// ErrPlanPanic. The serving layer's chaos harness uses it to inject
	// slow plans, leaked singleflight leaders, and leader crashes at
	// exactly the point where they hurt.
	ColdPlanHook func(ctx context.Context) error
}

// Info reports how one Plan request was served — the per-request signal
// the serving layer turns into its admission and cache metrics. Exactly
// one of CacheHit, Coalesced and Cold is set on success; all are false on
// error. Incremental refines Cold: the request ran the planning pipeline
// itself but patched a remembered layering instead of searching every
// layer.
type Info struct {
	// CacheHit reports that the mapping came from the schedule cache.
	CacheHit bool
	// Coalesced reports that the request joined a concurrent identical
	// request's cold plan and adopted its result without planning.
	Coalesced bool
	// Cold reports that this request ran scheduling and mapping itself.
	Cold bool
	// Incremental reports that the cold plan reused at least one layer
	// schedule from the planner's family index (layer-granular
	// fingerprint match) and searched only the remaining layers.
	Incremental bool
	// ReusedLayers and PatchedLayers split the layer count of an
	// incremental plan: ReusedLayers were adopted from the family index,
	// PatchedLayers were searched from scratch. Both are zero unless
	// Incremental is set.
	ReusedLayers, PatchedLayers int
	// Degraded reports that the serving layer answered with a stale
	// mapping of the same fingerprint family because the cold plan
	// exceeded its budget; the planner itself never sets it.
	Degraded bool
}

// ErrPlanPanic is wrapped by the error a cold plan returns when
// scheduling or mapping panicked. The panic is recovered inside the
// planner so a crashing singleflight leader finishes its flight instead
// of leaving followers blocked forever; followers whose contexts are
// still live re-elect a fresh leader rather than adopting the poisoned
// flight.
var ErrPlanPanic = errors.New("plan: panic during cold plan")

// Option mutates one planning option.
type Option func(*Options)

// WithStrategy selects the mapping strategy.
func WithStrategy(s core.Strategy) Option { return func(o *Options) { o.Strategy = s } }

// WithCores schedules on p symbolic cores instead of the whole machine.
func WithCores(p int) Option { return func(o *Options) { o.Cores = p } }

// WithCostModel overrides the cost model (e.g. for hybrid MPI+OpenMP
// planning).
func WithCostModel(m *cost.Model) Option { return func(o *Options) { o.Model = m } }

// WithParallelism sets the worker count of the group-count search;
// WithParallelism(1) forces the sequential reference path.
func WithParallelism(n int) Option { return func(o *Options) { o.Parallelism = n } }

// WithGroupBounds bounds the per-layer group-count search to [min, max]
// (0 = unbounded on that side).
func WithGroupBounds(min, max int) Option {
	return func(o *Options) { o.MinGroups, o.MaxGroups = min, max }
}

// WithForceGroups pins the group count of every layer: 1 yields the
// data-parallel schedule, a large value the maximally task-parallel one.
func WithForceGroups(g int) Option { return func(o *Options) { o.ForceGroups = g } }

// WithoutCache bypasses the schedule cache (and with it the singleflight
// coalescing) for this request.
func WithoutCache() Option { return func(o *Options) { o.DisableCache = true } }

// WithoutMemo disables cost-model memoization for this request.
func WithoutMemo() Option { return func(o *Options) { o.DisableMemo = true } }

// WithoutIncremental disables layer-granular schedule reuse for this
// request; see Options.DisableIncremental.
func WithoutIncremental() Option { return func(o *Options) { o.DisableIncremental = true } }

// WithTrace attaches a trace recorder to the planning request; see
// Options.Trace.
func WithTrace(rec *obs.Recorder) Option { return func(o *Options) { o.Trace = rec } }

// WithInfo fills *i with how the request was served (cache hit, coalesced
// or cold); see Info.
func WithInfo(i *Info) Option { return func(o *Options) { o.Info = i } }

// WithColdPlanHook runs fn at the start of every cold plan; see
// Options.ColdPlanHook.
func WithColdPlanHook(fn func(ctx context.Context) error) Option {
	return func(o *Options) { o.ColdPlanHook = fn }
}

// Defaults returns the planner's default options.
func Defaults() Options {
	return Options{Strategy: core.Consecutive{}}
}

// Planner is a concurrent, cache-backed scheduling engine. A Planner is
// safe for concurrent use; all requests share its schedule cache and its
// singleflight table.
type Planner struct {
	base     Options
	cache    Cache
	flights  flightGroup
	families familyIndex
}

// New returns a Planner whose per-request defaults are Defaults()
// overridden by the given options, with a sharded schedule cache of
// DefaultCacheSize mappings.
func New(opts ...Option) *Planner {
	o := Defaults()
	for _, opt := range opts {
		opt(&o)
	}
	return &Planner{base: o, cache: NewCache(DefaultCacheSize)}
}

// NewWithCache returns a Planner using the given schedule cache (e.g. a
// larger one, one with more shards, or one shared between planners).
func NewWithCache(c Cache, opts ...Option) *Planner {
	p := New(opts...)
	if c != nil {
		p.cache = c
	}
	return p
}

// Cache returns the planner's schedule cache (for stats and purging).
func (p *Planner) Cache() Cache { return p.cache }

// PurgeIncremental drops the layer-granular family index backing
// incremental replanning (the whole-mapping schedule cache is purged
// separately via Cache().Purge()).
func (p *Planner) PurgeIncremental() { p.families.purge() }

// Plan schedules the graph on the machine and maps it with the configured
// strategy. It validates both inputs (errors wrap arch.ErrInvalidMachine /
// graph.ErrCyclicGraph), honours ctx cancellation throughout the search
// (errors wrap core.ErrCanceled), serves repeated requests from the
// schedule cache, and coalesces concurrent identical requests into one
// cold plan. The returned mapping may be shared with other callers and
// must be treated as read-only.
func (p *Planner) Plan(ctx context.Context, g *graph.Graph, m *arch.Machine, opts ...Option) (*core.Mapping, error) {
	o := p.base
	for _, opt := range opts {
		opt(&o)
	}
	if o.Info != nil {
		*o.Info = Info{}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	// The graph is validated by ScheduleCtx on the cold path; a cache hit
	// skips the O(V+E) revalidation, since only valid graphs are cached
	// and the fingerprint identifies the graph structurally.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("planning %q: %w (%w)", g.Name, core.ErrCanceled, err)
	}

	P := o.Cores
	if P == 0 {
		P = m.TotalCores()
	}
	if P < 1 {
		return nil, fmt.Errorf("planning %q on %d cores: %w", g.Name, P, core.ErrNoCores)
	}

	model := o.Model
	if model == nil {
		model = &cost.Model{Machine: m}
	}

	if o.DisableCache || p.cache == nil {
		mp, err := p.planCold(ctx, g, m, P, model, &o)
		if err == nil && o.Info != nil {
			o.Info.Cold = true
		}
		return mp, err
	}

	key := Key{
		Graph:          GraphFingerprint(g),
		Machine:        MachineFingerprint(m),
		Strategy:       o.Strategy.Name(),
		P:              P,
		ModelMachine:   MachineFingerprint(model.Machine),
		Hybrid:         model.Hybrid,
		ThreadsPerRank: model.ThreadsPerRank,
		ForceGroups:    o.ForceGroups,
		MinGroups:      o.MinGroups,
		MaxGroups:      o.MaxGroups,
	}
	for {
		if mp, ok := p.cache.Get(key); ok {
			o.Trace.Counter("plan.cache_hits").Add(1)
			o.Trace.Instant("cache-hit:"+g.Name, "plan", obs.ControlRank, o.Trace.Now())
			if o.Info != nil {
				o.Info.CacheHit = true
			}
			return mp, nil
		}
		o.Trace.Counter("plan.cache_misses").Add(1)

		f, leader := p.flights.join(key)
		if leader {
			// Re-check the cache: a previous leader may have published
			// between our miss and our join, and planning again here
			// would break the one-cold-plan-per-fingerprint guarantee.
			if mp, ok := p.cache.Peek(key); ok {
				p.flights.finish(key, f, mp, nil)
				o.Trace.Counter("plan.cache_hits").Add(1)
				if o.Info != nil {
					o.Info.CacheHit = true
				}
				return mp, nil
			}
			mp, err := p.planCold(ctx, g, m, P, model, &o)
			if err == nil {
				p.cache.Add(key, mp)
			}
			p.flights.finish(key, f, mp, err)
			if err == nil && o.Info != nil {
				o.Info.Cold = true
			}
			return mp, err
		}
		select {
		case <-f.done:
			if f.err != nil {
				// A leader canceled by its own caller — or one that
				// crashed mid-plan — must not poison followers whose
				// contexts are still live: loop and either hit the
				// cache or re-elect a fresh leader.
				if (errors.Is(f.err, core.ErrCanceled) || errors.Is(f.err, ErrPlanPanic)) && ctx.Err() == nil {
					continue
				}
				return nil, f.err
			}
			o.Trace.Counter("plan.coalesced").Add(1)
			if o.Info != nil {
				o.Info.Coalesced = true
			}
			return f.res.(*core.Mapping), nil
		case <-ctx.Done():
			return nil, fmt.Errorf("planning %q: %w (%w)", g.Name, core.ErrCanceled, ctx.Err())
		}
	}
}

// planCold runs the actual scheduling and mapping of one request — the
// work the cache and the singleflight exist to avoid repeating. Panics
// in the pipeline (or the hook) are recovered into an error wrapping
// ErrPlanPanic so a crashing leader still finishes its flight.
func (p *Planner) planCold(ctx context.Context, g *graph.Graph, m *arch.Machine, P int,
	model *cost.Model, o *Options) (mp *core.Mapping, err error) {

	defer func() {
		if r := recover(); r != nil {
			mp, err = nil, fmt.Errorf("planning %q: %w: %v", g.Name, ErrPlanPanic, r)
		}
	}()
	if o.ColdPlanHook != nil {
		if err := o.ColdPlanHook(ctx); err != nil {
			return nil, fmt.Errorf("planning %q: cold-plan hook: %w", g.Name, err)
		}
	}
	planStart := o.Trace.Now()
	if !o.DisableMemo {
		model = model.WithMemo()
	}
	workers := o.Parallelism
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var inc *incrementalState
	var reuse func(*graph.Graph, int, graph.Layer) *core.LayerSchedule
	if !o.DisableIncremental {
		fk := Key{
			Machine:        MachineFingerprint(m),
			Strategy:       o.Strategy.Name(),
			P:              P,
			ModelMachine:   MachineFingerprint(model.Machine),
			Hybrid:         model.Hybrid,
			ThreadsPerRank: model.ThreadsPerRank,
			ForceGroups:    o.ForceGroups,
			MinGroups:      o.MinGroups,
			MaxGroups:      o.MaxGroups,
		}.familyKey()
		inc = &incrementalState{family: p.families.get(fk)}
		reuse = inc.reuse
	}
	sched, err := (&core.Scheduler{
		Model:       model,
		ForceGroups: o.ForceGroups,
		MinGroups:   o.MinGroups,
		MaxGroups:   o.MaxGroups,
		Parallel:    workers,
		Reuse:       reuse,
		Trace:       o.Trace,
	}).ScheduleCtx(ctx, g, P)
	if err != nil {
		return nil, err
	}
	if inc != nil {
		inc.record(sched.Layers)
		if inc.reused > 0 {
			o.Trace.Counter("plan.incremental_hits").Add(1)
			o.Trace.Counter("plan.incremental_patched_layers").Add(int64(inc.patched))
			if o.Info != nil {
				o.Info.Incremental = true
				o.Info.ReusedLayers = inc.reused
				o.Info.PatchedLayers = inc.patched
			}
		}
	}
	mp, err = core.MapCtx(ctx, sched, m, o.Strategy)
	if err != nil {
		return nil, err
	}
	if o.Trace != nil {
		o.Trace.Span("plan:"+g.Name, "plan", obs.ControlRank, -1, -1, planStart, o.Trace.Now())
		if !o.DisableMemo {
			hits, misses := model.MemoStats()
			o.Trace.Counter("cost.memo_hits").Add(int64(hits))
			o.Trace.Counter("cost.memo_misses").Add(int64(misses))
		}
	}
	return mp, nil
}
