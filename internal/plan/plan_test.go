package plan

import (
	"context"
	"errors"
	"testing"

	"mtask/internal/arch"
	"mtask/internal/cluster"
	"mtask/internal/core"
	"mtask/internal/cost"
	"mtask/internal/graph"
	"mtask/internal/ode"
)

// solverWorkloads returns the fig13/fig15 solver graphs of the evaluation
// at reduced scale.
func solverWorkloads() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"pabm":  ode.BuildPABGraph(40000, 600, 8, 2, 4),
		"pab":   ode.BuildPABGraph(40000, 600, 8, 0, 4),
		"epol":  ode.BuildEPOLGraph(40000, 600, 8, 2),
		"irk":   ode.BuildIRKGraph(40000, 600, 4, 2, 2),
		"diirk": ode.BuildDIIRKGraph(512, 600, 4, 2, 2),
	}
}

func simulatedMakespan(t *testing.T, mp *core.Mapping) float64 {
	t.Helper()
	model := &cost.Model{Machine: mp.Machine}
	prog, _, err := cluster.FromMapping(model, mp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Simulate(model, prog)
	if err != nil {
		t.Fatal(err)
	}
	return res.Makespan
}

// TestPlanMatchesSequentialOnSolverGraphs is the acceptance check of the
// concurrent planner: on every solver workload of the evaluation and
// several strategies, the parallel cache-backed plan must equal the
// sequential, memo-free reference — same symbolic makespan, same layer
// assignment, and the same simulated makespan.
func TestPlanMatchesSequentialOnSolverGraphs(t *testing.T) {
	machine := arch.CHiC().SubsetCores(64)
	strategies := []core.Strategy{core.Consecutive{}, core.Scattered{}, core.Mixed{D: 2}}
	for name, g := range solverWorkloads() {
		for _, strat := range strategies {
			seq, err := New().Plan(context.Background(), g, machine,
				WithStrategy(strat), WithParallelism(1), WithoutCache(), WithoutMemo())
			if err != nil {
				t.Fatalf("%s/%s sequential: %v", name, strat.Name(), err)
			}
			par, err := New().Plan(context.Background(), g, machine,
				WithStrategy(strat), WithParallelism(8))
			if err != nil {
				t.Fatalf("%s/%s parallel: %v", name, strat.Name(), err)
			}
			if seq.Schedule.Time != par.Schedule.Time {
				t.Fatalf("%s/%s: symbolic makespan differs: %v vs %v",
					name, strat.Name(), seq.Schedule.Time, par.Schedule.Time)
			}
			for li := range seq.Schedule.Layers {
				a, b := seq.Schedule.Layers[li], par.Schedule.Layers[li]
				if a.NumGroups() != b.NumGroups() || a.Time != b.Time {
					t.Fatalf("%s/%s: layer %d differs: g=%d T=%v vs g=%d T=%v",
						name, strat.Name(), li, a.NumGroups(), a.Time, b.NumGroups(), b.Time)
				}
			}
			if ms, mp := simulatedMakespan(t, seq), simulatedMakespan(t, par); ms != mp {
				t.Fatalf("%s/%s: simulated makespan differs: %v vs %v", name, strat.Name(), ms, mp)
			}
		}
	}
}

// TestPlanCache checks that a repeated request is served from the cache
// (same mapping object) and that any input change misses.
func TestPlanCache(t *testing.T) {
	machine := arch.CHiC().SubsetCores(32)
	g := ode.BuildPABGraph(40000, 600, 8, 2, 2)
	p := New()
	ctx := context.Background()

	mp1, err := p.Plan(ctx, g, machine)
	if err != nil {
		t.Fatal(err)
	}
	mp2, err := p.Plan(ctx, g, machine)
	if err != nil {
		t.Fatal(err)
	}
	if mp1 != mp2 {
		t.Fatal("second identical request did not hit the cache")
	}
	if hits, misses := p.Cache().Stats(); hits != 1 || misses != 1 {
		t.Fatalf("cache stats = %d hits / %d misses, want 1/1", hits, misses)
	}

	// A structurally identical but re-built graph still hits (fingerprint
	// keyed, not identity keyed).
	mp3, err := p.Plan(ctx, ode.BuildPABGraph(40000, 600, 8, 2, 2), machine)
	if err != nil {
		t.Fatal(err)
	}
	if mp3 != mp1 {
		t.Fatal("structurally identical graph missed the cache")
	}

	// Different strategy, core count or graph must all miss.
	mp4, err := p.Plan(ctx, g, machine, WithStrategy(core.Scattered{}))
	if err != nil {
		t.Fatal(err)
	}
	mp5, err := p.Plan(ctx, g, machine, WithCores(16))
	if err != nil {
		t.Fatal(err)
	}
	mp6, err := p.Plan(ctx, ode.BuildPABGraph(40000, 600, 8, 2, 3), machine)
	if err != nil {
		t.Fatal(err)
	}
	if mp4 == mp1 || mp5 == mp1 || mp6 == mp1 {
		t.Fatal("changed request was served a stale cached mapping")
	}

	// WithoutCache bypasses entirely.
	mp7, err := p.Plan(ctx, g, machine, WithoutCache())
	if err != nil {
		t.Fatal(err)
	}
	if mp7 == mp1 {
		t.Fatal("WithoutCache returned the cached mapping")
	}
}

// TestPlanConcurrentRequests hammers one planner from many goroutines —
// the heavy-traffic case — and checks every response for validity and
// mutual consistency. Run under -race.
func TestPlanConcurrentRequests(t *testing.T) {
	machine := arch.CHiC().SubsetCores(32)
	g := ode.BuildEPOLGraph(40000, 600, 8, 2)
	p := New()
	ctx := context.Background()

	const clients = 16
	results := make(chan *core.Mapping, clients)
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func() {
			mp, err := p.Plan(ctx, g, machine)
			errs <- err
			results <- mp
		}()
	}
	var first *core.Mapping
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
		mp := <-results
		if err := mp.Validate(); err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = mp
		} else if mp.Schedule.Time != first.Schedule.Time {
			t.Fatalf("concurrent responses disagree: %v vs %v", mp.Schedule.Time, first.Schedule.Time)
		}
	}
}

// TestPlanSentinels checks the errors.Is contract of the planning
// pipeline.
func TestPlanSentinels(t *testing.T) {
	ctx := context.Background()
	good := ode.BuildPABGraph(1000, 600, 4, 0, 2)
	machine := arch.CHiC().Subset(2)
	p := New()

	if _, err := p.Plan(ctx, good, &arch.Machine{Name: "bad"}); !errors.Is(err, arch.ErrInvalidMachine) {
		t.Fatalf("invalid machine: got %v, want ErrInvalidMachine", err)
	}

	cyclic := graph.New("cyclic")
	a := cyclic.AddBasic("a", 1)
	b := cyclic.AddBasic("b", 1)
	cyclic.MustEdge(a, b, 0)
	cyclic.MustEdge(b, a, 0)
	if _, err := p.Plan(ctx, cyclic, machine); !errors.Is(err, graph.ErrCyclicGraph) {
		t.Fatalf("cyclic graph: got %v, want ErrCyclicGraph", err)
	}

	if _, err := p.Plan(ctx, good, machine, WithCores(-1)); !errors.Is(err, core.ErrNoCores) {
		t.Fatalf("negative cores: got %v, want ErrNoCores", err)
	}

	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := p.Plan(canceled, good, machine); !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("canceled ctx: got %v, want ErrCanceled", err)
	}
}

// TestFingerprints checks that the fingerprints react to every scheduling-
// relevant input.
func TestFingerprints(t *testing.T) {
	g1 := ode.BuildPABGraph(40000, 600, 8, 2, 2)
	g2 := ode.BuildPABGraph(40000, 600, 8, 2, 2)
	if GraphFingerprint(g1) != GraphFingerprint(g2) {
		t.Fatal("identical graphs fingerprint differently")
	}
	g2.Task(1).Work *= 2
	if GraphFingerprint(g1) == GraphFingerprint(g2) {
		t.Fatal("changed work not reflected in fingerprint")
	}
	g3 := ode.BuildPABGraph(40000, 600, 8, 2, 3)
	if GraphFingerprint(g1) == GraphFingerprint(g3) {
		t.Fatal("different structure fingerprints equal")
	}

	m1, m2 := arch.CHiC(), arch.CHiC()
	if MachineFingerprint(m1) != MachineFingerprint(m2) {
		t.Fatal("identical machines fingerprint differently")
	}
	m2.Links[arch.LevelNetwork].Bandwidth *= 2
	if MachineFingerprint(m1) == MachineFingerprint(m2) {
		t.Fatal("changed link bandwidth not reflected in fingerprint")
	}
	if MachineFingerprint(m1) == MachineFingerprint(arch.JuRoPA()) {
		t.Fatal("different machines fingerprint equal")
	}
}

// TestCacheLRU checks capacity-bounded eviction order within one shard
// (a single-shard cache is the pre-sharding LRU).
func TestCacheLRU(t *testing.T) {
	c := NewShardedCache(2, 1)
	mk := func(i int) (Key, *core.Mapping) {
		return Key{Graph: uint64(i)}, &core.Mapping{}
	}
	k1, m1 := mk(1)
	k2, m2 := mk(2)
	k3, m3 := mk(3)
	c.Add(k1, m1)
	c.Add(k2, m2)
	if _, ok := c.Get(k1); !ok { // touch k1 -> k2 becomes LRU
		t.Fatal("k1 missing")
	}
	c.Add(k3, m3)
	if _, ok := c.Get(k2); ok {
		t.Fatal("k2 should have been evicted")
	}
	if got, ok := c.Get(k1); !ok || got != m1 {
		t.Fatal("k1 lost")
	}
	if got, ok := c.Get(k3); !ok || got != m3 {
		t.Fatal("k3 lost")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}
