package plan

import (
	"context"
	"fmt"

	"mtask/internal/arch"
	"mtask/internal/core"
	"mtask/internal/graph"
)

// Replan produces a degraded schedule of the graph after cores were lost:
// the machine is shrunk to the survivors (whole-node granularity, see
// arch.Machine.WithoutCores) and the full graph is replanned on them with
// the same options. The layer-based algorithm partitions layers from the
// graph structure alone, so the replanned schedule keeps the layer
// partition of the original (the fault-tolerant executor verifies this
// with core.SameLayering) while group counts and sizes adapt to the
// smaller core count — which is what makes resuming at a layer barrier
// sound.
//
// survivors is the number of symbolic cores still available. Because the
// machine shrinks in whole nodes, the schedule may use fewer cores than
// survivors (the whole-node floor); it never uses more. Replan shares the
// planner's schedule cache, so repeated degradations to the same size are
// served from cache.
func (p *Planner) Replan(ctx context.Context, g *graph.Graph, m *arch.Machine, survivors int,
	opts ...Option) (*core.Mapping, error) {

	if survivors < 1 {
		return nil, fmt.Errorf("replanning %q on %d cores: %w", g.Name, survivors, core.ErrNoCores)
	}
	lost := m.TotalCores() - survivors
	if lost < 0 {
		return nil, fmt.Errorf("replanning %q: %d survivors exceed the %d cores of %q: %w",
			g.Name, survivors, m.TotalCores(), m.Name, core.ErrNoCores)
	}
	dm := m
	if lost > 0 {
		var err error
		dm, err = m.WithoutCores(lost)
		if err != nil {
			return nil, fmt.Errorf("replanning %q: %w", g.Name, err)
		}
	}
	P := survivors
	if t := dm.TotalCores(); t < P {
		P = t // whole-node shrink removed more cores than were lost
	}
	opts = append(append([]Option(nil), opts...), WithCores(P))
	return p.Plan(ctx, g, dm, opts...)
}
