package plan

import (
	"context"
	"errors"
	"testing"

	"mtask/internal/arch"
	"mtask/internal/core"
	"mtask/internal/ode"
)

func TestReplanKeepsLayering(t *testing.T) {
	// Degrading from 32 to 24 cores must keep the layer partition (the
	// checkpoint-compatibility invariant of degrade-and-replan) while the
	// schedule shrinks to the surviving cores.
	machine := arch.CHiC().SubsetCores(32) // 8 nodes x 4 cores
	g := ode.BuildPABGraph(40000, 20, 8, 0, 4)
	p := New()
	ctx := context.Background()

	full, err := p.Plan(ctx, g, machine, WithCores(32))
	if err != nil {
		t.Fatal(err)
	}
	degraded, err := p.Replan(ctx, g, machine, 24)
	if err != nil {
		t.Fatal(err)
	}
	if degraded.Schedule.P != 24 {
		t.Fatalf("degraded P = %d, want 24", degraded.Schedule.P)
	}
	if err := core.SameLayering(full.Schedule, degraded.Schedule); err != nil {
		t.Fatalf("replanned schedule broke the layer partition: %v", err)
	}
	if degraded.Machine.TotalCores() != 24 {
		t.Fatalf("degraded machine has %d cores, want 24", degraded.Machine.TotalCores())
	}
}

func TestReplanWholeNodeFloor(t *testing.T) {
	// Losing 2 of 32 cores removes a whole node, so the 30 survivors are
	// scheduled on the 28-core whole-node floor.
	machine := arch.CHiC().SubsetCores(32)
	g := ode.BuildPABGraph(40000, 20, 8, 0, 4)
	mp, err := New().Replan(context.Background(), g, machine, 30)
	if err != nil {
		t.Fatal(err)
	}
	if mp.Schedule.P != 28 {
		t.Fatalf("P = %d, want the 28-core whole-node floor", mp.Schedule.P)
	}
}

func TestReplanErrors(t *testing.T) {
	machine := arch.CHiC().SubsetCores(8) // 2 nodes
	g := ode.BuildPABGraph(40000, 20, 8, 0, 4)
	ctx := context.Background()
	p := New()
	if _, err := p.Replan(ctx, g, machine, 0); !errors.Is(err, core.ErrNoCores) {
		t.Fatalf("0 survivors: got %v, want ErrNoCores", err)
	}
	if _, err := p.Replan(ctx, g, machine, 100); !errors.Is(err, core.ErrNoCores) {
		t.Fatalf("more survivors than cores: got %v, want ErrNoCores", err)
	}
	// 3 survivors of 8 would need removing both nodes' worth rounded up:
	// 5 lost -> 2 nodes -> nothing left.
	if _, err := p.Replan(ctx, g, machine, 3); !errors.Is(err, arch.ErrInvalidMachine) {
		t.Fatalf("no node survives: got %v, want ErrInvalidMachine", err)
	}
}
