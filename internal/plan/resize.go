package plan

import (
	"context"

	"mtask/internal/arch"
	"mtask/internal/core"
	"mtask/internal/graph"
)

// PlanPartition plans the graph on a whole-node partition of the machine:
// the planning half of a job resize. The machine-level job allocator calls
// it at admission (to price candidate partition sizes during moldable
// sizing) and at every grow or shrink (to produce the schedule the
// executor swaps in at the next layer barrier). The layer-based algorithm
// partitions layers from the graph structure alone, so the schedule at any
// partition size keeps the same layer partition (core.SameLayering) —
// which is what makes resuming a resized job at a layer barrier sound.
//
// Equal-sized partitions of the same machine fingerprint identically
// (arch.Machine.Partition names them by node count), so repeated sizing
// probes, resizes back to a previous size, and equal-sized partitions of
// different jobs running the same graph are all served from the planner's
// schedule cache.
func (p *Planner) PlanPartition(ctx context.Context, g *graph.Graph, m *arch.Machine, nodes int,
	opts ...Option) (*core.Mapping, error) {

	pm, err := m.Partition(nodes)
	if err != nil {
		return nil, err
	}
	opts = append(append([]Option(nil), opts...), WithCores(pm.TotalCores()))
	return p.Plan(ctx, g, pm, opts...)
}
