package plan

import (
	"context"
	"errors"
	"testing"

	"mtask/internal/arch"
	"mtask/internal/core"
	"mtask/internal/ode"
)

// TestPlanPartition covers the resize planning glue: the mapping is sized
// to the partition, schedules at different partition sizes keep the same
// layer partition (what makes barrier-resume after a resize sound), and
// equal-sized partitions are served from the schedule cache.
func TestPlanPartition(t *testing.T) {
	m := arch.CHiC().Subset(8)
	g := ode.BuildPABGraph(40000, 600, 8, 2, 2)
	p := New()
	ctx := context.Background()

	mp4, err := p.PlanPartition(ctx, g, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * m.CoresPerNode(); mp4.Schedule.P != want {
		t.Fatalf("partition schedule P = %d, want %d", mp4.Schedule.P, want)
	}
	if mp4.Machine.Nodes != 4 {
		t.Fatalf("partition machine has %d nodes, want 4", mp4.Machine.Nodes)
	}

	mp2, err := p.PlanPartition(ctx, g, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.SameLayering(mp4.Schedule, mp2.Schedule); err != nil {
		t.Fatalf("schedules at different partition sizes changed layering: %v", err)
	}

	// Resizing back to a previous size must be a cache hit (same mapping
	// object): partitions are named by node count, so the fingerprint
	// matches across probes, jobs, and resize round trips.
	again, err := p.PlanPartition(ctx, g, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if again != mp4 {
		t.Fatal("repeated equal-sized partition plan missed the cache")
	}

	for _, bad := range []int{0, m.Nodes + 1} {
		if _, err := p.PlanPartition(ctx, g, m, bad); !errors.Is(err, arch.ErrInvalidMachine) {
			t.Fatalf("PlanPartition(%d) err = %v, want ErrInvalidMachine", bad, err)
		}
	}
}
