package plan

import "sync"

// flightGroup coalesces concurrent cold plans of the same Key: the first
// request becomes the leader and runs the group-count search, every
// request arriving while the leader is in flight becomes a follower and
// adopts the leader's result. Under serving traffic this is what turns N
// simultaneous cache misses on one fingerprint into one planner
// invocation instead of N.
//
// The table is sharded by the same key hash as the cache, so unrelated
// fingerprints never contend on one mutex even at thousands of in-flight
// requests.
type flightGroup struct {
	shards [flightShards]flightShard
}

const flightShards = 16 // power of two; see flightGroup

type flightShard struct {
	mu sync.Mutex
	m  map[Key]*flight
}

// flight is one in-progress cold plan. done is closed exactly once, after
// res and err were written; followers must only read them after <-done.
type flight struct {
	done chan struct{}
	res  interface{}
	err  error
}

// join returns the flight for the key and whether the caller is its
// leader. The leader must call finish exactly once.
func (g *flightGroup) join(k Key) (f *flight, leader bool) {
	s := &g.shards[k.hash()&(flightShards-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[Key]*flight)
	}
	if f, ok := s.m[k]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	s.m[k] = f
	return f, true
}

// finish publishes the leader's result and releases the key, so a request
// arriving after the flight completed starts fresh (it will hit the cache
// on success, or lead a new flight after a failure).
func (g *flightGroup) finish(k Key, f *flight, res interface{}, err error) {
	s := &g.shards[k.hash()&(flightShards-1)]
	s.mu.Lock()
	delete(s.m, k)
	s.mu.Unlock()
	f.res, f.err = res, err
	close(f.done)
}
