package plan

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mtask/internal/arch"
	"mtask/internal/core"
	"mtask/internal/ode"
)

// TestSingleflightOneColdPlan is the coalescing acceptance property: N
// concurrent planners on one fingerprint produce exactly one cold plan,
// and every caller receives the identical mapping object (which implies
// bit-identical schedules). Run under -race.
func TestSingleflightOneColdPlan(t *testing.T) {
	machine := arch.CHiC().SubsetCores(64)
	g := ode.BuildPABGraph(40000, 600, 8, 2, 4)
	p := New()
	ctx := context.Background()

	const clients = 32
	var (
		start sync.WaitGroup
		wg    sync.WaitGroup
		mu    sync.Mutex
		infos []Info
		maps  []*core.Mapping
	)
	start.Add(1)
	wg.Add(clients)
	for i := 0; i < clients; i++ {
		go func() {
			defer wg.Done()
			var info Info
			start.Wait()
			mp, err := p.Plan(ctx, g, machine, WithInfo(&info))
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				t.Error(err)
				return
			}
			infos = append(infos, info)
			maps = append(maps, mp)
		}()
	}
	start.Done()
	wg.Wait()

	cold, coalesced, hits := 0, 0, 0
	for _, info := range infos {
		switch {
		case info.Cold:
			cold++
		case info.Coalesced:
			coalesced++
		case info.CacheHit:
			hits++
		default:
			t.Error("request served by no path at all")
		}
	}
	if cold != 1 {
		t.Fatalf("%d cold plans for one fingerprint, want exactly 1 (coalesced %d, hits %d)",
			cold, coalesced, hits)
	}
	if coalesced+hits != clients-1 {
		t.Fatalf("coalesced %d + hits %d != %d", coalesced, hits, clients-1)
	}
	for _, mp := range maps[1:] {
		if mp != maps[0] {
			t.Fatal("coalesced callers received different mapping objects")
		}
	}
}

// TestSingleflightCanceledLeaderDoesNotPoison installs a fake in-flight
// leader, lets a follower block on it, and finishes the flight with a
// cancellation error: the follower's context is live, so it must not
// inherit the cancellation — it retries, leads its own flight and plans
// successfully.
func TestSingleflightCanceledLeaderDoesNotPoison(t *testing.T) {
	machine := arch.CHiC().SubsetCores(32)
	g := ode.BuildPABGraph(4000, 600, 8, 2, 2)
	p := New()

	key := Key{
		Graph:        GraphFingerprint(g),
		Machine:      MachineFingerprint(machine),
		Strategy:     core.Consecutive{}.Name(),
		P:            machine.TotalCores(),
		ModelMachine: MachineFingerprint(machine),
	}
	f, leader := p.flights.join(key)
	if !leader {
		t.Fatal("test did not acquire flight leadership")
	}

	var info Info
	done := make(chan error, 1)
	go func() {
		_, err := p.Plan(context.Background(), g, machine, WithInfo(&info))
		done <- err
	}()

	// Give the follower time to reach the flight wait, then fail the
	// flight the way a canceled leader would.
	time.Sleep(50 * time.Millisecond)
	p.flights.finish(key, f, (*core.Mapping)(nil),
		fmt.Errorf("planning %q: %w (context canceled)", g.Name, core.ErrCanceled))

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("follower inherited the leader's cancellation: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("follower never completed")
	}
	if !info.Cold && !info.CacheHit {
		t.Fatalf("follower should have replanned (or hit the cache) after the canceled flight, info=%+v", info)
	}

	// A caller whose own context is canceled still fails with ErrCanceled.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Plan(canceled, g, machine, WithoutCache()); !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("canceled caller: got %v, want ErrCanceled", err)
	}
}

// selfCancelKey smuggles each client's own cancel func into the cold
// plan, so the chaos hook can kill whichever client won leadership.
type selfCancelKey struct{}

// TestSingleflightChaosKilledLeaders is the re-election property under
// chaos: the first K singleflight leaders are killed mid-plan (their own
// contexts canceled, the way a vanished client dies), and every
// surviving follower must still receive exactly one live re-elected cold
// plan — the identical mapping, never the dead leaders' cancellation.
// Run under -race.
func TestSingleflightChaosKilledLeaders(t *testing.T) {
	machine := arch.CHiC().SubsetCores(32)
	g := ode.BuildPABGraph(4000, 600, 8, 2, 3)

	const (
		clients = 24
		kills   = 3
	)
	var killed atomic.Int32
	p := New(WithColdPlanHook(func(ctx context.Context) error {
		if int(killed.Add(1)) <= kills {
			if cancel, ok := ctx.Value(selfCancelKey{}).(context.CancelFunc); ok {
				cancel()
			}
			<-ctx.Done()
			// Return nil: the canonical kill path is the planner itself
			// observing the dead context, exactly like a real vanished
			// leader mid-search.
		}
		return nil
	}))

	var (
		start sync.WaitGroup
		wg    sync.WaitGroup
		mu    sync.Mutex
		fails []error
		infos []Info
		maps  []*core.Mapping
	)
	start.Add(1)
	wg.Add(clients)
	for i := 0; i < clients; i++ {
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			ctx = context.WithValue(ctx, selfCancelKey{}, cancel)
			var info Info
			start.Wait()
			mp, err := p.Plan(ctx, g, machine, WithInfo(&info))
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				fails = append(fails, err)
				return
			}
			infos = append(infos, info)
			maps = append(maps, mp)
		}()
	}
	start.Done()
	wg.Wait()

	// Exactly the killed leaders fail, and they fail as cancellations —
	// visible both as the package sentinel and the context cause.
	if len(fails) != kills {
		t.Fatalf("%d failures, want exactly the %d killed leaders: %v", len(fails), kills, fails)
	}
	for _, err := range fails {
		if !errors.Is(err, core.ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("killed leader error %v must wrap core.ErrCanceled and context.Canceled", err)
		}
	}

	// Every survivor holds the same mapping from the one live cold plan.
	if len(maps) != clients-kills {
		t.Fatalf("%d survivors, want %d", len(maps), clients-kills)
	}
	for _, mp := range maps[1:] {
		if mp != maps[0] {
			t.Fatal("survivors received different mapping objects")
		}
	}
	cold := 0
	for _, info := range infos {
		switch {
		case info.Cold:
			cold++
		case info.Coalesced, info.CacheHit:
		default:
			t.Error("survivor served by no path at all")
		}
	}
	if cold != 1 {
		t.Fatalf("%d live cold plans, want exactly 1", cold)
	}
}

// TestSingleflightPanickedLeaderReElection kills leaders the violent
// way: the cold plan panics. The flight must still finish (no follower
// may hang on a dead leader), the panicking caller gets ErrPlanPanic,
// and followers re-elect until a live plan lands. Run under -race.
func TestSingleflightPanickedLeaderReElection(t *testing.T) {
	machine := arch.CHiC().SubsetCores(32)
	g := ode.BuildPABGraph(4000, 600, 8, 2, 5)

	const (
		clients = 16
		panics  = 2
	)
	var attempts atomic.Int32
	p := New(WithColdPlanHook(func(ctx context.Context) error {
		if int(attempts.Add(1)) <= panics {
			panic("chaos: leader killed mid-plan")
		}
		return nil
	}))

	var (
		start sync.WaitGroup
		wg    sync.WaitGroup
		mu    sync.Mutex
		fails []error
		maps  []*core.Mapping
	)
	start.Add(1)
	wg.Add(clients)
	for i := 0; i < clients; i++ {
		go func() {
			defer wg.Done()
			start.Wait()
			mp, err := p.Plan(context.Background(), g, machine)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				fails = append(fails, err)
				return
			}
			maps = append(maps, mp)
		}()
	}
	start.Done()
	wg.Wait()

	if len(fails) != panics {
		t.Fatalf("%d failures, want exactly the %d panicked leaders: %v", len(fails), panics, fails)
	}
	for _, err := range fails {
		if !errors.Is(err, ErrPlanPanic) {
			t.Fatalf("panicked leader error %v must wrap ErrPlanPanic", err)
		}
	}
	if len(maps) != clients-panics {
		t.Fatalf("%d survivors, want %d", len(maps), clients-panics)
	}
	for _, mp := range maps[1:] {
		if mp != maps[0] {
			t.Fatal("survivors received different mapping objects")
		}
	}
}

// TestShardDistribution checks that realistic keys spread over the
// shards instead of piling onto one mutex.
func TestShardDistribution(t *testing.T) {
	c := NewShardedCache(1024, 16)
	if c.Shards() != 16 {
		t.Fatalf("Shards() = %d, want 16", c.Shards())
	}
	const n = 512
	for i := 0; i < n; i++ {
		// Vary the graph fingerprint the way distinct programs would.
		k := Key{Graph: uint64(i)*fnvPrime + 17, Machine: 7, P: 64, Strategy: "consecutive"}
		c.Add(k, &core.Mapping{})
	}
	if c.Len() != n {
		t.Fatalf("Len = %d, want %d", c.Len(), n)
	}
	stats := c.ShardStats()
	nonEmpty, max := 0, 0
	for _, st := range stats {
		if st.Len > 0 {
			nonEmpty++
		}
		if st.Len > max {
			max = st.Len
		}
	}
	if nonEmpty < 13 {
		t.Fatalf("only %d of 16 shards used: %+v", nonEmpty, stats)
	}
	if max > 4*n/16 {
		t.Fatalf("hottest shard holds %d of %d entries — hash is clumping: %+v", max, n, stats)
	}
}

// TestShardedEviction checks the per-shard capacity bound: the cache
// never exceeds its total capacity, and the newest entries survive.
func TestShardedEviction(t *testing.T) {
	c := NewShardedCache(32, 4) // 8 mappings per shard
	mk := func(i int) Key {
		return Key{Graph: uint64(i)*fnvPrime + 3, P: 64}
	}
	const n = 200
	for i := 0; i < n; i++ {
		c.Add(mk(i), &core.Mapping{})
	}
	if c.Len() > 32 {
		t.Fatalf("Len = %d exceeds capacity 32", c.Len())
	}
	// Enough insertions ran that every shard must be at capacity.
	for i, st := range c.ShardStats() {
		if st.Len != 8 {
			t.Fatalf("shard %d holds %d entries, want 8", i, st.Len)
		}
	}
	// The very last insertion is necessarily resident.
	if _, ok := c.Get(mk(n - 1)); !ok {
		t.Fatal("most recent entry evicted")
	}
	// The oldest ones are necessarily gone (each shard saw ~50 keys for
	// 8 slots, so key 0 cannot have survived LRU eviction).
	if _, ok := c.Get(mk(0)); ok {
		t.Fatal("oldest entry survived eviction")
	}
}

// TestPeekNeutral checks that Peek neither counts traffic nor refreshes
// recency — it must not perturb what Stats and LRU order measure.
func TestPeekNeutral(t *testing.T) {
	c := NewShardedCache(2, 1)
	k1, k2, k3 := Key{Graph: 1}, Key{Graph: 2}, Key{Graph: 3}
	c.Add(k1, &core.Mapping{})
	c.Add(k2, &core.Mapping{})

	if _, ok := c.Peek(k1); !ok {
		t.Fatal("peek missed a resident key")
	}
	if _, ok := c.Peek(Key{Graph: 99}); ok {
		t.Fatal("peek found a phantom key")
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatalf("peek counted traffic: %d hits / %d misses", h, m)
	}
	// Peek did not refresh k1, so k1 (not k2) is evicted by the next add.
	c.Add(k3, &core.Mapping{})
	if _, ok := c.Peek(k1); ok {
		t.Fatal("peek refreshed recency: k1 should have been the LRU victim")
	}
	if _, ok := c.Peek(k2); !ok {
		t.Fatal("k2 wrongly evicted")
	}
}
