// Package redist plans the data re-distribution operations that the
// CM-task compiler inserts between cooperating M-tasks (Section 2.2.1):
// when a producer task writes a data structure in one distribution on one
// core group and a consumer reads it in another distribution on another
// group, a set of point-to-point messages moves exactly the overlapping
// element ranges. The planner computes that message set for block and
// cyclic distributions and replicated data, and prices a plan under the
// cost model's interconnect parameters.
package redist

import (
	"fmt"
	"sort"

	"mtask/internal/arch"
)

// Kind enumerates the supported data distributions (the CM-task compiler
// supports general block-cyclic distributions; block, cyclic and
// replicated cover the paper's benchmarks).
type Kind int

const (
	// Block distributes contiguous element ranges (the first n%q owners
	// receive one extra element, matching runtime.BlockRange).
	Block Kind = iota
	// Cyclic deals elements round-robin.
	Cyclic
	// Replicated stores all elements on every core.
	Replicated
)

func (k Kind) String() string {
	switch k {
	case Block:
		return "block"
	case Cyclic:
		return "cyclic"
	case Replicated:
		return "replic"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Layout is a distribution of n elements over a core group.
type Layout struct {
	Kind  Kind
	Cores []arch.CoreID
	N     int
}

// Validate checks the layout.
func (l Layout) Validate() error {
	if len(l.Cores) == 0 {
		return fmt.Errorf("redist: layout without cores")
	}
	if l.N < 0 {
		return fmt.Errorf("redist: negative element count")
	}
	return nil
}

// ownerOf returns, for each element index, the owning core rank (for
// Replicated it returns rank 0 as the canonical source).
func (l Layout) ownerOf(i int) int {
	q := len(l.Cores)
	switch l.Kind {
	case Cyclic:
		return i % q
	case Replicated:
		return 0
	default:
		// Block with remainder spread like runtime.BlockRange.
		base, rem := l.N/q, l.N%q
		if i < rem*(base+1) {
			return i / (base + 1)
		}
		return rem + (i-rem*(base+1))/base
	}
}

// Ranges returns the element ranges owned by the given rank as sorted
// [lo, hi) pairs. For Replicated every rank owns everything.
func (l Layout) Ranges(rank int) [][2]int {
	if l.Kind == Replicated {
		if l.N == 0 {
			return nil
		}
		return [][2]int{{0, l.N}}
	}
	var out [][2]int
	start := -1
	for i := 0; i < l.N; i++ {
		if l.ownerOf(i) == rank {
			if start < 0 {
				start = i
			}
		} else if start >= 0 {
			out = append(out, [2]int{start, i})
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, [2]int{start, l.N})
	}
	return out
}

// Message is one point-to-point transfer of a plan: the element range
// [Lo, Hi) moves from core From to core To.
type Message struct {
	From, To arch.CoreID
	Lo, Hi   int
}

// Bytes returns the payload of the message for the given element size.
func (m Message) Bytes(elemBytes int) int { return (m.Hi - m.Lo) * elemBytes }

// Plan is the ordered message set of one re-distribution.
type Plan struct {
	Src, Dst Layout
	Messages []Message
}

// NewPlan computes the messages that re-distribute n elements from the
// source layout to the destination layout. Transfers between the same
// physical core are elided (local copies). For a replicated destination,
// every destination core receives the full data (from the closest source
// owner in rank order); for a replicated source, rank 0 of the source
// serves as the producer.
func NewPlan(src, dst Layout) (*Plan, error) {
	if err := src.Validate(); err != nil {
		return nil, err
	}
	if err := dst.Validate(); err != nil {
		return nil, err
	}
	if src.N != dst.N {
		return nil, fmt.Errorf("redist: source has %d elements, destination %d", src.N, dst.N)
	}
	p := &Plan{Src: src, Dst: dst}
	dstRanks := len(dst.Cores)
	for r := 0; r < dstRanks; r++ {
		for _, rng := range dst.Ranges(r) {
			// Split the destination range by source ownership.
			lo := rng[0]
			for lo < rng[1] {
				owner := src.ownerOf(lo)
				hi := lo + 1
				for hi < rng[1] && src.ownerOf(hi) == owner {
					hi++
				}
				from := src.Cores[owner]
				to := dst.Cores[r]
				if from != to {
					p.Messages = append(p.Messages, Message{From: from, To: to, Lo: lo, Hi: hi})
				}
				lo = hi
			}
		}
	}
	sort.Slice(p.Messages, func(i, j int) bool {
		a, b := p.Messages[i], p.Messages[j]
		if a.Lo != b.Lo {
			return a.Lo < b.Lo
		}
		return a.Hi < b.Hi
	})
	return p, nil
}

// TotalBytes returns the summed payload of the plan.
func (p *Plan) TotalBytes(elemBytes int) int {
	total := 0
	for _, m := range p.Messages {
		total += m.Bytes(elemBytes)
	}
	return total
}

// Validate checks the plan's correctness invariants: every destination
// element is covered exactly once per destination core (except elements
// already local), sources own what they send, and ranges are well formed.
func (p *Plan) Validate() error {
	// Coverage per destination rank.
	for r := range p.Dst.Cores {
		need := p.Dst.Ranges(r)
		covered := make(map[int]bool)
		for _, m := range p.Messages {
			if m.To != p.Dst.Cores[r] {
				continue
			}
			if m.Lo >= m.Hi || m.Lo < 0 || m.Hi > p.Dst.N {
				return fmt.Errorf("redist: malformed range [%d,%d)", m.Lo, m.Hi)
			}
			for i := m.Lo; i < m.Hi; i++ {
				if covered[i] {
					return fmt.Errorf("redist: element %d delivered twice to %v", i, m.To)
				}
				covered[i] = true
			}
		}
		for _, rng := range need {
			for i := rng[0]; i < rng[1]; i++ {
				if covered[i] {
					continue
				}
				// Acceptable only if the element is already
				// local on this core under the source layout.
				local := false
				if p.Src.Kind == Replicated {
					for _, c := range p.Src.Cores {
						if c == p.Dst.Cores[r] {
							local = true
						}
					}
				} else {
					owner := p.Src.Cores[p.Src.ownerOf(i)]
					local = owner == p.Dst.Cores[r]
				}
				if !local {
					return fmt.Errorf("redist: element %d missing at %v", i, p.Dst.Cores[r])
				}
			}
		}
	}
	// Senders own what they send.
	for _, m := range p.Messages {
		for i := m.Lo; i < m.Hi; i++ {
			if p.Src.Kind == Replicated {
				continue
			}
			if p.Src.Cores[p.Src.ownerOf(i)] != m.From {
				return fmt.Errorf("redist: core %v sends element %d it does not own", m.From, i)
			}
		}
	}
	return nil
}

// CrossNodeBytes returns the payload that crosses node boundaries — the
// quantity the scattered mapping minimises for orthogonal exchanges
// (Section 3.4).
func (p *Plan) CrossNodeBytes(elemBytes int) int {
	total := 0
	for _, m := range p.Messages {
		if m.From.Node != m.To.Node {
			total += m.Bytes(elemBytes)
		}
	}
	return total
}
