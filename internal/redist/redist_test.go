package redist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mtask/internal/arch"
)

func cores(n int) []arch.CoreID {
	m := arch.CHiC().Subset((n + 3) / 4)
	return m.AllCores()[:n]
}

func TestLayoutRangesBlock(t *testing.T) {
	l := Layout{Kind: Block, Cores: cores(4), N: 10}
	// 10 over 4: 3,3,2,2 like runtime.BlockRange.
	wants := [][][2]int{
		{{0, 3}}, {{3, 6}}, {{6, 8}}, {{8, 10}},
	}
	for r, want := range wants {
		got := l.Ranges(r)
		if len(got) != 1 || got[0] != want[0] {
			t.Fatalf("rank %d ranges = %v, want %v", r, got, want)
		}
	}
}

func TestLayoutRangesCyclic(t *testing.T) {
	l := Layout{Kind: Cyclic, Cores: cores(3), N: 7}
	got := l.Ranges(1) // elements 1, 4
	want := [][2]int{{1, 2}, {4, 5}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("cyclic ranges = %v, want %v", got, want)
	}
}

func TestLayoutRangesReplicated(t *testing.T) {
	l := Layout{Kind: Replicated, Cores: cores(2), N: 5}
	for r := 0; r < 2; r++ {
		got := l.Ranges(r)
		if len(got) != 1 || got[0] != [2]int{0, 5} {
			t.Fatalf("replicated ranges = %v", got)
		}
	}
}

func TestPlanBlockToBlockDifferentGroups(t *testing.T) {
	all := cores(8)
	src := Layout{Kind: Block, Cores: all[:4], N: 16}
	dst := Layout{Kind: Block, Cores: all[4:], N: 16}
	p, err := NewPlan(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Disjoint groups: every element must move.
	if got := p.TotalBytes(8); got != 16*8 {
		t.Fatalf("total bytes = %d, want %d", got, 16*8)
	}
}

func TestPlanSameLayoutIsEmpty(t *testing.T) {
	all := cores(4)
	l := Layout{Kind: Block, Cores: all, N: 12}
	p, err := NewPlan(l, l)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Messages) != 0 {
		t.Fatalf("same-layout plan has %d messages", len(p.Messages))
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPlanBlockToCyclicSameGroup(t *testing.T) {
	all := cores(4)
	src := Layout{Kind: Block, Cores: all, N: 16}
	dst := Layout{Kind: Cyclic, Cores: all, N: 16}
	p, err := NewPlan(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Block rank 0 owns 0..3; cyclic rank 0 owns 0,4,8,12: element 0
	// stays local, 4, 8, 12 move in.
	if len(p.Messages) == 0 {
		t.Fatal("block->cyclic produced no messages")
	}
}

func TestPlanToReplicated(t *testing.T) {
	all := cores(4)
	src := Layout{Kind: Block, Cores: all[:2], N: 8}
	dst := Layout{Kind: Replicated, Cores: all[2:], N: 8}
	p, err := NewPlan(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every destination core receives all 8 elements.
	if got := p.TotalBytes(1); got != 16 {
		t.Fatalf("replicated fan-out bytes = %d, want 16", got)
	}
}

func TestPlanErrors(t *testing.T) {
	all := cores(2)
	if _, err := NewPlan(Layout{Kind: Block, Cores: all, N: 4},
		Layout{Kind: Block, Cores: all, N: 5}); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := NewPlan(Layout{Kind: Block, N: 4},
		Layout{Kind: Block, Cores: all, N: 4}); err == nil {
		t.Fatal("empty source group accepted")
	}
}

func TestCrossNodeBytesMappingSensitivity(t *testing.T) {
	// Orthogonal exchange between two 4-core groups: under a scattered
	// mapping the corresponding cores share nodes, so fewer bytes cross
	// nodes than under a consecutive mapping (the Section 3.4 argument).
	m := arch.CHiC().Subset(2) // 2 nodes x 4 cores
	seqCons := m.AllCores()
	srcCons := Layout{Kind: Block, Cores: seqCons[:4], N: 64}
	dstCons := Layout{Kind: Block, Cores: seqCons[4:], N: 64}
	pc, _ := NewPlan(srcCons, dstCons)

	var seqScat []arch.CoreID
	for p := 0; p < 2; p++ {
		for c := 0; c < 2; c++ {
			for n := 0; n < 2; n++ {
				seqScat = append(seqScat, arch.CoreID{Node: n, Proc: p, Core: c})
			}
		}
	}
	srcScat := Layout{Kind: Block, Cores: seqScat[:4], N: 64}
	dstScat := Layout{Kind: Block, Cores: seqScat[4:], N: 64}
	ps, _ := NewPlan(srcScat, dstScat)

	cons := pc.CrossNodeBytes(8)
	scat := ps.CrossNodeBytes(8)
	if !(scat < cons) {
		t.Fatalf("scattered cross-node bytes %d not below consecutive %d", scat, cons)
	}
}

// Property: for random layouts, plans validate and conserve data volume.
func TestPlanPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	kinds := []Kind{Block, Cyclic, Replicated}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		all := cores(8)
		srcQ := 1 + rng.Intn(4)
		dstQ := 1 + rng.Intn(4)
		srcOff := rng.Intn(8 - srcQ + 1)
		dstOff := rng.Intn(8 - dstQ + 1)
		src := Layout{Kind: kinds[rng.Intn(3)], Cores: all[srcOff : srcOff+srcQ], N: n}
		dst := Layout{Kind: kinds[rng.Intn(3)], Cores: all[dstOff : dstOff+dstQ], N: n}
		p, err := NewPlan(src, dst)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d (%v->%v, n=%d): %v", trial, src.Kind, dst.Kind, n, err)
		}
		// No message exceeds the data size; cross-node subset of total.
		if p.CrossNodeBytes(1) > p.TotalBytes(1) {
			t.Fatalf("trial %d: cross-node exceeds total", trial)
		}
	}
}

// Property (testing/quick): plans over random shapes validate and the
// per-destination received+local elements exactly cover the destination's
// ownership.
func TestQuickPlanInvariants(t *testing.T) {
	f := func(nRaw, srcKindRaw, dstKindRaw, srcQRaw, dstQRaw uint8) bool {
		n := int(nRaw%64) + 1
		kinds := []Kind{Block, Cyclic, Replicated}
		all := cores(8)
		srcQ := int(srcQRaw%4) + 1
		dstQ := int(dstQRaw%4) + 1
		src := Layout{Kind: kinds[srcKindRaw%3], Cores: all[:srcQ], N: n}
		dst := Layout{Kind: kinds[dstKindRaw%3], Cores: all[8-dstQ:], N: n}
		p, err := NewPlan(src, dst)
		if err != nil {
			return false
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
