package runtime

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mtask/internal/core"
	"mtask/internal/fault"
	"mtask/internal/graph"
)

// TestAbandonGraceAbandonsHungBody covers the abandon path end to end: a
// body hanging in pure computation (ignoring its context and immune to the
// communicator abort) past the grace is abandoned, the straggler rank
// blocked in a global collective is released by the layer-end errLayerDone
// abort, and the surfaced error names the timeout cause.
func TestAbandonGraceAbandonsHungBody(t *testing.T) {
	g := graph.New("hang")
	a := g.AddBasic("a", 1)
	sched := &core.Schedule{
		Source: g,
		Graph:  g,
		P:      2,
		Layers: []*core.LayerSchedule{{
			Layer:  graph.Layer{a},
			Groups: [][]graph.TaskID{{a}},
			Sizes:  []int{2},
		}},
	}
	w, _ := NewWorld(2)

	hang := make(chan struct{})
	t.Cleanup(func() { close(hang) }) // release the leaked goroutine
	var released atomic.Int32
	var globalEntered atomic.Bool
	body := func(task *graph.Task) TaskFunc {
		return func(tc *TaskCtx) error {
			if tc.Group.Rank() == 0 {
				<-hang // pure computation: no ctx check, no collective
				return nil
			}
			// Rank 1 blocks in a global collective rank 0 never joins; the
			// attempt-level group abort cannot reach it, only the
			// layer-end abort of the global communicator can. Only the first
			// attempt may enter: the global communicator is shared by the
			// whole layer across retries, so a retry entering the barrier
			// would alias the rank slot its abandoned predecessor still
			// occupies (bodies holding a global collective past the abandon
			// grace must not re-enter it on retry).
			if !globalEntered.CompareAndSwap(false, true) {
				return errors.New("rank 1 retry failing fast")
			}
			defer released.Add(1)
			tc.Global.Barrier()
			return nil
		}
	}

	pol := fault.DefaultPolicy()
	pol.TaskTimeout = 20 * time.Millisecond
	start := time.Now()
	rep, err := ExecuteCtx(context.Background(), w, sched, body,
		WithPolicy(pol), WithAbandonGrace(30*time.Millisecond))
	if err == nil {
		t.Fatalf("hung body reported success: %s", rep)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("returned after %v, before timeout+grace", elapsed)
	}
	if !strings.Contains(err.Error(), "abandoned after") {
		t.Fatalf("error does not mark the attempt abandoned: %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error does not name the timeout cause: %v", err)
	}
	if got := rep.Task("a").Failures; got == 0 {
		t.Fatalf("abandoned attempt not counted as failure: %s", rep)
	}

	// The layer-end abort must have released the straggler blocked in the
	// global barrier (its AbortError panic runs the body's defer).
	deadline := time.Now().Add(2 * time.Second)
	for released.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if released.Load() == 0 {
		t.Fatal("straggler still blocked in the global collective after the layer ended")
	}
}
