package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// mustFinish fails the test if fn does not return within the deadline —
// the deadlock detector of the abort tests.
func mustFinish(t *testing.T, d time.Duration, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal("deadlocked: goroutines still blocked in a collective")
	}
}

func TestAbortReleasesBarrier(t *testing.T) {
	// One rank returns early with an error while its peers sit in a
	// barrier: the abort must release them with an *AbortError instead of
	// deadlocking.
	w, _ := NewWorld(8)
	cause := errors.New("rank 3 gave up")
	mustFinish(t, 10*time.Second, func() {
		err := w.RunCtx(context.Background(), func(c *Comm) error {
			if c.Rank() == 3 {
				return cause
			}
			c.Barrier() // would deadlock without abort poisoning
			return nil
		})
		if !errors.Is(err, cause) {
			t.Errorf("cause lost: %v", err)
		}
		if !errors.Is(err, ErrCommAborted) {
			t.Errorf("abort sentinel lost: %v", err)
		}
	})
}

func TestAbortReleasesDataCollectives(t *testing.T) {
	// Early-returning participants must unblock peers in every collective
	// (Bcast, Allgather, AllreduceSum, ExchangeAny), not just Barrier.
	for _, op := range []struct {
		name string
		call func(c *Comm)
	}{
		{"bcast", func(c *Comm) { c.Bcast(0, []float64{1}) }},
		{"allgather", func(c *Comm) { c.Allgather([]float64{float64(c.Rank())}) }},
		{"allreduce", func(c *Comm) { c.AllreduceSum(1) }},
		{"exchange", func(c *Comm) { c.ExchangeAny(c.Rank()) }},
	} {
		t.Run(op.name, func(t *testing.T) {
			w, _ := NewWorld(6)
			mustFinish(t, 10*time.Second, func() {
				err := w.RunCtx(context.Background(), func(c *Comm) error {
					if c.Rank() == 5 {
						return fmt.Errorf("deserter")
					}
					op.call(c)
					return nil
				})
				if err == nil {
					t.Error("error swallowed")
				}
			})
		})
	}
}

func TestAbortCascadesToSplitChildren(t *testing.T) {
	// A rank fails while peers are blocked in collectives of a CHILD
	// communicator (created by Split): the abort of the parent must
	// cascade to the children.
	w, _ := NewWorld(8)
	mustFinish(t, 10*time.Second, func() {
		err := w.RunCtx(context.Background(), func(c *Comm) error {
			sub := c.Split(c.Rank()/4, c.Rank(), Group)
			if c.Rank() == 0 {
				return fmt.Errorf("parent rank 0 failed")
			}
			sub.Barrier() // must be released by the cascaded abort
			return nil
		})
		if err == nil {
			t.Error("error swallowed")
		}
	})
}

func TestRunCtxCancellation(t *testing.T) {
	// Canceling the context aborts the world communicator: ranks blocked
	// in a barrier fail instead of hanging.
	w, _ := NewWorld(4)
	ctx, cancel := context.WithCancel(context.Background())
	var entered atomic.Int64
	go func() {
		for entered.Load() < 4 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	mustFinish(t, 10*time.Second, func() {
		err := w.RunCtx(ctx, func(c *Comm) error {
			entered.Add(1)
			for i := 0; i < 1_000_000; i++ {
				c.Barrier()
			}
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("got %v, want context.Canceled", err)
		}
	})
}

func TestRunIsolatesPanicOntoCaller(t *testing.T) {
	// World.Run re-raises a body panic as *PanicError on the caller
	// goroutine (where it can be recovered), instead of crashing the
	// process from an anonymous goroutine; blocked peers are released.
	w, _ := NewWorld(4)
	mustFinish(t, 10*time.Second, func() {
		defer func() {
			p := recover()
			if p == nil {
				t.Error("panic not re-raised")
				return
			}
			pe, ok := p.(*PanicError)
			if !ok {
				t.Errorf("recovered %T, want *PanicError", p)
				return
			}
			if fmt.Sprint(pe.Value) != "boom" || len(pe.Stack) == 0 {
				t.Errorf("panic value/stack lost: %v", pe.Value)
			}
		}()
		w.Run(func(c *Comm) {
			if c.Rank() == 2 {
				panic("boom")
			}
			c.Barrier()
		})
	})
}

func TestAbortErrorIs(t *testing.T) {
	cause := errors.New("root cause")
	err := fmt.Errorf("wrapped: %w", &AbortError{Cause: cause})
	if !errors.Is(err, ErrCommAborted) {
		t.Error("AbortError does not match ErrCommAborted")
	}
	if !errors.Is(err, cause) {
		t.Error("AbortError does not unwrap to its cause")
	}
}

func TestCommAbortPublic(t *testing.T) {
	// The public Comm.Abort fails the communicator for all members.
	w, _ := NewWorld(4)
	cause := errors.New("external abort")
	mustFinish(t, 10*time.Second, func() {
		err := w.RunCtx(context.Background(), func(c *Comm) error {
			if c.Rank() == 0 {
				c.Abort(cause)
				return nil
			}
			c.Barrier()
			return nil
		})
		if !errors.Is(err, cause) {
			t.Errorf("cause lost: %v", err)
		}
	})
}
