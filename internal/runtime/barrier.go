package runtime

import (
	stdruntime "runtime"
	"sync/atomic"
	"time"
)

// The collective engine synchronises with a dissemination barrier built on
// atomics instead of the former central mutex + condition variable: member
// i completes ceil(log2 n) signalling rounds, in round r storing its
// generation into the flag of member (i+2^r) mod n and waiting for its own
// round-r flag to reach the generation. Every flag is written by exactly
// one peer and padded to its own cache line, so a barrier round costs
// log(n) uncontended atomic operations per member instead of n lock
// acquisitions on one mutex — matching the logarithmic collective costs
// (Tbc/Tag ~ log q) the paper's cost model assumes (Section 3.1).
//
// Waiting is a staged poll: a short busy spin (skipped when GOMAXPROCS is
// 1), then cooperative yields, then micro-sleeps, so parked members
// neither burn a core while a peer computes nor pay a wakeup syscall on
// the fast path.

// cacheLinePad pads hot per-member fields to 64-byte lines to prevent
// false sharing between members.
const (
	barrierSpins  = 64                    // busy-spin iterations (multicore only)
	barrierYields = 128                   // cooperative yields before sleeping
	barrierSleep  = 20 * time.Microsecond // poll interval once parked
)

// barrierFlag is one member's incoming signal slot for one round, alone on
// its cache line. It carries the barrier generation of the signalling
// peer and only ever increases.
type barrierFlag struct {
	v atomic.Uint64
	_ [56]byte
}

// memberState is the per-member lockstep state: the member's barrier
// generation and its collective sequence number (which selects the slot
// parity and keys split generations). Only the owning member reads or
// writes it, so it needs no atomics — padding keeps neighbours off the
// line.
type memberState struct {
	gen uint64 // completed barrier generations
	seq uint64 // collective operations issued (slot parity = seq&1)
	_   [48]byte
}

// abortCause carries the poison reason; stored once via CAS so the first
// cause wins.
type abortCause struct{ err error }

// treeBarrier is the reusable dissemination barrier of a communicator. An
// aborted barrier makes every current and future wait panic with an
// *AbortError: current waiters observe the poison on their next poll, so
// an abort "wakes" spinners exactly as the old broadcast woke sleepers.
type treeBarrier struct {
	n      int
	rounds int
	spin   int
	flags  []barrierFlag // n*rounds; flags[m*rounds+r] written by (m-2^r+n)%n
	poison atomic.Pointer[abortCause]
}

// barrierRounds returns ceil(log2(n)), the dissemination round count.
func barrierRounds(n int) int {
	r := 0
	for 1<<r < n {
		r++
	}
	return r
}

// reset prepares the barrier for n members, reusing the flag array when a
// pooled communicator is recycled.
func (b *treeBarrier) reset(n int) {
	b.n = n
	b.rounds = barrierRounds(n)
	b.spin = barrierSpins
	if stdruntime.GOMAXPROCS(0) == 1 {
		b.spin = 0 // spinning cannot help on a single P
	}
	need := n * b.rounds
	if cap(b.flags) < need {
		b.flags = make([]barrierFlag, need)
	} else {
		b.flags = b.flags[:need]
		for i := range b.flags {
			b.flags[i].v.Store(0)
		}
	}
	b.poison.Store(nil)
}

// abort poisons the barrier (first cause wins); nil defaults to
// ErrCommAborted.
func (b *treeBarrier) abort(err error) {
	if err == nil {
		err = ErrCommAborted
	}
	b.poison.CompareAndSwap(nil, &abortCause{err: err})
}

// check panics with an *AbortError if the barrier is poisoned.
func (b *treeBarrier) check() {
	if c := b.poison.Load(); c != nil {
		panic(&AbortError{Cause: c.err})
	}
}

// wait completes one barrier generation for the member that owns ms. All
// members must call wait the same number of times (SPMD discipline). When
// wait returns, every member has entered this generation, and — by the
// transitivity of the atomic signal chains — every write a member issued
// before its wait is visible to every other member after its wait.
func (b *treeBarrier) wait(ms *memberState, self int) {
	b.check()
	ms.gen++
	if b.rounds == 0 { // singleton: nothing to synchronise
		return
	}
	g := ms.gen
	for r := 0; r < b.rounds; r++ {
		partner := self + 1<<r
		if partner >= b.n {
			partner -= b.n
		}
		b.flags[partner*b.rounds+r].v.Store(g)
		f := &b.flags[self*b.rounds+r].v
		for spins := 0; f.Load() < g; spins++ {
			b.check()
			switch {
			case spins < b.spin:
				// busy spin
			case spins < b.spin+barrierYields:
				stdruntime.Gosched()
			default:
				time.Sleep(barrierSleep)
			}
		}
	}
}
