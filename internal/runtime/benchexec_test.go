package runtime

import (
	"fmt"
	"testing"
)

// Execution-layer microbenchmarks: the per-operation cost of the collective
// engine (barrier rounds, broadcast, allgather, reduction, exchange and
// split) at several group sizes. These are the "before/after" probes of
// BENCH_exec.json; regenerate with
//
//	go test -run '^$' -bench 'BenchmarkExec' -benchtime 2000x -count 3 ./internal/runtime
//
// The ns/op of one iteration covers ONE collective performed by ALL
// members (the world goroutines run the loop in lockstep), and allocs/op
// aggregates the allocations of every member.

// benchCollective runs fn b.N times on every rank of a p-core world.
func benchCollective(b *testing.B, p int, fn func(c *Comm, i int)) {
	b.Helper()
	w, err := NewWorld(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	w.Run(func(c *Comm) {
		for i := 0; i < b.N; i++ {
			fn(c, i)
		}
	})
}

func BenchmarkExecBarrier(b *testing.B) {
	for _, p := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			benchCollective(b, p, func(c *Comm, _ int) {
				c.Barrier()
			})
		})
	}
}

func BenchmarkExecBcast(b *testing.B) {
	const n = 256
	for _, p := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			data := make([]float64, n)
			for i := range data {
				data[i] = float64(i)
			}
			benchCollective(b, p, func(c *Comm, _ int) {
				var src []float64
				if c.Rank() == 0 {
					src = data
				}
				c.Bcast(0, src)
			})
		})
	}
}

func BenchmarkExecAllgather(b *testing.B) {
	const n = 256
	for _, p := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			benchCollective(b, p, func(c *Comm, _ int) {
				lo, hi := BlockRange(n, c.Size(), c.Rank())
				contrib := make([]float64, hi-lo)
				c.Allgather(contrib)
			})
		})
	}
}

// The *Into variants write into caller-owned buffers — their allocs/op
// must be zero in steady state.

func BenchmarkExecBcastInto(b *testing.B) {
	const n = 256
	for _, p := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			w, err := NewWorld(p)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			w.Run(func(c *Comm) {
				buf := make([]float64, n)
				for i := 0; i < b.N; i++ {
					c.BcastInto(0, buf)
				}
			})
		})
	}
}

func BenchmarkExecAllgatherInto(b *testing.B) {
	const n = 256
	for _, p := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			w, err := NewWorld(p)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			w.Run(func(c *Comm) {
				lo, hi := BlockRange(n, c.Size(), c.Rank())
				contrib := make([]float64, hi-lo)
				var dst []float64
				for i := 0; i < b.N; i++ {
					dst = c.AllgatherInto(contrib, dst)
				}
			})
		})
	}
}

func BenchmarkExecReduceInto(b *testing.B) {
	const n = 256
	for _, p := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			w, err := NewWorld(p)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			w.Run(func(c *Comm) {
				contrib := make([]float64, n)
				var dst []float64
				for i := 0; i < b.N; i++ {
					dst = c.ReduceInto(ReduceSum, contrib, dst)
				}
			})
		})
	}
}

func BenchmarkExecReduceSum(b *testing.B) {
	for _, p := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			benchCollective(b, p, func(c *Comm, i int) {
				c.AllreduceSum(float64(i))
			})
		})
	}
}

func BenchmarkExecReduceMax(b *testing.B) {
	benchCollective(b, 8, func(c *Comm, i int) {
		c.AllreduceMax(float64(i))
	})
}

func BenchmarkExecExchangeAny(b *testing.B) {
	benchCollective(b, 4, func(c *Comm, i int) {
		c.ExchangeAny(c.Rank())
	})
}

func BenchmarkExecSplit(b *testing.B) {
	benchCollective(b, 8, func(c *Comm, i int) {
		g := c.Split(c.Rank()/4, c.Rank(), Group)
		_ = g
	})
}
