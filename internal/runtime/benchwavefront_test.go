package runtime

import (
	"context"
	"testing"
	"time"

	"mtask/internal/graph"
	"mtask/internal/obs"
)

// The imbalanced-schedule pair measures what the wavefront dispatcher
// recovers from layer barriers: per layer one group sleeps `slow`, the
// other `fast`, with the slow side alternating. The layered executor pays
// layers×slow; the wavefront executor overlaps the chains and pays about
// layers×(slow+fast)/2. The sleep-based bodies make the comparison valid
// on any core count (including the single-CPU CI runner): the win is
// waiting time, not compute parallelism.
func benchImbalanced(b *testing.B, opts ...ExecOption) {
	const layers = 8
	sched := ImbalancedWorkload(2, layers)
	body := ImbalancedBody(4*time.Millisecond, 500*time.Microsecond)
	w, _ := NewWorld(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := ExecuteCtx(context.Background(), w, sched, body, opts...)
		if err != nil {
			b.Fatalf("%v\n%s", err, rep)
		}
	}
}

func BenchmarkExecLayeredImbalanced(b *testing.B)   { benchImbalanced(b) }
func BenchmarkExecWavefrontImbalanced(b *testing.B) { benchImbalanced(b, WithWavefront()) }

// BenchmarkExecWavefrontDispatch measures the dispatcher's own overhead
// (counter decrements, per-task goroutines) with no-op bodies on a
// balanced schedule, against the layered baseline.
func benchDispatchOverhead(b *testing.B, opts ...ExecOption) {
	sched := ImbalancedWorkload(2, 16)
	body := ImbalancedBody(0, 0)
	w, _ := NewWorld(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExecuteCtx(context.Background(), w, sched, body, opts...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecLayeredDispatch(b *testing.B)   { benchDispatchOverhead(b) }
func BenchmarkExecWavefrontDispatch(b *testing.B) { benchDispatchOverhead(b, WithWavefront()) }

// BenchmarkExecWavefrontDispatchChannel pins the retired goroutine-per-task
// channel dispatcher on the same workload — the before/after pair for the
// persistent-worker rewrite.
func BenchmarkExecWavefrontDispatchChannel(b *testing.B) {
	benchDispatchOverhead(b, WithWavefront(), WithChannelDispatcher())
}

// The scaled-dispatch trio measures pure per-task dispatch overhead at
// planning-benchmark shapes: 2000 trivial group tasks on 8 ranks in lean
// (WithoutTimeline) reports, so the numbers are counters, wakeups and
// scratch reuse — not bodies, spans or sleeps. ns/task is reported as its
// own metric; allocs/op divided by 2000 is the per-task allocation rate
// gated by TestWavefrontDispatchAllocFree.
func benchScaledDispatch(b *testing.B, opts ...ExecOption) {
	const tasks = 500 * 4 // layers x groups-of-2 on 8 ranks
	sched := gridSchedule(8, 500, 2)
	shared := func(tc *TaskCtx) error { return nil }
	body := func(*graph.Task) TaskFunc { return shared }
	w, _ := NewWorld(8)
	opts = append(opts, WithoutTimeline())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := ExecuteCtx(context.Background(), w, sched, body, opts...)
		if err != nil {
			b.Fatalf("%v\n%s", err, rep)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*tasks), "ns/task")
}

func BenchmarkExecScaledDispatchLayered(b *testing.B) { benchScaledDispatch(b) }
func BenchmarkExecScaledDispatchWorkers(b *testing.B) { benchScaledDispatch(b, WithWavefront()) }
func BenchmarkExecScaledDispatchChannel(b *testing.B) {
	benchScaledDispatch(b, WithWavefront(), WithChannelDispatcher())
}

// The recorder-overhead pair: NilRecorder pins the no-op fast path of an
// unused WithRecorder(nil) against the plain dispatch baseline (the two
// must be indistinguishable — a nil check per instrumented site), and
// Traced measures a live recorder (required: ≤ 5% over the baseline).
// The recorder is reset between iterations so the rings never fill;
// drops would make iterations cheaper, not slower.
func BenchmarkExecLayeredDispatchNilRecorder(b *testing.B) {
	benchDispatchOverhead(b, WithRecorder(nil))
}

func benchDispatchTraced(b *testing.B, opts ...ExecOption) {
	sched := ImbalancedWorkload(2, 16)
	body := ImbalancedBody(0, 0)
	w, _ := NewWorld(2)
	// Small rings (reset each iteration) keep the GC scan footprint of
	// the event buffers out of the measurement.
	rec := obs.New(2, obs.WithCapacity(256))
	opts = append(opts, WithRecorder(rec))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExecuteCtx(context.Background(), w, sched, body, opts...); err != nil {
			b.Fatal(err)
		}
		if rec.Drops() > 0 {
			b.Fatalf("recorder dropped %d events; grow the ring", rec.Drops())
		}
		rec.Reset()
	}
}

func BenchmarkExecLayeredDispatchTraced(b *testing.B)   { benchDispatchTraced(b) }
func BenchmarkExecWavefrontDispatchTraced(b *testing.B) { benchDispatchTraced(b, WithWavefront()) }
