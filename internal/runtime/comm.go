// Package runtime executes M-task programs with goroutines in shared
// memory. It replaces the MPI processes of the paper's generated programs:
// every symbolic core is a goroutine, groups of cores communicate through
// group communicators offering the collective operations of the ODE
// solvers (barrier, broadcast, allgather), and every collective is counted
// by communicator category — global, group-based or orthogonal — so that
// the operation counts of Table 1 can be measured rather than assumed.
//
// The runtime provides functional execution (real numerics, real
// synchronization); timing experiments at cluster scale use the simulator
// in internal/cluster instead.
package runtime

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// CommKind categorises a communicator for the operation statistics,
// following the three communication types of Section 4.2.
type CommKind int

const (
	// Global communicators span all cores of the program.
	Global CommKind = iota
	// Group communicators span the cores executing one M-task.
	Group
	// Orthogonal communicators connect cores with the same position
	// within concurrently executed M-tasks.
	Orthogonal
)

func (k CommKind) String() string {
	switch k {
	case Global:
		return "global"
	case Group:
		return "group"
	case Orthogonal:
		return "orthogonal"
	}
	return fmt.Sprintf("CommKind(%d)", int(k))
}

// Op identifies a collective operation type for the statistics.
type Op int

const (
	// OpBcast is a broadcast (the paper's Tbc).
	OpBcast Op = iota
	// OpAllgather is a multi-broadcast (the paper's Tag).
	OpAllgather
	// OpBarrier is a pure barrier.
	OpBarrier
	// OpReduce is an all-reduce.
	OpReduce
	// OpRedist is a data re-distribution between cooperating M-tasks
	// (inserted by the CM-task compiler); the paper accounts for these
	// separately from the collective operations of Table 1.
	OpRedist
)

func (o Op) String() string {
	switch o {
	case OpBcast:
		return "bcast"
	case OpAllgather:
		return "allgather"
	case OpBarrier:
		return "barrier"
	case OpReduce:
		return "reduce"
	case OpRedist:
		return "redistribution"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Stats counts collective operations by communicator kind and operation.
// Each collective is counted once (not once per participating core).
type Stats struct {
	mu     sync.Mutex
	counts map[[2]int]int
}

// add records one collective.
func (s *Stats) add(kind CommKind, op Op) {
	s.mu.Lock()
	if s.counts == nil {
		s.counts = make(map[[2]int]int)
	}
	s.counts[[2]int{int(kind), int(op)}]++
	s.mu.Unlock()
}

// Count returns the number of recorded collectives of the given kind/op.
func (s *Stats) Count(kind CommKind, op Op) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[[2]int{int(kind), int(op)}]
}

// Reset clears all counters.
func (s *Stats) Reset() {
	s.mu.Lock()
	s.counts = nil
	s.mu.Unlock()
}

// Total returns the total number of collectives of any kind.
func (s *Stats) Total() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := 0
	for _, c := range s.counts {
		t += c
	}
	return t
}

// AbortError is the panic value thrown by every collective call on an
// aborted communicator. The fault-tolerant executor (ExecuteCtx) recovers
// it and converts it to an error wrapping ErrCommAborted; code running
// outside the executor can recover it explicitly. Cause is the abort
// reason handed to Comm.Abort.
type AbortError struct {
	Cause error
}

func (e *AbortError) Error() string {
	if e.Cause == nil {
		return "runtime: communicator aborted"
	}
	return fmt.Sprintf("runtime: communicator aborted: %v", e.Cause)
}

// Unwrap exposes the abort cause to errors.Is/errors.As.
func (e *AbortError) Unwrap() error { return e.Cause }

// Is makes errors.Is(err, ErrCommAborted) match any AbortError.
func (e *AbortError) Is(target error) bool { return target == ErrCommAborted }

// ErrCommAborted is matched (via errors.Is) by every AbortError.
var ErrCommAborted = errors.New("runtime: communicator aborted")

// barrier is a reusable sense-reversing barrier for a fixed number of
// participants. An aborted barrier wakes all waiters and makes every
// current and future wait panic with *AbortError, so that a failed or
// timed-out participant cannot deadlock its peers at a collective.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
	err   error // abort cause; nil while healthy
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// abort poisons the barrier with the given cause (the first cause wins)
// and wakes every waiter.
func (b *barrier) abort(err error) {
	if err == nil {
		err = ErrCommAborted
	}
	b.mu.Lock()
	if b.err == nil {
		b.err = err
		b.cond.Broadcast()
	}
	b.mu.Unlock()
}

func (b *barrier) wait() {
	b.mu.Lock()
	if b.err != nil {
		err := b.err
		b.mu.Unlock()
		panic(&AbortError{Cause: err})
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen && b.err == nil {
		b.cond.Wait()
	}
	if b.err != nil {
		err := b.err
		b.mu.Unlock()
		panic(&AbortError{Cause: err})
	}
	b.mu.Unlock()
}

// commShared is the state shared by all member handles of a communicator.
type commShared struct {
	kind  CommKind
	ranks []int // world ranks of the members, in communicator rank order
	bar   *barrier
	slots []any // exchange slots, one per member
	stats *Stats

	mu       sync.Mutex
	splits   map[int]map[int]*commShared // split generation -> color -> child
	splitN   int
	children []*commShared // communicators split off this one, for abort cascade
}

// newCommShared builds the shared state of a communicator over the given
// world ranks. Used by World.Run and by the fault-tolerant executor, which
// constructs group communicators directly from the schedule (a fresh one
// per attempt) instead of through collective Split calls.
func newCommShared(kind CommKind, worldRanks []int, stats *Stats) *commShared {
	return &commShared{
		kind:  kind,
		ranks: worldRanks,
		bar:   newBarrier(len(worldRanks)),
		slots: make([]any, len(worldRanks)),
		stats: stats,
	}
}

// abort poisons the communicator and, recursively, every communicator that
// was split off it, so a task blocked in a nested group collective is
// released as well.
func (s *commShared) abort(err error) {
	s.bar.abort(err)
	s.mu.Lock()
	kids := append([]*commShared(nil), s.children...)
	s.mu.Unlock()
	for _, k := range kids {
		k.abort(err)
	}
}

// Comm is one member's handle of a communicator. Handles are per-goroutine
// and must not be shared between goroutines.
type Comm struct {
	shared *commShared
	rank   int
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of members.
func (c *Comm) Size() int { return len(c.shared.ranks) }

// WorldRank returns the caller's rank within the world.
func (c *Comm) WorldRank() int { return c.shared.ranks[c.rank] }

// Kind returns the communicator category.
func (c *Comm) Kind() CommKind { return c.shared.kind }

// count records a collective once (rank 0 reports).
func (c *Comm) count(op Op) {
	if c.rank == 0 && c.shared.stats != nil {
		c.shared.stats.add(c.shared.kind, op)
	}
}

// Abort poisons the communicator and every communicator split off it:
// all members currently blocked in a collective are woken, and every
// current and future collective call panics with an *AbortError wrapping
// the given cause. The fault-tolerant executor uses Abort so a failed,
// panicked or timed-out task cannot deadlock its peers at a barrier; task
// bodies may also call it to broadcast an unrecoverable local failure.
func (c *Comm) Abort(cause error) {
	c.shared.abort(cause)
}

// Barrier synchronises all members.
func (c *Comm) Barrier() {
	c.count(OpBarrier)
	c.shared.bar.wait()
}

// Bcast broadcasts the root's slice to all members; every member returns
// its own copy (the root returns the original slice).
func (c *Comm) Bcast(root int, data []float64) []float64 {
	c.count(OpBcast)
	if c.Size() == 1 {
		return data
	}
	if c.rank == root {
		c.shared.slots[root] = data
	}
	c.shared.bar.wait()
	src := c.shared.slots[root].([]float64)
	var out []float64
	if c.rank == root {
		out = data
	} else {
		out = make([]float64, len(src))
		copy(out, src)
	}
	c.shared.bar.wait() // slot may be reused afterwards
	return out
}

// Allgather concatenates every member's contribution in rank order; each
// member returns its own copy of the result (the paper's multi-broadcast,
// MPI_Allgather).
func (c *Comm) Allgather(contrib []float64) []float64 {
	return c.AllgatherAs(contrib, OpAllgather)
}

// AllgatherAs is Allgather recorded under a different operation category;
// it implements the compiler-inserted data re-distributions (OpRedist),
// which the paper accounts for separately from the collective operations.
func (c *Comm) AllgatherAs(contrib []float64, op Op) []float64 {
	c.count(op)
	if c.Size() == 1 {
		out := make([]float64, len(contrib))
		copy(out, contrib)
		return out
	}
	c.shared.slots[c.rank] = contrib
	c.shared.bar.wait()
	total := 0
	for _, s := range c.shared.slots {
		total += len(s.([]float64))
	}
	out := make([]float64, 0, total)
	for _, s := range c.shared.slots {
		out = append(out, s.([]float64)...)
	}
	c.shared.bar.wait()
	return out
}

// ExchangeAny gathers one arbitrary value per member in rank order (an
// allgather over opaque values); used by the dynamic task library for
// control data such as error states. Counted as a barrier, not as one of
// Table 1's data collectives.
func (c *Comm) ExchangeAny(v any) []any {
	c.count(OpBarrier)
	if c.Size() == 1 {
		return []any{v}
	}
	c.shared.slots[c.rank] = v
	c.shared.bar.wait()
	out := make([]any, c.Size())
	copy(out, c.shared.slots)
	c.shared.bar.wait()
	return out
}

// AllreduceMax returns the maximum of the members' values.
func (c *Comm) AllreduceMax(v float64) float64 {
	c.count(OpReduce)
	if c.Size() == 1 {
		return v
	}
	c.shared.slots[c.rank] = v
	c.shared.bar.wait()
	max := v
	for _, s := range c.shared.slots {
		if x := s.(float64); x > max {
			max = x
		}
	}
	c.shared.bar.wait()
	return max
}

// AllreduceSum returns the sum of the members' values.
func (c *Comm) AllreduceSum(v float64) float64 {
	c.count(OpReduce)
	if c.Size() == 1 {
		return v
	}
	c.shared.slots[c.rank] = v
	c.shared.bar.wait()
	sum := 0.0
	for _, s := range c.shared.slots {
		sum += s.(float64)
	}
	c.shared.bar.wait()
	return sum
}

// Split partitions the communicator like MPI_Comm_split: members calling
// with the same color form a new communicator of the given kind, ordered
// by key (ties by current rank). All members must call Split.
func (c *Comm) Split(color, key int, kind CommKind) *Comm {
	type ck struct{ color, key, rank int }
	c.shared.slots[c.rank] = ck{color: color, key: key, rank: c.rank}
	c.shared.bar.wait()

	// Deterministically compute the member lists of every color.
	members := make([]ck, c.Size())
	for i, s := range c.shared.slots {
		members[i] = s.(ck)
	}
	var mine []ck
	for _, m := range members {
		if m.color == color {
			mine = append(mine, m)
		}
	}
	sort.Slice(mine, func(i, j int) bool {
		if mine[i].key != mine[j].key {
			return mine[i].key < mine[j].key
		}
		return mine[i].rank < mine[j].rank
	})
	myIdx := -1
	worldRanks := make([]int, len(mine))
	for i, m := range mine {
		worldRanks[i] = c.shared.ranks[m.rank]
		if m.rank == c.rank {
			myIdx = i
		}
	}

	// The lowest-ranked member of each color allocates the shared
	// state; everyone retrieves it from the parent's split registry.
	c.shared.mu.Lock()
	if c.shared.splits == nil {
		c.shared.splits = make(map[int]map[int]*commShared)
	}
	gen := c.shared.splitN
	byColor, ok := c.shared.splits[gen]
	if !ok {
		byColor = make(map[int]*commShared)
		c.shared.splits[gen] = byColor
	}
	child, ok := byColor[color]
	if !ok {
		child = newCommShared(kind, worldRanks, c.shared.stats)
		byColor[color] = child
		c.shared.children = append(c.shared.children, child)
	}
	c.shared.mu.Unlock()

	// Second barrier: after it, bump the split generation exactly once
	// so a later Split on the same parent uses a fresh registry slot.
	c.shared.bar.wait()
	if c.rank == 0 {
		c.shared.mu.Lock()
		c.shared.splitN++
		delete(c.shared.splits, gen)
		c.shared.mu.Unlock()
	}
	c.shared.bar.wait()
	return &Comm{shared: child, rank: myIdx}
}
