// Package runtime executes M-task programs with goroutines in shared
// memory. It replaces the MPI processes of the paper's generated programs:
// every symbolic core is a goroutine, groups of cores communicate through
// group communicators offering the collective operations of the ODE
// solvers (barrier, broadcast, allgather), and every collective is counted
// by communicator category — global, group-based or orthogonal — so that
// the operation counts of Table 1 can be measured rather than assumed.
//
// The collective engine is built for low contention: synchronisation uses
// an atomics-based dissemination barrier (see barrier.go), data moves
// through per-member, cache-line-padded, double-buffered slots so every
// collective costs exactly one barrier round, and the *Into variants
// (BcastInto, AllgatherInto, ReduceInto) write into caller-owned buffers
// so steady-state inner loops allocate nothing. The value-returning APIs
// stage through a sync.Pool-backed scratch pool.
//
// The runtime provides functional execution (real numerics, real
// synchronization); timing experiments at cluster scale use the simulator
// in internal/cluster instead.
package runtime

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"mtask/internal/obs"
)

// CommKind categorises a communicator for the operation statistics,
// following the three communication types of Section 4.2.
type CommKind int

const (
	// Global communicators span all cores of the program.
	Global CommKind = iota
	// Group communicators span the cores executing one M-task.
	Group
	// Orthogonal communicators connect cores with the same position
	// within concurrently executed M-tasks.
	Orthogonal
)

func (k CommKind) String() string {
	switch k {
	case Global:
		return "global"
	case Group:
		return "group"
	case Orthogonal:
		return "orthogonal"
	}
	return fmt.Sprintf("CommKind(%d)", int(k))
}

// Op identifies a collective operation type for the statistics.
type Op int

const (
	// OpBcast is a broadcast (the paper's Tbc).
	OpBcast Op = iota
	// OpAllgather is a multi-broadcast (the paper's Tag).
	OpAllgather
	// OpBarrier is a pure barrier.
	OpBarrier
	// OpReduce is an all-reduce.
	OpReduce
	// OpRedist is a data re-distribution between cooperating M-tasks
	// (inserted by the CM-task compiler); the paper accounts for these
	// separately from the collective operations of Table 1.
	OpRedist
)

func (o Op) String() string {
	switch o {
	case OpBcast:
		return "bcast"
	case OpAllgather:
		return "allgather"
	case OpBarrier:
		return "barrier"
	case OpReduce:
		return "reduce"
	case OpRedist:
		return "redistribution"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// AbortError is the panic value thrown by every collective call on an
// aborted communicator. The fault-tolerant executor (ExecuteCtx) recovers
// it and converts it to an error wrapping ErrCommAborted; code running
// outside the executor can recover it explicitly. Cause is the abort
// reason handed to Comm.Abort.
type AbortError struct {
	Cause error
}

func (e *AbortError) Error() string {
	if e.Cause == nil {
		return "runtime: communicator aborted"
	}
	return fmt.Sprintf("runtime: communicator aborted: %v", e.Cause)
}

// Unwrap exposes the abort cause to errors.Is/errors.As.
func (e *AbortError) Unwrap() error { return e.Cause }

// Is makes errors.Is(err, ErrCommAborted) match any AbortError.
func (e *AbortError) Is(target error) bool { return target == ErrCommAborted }

// ErrCommAborted is matched (via errors.Is) by every AbortError.
var ErrCommAborted = errors.New("runtime: communicator aborted")

// scratchPool recycles staging buffers across communicators, so the
// value-returning collectives and pooled communicators reach a
// steady state where staging allocates nothing.
var scratchPool sync.Pool

// getScratch returns a buffer of length n from the pool (or a fresh one).
func getScratch(n int) []float64 {
	if v, _ := scratchPool.Get().(*[]float64); v != nil && cap(*v) >= n {
		return (*v)[:n]
	}
	c := n
	if c < 64 {
		c = 64
	}
	return make([]float64, n, c)
}

// putScratch returns a buffer to the pool. The boxing allocation is
// scoped behind the emptiness check: Put(&b) would make the parameter
// itself escape, charging one heap slice header per call even on the
// early return — which communicator release pays once per slot per task
// on the dispatch hot path, where most slots never staged anything.
func putScratch(b []float64) {
	if cap(b) == 0 {
		return
	}
	boxed := new([]float64)
	*boxed = b[:0]
	scratchPool.Put(boxed)
}

// fslot is one member's staging slot for float64 collectives, padded to a
// cache line (two slice headers = 48 bytes + 16). Contributions are copied
// in before the barrier, so callers may reuse their own buffers the moment
// the collective returns — the staging copy is what lets the engine drop
// the old second "slot reuse" barrier round.
type fslot struct {
	cur []float64 // staged contribution of the in-flight collective
	buf []float64 // backing storage, grown from the scratch pool
	_   [16]byte
}

// stage copies data into the slot's backing storage.
func (s *fslot) stage(data []float64) {
	if cap(s.buf) < len(data) {
		putScratch(s.buf)
		s.buf = getScratch(len(data))
	}
	s.cur = s.buf[:len(data)]
	copy(s.cur, data)
}

// vslot is one member's padded slot for scalar reductions.
type vslot struct {
	v float64
	_ [56]byte
}

// aslot is one member's padded slot for opaque-value exchanges.
type aslot struct {
	v any
	_ [48]byte
}

// sslot is one member's padded slot for Split coordination.
type sslot struct {
	color, key, rank int
	_                [40]byte
}

// splitGen is one generation of Split calls on a parent communicator: the
// children by color plus a countdown of members that have not yet
// retrieved theirs. The registry entry is pruned the moment the countdown
// reaches zero, so repeated splits do not grow the parent's memory.
type splitGen struct {
	byColor   map[int]*commShared
	remaining int
}

// commShared is the state shared by all member handles of a communicator.
// The data-plane arrays (mems, slot arrays) are per-member and padded;
// members touch only their own entry until a barrier publishes it. Each
// slot array is double-buffered by the parity of the member's collective
// sequence number: a member rewrites a parity-p slot at sequence s+2,
// which it can only reach after completing the barrier of collective s+1,
// which every peer only enters after it finished reading collective s's
// slots — so one barrier round per collective is enough.
type commShared struct {
	kind   CommKind
	ranks  []int // world ranks of the members, in communicator rank order
	bar    treeBarrier
	mems   []memberState
	fslots [2][]fslot
	vslots [2][]vslot
	aslots [2][]aslot
	sslots [2][]sslot
	stats  *Stats
	rec    *obs.Recorder

	mu     sync.Mutex
	splits map[uint64]*splitGen // split sequence -> generation registry
	// children of this communicator, for the abort cascade. Unlike the
	// splits registry this list must grow for the communicator's
	// lifetime: a later Abort has to reach every child ever split off.
	children []*commShared
}

// commPool recycles communicator shells (barrier flags, slot arrays,
// staging buffers) for callers that create communicators at high rate —
// the fault executor builds a fresh group communicator per retry attempt.
var commPool = sync.Pool{New: func() any { return new(commShared) }}

// newCommShared builds the shared state of a communicator over the given
// world ranks. Used by World.Run and by the fault-tolerant executor, which
// constructs group communicators directly from the schedule (a fresh one
// per attempt) instead of through collective Split calls.
func newCommShared(kind CommKind, worldRanks []int, stats *Stats, rec *obs.Recorder) *commShared {
	s := commPool.Get().(*commShared)
	n := len(worldRanks)
	s.kind = kind
	s.ranks = worldRanks
	s.stats = stats
	s.rec = rec
	s.bar.reset(n)
	if cap(s.mems) < n {
		s.mems = make([]memberState, n)
	} else {
		s.mems = s.mems[:n]
		for i := range s.mems {
			s.mems[i] = memberState{}
		}
	}
	for p := 0; p < 2; p++ {
		if cap(s.fslots[p]) < n {
			s.fslots[p] = make([]fslot, n)
		} else {
			s.fslots[p] = s.fslots[p][:n]
		}
		if cap(s.vslots[p]) < n {
			s.vslots[p] = make([]vslot, n)
		} else {
			s.vslots[p] = s.vslots[p][:n]
		}
		if cap(s.aslots[p]) < n {
			s.aslots[p] = make([]aslot, n)
		} else {
			s.aslots[p] = s.aslots[p][:n]
		}
		if cap(s.sslots[p]) < n {
			s.sslots[p] = make([]sslot, n)
		} else {
			s.sslots[p] = s.sslots[p][:n]
		}
	}
	return s
}

// release returns the communicator shell to the pool. Callers must
// guarantee that no goroutine still holds a handle: the fault executor
// releases an attempt's group communicator only after the attempt's done
// channel fired (never on the abandoned-timeout path, where stragglers may
// still be blocked on it). Children are not released recursively — they
// simply become garbage with their parent's references dropped.
func (s *commShared) release() {
	for p := 0; p < 2; p++ {
		for i := range s.fslots[p] {
			putScratch(s.fslots[p][i].buf)
			s.fslots[p][i] = fslot{}
		}
		for i := range s.aslots[p] {
			s.aslots[p][i].v = nil
		}
	}
	s.stats = nil
	s.rec = nil
	s.ranks = nil
	s.splits = nil
	s.children = nil
	commPool.Put(s)
}

// abort poisons the communicator and, recursively, every communicator that
// was split off it, so a task blocked in a nested group collective is
// released as well.
func (s *commShared) abort(err error) {
	s.bar.abort(err)
	s.mu.Lock()
	kids := append([]*commShared(nil), s.children...)
	s.mu.Unlock()
	for _, k := range kids {
		k.abort(err)
	}
}

// Comm is one member's handle of a communicator. Handles are per-goroutine
// and must not be shared between goroutines. A handle is backed either by
// shared state directly or by a lazyGlobal that builds the state on the
// member's first operation (the executor's per-layer global communicator).
type Comm struct {
	shared *commShared
	lazy   *lazyGlobal
	rank   int
	// ops counts this handle's collective calls by operation, feeding the
	// per-rank counter tracks of a tracing run. Handle-local (the handle is
	// per-goroutine), so the hot path needs no synchronisation.
	ops [numOps]uint32
}

// opCounterName pre-renders the "kind.op" counter names so the traced
// hot path never formats strings.
var opCounterName = func() (t [numCommKinds][numOps]string) {
	for k := range t {
		for o := range t[k] {
			t[k][o] = CommKind(k).String() + "." + Op(o).String()
		}
	}
	return
}()

// sh resolves the handle's shared state, creating it on first use when the
// handle is lazily backed. Handles are per-goroutine, so caching the
// resolved state on the handle needs no synchronisation.
func (c *Comm) sh() *commShared {
	if c.shared == nil {
		c.shared = c.lazy.get()
	}
	return c.shared
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of members.
func (c *Comm) Size() int { return len(c.sh().ranks) }

// WorldRank returns the caller's rank within the world.
func (c *Comm) WorldRank() int { return c.sh().ranks[c.rank] }

// Kind returns the communicator category.
func (c *Comm) Kind() CommKind { return c.sh().kind }

// count records a collective once for the Stats (rank 0 reports) and,
// when a trace recorder is attached, samples the caller's per-rank
// cumulative operation counter.
func (c *Comm) count(op Op) {
	sh := c.sh()
	if c.rank == 0 && sh.stats != nil {
		sh.stats.add(sh.kind, op)
	}
	if sh.rec != nil {
		c.ops[op]++
		sh.rec.CounterSample(opCounterName[sh.kind][op], "collective",
			sh.ranks[c.rank], sh.rec.Now(), float64(c.ops[op]))
	}
}

// advance issues the member's next collective and returns the slot parity
// to use for it. Members call collectives in lockstep (SPMD), so every
// member computes the same sequence number for the same collective.
func (c *Comm) advance() (ms *memberState, parity int) {
	ms = &c.sh().mems[c.rank]
	ms.seq++
	return ms, int(ms.seq & 1)
}

// Abort poisons the communicator and every communicator split off it:
// all members currently blocked in a collective are woken, and every
// current and future collective call panics with an *AbortError wrapping
// the given cause. The fault-tolerant executor uses Abort so a failed,
// panicked or timed-out task cannot deadlock its peers at a barrier; task
// bodies may also call it to broadcast an unrecoverable local failure.
func (c *Comm) Abort(cause error) {
	c.sh().abort(cause)
}

// Barrier synchronises all members. Under a trace recorder the time a
// member spends blocked in the barrier is recorded as a "barrier-wait"
// span on its world rank's timeline — the per-core wait times of the
// paper's imbalance analysis.
func (c *Comm) Barrier() {
	c.count(OpBarrier)
	sh := c.sh()
	if len(sh.ranks) == 1 {
		// A singleton waits for nobody: no wait span (the per-rank
		// barrier counter from count() already marks the call).
		sh.bar.check()
		return
	}
	if sh.rec != nil {
		start := sh.rec.Now()
		sh.bar.wait(&sh.mems[c.rank], c.rank)
		sh.rec.Span("barrier-wait", "barrier", sh.ranks[c.rank], -1, -1, start, sh.rec.Now())
		return
	}
	sh.bar.wait(&sh.mems[c.rank], c.rank)
}

// Bcast broadcasts the root's slice to all members; every member returns
// its own copy (the root returns the original slice).
func (c *Comm) Bcast(root int, data []float64) []float64 {
	c.count(OpBcast)
	sh := c.sh()
	if len(sh.ranks) == 1 {
		sh.bar.check()
		return data
	}
	ms, p := c.advance()
	if c.rank == root {
		sh.fslots[p][root].stage(data)
	}
	sh.bar.wait(ms, c.rank)
	if c.rank == root {
		return data
	}
	src := sh.fslots[p][root].cur
	out := make([]float64, len(src))
	copy(out, src)
	return out
}

// BcastInto broadcasts the root's buffer into every member's buffer
// without allocating. All members must pass buffers of the root's length;
// the root's buffer is left untouched and may be reused (or even mutated)
// as soon as the call returns, because the data is staged before the
// barrier.
func (c *Comm) BcastInto(root int, buf []float64) {
	c.count(OpBcast)
	sh := c.sh()
	if len(sh.ranks) == 1 {
		sh.bar.check()
		return
	}
	ms, p := c.advance()
	if c.rank == root {
		sh.fslots[p][root].stage(buf)
	}
	sh.bar.wait(ms, c.rank)
	if c.rank == root {
		return
	}
	src := sh.fslots[p][root].cur
	if len(src) != len(buf) {
		panic(fmt.Sprintf("runtime: BcastInto length mismatch: root staged %d values, member %d passed %d", len(src), c.rank, len(buf)))
	}
	copy(buf, src)
}

// Allgather concatenates every member's contribution in rank order; each
// member returns its own copy of the result (the paper's multi-broadcast,
// MPI_Allgather).
func (c *Comm) Allgather(contrib []float64) []float64 {
	return c.AllgatherAsInto(contrib, nil, OpAllgather)
}

// AllgatherAs is Allgather recorded under a different operation category;
// it implements the compiler-inserted data re-distributions (OpRedist),
// which the paper accounts for separately from the collective operations.
func (c *Comm) AllgatherAs(contrib []float64, op Op) []float64 {
	return c.AllgatherAsInto(contrib, nil, op)
}

// AllgatherInto is Allgather writing into dst, which is grown only if its
// capacity is insufficient; it returns the (possibly re-allocated) result
// slice. dst may alias contrib: contributions are staged before the
// barrier, so in-place gathers such as y = AllgatherInto(block, y) are
// safe.
func (c *Comm) AllgatherInto(contrib, dst []float64) []float64 {
	return c.AllgatherAsInto(contrib, dst, OpAllgather)
}

// AllgatherAsInto is AllgatherInto recorded under the given operation
// category.
func (c *Comm) AllgatherAsInto(contrib, dst []float64, op Op) []float64 {
	c.count(op)
	sh := c.sh()
	if len(sh.ranks) == 1 {
		sh.bar.check()
		dst = ensureFloats(dst, len(contrib))
		copy(dst, contrib)
		return dst
	}
	ms, p := c.advance()
	slots := sh.fslots[p]
	slots[c.rank].stage(contrib)
	sh.bar.wait(ms, c.rank)
	total := 0
	for i := range slots {
		total += len(slots[i].cur)
	}
	dst = ensureFloats(dst, total)
	off := 0
	for i := range slots {
		off += copy(dst[off:], slots[i].cur)
	}
	return dst
}

// ExchangeAny gathers one arbitrary value per member in rank order (an
// allgather over opaque values); used by the dynamic task library for
// control data such as error states. Counted as a barrier, not as one of
// Table 1's data collectives.
func (c *Comm) ExchangeAny(v any) []any {
	c.count(OpBarrier)
	sh := c.sh()
	if len(sh.ranks) == 1 {
		sh.bar.check()
		return []any{v}
	}
	ms, p := c.advance()
	slots := sh.aslots[p]
	slots[c.rank].v = v
	sh.bar.wait(ms, c.rank)
	out := make([]any, len(slots))
	for i := range slots {
		out[i] = slots[i].v
	}
	return out
}

// AllreduceMax returns the maximum of the members' values.
func (c *Comm) AllreduceMax(v float64) float64 {
	c.count(OpReduce)
	sh := c.sh()
	if len(sh.ranks) == 1 {
		sh.bar.check()
		return v
	}
	ms, p := c.advance()
	slots := sh.vslots[p]
	slots[c.rank].v = v
	sh.bar.wait(ms, c.rank)
	max := v
	for i := range slots {
		if x := slots[i].v; x > max {
			max = x
		}
	}
	return max
}

// AllreduceSum returns the sum of the members' values.
func (c *Comm) AllreduceSum(v float64) float64 {
	c.count(OpReduce)
	sh := c.sh()
	if len(sh.ranks) == 1 {
		sh.bar.check()
		return v
	}
	ms, p := c.advance()
	slots := sh.vslots[p]
	slots[c.rank].v = v
	sh.bar.wait(ms, c.rank)
	sum := 0.0
	for i := range slots {
		sum += slots[i].v
	}
	return sum
}

// ReduceOp selects the elementwise combination of ReduceInto.
type ReduceOp int

const (
	// ReduceSum adds contributions elementwise.
	ReduceSum ReduceOp = iota
	// ReduceMax takes the elementwise maximum.
	ReduceMax
)

// ReduceInto all-reduces the members' equal-length vectors elementwise
// into dst (grown only if its capacity is insufficient) and returns the
// result slice; every member receives the full result. Contributions are
// folded in rank order, so the result is bitwise deterministic. dst may
// alias contrib.
func (c *Comm) ReduceInto(op ReduceOp, contrib, dst []float64) []float64 {
	c.count(OpReduce)
	sh := c.sh()
	if len(sh.ranks) == 1 {
		sh.bar.check()
		dst = ensureFloats(dst, len(contrib))
		copy(dst, contrib)
		return dst
	}
	ms, p := c.advance()
	slots := sh.fslots[p]
	slots[c.rank].stage(contrib)
	sh.bar.wait(ms, c.rank)
	n := len(slots[0].cur)
	dst = ensureFloats(dst, n)
	copy(dst, slots[0].cur)
	for r := 1; r < len(slots); r++ {
		s := slots[r].cur
		if len(s) != n {
			panic(fmt.Sprintf("runtime: ReduceInto length mismatch: rank 0 staged %d values, rank %d staged %d", n, r, len(s)))
		}
		switch op {
		case ReduceSum:
			for i, x := range s {
				dst[i] += x
			}
		case ReduceMax:
			for i, x := range s {
				if x > dst[i] {
					dst[i] = x
				}
			}
		}
	}
	return dst
}

// ensureFloats returns dst resized to length n, reallocating only when the
// capacity is insufficient.
func ensureFloats(dst []float64, n int) []float64 {
	if cap(dst) < n {
		return make([]float64, n)
	}
	return dst[:n]
}

// Split partitions the communicator like MPI_Comm_split: members calling
// with the same color form a new communicator of the given kind, ordered
// by key (ties by current rank). All members must call Split. One barrier
// round coordinates the whole split: members publish (color, key) in their
// slots, synchronise, and then deterministically compute their color's
// member list; the lowest-ranked member of each color allocates the shared
// state and the others retrieve it from the parent's registry, which is
// pruned as soon as the last member has retrieved its child.
func (c *Comm) Split(color, key int, kind CommKind) *Comm {
	sh := c.sh()
	if len(sh.ranks) == 1 {
		sh.bar.check()
		child := newCommShared(kind, []int{sh.ranks[0]}, sh.stats, sh.rec)
		sh.mu.Lock()
		sh.children = append(sh.children, child)
		sh.mu.Unlock()
		return &Comm{shared: child, rank: 0}
	}
	ms, p := c.advance()
	genKey := ms.seq // identical on every member: collectives are lockstep
	sh.sslots[p][c.rank] = sslot{color: color, key: key, rank: c.rank}
	sh.bar.wait(ms, c.rank)

	// Deterministically compute the member list of my color.
	var mine []sslot
	for i := range sh.sslots[p] {
		if m := sh.sslots[p][i]; m.color == color {
			mine = append(mine, m)
		}
	}
	sort.Slice(mine, func(i, j int) bool {
		if mine[i].key != mine[j].key {
			return mine[i].key < mine[j].key
		}
		return mine[i].rank < mine[j].rank
	})
	myIdx := -1
	worldRanks := make([]int, len(mine))
	for i, m := range mine {
		worldRanks[i] = sh.ranks[m.rank]
		if m.rank == c.rank {
			myIdx = i
		}
	}

	sh.mu.Lock()
	if sh.splits == nil {
		sh.splits = make(map[uint64]*splitGen)
	}
	gen := sh.splits[genKey]
	if gen == nil {
		gen = &splitGen{byColor: make(map[int]*commShared), remaining: len(sh.ranks)}
		sh.splits[genKey] = gen
	}
	child := gen.byColor[color]
	if child == nil {
		child = newCommShared(kind, worldRanks, sh.stats, sh.rec)
		gen.byColor[color] = child
		sh.children = append(sh.children, child)
	}
	gen.remaining--
	if gen.remaining == 0 {
		// Every member has retrieved its child: prune the registry
		// entry so repeated splits cannot grow memory without bound.
		delete(sh.splits, genKey)
	}
	sh.mu.Unlock()
	return &Comm{shared: child, rank: myIdx}
}
