package runtime

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// This file keeps the pre-rewrite collective engine — central mutex/cond
// sense-reversing barrier, any-typed shared slots, two barrier rounds per
// collective — as a differential-testing reference, and property-tests
// that the dissemination-barrier engine produces bitwise-identical results
// on random inputs, both for the value-returning APIs and the *Into
// variants.

type refBarrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
}

func newRefBarrier(n int) *refBarrier {
	b := &refBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *refBarrier) wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

type refShared struct {
	bar   *refBarrier
	slots []any
}

type refComm struct {
	sh   *refShared
	rank int
}

func newRefWorld(n int) []*refComm {
	sh := &refShared{bar: newRefBarrier(n), slots: make([]any, n)}
	out := make([]*refComm, n)
	for i := range out {
		out[i] = &refComm{sh: sh, rank: i}
	}
	return out
}

func (c *refComm) bcast(root int, data []float64) []float64 {
	if len(c.sh.slots) == 1 {
		return data
	}
	if c.rank == root {
		c.sh.slots[root] = data
	}
	c.sh.bar.wait()
	src := c.sh.slots[root].([]float64)
	var out []float64
	if c.rank == root {
		out = data
	} else {
		out = make([]float64, len(src))
		copy(out, src)
	}
	c.sh.bar.wait()
	return out
}

func (c *refComm) allgather(contrib []float64) []float64 {
	if len(c.sh.slots) == 1 {
		out := make([]float64, len(contrib))
		copy(out, contrib)
		return out
	}
	c.sh.slots[c.rank] = contrib
	c.sh.bar.wait()
	total := 0
	for _, s := range c.sh.slots {
		total += len(s.([]float64))
	}
	out := make([]float64, 0, total)
	for _, s := range c.sh.slots {
		out = append(out, s.([]float64)...)
	}
	c.sh.bar.wait()
	return out
}

func (c *refComm) allreduceSum(v float64) float64 {
	if len(c.sh.slots) == 1 {
		return v
	}
	c.sh.slots[c.rank] = v
	c.sh.bar.wait()
	sum := 0.0
	for _, s := range c.sh.slots {
		sum += s.(float64)
	}
	c.sh.bar.wait()
	return sum
}

func (c *refComm) allreduceMax(v float64) float64 {
	if len(c.sh.slots) == 1 {
		return v
	}
	c.sh.slots[c.rank] = v
	c.sh.bar.wait()
	max := v
	for _, s := range c.sh.slots {
		if x := s.(float64); x > max {
			max = x
		}
	}
	c.sh.bar.wait()
	return max
}

// reduceVec is the reference semantics of ReduceInto: fold the equal-length
// contributions elementwise in rank order.
func (c *refComm) reduceVec(op ReduceOp, contrib []float64) []float64 {
	if len(c.sh.slots) == 1 {
		out := make([]float64, len(contrib))
		copy(out, contrib)
		return out
	}
	c.sh.slots[c.rank] = contrib
	c.sh.bar.wait()
	first := c.sh.slots[0].([]float64)
	out := make([]float64, len(first))
	copy(out, first)
	for r := 1; r < len(c.sh.slots); r++ {
		s := c.sh.slots[r].([]float64)
		for i, x := range s {
			if op == ReduceSum {
				out[i] += x
			} else if x > out[i] {
				out[i] = x
			}
		}
	}
	c.sh.bar.wait()
	return out
}

// collOp is one step of a random SPMD collective script: the same script
// runs on both engines and the per-rank outputs are compared bitwise.
type collOp struct {
	kind int // 0 bcast, 1 allgather, 2 sum, 3 max, 4 reduceSum, 5 reduceMax
	root int
	data [][]float64 // per-rank contribution (scalar ops use data[r][0])
}

// randScript generates nops random collectives for p ranks.
func randScript(rng *rand.Rand, p, nops int) []collOp {
	ops := make([]collOp, nops)
	for o := range ops {
		op := collOp{kind: rng.Intn(6), root: rng.Intn(p)}
		vecLen := 1 + rng.Intn(17)
		op.data = make([][]float64, p)
		for r := range op.data {
			l := vecLen
			if op.kind == 1 { // allgather: variable per-rank lengths
				l = rng.Intn(9)
			}
			row := make([]float64, l)
			for i := range row {
				row[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
			}
			op.data[r] = row
		}
		ops[o] = op
	}
	return ops
}

// runRef executes the script on the reference engine.
func runRef(p int, script []collOp) [][][]float64 {
	comms := newRefWorld(p)
	results := make([][][]float64, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := comms[r]
			for _, op := range script {
				in := append([]float64(nil), op.data[r]...)
				var out []float64
				switch op.kind {
				case 0:
					var arg []float64
					if r == op.root {
						arg = append([]float64(nil), op.data[op.root]...)
					}
					out = c.bcast(op.root, arg)
				case 1:
					out = c.allgather(in)
				case 2:
					out = []float64{c.allreduceSum(in[0])}
				case 3:
					out = []float64{c.allreduceMax(in[0])}
				case 4:
					out = c.reduceVec(ReduceSum, in)
				case 5:
					out = c.reduceVec(ReduceMax, in)
				}
				results[r] = append(results[r], append([]float64(nil), out...))
			}
		}(r)
	}
	wg.Wait()
	return results
}

// runNew executes the script on the dissemination-barrier engine. Each op
// runs through the value-returning API (recorded for comparison) and then
// through the matching *Into variant, which is checked bitwise against the
// value result on the spot.
func runNew(t *testing.T, p int, script []collOp) [][][]float64 {
	t.Helper()
	w, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	results := make([][][]float64, p)
	intoBufs := make([][]float64, p) // reused dst across ops, per rank
	w.Run(func(c *Comm) {
		r := c.Rank()
		for oi, op := range script {
			in := append([]float64(nil), op.data[r]...)
			var out, into []float64
			switch op.kind {
			case 0:
				var arg []float64
				if r == op.root {
					arg = append([]float64(nil), op.data[op.root]...)
				}
				out = c.Bcast(op.root, arg)
				buf := append([]float64(nil), op.data[op.root]...)
				if r != op.root {
					for i := range buf {
						buf[i] = math.NaN() // must be fully overwritten
					}
				}
				c.BcastInto(op.root, buf)
				into = buf
			case 1:
				out = c.Allgather(in)
				intoBufs[r] = c.AllgatherInto(in, intoBufs[r])
				into = intoBufs[r]
			case 2:
				out = []float64{c.AllreduceSum(in[0])}
			case 3:
				out = []float64{c.AllreduceMax(in[0])}
			case 4:
				intoBufs[r] = c.ReduceInto(ReduceSum, in, intoBufs[r])
				out = intoBufs[r]
			case 5:
				intoBufs[r] = c.ReduceInto(ReduceMax, in, intoBufs[r])
				out = intoBufs[r]
			}
			if into != nil && !bitsEqual(out, into) {
				t.Errorf("op %d kind %d rank %d: *Into variant diverged from value API", oi, op.kind, r)
			}
			results[r] = append(results[r], append([]float64(nil), out...))
		}
	})
	return results
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestPropertyCollectivesMatchReference proves the new engine bitwise
// identical to the pre-rewrite reference on random scripts, covering group
// sizes 1..8 (including the singleton fast paths) and all collectives.
func TestPropertyCollectivesMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20240806))
	for trial := 0; trial < 40; trial++ {
		p := 1 + rng.Intn(8)
		script := randScript(rng, p, 4+rng.Intn(12))
		got := runNew(t, p, script)
		want := runRef(p, script)
		for r := 0; r < p; r++ {
			for o := range script {
				if !bitsEqual(got[r][o], want[r][o]) {
					t.Fatalf("trial %d p %d rank %d op %d (kind %d): engines diverged\n got %v\nwant %v",
						trial, p, r, o, script[o].kind, got[r][o], want[r][o])
				}
			}
		}
	}
}

// TestPropertyCollectivesWithAbort injects an abort at a random point of a
// random script: every collective that completed before the abort must
// still be bitwise identical to the reference, and every rank must
// eventually fail with an *AbortError (fault injection must not corrupt
// pre-fault results).
func TestPropertyCollectivesWithAbort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		p := 2 + rng.Intn(7)
		script := randScript(rng, p, 3+rng.Intn(10))
		abortAt := rng.Intn(len(script)) // op index at which one rank aborts
		aborter := rng.Intn(p)
		want := runRef(p, script)

		var stats Stats
		sh := newCommShared(Global, identityRanks(p), &stats, nil)
		results := make([][][]float64, p)
		aborted := make([]bool, p)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				defer func() {
					if v := recover(); v != nil {
						if _, ok := v.(*AbortError); !ok {
							panic(v)
						}
						aborted[r] = true
					}
				}()
				c := &Comm{shared: sh, rank: r}
				for oi, op := range script {
					if oi == abortAt && r == aborter {
						c.Abort(ErrCommAborted)
						panic(&AbortError{Cause: ErrCommAborted})
					}
					in := append([]float64(nil), op.data[r]...)
					var out []float64
					switch op.kind {
					case 0:
						var arg []float64
						if r == op.root {
							arg = append([]float64(nil), op.data[op.root]...)
						}
						out = c.Bcast(op.root, arg)
					case 1:
						out = c.Allgather(in)
					case 2:
						out = []float64{c.AllreduceSum(in[0])}
					case 3:
						out = []float64{c.AllreduceMax(in[0])}
					case 4:
						out = c.ReduceInto(ReduceSum, in, nil)
					case 5:
						out = c.ReduceInto(ReduceMax, in, nil)
					}
					results[r] = append(results[r], out)
				}
			}(r)
		}
		wg.Wait()
		for r := 0; r < p; r++ {
			if !aborted[r] {
				t.Fatalf("trial %d: rank %d did not observe the abort", trial, r)
			}
			// No rank can get past the aborted collective: its barrier
			// needs the aborter's arrival. A rank may record fewer than
			// abortAt results (parked in an earlier barrier when the
			// poison landed), but the aborter itself completed every op
			// it attempted before aborting.
			if len(results[r]) > abortAt {
				t.Fatalf("trial %d: rank %d completed op %d past the abort point %d", trial, r, len(results[r]), abortAt)
			}
			if r == aborter && len(results[r]) != abortAt {
				t.Fatalf("trial %d: aborter recorded %d results, want %d", trial, len(results[r]), abortAt)
			}
			for o := range results[r] {
				if !bitsEqual(results[r][o], want[r][o]) {
					t.Fatalf("trial %d rank %d op %d: pre-abort result corrupted", trial, r, o)
				}
			}
		}
	}
}
