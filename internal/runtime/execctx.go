package runtime

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"mtask/internal/core"
	"mtask/internal/fault"
	"mtask/internal/graph"
	"mtask/internal/obs"
)

// Replanner reschedules the executed graph for the given number of
// surviving symbolic cores; the fault-tolerant executor calls it when a
// core group is lost and the policy enables DegradeAndReplan. The returned
// schedule must preserve the layer partition of the failed one (verified
// with core.SameLayering) — the layer-based algorithm does this naturally
// because layers depend only on the graph structure, not on the core
// count. See plan.Planner.Replan for the standard implementation.
type Replanner func(ctx context.Context, survivors int) (*core.Schedule, error)

// HierarchicalReplanner is the Replanner of ExecuteHierarchicalCtx: it
// reschedules the whole hierarchy (sub-schedules are recomputed for the
// new group sizes).
type HierarchicalReplanner func(ctx context.Context, survivors int) (*core.HierarchicalSchedule, error)

// Resizer makes a running execution malleable: the layered executor
// consults it at every completed layer barrier (the same checkpoints that
// make degrade-and-replan sound) with the number of completed layers. A
// nil schedule means "keep the current one"; a non-nil schedule replaces
// it and the remaining layers run on the new core count — growing or
// shrinking the execution. The returned schedule must preserve the layer
// partition (verified with core.SameLayering) and use at most the world's
// cores. The machine-level job allocator uses this to grow and shrink
// running jobs as other jobs arrive and finish; see plan.Planner's
// PlanPartition for the standard way to produce the resized schedule.
type Resizer func(ctx context.Context, completedLayers int) (*core.Schedule, error)

// ErrResizeInWavefront reports WithResizer combined with WithWavefront:
// a wavefront pass runs every remaining layer without barriers, so there
// is no boundary at which a resize could apply — wavefront executions are
// moldable (core count fixed at start), not malleable.
var ErrResizeInWavefront = errors.New("runtime: WithResizer requires layered execution (wavefront runs are moldable, not malleable)")

// execConfig collects the resolved fault-tolerance knobs of one execution.
type execConfig struct {
	policy     fault.Policy
	injector   *fault.Injector
	replan     Replanner
	hreplan    HierarchicalReplanner
	resize     Resizer
	grace      time.Duration
	wavefront  bool
	wfChannel  bool // wavefront via the channel reference dispatcher
	noTimeline bool
	rec        *obs.Recorder
}

// ExecOption configures ExecuteCtx / ExecuteHierarchicalCtx.
type ExecOption func(*execConfig)

// WithPolicy sets the retry/timeout/escalation policy (default: no
// retries, no timeouts, no degrade-and-replan).
func WithPolicy(p fault.Policy) ExecOption { return func(c *execConfig) { c.policy = p } }

// WithInjector installs a failure injector (for tests and chaos runs).
func WithInjector(in *fault.Injector) ExecOption { return func(c *execConfig) { c.injector = in } }

// WithReplanner installs the degrade-and-replan callback of ExecuteCtx.
func WithReplanner(r Replanner) ExecOption { return func(c *execConfig) { c.replan = r } }

// WithHierarchicalReplanner installs the degrade-and-replan callback of
// ExecuteHierarchicalCtx.
func WithHierarchicalReplanner(r HierarchicalReplanner) ExecOption {
	return func(c *execConfig) { c.hreplan = r }
}

// WithResizer installs a voluntary resize callback consulted at every
// completed layer barrier; see Resizer. Only valid with the layered
// executor — combining it with WithWavefront fails the execution with
// ErrResizeInWavefront.
func WithResizer(r Resizer) ExecOption { return func(c *execConfig) { c.resize = r } }

// WithAbandonGrace sets how long the executor waits, after aborting a
// timed-out attempt's communicator, for the attempt's goroutines to settle
// before abandoning them (default 1s). Bodies blocked in collectives wake
// immediately; only a body hung in pure computation runs into the grace
// period (and is then leaked — Go provides no way to kill it).
func WithAbandonGrace(d time.Duration) ExecOption {
	return func(c *execConfig) {
		if d > 0 {
			c.grace = d
		}
	}
}

// WithRecorder attaches a trace recorder to the execution: every rank
// goroutine records its task-attempt spans, barrier waits and collective
// counters on its own timeline, and the executor adds retry, replan and
// layer-completion events. A nil recorder is valid and records nothing
// (the no-op fast path adds a single pointer test per instrumented
// site). The recorder must have at least sched.P rank timelines; read it
// only after ExecuteCtx returns.
func WithRecorder(rec *obs.Recorder) ExecOption {
	return func(c *execConfig) { c.rec = rec }
}

// WithoutTimeline drops O(tasks) state from the Report so million-task
// runs stay lean: successful attempts are folded into a busy core-time
// accumulator instead of retained as TaskSpans (Timeline returns nothing;
// Utilization and the report totals still work), and per-task attempt
// histories are kept only for tasks that needed fault handling. Scripted
// fault injection keyed on attempt numbers still behaves identically for
// any task that fails at least once.
//
// Replan caveat: a task that never fails but is re-executed after a
// degrade-and-replan (it completed past the completed-layer checkpoint,
// then runs again from the resume point) has no retained history, so its
// re-execution reports attempt number 1 again instead of 2 — remembering
// otherwise would reintroduce the O(tasks) per-name state this option
// exists to drop. A fault-injection script keyed on such a task's attempt
// numbers (e.g. "task@1") therefore fires on both executions under
// WithoutTimeline where the full report would fire once; scripts that
// must count attempts across a replan for never-failed tasks need the
// full report.
func WithoutTimeline() ExecOption {
	return func(c *execConfig) { c.noTimeline = true }
}

const defaultAbandonGrace = time.Second

// errLayerDone is the abort cause used to release stragglers of abandoned
// attempts when their layer finishes.
var errLayerDone = errors.New("runtime: layer execution finished")

// ExecuteCtx is the fault-tolerant variant of Execute. Beyond running the
// layered schedule it:
//
//   - recovers panics in task bodies into errors with stack capture
//     (a panicking body never crashes the process);
//   - aborts the group communicator of a failed, panicked or timed-out
//     task so its peers cannot deadlock at a collective — every attempt
//     runs on a fresh group communicator;
//   - enforces the policy's per-attempt and per-layer timeouts and the
//     caller's ctx throughout;
//   - aggregates per-rank errors with errors.Join;
//   - retries failed tasks per the policy (exponential backoff with
//     deterministic jitter), re-running the whole group attempt;
//   - on exhausted retries with DegradeAndReplan enabled, marks the
//     failing group's cores as lost, asks the Replanner for a schedule on
//     the surviving cores, and resumes from the last completed layer
//     barrier (layer boundaries are the natural checkpoints: only
//     completed-layer outputs need to survive).
//
// Task bodies must be idempotent: a body can run more than once (retry,
// or re-execution of a partially completed layer after a replan) and must
// produce the same outputs given the same completed predecessor layers.
// Bodies that communicate through TaskCtx.Global are only safe when no
// retries occur in their layer (group collectives are always safe).
//
// The returned Report is valid (and populated) even when the execution
// fails. The schedule may use at most w.P cores; replanned schedules use
// fewer as cores are lost.
func ExecuteCtx(ctx context.Context, w *World, sched *core.Schedule, body func(t *graph.Task) TaskFunc,
	opts ...ExecOption) (*Report, error) {

	cfg := newExecConfig(opts)
	rep := NewReport()
	if cfg.noTimeline {
		rep.lean = true
	}
	if sched != nil {
		rep.begin(sched.P)
		rep.presizeSpans(sched.Source.Len())
	}
	start := time.Now()
	err := runLayered(ctx, w, sched, body, cfg, rep, func(rctx context.Context, survivors int) (*core.Schedule, error) {
		if cfg.replan == nil {
			return nil, nil
		}
		return cfg.replan(rctx, survivors)
	})
	rep.mu.Lock()
	rep.Wall = time.Since(start)
	rep.mu.Unlock()
	return rep, err
}

// ExecuteHierarchicalCtx is the fault-tolerant variant of
// ExecuteHierarchical: leaf tasks and composed tasks (each composed body
// runs as one unit on its group) get the panic isolation, timeouts and
// retries of ExecuteCtx. Degrade-and-replan uses the
// HierarchicalReplanner, which recomputes the sub-schedules for the new
// group sizes.
func ExecuteHierarchicalCtx(ctx context.Context, w *World, hs *core.HierarchicalSchedule,
	body func(t *graph.Task) TaskFunc, iterations func(t *graph.Task, done int) bool,
	opts ...ExecOption) (*Report, error) {

	cfg := newExecConfig(opts)
	rep := NewReport()
	if cfg.noTimeline {
		rep.lean = true
	}
	rep.begin(hs.Top.P)
	rep.presizeSpans(hs.Top.Source.Len())

	type hierState struct {
		hs  *core.HierarchicalSchedule
		sub map[*graph.Task]*core.HierarchicalSchedule
	}
	var cur atomic.Pointer[hierState]
	cur.Store(&hierState{hs: hs, sub: subScheduleIndex(hs)})

	wrapped := func(t *graph.Task) TaskFunc {
		if t.Kind != graph.KindComposed {
			return body(t)
		}
		return func(tc *TaskCtx) error {
			sub, ok := cur.Load().sub[t]
			if !ok {
				return fmt.Errorf("%w: %q", ErrNoSubSchedule, t.Name)
			}
			return runComposed(tc, t, sub, body, iterations)
		}
	}
	resched := func(rctx context.Context, survivors int) (*core.Schedule, error) {
		if cfg.hreplan == nil {
			return nil, nil
		}
		nhs, err := cfg.hreplan(rctx, survivors)
		if err != nil {
			return nil, err
		}
		cur.Store(&hierState{hs: nhs, sub: subScheduleIndex(nhs)})
		return nhs.Top, nil
	}

	start := time.Now()
	err := runLayered(ctx, w, hs.Top, wrapped, cfg, rep, resched)
	rep.mu.Lock()
	rep.Wall = time.Since(start)
	rep.mu.Unlock()
	return rep, err
}

func newExecConfig(opts []ExecOption) *execConfig {
	cfg := &execConfig{grace: defaultAbandonGrace}
	for _, opt := range opts {
		opt(cfg)
	}
	return cfg
}

// runLayered drives the layer loop with degrade-and-replan: layers advance
// only after completing, so the layer index is the checkpoint that
// survives a replan.
func runLayered(ctx context.Context, w *World, sched *core.Schedule, body func(t *graph.Task) TaskFunc,
	cfg *execConfig, rep *Report, resched Replanner) error {

	if sched == nil || body == nil {
		return fmt.Errorf("runtime: nil schedule or body")
	}
	if sched.P > w.P {
		return fmt.Errorf("runtime: schedule needs %d cores, world has %d", sched.P, w.P)
	}
	if cfg.wavefront && cfg.resize != nil {
		return ErrResizeInWavefront
	}
	cur := sched
	base := sched.P // survivor accounting resets on voluntary resizes
	lost := 0
	li := 0
	for li < len(cur.Layers) {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("runtime: execution canceled before layer %d: %w", li, err)
		}
		var layerErr error
		var failedCores int
		if cfg.wavefront {
			// One wavefront pass runs every remaining layer without global
			// joins; on failure it drains the in-flight frontier and
			// reports the completed-layer prefix as the resume checkpoint.
			// The persistent-worker dispatcher is the default; the channel
			// dispatcher is the kept reference implementation.
			if cfg.wfChannel {
				li, layerErr, failedCores = runWavefrontPass(ctx, w, cur, li, body, cfg, rep)
			} else {
				li, layerErr, failedCores = runWavefrontWorkersPass(ctx, w, cur, li, body, cfg, rep)
			}
		} else {
			layerErr, failedCores = runLayer(ctx, w, cur, li, body, cfg, rep)
			if layerErr == nil {
				rep.layerDone()
				cfg.rec.Instant("layer-done", "exec", obs.ControlRank, cfg.rec.Now())
				li++
				if cfg.resize != nil && li < len(cur.Layers) {
					ns, rerr := cfg.resize(ctx, li)
					if rerr != nil {
						return fmt.Errorf("runtime: resize at layer barrier %d: %w", li, rerr)
					}
					if ns != nil && ns != cur {
						if ns.P > w.P {
							return fmt.Errorf("runtime: resized schedule needs %d cores, world has %d", ns.P, w.P)
						}
						if serr := core.SameLayering(cur, ns); serr != nil {
							return fmt.Errorf("runtime: resize at layer barrier %d: %w", li, serr)
						}
						delta := ns.P - cur.P
						rep.resized(delta)
						cfg.rec.Instant(fmt.Sprintf("resize:%+d", delta), "exec", obs.ControlRank, cfg.rec.Now())
						cfg.rec.Counter("exec.resizes").Add(1)
						cur = ns // remaining layers run on the new core count
						base = ns.P
						lost = 0
					}
				}
			}
		}
		if layerErr == nil {
			continue
		}
		if !cfg.policy.DegradeAndReplan || failedCores == 0 || ctx.Err() != nil {
			return layerErr
		}
		if cfg.policy.MaxReplans > 0 && rep.Replans >= cfg.policy.MaxReplans {
			return fmt.Errorf("runtime: replan budget (%d) exhausted: %w", cfg.policy.MaxReplans, layerErr)
		}
		lost += failedCores
		survivors := base - lost
		if survivors < 1 {
			return errors.Join(layerErr,
				fmt.Errorf("runtime: all %d cores lost: %w", base, core.ErrNoCores))
		}
		ns, rerr := resched(ctx, survivors)
		if rerr != nil {
			return errors.Join(layerErr, fmt.Errorf("runtime: replanning on %d cores: %w", survivors, rerr))
		}
		if ns == nil {
			return layerErr // no replanner configured
		}
		if serr := core.SameLayering(cur, ns); serr != nil {
			return errors.Join(layerErr, serr)
		}
		rep.replanned(lost)
		cfg.rec.Instant("replan", "fault", obs.ControlRank, cfg.rec.Now())
		cfg.rec.Counter("fault.lost_cores").Add(int64(failedCores))
		cur = ns // resume from the last completed layer barrier
	}
	return nil
}

// runLayer executes one layer: each core group runs on its own
// coordinator goroutine, and joining them is the layer barrier (which,
// unlike a communicator barrier, cannot deadlock on a lost group). It
// returns the joined group errors and the number of symbolic cores owned
// by groups whose failures exhausted their retry budget.
func runLayer(ctx context.Context, w *World, sched *core.Schedule, li int, body func(t *graph.Task) TaskFunc,
	cfg *execConfig, rep *Report) (error, int) {

	ls := sched.Layers[li]
	lctx := ctx
	if cfg.policy.LayerTimeout > 0 {
		var cancel context.CancelFunc
		lctx, cancel = context.WithTimeout(ctx, cfg.policy.LayerTimeout)
		defer cancel()
	}
	// A fresh per-layer global communicator for orthogonal exchanges,
	// built lazily: most bodies only use their group communicator, and for
	// those layers nothing is allocated. The layer-end abort still reaches
	// it in every ordering, so stragglers of abandoned attempts blocked in
	// a global collective are released (and a straggler touching the
	// global for the first time after the layer finished gets it
	// pre-poisoned instead of deadlocking).
	global := newLazyGlobal(Global, identityRanks(sched.P), &w.Stats, cfg.rec)
	defer global.abort(errLayerDone)

	ng := len(ls.Groups)
	groupErrs := make([]error, ng)
	exhausted := make([]bool, ng)
	var wg sync.WaitGroup
	for gi := 0; gi < ng; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			groupErrs[gi], exhausted[gi] = runGroup(lctx, w, sched, li, core.GroupID(gi), global, body, cfg, rep)
		}(gi)
	}
	wg.Wait()
	failedCores := 0
	for gi, ex := range exhausted {
		if ex {
			lo, hi := ls.RankRange(core.GroupID(gi))
			failedCores += hi - lo
		}
	}
	joined := make([]error, 0, ng)
	for gi, err := range groupErrs {
		if err != nil {
			joined = append(joined, fmt.Errorf("layer %d group %d: %w", li, gi, err))
		}
	}
	return errors.Join(joined...), failedCores
}

// runGroup executes one group's task queue, retrying failed attempts per
// the policy. The second result reports whether the group's failure
// exhausted its budget (the degrade-and-replan trigger, which costs the
// group its cores).
func runGroup(ctx context.Context, w *World, sched *core.Schedule, li int, gi core.GroupID,
	global *lazyGlobal, body func(t *graph.Task) TaskFunc, cfg *execConfig, rep *Report) (error, bool) {

	ls := sched.Layers[li]
	lo, hi := ls.RankRange(gi)
	for _, id := range ls.Groups[gi] {
		if err, exhausted := runScheduledTask(ctx, w, sched, li, gi, lo, hi, id, global, body, cfg, rep, nil); err != nil {
			return err, exhausted
		}
	}
	return nil, false
}

// runScheduledTask runs one scheduled task (expanding a contracted chain
// back to its source tasks) on the rank interval [lo, hi), with the
// policy's full retry loop around each source task. It is the shared
// execution unit of the layered executor (which walks a group's task queue
// sequentially) and both wavefront dispatchers (which launch it the moment
// the task's dependences are satisfied). With a non-nil coop the attempts
// run cooperatively on that persistent rank worker and its followers;
// otherwise each attempt spawns its goroutines via runAttempt. The second
// result reports whether a failure exhausted the retry budget — the
// degrade-and-replan trigger that costs the group its cores.
func runScheduledTask(ctx context.Context, w *World, sched *core.Schedule, li int, gi core.GroupID,
	lo, hi int, id graph.TaskID, global *lazyGlobal, body func(t *graph.Task) TaskFunc,
	cfg *execConfig, rep *Report, coop *wfWorker) (error, bool) {

	// Inline SourceTasks: the single-task case must not allocate a slice
	// per dispatch (the persistent-worker hot path is allocation-free).
	var single [1]graph.TaskID
	srcs := sched.Graph.Task(id).Members
	if len(srcs) == 0 {
		single[0] = id
		srcs = single[:]
	}
	for _, src := range srcs {
		t := sched.Source.Task(src)
		fn := body(t)
		if fn == nil {
			return fmt.Errorf("runtime: no body for task %q", t.Name), false
		}
		retries := 0
		for {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("runtime: task %q: %w", t.Name, err), false
			}
			attempt := rep.startAttempt(t.Name)
			tstart := rep.since()
			var aerr error
			if coop != nil {
				aerr = coop.coopAttempt(t, fn, attempt, li, gi, id, lo, hi)
			} else {
				aerr = runAttempt(ctx, w, t, fn, attempt, li, gi, lo, hi, global, cfg, rep)
			}
			if aerr == nil {
				rep.addSpan(t.Name, li, int(gi), hi-lo, tstart, rep.since())
				break
			}
			rep.failed(t.Name)
			cfg.rec.Instant("fail:"+t.Name, "fault", obs.ControlRank, cfg.rec.Now())
			if ctx.Err() != nil {
				// Layer timeout or caller cancellation: not a core
				// failure, do not escalate to degrade-and-replan.
				return fmt.Errorf("runtime: task %q: %w", t.Name, aerr), false
			}
			if errors.Is(aerr, ErrGlobalInWavefront) {
				// A body touched TaskCtx.Global under the wavefront
				// dispatcher: a programming error, not a fault — fail fast
				// without retries or core-loss escalation.
				return fmt.Errorf("runtime: task %q: %w", t.Name, aerr), false
			}
			if !cfg.policy.Retryable(aerr) || retries >= cfg.policy.MaxRetries {
				if cfg.policy.OnExhausted != nil {
					cfg.policy.OnExhausted(t.Name, attempt, aerr)
				}
				return fmt.Errorf("runtime: task %q failed after %d attempt(s): %w", t.Name, attempt, aerr), true
			}
			retries++
			rep.retried(t.Name)
			cfg.rec.Instant("retry:"+t.Name, "fault", obs.ControlRank, cfg.rec.Now())
			cfg.rec.Counter("fault.retries").Add(1)
			if d := cfg.policy.Backoff(t.Name, retries); d > 0 {
				timer := time.NewTimer(d)
				select {
				case <-timer.C:
				case <-ctx.Done():
					timer.Stop()
				}
			}
		}
	}
	return nil, false
}

// runAttempt executes one attempt of one task on a fresh group
// communicator: the SPMD body runs once per group rank, panics are
// recovered into *PanicError, a failing rank aborts the group communicator
// (releasing peers blocked in collectives), and a watchdog enforces the
// per-attempt deadline. On timeout the communicator is aborted and, if the
// attempt still does not settle within the abandon grace, its goroutines
// are abandoned (their errors are no longer read — no data race).
func runAttempt(parent context.Context, w *World, t *graph.Task, fn TaskFunc, attempt, li int,
	gi core.GroupID, lo, hi int, global *lazyGlobal, cfg *execConfig, rep *Report) error {

	size := hi - lo
	ranks := make([]int, size)
	for i := range ranks {
		ranks[i] = lo + i
	}
	gsh := newCommShared(Group, ranks, &w.Stats, cfg.rec)

	actx := parent
	var cancel context.CancelFunc
	if cfg.policy.TaskTimeout > 0 {
		actx, cancel = context.WithTimeout(parent, cfg.policy.TaskTimeout)
	} else {
		actx, cancel = context.WithCancel(parent)
	}
	defer cancel()

	errs := make([]error, size)
	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for r := 0; r < size; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				errs[r] = runRankAttempt(&TaskCtx{
					Group:      &Comm{shared: gsh, rank: r},
					Global:     &Comm{lazy: global, rank: lo + r},
					Task:       t,
					Layer:      li,
					GroupIndex: int(gi),
					Ctx:        actx,
				}, fn, attempt, gsh, cfg)
			}(r)
		}
		wg.Wait()
		close(done)
	}()

	select {
	case <-done:
		err := settleAttempt(t, rep, errs, actx)
		gsh.release() // attempt settled: no goroutine holds the comm anymore
		return err
	case <-actx.Done():
		cause := actx.Err()
		gsh.abort(fmt.Errorf("task %q attempt %d: %w", t.Name, attempt, cause))
		timer := time.NewTimer(cfg.grace)
		defer timer.Stop()
		select {
		case <-done:
			_ = settleAttempt(t, rep, errs, actx) // count panics; timeout is the primary error
			gsh.release()
			return fmt.Errorf("task %q attempt %d: %w", t.Name, attempt, cause)
		case <-timer.C:
			// Abandoned: the attempt's goroutines may still be running, so
			// errs must not be read. Bodies blocked in collectives have
			// been released by the abort; only pure computation can hang.
			return fmt.Errorf("task %q attempt %d abandoned after %v grace: %w", t.Name, attempt, cfg.grace, cause)
		}
	}
}

// runRankAttempt executes one rank's share of one group attempt: the
// injector consult, the body call, panic recovery (*PanicError) with
// *AbortError classification, the communicator abort on failure and the
// per-rank attempt span. It is shared by runAttempt, which runs it on a
// fresh goroutine per rank, and by the persistent-worker dispatcher,
// whose rank workers call it in place with reused TaskCtx scratch. tc
// must be fully populated and its Group handle must resolve to gsh.
func runRankAttempt(tc *TaskCtx, fn TaskFunc, attempt int, gsh *commShared, cfg *execConfig) (err error) {
	t := tc.Task
	r := tc.Group.rank
	if cfg.rec != nil {
		tstart := cfg.rec.Now()
		// Record the attempt span in the defer so panicking and aborted
		// attempts leave their partial span too.
		defer func() {
			cfg.rec.Span(t.Name, "task", gsh.ranks[r], tc.Layer, tc.GroupIndex, tstart, cfg.rec.Now())
		}()
	}
	defer func() {
		if p := recover(); p != nil {
			if ae, ok := p.(*AbortError); ok {
				err = ae
			} else {
				err = &PanicError{Value: p, Stack: debug.Stack()}
			}
		}
		if err != nil {
			gsh.abort(err) // release peers blocked in group collectives
		}
	}()
	if f := cfg.injector.Decide(t.Name, attempt, r); f != nil {
		switch f.Kind {
		case fault.Delay:
			timer := time.NewTimer(f.Delay)
			select {
			case <-timer.C:
			case <-tc.Ctx.Done():
				timer.Stop()
				return fmt.Errorf("injected delay interrupted: %w", tc.Ctx.Err())
			}
		case fault.Error, fault.CoreLoss:
			return f.Err
		case fault.Panic:
			panic(fmt.Sprintf("fault: injected panic in task %q (attempt %d, rank %d)", t.Name, attempt, r))
		}
	}
	return fn(tc)
}

// settleAttempt classifies the per-rank results of a finished attempt:
// recovered panics are counted, communicator aborts are secondary (they
// are the echo of the originating failure) and all real errors are joined
// in rank order.
func settleAttempt(t *graph.Task, rep *Report, errs []error, actx context.Context) error {
	var real, aborts []error
	panics := 0
	for r, err := range errs {
		if err == nil {
			continue
		}
		// An abort is the echo of the originating failure on another rank
		// (its cause may be that rank's panic) — classify it before the
		// panic check so echoes are not double-counted as panics.
		var ae *AbortError
		if errors.As(err, &ae) {
			aborts = append(aborts, fmt.Errorf("rank %d: %w", r, err))
			continue
		}
		var pe *PanicError
		if errors.As(err, &pe) {
			panics++
			real = append(real, fmt.Errorf("rank %d: %w", r, err))
			continue
		}
		real = append(real, fmt.Errorf("rank %d: %w", r, err))
	}
	rep.addPanics(t.Name, panics)
	if len(real) > 0 {
		return errors.Join(real...)
	}
	if len(aborts) > 0 {
		// Aborted without a local originating error (e.g. the watchdog
		// fired between completion and the select): surface the aborts.
		return errors.Join(aborts...)
	}
	if err := actx.Err(); err != nil && panics == 0 && len(errs) == 0 {
		return err
	}
	return nil
}
