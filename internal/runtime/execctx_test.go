package runtime

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mtask/internal/arch"
	"mtask/internal/core"
	"mtask/internal/cost"
	"mtask/internal/fault"
	"mtask/internal/graph"
)

// diamondSchedule builds the diamond test graph and schedules it on P
// symbolic cores of a CHiC subset.
func diamondSchedule(t *testing.T, P int) (*graph.Graph, *core.Schedule) {
	t.Helper()
	g := graph.New("diamond")
	a := g.AddTask(&graph.Task{Name: "a", Kind: graph.KindBasic, Work: 1e6})
	b := g.AddTask(&graph.Task{Name: "b", Kind: graph.KindBasic, Work: 1e6, CommBytes: 1 << 22, CommCount: 16})
	c := g.AddTask(&graph.Task{Name: "c", Kind: graph.KindBasic, Work: 1e6, CommBytes: 1 << 22, CommCount: 16})
	d := g.AddTask(&graph.Task{Name: "d", Kind: graph.KindBasic, Work: 1e6})
	g.MustEdge(a, b, 8)
	g.MustEdge(a, c, 8)
	g.MustEdge(b, d, 8)
	g.MustEdge(c, d, 8)
	model := &cost.Model{Machine: arch.CHiC().Subset(2)}
	sched, err := (&core.Scheduler{Model: model}).Schedule(g, P)
	if err != nil {
		t.Fatal(err)
	}
	return g, sched
}

// diamondReplanner reschedules the diamond graph on the surviving cores.
func diamondReplanner(t *testing.T, g *graph.Graph) Replanner {
	t.Helper()
	model := &cost.Model{Machine: arch.CHiC().Subset(2)}
	return func(ctx context.Context, survivors int) (*core.Schedule, error) {
		return (&core.Scheduler{Model: model}).Schedule(g, survivors)
	}
}

func TestExecuteCtxPlain(t *testing.T) {
	// Without faults or options ExecuteCtx behaves like Execute and the
	// report counts one attempt per task and all layers.
	_, sched := diamondSchedule(t, 8)
	w, _ := NewWorld(8)
	var ran [4]atomic.Int64
	rep, err := ExecuteCtx(context.Background(), w, sched, func(task *graph.Task) TaskFunc {
		return func(tc *TaskCtx) error {
			if tc.Group.Rank() == 0 {
				ran[task.ID].Add(1)
			}
			tc.Group.Barrier()
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 4; id++ {
		if got := ran[id].Load(); got != 1 {
			t.Fatalf("task %d ran %d times", id, got)
		}
	}
	if rep.Layers != len(sched.Layers) || rep.Retries != 0 || rep.Panics != 0 || rep.Replans != 0 {
		t.Fatalf("unexpected report: %s", rep)
	}
	if got := rep.Task("a").Attempts; got != 1 {
		t.Fatalf("task a attempts = %d, want 1", got)
	}
}

func TestExecuteCtxPanicIsolation(t *testing.T) {
	// A panicking body must not crash the process: the panic becomes a
	// *PanicError with a captured stack, peers blocked in a collective
	// are released via the communicator abort, and the report counts it.
	_, sched := diamondSchedule(t, 8)
	w, _ := NewWorld(8)
	rep, err := ExecuteCtx(context.Background(), w, sched, func(task *graph.Task) TaskFunc {
		return func(tc *TaskCtx) error {
			if task.Name == "b" && tc.Group.Rank() == 0 {
				panic("kaboom")
			}
			tc.Group.Barrier() // peers must be released, not deadlock
			return nil
		}
	})
	if err == nil {
		t.Fatal("panic swallowed")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error does not carry *PanicError: %v", err)
	}
	if !strings.Contains(fmt.Sprint(pe.Value), "kaboom") {
		t.Fatalf("panic value lost: %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("no stack captured")
	}
	if rep.Panics == 0 || rep.Task("b").Panics == 0 {
		t.Fatalf("panic not reported: %s", rep)
	}
}

func TestExecuteCtxRetrySucceeds(t *testing.T) {
	// A task that fails on its first two attempts and then succeeds must
	// be retried to success per the policy, and the report must show the
	// attempts and retries.
	_, sched := diamondSchedule(t, 8)
	w, _ := NewWorld(8)
	var bAttempts atomic.Int64
	pol := fault.DefaultPolicy()
	pol.BaseBackoff = 100 * time.Microsecond
	rep, err := ExecuteCtx(context.Background(), w, sched, func(task *graph.Task) TaskFunc {
		return func(tc *TaskCtx) error {
			if task.Name == "b" {
				n := int64(0)
				if tc.Group.Rank() == 0 {
					n = bAttempts.Add(1)
				}
				n = int64(tc.Group.AllreduceMax(float64(n)))
				if n <= 2 {
					if tc.Group.Rank() == 0 {
						return fmt.Errorf("transient flake %d", n)
					}
					tc.Group.Barrier() // released by the failing rank's abort
					return nil
				}
			}
			tc.Group.Barrier()
			return nil
		}
	}, WithPolicy(pol))
	if err != nil {
		t.Fatalf("retries did not recover: %v", err)
	}
	tr := rep.Task("b")
	if tr.Attempts != 3 || tr.Retries != 2 || tr.Failures != 2 {
		t.Fatalf("task b report = %+v, want 3 attempts / 2 retries / 2 failures", tr)
	}
	if rep.Retries != 2 {
		t.Fatalf("total retries = %d, want 2", rep.Retries)
	}
}

func TestExecuteCtxRetriesExhausted(t *testing.T) {
	// Persistent failure exhausts the budget: MaxRetries+1 attempts, then
	// the error surfaces (wrapped with the attempt count) and OnExhausted
	// fires.
	_, sched := diamondSchedule(t, 8)
	w, _ := NewWorld(8)
	pol := fault.DefaultPolicy()
	pol.MaxRetries = 2
	pol.BaseBackoff = 100 * time.Microsecond
	var exhaustedTask string
	var exhaustedAttempts int
	pol.OnExhausted = func(task string, attempts int, err error) {
		exhaustedTask, exhaustedAttempts = task, attempts
	}
	sentinel := errors.New("hard failure")
	rep, err := ExecuteCtx(context.Background(), w, sched, func(task *graph.Task) TaskFunc {
		return func(tc *TaskCtx) error {
			if task.Name == "c" && tc.Group.Rank() == 0 {
				return sentinel
			}
			tc.Group.Barrier()
			return nil
		}
	}, WithPolicy(pol))
	if !errors.Is(err, sentinel) {
		t.Fatalf("sentinel lost: %v", err)
	}
	if got := rep.Task("c").Attempts; got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	if exhaustedTask != "c" || exhaustedAttempts != 3 {
		t.Fatalf("OnExhausted(%q, %d), want (c, 3)", exhaustedTask, exhaustedAttempts)
	}
}

func TestExecuteCtxTaskTimeoutUnblocksBarrier(t *testing.T) {
	// One rank of a group sleeps past the per-attempt deadline while its
	// peers wait at a group barrier. The watchdog must abort the group
	// communicator so nothing deadlocks, and the attempt must fail with
	// context.DeadlineExceeded.
	g := graph.New("one")
	g.AddTask(&graph.Task{Name: "slow", Kind: graph.KindBasic, Work: 1})
	model := &cost.Model{Machine: arch.CHiC().Subset(1)}
	sched, err := (&core.Scheduler{Model: model}).Schedule(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := NewWorld(4)
	pol := fault.Policy{TaskTimeout: 50 * time.Millisecond}
	start := time.Now()
	_, err = ExecuteCtx(context.Background(), w, sched, func(task *graph.Task) TaskFunc {
		return func(tc *TaskCtx) error {
			if tc.Group.Rank() == 0 {
				select { // hang, but respect the attempt context
				case <-tc.Ctx.Done():
					return tc.Ctx.Err()
				case <-time.After(10 * time.Second):
				}
			}
			tc.Group.Barrier()
			return nil
		}
	}, WithPolicy(pol))
	if err == nil {
		t.Fatal("timeout not reported")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error does not wrap DeadlineExceeded: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("barrier deadlocked for %v", elapsed)
	}
}

func TestExecuteCtxLayerTimeout(t *testing.T) {
	// The layer timeout bounds a whole layer; its expiry cancels the
	// attempts but is not a core failure, so no replan happens.
	g := graph.New("one")
	g.AddTask(&graph.Task{Name: "slow", Kind: graph.KindBasic, Work: 1})
	model := &cost.Model{Machine: arch.CHiC().Subset(1)}
	sched, err := (&core.Scheduler{Model: model}).Schedule(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := NewWorld(2)
	pol := fault.Policy{LayerTimeout: 50 * time.Millisecond, MaxRetries: 3, DegradeAndReplan: true}
	rep, err := ExecuteCtx(context.Background(), w, sched, func(task *graph.Task) TaskFunc {
		return func(tc *TaskCtx) error {
			select {
			case <-tc.Ctx.Done():
				return tc.Ctx.Err()
			case <-time.After(10 * time.Second):
			}
			return nil
		}
	}, WithPolicy(pol))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("layer timeout lost: %v", err)
	}
	if rep.Replans != 0 {
		t.Fatalf("layer timeout escalated to replan: %s", rep)
	}
	_ = rep
}

func TestExecuteCtxInjectedRetry(t *testing.T) {
	// A scripted transient error on attempt 1 is retried and succeeds on
	// attempt 2 without the body ever observing the failure.
	_, sched := diamondSchedule(t, 8)
	w, _ := NewWorld(8)
	inj := &fault.Injector{Script: []fault.Script{{Task: "b", Attempt: 1, Rank: 0, Kind: fault.Error}}}
	pol := fault.DefaultPolicy()
	pol.BaseBackoff = 100 * time.Microsecond
	rep, err := ExecuteCtx(context.Background(), w, sched, func(task *graph.Task) TaskFunc {
		return func(tc *TaskCtx) error {
			tc.Group.Barrier()
			return nil
		}
	}, WithPolicy(pol), WithInjector(inj))
	if err != nil {
		t.Fatalf("injected transient error not recovered: %v", err)
	}
	if !errors.Is(errors.Join(fault.ErrInjected), fault.ErrInjected) {
		t.Fatal("sanity")
	}
	if got := rep.Task("b"); got.Attempts != 2 || got.Retries != 1 {
		t.Fatalf("task b report = %+v, want 2 attempts / 1 retry", got)
	}
}

func TestExecuteCtxCoreLossReplans(t *testing.T) {
	// A scripted core loss kills task b's group on attempt 1. Core loss
	// is not retryable, so the executor must degrade: replan the graph on
	// the surviving cores and resume from the last completed layer. The
	// computation must still complete, with every task having run.
	g, sched := diamondSchedule(t, 8)
	w, _ := NewWorld(8)
	inj := &fault.Injector{Script: []fault.Script{{Task: "b", Attempt: 1, Rank: 0, Kind: fault.CoreLoss}}}
	pol := fault.DefaultPolicy()
	pol.BaseBackoff = 100 * time.Microsecond
	pol.DegradeAndReplan = true

	var mu sync.Mutex
	ran := map[string]int{}
	rep, err := ExecuteCtx(context.Background(), w, sched, func(task *graph.Task) TaskFunc {
		return func(tc *TaskCtx) error {
			if tc.Group.Rank() == 0 {
				mu.Lock()
				ran[task.Name]++
				mu.Unlock()
			}
			tc.Group.Barrier()
			return nil
		}
	}, WithPolicy(pol), WithInjector(inj), WithReplanner(diamondReplanner(t, g)))
	if err != nil {
		t.Fatalf("degrade-and-replan did not recover: %v\n%s", err, rep)
	}
	if rep.Replans != 1 {
		t.Fatalf("replans = %d, want 1: %s", rep.Replans, rep)
	}
	if rep.LostCores == 0 || rep.LostCores >= 8 {
		t.Fatalf("lost cores = %d, want in (0, 8)", rep.LostCores)
	}
	for _, name := range []string{"a", "b", "c", "d"} {
		if ran[name] == 0 {
			t.Fatalf("task %q never completed: %v", name, ran)
		}
	}
	// b failed on attempt 1, so its re-execution is attempt 2 — the
	// script (keyed on attempt 1) must not re-fire.
	if got := rep.Task("b").Attempts; got != 2 {
		t.Fatalf("task b attempts = %d, want 2", got)
	}
}

func TestExecuteCtxReplanWithoutReplanner(t *testing.T) {
	// Core loss with DegradeAndReplan but no replanner: the original
	// error surfaces instead of a nil-deref or silent success.
	_, sched := diamondSchedule(t, 8)
	w, _ := NewWorld(8)
	inj := &fault.Injector{Script: []fault.Script{{Task: "b", Attempt: 1, Rank: 0, Kind: fault.CoreLoss}}}
	pol := fault.DefaultPolicy()
	pol.DegradeAndReplan = true
	_, err := ExecuteCtx(context.Background(), w, sched, func(task *graph.Task) TaskFunc {
		return func(tc *TaskCtx) error { tc.Group.Barrier(); return nil }
	}, WithPolicy(pol), WithInjector(inj))
	if !errors.Is(err, fault.ErrCoreLost) {
		t.Fatalf("core loss lost: %v", err)
	}
}

func TestExecuteCtxReplanBudget(t *testing.T) {
	// MaxReplans bounds the escalations: losing cores more often than the
	// budget allows must fail with the budget error.
	g, sched := diamondSchedule(t, 8)
	w, _ := NewWorld(8)
	inj := &fault.Injector{Script: []fault.Script{
		{Task: "b", Attempt: 1, Rank: 0, Kind: fault.CoreLoss},
		{Task: "b", Attempt: 2, Rank: 0, Kind: fault.CoreLoss},
	}}
	pol := fault.DefaultPolicy()
	pol.DegradeAndReplan = true
	pol.MaxReplans = 1
	_, err := ExecuteCtx(context.Background(), w, sched, func(task *graph.Task) TaskFunc {
		return func(tc *TaskCtx) error { tc.Group.Barrier(); return nil }
	}, WithPolicy(pol), WithInjector(inj), WithReplanner(diamondReplanner(t, g)))
	if err == nil || !strings.Contains(err.Error(), "replan budget") {
		t.Fatalf("replan budget not enforced: %v", err)
	}
}

func TestExecuteCtxCancellation(t *testing.T) {
	// Canceling the caller's context stops the execution promptly, fails
	// with context.Canceled, and never triggers retries or replans.
	_, sched := diamondSchedule(t, 8)
	w, _ := NewWorld(8)
	ctx, cancel := context.WithCancel(context.Background())
	pol := fault.DefaultPolicy()
	pol.DegradeAndReplan = true
	started := make(chan struct{})
	var once sync.Once
	done := make(chan struct{})
	var rep *Report
	var err error
	go func() {
		defer close(done)
		rep, err = ExecuteCtx(ctx, w, sched, func(task *graph.Task) TaskFunc {
			return func(tc *TaskCtx) error {
				once.Do(func() { close(started) })
				select {
				case <-tc.Ctx.Done():
					return tc.Ctx.Err()
				case <-time.After(10 * time.Second):
				}
				tc.Group.Barrier()
				return nil
			}
		}, WithPolicy(pol))
	}()
	<-started
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not stop the execution")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if rep.Replans != 0 || rep.Retries != 0 {
		t.Fatalf("cancellation escalated: %s", rep)
	}
}

func TestExecuteCtxWorldTooSmall(t *testing.T) {
	_, sched := diamondSchedule(t, 8)
	w, _ := NewWorld(4)
	if _, err := ExecuteCtx(context.Background(), w, sched, func(task *graph.Task) TaskFunc {
		return func(tc *TaskCtx) error { return nil }
	}); err == nil {
		t.Fatal("oversized schedule accepted")
	}
}

func TestExecuteHierarchicalCtx(t *testing.T) {
	// A composed loop task under the fault-tolerant executor: the body
	// runs the scheduled sub-graph the requested number of times, with a
	// scripted transient failure on the composed task's first attempt.
	inner := graph.New("body")
	inner.AddTask(&graph.Task{Name: "step", Kind: graph.KindBasic, Work: 1e5})
	inner.AddStartStop()
	top := graph.New("loop")
	top.AddTask(&graph.Task{Name: "iter", Kind: graph.KindComposed, Sub: inner, Work: 1e5})
	top.AddStartStop()
	model := &cost.Model{Machine: arch.CHiC().Subset(1)}
	hs, err := (&core.Scheduler{Model: model}).ScheduleHierarchical(top, 4)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := NewWorld(4)
	inj := &fault.Injector{Script: []fault.Script{{Task: "iter", Attempt: 1, Rank: 0, Kind: fault.Error}}}
	pol := fault.DefaultPolicy()
	pol.BaseBackoff = 100 * time.Microsecond
	var steps atomic.Int64
	const trips = 3
	rep, err := ExecuteHierarchicalCtx(context.Background(), w, hs, func(task *graph.Task) TaskFunc {
		return func(tc *TaskCtx) error {
			if tc.Group.Rank() == 0 {
				steps.Add(1)
			}
			tc.Group.Barrier()
			return nil
		}
	}, func(task *graph.Task, done int) bool { return done < trips }, WithPolicy(pol), WithInjector(inj))
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Task("iter"); got.Attempts != 2 || got.Retries != 1 {
		t.Fatalf("iter report = %+v, want 2 attempts / 1 retry", got)
	}
	if got := steps.Load(); got != trips {
		t.Fatalf("step ran %d times in the successful attempt, want %d", got, trips)
	}
}
