package runtime

import (
	"context"
	"errors"
	"fmt"

	"mtask/internal/core"
	"mtask/internal/graph"
)

// ErrNoSubSchedule reports a composed task whose hierarchical schedule has
// no entry for it; test with errors.Is.
var ErrNoSubSchedule = errors.New("runtime: no sub-schedule for composed task")

// TaskCtx is the execution context handed to the SPMD body of an M-task:
// the group communicator of the cores executing the task, the global
// communicator (for orthogonal exchanges and data re-distribution between
// cooperating M-tasks), and the task being executed.
type TaskCtx struct {
	// Group is the communicator of the cores executing this task.
	Group *Comm
	// Global is the caller's handle of the world communicator.
	Global *Comm
	// Task is the original (uncontracted) M-task.
	Task *graph.Task
	// Layer and GroupIndex locate the task in the schedule.
	Layer      int
	GroupIndex int
	// Ctx is the attempt context of the fault-tolerant executor: it is
	// canceled when the attempt times out or the execution is canceled
	// (nil under the plain Execute/ExecuteHierarchical entry points).
	Ctx context.Context
}

// TaskFunc is the SPMD body of a basic M-task: it is invoked once per
// participating core, concurrently.
type TaskFunc func(ctx *TaskCtx) error

// Execute runs a layered schedule on the world: for every layer the world
// is split into the schedule's core groups, every group executes its
// assigned M-tasks one after another (contracted chains expand back to
// their original member tasks), and layers are separated by a global
// barrier (the group structure is reorganised between layers). The body
// function maps each original task to its SPMD implementation; tasks
// without a body are an error.
//
// Per-rank failures are aggregated with errors.Join in rank order: every
// rank that failed contributes its error to the result instead of all but
// one being dropped. For retries, timeouts and panic isolation use
// ExecuteCtx.
func Execute(w *World, sched *core.Schedule, body func(t *graph.Task) TaskFunc) error {
	if sched.P != w.P {
		return fmt.Errorf("runtime: schedule needs %d cores, world has %d", sched.P, w.P)
	}
	errs := make([]error, w.P)
	w.Run(func(global *Comm) {
		rank := global.Rank()
		for li, ls := range sched.Layers {
			gi := int(ls.GroupOfRank(rank))
			groupComm := global.Split(gi, rank, Group)
			for _, id := range ls.Groups[gi] {
				if errs[rank] != nil {
					break // keep collectives below, skip work
				}
				for _, src := range sched.SourceTasks(id) {
					t := sched.Source.Task(src)
					fn := body(t)
					if fn == nil {
						errs[rank] = fmt.Errorf("runtime: no body for task %q", t.Name)
						break
					}
					ctx := &TaskCtx{
						Group:      groupComm,
						Global:     global,
						Task:       t,
						Layer:      li,
						GroupIndex: gi,
					}
					if err := fn(ctx); err != nil {
						errs[rank] = fmt.Errorf("runtime: task %q: %w", t.Name, err)
						break
					}
				}
				if errs[rank] != nil {
					break
				}
			}
			global.Barrier()
		}
	})
	return joinRankErrors(errs)
}

// joinRankErrors aggregates per-rank errors with errors.Join, annotating
// each with its rank. Returns nil when every rank succeeded.
func joinRankErrors(errs []error) error {
	joined := make([]error, 0, len(errs))
	for rank, err := range errs {
		if err != nil {
			joined = append(joined, fmt.Errorf("rank %d: %w", rank, err))
		}
	}
	return errors.Join(joined...)
}

// subScheduleIndex maps every composed source task of a hierarchical
// schedule to the schedule of its body, resolving the contraction
// indirection (a composed node may appear as the single member of a
// contracted node) once instead of scanning hs.Sub per execution.
func subScheduleIndex(hs *core.HierarchicalSchedule) map[*graph.Task]*core.HierarchicalSchedule {
	idx := make(map[*graph.Task]*core.HierarchicalSchedule, len(hs.Sub))
	for id, sub := range hs.Sub {
		node := hs.Top.Graph.Task(id)
		src := node
		if len(node.Members) == 1 {
			src = hs.Top.Source.Task(node.Members[0])
		}
		idx[src] = sub
	}
	return idx
}

// ExecuteHierarchical runs a hierarchical schedule: basic tasks execute
// their bodies as in Execute; a composed task (e.g. a while loop) executes
// its recursively scheduled body repeatedly on its group's cores. The
// iterations function returns the trip count of a composed task and is
// consulted before each repetition (return 0 to stop; it may inspect
// shared state updated by the body, which is how data-dependent while
// loops terminate).
func ExecuteHierarchical(w *World, hs *core.HierarchicalSchedule, body func(t *graph.Task) TaskFunc,
	iterations func(t *graph.Task, done int) bool) error {

	subOf := subScheduleIndex(hs)
	wrapped := func(t *graph.Task) TaskFunc {
		if t.Kind != graph.KindComposed {
			return body(t)
		}
		return func(ctx *TaskCtx) error {
			sub, ok := subOf[t]
			if !ok {
				return fmt.Errorf("%w: %q", ErrNoSubSchedule, t.Name)
			}
			return runComposed(ctx, t, sub, body, iterations)
		}
	}
	return Execute(w, hs.Top, wrapped)
}

// runComposed repeats a composed task's scheduled body on the group that
// executes it, consulting iterations before every trip.
func runComposed(ctx *TaskCtx, t *graph.Task, sub *core.HierarchicalSchedule,
	body func(t *graph.Task) TaskFunc, iterations func(t *graph.Task, done int) bool) error {
	for done := 0; iterations == nil && done < 1 || iterations != nil && iterations(t, done); done++ {
		if err := executeOn(ctx.Group, sub, body, iterations); err != nil {
			return err
		}
		if iterations == nil {
			break
		}
	}
	return nil
}

// executeOn runs a (hierarchical) schedule on an existing communicator:
// the schedule's P must equal the communicator size. It mirrors Execute
// but splits the given group instead of a world.
func executeOn(comm *Comm, hs *core.HierarchicalSchedule, body func(t *graph.Task) TaskFunc,
	iterations func(t *graph.Task, done int) bool) error {
	sched := hs.Top
	if sched.P != comm.Size() {
		return fmt.Errorf("runtime: sub-schedule needs %d cores, group has %d", sched.P, comm.Size())
	}
	subOf := subScheduleIndex(hs)
	rank := comm.Rank()
	var firstErr error
	for li, ls := range sched.Layers {
		gi := int(ls.GroupOfRank(rank))
		groupComm := comm.Split(gi, rank, Group)
		for _, id := range ls.Groups[gi] {
			if firstErr != nil {
				break // keep the layer collectives, skip the work
			}
			for _, src := range sched.SourceTasks(id) {
				t := sched.Source.Task(src)
				var fn TaskFunc
				if t.Kind == graph.KindComposed {
					sub, ok := subOf[t]
					if !ok {
						firstErr = fmt.Errorf("%w: %q", ErrNoSubSchedule, t.Name)
						break
					}
					fn = func(ctx *TaskCtx) error {
						return runComposed(ctx, t, sub, body, iterations)
					}
				} else {
					fn = body(t)
				}
				if fn == nil {
					firstErr = fmt.Errorf("runtime: no body for task %q", t.Name)
					break
				}
				ctx := &TaskCtx{Group: groupComm, Task: t, Layer: li, GroupIndex: gi}
				if err := fn(ctx); err != nil {
					firstErr = fmt.Errorf("runtime: task %q: %w", t.Name, err)
					break
				}
			}
			if firstErr != nil {
				break
			}
		}
		comm.Barrier()
	}
	return firstErr
}
