package runtime

import (
	"strconv"
	"strings"
	"time"

	"mtask/internal/core"
	"mtask/internal/graph"
)

// ImbalancedWorkload builds the canonical workload where wavefront
// execution beats the layer-synchronous executor: two core groups of P/2
// ranks, `layers` layers of two independent per-group chains, and per
// layer one slow and one fast task with the slow side alternating between
// the groups. Task names are "slow[i]" / "fast[i]"; ImbalancedBody turns
// them into sleeps.
//
// Under the layered executor every layer costs max(slow, fast) = slow (the
// fast group idles at the join), so the wall time is layers×slow. The
// wavefront dispatcher runs the two chains independently; each chain
// alternates slow and fast tasks, so both finish in about
// layers×(slow+fast)/2 — the idle time at the barrier is recovered. The
// win is pure waiting time, so it holds even on a single-CPU host.
//
// P must be even and layers ≥ 1. The schedule is hand-built (no scheduler
// pass) but satisfies every invariant of core.Schedule.Validate and
// core.PrecedenceOf.
func ImbalancedWorkload(p, layers int) *core.Schedule {
	if p < 2 || p%2 != 0 {
		panic("runtime: ImbalancedWorkload needs an even P >= 2")
	}
	if layers < 1 {
		panic("runtime: ImbalancedWorkload needs at least one layer")
	}
	g := graph.New("imbalanced")
	sched := &core.Schedule{P: p}
	var prevA, prevB graph.TaskID
	for li := 0; li < layers; li++ {
		// Group 0 gets the slow task on even layers, group 1 on odd ones.
		nameA, nameB := "slow", "fast"
		if li%2 == 1 {
			nameA, nameB = "fast", "slow"
		}
		a := g.AddBasic(nameA+"["+strconv.Itoa(li)+"]", 1)
		b := g.AddBasic(nameB+"["+strconv.Itoa(li)+"]", 1)
		if li > 0 {
			g.MustEdge(prevA, a, 8)
			g.MustEdge(prevB, b, 8)
		}
		prevA, prevB = a, b
		sched.Layers = append(sched.Layers, &core.LayerSchedule{
			Layer:  graph.Layer{a, b},
			Groups: [][]graph.TaskID{{a}, {b}},
			Sizes:  []int{p / 2, p / 2},
		})
	}
	sched.Source = g
	sched.Graph = g
	return sched
}

// ImbalancedBody returns the body function of ImbalancedWorkload: every
// rank of a "slow[...]" task sleeps slow, every rank of a "fast[...]" task
// sleeps fast, and the group synchronises with one barrier so the sleep is
// a real SPMD task, not P independent naps.
func ImbalancedBody(slow, fast time.Duration) func(t *graph.Task) TaskFunc {
	return func(t *graph.Task) TaskFunc {
		d := fast
		if strings.HasPrefix(t.Name, "slow") {
			d = slow
		}
		return func(tc *TaskCtx) error {
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
			case <-tc.Ctx.Done():
				timer.Stop()
				return tc.Ctx.Err()
			}
			tc.Group.Barrier()
			return nil
		}
	}
}
