package runtime

import (
	"sync"

	"mtask/internal/obs"
)

// lazyGlobal defers building a communicator's shared state until a member
// actually issues an operation on it. The fault-tolerant executor hands
// every task rank a per-layer global communicator, but most bodies only
// ever use their group communicator — with the lazy shell, a layer whose
// bodies never touch TaskCtx.Global allocates (and abort-poisons) nothing.
//
// A plain sync.Once is not enough: the layer-end abort can race a
// straggler of an abandoned attempt that touches the global for the first
// time *after* the layer finished. The mutex makes the two orders
// equivalent — create-then-abort, or record-the-abort and create the
// communicator pre-poisoned — so a straggler is always released instead of
// blocking forever in a collective no peer will join.
type lazyGlobal struct {
	kind  CommKind
	ranks []int
	stats *Stats
	rec   *obs.Recorder

	mu      sync.Mutex
	sh      *commShared
	aborted bool
	cause   error
}

// newLazyGlobal prepares a lazy communicator shell over the given world
// ranks; no shared state is allocated until the first get.
func newLazyGlobal(kind CommKind, worldRanks []int, stats *Stats, rec *obs.Recorder) *lazyGlobal {
	return &lazyGlobal{kind: kind, ranks: worldRanks, stats: stats, rec: rec}
}

// get returns the communicator's shared state, creating it on first use.
// If abort was called before the first use, the state is created already
// poisoned, so every collective on it panics with an *AbortError.
func (lg *lazyGlobal) get() *commShared {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	if lg.sh == nil {
		lg.sh = newCommShared(lg.kind, lg.ranks, lg.stats, lg.rec)
		if lg.aborted {
			lg.sh.abort(lg.cause)
		}
	}
	return lg.sh
}

// abort poisons the communicator if it was ever created, and arranges for
// a later first use to create it pre-poisoned. The first cause wins,
// matching commShared.abort.
func (lg *lazyGlobal) abort(err error) {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	if !lg.aborted {
		lg.aborted = true
		lg.cause = err
	}
	if lg.sh != nil {
		lg.sh.abort(err)
	}
}
