package runtime

import (
	"context"
	"errors"
	"sync"
	"testing"

	"mtask/internal/graph"
)

// TestLazyGlobalCreateThenAbort: a communicator in use when the abort
// arrives is poisoned like an eager one.
func TestLazyGlobalCreateThenAbort(t *testing.T) {
	lg := newLazyGlobal(Global, identityRanks(2), nil, nil)
	c := &Comm{lazy: lg, rank: 0}
	if got := c.Size(); got != 2 { // first touch creates the shared state
		t.Fatalf("size = %d, want 2", got)
	}
	cause := errors.New("boom")
	lg.abort(cause)
	defer func() {
		p := recover()
		ae, ok := p.(*AbortError)
		if !ok {
			t.Fatalf("collective on aborted lazy comm panicked with %v, want *AbortError", p)
		}
		if !errors.Is(ae, cause) {
			t.Fatalf("abort cause lost: %v", ae)
		}
	}()
	c.Barrier()
	t.Fatal("barrier on aborted communicator returned")
}

// TestLazyGlobalAbortThenCreate: a member touching the communicator for
// the first time after the abort (the abandoned-straggler race) gets it
// pre-poisoned instead of creating a live communicator no peer will join.
func TestLazyGlobalAbortThenCreate(t *testing.T) {
	lg := newLazyGlobal(Global, identityRanks(2), nil, nil)
	cause := errors.New("layer done")
	lg.abort(cause)
	c := &Comm{lazy: lg, rank: 1}
	defer func() {
		p := recover()
		ae, ok := p.(*AbortError)
		if !ok {
			t.Fatalf("collective panicked with %v, want *AbortError", p)
		}
		if !errors.Is(ae, cause) {
			t.Fatalf("abort cause lost: %v", ae)
		}
	}()
	c.Barrier()
	t.Fatal("barrier on pre-aborted communicator returned")
}

// TestLazyGlobalNeverTouchedAllocatesNothing: the point of the laziness —
// a layer whose bodies never use TaskCtx.Global must not build the global
// communicator at all, and the layer-end abort must stay allocation-free.
func TestLazyGlobalNeverTouchedAllocatesNothing(t *testing.T) {
	lg := newLazyGlobal(Global, identityRanks(8), nil, nil)
	lg.abort(errLayerDone)
	if lg.sh != nil {
		t.Fatal("untouched lazy global allocated shared state")
	}
}

// TestExecuteCtxGlobalCollective: bodies of layer-concurrent groups using
// the (now lazily created) per-layer global communicator still synchronise
// across groups in layered mode.
func TestExecuteCtxGlobalCollective(t *testing.T) {
	_, sched := diamondSchedule(t, 8)
	w, _ := NewWorld(8)
	var mu sync.Mutex
	sums := make(map[string]float64)
	rep, err := ExecuteCtx(context.Background(), w, sched, func(task *graph.Task) TaskFunc {
		return func(tc *TaskCtx) error {
			// Every rank of every group in the layer joins the global
			// all-reduce; with the diamond's middle layer (b and c in
			// separate groups) this spans both groups, so each records the
			// contribution of all P cores.
			sum := tc.Global.AllreduceSum(1)
			if tc.Group.Rank() == 0 {
				mu.Lock()
				sums[task.Name] = sum
				mu.Unlock()
			}
			return nil
		}
	})
	if err != nil {
		t.Fatalf("%v\n%s", err, rep)
	}
	for _, name := range []string{"a", "b", "c", "d"} {
		if got := sums[name]; got != 8 {
			t.Fatalf("task %q saw global sum %v, want 8", name, got)
		}
	}
}
