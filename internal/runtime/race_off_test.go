//go:build !race

package runtime

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
