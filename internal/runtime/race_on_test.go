//go:build race

package runtime

// raceEnabled reports whether the race detector is active: allocation
// gates are skipped under -race, whose instrumentation (and sync.Pool's
// deliberate random drops) inflates allocation counts.
const raceEnabled = true
