package runtime

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// TaskReport records the fault-tolerance history of one task.
type TaskReport struct {
	Name     string
	Attempts int // body executions (first try + retries, across replans)
	Retries  int // attempts beyond the first
	Panics   int // panics recovered from the task's ranks
	Failures int // failed attempts (including the retried ones)
}

// Report makes the robustness of a fault-tolerant execution observable:
// per-task attempt counts, recovered panics, retries, degrade-and-replan
// escalations, lost cores and wall time. ExecuteCtx returns a Report even
// when the execution fails. A Report must not be read until the executor
// has returned.
type Report struct {
	mu sync.Mutex

	// Tasks holds the per-task histories keyed by task name.
	Tasks map[string]*TaskReport

	// Retries and Panics total the per-task counts.
	Retries int
	Panics  int

	// Replans counts degrade-and-replan escalations; LostCores is the
	// total number of symbolic cores given up across them.
	Replans   int
	LostCores int

	// Layers counts completed layer barriers (the recovery
	// checkpoints reached).
	Layers int

	// Wall is the wall-clock duration of the execution.
	Wall time.Duration
}

// NewReport returns an empty report.
func NewReport() *Report {
	return &Report{Tasks: make(map[string]*TaskReport)}
}

// task returns the entry for the named task, creating it if needed.
// Callers must hold r.mu.
func (r *Report) task(name string) *TaskReport {
	tr := r.Tasks[name]
	if tr == nil {
		tr = &TaskReport{Name: name}
		r.Tasks[name] = tr
	}
	return tr
}

// startAttempt records the start of an attempt and returns its 1-based
// number, which is stable across retries and replans (the failure
// injector's script mode keys on it).
func (r *Report) startAttempt(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	tr := r.task(name)
	tr.Attempts++
	return tr.Attempts
}

// failed records a failed attempt of the named task.
func (r *Report) failed(name string) {
	r.mu.Lock()
	r.task(name).Failures++
	r.mu.Unlock()
}

// retried records that the named task is being retried.
func (r *Report) retried(name string) {
	r.mu.Lock()
	r.task(name).Retries++
	r.Retries++
	r.mu.Unlock()
}

// addPanics records n recovered panics in the named task's ranks.
func (r *Report) addPanics(name string, n int) {
	if n == 0 {
		return
	}
	r.mu.Lock()
	r.task(name).Panics += n
	r.Panics += n
	r.mu.Unlock()
}

// replanned records a degrade-and-replan escalation; lostTotal is the
// cumulative number of lost cores.
func (r *Report) replanned(lostTotal int) {
	r.mu.Lock()
	r.Replans++
	r.LostCores = lostTotal
	r.mu.Unlock()
}

// layerDone records a completed layer barrier.
func (r *Report) layerDone() {
	r.mu.Lock()
	r.Layers++
	r.mu.Unlock()
}

// Task returns a copy of the named task's history (zero value if the task
// never ran).
func (r *Report) Task(name string) TaskReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	if tr := r.Tasks[name]; tr != nil {
		return *tr
	}
	return TaskReport{Name: name}
}

// String renders the report: the totals line always, then one line per
// task that needed fault handling (attempts > 1 or recovered panics).
func (r *Report) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "execution report: %d tasks, %d layers done, %d retries, %d recovered panics, %d replans (%d cores lost), wall %v\n",
		len(r.Tasks), r.Layers, r.Retries, r.Panics, r.Replans, r.LostCores, r.Wall.Round(time.Microsecond))
	names := make([]string, 0, len(r.Tasks))
	for name, tr := range r.Tasks {
		if tr.Attempts > 1 || tr.Panics > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		tr := r.Tasks[name]
		fmt.Fprintf(&b, "  %-24s attempts=%d retries=%d panics=%d failures=%d\n",
			tr.Name, tr.Attempts, tr.Retries, tr.Panics, tr.Failures)
	}
	return b.String()
}
