package runtime

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// TaskReport records the fault-tolerance history of one task.
type TaskReport struct {
	Name     string
	Attempts int // body executions (first try + retries, across replans)
	Retries  int // attempts beyond the first
	Panics   int // panics recovered from the task's ranks
	Failures int // failed attempts (including the retried ones)
}

// Report makes the robustness of a fault-tolerant execution observable:
// per-task attempt counts, recovered panics, retries, degrade-and-replan
// escalations, lost cores and wall time. ExecuteCtx returns a Report even
// when the execution fails. A Report must not be read until the executor
// has returned.
type Report struct {
	mu sync.Mutex

	// Tasks holds the per-task histories keyed by task name.
	Tasks map[string]*TaskReport

	// Retries and Panics total the per-task counts.
	Retries int
	Panics  int

	// Replans counts degrade-and-replan escalations; LostCores is the
	// total number of symbolic cores given up across them.
	Replans   int
	LostCores int

	// Resizes counts voluntary resizes applied at layer barriers
	// (WithResizer); GrownCores and ShrunkCores total the symbolic cores
	// gained and given up across them. Unlike Replans, resizes are not
	// failures: the machine-level job allocator uses them to grow and
	// shrink running jobs.
	Resizes     int
	GrownCores  int
	ShrunkCores int

	// Layers counts completed layer barriers (the recovery
	// checkpoints reached).
	Layers int

	// Wall is the wall-clock duration of the execution.
	Wall time.Duration

	// Spans records one entry per successful task attempt, in completion
	// order; timestamps are offsets from the start of the execution. Use
	// Timeline for a copy sorted by start time.
	Spans []TaskSpan

	// P is the symbolic core count of the initial schedule (the
	// denominator of Utilization).
	P int

	// epoch is the wall-clock instant offsets are measured from.
	epoch time.Time

	// lean drops O(tasks) state for million-task runs (WithoutTimeline):
	// successful attempts fold their core-time into busy instead of
	// appending a TaskSpan, and Tasks entries are created only for tasks
	// touched by fault handling.
	lean bool

	// busy accumulates successful-attempt core-time in lean mode (the
	// Utilization numerator normally recomputed from Spans).
	busy time.Duration
}

// TaskSpan is the timeline entry of one successful task attempt: which
// task ran where, and when. Start and End are offsets from the beginning
// of the execution, so spans from one Report are directly comparable.
type TaskSpan struct {
	Name       string
	Layer      int
	Group      int
	Cores      int
	Start, End time.Duration
}

// Duration returns the span's elapsed time.
func (s TaskSpan) Duration() time.Duration { return s.End - s.Start }

// NewReport returns an empty report.
func NewReport() *Report {
	return &Report{Tasks: make(map[string]*TaskReport)}
}

// task returns the entry for the named task, creating it if needed.
// Callers must hold r.mu.
func (r *Report) task(name string) *TaskReport {
	tr := r.Tasks[name]
	if tr == nil {
		tr = &TaskReport{Name: name}
		r.Tasks[name] = tr
	}
	return tr
}

// startAttempt records the start of an attempt and returns its 1-based
// number, which is stable across retries and replans (the failure
// injector's script mode keys on it). In lean mode the first attempt of
// a never-failed task does not create a map entry — the entry appears
// (with this attempt back-counted) only if the task fails, so attempt
// numbering stays correct for every task that fails at least once. The
// exception is a never-failed task re-executed after a degrade-and-replan
// (it completed past the checkpoint, then runs again): with no retained
// entry its re-execution reports 1 again where non-lean mode reports 2
// — the documented WithoutTimeline replan caveat.
func (r *Report) startAttempt(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lean {
		tr := r.Tasks[name]
		if tr == nil {
			return 1
		}
		tr.Attempts++
		return tr.Attempts
	}
	tr := r.task(name)
	tr.Attempts++
	return tr.Attempts
}

// failed records a failed attempt of the named task.
func (r *Report) failed(name string) {
	r.mu.Lock()
	tr := r.task(name)
	if r.lean && tr.Attempts == 0 {
		tr.Attempts = 1 // the fast-pathed first attempt, counted on failure
	}
	tr.Failures++
	r.mu.Unlock()
}

// retried records that the named task is being retried.
func (r *Report) retried(name string) {
	r.mu.Lock()
	r.task(name).Retries++
	r.Retries++
	r.mu.Unlock()
}

// addPanics records n recovered panics in the named task's ranks.
func (r *Report) addPanics(name string, n int) {
	if n == 0 {
		return
	}
	r.mu.Lock()
	r.task(name).Panics += n
	r.Panics += n
	r.mu.Unlock()
}

// replanned records a degrade-and-replan escalation; lostTotal is the
// cumulative number of lost cores.
func (r *Report) replanned(lostTotal int) {
	r.mu.Lock()
	r.Replans++
	r.LostCores = lostTotal
	r.mu.Unlock()
}

// resized records a voluntary resize applied at a layer barrier; delta is
// the signed change of the symbolic core count.
func (r *Report) resized(delta int) {
	r.mu.Lock()
	r.Resizes++
	if delta >= 0 {
		r.GrownCores += delta
	} else {
		r.ShrunkCores -= delta
	}
	r.mu.Unlock()
}

// layerDone records a completed layer barrier.
func (r *Report) layerDone() {
	r.mu.Lock()
	r.Layers++
	r.mu.Unlock()
}

// begin anchors the report's timeline epoch and records the symbolic core
// count; the executor calls it once before the first layer.
func (r *Report) begin(p int) {
	r.mu.Lock()
	r.P = p
	r.epoch = time.Now()
	r.mu.Unlock()
}

// since returns the current offset from the timeline epoch.
func (r *Report) since() time.Duration {
	r.mu.Lock()
	e := r.epoch
	r.mu.Unlock()
	if e.IsZero() {
		return 0
	}
	return time.Since(e)
}

// addSpan records the timeline entry of a successful attempt (or, in
// lean mode, just its core-time contribution).
func (r *Report) addSpan(name string, layer, group, cores int, start, end time.Duration) {
	r.mu.Lock()
	if r.lean {
		r.busy += time.Duration(cores) * (end - start)
	} else {
		r.Spans = append(r.Spans, TaskSpan{Name: name, Layer: layer, Group: group, Cores: cores, Start: start, End: end})
	}
	r.mu.Unlock()
}

// presizeSpans reserves timeline capacity for n successful attempts, so
// a large schedule's span retention does not pay repeated growth copies.
// No-op in lean mode (no spans are retained).
func (r *Report) presizeSpans(n int) {
	r.mu.Lock()
	if !r.lean && cap(r.Spans) < n {
		r.Spans = make([]TaskSpan, len(r.Spans), n)
	}
	r.mu.Unlock()
}

// Timeline returns a copy of the per-task spans sorted by start time
// (ties by name). In layered mode the starts of a layer cluster behind the
// previous layer's join; in wavefront mode a task starts as soon as its
// dependences allow, which is where the idle-time win comes from.
func (r *Report) Timeline() []TaskSpan {
	r.mu.Lock()
	spans := append([]TaskSpan(nil), r.Spans...)
	r.mu.Unlock()
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Name < spans[j].Name
	})
	return spans
}

// Utilization summarises the timeline: busy is the core-time spent inside
// successful task attempts (span duration × group cores), idle is the rest
// of the P×Wall core-time budget, and frac is busy's share of it. A lower
// idle share on the same program is the direct measure of what wavefront
// execution recovers from the layer barriers.
func (r *Report) Utilization() (busy, idle time.Duration, frac float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	busy = r.busy // lean-mode accumulator; zero when spans are retained
	for _, s := range r.Spans {
		busy += time.Duration(s.Cores) * (s.End - s.Start)
	}
	total := time.Duration(r.P) * r.Wall
	if total > busy {
		idle = total - busy
	}
	if total > 0 {
		frac = float64(busy) / float64(total)
	}
	return busy, idle, frac
}

// Task returns a copy of the named task's history (zero value if the task
// never ran).
func (r *Report) Task(name string) TaskReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	if tr := r.Tasks[name]; tr != nil {
		return *tr
	}
	return TaskReport{Name: name}
}

// String renders the report: the totals line always, then one line per
// task that needed fault handling (attempts > 1 or recovered panics).
func (r *Report) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "execution report: %d tasks, %d layers done, %d retries, %d recovered panics, %d replans (%d cores lost), wall %v\n",
		len(r.Tasks), r.Layers, r.Retries, r.Panics, r.Replans, r.LostCores, r.Wall.Round(time.Microsecond))
	if r.Resizes > 0 {
		fmt.Fprintf(&b, "  resizes: %d applied at layer barriers (+%d/-%d cores)\n",
			r.Resizes, r.GrownCores, r.ShrunkCores)
	}
	if r.lean && r.Replans > 0 {
		// The WithoutTimeline replan caveat, surfaced where operators read
		// it: lean reports keep no history for never-failed tasks, so their
		// re-execution after a replan restarts attempt numbering at 1.
		b.WriteString("  note: lean report (WithoutTimeline) — never-failed tasks re-executed after a replan restart attempt numbering at 1; scripts keyed on attempt numbers across a replan need the full report\n")
	}
	if r.P > 0 && (len(r.Spans) > 0 || r.busy > 0) {
		busy := r.busy
		for _, s := range r.Spans {
			busy += time.Duration(s.Cores) * (s.End - s.Start)
		}
		total := time.Duration(r.P) * r.Wall
		idle := time.Duration(0)
		if total > busy {
			idle = total - busy
		}
		// A zero-duration report (empty schedule, or Wall not yet set)
		// has no wall time to divide by: utilization is n/a, not NaN.
		util := "n/a"
		if total > 0 {
			util = fmt.Sprintf("%.1f%% utilized", 100*float64(busy)/float64(total))
		}
		fmt.Fprintf(&b, "  core-time: busy %v, idle %v of %v (%s)\n",
			busy.Round(time.Microsecond), idle.Round(time.Microsecond), total.Round(time.Microsecond), util)
	}
	names := make([]string, 0, len(r.Tasks))
	for name, tr := range r.Tasks {
		if tr.Attempts > 1 || tr.Panics > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		tr := r.Tasks[name]
		fmt.Fprintf(&b, "  %-24s attempts=%d retries=%d panics=%d failures=%d\n",
			tr.Name, tr.Attempts, tr.Retries, tr.Panics, tr.Failures)
	}
	return b.String()
}
