package runtime

import (
	"strings"
	"testing"
	"time"
)

// TestReportStringZeroWall is the regression test for the core-time
// line of a zero-duration report: with spans present but Wall == 0
// (empty schedule, or String called before Wall is stamped) the line
// must render "n/a" utilization instead of dividing by zero.
func TestReportStringZeroWall(t *testing.T) {
	r := NewReport()
	r.begin(2)
	r.startAttempt("t")
	r.addSpan("t", 0, 0, 2, 0, time.Millisecond)

	out := r.String()
	if !strings.Contains(out, "core-time:") {
		t.Fatalf("zero-wall report omits the core-time line:\n%s", out)
	}
	if !strings.Contains(out, "n/a") {
		t.Fatalf("zero-wall report should render n/a utilization:\n%s", out)
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatalf("zero-wall report rendered a non-finite utilization:\n%s", out)
	}

	// With a wall time the percentage returns.
	r.mu.Lock()
	r.Wall = 2 * time.Millisecond
	r.mu.Unlock()
	out = r.String()
	if !strings.Contains(out, "% utilized") {
		t.Fatalf("timed report lost the utilization percentage:\n%s", out)
	}
}
