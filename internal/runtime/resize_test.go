package runtime

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"mtask/internal/arch"
	"mtask/internal/core"
	"mtask/internal/cost"
	"mtask/internal/graph"
)

// ladderGraph builds a stages-deep ladder: two parallel tasks per stage
// with full bipartite edges between stages, so nothing contracts into a
// chain and the schedule has exactly `stages` layers.
func ladderGraph(name string, stages int) *graph.Graph {
	g := graph.New(name)
	var prev [2]graph.TaskID
	for s := 0; s < stages; s++ {
		var cur [2]graph.TaskID
		for i := 0; i < 2; i++ {
			cur[i] = g.AddTask(&graph.Task{
				Name: fmt.Sprintf("t%d.%d", s, i), Kind: graph.KindBasic, Work: 1e6,
			})
		}
		if s > 0 {
			for _, p := range prev {
				for _, c := range cur {
					g.MustEdge(p, c, 8)
				}
			}
		}
		prev = cur
	}
	return g
}

// scheduleOn schedules g on P symbolic cores of a CHiC subset.
func scheduleOn(t *testing.T, g *graph.Graph, P int) *core.Schedule {
	t.Helper()
	model := &cost.Model{Machine: arch.CHiC().Subset(2)}
	sched, err := (&core.Scheduler{Model: model}).Schedule(g, P)
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

func TestResizerGrowAndShrink(t *testing.T) {
	// A resizer that shrinks at barrier 2 and grows back at barrier 4:
	// every task still runs exactly once, and the report records both
	// resizes with their core deltas.
	g := ladderGraph("resize", 6)
	s8 := scheduleOn(t, g, 8)
	s4 := scheduleOn(t, g, 4)
	w, _ := NewWorld(8)

	var runs [12]atomic.Int64
	rz := func(ctx context.Context, completed int) (*core.Schedule, error) {
		switch completed {
		case 2:
			return s4, nil
		case 4:
			return s8, nil
		}
		return nil, nil
	}
	rep, err := ExecuteCtx(context.Background(), w, s8, func(task *graph.Task) TaskFunc {
		return func(tc *TaskCtx) error {
			if tc.Group.Rank() == 0 {
				runs[task.ID].Add(1)
			}
			tc.Group.Barrier()
			return nil
		}
	}, WithResizer(rz))
	if err != nil {
		t.Fatal(err)
	}
	for id := range runs {
		if got := runs[id].Load(); got != 1 {
			t.Fatalf("task %d ran %d times, want 1", id, got)
		}
	}
	if rep.Resizes != 2 || rep.ShrunkCores != 4 || rep.GrownCores != 4 {
		t.Fatalf("resizes = %d (+%d/-%d), want 2 (+4/-4)", rep.Resizes, rep.GrownCores, rep.ShrunkCores)
	}
	if !strings.Contains(rep.String(), "resizes: 2 applied at layer barriers (+4/-4 cores)") {
		t.Fatalf("report does not render the resizes:\n%s", rep)
	}
	if rep.Replans != 0 || rep.LostCores != 0 {
		t.Fatalf("voluntary resizes must not count as replans: %s", rep)
	}
}

func TestResizerRejectsWavefront(t *testing.T) {
	g := ladderGraph("resize-wf", 3)
	s8 := scheduleOn(t, g, 8)
	w, _ := NewWorld(8)
	rz := func(ctx context.Context, completed int) (*core.Schedule, error) { return nil, nil }
	_, err := ExecuteCtx(context.Background(), w, s8, func(task *graph.Task) TaskFunc {
		return func(tc *TaskCtx) error { return nil }
	}, WithWavefront(), WithResizer(rz))
	if !errors.Is(err, ErrResizeInWavefront) {
		t.Fatalf("err = %v, want ErrResizeInWavefront", err)
	}
}

func TestResizerRejectsForeignLayering(t *testing.T) {
	// A resized schedule must keep the layer partition; handing back a
	// schedule of a different graph fails the execution at the barrier.
	g := ladderGraph("resize-bad", 4)
	s8 := scheduleOn(t, g, 8)
	other := scheduleOn(t, ladderGraph("resize-other", 3), 8)
	w, _ := NewWorld(8)
	rz := func(ctx context.Context, completed int) (*core.Schedule, error) { return other, nil }
	_, err := ExecuteCtx(context.Background(), w, s8, func(task *graph.Task) TaskFunc {
		return func(tc *TaskCtx) error { return nil }
	}, WithResizer(rz))
	if err == nil || !strings.Contains(err.Error(), "resize at layer barrier") {
		t.Fatalf("err = %v, want a layering rejection", err)
	}
}

func TestResizerRejectsOversizedSchedule(t *testing.T) {
	g := ladderGraph("resize-big", 4)
	s4 := scheduleOn(t, g, 4)
	s8 := scheduleOn(t, g, 8)
	w, _ := NewWorld(4)
	rz := func(ctx context.Context, completed int) (*core.Schedule, error) { return s8, nil }
	_, err := ExecuteCtx(context.Background(), w, s4, func(task *graph.Task) TaskFunc {
		return func(tc *TaskCtx) error { return nil }
	}, WithResizer(rz))
	if err == nil || !strings.Contains(err.Error(), "world has") {
		t.Fatalf("err = %v, want a world-size rejection", err)
	}
}

func TestResizerErrorFailsExecution(t *testing.T) {
	g := ladderGraph("resize-err", 4)
	s8 := scheduleOn(t, g, 8)
	w, _ := NewWorld(8)
	boom := errors.New("boom")
	rz := func(ctx context.Context, completed int) (*core.Schedule, error) { return nil, boom }
	_, err := ExecuteCtx(context.Background(), w, s8, func(task *graph.Task) TaskFunc {
		return func(tc *TaskCtx) error { return nil }
	}, WithResizer(rz))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the resizer error", err)
	}
}

func TestReportLeanReplanCaveatSurfaced(t *testing.T) {
	// The WithoutTimeline attempt-numbering caveat must be readable in the
	// rendered report, not only in godoc.
	r := NewReport()
	r.lean = true
	r.Replans = 1
	if s := r.String(); !strings.Contains(s, "lean report (WithoutTimeline)") {
		t.Fatalf("lean replan report misses the caveat note:\n%s", s)
	}
	r2 := NewReport()
	r2.Replans = 1
	if s := r2.String(); strings.Contains(s, "lean report") {
		t.Fatalf("full report must not carry the lean caveat:\n%s", s)
	}
}
