package runtime

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"mtask/internal/arch"
	"mtask/internal/core"
	"mtask/internal/cost"
	"mtask/internal/graph"
)

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(0); err == nil {
		t.Fatal("world of 0 cores accepted")
	}
	w, err := NewWorld(4)
	if err != nil || w.P != 4 {
		t.Fatalf("NewWorld(4): %v %v", w, err)
	}
}

func TestBlockRange(t *testing.T) {
	// 10 items over 4 ranks: 3,3,2,2.
	wants := [][2]int{{0, 3}, {3, 6}, {6, 8}, {8, 10}}
	for r, want := range wants {
		lo, hi := BlockRange(10, 4, r)
		if lo != want[0] || hi != want[1] {
			t.Fatalf("BlockRange(10,4,%d) = %d..%d, want %v", r, lo, hi, want)
		}
	}
	// Coverage and disjointness for many shapes.
	for n := 0; n < 20; n++ {
		for size := 1; size < 7; size++ {
			prev := 0
			for r := 0; r < size; r++ {
				lo, hi := BlockRange(n, size, r)
				if lo != prev || hi < lo {
					t.Fatalf("BlockRange(%d,%d,%d) = %d..%d, prev end %d", n, size, r, lo, hi, prev)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("BlockRange(%d,%d) covers %d items", n, size, prev)
			}
		}
	}
}

func TestBarrierSynchronises(t *testing.T) {
	w, _ := NewWorld(8)
	var phase atomic.Int64
	w.Run(func(c *Comm) {
		for round := 0; round < 10; round++ {
			phase.Add(1)
			c.Barrier()
			if got := phase.Load(); got != int64(8*(round+1)) {
				t.Errorf("round %d: phase = %d, want %d", round, got, 8*(round+1))
			}
			c.Barrier()
		}
	})
}

func TestBcast(t *testing.T) {
	w, _ := NewWorld(6)
	w.Run(func(c *Comm) {
		var data []float64
		if c.Rank() == 2 {
			data = []float64{1, 2, 3}
		}
		got := c.Bcast(2, data)
		for i, v := range []float64{1, 2, 3} {
			if got[i] != v {
				t.Errorf("rank %d: bcast[%d] = %g", c.Rank(), i, got[i])
			}
		}
		// Non-roots get their own copy.
		if c.Rank() != 2 {
			got[0] = 99
		}
		c.Barrier()
		got2 := c.Bcast(2, data)
		if got2[0] != 1 {
			t.Errorf("rank %d: bcast buffer aliased: %g", c.Rank(), got2[0])
		}
	})
	if n := w.Stats.Count(Global, OpBcast); n != 2 {
		t.Fatalf("bcast count = %d, want 2", n)
	}
}

func TestAllgather(t *testing.T) {
	w, _ := NewWorld(5)
	w.Run(func(c *Comm) {
		contrib := []float64{float64(c.Rank()), float64(c.Rank()) + 0.5}
		got := c.Allgather(contrib)
		if len(got) != 10 {
			t.Errorf("rank %d: allgather len %d", c.Rank(), len(got))
			return
		}
		for r := 0; r < 5; r++ {
			if got[2*r] != float64(r) || got[2*r+1] != float64(r)+0.5 {
				t.Errorf("rank %d: wrong gathered block %d: %v", c.Rank(), r, got[2*r:2*r+2])
			}
		}
	})
	if n := w.Stats.Count(Global, OpAllgather); n != 1 {
		t.Fatalf("allgather count = %d, want 1", n)
	}
}

func TestAllgatherVariableSizes(t *testing.T) {
	w, _ := NewWorld(4)
	w.Run(func(c *Comm) {
		contrib := make([]float64, c.Rank()) // ranks contribute 0..3 items
		for i := range contrib {
			contrib[i] = float64(c.Rank()*10 + i)
		}
		got := c.Allgather(contrib)
		want := []float64{10, 20, 21, 30, 31, 32}
		if len(got) != len(want) {
			t.Errorf("rank %d: len %d want %d", c.Rank(), len(got), len(want))
			return
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("rank %d: got[%d]=%g want %g", c.Rank(), i, got[i], want[i])
			}
		}
	})
}

func TestAllreduce(t *testing.T) {
	w, _ := NewWorld(7)
	w.Run(func(c *Comm) {
		if got := c.AllreduceMax(float64(c.Rank())); got != 6 {
			t.Errorf("rank %d: max = %g", c.Rank(), got)
		}
		if got := c.AllreduceSum(1); got != 7 {
			t.Errorf("rank %d: sum = %g", c.Rank(), got)
		}
	})
}

func TestSplitGroups(t *testing.T) {
	w, _ := NewWorld(8)
	w.Run(func(c *Comm) {
		color := c.Rank() / 4
		g := c.Split(color, c.Rank(), Group)
		if g.Size() != 4 {
			t.Errorf("rank %d: group size %d", c.Rank(), g.Size())
		}
		if g.Kind() != Group {
			t.Errorf("wrong kind %v", g.Kind())
		}
		if want := c.Rank() % 4; g.Rank() != want {
			t.Errorf("rank %d: group rank %d, want %d", c.Rank(), g.Rank(), want)
		}
		if g.WorldRank() != c.Rank() {
			t.Errorf("world rank mismatch: %d vs %d", g.WorldRank(), c.Rank())
		}
		// Group collectives only see group members.
		sum := g.AllreduceSum(float64(c.Rank()))
		want := 0.0
		for r := color * 4; r < (color+1)*4; r++ {
			want += float64(r)
		}
		if sum != want {
			t.Errorf("rank %d: group sum %g, want %g", c.Rank(), sum, want)
		}
	})
	if n := w.Stats.Count(Group, OpReduce); n != 2 {
		t.Fatalf("group reduce count = %d, want 2 (one per group)", n)
	}
}

func TestSplitOrthogonal(t *testing.T) {
	// 2 groups of 4; orthogonal sets connect equal positions.
	w, _ := NewWorld(8)
	w.Run(func(c *Comm) {
		pos := c.Rank() % 4
		o := c.Split(pos, c.Rank(), Orthogonal)
		if o.Size() != 2 {
			t.Errorf("orthogonal size %d", o.Size())
		}
		got := o.Allgather([]float64{float64(c.Rank())})
		if len(got) != 2 || got[0] != float64(pos) || got[1] != float64(pos+4) {
			t.Errorf("rank %d: orthogonal gather %v", c.Rank(), got)
		}
	})
	if n := w.Stats.Count(Orthogonal, OpAllgather); n != 4 {
		t.Fatalf("orthogonal allgather count = %d, want 4", n)
	}
}

func TestRepeatedSplits(t *testing.T) {
	// Split the same communicator repeatedly (as the executor does per
	// layer); generations must not interfere.
	w, _ := NewWorld(6)
	w.Run(func(c *Comm) {
		for round := 0; round < 5; round++ {
			color := (c.Rank() + round) % 3
			g := c.Split(color, c.Rank(), Group)
			if g.Size() != 2 {
				t.Errorf("round %d rank %d: size %d", round, c.Rank(), g.Size())
			}
			g.Barrier()
		}
	})
}

func TestStats(t *testing.T) {
	var s Stats
	s.add(Global, OpBcast)
	s.add(Global, OpBcast)
	s.add(Group, OpAllgather)
	if s.Count(Global, OpBcast) != 2 || s.Count(Group, OpAllgather) != 1 {
		t.Fatal("wrong counts")
	}
	if s.Total() != 3 {
		t.Fatalf("total = %d", s.Total())
	}
	s.Reset()
	if s.Total() != 0 {
		t.Fatal("reset failed")
	}
}

func TestExecuteSchedule(t *testing.T) {
	// Build a diamond graph, schedule it, and execute it: each task
	// sums its group's contributions into a shared result; verify every
	// task ran exactly once with the scheduled group size.
	g := graph.New("diamond")
	a := g.AddTask(&graph.Task{Name: "a", Kind: graph.KindBasic, Work: 1e6})
	b := g.AddTask(&graph.Task{Name: "b", Kind: graph.KindBasic, Work: 1e6, CommBytes: 1 << 22, CommCount: 16})
	c := g.AddTask(&graph.Task{Name: "c", Kind: graph.KindBasic, Work: 1e6, CommBytes: 1 << 22, CommCount: 16})
	d := g.AddTask(&graph.Task{Name: "d", Kind: graph.KindBasic, Work: 1e6})
	g.MustEdge(a, b, 8)
	g.MustEdge(a, c, 8)
	g.MustEdge(b, d, 8)
	g.MustEdge(c, d, 8)

	model := &cost.Model{Machine: arch.CHiC().Subset(2)}
	sch := &core.Scheduler{Model: model}
	sched, err := sch.Schedule(g, 8)
	if err != nil {
		t.Fatal(err)
	}

	w, _ := NewWorld(8)
	var ran [4]atomic.Int64
	var sizes [4]atomic.Int64
	err = Execute(w, sched, func(task *graph.Task) TaskFunc {
		return func(ctx *TaskCtx) error {
			if ctx.Group.Rank() == 0 {
				ran[task.ID].Add(1)
				sizes[task.ID].Store(int64(ctx.Group.Size()))
			}
			ctx.Group.Barrier()
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 4; id++ {
		if got := ran[id].Load(); got != 1 {
			t.Fatalf("task %d ran %d times", id, got)
		}
	}
	// b and c are independent and comm-heavy: they should have run on
	// disjoint subgroups (4+4), a and d data-parallel on all 8.
	if sizes[a].Load() != 8 || sizes[d].Load() != 8 {
		t.Fatalf("a/d group sizes: %d %d, want 8", sizes[a].Load(), sizes[d].Load())
	}
	if sizes[b].Load()+sizes[c].Load() != 8 {
		t.Fatalf("b/c group sizes: %d %d, want sum 8", sizes[b].Load(), sizes[c].Load())
	}
}

func TestExecuteMissingBody(t *testing.T) {
	g := graph.New("g")
	g.AddTask(&graph.Task{Name: "mystery", Kind: graph.KindBasic, Work: 1})
	model := &cost.Model{Machine: arch.CHiC().Subset(1)}
	sch := &core.Scheduler{Model: model}
	sched, err := sch.Schedule(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := NewWorld(4)
	err = Execute(w, sched, func(task *graph.Task) TaskFunc { return nil })
	if err == nil {
		t.Fatal("missing body not reported")
	}
}

func TestExecuteTaskError(t *testing.T) {
	g := graph.New("g")
	g.AddTask(&graph.Task{Name: "boom", Kind: graph.KindBasic, Work: 1})
	model := &cost.Model{Machine: arch.CHiC().Subset(1)}
	sch := &core.Scheduler{Model: model}
	sched, _ := sch.Schedule(g, 2)
	w, _ := NewWorld(2)
	err := Execute(w, sched, func(task *graph.Task) TaskFunc {
		return func(ctx *TaskCtx) error { return fmt.Errorf("boom") }
	})
	if err == nil {
		t.Fatal("task error swallowed")
	}
}

func TestExecuteWorldSizeMismatch(t *testing.T) {
	g := graph.New("g")
	g.AddTask(&graph.Task{Name: "t", Kind: graph.KindBasic, Work: 1})
	model := &cost.Model{Machine: arch.CHiC().Subset(1)}
	sch := &core.Scheduler{Model: model}
	sched, _ := sch.Schedule(g, 4)
	w, _ := NewWorld(2)
	if err := Execute(w, sched, func(task *graph.Task) TaskFunc { return nil }); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestParallelSumMatchesSequential(t *testing.T) {
	// A small end-to-end SPMD computation: distributed dot product.
	const n = 1000
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%17) * 0.25
	}
	var seq float64
	for _, v := range x {
		seq += v * v
	}
	w, _ := NewWorld(8)
	var results [8]float64
	w.Run(func(c *Comm) {
		lo, hi := BlockRange(n, c.Size(), c.Rank())
		var local float64
		for _, v := range x[lo:hi] {
			local += v * v
		}
		results[c.Rank()] = c.AllreduceSum(local)
	})
	for r, got := range results {
		if math.Abs(got-seq) > 1e-9 {
			t.Fatalf("rank %d: parallel sum %g != sequential %g", r, got, seq)
		}
	}
}

func TestExecuteHierarchical(t *testing.T) {
	// Upper level: init -> while(body); body = two independent tasks +
	// a join. The while loop runs 3 iterations.
	body := graph.New("body")
	a := body.AddTask(&graph.Task{Name: "a", Kind: graph.KindBasic, Work: 1e6, CommBytes: 1 << 20, CommCount: 8})
	b2 := body.AddTask(&graph.Task{Name: "b", Kind: graph.KindBasic, Work: 1e6, CommBytes: 1 << 20, CommCount: 8})
	j := body.AddTask(&graph.Task{Name: "join", Kind: graph.KindBasic, Work: 1e6})
	body.MustEdge(a, j, 8)
	body.MustEdge(b2, j, 8)
	body.AddStartStop()

	top := graph.New("top")
	top.AddTask(&graph.Task{Name: "init", Kind: graph.KindBasic, Work: 1e6})
	top.AddTask(&graph.Task{Name: "while", Kind: graph.KindComposed, Work: body.TotalWork(), Sub: body})
	top.MustEdge(0, 1, 8)
	top.AddStartStop()

	model := &cost.Model{Machine: arch.CHiC().Subset(2)}
	hs, err := (&core.Scheduler{Model: model}).ScheduleHierarchical(top, 8)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := NewWorld(8)
	var counts sync.Map
	bodyFn := func(task *graph.Task) TaskFunc {
		return func(ctx *TaskCtx) error {
			if ctx.Group.Rank() == 0 {
				v, _ := counts.LoadOrStore(task.Name, new(atomic.Int64))
				v.(*atomic.Int64).Add(1)
			}
			ctx.Group.Barrier()
			return nil
		}
	}
	const trips = 3
	err = ExecuteHierarchical(w, hs, bodyFn, func(task *graph.Task, done int) bool {
		return done < trips
	})
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) int64 {
		v, ok := counts.Load(name)
		if !ok {
			return 0
		}
		return v.(*atomic.Int64).Load()
	}
	if get("init") != 1 {
		t.Fatalf("init ran %d times", get("init"))
	}
	for _, name := range []string{"a", "b", "join"} {
		if get(name) != trips {
			t.Fatalf("%s ran %d times, want %d", name, get(name), trips)
		}
	}
}

func TestExecuteHierarchicalBodyError(t *testing.T) {
	body := graph.New("body")
	body.AddTask(&graph.Task{Name: "boom", Kind: graph.KindBasic, Work: 1})
	body.AddStartStop()
	top := graph.New("top")
	top.AddTask(&graph.Task{Name: "loop", Kind: graph.KindComposed, Work: 1, Sub: body})
	top.AddStartStop()
	model := &cost.Model{Machine: arch.CHiC().Subset(1)}
	hs, err := (&core.Scheduler{Model: model}).ScheduleHierarchical(top, 4)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := NewWorld(4)
	err = ExecuteHierarchical(w, hs, func(task *graph.Task) TaskFunc {
		return func(ctx *TaskCtx) error { return fmt.Errorf("boom") }
	}, func(task *graph.Task, done int) bool { return done < 2 })
	if err == nil {
		t.Fatal("body error swallowed")
	}
}
