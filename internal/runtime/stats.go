package runtime

import "sync/atomic"

// numCommKinds and numOps size the fixed Stats counter array; they must
// cover every CommKind and Op constant.
const (
	numCommKinds = int(Orthogonal) + 1
	numOps       = int(OpRedist) + 1
)

// Stats counts collective operations by communicator kind and operation.
// Each collective is counted once (not once per participating core). The
// counters are a fixed [kinds][ops] array of atomic.Int64, so recording an
// operation is one uncontended atomic increment instead of a global mutex
// acquisition plus a map lookup.
type Stats struct {
	counts [numCommKinds][numOps]atomic.Int64
}

// add records one collective.
func (s *Stats) add(kind CommKind, op Op) {
	if kind < 0 || int(kind) >= numCommKinds || op < 0 || int(op) >= numOps {
		return
	}
	s.counts[kind][op].Add(1)
}

// Count returns the number of recorded collectives of the given kind/op.
func (s *Stats) Count(kind CommKind, op Op) int {
	if kind < 0 || int(kind) >= numCommKinds || op < 0 || int(op) >= numOps {
		return 0
	}
	return int(s.counts[kind][op].Load())
}

// Reset clears all counters.
func (s *Stats) Reset() {
	for k := range s.counts {
		for o := range s.counts[k] {
			s.counts[k][o].Store(0)
		}
	}
}

// Total returns the total number of collectives of any kind.
func (s *Stats) Total() int {
	t := int64(0)
	for k := range s.counts {
		for o := range s.counts[k] {
			t += s.counts[k][o].Load()
		}
	}
	return int(t)
}
