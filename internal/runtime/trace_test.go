package runtime

import (
	"context"
	"strings"
	"testing"
	"time"

	"mtask/internal/fault"
	"mtask/internal/obs"
)

// TestExecuteCtxTrace runs the imbalanced workload under a recorder and
// checks the acceptance surface of the tracing layer: task spans,
// barrier-wait spans and collective counter samples for every rank,
// layer-done instants on the control track, and a coherent Metrics
// snapshot.
func TestExecuteCtxTrace(t *testing.T) {
	const p, layers = 4, 3
	sched := ImbalancedWorkload(p, layers)
	body := ImbalancedBody(2*time.Millisecond, 100*time.Microsecond)
	w, _ := NewWorld(p)
	rec := obs.New(p, obs.WithName("trace-test"))
	rep, err := ExecuteCtx(context.Background(), w, sched, body, WithRecorder(rec))
	if err != nil {
		t.Fatalf("%v\n%s", err, rep)
	}

	for rank := 0; rank < p; rank++ {
		var tasks, barriers, counters int
		for _, ev := range rec.RankEvents(rank) {
			switch {
			case ev.Kind == obs.KindSpan && ev.Cat == "task":
				tasks++
				if ev.End < ev.Start {
					t.Errorf("rank %d: span %q ends before it starts", rank, ev.Name)
				}
				if ev.Layer < 0 || ev.Group < 0 {
					t.Errorf("rank %d: task span %q missing layer/group", rank, ev.Name)
				}
			case ev.Kind == obs.KindSpan && ev.Cat == "barrier":
				barriers++
			case ev.Kind == obs.KindCounter:
				counters++
			}
		}
		// One group of the pair runs the slow task, the other the fast one:
		// every rank executes exactly one task per layer.
		if tasks != layers {
			t.Errorf("rank %d: %d task spans, want %d", rank, tasks, layers)
		}
		// ImbalancedBody issues one group barrier per task.
		if barriers != layers {
			t.Errorf("rank %d: %d barrier-wait spans, want %d", rank, barriers, layers)
		}
		if counters == 0 {
			t.Errorf("rank %d: no collective counter samples", rank)
		}
	}

	var layerDone int
	for _, ev := range rec.RankEvents(obs.ControlRank) {
		if ev.Kind == obs.KindInstant && ev.Name == "layer-done" {
			layerDone++
		}
	}
	if layerDone != layers {
		t.Errorf("%d layer-done instants, want %d", layerDone, layers)
	}
	if rec.Drops() != 0 {
		t.Errorf("trace dropped %d events", rec.Drops())
	}
	if out := rec.Gantt(40); !strings.Contains(out, "slow[0]@") || !strings.Contains(out, "#") {
		t.Errorf("gantt missing task rows:\n%s", out)
	}
}

// TestExecuteCtxTraceWavefront checks the dispatcher path records the
// same per-rank surface (the acceptance smoke of mtaskbench -trace).
func TestExecuteCtxTraceWavefront(t *testing.T) {
	const p, layers = 4, 3
	sched := ImbalancedWorkload(p, layers)
	body := ImbalancedBody(time.Millisecond, 100*time.Microsecond)
	w, _ := NewWorld(p)
	rec := obs.New(p)
	rep, err := ExecuteCtx(context.Background(), w, sched, body, WithWavefront(), WithRecorder(rec))
	if err != nil {
		t.Fatalf("%v\n%s", err, rep)
	}
	for rank := 0; rank < p; rank++ {
		var tasks, barriers int
		for _, ev := range rec.RankEvents(rank) {
			if ev.Kind == obs.KindSpan && ev.Cat == "task" {
				tasks++
			}
			if ev.Kind == obs.KindSpan && ev.Cat == "barrier" {
				barriers++
			}
		}
		if tasks != layers || barriers != layers {
			t.Errorf("rank %d: %d task / %d barrier spans, want %d each", rank, tasks, barriers, layers)
		}
	}
}

// TestTraceRetryInstants checks fault handling leaves retry/fail events
// and registry counters on the control track.
func TestTraceRetryInstants(t *testing.T) {
	const p = 2
	sched := ImbalancedWorkload(p, 1)
	body := ImbalancedBody(0, 0)
	w, _ := NewWorld(p)
	rec := obs.New(p)
	inj := &fault.Injector{Script: []fault.Script{{Task: "slow[0]", Attempt: 1, Rank: 0, Kind: fault.Error}}}
	rep, err := ExecuteCtx(context.Background(), w, sched, body,
		WithRecorder(rec), WithInjector(inj), WithPolicy(fault.Policy{MaxRetries: 2}))
	if err != nil {
		t.Fatalf("%v\n%s", err, rep)
	}
	var retries, fails int
	for _, ev := range rec.RankEvents(obs.ControlRank) {
		if strings.HasPrefix(ev.Name, "retry:") {
			retries++
		}
		if strings.HasPrefix(ev.Name, "fail:") {
			fails++
		}
	}
	if retries == 0 || fails == 0 {
		t.Errorf("retries=%d fails=%d instants, want both > 0", retries, fails)
	}
	if rec.Metrics()["fault.retries"] == 0 {
		t.Error("fault.retries counter not incremented")
	}
}
