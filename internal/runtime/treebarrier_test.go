package runtime

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// Tests pinning the dissemination-barrier internals: abort delivery to
// waiters parked at different tree levels, the singleton fast paths, the
// split-registry pruning, and the one-barrier-round-per-collective
// invariant.

// TestTreeBarrierAbortMixedLevels parks ranks 1..7 of an 8-member barrier
// at mixed dissemination rounds (with rank 0 absent, rank 1 blocks in
// round 0, rank 2 in round 1, rank 4 in round 2, ... — each at the first
// round whose signal chain needs rank 0) and then aborts from rank 0. All
// waiters must unwind with an *AbortError instead of spinning forever.
func TestTreeBarrierAbortMixedLevels(t *testing.T) {
	const p = 8
	var stats Stats
	sh := newCommShared(Global, identityRanks(p), &stats, nil)
	cause := errors.New("rank 0 bailed")
	var wg sync.WaitGroup
	errs := make([]error, p)
	mustFinish(t, 10*time.Second, func() {
		for r := 1; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				defer func() {
					if v := recover(); v != nil {
						ae, ok := v.(*AbortError)
						if !ok {
							panic(v)
						}
						errs[r] = ae.Cause
					}
				}()
				c := &Comm{shared: sh, rank: r}
				c.Barrier()
			}(r)
		}
		// Let the waiters reach their parking rounds, then poison.
		time.Sleep(20 * time.Millisecond)
		(&Comm{shared: sh, rank: 0}).Abort(cause)
		wg.Wait()
	})
	for r := 1; r < p; r++ {
		if !errors.Is(errs[r], cause) {
			t.Errorf("rank %d: got %v, want abort cause", r, errs[r])
		}
	}
	// The poison is sticky: every later operation must refuse immediately,
	// including the *Into paths and Split.
	for name, fn := range map[string]func(c *Comm){
		"barrier":    func(c *Comm) { c.Barrier() },
		"bcastInto":  func(c *Comm) { c.BcastInto(0, []float64{1}) },
		"reduceInto": func(c *Comm) { c.ReduceInto(ReduceSum, []float64{1}, nil) },
		"split":      func(c *Comm) { c.Split(0, 0, Group) },
	} {
		func() {
			defer func() {
				v := recover()
				if v == nil {
					t.Errorf("%s after abort: no panic", name)
					return
				}
				if _, ok := v.(*AbortError); !ok {
					t.Errorf("%s after abort: panic %v, want *AbortError", name, v)
				}
			}()
			fn(&Comm{shared: sh, rank: 1})
		}()
	}
}

// TestTreeBarrierAbortDuringDataCollectives aborts while peers are parked
// inside the single barrier round of Allgather and of Split (not just
// Barrier) — the staged slots must not keep anyone blocked.
func TestTreeBarrierAbortDuringDataCollectives(t *testing.T) {
	for name, fn := range map[string]func(c *Comm){
		"allgatherInto": func(c *Comm) { c.AllgatherInto([]float64{float64(c.Rank())}, nil) },
		"split":         func(c *Comm) { c.Split(c.Rank()%2, c.Rank(), Group) },
	} {
		t.Run(name, func(t *testing.T) {
			const p = 8
			var stats Stats
			sh := newCommShared(Global, identityRanks(p), &stats, nil)
			cause := errors.New("injected")
			var wg sync.WaitGroup
			aborted := make([]bool, p)
			mustFinish(t, 10*time.Second, func() {
				for r := 1; r < p; r++ {
					wg.Add(1)
					go func(r int) {
						defer wg.Done()
						defer func() {
							if v := recover(); v != nil {
								if _, ok := v.(*AbortError); !ok {
									panic(v)
								}
								aborted[r] = true
							}
						}()
						fn(&Comm{shared: sh, rank: r})
					}(r)
				}
				time.Sleep(20 * time.Millisecond)
				(&Comm{shared: sh, rank: 0}).Abort(cause)
				wg.Wait()
			})
			for r := 1; r < p; r++ {
				if !aborted[r] {
					t.Errorf("rank %d not released from %s", r, name)
				}
			}
		})
	}
}

// TestSingletonNoSynchronization is the regression test for the size-1
// fast paths: a singleton communicator must complete every collective
// without a single barrier round — its generation counter, operation
// sequence and barrier flags all stay at zero.
func TestSingletonNoSynchronization(t *testing.T) {
	var stats Stats
	sh := newCommShared(Global, []int{0}, &stats, nil)
	c := &Comm{shared: sh, rank: 0}

	c.Barrier()
	if got := c.Bcast(0, []float64{1, 2}); len(got) != 2 {
		t.Fatalf("bcast: %v", got)
	}
	buf := []float64{3, 4}
	c.BcastInto(0, buf)
	if got := c.Allgather([]float64{5}); len(got) != 1 || got[0] != 5 {
		t.Fatalf("allgather: %v", got)
	}
	if got := c.AllgatherInto([]float64{6}, nil); len(got) != 1 || got[0] != 6 {
		t.Fatalf("allgatherInto: %v", got)
	}
	if got := c.AllgatherAs([]float64{7}, OpRedist); len(got) != 1 {
		t.Fatalf("allgatherAs: %v", got)
	}
	if got := c.ExchangeAny("x"); len(got) != 1 || got[0] != "x" {
		t.Fatalf("exchangeAny: %v", got)
	}
	if got := c.AllreduceSum(8); got != 8 {
		t.Fatalf("allreduceSum: %v", got)
	}
	if got := c.AllreduceMax(9); got != 9 {
		t.Fatalf("allreduceMax: %v", got)
	}
	if got := c.ReduceInto(ReduceSum, []float64{10}, nil); got[0] != 10 {
		t.Fatalf("reduceInto: %v", got)
	}
	child := c.Split(0, 0, Group)
	if child.Size() != 1 || child.Rank() != 0 {
		t.Fatalf("split: size %d rank %d", child.Size(), child.Rank())
	}

	if g := sh.mems[0].gen; g != 0 {
		t.Errorf("singleton ran %d barrier generations, want 0", g)
	}
	if s := sh.mems[0].seq; s != 0 {
		t.Errorf("singleton advanced %d op slots, want 0", s)
	}
	for i := range sh.bar.flags {
		if v := sh.bar.flags[i].v.Load(); v != 0 {
			t.Errorf("barrier flag %d touched: %d", i, v)
		}
	}
	// Accounting must still run on the fast paths (Table 1 counts);
	// ExchangeAny counts as a barrier, so OpBarrier is 2.
	if n := stats.Count(Global, OpBarrier); n != 2 {
		t.Errorf("barrier count %d, want 2", n)
	}
	if n := stats.Count(Global, OpBcast); n != 2 {
		t.Errorf("bcast count %d, want 2", n)
	}
}

// TestSplitRegistryPruned runs repeated Splits and checks the
// rendezvous registry is emptied once every member has retrieved its
// child (the old implementation leaked one map entry per generation),
// while the children list keeps growing for abort cascading.
func TestSplitRegistryPruned(t *testing.T) {
	const p, rounds = 8, 10
	var stats Stats
	sh := newCommShared(Global, identityRanks(p), &stats, nil)
	var wg sync.WaitGroup
	mustFinish(t, 10*time.Second, func() {
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				c := &Comm{shared: sh, rank: r}
				for i := 0; i < rounds; i++ {
					g := c.Split(r%2, r, Group)
					if g.Size() != p/2 {
						t.Errorf("round %d rank %d: group size %d", i, r, g.Size())
					}
				}
			}(r)
		}
		wg.Wait()
	})
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.splits) != 0 {
		t.Errorf("split registry leaked %d generations, want 0", len(sh.splits))
	}
	if want := rounds * 2; len(sh.children) != want {
		t.Errorf("children list has %d entries, want %d", len(sh.children), want)
	}
}

// TestOneBarrierRoundPerCollective pins the headline synchronisation
// saving: every value-returning collective costs exactly one barrier
// generation (the old engine spent two — one to publish, one to release
// the slots for reuse) and Split costs one (down from three).
func TestOneBarrierRoundPerCollective(t *testing.T) {
	const p = 4
	var stats Stats
	sh := newCommShared(Global, identityRanks(p), &stats, nil)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := &Comm{shared: sh, rank: r}
			c.Barrier()                                // 1
			c.Bcast(0, []float64{1})                   // 2
			c.Allgather([]float64{float64(r)})         // 3
			c.AllreduceSum(1)                          // 4
			c.AllreduceMax(float64(r))                 // 5
			c.ExchangeAny(r)                           // 6
			c.ReduceInto(ReduceSum, []float64{1}, nil) // 7
			c.Split(r%2, r, Group)                     // 8
		}(r)
	}
	wg.Wait()
	for r := 0; r < p; r++ {
		if g := sh.mems[r].gen; g != 8 {
			t.Errorf("rank %d ran %d barrier generations for 8 collectives, want 8", r, g)
		}
	}
}
